(** daisyc — the command-line driver for the daisy toolchain.

    {v
    daisyc parse file.c            print the lowered loop IR
    daisyc lir file.c              print the LLVM-like low-level IR
    daisyc normalize file.c        print the normalized (canonical) IR
    daisyc schedule file.c         normalize + schedule + simulate
    daisyc bench file.c            compare all scheduler models
    v}

    Problem sizes are given as [-D name=value]; unset size parameters
    default to 64. *)

open Cmdliner
module Ir = Daisy.Loopir.Ir
module S = Daisy.Scheduler

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(** One error handler for every subcommand: tool-level failures print one
    diagnostic line on stderr and exit nonzero instead of dumping a
    backtrace. Runs after any worker pool has been shut down
    ([Pool.with_pool] unwinds before the exception reaches us). *)
let run_protected f =
  match f () with
  | v -> v
  | exception Daisy.Support.Diag.Error d ->
      Fmt.epr "%a@." Daisy.Support.Diag.pp d;
      exit 1
  | exception Daisy.Lift.Lift.Unsupported reason ->
      Fmt.epr "daisyc: lifting failed: %s@." reason;
      exit 1
  | exception Daisy.Interp.Interp.Runtime_error m ->
      Fmt.epr "daisyc: runtime error: %s@." m;
      exit 1
  | exception Daisy.Support.Budget.Exhausted ->
      Fmt.epr "daisyc: evaluation budget exhausted (see --eval-budget)@.";
      exit 1
  | exception Daisy.Support.Fault.Injected label ->
      Fmt.epr "daisyc: injected fault fired: %s@." label;
      exit 1
  | exception Daisy.Support.Checkpoint.Interrupted sg ->
      Fmt.epr
        "daisyc: interrupted (signal %d); checkpoint saved — rerun with \
         --resume to continue@."
        sg;
      exit (128 + sg)
  | exception Daisy.Support.Util.Deadline_exceeded ->
      Fmt.epr "daisyc: evaluation deadline exceeded (see --eval-deadline)@.";
      exit 1
  | exception Invalid_argument m ->
      Fmt.epr "daisyc: %s@." m;
      exit 1
  | exception Sys_error m ->
      Fmt.epr "daisyc: %s@." m;
      exit 1

let load path =
  run_protected (fun () ->
      Daisy.Lang.Lower.program_of_string ~source:path (read_file path))

let sizes_of (defs : (string * int) list) (p : Ir.program) :
    (string * int) list =
  List.map
    (fun name ->
      match List.assoc_opt name defs with Some v -> (name, v) | None -> (name, 64))
    p.Ir.size_params

(* ---------------- arguments ---------------- *)

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Kernel source file.")

let define_conv : (string * int) Arg.conv =
  let parse s =
    match String.index_opt s '=' with
    | Some i ->
        let name = String.sub s 0 i in
        let v = String.sub s (i + 1) (String.length s - i - 1) in
        (try Ok (name, int_of_string v)
         with _ -> Error (`Msg "expected name=int"))
    | None -> Error (`Msg "expected name=int")
  in
  Arg.conv (parse, fun ppf (n, v) -> Fmt.pf ppf "%s=%d" n v)

let defines_arg =
  Arg.(value & opt_all define_conv [] & info [ "D"; "define" ] ~docv:"NAME=N"
         ~doc:"Set a size parameter for simulation.")

let threads_arg =
  Arg.(value & opt int 12 & info [ "j"; "threads" ] ~doc:"Simulated core count.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N"
         ~doc:"Worker domains for parallel search/seeding (results are \
               bit-identical at any job count; see docs/parallelism.md).")

let sample_outer_arg =
  Arg.(value & opt int 12 & info [ "sample-outer" ] ~docv:"N"
         ~doc:"Iterations of each outermost loop the cost model traces \
               (0 = all). Lower is faster but less faithful on \
               non-stationary outer loops.")

let engine_conv : Daisy.Machine.Cost.engine Arg.conv =
  let parse s =
    try Ok (Daisy.Machine.Cost.engine_of_string s)
    with Invalid_argument m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf e ->
      Fmt.string ppf (Daisy.Machine.Cost.string_of_engine e))

let engine_arg =
  Arg.(value & opt engine_conv Daisy.Machine.Cost.Bytecode
         & info [ "trace-engine" ] ~docv:"ENGINE"
             ~doc:"Cost-model trace engine: $(b,tree) (reference walker), \
                   $(b,compiled) (bit-identical closure fast path), \
                   $(b,bytecode) (bit-identical flat-LIR engine, default) \
                   or $(b,approx) (sampled; see docs/performance.md for \
                   the accuracy contract).")

let interp_engine_conv : Daisy.Interp.Interp.engine Arg.conv =
  let parse s =
    match Daisy.Interp.Interp.engine_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg ("unknown interpreter engine '" ^ s
                           ^ "' (tree|closure|bytecode)"))
  in
  Arg.conv (parse, fun ppf e ->
      Fmt.string ppf (Daisy.Interp.Interp.string_of_engine e))

let interp_engine_arg =
  Arg.(value & opt interp_engine_conv Daisy.Interp.Interp.Bytecode
         & info [ "interp-engine" ] ~docv:"ENGINE"
             ~doc:"Semantic interpreter engine for equivalence checks: \
                   $(b,tree) (reference oracle), $(b,closure) (compiled \
                   closure trees) or $(b,bytecode) (flat-LIR VM, default). \
                   All three are bit-identical, so the choice does not \
                   affect results (and, like $(b,--jobs), is excluded from \
                   checkpoint fingerprints) — only speed.")

let dump_bc_arg =
  Arg.(value & flag & info [ "dump-bc" ]
         ~doc:"After scheduling, disassemble the scheduled kernel's flat \
               bytecode (opcode stream, operand pools, fused \
               superinstructions, trace sections) to stdout.")

let eval_budget_arg =
  Arg.(value & opt (some int) None & info [ "eval-budget" ] ~docv:"STEPS"
         ~doc:"Abort any single cost-model evaluation after $(docv) \
               simulated iterations (guards against pathological \
               candidates; see docs/robustness.md). Default: unlimited.")

let db_in_arg =
  Arg.(value & opt (some file) None & info [ "db-in" ] ~docv:"FILE"
         ~doc:"Load the transfer-tuning database from a file written by \
               $(b,daisyc seed) instead of seeding it from the input \
               kernel. Corrupt entries are skipped with a warning.")

let index_arg =
  Arg.(value & flag & info [ "index" ]
         ~doc:"With $(b,--db-in) $(i,FILE): query the database through a \
               persisted ANN index at $(i,FILE)$(b,.ann), building it \
               automatically when missing, corrupt or stale (the index \
               stores a fingerprint of the database contents). Results \
               are bit-identical to the linear scan; see \
               docs/performance.md.")

let eval_deadline_arg =
  Arg.(value & opt (some float) None & info [ "eval-deadline" ] ~docv:"SEC"
         ~doc:"Per-candidate wall-clock deadline for search evaluation, in \
               seconds. A candidate that exceeds it is retried once, then \
               excluded from selection and quarantined (see \
               docs/robustness.md). Default: unlimited.")

let checkpoint_arg =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Checkpoint the run's state to $(docv) (atomically, at every \
               search generation / nest / epoch boundary) so a crashed or \
               interrupted run can be continued with $(b,--resume). The \
               file is consumed on successful completion.")

let resume_arg =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Resume from the $(b,--checkpoint) file of an earlier \
               interrupted run with the same configuration. The resumed \
               run produces bit-identical results to an uninterrupted \
               one.")

let quarantine_arg =
  Arg.(value & opt (some string) None & info [ "quarantine" ] ~docv:"DIR"
         ~doc:"Supervise the search: candidates that crash, miscompile or \
               blow their $(b,--eval-deadline) are excluded \
               deterministically and a shrunk reproducer is written to \
               $(docv) instead of aborting the run.")

(* ---------------- checkpointing helpers ---------------- *)

(** The configuration a checkpoint is only valid for: everything that
    shapes the search's results. Deliberately excludes [--jobs] (results
    are bit-identical at any job count) and the supervision knobs. *)
let config_fingerprint ~kind ~files ~defs ~threads ~sample_outer ~engine
    ~eval_budget =
  Daisy.Support.Checkpoint.fingerprint
    ([
       ("kind", kind);
       ("files", String.concat "," files);
       ("threads", string_of_int threads);
       ("sample_outer", string_of_int sample_outer);
       ("engine", Daisy.Machine.Cost.string_of_engine engine);
       ( "eval_budget",
         match eval_budget with None -> "none" | Some n -> string_of_int n );
       (* the search shape is currently fixed per subcommand *)
       ("epochs", "1");
       ("population", "6");
       ("iterations", "2");
     ]
    @ List.map
        (fun (n, v) -> ("define:" ^ n, string_of_int v))
        (List.sort compare defs))

let open_checkpoint ~kind ~fingerprint checkpoint resume =
  match checkpoint with
  | None ->
      if resume then invalid_arg "--resume requires --checkpoint FILE";
      None
  | Some path ->
      Daisy.Support.Checkpoint.install_signal_handlers ();
      let j =
        Daisy.Support.Checkpoint.open_journal ~path ~kind ~fingerprint
          ~resume ()
      in
      List.iter
        (fun w -> Fmt.epr "daisyc: warning: %s@." w)
        (Daisy.Support.Checkpoint.warnings j);
      Some j

let make_quarantine dir = Option.map (fun dir -> S.Quarantine.create ~dir ()) dir

let report_quarantine q =
  Option.iter
    (fun q ->
      let n = S.Quarantine.count q in
      if n > 0 then
        Fmt.pr "quarantined %d failing candidate(s) -> %s@." n
          (S.Quarantine.dir q))
    q

(* ---------------- commands ---------------- *)

(** Load a saved database, reporting (but tolerating) corrupt entries. *)
let load_db path =
  let db, warnings = S.Database.load path in
  List.iter (fun w -> Fmt.epr "daisyc: warning: %s@." w) warnings;
  Fmt.pr "loaded database: %d entries (%d warnings)@." (S.Database.size db)
    (List.length warnings);
  db

let parse_cmd =
  let run file =
    let p = load file in
    Fmt.pr "%a@." Ir.pp_program p
  in
  Cmd.v (Cmd.info "parse" ~doc:"Parse and print the loop IR")
    Term.(const run $ file_arg)

let lir_cmd =
  let run file =
    run_protected (fun () ->
        let f =
          Daisy.Lir.From_ast.func_of_string ~source:file (read_file file)
        in
        Fmt.pr "%a@." Daisy.Lir.Ir.pp_func f)
  in
  Cmd.v (Cmd.info "lir" ~doc:"Print the LLVM-like low-level IR")
    Term.(const run $ file_arg)

let normalize_cmd =
  let run file defs =
    let p = load file in
    run_protected (fun () ->
        let sizes = sizes_of defs p in
        let normalized, report =
          Daisy.Normalize.Pipeline.run
            ~options:(Daisy.Normalize.Pipeline.default_options ~sizes ())
            p
        in
        Fmt.pr "%a@.@.%a@." Daisy.Normalize.Pipeline.pp_report report
          Ir.pp_program normalized)
  in
  Cmd.v (Cmd.info "normalize" ~doc:"Apply a priori loop nest normalization")
    Term.(const run $ file_arg $ defines_arg)

let schedule_cmd =
  let run file defs threads jobs sample_outer engine interp_engine dump_bc
      eval_budget eval_deadline db_in index checkpoint resume quarantine_dir =
    let p = load file in
    run_protected (fun () ->
        Daisy.Interp.Interp.default_engine := interp_engine;
        let sizes = sizes_of defs p in
        let ctx =
          S.Common.make_ctx ~threads ~sample_outer ~engine
            ?eval_steps:eval_budget ?eval_deadline ~sizes ()
        in
        let fingerprint =
          config_fingerprint ~kind:"schedule" ~files:[ file ] ~defs ~threads
            ~sample_outer ~engine ~eval_budget
        in
        let journal =
          open_checkpoint ~kind:"schedule" ~fingerprint checkpoint resume
        in
        let quarantine = make_quarantine quarantine_dir in
        let db =
          match db_in with
          | Some path -> load_db path
          | None ->
              let db = S.Database.create () in
              Daisy.Support.Pool.with_pool ~jobs (fun pool ->
                  S.Seed.seed_database ~epochs:1 ~population:6 ~iterations:2
                    ?pool ?journal ?quarantine ctx ~db
                    [ (p.Ir.pname, p) ]);
              db
        in
        (match (index, db_in) with
        | false, _ -> ()
        | true, None ->
            Fmt.epr "daisyc: warning: --index has no effect without --db-in@."
        | true, Some path -> (
            let ann_path = path ^ ".ann" in
            match S.Database.load_index db ann_path with
            | Ok desc -> Fmt.pr "ann index: loaded (%s)@." desc
            | Error reason ->
                Fmt.pr "ann index: rebuilding (%s)@." reason;
                let desc = S.Database.rebuild_index db ann_path in
                Fmt.pr "ann index: built (%s) -> %s@." desc ann_path));
        let report = S.Daisy.schedule ?quarantine ctx ~db p in
        Option.iter Daisy.Support.Checkpoint.delete journal;
        report_quarantine quarantine;
        List.iter
          (fun d -> Fmt.pr "  %a@." S.Daisy.pp_decision d)
          report.S.Daisy.decisions;
        Fmt.pr "@.%a@." Ir.pp_program report.S.Daisy.program;
        (if dump_bc then
           let smap =
             List.fold_left
               (fun m (k, v) -> Daisy.Support.Util.SMap.add k v m)
               Daisy.Support.Util.SMap.empty sizes
           in
           Fmt.pr "@.%a@."
             Daisy.Lir.Bytecode.pp
             (Daisy.Lir.Bytecode.lower ~sizes:smap report.S.Daisy.program));
        Fmt.pr "@.simulated runtime: %.3f ms (original %.3f ms, %.2fx)@."
          (S.Common.runtime_ms ctx report.S.Daisy.program)
          (S.Common.runtime_ms ctx p)
          (S.Common.runtime_ms ctx p
          /. S.Common.runtime_ms ctx report.S.Daisy.program))
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Normalize, auto-schedule and simulate a kernel")
    Term.(const run $ file_arg $ defines_arg $ threads_arg $ jobs_arg
          $ sample_outer_arg $ engine_arg $ interp_engine_arg $ dump_bc_arg
          $ eval_budget_arg $ eval_deadline_arg $ db_in_arg $ index_arg
          $ checkpoint_arg $ resume_arg $ quarantine_arg)

let seed_cmd =
  let run files defs threads jobs sample_outer engine eval_budget
      eval_deadline db_out shard_out shard_cap shard_append_only checkpoint
      resume quarantine_dir =
    let programs = List.map (fun f -> (f, load f)) files in
    run_protected (fun () ->
        if db_out = None && shard_out = None then
          invalid_arg "seed needs --db-out FILE and/or --shard-out DIR";
        let sizes =
          List.concat_map (fun (_, p) -> sizes_of defs p) programs
          |> Daisy.Support.Util.dedup ~eq:(fun (a, _) (b, _) ->
                 String.equal a b)
        in
        let ctx =
          S.Common.make_ctx ~threads ~sample_outer ~engine
            ?eval_steps:eval_budget ?eval_deadline ~sizes ()
        in
        let fingerprint =
          config_fingerprint ~kind:"seed" ~files ~defs ~threads ~sample_outer
            ~engine ~eval_budget
        in
        let journal =
          open_checkpoint ~kind:"seed" ~fingerprint checkpoint resume
        in
        let quarantine = make_quarantine quarantine_dir in
        (* when checkpointing, also flush the bests-so-far database after
           every committed epoch: a crash between epochs still leaves a
           usable --db-out *)
        let on_epoch =
          match (journal, db_out) with
          | Some _, Some out ->
              Some (fun _epoch partial -> S.Database.save partial out)
          | _ -> None
        in
        let db = S.Database.create () in
        Daisy.Support.Pool.with_pool ~jobs (fun pool ->
            S.Seed.seed_database ~epochs:1 ~population:6 ~iterations:2 ?pool
              ?journal ?quarantine ?on_epoch ctx ~db
              (List.map (fun (f, p) -> (p.Ir.pname ^ ":" ^ f, p)) programs));
        Option.iter (fun out -> S.Database.save db out) db_out;
        (* sharded output: create a fresh store, or append to an existing
           one through its WAL and fold + trim at this single-writer
           moment (only the affected shards are rewritten) *)
        Option.iter
          (fun dirname ->
            let module Sh = S.Shardstore in
            if Sh.is_store_dir dirname then begin
              let st = Sh.open_ ~shard_cap dirname in
              Sh.append st (List.rev (S.Database.entries db));
              if shard_append_only then
                Fmt.pr
                  "sharded store: appended %d entries to %s's WAL (%d \
                   pending; folding left to the store's maintainer)@."
                  (S.Database.size db) dirname (Sh.wal_depth st)
              else begin
                let rewritten = Sh.compact ~now:(Unix.gettimeofday ()) st in
                ignore (Sh.trim_wal st);
                Fmt.pr
                  "sharded store: merged %d entries into %s (%d of %d \
                   shard(s) rewritten)@."
                  (S.Database.size db) dirname rewritten
                  (Sh.stats st).Sh.st_shards
              end
            end
            else
              let st = Sh.create ~shard_cap dirname db in
              Fmt.pr "sharded store: %d entries in %d shard(s) -> %s@."
                (Sh.size st)
                (Sh.stats st).Sh.st_shards
                dirname)
          shard_out;
        Option.iter Daisy.Support.Checkpoint.delete journal;
        report_quarantine quarantine;
        (match S.Common.sim_memo_stats ctx with
        | Some (h, m) when h + m > 0 ->
            Fmt.pr "simulation memo: %d hits / %d lookups (%.0f%%)@." h (h + m)
              (100.0 *. float_of_int h /. float_of_int (h + m))
        | _ -> ());
        Option.iter
          (fun out ->
            Fmt.pr "saved database: %d entries -> %s@." (S.Database.size db)
              out)
          db_out)
  in
  let files_arg =
    Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
           ~doc:"Kernel source files to seed from.")
  in
  let db_out_arg =
    Arg.(value & opt (some string) None & info [ "db-out" ] ~docv:"FILE"
           ~doc:"Where to write the database (versioned, checksummed \
                 format; see docs/robustness.md).")
  in
  let shard_out_arg =
    Arg.(value & opt (some string) None & info [ "shard-out" ] ~docv:"DIR"
           ~doc:"Write (or merge into) a sharded warm store at $(docv): \
                 per-shard segments + ANN sidecars under a checksummed \
                 manifest with a write-ahead log. An existing store is \
                 appended to through its WAL and compacted — only the \
                 affected shards are rewritten. See docs/robustness.md, \
                 \"Sharded warm store\".")
  in
  let shard_cap_arg =
    Arg.(value & opt int S.Shardstore.default_shard_cap
         & info [ "shard-cap" ] ~docv:"N"
             ~doc:"Split shards past $(docv) entries at compaction.")
  in
  let shard_append_only_arg =
    Arg.(value & flag & info [ "shard-append-only" ]
           ~doc:"With $(b,--shard-out) into an existing store: only \
                 append to the write-ahead log, leaving compaction to \
                 the store's maintainer. Use this when a running \
                 $(b,daisyd) owns the store's background compaction — at \
                 most one process may compact at a time, but an appender \
                 is always safe alongside it.")
  in
  Cmd.v
    (Cmd.info "seed"
       ~doc:"Seed a transfer-tuning database from kernels and save it")
    Term.(const run $ files_arg $ defines_arg $ threads_arg $ jobs_arg
          $ sample_outer_arg $ engine_arg $ eval_budget_arg
          $ eval_deadline_arg $ db_out_arg $ shard_out_arg $ shard_cap_arg
          $ shard_append_only_arg $ checkpoint_arg $ resume_arg
          $ quarantine_arg)

let bench_cmd =
  let run file defs threads jobs sample_outer engine eval_budget
      eval_deadline checkpoint resume quarantine_dir =
    let p = load file in
    run_protected (fun () ->
        let sizes = sizes_of defs p in
        let ctx =
          S.Common.make_ctx ~threads ~sample_outer ~engine
            ?eval_steps:eval_budget ?eval_deadline ~sizes ()
        in
        let fingerprint =
          config_fingerprint ~kind:"bench" ~files:[ file ] ~defs ~threads
            ~sample_outer ~engine ~eval_budget
        in
        let journal =
          open_checkpoint ~kind:"bench" ~fingerprint checkpoint resume
        in
        let quarantine = make_quarantine quarantine_dir in
        let db = S.Database.create () in
        Daisy.Support.Pool.with_pool ~jobs (fun pool ->
            S.Seed.seed_database ~epochs:1 ~population:6 ~iterations:2 ?pool
              ?journal ?quarantine ctx ~db
              [ (p.Ir.pname, p) ]);
        Option.iter Daisy.Support.Checkpoint.delete journal;
        Fmt.pr "%-10s %10s@." "scheduler" "ms";
        List.iter
          (fun (name, prog) ->
            match prog with
            | Some prog ->
                Fmt.pr "%-10s %10.3f@." name (S.Common.runtime_ms ctx prog)
            | None -> Fmt.pr "%-10s %10s@." name "X")
          [
            ("clang", Some (S.Baselines.clang_like p));
            ("icc", Some (S.Baselines.icc_like p));
            ("polly", Some (S.Baselines.polly_like p));
            ("tiramisu",
             (match S.Tiramisu.schedule ctx p with
             | S.Tiramisu.Scheduled q -> Some q
             | S.Tiramisu.Unsupported _ -> None));
            ("daisy",
             Some (S.Daisy.schedule ?quarantine ctx ~db p).S.Daisy.program);
          ];
        report_quarantine quarantine)
  in
  Cmd.v (Cmd.info "bench" ~doc:"Compare all scheduler models on a kernel")
    Term.(const run $ file_arg $ defines_arg $ threads_arg $ jobs_arg
          $ sample_outer_arg $ engine_arg $ eval_budget_arg
          $ eval_deadline_arg $ checkpoint_arg $ resume_arg $ quarantine_arg)

let reuse_cmd =
  let run file defs =
    let p = load file in
    run_protected (fun () ->
        let sizes = sizes_of defs p in
        let module Reuse = Daisy.Machine.Reuse in
        let module Config = Daisy.Machine.Config in
        let show label q =
          let h = Reuse.of_program Config.default q ~sizes ~sample_outer:8 () in
          Fmt.pr "@.%s:@.%a@." label Reuse.pp_histogram h
        in
        show "original" p;
        show "normalized" (Daisy.Normalize.Pipeline.normalize ~sizes p))
  in
  Cmd.v
    (Cmd.info "reuse"
       ~doc:"Reuse-distance histograms before/after normalization")
    Term.(const run $ file_arg $ defines_arg)

let polybench_cmd =
  let run name threads jobs sample_outer engine eval_budget =
    run_protected (fun () ->
        let module Pb = Daisy.Benchmarks.Polybench in
        let b = Pb.find name in
        let p = Pb.program b in
        let ctx =
          S.Common.make_ctx ~threads ~sample_outer ~engine
            ?eval_steps:eval_budget ~sizes:b.Pb.sim_sizes ()
        in
        let db = S.Database.create () in
        Daisy.Support.Pool.with_pool ~jobs (fun pool ->
            S.Seed.seed_database ~epochs:1 ~population:6 ~iterations:2 ?pool
              ctx ~db [ (name, p) ]);
        let bv =
          Daisy.Benchmarks.Variants.generate ~seed:("bvariant-" ^ name) p
        in
        Fmt.pr "%-10s %12s %12s@." "scheduler" "A [ms]" "B [ms]";
        let row label fa fb =
          Fmt.pr "%-10s %12s %12s@." label fa fb
        in
        let t q = Printf.sprintf "%.3f" (S.Common.runtime_ms ctx q) in
        row "clang" (t (S.Baselines.clang_like p)) (t (S.Baselines.clang_like bv));
        row "icc" (t (S.Baselines.icc_like p)) (t (S.Baselines.icc_like bv));
        row "polly" (t (S.Baselines.polly_like p)) (t (S.Baselines.polly_like bv));
        let tiramisu q =
          match S.Tiramisu.schedule ctx q with
          | S.Tiramisu.Scheduled r -> t r
          | S.Tiramisu.Unsupported _ -> "X"
        in
        row "tiramisu" (tiramisu p) (tiramisu bv);
        let daisy q = t (S.Daisy.schedule ctx ~db q).S.Daisy.program in
        row "daisy" (daisy p) (daisy bv))
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Benchmark name (gemm, 2mm, ..., or an extra like doitgen).")
  in
  Cmd.v
    (Cmd.info "polybench"
       ~doc:"Run a built-in benchmark (A and generated B variant) across all              schedulers")
    Term.(const run $ name_arg $ threads_arg $ jobs_arg $ sample_outer_arg
          $ engine_arg $ eval_budget_arg)

let submit_cmd =
  let run file defs socket tcp client budget deadline timeout show_stats =
    run_protected (fun () ->
        let address : Daisy.Serve.Server.address =
          match (socket, tcp) with
          | Some _, Some _ ->
              invalid_arg "--socket and --tcp are mutually exclusive"
          | Some path, None -> `Unix path
          | None, Some spec -> (
              match String.index_opt spec ':' with
              | Some i ->
                  let host = String.sub spec 0 i in
                  let port =
                    String.sub spec (i + 1) (String.length spec - i - 1)
                  in
                  (try `Tcp (host, int_of_string port)
                   with _ -> invalid_arg "--tcp expects HOST:PORT")
              | None -> invalid_arg "--tcp expects HOST:PORT")
          | None, None ->
              invalid_arg "submit needs --socket PATH or --tcp HOST:PORT"
        in
        let source = read_file file in
        let module C = Daisy.Serve.Client in
        let module P = Daisy.Serve.Protocol in
        match
          C.with_connection ~timeout_s:timeout address (fun c ->
              let reply =
                C.schedule c
                  {
                    P.client;
                    sizes = defs;
                    budget;
                    deadline_s = deadline;
                    source;
                  }
              in
              let stats = if show_stats then Some (C.stats c) else None in
              (reply, stats))
        with
        | reply, stats ->
            List.iter
              (fun (d : P.decision) ->
                Fmt.pr "  %s: %s@." d.P.label d.P.action)
              reply.P.decisions;
            Fmt.pr
              "predicted runtime: %.3f ms (engine %s%s, %d blas call(s), \
               %d retries, served in %.3f s)@."
              reply.P.cost_ms reply.P.engine
              (if reply.P.degraded then ", degraded" else "")
              reply.P.blas_calls reply.P.retries reply.P.eval_s;
            Option.iter
              (fun kvs ->
                Fmt.pr "daemon stats:@.";
                let w =
                  List.fold_left
                    (fun a (k, _) -> max a (String.length k))
                    0 kvs
                in
                List.iter
                  (fun (k, v) ->
                    match k with
                    | ("last_compaction" | "last_scrub") when v = 0 ->
                        Fmt.pr "  %-*s  never@." w k
                    | "last_compaction" | "last_scrub" ->
                        Fmt.pr "  %-*s  %d (%.0f s ago)@." w k v
                          (Unix.gettimeofday () -. float_of_int v)
                    | _ -> Fmt.pr "  %-*s  %d@." w k v)
                  kvs)
              stats
        | exception C.Server_error (code, message) ->
            Fmt.epr "daisyc: daisyd refused the request (%s): %s@."
              (P.string_of_error_code code)
              message;
            exit 1
        | exception Failure m ->
            Fmt.epr "daisyc: %s@." m;
            exit 1
        | exception Unix.Unix_error (e, fn, arg) ->
            Fmt.epr "daisyc: cannot reach daisyd: %s: %s (%s)@." fn
              (Unix.error_message e) arg;
            exit 1)
  in
  let socket_arg =
    Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix socket of a running $(b,daisyd).")
  in
  let tcp_arg =
    Arg.(value & opt (some string) None & info [ "tcp" ] ~docv:"HOST:PORT"
           ~doc:"TCP address of a running $(b,daisyd).")
  in
  let client_arg =
    Arg.(value & opt string "daisyc" & info [ "client" ] ~docv:"ID"
           ~doc:"Client id for the daemon's per-client quota accounting.")
  in
  let budget_arg =
    Arg.(value & opt (some int) None & info [ "eval-budget" ] ~docv:"STEPS"
           ~doc:"Request-side per-evaluation step fuel (the server may cap \
                 it lower).")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None & info [ "eval-deadline" ] ~docv:"SEC"
           ~doc:"Request-side wall deadline in seconds (the server may cap \
                 it lower).")
  in
  let timeout_arg =
    Arg.(value & opt float 60.0 & info [ "timeout" ] ~docv:"SEC"
           ~doc:"Client-side bound on waiting for the response.")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Also fetch and pretty-print the daemon's serving \
                 counters — including, for a sharded warm store, shard \
                 count, WAL depth, quarantined shards and the last \
                 compaction/scrub times.")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a kernel to a running daisyd and print its schedule")
    Term.(const run $ file_arg $ defines_arg $ socket_arg $ tcp_arg
          $ client_arg $ budget_arg $ deadline_arg $ timeout_arg
          $ stats_arg)

let variant_cmd =
  let run file seed =
    let p = load file in
    run_protected (fun () ->
        let v = Daisy.Benchmarks.Variants.generate ~seed p in
        Fmt.pr "%a@." Ir.pp_program v)
  in
  let seed_arg =
    Arg.(value & opt string "daisyc" & info [ "seed" ] ~doc:"Variant seed.")
  in
  Cmd.v
    (Cmd.info "variant"
       ~doc:"Generate a random semantically-equivalent loop-structure variant")
    Term.(const run $ file_arg $ seed_arg)

let () =
  let info =
    Cmd.info "daisyc" ~version:"1.0.0"
      ~doc:"A priori loop nest normalization and auto-scheduling (CGO 2025)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ parse_cmd; lir_cmd; normalize_cmd; schedule_cmd; seed_cmd;
            bench_cmd; reuse_cmd; variant_cmd; polybench_cmd; submit_cmd ]))
