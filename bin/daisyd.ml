(** daisyd — the daisy scheduling daemon.

    {v
    daisyd --socket /tmp/daisyd.sock --db tuned.db
    daisyd --tcp 127.0.0.1:7164 --jobs 4 --queue 128
    v}

    Serves [daisyc submit] requests over the DSY1 framed protocol with
    admission control, per-request fuel and deadlines, graceful
    degradation under load, per-client quotas, a hot-reloadable warm
    store and a crash-quarantine for poison programs. See
    docs/serving.md. *)

open Cmdliner
module Serve = Daisy.Serve

let address_conv : Serve.Server.address Arg.conv =
  let parse s =
    match String.index_opt s ':' with
    | Some i ->
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        (try Ok (`Tcp (host, int_of_string port))
         with _ -> Error (`Msg "expected HOST:PORT"))
    | None -> Error (`Msg "expected HOST:PORT")
  in
  Arg.conv
    (parse, fun ppf a -> Fmt.string ppf (Serve.Server.string_of_address a))

let socket_arg =
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Listen on a Unix-domain socket at $(docv). A stale socket \
               file is replaced.")

let tcp_arg =
  Arg.(value & opt (some address_conv) None & info [ "tcp" ] ~docv:"HOST:PORT"
         ~doc:"Listen on a TCP socket (mutually exclusive with \
               $(b,--socket)).")

let db_arg =
  Arg.(value & opt (some file) None & info [ "db" ] ~docv:"PATH"
         ~doc:"Warm store: either a transfer-tuning database file written \
               by $(b,daisyc seed --db-out) (a $(i,PATH)$(b,.ann) sidecar \
               is attached when present and valid), or a sharded store \
               directory written by $(b,daisyc seed --shard-out). The \
               daemon re-checks it about once a second; a file swaps in \
               whole, a sharded store hot-reloads at per-shard \
               granularity and is background-compacted and scrubbed (see \
               $(b,--compact-depth), $(b,--scrub-interval)).")

let compact_depth_arg =
  Arg.(value & opt int 64 & info [ "compact-depth" ] ~docv:"N"
         ~doc:"Sharded store only: background-compact once $(docv) WAL \
               entries are pending, off the request path (0 disables).")

let scrub_interval_arg =
  Arg.(value & opt float 0.0 & info [ "scrub-interval" ] ~docv:"SEC"
         ~doc:"Sharded store only: background-scrub every $(docv) seconds, \
               verifying segment checksums and ANN sidecars and repairing \
               quarantined shards (0 disables).")

let jobs_arg =
  Arg.(value & opt int 2 & info [ "jobs" ] ~docv:"N"
         ~doc:"Worker domains serving requests concurrently.")

let queue_arg =
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"N"
         ~doc:"Admission bound: connections beyond $(docv) queued are shed \
               with a $(b,busy) error instead of waiting.")

let degrade_arg =
  Arg.(value & opt int 8 & info [ "degrade-depth" ] ~docv:"N"
         ~doc:"Queue depth at which evaluation degrades to the approximate \
               cost engine (replies carry a $(b,degraded) flag).")

let quota_arg =
  Arg.(value & opt int 8 & info [ "quota" ] ~docv:"N"
         ~doc:"Max concurrent serving connections per client id; beyond it \
               a $(b,quota) error is returned.")

let eval_budget_arg =
  Arg.(value & opt (some int) None & info [ "eval-budget" ] ~docv:"STEPS"
         ~doc:"Server-side cap on any request's per-evaluation step fuel \
               (the effective cap is the $(i,minimum) of this and the \
               request's own budget). Default: 200000000.")

let eval_deadline_arg =
  Arg.(value & opt (some float) None & info [ "eval-deadline" ] ~docv:"SEC"
         ~doc:"Server-side cap on any request's wall deadline, in seconds \
               (the effective deadline is the $(i,minimum) of this and \
               the request's own). Default: 30.")

let idle_timeout_arg =
  Arg.(value & opt float 10.0 & info [ "idle-timeout" ] ~docv:"SEC"
         ~doc:"Per-connection frame read timeout: a client that stalls \
               mid-frame (or goes silent between frames) longer than \
               $(docv) is disconnected.")

let checkpoint_arg =
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE"
         ~doc:"Persist the poison set (programs that crashed the \
               evaluator twice) and serving counters to $(docv) on \
               graceful shutdown; a restarted daemon resumes refusing \
               known-poison programs.")

let default_size_arg =
  Arg.(value & opt int 64 & info [ "default-size" ] ~docv:"N"
         ~doc:"Value assumed for size parameters a request leaves unset.")

let threads_arg =
  Arg.(value & opt int 12 & info [ "j"; "threads" ]
         ~doc:"Simulated core count of the machine model.")

let sample_outer_arg =
  Arg.(value & opt int 12 & info [ "sample-outer" ] ~docv:"N"
         ~doc:"Outer-loop sampling bound of the cost model (0 = exact).")

let run socket tcp db jobs queue degrade_depth quota eval_budget eval_deadline
    idle_timeout checkpoint default_size threads sample_outer compact_depth
    scrub_interval =
  let address =
    match (socket, tcp) with
    | Some _, Some _ ->
        Fmt.epr "daisyd: --socket and --tcp are mutually exclusive@.";
        exit 2
    | Some path, None -> `Unix path
    | None, Some addr -> addr
    | None, None ->
        Fmt.epr "daisyd: one of --socket PATH or --tcp HOST:PORT is required@.";
        exit 2
  in
  let config =
    {
      (Serve.Server.default_config address) with
      Serve.Server.jobs;
      queue_capacity = queue;
      degrade_depth;
      client_quota = quota;
      eval_steps =
        (match eval_budget with Some n -> Some n | None -> Some 200_000_000);
      eval_deadline_s =
        (match eval_deadline with Some s -> Some s | None -> Some 30.0);
      idle_timeout_s = idle_timeout;
      db_path = db;
      checkpoint;
      default_size;
      threads;
      sample_outer;
      compact_depth;
      scrub_interval_s = scrub_interval;
    }
  in
  Daisy.Support.Checkpoint.install_signal_handlers ();
  match
    Serve.Server.run
      ~on_ready:(fun () ->
        Fmt.pr "daisyd: serving on %s (%d workers, queue %d)@."
          (Serve.Server.string_of_address address)
          config.Serve.Server.jobs config.Serve.Server.queue_capacity)
      config
  with
  | server ->
      let c = Serve.Server.counters server in
      Fmt.pr
        "daisyd: drained; served %d, shed %d, degraded %d, quarantined %d@."
        (Atomic.get c.Serve.Server.served)
        (Atomic.get c.Serve.Server.shed)
        (Atomic.get c.Serve.Server.degraded)
        (Atomic.get c.Serve.Server.quarantined)
  | exception Daisy.Support.Diag.Error d ->
      Fmt.epr "daisyd: %a@." Daisy.Support.Diag.pp d;
      exit 1
  | exception Unix.Unix_error (e, fn, arg) ->
      Fmt.epr "daisyd: %s: %s (%s)@." fn (Unix.error_message e) arg;
      exit 1

let () =
  let info =
    Cmd.info "daisyd" ~version:"1.0.0"
      ~doc:"Fault-tolerant loop-scheduling daemon (see docs/serving.md)"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(const run $ socket_arg $ tcp_arg $ db_arg $ jobs_arg
                $ queue_arg $ degrade_arg $ quota_arg $ eval_budget_arg
                $ eval_deadline_arg $ idle_timeout_arg $ checkpoint_arg
                $ default_size_arg $ threads_arg $ sample_outer_arg
                $ compact_depth_arg $ scrub_interval_arg)))
