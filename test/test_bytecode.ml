(** Differential tests of the flat-bytecode VM ([Daisy_lir.Bytecode] and
    its two backends): the semantic engine [Interp.run_bytecode] must
    produce final states {e bitwise identical} to the tree-walking oracle
    (every array element and scalar, compared bit for bit, plus identical
    [Runtime_error] messages), and the trace backend
    [Daisy_machine.Trace_bc] must produce counters bitwise identical to
    the compiled trace engine in exact mode — on every benchmark family
    in the repo, on the adversarial inline programs, and on random
    programs. Also covered here: the one-innermost-trip budget contract
    on all three engines of each backend, determinism across pool job
    counts, the disassembler goldens (superinstruction formation on a
    tiled/interchanged PolyBench nest), and the bytecode verifier's
    rejection of malformed streams. *)

module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Interp = Daisy_interp.Interp
module B = Daisy_lir.Bytecode
module Config = Daisy_machine.Config
module Trace = Daisy_machine.Trace
module Tc = Daisy_machine.Trace_compile
module Tb = Daisy_machine.Trace_bc
module Cost = Daisy_machine.Cost
module Budget = Daisy_support.Budget
module Pool = Daisy_support.Pool
module Util = Daisy_support.Util
module Pb = Daisy_benchmarks.Polybench
module Np = Daisy_benchmarks.Npbench
module Variants = Daisy_benchmarks.Variants
module Cloudsc = Daisy_benchmarks.Cloudsc
module Alower = Daisy_arraylang.Lower
module Lt = Daisy_transforms.Loop_transforms

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"
let config = Config.default
let bits = Int64.bits_of_float

let smap sizes =
  List.fold_left (fun m (k, v) -> Util.SMap.add k v m) Util.SMap.empty sizes

(* ------------------------------------------------------------------ *)
(* Semantic backend: bitwise state comparison vs the tree oracle        *)

let check_bitwise name (p : Ir.program) ~sizes ?(scalars = []) () =
  let s1 = Interp.run_fresh p ~sizes ~scalars () in
  let s2 = Interp.run_bytecode_fresh p ~sizes ~scalars () in
  Alcotest.(check int)
    (name ^ ": same array count")
    (Hashtbl.length s1.Interp.arrays)
    (Hashtbl.length s2.Interp.arrays);
  Hashtbl.iter
    (fun aname (t1 : Interp.tensor) ->
      match Hashtbl.find_opt s2.Interp.arrays aname with
      | None -> Alcotest.failf "%s: array %s missing from bytecode state" name aname
      | Some t2 ->
          Array.iteri
            (fun i x ->
              if bits x <> bits t2.Interp.data.(i) then
                Alcotest.failf "%s: %s[%d] differs: %h (tree) vs %h (bytecode)"
                  name aname i x t2.Interp.data.(i))
            t1.Interp.data)
    s1.Interp.arrays;
  let module SMap = Daisy_support.Util.SMap in
  if not (SMap.equal (fun a b -> bits a = bits b) s1.Interp.scalars s2.Interp.scalars)
  then Alcotest.failf "%s: scalar environments differ" name

let check_same_error name (p : Ir.program) ~sizes () =
  let outcome run =
    match run () with
    | (_ : Interp.state) -> Error "completed without error"
    | exception Interp.Runtime_error m -> Ok m
  in
  let r1 = outcome (fun () -> Interp.run_fresh p ~sizes ()) in
  let r2 = outcome (fun () -> Interp.run_bytecode_fresh p ~sizes ()) in
  match (r1, r2) with
  | Ok m1, Ok m2 ->
      Alcotest.(check string) (name ^ ": identical error message") m1 m2
  | Error w, _ -> Alcotest.failf "%s: tree oracle %s" name w
  | _, Error w -> Alcotest.failf "%s: bytecode engine %s" name w

(* ------------------------------------------------------------------ *)
(* Trace backend: bitwise counter comparison vs the compiled engine     *)

let check_trace_at name (p : Ir.program) ~sizes ~sample_outer =
  let compiled = Tc.run config p ~sizes ~sample_outer () in
  let bc = Tb.run config p ~sizes ~sample_outer () in
  Alcotest.(check int)
    (name ^ ": same nest count")
    (List.length compiled) (List.length bc);
  List.iteri
    (fun i (a, b) ->
      if not (Tc.counters_equal a b) then
        Alcotest.failf
          "%s (sample=%d): nest %d differs@.compiled: %a@.bytecode: %a" name
          sample_outer i Test_trace.pp_counters a Test_trace.pp_counters b)
    (List.combine compiled bc)

let check_trace name p ~sizes =
  check_trace_at name p ~sizes ~sample_outer:0;
  check_trace_at name p ~sizes ~sample_outer:7

(** Both backends on one program. *)
let check_program name p ~sizes =
  check_bitwise name p ~sizes ();
  check_trace name p ~sizes

(* ------------------------------------------------------------------ *)
(* Benchmark sweeps                                                     *)

let test_polybench_a () =
  List.iter
    (fun (b : Pb.benchmark) ->
      check_program ("A:" ^ b.Pb.name) (Pb.program b) ~sizes:b.Pb.test_sizes)
    (Pb.all @ Pb.extras)

let test_polybench_b () =
  List.iter
    (fun (b : Pb.benchmark) ->
      let v = Variants.generate ~seed:("bvariant-" ^ b.Pb.name) (Pb.program b) in
      check_program ("B:" ^ b.Pb.name) v ~sizes:b.Pb.test_sizes)
    Pb.all

let test_libcalls () =
  let replaced = ref 0 in
  List.iter
    (fun (b : Pb.benchmark) ->
      let p, n = Daisy_blas.Patterns.replace_all (Pb.program b) in
      replaced := !replaced + n;
      if n > 0 then check_program ("libcall:" ^ b.Pb.name) p ~sizes:b.Pb.test_sizes)
    Pb.all;
  Alcotest.(check bool) "library calls exercised" true (!replaced > 0)

let test_npbench () =
  List.iter
    (fun (b : Np.benchmark) ->
      List.iter
        (fun (pname, policy) ->
          let p = Alower.lower policy b.Np.program in
          check_program
            (Printf.sprintf "np:%s:%s" b.Np.name pname)
            p ~sizes:b.Np.test_sizes)
        [ ("frontend", Alower.frontend_policy); ("numpy", Alower.numpy_policy) ])
    Np.all

let test_cloudsc () =
  let orig, sizes = Cloudsc.erosion_original ~iters:3 in
  check_program "cloudsc:erosion-original" orig ~sizes;
  let opt, sizes = Cloudsc.erosion_optimized ~iters:3 in
  check_program "cloudsc:erosion-optimized" opt ~sizes;
  let small_sizes = [ ("nblocks", 2); ("klev", 6); ("nproma", 8) ] in
  List.iter
    (fun v ->
      let p, _ = Cloudsc.full_model v ~blocks:2 in
      check_program
        ("cloudsc:" ^ Cloudsc.string_of_version v)
        p ~sizes:small_sizes)
    Cloudsc.all_versions

(* parallel/atomic/vectorized/unrolled attributes light up every static
   context of the trace walk (flop classes, gathers, atomics, regions) *)
let test_attributed_loops () =
  List.iter
    (fun (b : Pb.benchmark) ->
      check_program
        ("attrs:" ^ b.Pb.name)
        (Test_trace.mark_attrs (Pb.program b))
        ~sizes:b.Pb.test_sizes)
    Pb.all

(* ------------------------------------------------------------------ *)
(* Adversarial inline programs                                          *)

let test_non_affine_guards_negstep () =
  let n = Expr.var "n" and i = Expr.var "i" and j = Expr.var "j" in
  let sq_mod = Expr.md (Expr.mul i i) n in
  let clamped = Expr.max_ (Expr.sub i (Expr.const 2)) Expr.zero in
  let dest = { Ir.array = "A"; indices = [ sq_mod ] } in
  let nonaffine =
    {
      Ir.pname = "nonaffine";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "A"; elem = Ir.Fdouble; dims = [ n ]; storage = Ir.Sparam };
          { Ir.name = "B"; elem = Ir.Fdouble; dims = [ n ]; storage = Ir.Sparam } ];
      local_scalars = [];
      body =
        [ Ir.Nloop
            (Ir.mk_loop ~iter:"i" ~lo:Expr.zero
               ~hi:(Expr.sub n Expr.one)
               [ Ir.Ncomp
                   (Ir.mk_comp (Ir.Darray dest)
                      (Ir.Vbin
                         (Ir.Vadd, Ir.Vread dest,
                          Ir.Vread { Ir.array = "B"; indices = [ clamped ] })))
               ]) ];
    }
  in
  check_program "non-affine subscripts" nonaffine ~sizes:[ ("n", 17) ];
  let guarded =
    {
      Ir.pname = "guarded";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "A"; elem = Ir.Fdouble; dims = [ n; n ];
            storage = Ir.Sparam } ];
      local_scalars = [ "acc" ];
      body =
        [ Ir.Ncomp (Ir.mk_comp (Ir.Dscalar "acc") (Ir.Vfloat 0.0));
          Ir.Nloop
            (Ir.mk_loop ~iter:"i" ~lo:Expr.zero
               ~hi:(Expr.sub (Expr.min_ n (Expr.const 11)) Expr.one)
               [ Ir.Nloop
                   (Ir.mk_loop ~iter:"j" ~lo:Expr.zero
                      ~hi:(Expr.sub n Expr.one)
                      [ Ir.Ncomp
                          (Ir.mk_comp
                             ~guard:(Ir.Pcmp (Ir.Cle, Ir.Vint j, Ir.Vint i))
                             (Ir.Dscalar "acc")
                             (Ir.Vbin
                                (Ir.Vadd, Ir.Vscalar "acc",
                                 Ir.Vcall
                                   ("sqrt",
                                    [ Ir.Vread
                                        { Ir.array = "A"; indices = [ i; j ] }
                                    ]))))
                      ])
               ]) ];
    }
  in
  check_program "guards + min bound + scalar dest" guarded ~sizes:[ ("n", 9) ];
  let reverse =
    {
      Ir.pname = "reverse";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "x"; elem = Ir.Fdouble; dims = [ n ]; storage = Ir.Sparam } ];
      local_scalars = [];
      body =
        [ Ir.Nloop
            (Ir.mk_loop ~iter:"i"
               ~lo:(Expr.sub n (Expr.const 2))
               ~hi:Expr.zero ~step:(-1)
               [ Ir.Ncomp
                   (Ir.mk_comp
                      (Ir.Darray { Ir.array = "x"; indices = [ i ] })
                      (Ir.Vbin
                         (Ir.Vadd,
                          Ir.Vread { Ir.array = "x"; indices = [ i ] },
                          Ir.Vread
                            { Ir.array = "x";
                              indices = [ Expr.add i Expr.one ] })))
               ]) ];
    }
  in
  check_program "negative-step loop" reverse ~sizes:[ ("n", 12) ];
  let zerotrip =
    {
      Ir.pname = "zerotrip";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "x"; elem = Ir.Fdouble; dims = [ n ]; storage = Ir.Sparam } ];
      local_scalars = [];
      body =
        [ Ir.Nloop
            (Ir.mk_loop ~iter:"i" ~lo:Expr.zero ~hi:(Expr.const (-1))
               [ Ir.Ncomp
                   (Ir.mk_comp
                      (Ir.Darray { Ir.array = "x"; indices = [ i ] })
                      (Ir.Vfloat 1.0))
               ]);
          Ir.Nloop
            (Ir.mk_loop ~iter:"i" ~lo:Expr.zero ~hi:(Expr.sub n Expr.one)
               [ Ir.Ncomp
                   (Ir.mk_comp
                      (Ir.Darray { Ir.array = "x"; indices = [ i ] })
                      (Ir.Vbin
                         (Ir.Vadd,
                          Ir.Vread { Ir.array = "x"; indices = [ i ] },
                          Ir.Vfloat 1.0)))
               ]) ];
    }
  in
  check_program "zero-trip loop" zerotrip ~sizes:[ ("n", 6) ]

(* ------------------------------------------------------------------ *)
(* Error-path parity                                                    *)

let test_error_parity () =
  let oob =
    lower
      {|void f(int n, double A[n]) {
          for (int i = 0; i < n; i++)
            A[i + 1] = 1.0;
        }|}
  in
  check_same_error "oob write" oob ~sizes:[ ("n", 4) ] ();
  let oob2 =
    lower
      {|void f(int n, double A[n], double B[n][n]) {
          for (int i = 0; i < n; i++)
            A[i] = B[i + 2][i];
        }|}
  in
  check_same_error "oob read (2d)" oob2 ~sizes:[ ("n", 4) ] ();
  let base =
    {
      Ir.pname = "errors";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "A"; elem = Ir.Fdouble; dims = [ Expr.var "n" ];
            storage = Ir.Sparam } ];
      local_scalars = [ "alpha" ];
      body = [];
    }
  in
  let comp rhs =
    [ Ir.Ncomp
        (Ir.mk_comp
           (Ir.Darray { Ir.array = "A"; indices = [ Expr.const 0 ] })
           rhs) ]
  in
  check_same_error "unbound scalar"
    { base with Ir.body = comp (Ir.Vscalar "alpha") }
    ~sizes:[ ("n", 4) ] ();
  check_same_error "unknown intrinsic"
    { base with
      Ir.body = comp (Ir.Vcall ("bogus", [ Ir.Vfloat 1.0; Ir.Vfloat 2.0 ])) }
    ~sizes:[ ("n", 4) ] ();
  check_same_error "wrong-arity intrinsic"
    { base with
      Ir.body = comp (Ir.Vcall ("sqrt", [ Ir.Vfloat 1.0; Ir.Vfloat 2.0 ])) }
    ~sizes:[ ("n", 4) ] ();
  check_same_error "unknown array read"
    { base with
      Ir.body = comp (Ir.Vread { Ir.array = "Ghost"; indices = [ Expr.const 0 ] })
    }
    ~sizes:[ ("n", 4) ] ();
  check_same_error "unknown array write"
    { base with
      Ir.body =
        [ Ir.Ncomp
            (Ir.mk_comp
               (Ir.Darray { Ir.array = "Ghost"; indices = [ Expr.const 0 ] })
               (Ir.Vfloat 1.0)) ];
    }
    ~sizes:[ ("n", 4) ] ()

(* ------------------------------------------------------------------ *)
(* Budget contract: Exhausted within one innermost trip, all engines    *)

let test_budget_brackets () =
  let n = 6 in
  let p =
    lower
      {|void nest(int n, double A[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              for (int k = 0; k < n; k++)
                A[i][j] = A[i][j] + 1.0;
        }|}
  in
  let sizes = [ ("n", n) ] in
  let total = n + (n * n) + (n * n * n) in
  let expect_ok what run =
    match run () with
    | () -> ()
    | exception Budget.Exhausted ->
        Alcotest.failf "%s: exhausted with exactly enough fuel (%d)" what total
  in
  let expect_exhausted what steps run =
    match run () with
    | () -> Alcotest.failf "%s: completed on %d steps (< %d total)" what steps total
    | exception Budget.Exhausted -> ()
  in
  let semantic =
    [ ("tree",
       fun b -> ignore (Interp.run_fresh ~budget:b p ~sizes ()));
      ("closure",
       fun b -> ignore (Interp.run_compiled_fresh ~budget:b p ~sizes ()));
      ("bytecode",
       fun b -> ignore (Interp.run_bytecode_fresh ~budget:b p ~sizes ())) ]
  in
  List.iter
    (fun (nm, run_fresh) ->
      let go steps () = run_fresh (Budget.make ~steps) in
      expect_ok ("interp:" ^ nm) (go total);
      expect_exhausted ("interp:" ^ nm) (total - 1) (go (total - 1));
      expect_exhausted ("interp:" ^ nm) (total - n) (go (total - n)))
    semantic;
  List.iter
    (fun (nm, engine) ->
      let go steps () =
        ignore
          (Cost.evaluate config p ~sizes ~engine
             ~budget:(Budget.make ~steps) ())
      in
      expect_ok ("trace:" ^ nm) (go total);
      expect_exhausted ("trace:" ^ nm) (total - 1) (go (total - 1));
      expect_exhausted ("trace:" ^ nm) (total - n) (go (total - n)))
    [ ("tree", Cost.Tree); ("compiled", Cost.Compiled);
      ("bytecode", Cost.Bytecode) ]

(* ------------------------------------------------------------------ *)
(* Determinism across pool job counts                                   *)

let test_parallel_jobs () =
  let progs =
    List.map (fun (b : Pb.benchmark) -> (Pb.program b, b.Pb.test_sizes)) Pb.all
  in
  let eval engine (p, sizes) =
    (Cost.evaluate config p ~sizes ~engine ()).Cost.nests
    |> List.map (fun nc -> nc.Cost.counters)
  in
  let seq = List.map (eval Cost.Bytecode) progs in
  let par =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map ?pool (eval Cost.Bytecode) progs)
  in
  let reference = List.map (eval Cost.Compiled) progs in
  let check what a b =
    List.iteri
      (fun i (xs, ys) ->
        if
          List.length xs <> List.length ys
          || not (List.for_all2 Tc.counters_equal xs ys)
        then Alcotest.failf "%s: benchmark %d counters differ" what i)
      (List.combine a b)
  in
  check "jobs 4 vs jobs 1" seq par;
  check "bytecode vs compiled reference" seq reference

(* ------------------------------------------------------------------ *)
(* Disassembler goldens                                                 *)

let test_golden_disassembly () =
  let p =
    lower
      {|void sc(int n, double a, double x[n], double y[n]) {
          for (int i = 0; i < n; i++)
            y[i] = y[i] + a * x[i];
        }|}
  in
  let art = B.lower ~sizes:(smap [ ("n", 8) ]) p in
  let expected =
    String.concat "\n"
      [ "bytecode sc: 23 words, 2 iregs, 1 scalars, stack 3";
        "   0: FUSE     r0 r1 lo=0 hi=7 step=1 body=7 end=22 {fload y[r0]; \
         fscalar a; fload x[r0]; fmul; fadd; fstore y[r0]}";
        "   7: FLOAD    y[r0]";
        "   9: FSCALAR  a";
        "  11: FLOAD    x[r0]";
        "  13: FMUL    ";
        "  14: FADD    ";
        "  15: FSTORE   y[r0]";
        "  17: LOOPBK   r0 r1 step=1 body=7";
        "  22: HALT    ";
        "" ]
  in
  Alcotest.(check string) "scale-add disassembly" expected
    (Fmt.str "%a" B.pp art)

(** Superinstruction formation survives scheduling: tile and interchange
    the first nest of PolyBench mvt, then check the disassembly shows a
    fused innermost loop under the tile/point structure. *)
let test_superinstruction_after_scheduling () =
  let b = List.find (fun (b : Pb.benchmark) -> b.Pb.name = "mvt") Pb.all in
  let p = Pb.program b in
  let on_first_nest f =
    List.mapi
      (fun i n ->
        match n with Ir.Nloop l when i = 0 -> Ir.Nloop (f l) | n -> n)
      p.Ir.body
  in
  let disasm body = Fmt.str "%a" B.pp
      (B.lower ~sizes:(smap b.Pb.test_sizes) { p with Ir.body }) in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let assert_contains what hay needle =
    if not (contains hay needle) then
      Alcotest.failf "%s: expected %S in:@.%s" what needle hay
  in
  (* interchange x1 += A^T y1's i and j loops: the fused body now streams
     column-wise but the superinstruction still forms *)
  let inter =
    disasm
      (on_first_nest (fun l ->
           match Lt.interchange ~outer:[] l [| 1; 0 |] with
           | Ok x -> x
           | Error e -> Alcotest.failf "interchange: %s" e))
  in
  assert_contains "interchanged mvt" inter
    "FUSE     r2 r3 lo=0 hi=11 step=1 body=14 end=29 {fload x1[r2]; fload \
     A[r2, r0]; fload y1[r0]; fmul; fadd; fstore x1[r2]}";
  (* 4x4 tiling: tile loops outside, min-bounded point loops inside, and
     the innermost point loop still fuses *)
  let tiled =
    disasm
      (on_first_nest (fun l ->
           match Lt.tile ~outer:[] l [ (0, 4); (1, 4) ] with
           | Ok x -> x
           | Error e -> Alcotest.failf "tile: %s" e))
  in
  assert_contains "tiled mvt (tile loop)" tiled "   0: LOOP     r0 r1 lo=0 hi=x[";
  assert_contains "tiled mvt (point-loop fuse)" tiled
    "FUSE     r6 r7 lo=0+4*r2 hi=x[";
  assert_contains "tiled mvt (fused body)" tiled
    "{fload x1[r4]; fload A[r4, r6]; fload y1[r6]; fmul; fadd; fstore x1[r4]}"

(* ------------------------------------------------------------------ *)
(* Verifier: pristine artifacts pass, each malformed class is rejected  *)

let test_verifier () =
  let b = List.find (fun (b : Pb.benchmark) -> b.Pb.name = "gemm") Pb.all in
  let p = Pb.program b in
  (* lower with trace hooks so the trace sections are verified too *)
  let art = Tb.lower p ~param_env:(smap b.Pb.test_sizes) in
  Alcotest.(check (list string)) "pristine artifact verifies" [] (B.verify art);
  Alcotest.(check bool) "artifact has trace sections" true
    (Array.length art.B.tnodes > 0);
  let expect_reject what mutant =
    match B.verify mutant with
    | [] -> Alcotest.failf "%s: verifier accepted a malformed artifact" what
    | _ :: _ -> ()
  in
  (* 1. bad opcode in the semantic stream *)
  let code = Array.copy art.B.code in
  code.(0) <- 99;
  expect_reject "bad opcode" { art with B.code };
  (* 2. affine address slice outside the operand pool *)
  expect_reject "affine slice outside pool"
    { art with
      B.ixs = Array.append art.B.ixs [| B.Ix_aff (Array.length art.B.pool, 2) |]
    };
  (* 3. integer register outside the register file *)
  expect_reject "register out of file"
    { art with B.ixs = Array.append art.B.ixs [| B.Ix_reg art.B.n_iregs |] };
  (* 4. jump target off an instruction boundary *)
  let pc = ref 0 and loop_pc = ref (-1) in
  while !pc < Array.length art.B.code do
    let op = art.B.code.(!pc) in
    if op = B.op_loop && !loop_pc < 0 then loop_pc := !pc;
    pc := !pc + B.op_len.(op)
  done;
  Alcotest.(check bool) "artifact has a LOOP" true (!loop_pc >= 0);
  let code = Array.copy art.B.code in
  code.(!loop_pc + 6) <- !loop_pc + 1;
  expect_reject "jump target off boundary" { art with B.code };
  (* 5. malformed xcode: slice outside the xpool *)
  expect_reject "xcode slice outside xpool"
    { art with
      B.ixs =
        Array.append art.B.ixs
          [| B.Ix_code (0, Array.length art.B.xpool + 1) |];
    };
  (* 6. malformed xcode: stack underflow *)
  expect_reject "xcode stack underflow"
    { art with
      B.xpool = Array.append art.B.xpool [| B.x_add |];
      B.ixs =
        Array.append art.B.ixs [| B.Ix_code (Array.length art.B.xpool, 1) |];
    };
  (* 7. bad opcode in a trace section *)
  let tn = art.B.tnodes.(0) in
  let t_code = Array.copy tn.B.t_code in
  t_code.(0) <- 77;
  expect_reject "bad trace opcode"
    { art with B.tnodes = [| { tn with B.t_code } |] };
  (* 8. trace loop slot outside the slot file *)
  let bad_loop = { tn.B.t_loops.(0) with B.w_slot = tn.B.t_nslots } in
  let t_loops = Array.copy tn.B.t_loops in
  t_loops.(0) <- bad_loop;
  expect_reject "trace loop slot out of file"
    { art with B.tnodes = [| { tn with B.t_loops } |] }

(* ------------------------------------------------------------------ *)
(* Random programs                                                      *)

let prop_bytecode_bitwise =
  QCheck.Test.make ~count:120
    ~name:"bytecode engine bitwise-identical to oracle"
    Test_property.arbitrary_program (fun p ->
      let sizes = [ ("n", 8) ] in
      let s1 = Interp.run_fresh p ~sizes () in
      let s2 = Interp.run_bytecode_fresh p ~sizes () in
      let ok = ref true in
      Hashtbl.iter
        (fun aname (t1 : Interp.tensor) ->
          match Hashtbl.find_opt s2.Interp.arrays aname with
          | None -> ok := false
          | Some t2 ->
              Array.iteri
                (fun i x -> if bits x <> bits t2.Interp.data.(i) then ok := false)
                t1.Interp.data)
        s1.Interp.arrays;
      !ok)

let prop_trace_bitwise =
  QCheck.Test.make ~count:120
    ~name:"bytecode trace bitwise-identical to compiled"
    Test_property.arbitrary_program (fun p ->
      let sizes = [ ("n", 8) ] in
      let ok sample_outer =
        let compiled = Tc.run config p ~sizes ~sample_outer () in
        let bc = Tb.run config p ~sizes ~sample_outer () in
        List.length compiled = List.length bc
        && List.for_all2 Tc.counters_equal compiled bc
      in
      ok 0 && ok 3)

let suite =
  [
    ("polybench A bitwise (both backends)", `Slow, test_polybench_a);
    ("polybench B variants bitwise", `Slow, test_polybench_b);
    ("library calls bitwise", `Quick, test_libcalls);
    ("npbench lowerings bitwise", `Slow, test_npbench);
    ("cloudsc bitwise", `Slow, test_cloudsc);
    ("attributed loops bitwise", `Slow, test_attributed_loops);
    ("non-affine, guards, negative step", `Quick, test_non_affine_guards_negstep);
    ("error parity", `Quick, test_error_parity);
    ("budget exhausts within one innermost trip", `Quick, test_budget_brackets);
    ("deterministic across pool jobs", `Slow, test_parallel_jobs);
    ("golden disassembly", `Quick, test_golden_disassembly);
    ("superinstructions after tiling/interchange", `Quick,
     test_superinstruction_after_scheduling);
    ("verifier rejects malformed streams", `Quick, test_verifier);
    QCheck_alcotest.to_alcotest prop_bytecode_bitwise;
    QCheck_alcotest.to_alcotest prop_trace_bitwise;
  ]
