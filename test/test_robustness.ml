(** Robustness tests (docs/robustness.md): step budgets bound every
    evaluation, engine failures degrade to the tree oracle, pool batches
    fail fast deterministically, the on-disk database round-trips
    bit-identically and tolerates corruption, and the structural
    validator catches malformed IR. Failures are forced with
    {!Daisy_support.Fault}. *)

module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Budget = Daisy_support.Budget
module Fault = Daisy_support.Fault
module Pool = Daisy_support.Pool
module Diag = Daisy_support.Diag
module Interp = Daisy_interp.Interp
module Cost = Daisy_machine.Cost
module Config = Daisy_machine.Config
module Recipe = Daisy_transforms.Recipe
module Embedding = Daisy_embedding.Embedding
module Pipeline = Daisy_normalize.Pipeline
module S = Daisy_scheduler

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"

let gemm_src =
  {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
      for (int i = 0; i < n; i++)
        for (int k = 0; k < n; k++)
          for (int j = 0; j < n; j++)
            C[i][j] += A[i][k] * B[k][j];
    }|}

let with_faults f =
  Fun.protect ~finally:Fault.clear (fun () -> Fault.clear (); f ())

(* ------------------------------------------------------------------ *)
(* Step budgets *)

let test_budget_basics () =
  let b = Budget.make ~steps:3 in
  Budget.tick b;
  Budget.tick b;
  Alcotest.(check int) "one left" 1 (Budget.remaining b);
  Budget.tick b;
  Alcotest.(check bool) "not yet exhausted" false (Budget.exhausted b);
  Alcotest.check_raises "4th tick" Budget.Exhausted (fun () -> Budget.tick b);
  (* exhaustion is sticky *)
  Alcotest.check_raises "sticky" Budget.Exhausted (fun () -> Budget.tick b);
  Alcotest.(check bool) "exhausted" true (Budget.exhausted b);
  let s = Budget.make ~steps:10 in
  Budget.spend s 4;
  Budget.spend s (-5);
  Alcotest.(check int) "spend" 6 (Budget.remaining s);
  Alcotest.check_raises "overspend" Budget.Exhausted (fun () ->
      Budget.spend s 7);
  let u = Budget.unlimited () in
  for _ = 1 to 10_000 do Budget.tick u done;
  Alcotest.(check bool) "unlimited" false (Budget.exhausted u)

let test_budget_interp_engines () =
  let p =
    lower
      {|void f(int n, double A[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              A[i][j] = A[i][j] + 1.0;
        }|}
  in
  let sizes = [ ("n", 10) ] in
  (* 10 outer + 100 inner iterations; a budget of 5 must trip in both
     engines, a large one must not *)
  Alcotest.check_raises "tree exhausts" Budget.Exhausted (fun () ->
      ignore (Interp.run_fresh ~budget:(Budget.make ~steps:5) p ~sizes ()));
  Alcotest.check_raises "compiled exhausts" Budget.Exhausted (fun () ->
      ignore
        (Interp.run_compiled_fresh ~budget:(Budget.make ~steps:5) p ~sizes ()));
  Alcotest.check_raises "bytecode exhausts" Budget.Exhausted (fun () ->
      ignore
        (Interp.run_bytecode_fresh ~budget:(Budget.make ~steps:5) p ~sizes ()));
  let s1 = Interp.run_fresh ~budget:(Budget.make ~steps:1_000) p ~sizes () in
  let s2 =
    Interp.run_compiled_fresh ~budget:(Budget.make ~steps:1_000) p ~sizes ()
  in
  let s3 =
    Interp.run_bytecode_fresh ~budget:(Budget.make ~steps:1_000) p ~sizes ()
  in
  Alcotest.(check (float 0.0)) "same result under budget" 0.0
    (Interp.max_rel_diff p s1 s2);
  Alcotest.(check (float 0.0)) "same bytecode result under budget" 0.0
    (Interp.max_rel_diff p s1 s3)

(* The acceptance regression: an adversarially large iteration space
   (~10^10 walked iterations) must abort within its step budget on every
   engine instead of hanging. *)
let test_budget_bounds_adversarial_evaluation () =
  let p = lower gemm_src in
  let sizes = [ ("n", 2_000) ] in
  List.iter
    (fun engine ->
      Alcotest.check_raises
        ("engine " ^ Cost.string_of_engine engine)
        Budget.Exhausted
        (fun () ->
          ignore
            (Cost.evaluate_guarded Config.default p ~sizes ~engine
               ~steps:10_000 ())))
    [ Cost.Tree; Cost.Compiled; Cost.Bytecode ]

let test_budget_exhaustion_is_infinity_fitness () =
  let p = lower gemm_src in
  let ctx = S.Common.make_ctx ~sizes:[ ("n", 64) ] ~eval_steps:5 () in
  let nest =
    match p.Ir.body with [ Ir.Nloop l ] -> l | _ -> Alcotest.fail "one nest"
  in
  let cache = S.Evolve.create_cache () in
  let fit = S.Evolve.eval_cached cache ctx ~outer:[] p nest [] in
  Alcotest.(check bool) "exhausted candidate scores infinity" true
    (fit = infinity)

(* ------------------------------------------------------------------ *)
(* Graceful engine degradation *)

let test_trace_engine_fallback_same_result () =
  with_faults (fun () ->
      let p = lower gemm_src in
      let sizes = [ ("n", 24) ] in
      let reference =
        Cost.evaluate_guarded Config.default p ~sizes ~engine:Cost.Tree ()
      in
      Cost.reset_engine_fallbacks ();
      Fault.arm_always "trace_compile";
      let guarded =
        Cost.evaluate_guarded Config.default p ~sizes ~engine:Cost.Compiled ()
      in
      Alcotest.(check bool) "fell back at least once" true
        (Cost.engine_fallbacks () >= 1);
      Alcotest.(check (float 0.0)) "bitwise-identical milliseconds"
        (Cost.milliseconds reference)
        (Cost.milliseconds guarded))

(** The full degradation chain of the trace backend: a failing bytecode
    engine steps down to the compiled engine; when that is also armed it
    steps down again to the tree oracle — bit-identical report both
    times. *)
let test_bytecode_trace_fallback_chain () =
  with_faults (fun () ->
      let p = lower gemm_src in
      let sizes = [ ("n", 24) ] in
      let reference =
        Cost.evaluate_guarded Config.default p ~sizes ~engine:Cost.Tree ()
      in
      List.iter
        (fun (what, labels) ->
          Fault.clear ();
          List.iter Fault.arm_always labels;
          Cost.reset_engine_fallbacks ();
          let guarded =
            Cost.evaluate_guarded Config.default p ~sizes
              ~engine:Cost.Bytecode ()
          in
          Alcotest.(check bool) (what ^ ": fell back enough") true
            (Cost.engine_fallbacks () >= List.length labels);
          Alcotest.(check (float 0.0)) (what ^ ": bitwise-identical result")
            (Cost.milliseconds reference)
            (Cost.milliseconds guarded))
        [ ("bc_run -> compiled", [ "bc_run" ]);
          ("bc_compile -> compiled", [ "bc_compile" ]);
          ("trace_fuse -> compiled", [ "trace_fuse" ]);
          ("bc_run + trace_compile -> tree", [ "bc_run"; "trace_compile" ]) ])

let test_interp_fallback_preserves_equivalence () =
  with_faults (fun () ->
      let p = lower gemm_src in
      (* default engine is bytecode: a bc_run crash degrades to closure *)
      Interp.reset_compiled_fallbacks ();
      Fault.arm_nth "bc_run" 1;
      Alcotest.(check bool) "equivalent despite engine crash" true
        (Interp.equivalent p p ~sizes:[ ("n", 6) ] ());
      Alcotest.(check bool) "fallback counted" true
        (Interp.compiled_fallbacks () >= 1);
      (* bc_compile crashes degrade the same way *)
      Fault.clear ();
      Interp.reset_compiled_fallbacks ();
      Fault.arm_nth "bc_compile" 1;
      Alcotest.(check bool) "equivalent despite lowering crash" true
        (Interp.equivalent p p ~sizes:[ ("n", 6) ] ());
      Alcotest.(check bool) "lowering fallback counted" true
        (Interp.compiled_fallbacks () >= 1);
      (* both fast engines armed: the chain bottoms out on the tree oracle *)
      Fault.clear ();
      Interp.reset_compiled_fallbacks ();
      Fault.arm_always "bc_run";
      Fault.arm_always "interp_compile";
      Alcotest.(check bool) "equivalent on the tree oracle" true
        (Interp.equivalent p p ~sizes:[ ("n", 6) ] ());
      Alcotest.(check bool) "two fallbacks per run" true
        (Interp.compiled_fallbacks () >= 2))

let test_budget_exhaustion_is_not_masked () =
  (* evaluate_guarded must let Exhausted escape, not silently retry on
     the tree walker with fresh fuel *)
  let p = lower gemm_src in
  Cost.reset_engine_fallbacks ();
  Alcotest.check_raises "propagates" Budget.Exhausted (fun () ->
      ignore
        (Cost.evaluate_guarded Config.default p ~sizes:[ ("n", 64) ]
           ~engine:Cost.Compiled ~steps:10 ()));
  Alcotest.(check int) "no fallback recorded" 0 (Cost.engine_fallbacks ())

(* ------------------------------------------------------------------ *)
(* Pool failure semantics *)

let test_pool_lowest_failure_wins_any_jobs () =
  (* same exception at any job count: the lowest-index failing task *)
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          match
            Pool.map ?pool
              (fun x -> if x mod 7 = 5 then failwith (string_of_int x) else x)
              (List.init 64 Fun.id)
          with
          | _ -> Alcotest.fail "expected Failure"
          | exception Failure m ->
              Alcotest.(check string)
                (Printf.sprintf "jobs=%d" jobs)
                "5" m))
    [ 1; 2; 4; 8 ]

let test_pool_poisoning_skips_unclaimed () =
  (* inline execution (after shutdown) claims tasks in order, so the
     fail-fast skip count is exact: tasks after the failure never run *)
  let pool = Pool.create ~jobs:4 in
  Pool.shutdown pool;
  let executed = Atomic.make 0 in
  (match
     Pool.map ~pool
       (fun x ->
         Atomic.incr executed;
         if x = 3 then failwith "poison" else x)
       (List.init 100 Fun.id)
   with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure _ -> ());
  Alcotest.(check int) "remaining 96 tasks skipped" 4 (Atomic.get executed)

let test_pool_fault_point () =
  with_faults (fun () ->
      Fault.arm_always "pool_task";
      Pool.with_pool ~jobs:4 (fun pool ->
          Alcotest.check_raises "injected" (Fault.Injected "pool_task")
            (fun () -> ignore (Pool.map ?pool Fun.id [ 1; 2; 3 ]))))

(* ------------------------------------------------------------------ *)
(* Database persistence *)

let make_db () =
  let p = lower gemm_src in
  let nest =
    match p.Ir.body with [ Ir.Nloop l ] -> l | _ -> Alcotest.fail "one nest"
  in
  let db = S.Database.create () in
  S.Database.add db ~source:"gemm:a" ~nest ~recipe:[];
  S.Database.add db ~source:"gemm:b" ~nest
    ~recipe:[ Recipe.Interchange [ 2; 0; 1 ]; Recipe.Vectorize ];
  S.Database.add db ~source:"gemm \"quoted\\\" c" ~nest
    ~recipe:
      [ Recipe.Tile [ (0, 32); (1, 64) ]; Recipe.Parallelize 0;
        Recipe.Unroll (2, 4) ];
  (db, nest)

let check_same_entries msg a b =
  let open S.Database in
  Alcotest.(check int) (msg ^ ": size") (size a) (size b);
  List.iter2
    (fun (x : entry) (y : entry) ->
      Alcotest.(check string) (msg ^ ": source") x.source y.source;
      Alcotest.(check int) (msg ^ ": hash") x.canon_hash y.canon_hash;
      Alcotest.(check bool) (msg ^ ": recipe") true
        (Recipe.equal x.recipe y.recipe);
      (* bitwise float equality, not approximate *)
      Alcotest.(check bool) (msg ^ ": embedding bits") true
        (Array.for_all2
           (fun u v -> Int64.equal (Int64.bits_of_float u) (Int64.bits_of_float v))
           x.embedding y.embedding))
    (entries a) (entries b)

let test_db_roundtrip_bit_identical () =
  let db, nest = make_db () in
  let path = Filename.temp_file "daisydb" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.Database.save db path;
      let db', warnings = S.Database.load path in
      Alcotest.(check (list string)) "no warnings" [] warnings;
      check_same_entries "roundtrip" db db';
      (* queries against the reloaded database are bit-identical *)
      let project = List.map (fun (d, (e : S.Database.entry)) -> (d, e.source)) in
      Alcotest.(check (list (pair (float 0.0) string)))
        "query" (project (S.Database.query db ~k:2 nest))
        (project (S.Database.query db' ~k:2 nest));
      Alcotest.(check int) "exact matches" 3
        (List.length (S.Database.exact_matches db' nest)))

let test_db_tolerates_corruption () =
  let db, _ = make_db () in
  let path = Filename.temp_file "daisydb" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.Database.save db path;
      let lines =
        String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all)
      in
      (* corrupt the first entry's recipe line: checksum must catch it *)
      let corrupted =
        List.map
          (fun l ->
            if l = "recipe []" then "recipe [vectorize]" else l)
          lines
      in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (String.concat "\n" corrupted));
      let db', warnings = S.Database.load path in
      Alcotest.(check int) "one entry skipped" 2 (S.Database.size db');
      Alcotest.(check int) "one warning" 1 (List.length warnings);
      Alcotest.(check bool) "warning names checksum" true
        (List.exists
           (fun w ->
             Daisy_support.Util.SSet.mem "checksum"
               (Daisy_support.Util.SSet.of_list (String.split_on_char ' ' w)))
           warnings))

let test_db_tolerates_truncation () =
  let db, _ = make_db () in
  let path = Filename.temp_file "daisydb" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      S.Database.save db path;
      let text = In_channel.with_open_text path In_channel.input_all in
      (* chop the file mid-way through the last entry *)
      let cut = String.length text - 20 in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc (String.sub text 0 cut));
      let db', warnings = S.Database.load path in
      Alcotest.(check bool) "some entries survive" true
        (S.Database.size db' >= 1);
      Alcotest.(check bool) "truncation warned" true (warnings <> []))

let test_db_whole_file_errors () =
  let path = Filename.temp_file "daisydb" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let expect_error msg =
        match S.Database.load path with
        | _ -> Alcotest.fail (msg ^ ": expected Diag.Error")
        | exception Diag.Error _ -> ()
      in
      expect_error "empty file";
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "NOTADB 1\n");
      expect_error "bad magic";
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc "DAISYDB 99\n");
      expect_error "future version";
      match S.Database.load "/nonexistent/daisy.db" with
      | _ -> Alcotest.fail "missing file: expected Diag.Error"
      | exception Diag.Error _ -> ())

let test_db_load_fault_point () =
  with_faults (fun () ->
      let db, _ = make_db () in
      let path = Filename.temp_file "daisydb" ".db" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          S.Database.save db path;
          Fault.arm_nth "db_load" 2;
          let db', warnings = S.Database.load path in
          Alcotest.(check int) "second entry dropped" 2 (S.Database.size db');
          Alcotest.(check int) "fault warned" 1 (List.length warnings)))

let test_db_save_crash_keeps_old_file () =
  with_faults (fun () ->
      let db, nest = make_db () in
      let path = Filename.temp_file "daisydb" ".db" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          S.Database.save db path;
          (* a save killed mid-stream (the per-entry "db_save" fault fires
             while the temp file is being written) must leave the old
             database untouched and clean up its temp file *)
          let bigger = S.Database.create () in
          S.Database.merge ~into:bigger db;
          S.Database.add bigger ~source:"extra" ~nest ~recipe:[];
          Fault.arm_nth "db_save" 2;
          (match S.Database.save bigger path with
          | () -> Alcotest.fail "expected the injected db_save crash"
          | exception Fault.Injected "db_save" -> ());
          let db', warnings = S.Database.load path in
          Alcotest.(check (list string)) "no warnings" [] warnings;
          check_same_entries "old database intact" db db';
          let dir = Filename.dirname path and base = Filename.basename path in
          Alcotest.(check bool) "no temp file left" true
            (Array.for_all
               (fun f ->
                 not
                   (String.length f > String.length base
                   && String.sub f 0 (String.length base) = base
                   && f <> base))
               (Sys.readdir dir));
          (* the unfaulted save then replaces the file as one atomic step *)
          S.Database.save bigger path;
          let db'', _ = S.Database.load path in
          check_same_entries "new database readable" bigger db''))

(* ------------------------------------------------------------------ *)
(* Query edge cases *)

let test_query_edge_cases () =
  let db, nest = make_db () in
  let empty = S.Database.create () in
  Alcotest.(check int) "k=0" 0 (List.length (S.Database.query db ~k:0 nest));
  Alcotest.(check int) "k<0" 0 (List.length (S.Database.query db ~k:(-3) nest));
  Alcotest.(check int) "empty db" 0
    (List.length (S.Database.query empty ~k:5 nest));
  Alcotest.(check int) "empty db exact" 0
    (List.length (S.Database.exact_matches empty nest));
  let q = Array.make Embedding.dim 0.0 in
  Alcotest.(check int) "nearest_by k=0" 0
    (List.length (Embedding.nearest_by ~embed:Fun.id 0 [ q ] q));
  Alcotest.(check int) "nearest_by k<0" 0
    (List.length (Embedding.nearest_by ~embed:Fun.id (-1) [ q ] q));
  Alcotest.(check int) "nearest_by empty" 0
    (List.length (Embedding.nearest_by ~embed:Fun.id 3 [] q))

(* ------------------------------------------------------------------ *)
(* Recipe parsing *)

let test_recipe_of_string_roundtrip () =
  List.iter
    (fun r ->
      match Recipe.of_string (Recipe.to_string r) with
      | Ok r' ->
          Alcotest.(check bool) (Recipe.to_string r) true (Recipe.equal r r')
      | Error m -> Alcotest.fail m)
    [
      [];
      [ Recipe.Vectorize ];
      [ Recipe.Interchange [ 1; 0 ] ];
      [ Recipe.Tile [ (0, 32); (1, 64) ]; Recipe.Parallelize 0;
        Recipe.Unroll (1, 4); Recipe.Vectorize ];
    ]

let test_recipe_of_string_errors () =
  List.iter
    (fun s ->
      match Recipe.of_string s with
      | Ok _ -> Alcotest.fail (s ^ ": expected parse error")
      | Error _ -> ())
    [ ""; "vectorize"; "[foo]"; "[tile(x:1)]"; "[tile()]"; "[unroll(1)]";
      "[interchange(1 0)"; "[parallel(0 1)]" ]

(* ------------------------------------------------------------------ *)
(* IR validation *)

let decl name dims =
  { Ir.name; elem = Ir.Fdouble; dims; storage = Ir.Sparam }

let prog body arrays =
  {
    Ir.pname = "t";
    size_params = [ "n" ];
    scalar_params = [];
    arrays;
    local_scalars = [];
    body;
  }

let store arr idx =
  Ir.mk_comp (Ir.Darray { Ir.array = arr; indices = idx }) (Ir.Vfloat 1.0)

let test_validate_accepts_valid () =
  let p = lower gemm_src in
  Alcotest.(check (list string)) "gemm valid" [] (Ir.validate p);
  let n = Pipeline.normalize ~sizes:[ ("n", 32) ] p in
  Alcotest.(check (list string)) "normalized gemm valid" [] (Ir.validate n)

let test_validate_catches_violations () =
  let a_n = [ decl "A" [ Expr.var "n" ] ] in
  let check msg p expected_fragment =
    match Ir.validate p with
    | [] -> Alcotest.fail (msg ^ ": expected a violation")
    | v :: _ ->
        let has frag =
          let re = Str.regexp_string frag in
          try ignore (Str.search_forward re v 0); true
          with Not_found -> false
        in
        Alcotest.(check bool) (msg ^ ": " ^ v) true (has expected_fragment)
  in
  (* unbound variable in a loop bound *)
  check "unbound"
    (prog
       [ Ir.Nloop
           (Ir.mk_loop ~iter:"i" ~lo:Expr.zero ~hi:(Expr.var "mystery")
              [ Ir.Ncomp (store "A" [ Expr.var "i" ]) ]) ]
       a_n)
    "mystery";
  (* zero step *)
  check "zero step"
    (prog
       [ Ir.Nloop
           (Ir.mk_loop ~iter:"i" ~lo:Expr.zero ~hi:(Expr.var "n") ~step:0
              [ Ir.Ncomp (store "A" [ Expr.var "i" ]) ]) ]
       a_n)
    "zero step";
  (* iterator used in its own bound *)
  check "self-referential bound"
    (prog
       [ Ir.Nloop
           (Ir.mk_loop ~iter:"i" ~lo:Expr.zero ~hi:(Expr.var "i")
              [ Ir.Ncomp (store "A" [ Expr.var "i" ]) ]) ]
       a_n)
    "unbound variable i";
  (* undeclared array *)
  check "undeclared array"
    (prog [ Ir.Ncomp (store "B" [ Expr.zero ]) ] a_n)
    "undeclared array B";
  (* rank mismatch *)
  check "rank mismatch"
    (prog [ Ir.Ncomp (store "A" [ Expr.zero; Expr.zero ]) ] a_n)
    "rank 1 but 2 subscripts";
  (* duplicate ids *)
  let c = store "A" [ Expr.zero ] in
  check "duplicate id" (prog [ Ir.Ncomp c; Ir.Ncomp c ] a_n) "duplicate id"

let test_validation_hooks () =
  let saved = !Ir.validation_enabled in
  Fun.protect
    ~finally:(fun () -> Ir.validation_enabled := saved)
    (fun () ->
      Ir.validation_enabled := true;
      (* valid inputs pass through both hooks unharmed *)
      let p = lower gemm_src in
      ignore (Pipeline.normalize ~sizes:[ ("n", 16) ] p);
      let nest =
        match p.Ir.body with
        | [ Ir.Nloop l ] -> l
        | _ -> Alcotest.fail "one nest"
      in
      (match Recipe.apply ~outer:[] nest [ Recipe.Vectorize ] with
      | Ok _ -> ()
      | Error m -> Alcotest.fail m);
      (* a malformed program is rejected at the first pipeline stage *)
      let broken =
        prog
          [ Ir.Nloop
              (Ir.mk_loop ~iter:"i" ~lo:Expr.zero ~hi:(Expr.var "mystery")
                 [ Ir.Ncomp (store "A" [ Expr.var "i" ]) ]) ]
          [ decl "A" [ Expr.var "n" ] ]
      in
      match Pipeline.run broken with
      | _ -> Alcotest.fail "expected Diag.Error from validation hook"
      | exception Diag.Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Degenerate nests through the full pipeline *)

let full_pipeline_check src ~sizes =
  let p = lower src in
  let normalized = Pipeline.normalize ~sizes p in
  Alcotest.(check bool) "normalization preserves semantics" true
    (Interp.equivalent p normalized ~sizes ());
  let ctx = S.Common.make_ctx ~sizes ~sample_outer:4 () in
  let db = S.Database.create () in
  S.Seed.seed_database ~epochs:1 ~population:3 ~iterations:1 ctx ~db
    [ (p.Ir.pname, p) ];
  let report = S.Daisy.schedule ctx ~db p in
  Alcotest.(check bool) "scheduling preserves semantics" true
    (Interp.equivalent p report.S.Daisy.program ~sizes ())

let test_zero_trip_pipeline () =
  (* [m] bounds the outer loop but not the arrays, so m = 0 gives a
     zero-trip nest over well-formed storage *)
  full_pipeline_check
    {|void f(int n, int m, double A[n][n]) {
        for (int i = 0; i < m; i++)
          for (int j = 0; j < n; j++)
            A[i][j] = A[i][j] + 1.0;
      }|}
    ~sizes:[ ("n", 5); ("m", 0) ]

let test_negative_step_pipeline () =
  full_pipeline_check
    {|void f(int n, double A[n][n]) {
        for (int i = n - 1; i >= 0; i--)
          for (int j = n - 1; j >= 0; j--)
            A[i][j] = A[i][j] * 2.0 + 1.0;
      }|}
    ~sizes:[ ("n", 9) ]

(* ------------------------------------------------------------------ *)
(* Fault triggers *)

let test_fault_triggers () =
  with_faults (fun () ->
      (* nth fires exactly once, on the nth call *)
      Fault.arm_nth "t" 2;
      Alcotest.(check (list bool)) "nth:2"
        [ false; true; false; false ]
        (List.init 4 (fun _ -> Fault.fires "t"));
      Alcotest.(check int) "calls" 4 (Fault.calls "t");
      Alcotest.(check int) "fired" 1 (Fault.fired "t");
      (* prob is deterministic in its seed *)
      let pattern () = List.init 32 (fun _ -> Fault.fires "p") in
      Fault.arm_prob "p" ~p:0.5 ~seed:"s1";
      let a = pattern () in
      Fault.arm_prob "p" ~p:0.5 ~seed:"s1";
      let b = pattern () in
      Alcotest.(check (list bool)) "same seed, same stream" a b;
      Alcotest.(check bool) "p=0.5 fires sometimes" true
        (List.mem true a && List.mem false a);
      (* unarmed points are inert *)
      Fault.disarm "t";
      Alcotest.(check bool) "disarmed" false (Fault.fires "t");
      (* the DAISY_FAULT spec syntax *)
      Fault.configure "x=always,y=nth:3";
      Alcotest.(check bool) "configured" true
        (Fault.armed "x" && Fault.armed "y");
      Alcotest.check_raises "inject" (Fault.Injected "x") (fun () ->
          Fault.inject "x");
      List.iter
        (fun bad ->
          match Fault.configure bad with
          | () -> Alcotest.fail (bad ^ ": expected Invalid_argument")
          | exception Invalid_argument _ -> ())
        [ "x"; "x=never"; "x=nth:zero"; "x=prob:2.0:s"; "=always" ])

let suite =
  [
    Alcotest.test_case "budget: basics" `Quick test_budget_basics;
    Alcotest.test_case "budget: both interp engines" `Quick
      test_budget_interp_engines;
    Alcotest.test_case "budget: bounds adversarial evaluation" `Quick
      test_budget_bounds_adversarial_evaluation;
    Alcotest.test_case "budget: exhaustion scores infinity" `Quick
      test_budget_exhaustion_is_infinity_fitness;
    Alcotest.test_case "fallback: trace engine, identical result" `Quick
      test_trace_engine_fallback_same_result;
    Alcotest.test_case "fallback: bytecode trace chain" `Quick
      test_bytecode_trace_fallback_chain;
    Alcotest.test_case "fallback: interp engine, equivalence" `Quick
      test_interp_fallback_preserves_equivalence;
    Alcotest.test_case "fallback: budget exhaustion not masked" `Quick
      test_budget_exhaustion_is_not_masked;
    Alcotest.test_case "pool: lowest failure wins at any job count" `Quick
      test_pool_lowest_failure_wins_any_jobs;
    Alcotest.test_case "pool: poisoning skips unclaimed tasks" `Quick
      test_pool_poisoning_skips_unclaimed;
    Alcotest.test_case "pool: fault point" `Quick test_pool_fault_point;
    Alcotest.test_case "db: roundtrip bit-identical" `Quick
      test_db_roundtrip_bit_identical;
    Alcotest.test_case "db: tolerates corruption" `Quick
      test_db_tolerates_corruption;
    Alcotest.test_case "db: tolerates truncation" `Quick
      test_db_tolerates_truncation;
    Alcotest.test_case "db: whole-file errors" `Quick test_db_whole_file_errors;
    Alcotest.test_case "db: load fault point" `Quick test_db_load_fault_point;
    Alcotest.test_case "db: crashed save keeps the old file" `Quick
      test_db_save_crash_keeps_old_file;
    Alcotest.test_case "query: edge cases" `Quick test_query_edge_cases;
    Alcotest.test_case "recipe: of_string roundtrip" `Quick
      test_recipe_of_string_roundtrip;
    Alcotest.test_case "recipe: of_string errors" `Quick
      test_recipe_of_string_errors;
    Alcotest.test_case "validate: accepts valid programs" `Quick
      test_validate_accepts_valid;
    Alcotest.test_case "validate: catches violations" `Quick
      test_validate_catches_violations;
    Alcotest.test_case "validate: pipeline and recipe hooks" `Quick
      test_validation_hooks;
    Alcotest.test_case "pipeline: zero-trip nest" `Quick
      test_zero_trip_pipeline;
    Alcotest.test_case "pipeline: negative-step nest" `Quick
      test_negative_step_pipeline;
    Alcotest.test_case "fault: trigger semantics" `Quick test_fault_triggers;
  ]
