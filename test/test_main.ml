let () =
  Alcotest.run "daisy"
    [
      ("support", Test_support.suite);
      ("pool", Test_pool.suite);
      ("interp", Test_interp.suite);
      ("compile", Test_compile.suite);
      ("poly", Test_poly.suite);
      ("lang", Test_lang.suite);
      ("loopir", Test_loopir.suite);
      ("dependence", Test_dependence.suite);
      ("normalize", Test_normalize.suite);
      ("transforms", Test_transforms.suite);
      ("machine", Test_machine.suite);
      ("trace", Test_trace.suite);
      ("bytecode", Test_bytecode.suite);
      ("idioms", Test_idioms.suite);
      ("lift", Test_lift.suite);
      ("arraylang", Test_arraylang.suite);
      ("scheduler", Test_scheduler.suite);
      ("ann", Test_ann.suite);
      ("shardstore", Test_shardstore.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("property", Test_property.suite);
      ("parallel", Test_parallel.suite);
      ("extensions", Test_extensions.suite);
      ("robustness", Test_robustness.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("resume", Test_resume.suite);
      ("serve", Test_serve.suite);
    ]
