(** Checkpoint-layer tests (docs/robustness.md, "Checkpoint & resume"):
    atomic file replacement survives injected crashes, the journal
    round-trips and rejects mismatched headers with one-line errors,
    corrupt records are skipped (not fatal), config fingerprints are
    sensitive, RNG state round-trips, monotonic deadlines trip
    deterministically, and the greedy shrinker minimizes failing lists. *)

module Util = Daisy_support.Util
module Rng = Daisy_support.Rng
module Fault = Daisy_support.Fault
module Shrink = Daisy_support.Shrink
module Checkpoint = Daisy_support.Checkpoint
module Diag = Daisy_support.Diag

let with_faults f =
  Fun.protect ~finally:Fault.clear (fun () -> Fault.clear (); f ())

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "daisy-test-%d-%s" (Unix.getpid ()) name)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path text =
  let oc = open_out_bin path in
  output_string oc text;
  close_out oc

let cleanup path = try Sys.remove path with Sys_error _ -> ()

let expect_diag what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a Diag.Error" what
  | exception Diag.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Monotonic clock + cooperative deadlines *)

let test_monotonic_clock () =
  let prev = ref (Util.monotonic_s ()) in
  for _ = 1 to 1_000 do
    let t = Util.monotonic_s () in
    if t < !prev then Alcotest.failf "clock went backwards: %f < %f" t !prev;
    prev := t
  done

let test_deadline_basics () =
  (* no deadline: check is a no-op *)
  Util.check_deadline ();
  (* an already-expired deadline trips immediately and deterministically *)
  Alcotest.check_raises "zero deadline" Util.Deadline_exceeded (fun () ->
      Util.with_deadline (Some 0.0) (fun () -> ()));
  (* a generous deadline does not trip *)
  let r = Util.with_deadline (Some 60.0) (fun () -> Util.check_deadline (); 42) in
  Alcotest.(check int) "ran under deadline" 42 r;
  (* the deadline is cleared afterwards, also on the raising path *)
  Util.check_deadline ();
  (try Util.with_deadline (Some 0.0) (fun () -> ()) with
  | Util.Deadline_exceeded -> ());
  Util.check_deadline ();
  (* [None] is just the thunk *)
  Alcotest.(check int) "no deadline" 7 (Util.with_deadline None (fun () -> 7))

(* ------------------------------------------------------------------ *)
(* Atomic file replacement *)

let no_temp_left path =
  let dir = Filename.dirname path and base = Filename.basename path in
  Sys.readdir dir
  |> Array.for_all (fun f ->
         not
           (String.length f > String.length base
           && String.sub f 0 (String.length base) = base
           && String.length f > String.length base + 4
           && String.sub f (String.length base) 5 = ".tmp."))

let test_atomic_write_success () =
  let path = tmp_path "aw-success" in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      Checkpoint.atomic_write path (fun oc -> output_string oc "hello\n");
      Alcotest.(check string) "content" "hello\n" (read_file path);
      Checkpoint.atomic_write path (fun oc -> output_string oc "world\n");
      Alcotest.(check string) "replaced" "world\n" (read_file path);
      Alcotest.(check bool) "no temp left" true (no_temp_left path))

let test_atomic_write_crash_keeps_old () =
  with_faults (fun () ->
      let path = tmp_path "aw-crash" in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          Checkpoint.atomic_write path (fun oc -> output_string oc "old\n");
          Fault.arm_always "test_atomic";
          (match
             Checkpoint.atomic_write ~fault_label:"test_atomic" path (fun oc ->
                 output_string oc "new\n")
           with
          | () -> Alcotest.fail "expected the injected fault to fire"
          | exception Fault.Injected "test_atomic" -> ());
          (* the old file survives untouched and the temp file is gone *)
          Alcotest.(check string) "old content intact" "old\n" (read_file path);
          Alcotest.(check bool) "no temp left" true (no_temp_left path);
          (* a writer exception behaves the same *)
          Fault.disarm "test_atomic";
          (match
             Checkpoint.atomic_write path (fun oc ->
                 output_string oc "half";
                 failwith "writer died")
           with
          | () -> Alcotest.fail "expected the writer to raise"
          | exception Failure _ -> ());
          Alcotest.(check string) "still intact" "old\n" (read_file path)))

(* ------------------------------------------------------------------ *)
(* The journal *)

let test_journal_roundtrip () =
  let path = tmp_path "journal-rt" in
  let fp = Checkpoint.fingerprint [ ("k", "v") ] in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let j =
        Checkpoint.open_journal ~path ~kind:"test" ~fingerprint:fp
          ~resume:false ()
      in
      Checkpoint.set j "alpha" [ "line 1"; "line 2" ];
      Checkpoint.set j "beta with spaces" [];
      Checkpoint.set j "gamma" [ "| looks like framing"; "end"; "" ];
      let j' =
        Checkpoint.open_journal ~path ~kind:"test" ~fingerprint:fp
          ~resume:true ()
      in
      Alcotest.(check (list string)) "no warnings" [] (Checkpoint.warnings j');
      Alcotest.(check (list string))
        "keys" [ "alpha"; "beta with spaces"; "gamma" ] (Checkpoint.keys j');
      Alcotest.(check (option (list string)))
        "alpha" (Some [ "line 1"; "line 2" ])
        (Checkpoint.find j' "alpha");
      Alcotest.(check (option (list string)))
        "empty payload" (Some []) (Checkpoint.find j' "beta with spaces");
      Alcotest.(check (option (list string)))
        "payload that looks like framing"
        (Some [ "| looks like framing"; "end"; "" ])
        (Checkpoint.find j' "gamma");
      Alcotest.(check (option (list string)))
        "absent key" None (Checkpoint.find j' "delta"))

let test_journal_set_many_and_delete () =
  let path = tmp_path "journal-sm" in
  let fp = Checkpoint.fingerprint [] in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let j =
        Checkpoint.open_journal ~path ~kind:"test" ~fingerprint:fp
          ~resume:false ()
      in
      Checkpoint.set j "search/1" [ "gen 0" ];
      Checkpoint.set j "search/2" [ "gen 1" ];
      (* the collapse pattern: remove the live snapshots and commit the
         compact record in one atomic persist *)
      Checkpoint.set_many j
        ~remove:[ "search/1"; "search/2" ]
        [ ("epoch", [ "epoch 1" ]) ];
      let j' =
        Checkpoint.open_journal ~path ~kind:"test" ~fingerprint:fp
          ~resume:true ()
      in
      Alcotest.(check (list string)) "collapsed" [ "epoch" ] (Checkpoint.keys j');
      Checkpoint.remove j "epoch";
      Alcotest.(check (list string)) "removed" [] (Checkpoint.keys j);
      Checkpoint.delete j;
      Alcotest.(check bool) "file deleted" false (Sys.file_exists path);
      (* newlines in keys or payloads are caller bugs, rejected eagerly *)
      Alcotest.check_raises "newline key"
        (Invalid_argument "Checkpoint: record key contains a newline")
        (fun () -> Checkpoint.set j "bad\nkey" []);
      Alcotest.check_raises "newline payload"
        (Invalid_argument "Checkpoint: payload line contains a newline")
        (fun () -> Checkpoint.set j "key" [ "bad\nline" ]))

let test_journal_rejections () =
  let path = tmp_path "journal-rej" in
  let fp = Checkpoint.fingerprint [ ("size", "64") ] in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      expect_diag "missing file" (fun () ->
          Checkpoint.open_journal ~path ~kind:"test" ~fingerprint:fp
            ~resume:true ());
      write_file path "not a checkpoint\n";
      expect_diag "bad magic" (fun () ->
          Checkpoint.open_journal ~path ~kind:"test" ~fingerprint:fp
            ~resume:true ());
      write_file path (Printf.sprintf "DAISYCKPT 99 test\nfingerprint %s\n" fp);
      expect_diag "unsupported version" (fun () ->
          Checkpoint.open_journal ~path ~kind:"test" ~fingerprint:fp
            ~resume:true ());
      (* a real journal of another kind / another configuration *)
      let j =
        Checkpoint.open_journal ~path ~kind:"seed" ~fingerprint:fp
          ~resume:false ()
      in
      Checkpoint.set j "r" [ "x" ];
      expect_diag "kind mismatch" (fun () ->
          Checkpoint.open_journal ~path ~kind:"bench" ~fingerprint:fp
            ~resume:true ());
      expect_diag "fingerprint mismatch" (fun () ->
          Checkpoint.open_journal ~path ~kind:"seed"
            ~fingerprint:(Checkpoint.fingerprint [ ("size", "128") ])
            ~resume:true ());
      (* the matching invocation still resumes *)
      let j' =
        Checkpoint.open_journal ~path ~kind:"seed" ~fingerprint:fp
          ~resume:true ()
      in
      Alcotest.(check (option (list string)))
        "matching resume" (Some [ "x" ]) (Checkpoint.find j' "r"))

let test_journal_corrupt_record_skipped () =
  let path = tmp_path "journal-corrupt" in
  let fp = Checkpoint.fingerprint [] in
  Fun.protect
    ~finally:(fun () -> cleanup path)
    (fun () ->
      let j =
        Checkpoint.open_journal ~path ~kind:"test" ~fingerprint:fp
          ~resume:false ()
      in
      Checkpoint.set j "good" [ "payload g" ];
      Checkpoint.set j "bad" [ "payload b" ];
      (* flip the bad record's payload on disk without fixing its checksum *)
      let text = read_file path in
      let corrupted =
        Str.global_replace (Str.regexp_string "| payload b") "| tampered" text
      in
      Alcotest.(check bool) "fixture tampered" true (text <> corrupted);
      write_file path corrupted;
      let j' =
        Checkpoint.open_journal ~path ~kind:"test" ~fingerprint:fp
          ~resume:true ()
      in
      Alcotest.(check (option (list string)))
        "good record kept" (Some [ "payload g" ])
        (Checkpoint.find j' "good");
      Alcotest.(check (option (list string)))
        "corrupt record dropped" None (Checkpoint.find j' "bad");
      Alcotest.(check int) "one warning" 1 (List.length (Checkpoint.warnings j'));
      Alcotest.(check bool) "warning names the checksum" true
        (String.length (List.hd (Checkpoint.warnings j')) > 0))

let test_journal_crash_loses_only_update_in_flight () =
  with_faults (fun () ->
      let path = tmp_path "journal-crash" in
      let fp = Checkpoint.fingerprint [] in
      Fun.protect
        ~finally:(fun () -> cleanup path)
        (fun () ->
          let j =
            Checkpoint.open_journal ~path ~kind:"test" ~fingerprint:fp
              ~resume:false ()
          in
          Checkpoint.set j "gen/0" [ "first snapshot" ];
          (* the 2nd persist crashes between write-temp and rename *)
          Fault.arm_nth "checkpoint_save" 1;
          (match Checkpoint.set j "gen/1" [ "second snapshot" ] with
          | () -> Alcotest.fail "expected the injected crash"
          | exception Fault.Injected "checkpoint_save" -> ());
          (* on disk: the previous complete snapshot, nothing torn *)
          let j' =
            Checkpoint.open_journal ~path ~kind:"test" ~fingerprint:fp
              ~resume:true ()
          in
          Alcotest.(check (list string))
            "previous snapshot intact" [ "gen/0" ] (Checkpoint.keys j');
          Alcotest.(check bool) "no temp left" true (no_temp_left path)))

(* ------------------------------------------------------------------ *)
(* Config fingerprints *)

let test_fingerprint_sensitivity () =
  let fp = Checkpoint.fingerprint in
  Alcotest.(check string)
    "deterministic"
    (fp [ ("a", "1"); ("b", "2") ])
    (fp [ ("a", "1"); ("b", "2") ]);
  Alcotest.(check bool) "value change" true
    (fp [ ("a", "1") ] <> fp [ ("a", "2") ]);
  Alcotest.(check bool) "key change" true
    (fp [ ("a", "1") ] <> fp [ ("b", "1") ]);
  Alcotest.(check bool) "extra pair" true
    (fp [ ("a", "1") ] <> fp [ ("a", "1"); ("b", "2") ]);
  (* quoting means pair boundaries cannot be forged by embedded separators *)
  Alcotest.(check bool) "no concatenation ambiguity" true
    (fp [ ("a", "1\"=\"2") ] <> fp [ ("a", "1"); ("", "2") ]);
  Alcotest.(check int) "16 hex digits" 16 (String.length (fp []))

(* ------------------------------------------------------------------ *)
(* RNG state round-trip *)

let test_rng_state_roundtrip () =
  let r = Rng.of_string "checkpoint-test" in
  for _ = 1 to 5 do ignore (Rng.next_int64 r) done;
  let saved = Rng.state r in
  let draws rng = List.init 20 (fun _ -> Rng.next_int64 rng) in
  let reference = draws r in
  Alcotest.(check (list int64))
    "restore continues the stream" reference
    (draws (Rng.restore saved));
  Rng.set_state r saved;
  Alcotest.(check (list int64)) "set_state rewinds in place" reference (draws r);
  (* serialization used by the snapshots: %016Lx round-trips the state *)
  let printed = Printf.sprintf "%016Lx" saved in
  Alcotest.(check int64)
    "hex round-trip" saved
    (Int64.of_string ("0x" ^ printed))

(* ------------------------------------------------------------------ *)
(* The greedy shrinker *)

let test_shrink_minimizes () =
  let xs = List.init 20 (fun i -> i + 1) in
  let shrunk = Shrink.list ~still_fails:(fun l -> List.mem 7 l) xs in
  Alcotest.(check (list int)) "single witness" [ 7 ] shrunk;
  let shrunk =
    Shrink.list
      ~still_fails:(fun l -> List.mem 3 l && List.mem 5 l && List.mem 9 l)
      xs
  in
  Alcotest.(check (list int)) "set witness, order kept" [ 3; 5; 9 ] shrunk

let test_shrink_bounds_and_exceptions () =
  let checks = ref 0 in
  let shrunk =
    Shrink.list ~max_checks:5
      ~still_fails:(fun l ->
        incr checks;
        List.mem 1 l)
      (List.init 100 (fun i -> i))
  in
  Alcotest.(check bool) "bounded" true (!checks <= 5);
  Alcotest.(check bool) "still failing" true (List.mem 1 shrunk);
  (* a predicate that raises counts as "no longer failing": the input
     comes back unchanged and the shrinker never raises *)
  let xs = [ 1; 2; 3; 4 ] in
  let shrunk =
    Shrink.list
      ~still_fails:(fun l -> if List.length l < 4 then failwith "boom" else true)
      xs
  in
  Alcotest.(check (list int)) "exceptions contained" xs shrunk

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "monotonic clock never decreases" `Quick
      test_monotonic_clock;
    Alcotest.test_case "cooperative deadlines" `Quick test_deadline_basics;
    Alcotest.test_case "atomic_write replaces atomically" `Quick
      test_atomic_write_success;
    Alcotest.test_case "atomic_write crash keeps the old file" `Quick
      test_atomic_write_crash_keeps_old;
    Alcotest.test_case "journal round-trips" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal set_many collapses atomically" `Quick
      test_journal_set_many_and_delete;
    Alcotest.test_case "journal rejects mismatched headers" `Quick
      test_journal_rejections;
    Alcotest.test_case "corrupt records are skipped with a warning" `Quick
      test_journal_corrupt_record_skipped;
    Alcotest.test_case "a crashed persist loses only the update in flight"
      `Quick test_journal_crash_loses_only_update_in_flight;
    Alcotest.test_case "config fingerprints are sensitive" `Quick
      test_fingerprint_sensitivity;
    Alcotest.test_case "rng state round-trips" `Quick test_rng_state_roundtrip;
    Alcotest.test_case "shrinker minimizes failing lists" `Quick
      test_shrink_minimizes;
    Alcotest.test_case "shrinker is bounded and contains exceptions" `Quick
      test_shrink_bounds_and_exceptions;
  ]
