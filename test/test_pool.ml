(** Unit tests for the domain work pool ({!Daisy_support.Pool}): result
    order, edge cases, exception propagation, reuse, and nesting. *)

module Pool = Daisy_support.Pool

let with_pool4 f = Pool.with_pool ~jobs:4 f

let test_empty_input () =
  with_pool4 (fun pool ->
      Alcotest.(check (list int)) "empty map" []
        (Pool.map ?pool (fun x -> x * 2) []);
      Pool.iter ?pool (fun _ -> Alcotest.fail "no calls expected") [])

let test_single_item () =
  with_pool4 (fun pool ->
      Alcotest.(check (list int)) "single item" [ 14 ]
        (Pool.map ?pool (fun x -> x * 2) [ 7 ]))

let test_more_items_than_domains () =
  (* 100 items over 3 worker domains + the caller: order must match the
     sequential map exactly *)
  let xs = List.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  with_pool4 (fun pool ->
      Alcotest.(check (list int)) "order preserved" (List.map f xs)
        (Pool.map ?pool f xs))

let test_exception_propagation () =
  with_pool4 (fun pool ->
      match
        Pool.map ?pool
          (fun x -> if x = 5 then invalid_arg "boom from worker" else x)
          (List.init 10 (fun i -> i))
      with
      | _ -> Alcotest.fail "expected Invalid_argument"
      | exception Invalid_argument m ->
          Alcotest.(check string) "message" "boom from worker" m)

let test_first_failure_wins () =
  (* several tasks fail: the lowest-index failure is the one re-raised *)
  with_pool4 (fun pool ->
      match
        Pool.map ?pool
          (fun x -> if x >= 3 then failwith (string_of_int x) else x)
          [ 0; 1; 2; 3; 4; 5 ]
      with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m -> Alcotest.(check string) "lowest index" "3" m)

let test_reuse_across_submissions () =
  with_pool4 (fun pool ->
      for round = 1 to 5 do
        let xs = List.init (10 * round) (fun i -> i) in
        Alcotest.(check (list int))
          (Printf.sprintf "round %d" round)
          (List.map (fun x -> x + round) xs)
          (Pool.map ?pool (fun x -> x + round) xs)
      done;
      (* a failing batch must not poison the pool for later batches *)
      (try ignore (Pool.map ?pool (fun _ -> failwith "transient") [ 1; 2 ])
       with Failure _ -> ());
      Alcotest.(check (list int)) "after failure" [ 2; 4 ]
        (Pool.map ?pool (fun x -> 2 * x) [ 1; 2 ]))

let test_nested_map () =
  (* a task may submit to the same pool: the submitter participates in its
     own batch, so this cannot deadlock *)
  with_pool4 (fun pool ->
      let result =
        Pool.map ?pool
          (fun i ->
            Pool.map ?pool (fun j -> (i * 10) + j) [ 0; 1; 2 ]
            |> List.fold_left ( + ) 0)
          [ 1; 2; 3; 4; 5; 6 ]
      in
      Alcotest.(check (list int)) "nested"
        [ 33; 63; 93; 123; 153; 183 ] result)

let test_sequential_fallbacks () =
  (* jobs <= 1 must not spawn domains and must behave like List.map *)
  Pool.with_pool ~jobs:1 (fun pool ->
      Alcotest.(check bool) "no pool for jobs=1" true (pool = None));
  let p = Pool.create ~jobs:1 in
  Alcotest.(check int) "jobs" 1 (Pool.jobs p);
  Alcotest.(check (list int)) "inline map" [ 2; 4 ]
    (Pool.map ~pool:p (fun x -> 2 * x) [ 1; 2 ]);
  Pool.shutdown p;
  (* submissions after shutdown degrade to inline execution *)
  let p4 = Pool.create ~jobs:4 in
  Pool.shutdown p4;
  Pool.shutdown p4 (* idempotent *);
  Alcotest.(check (list int)) "map after shutdown" [ 1; 4; 9 ]
    (Pool.map ~pool:p4 (fun x -> x * x) [ 1; 2; 3 ])

let suite =
  [
    ("empty input", `Quick, test_empty_input);
    ("single item", `Quick, test_single_item);
    ("more items than domains", `Quick, test_more_items_than_domains);
    ("exception propagation", `Quick, test_exception_propagation);
    ("first failure wins", `Quick, test_first_failure_wins);
    ("reuse across submissions", `Quick, test_reuse_across_submissions);
    ("nested map", `Quick, test_nested_map);
    ("sequential fallbacks", `Quick, test_sequential_fallbacks);
  ]
