(** Tests for the schedulers: baselines produce valid (semantics-preserving)
    programs, the database/transfer-tuning machinery works, and the daisy
    pipeline achieves the paper's robustness property on a mini benchmark
    set. *)

module Ir = Daisy_loopir.Ir
module S = Daisy_scheduler
module Interp = Daisy_interp.Interp
module Rng = Daisy_support.Rng

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"

let gemm_src =
  {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
      for (int i = 0; i < n; i++)
        for (int k = 0; k < n; k++)
          for (int j = 0; j < n; j++)
            C[i][j] += A[i][k] * B[k][j];
    }|}

let small_ctx = S.Common.make_ctx ~sizes:[ ("n", 48) ] ~sample_outer:8 ()

let check_equiv ~sizes p1 p2 =
  Alcotest.(check bool) "equivalent" true (Interp.equivalent p1 p2 ~sizes ())

(* ------------------------------------------------------------------ *)
(* Baselines *)

let test_clang_preserves () =
  let p = lower gemm_src in
  let p' = S.Baselines.clang_like p in
  check_equiv ~sizes:[ ("n", 8) ] p p';
  (* gemm's innermost j loop is vectorizable *)
  let loops = Ir.loops_in p'.Ir.body in
  Alcotest.(check bool) "innermost vectorized" true
    (List.exists (fun (l : Ir.loop) -> l.Ir.attrs.Ir.vectorized) loops)

let test_icc_parallelizes () =
  let p = lower gemm_src in
  let p' = S.Baselines.icc_like p in
  check_equiv ~sizes:[ ("n", 8) ] p p';
  match p'.Ir.body with
  | [ Ir.Nloop l ] ->
      Alcotest.(check bool) "outer parallel" true l.Ir.attrs.Ir.parallel
  | _ -> Alcotest.fail "one nest"

let test_polly_tiles () =
  let p = lower gemm_src in
  let p' = S.Baselines.polly_like p in
  check_equiv ~sizes:[ ("n", 8) ] p p';
  Alcotest.(check bool) "more loops after tiling" true
    (List.length (Ir.loops_in p'.Ir.body) > 3)

let test_polly_keeps_source_order () =
  (* Polly does not reorder for stride: a badly-ordered copy keeps its
     order (the modeled weakness the paper exploits) *)
  let p =
    lower
      {|void f(int n, double A[n][n], double B[n][n]) {
          for (int j = 0; j < n; j++)
            for (int i = 0; i < n; i++)
              A[i][j] = B[i][j];
        }|}
  in
  let p' = S.Baselines.polly_like p in
  (* the point loops preserve j-outside-i order *)
  let iters =
    List.filter_map
      (fun (l : Ir.loop) ->
        if String.length l.Ir.iter = 1 then Some l.Ir.iter else None)
      (Ir.loops_in p'.Ir.body)
  in
  Alcotest.(check (list string)) "j before i" [ "j"; "i" ] iters

let test_polly_bails_on_guard () =
  let p =
    lower
      {|void f(int n, double A[n], double x) {
          for (int i = 0; i < n; i++)
            if (x > 0.0) A[i] = 1.0;
        }|}
  in
  let p' = S.Baselines.polly_like p in
  check_equiv ~sizes:[ ("n", 9) ] p p';
  Alcotest.(check bool) "no tiling on non-SCoP" true
    (List.length (Ir.loops_in p'.Ir.body) = 1)

(* ------------------------------------------------------------------ *)
(* Tiramisu model *)

let test_tiramisu_schedules_gemm () =
  let p = lower gemm_src in
  match S.Tiramisu.schedule small_ctx p with
  | S.Tiramisu.Unsupported r -> Alcotest.failf "unsupported: %s" r
  | S.Tiramisu.Scheduled p' -> check_equiv ~sizes:[ ("n", 8) ] p p'

let test_tiramisu_unsupported_imperfect () =
  (* an imperfect nest that fission cannot separate (dependence cycle) is
     not convertible by the adapter *)
  let p =
    lower
      {|void f(int n, double A[n][n], double B[n][n]) {
          for (int i = 1; i < n; i++) {
            for (int j = 1; j < n; j++) {
              A[i][j] = B[i][j - 1] + 1.0;
              B[i][j] = A[i][j] * 0.5;
            }
            A[i][0] = A[i - 1][0];
          }
        }|}
  in
  match S.Tiramisu.schedule small_ctx p with
  | S.Tiramisu.Unsupported _ -> ()
  | S.Tiramisu.Scheduled _ ->
      (* acceptable if fission separated everything; then it must at least
         preserve semantics *)
      ()

let test_tiramisu_deterministic () =
  let p = lower gemm_src in
  let r1 = S.Tiramisu.schedule ~seed:7 small_ctx p in
  let r2 = S.Tiramisu.schedule ~seed:7 small_ctx p in
  match (r1, r2) with
  | S.Tiramisu.Scheduled a, S.Tiramisu.Scheduled b ->
      Alcotest.(check bool) "same schedule" true
        (Ir.equal_structure a.Ir.body b.Ir.body)
  | _ -> Alcotest.fail "expected schedules"

(* ------------------------------------------------------------------ *)
(* Database + evolution + daisy *)

let test_evolution_improves () =
  let p = lower gemm_src in
  let nest =
    match p.Ir.body with [ Ir.Nloop l ] -> l | _ -> Alcotest.fail "nest"
  in
  let rng = Rng.of_string "evolve-test" in
  let base = S.Common.nest_runtime_ms small_ctx p (Ir.Nloop nest) in
  let recipe, best =
    S.Evolve.search small_ctx p nest ~seeds:(S.Tiramisu.proposals nest) ~rng
  in
  Alcotest.(check bool)
    (Printf.sprintf "evolved %.3f <= base %.3f (%s)" best base
       (Daisy_transforms.Recipe.to_string recipe))
    true (best <= base)

let test_fitness_cache_hits () =
  (* Regression: eval_cached keys must canonicalize the wrapped nest.
     [Common.wrap_outer] mints fresh loop ids on every call, so without
     [Ir.canon_nodes] in the key, repeated evaluations of the same
     candidate (the common case inside [Evolve.search]) would all miss
     and re-walk the trace. Assert actual hit/miss counts. *)
  let p =
    lower
      {|void f(int n, double A[n], double B[n]) {
          for (int t = 0; t < 10; t++) {
            for (int i = 1; i < n - 1; i++)
              B[i] = A[i - 1] + A[i + 1];
            for (int i = 1; i < n - 1; i++)
              A[i] = B[i];
          }
        }|}
  in
  let outer, nest =
    match
      List.find_opt (fun (o, _) -> o <> []) (S.Common.program_units p)
    with
    | Some u -> u
    | None -> Alcotest.fail "expected a unit with enclosing outer loops"
  in
  let cache = S.Evolve.create_cache () in
  let eval () = S.Evolve.eval_cached cache small_ctx ~outer p nest [] in
  let t1 = eval () in
  let t2 = eval () in
  let t3 = eval () in
  Alcotest.(check int) "one miss" 1 (S.Evolve.cache_misses cache);
  Alcotest.(check int) "two hits" 2 (S.Evolve.cache_hits cache);
  Alcotest.(check bool) "same fitness" true (t1 = t2 && t2 = t3);
  (* a different recipe is a different key: one more miss, no new hits *)
  ignore
    (S.Evolve.eval_cached cache small_ctx ~outer p nest
       [ Daisy_transforms.Recipe.Vectorize ]);
  Alcotest.(check int) "distinct recipe misses" 2 (S.Evolve.cache_misses cache);
  Alcotest.(check int) "hits unchanged" 2 (S.Evolve.cache_hits cache)

let test_database_roundtrip () =
  let db = S.Database.create () in
  let p = lower gemm_src in
  let nest =
    match p.Ir.body with [ Ir.Nloop l ] -> l | _ -> Alcotest.fail "nest"
  in
  S.Database.add db ~source:"gemm" ~nest
    ~recipe:[ Daisy_transforms.Recipe.Vectorize ];
  Alcotest.(check int) "size" 1 (S.Database.size db);
  (* same structure -> exact match *)
  Alcotest.(check int) "exact match" 1
    (List.length (S.Database.exact_matches db nest));
  match S.Database.query db ~k:1 nest with
  | [ (d, _) ] -> Alcotest.(check bool) "distance 0" true (d < 1e-9)
  | _ -> Alcotest.fail "query"

let test_daisy_preserves_and_uses_blas () =
  let db = S.Database.create () in
  let p = lower gemm_src in
  let report = S.Daisy.schedule small_ctx ~db p in
  check_equiv ~sizes:[ ("n", 8) ] p report.S.Daisy.program;
  Alcotest.(check int) "gemm lifted to BLAS" 1 report.S.Daisy.blas_calls

let test_daisy_robustness_mini () =
  (* the paper's core claim in miniature: daisy on a B variant performs
     within measurement noise of daisy on the A variant *)
  let a = lower gemm_src in
  let b =
    lower
      {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
          for (int j = 0; j < n; j++)
            for (int i = 0; i < n; i++)
              for (int k = 0; k < n; k++)
                C[i][j] += A[i][k] * B[k][j];
        }|}
  in
  let db = S.Database.create () in
  S.Seed.seed_database ~epochs:1 ~population:4 ~iterations:1 small_ctx ~db
    [ ("gemm", a) ];
  let run p = S.Common.runtime_ms small_ctx (S.Daisy.schedule small_ctx ~db p).S.Daisy.program in
  let ta = run a and tb = run b in
  let ratio = Float.max (ta /. tb) (tb /. ta) in
  Alcotest.(check bool)
    (Printf.sprintf "A %.3f ms vs B %.3f ms (ratio %.2f)" ta tb ratio)
    true (ratio < 1.2)

let test_daisy_unliftable_fallback () =
  let p =
    lower
      {|void f(int n, double A[n][n], double s[1]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              if (A[i][j] > 0.5)
                s[0] += A[i][j];
        }|}
  in
  let db = S.Database.create () in
  let report = S.Daisy.schedule small_ctx ~db p in
  Alcotest.(check bool) "marked unliftable" true
    (List.exists
       (fun d -> d.S.Daisy.action = `Unliftable)
       report.S.Daisy.decisions);
  (* the fallback runs the reduction in parallel with atomics *)
  match report.S.Daisy.program.Ir.body with
  | [ Ir.Nloop l ] ->
      Alcotest.(check bool) "parallel" true l.Ir.attrs.Ir.parallel;
      Alcotest.(check bool) "atomic" true l.Ir.attrs.Ir.atomic
  | _ -> Alcotest.fail "one nest"

let test_daisy_ablation_configs () =
  let p = lower gemm_src in
  let db = S.Database.create () in
  S.Seed.seed_database ~epochs:1 ~population:4 ~iterations:1 small_ctx ~db
    [ ("gemm", p) ];
  List.iter
    (fun options ->
      let report = S.Daisy.schedule ~options small_ctx ~db p in
      check_equiv ~sizes:[ ("n", 8) ] p report.S.Daisy.program)
    [
      { S.Daisy.normalize = true; transfer = true };
      { S.Daisy.normalize = true; transfer = false };
      { S.Daisy.normalize = false; transfer = true };
      { S.Daisy.normalize = false; transfer = false };
    ]

let test_umbrella_compile () =
  (* the one-call public API: lir path + normalization + scheduling *)
  let result = Daisy.compile ~sizes:[ ("n", 48) ] ~threads:4 gemm_src in
  Alcotest.(check bool) "scheduled faster or equal" true
    (result.Daisy.scheduled_ms <= result.Daisy.original_ms);
  Alcotest.(check bool) "semantics preserved" true
    (Interp.equivalent result.Daisy.original result.Daisy.scheduled
       ~sizes:[ ("n", 8) ] ())

let suite =
  [
    ("umbrella Daisy.compile", `Slow, test_umbrella_compile);
    ("clang preserves + vectorizes", `Quick, test_clang_preserves);
    ("icc parallelizes", `Quick, test_icc_parallelizes);
    ("polly tiles", `Quick, test_polly_tiles);
    ("polly keeps source order", `Quick, test_polly_keeps_source_order);
    ("polly bails on guards", `Quick, test_polly_bails_on_guard);
    ("tiramisu schedules gemm", `Slow, test_tiramisu_schedules_gemm);
    ("tiramisu imperfect nests", `Quick, test_tiramisu_unsupported_imperfect);
    ("tiramisu deterministic", `Slow, test_tiramisu_deterministic);
    ("evolution improves", `Slow, test_evolution_improves);
    ("fitness cache hits across wrap_outer", `Quick, test_fitness_cache_hits);
    ("database roundtrip", `Quick, test_database_roundtrip);
    ("daisy preserves + BLAS", `Slow, test_daisy_preserves_and_uses_blas);
    ("daisy A/B robustness mini", `Slow, test_daisy_robustness_mini);
    ("daisy unliftable fallback", `Quick, test_daisy_unliftable_fallback);
    ("daisy ablation configs", `Slow, test_daisy_ablation_configs);
  ]
