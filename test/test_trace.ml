(** Differential tests of the compiled trace engine
    ([Daisy_machine.Trace_compile]): in exact mode its counters must be
    {e bitwise identical} to the tree-walking oracle [Trace.run] — every
    float field compared through [Int64.bits_of_float], including the
    cache statistics — on every benchmark family in the repo, with and
    without outer-loop sampling, and on random programs. Approx mode
    (line-granular stepping + adaptive loop sampling) must stay within
    the documented relative-error bound of the exact engine. *)

module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Config = Daisy_machine.Config
module Trace = Daisy_machine.Trace
module Tc = Daisy_machine.Trace_compile
module Cost = Daisy_machine.Cost
module Pb = Daisy_benchmarks.Polybench
module Np = Daisy_benchmarks.Npbench
module Variants = Daisy_benchmarks.Variants
module Cloudsc = Daisy_benchmarks.Cloudsc
module Alower = Daisy_arraylang.Lower

let config = Config.default

(* ------------------------------------------------------------------ *)
(* Bitwise counter comparison                                           *)

let pp_counters ppf (c : Trace.counters) =
  Fmt.pf ppf
    "flops=%h vec=%h unr=%h loads=%h stores=%h gather=%h spill=%h atomics=%h \
     atomics_p=%h regions=%h par_trip=%h has_par=%b lib_f=%h lib_b=%h \
     l1=(%h %h %h %h) l2=(%h %h %h %h)"
    c.Trace.flops c.Trace.vec_flops c.Trace.unrolled_flops c.Trace.loads
    c.Trace.stores c.Trace.gather_extra c.Trace.spill_ops c.Trace.atomics
    c.Trace.atomics_private c.Trace.parallel_regions c.Trace.par_trip
    c.Trace.has_parallel c.Trace.libcall_flops c.Trace.libcall_bytes
    c.Trace.l1.Daisy_machine.Cache.accesses
    c.Trace.l1.Daisy_machine.Cache.misses
    c.Trace.l1.Daisy_machine.Cache.evicts
    c.Trace.l1.Daisy_machine.Cache.writebacks
    c.Trace.l2.Daisy_machine.Cache.accesses
    c.Trace.l2.Daisy_machine.Cache.misses
    c.Trace.l2.Daisy_machine.Cache.evicts
    c.Trace.l2.Daisy_machine.Cache.writebacks

let check_identical name (p : Ir.program) ~sizes ~sample_outer =
  let tree = Trace.run config p ~sizes ~sample_outer () in
  let compiled = Tc.run config p ~sizes ~sample_outer () in
  Alcotest.(check int)
    (name ^ ": same nest count")
    (List.length tree) (List.length compiled);
  List.iteri
    (fun i (a, b) ->
      if not (Tc.counters_equal a b) then
        Alcotest.failf "%s (sample=%d): nest %d differs@.tree:     %a@.compiled: %a"
          name sample_outer i pp_counters a pp_counters b)
    (List.combine tree compiled)

(** Exercise both the exact path and the depth-0 sampling path. *)
let check_both name p ~sizes =
  check_identical name p ~sizes ~sample_outer:0;
  check_identical name p ~sizes ~sample_outer:7

(* ------------------------------------------------------------------ *)
(* Benchmark sweeps                                                     *)

let test_polybench_a () =
  List.iter
    (fun (b : Pb.benchmark) ->
      check_both ("A:" ^ b.Pb.name) (Pb.program b) ~sizes:b.Pb.test_sizes)
    (Pb.all @ Pb.extras)

let test_polybench_b () =
  List.iter
    (fun (b : Pb.benchmark) ->
      let v = Variants.generate ~seed:("bvariant-" ^ b.Pb.name) (Pb.program b) in
      check_both ("B:" ^ b.Pb.name) v ~sizes:b.Pb.test_sizes)
    Pb.all

let test_npbench () =
  List.iter
    (fun (b : Np.benchmark) ->
      List.iter
        (fun (pname, policy) ->
          let p = Alower.lower policy b.Np.program in
          check_both
            (Printf.sprintf "np:%s:%s" b.Np.name pname)
            p ~sizes:b.Np.test_sizes)
        [ ("frontend", Alower.frontend_policy); ("numpy", Alower.numpy_policy) ])
    Np.all

let test_cloudsc () =
  let orig, sizes = Cloudsc.erosion_original ~iters:3 in
  check_both "cloudsc:erosion-original" orig ~sizes;
  let opt, sizes = Cloudsc.erosion_optimized ~iters:3 in
  check_both "cloudsc:erosion-optimized" opt ~sizes;
  let small_sizes = [ ("nblocks", 2); ("klev", 6); ("nproma", 8) ] in
  List.iter
    (fun v ->
      let p, _ = Cloudsc.full_model v ~blocks:2 in
      check_both ("cloudsc:" ^ Cloudsc.string_of_version v) p ~sizes:small_sizes)
    Cloudsc.all_versions

(* library-call replacement exercises the Ncall counter path *)
let test_libcalls () =
  let replaced = ref 0 in
  List.iter
    (fun (b : Pb.benchmark) ->
      let p, n = Daisy_blas.Patterns.replace_all (Pb.program b) in
      replaced := !replaced + n;
      if n > 0 then check_both ("libcall:" ^ b.Pb.name) p ~sizes:b.Pb.test_sizes)
    Pb.all;
  Alcotest.(check bool) "library calls exercised" true (!replaced > 0)

(* ------------------------------------------------------------------ *)
(* Loop attributes: parallel / atomic / vectorized / unrolled paths      *)

(** Mark the outermost loop parallel+atomic, innermost loops vectorized,
    intermediate loops unrolled — lights up every static-context branch of
    the walker (flop classes, gathers, atomics, spill×unroll, regions). *)
let mark_attrs (p : Ir.program) : Ir.program =
  let rec mark depth (n : Ir.node) =
    match n with
    | Ir.Nloop l ->
        let attrs =
          if depth = 0 then
            { l.Ir.attrs with Ir.parallel = true; Ir.atomic = true }
          else if Ir.loops_in l.Ir.body = [] then
            { l.Ir.attrs with Ir.vectorized = true }
          else { l.Ir.attrs with Ir.unroll = 4 }
        in
        Ir.Nloop
          { l with Ir.attrs; Ir.body = List.map (mark (depth + 1)) l.Ir.body }
    | other -> other
  in
  { p with Ir.body = List.map (mark 0) p.Ir.body }

let test_attributed_loops () =
  List.iter
    (fun (b : Pb.benchmark) ->
      check_both ("attrs:" ^ b.Pb.name) (mark_attrs (Pb.program b))
        ~sizes:b.Pb.test_sizes)
    Pb.all

(* ------------------------------------------------------------------ *)
(* Non-affine subscripts, guards, min/max bounds, negative steps         *)

let n = Expr.var "n"
let i = Expr.var "i"
let j = Expr.var "j"

let nonaffine_program =
  let sq_mod = Expr.md (Expr.mul i i) n in
  let clamped = Expr.max_ (Expr.sub i (Expr.const 2)) Expr.zero in
  let dest = { Ir.array = "A"; indices = [ sq_mod ] } in
    {
      Ir.pname = "nonaffine";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "A"; elem = Ir.Fdouble; dims = [ n ]; storage = Ir.Sparam };
          { Ir.name = "B"; elem = Ir.Fdouble; dims = [ n ]; storage = Ir.Sparam } ];
      local_scalars = [];
      body =
        [ Ir.Nloop
            (Ir.mk_loop ~iter:"i" ~lo:Expr.zero
               ~hi:(Expr.sub n Expr.one)
               [ Ir.Ncomp
                   (Ir.mk_comp (Ir.Darray dest)
                      (Ir.Vbin
                         (Ir.Vadd, Ir.Vread dest,
                          Ir.Vread { Ir.array = "B"; indices = [ clamped ] })))
               ]) ];
  }

let guarded_program =
    {
      Ir.pname = "guarded";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "A"; elem = Ir.Fdouble; dims = [ n; n ];
            storage = Ir.Sparam } ];
      local_scalars = [ "acc" ];
      body =
        [ Ir.Ncomp (Ir.mk_comp (Ir.Dscalar "acc") (Ir.Vfloat 0.0));
          Ir.Nloop
            (Ir.mk_loop ~iter:"i" ~lo:Expr.zero
               ~hi:(Expr.sub (Expr.min_ n (Expr.const 11)) Expr.one)
               [ Ir.Nloop
                   (Ir.mk_loop ~iter:"j" ~lo:Expr.zero
                      ~hi:(Expr.sub n Expr.one)
                      [ Ir.Ncomp
                          (Ir.mk_comp
                             ~guard:(Ir.Pcmp (Ir.Cle, Ir.Vint j, Ir.Vint i))
                             (Ir.Dscalar "acc")
                             (Ir.Vbin
                                (Ir.Vadd, Ir.Vscalar "acc",
                                 Ir.Vcall
                                   ("sqrt",
                                    [ Ir.Vread
                                        { Ir.array = "A"; indices = [ i; j ] }
                                    ]))))
                      ])
               ]) ];
  }

let reverse_program =
    {
      Ir.pname = "reverse";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "x"; elem = Ir.Fdouble; dims = [ n ]; storage = Ir.Sparam } ];
      local_scalars = [];
      body =
        [ Ir.Nloop
            (Ir.mk_loop ~iter:"i"
               ~lo:(Expr.sub n (Expr.const 2))
               ~hi:Expr.zero ~step:(-1)
               [ Ir.Ncomp
                   (Ir.mk_comp
                      (Ir.Darray { Ir.array = "x"; indices = [ i ] })
                      (Ir.Vbin
                         (Ir.Vadd,
                          Ir.Vread { Ir.array = "x"; indices = [ i ] },
                          Ir.Vread
                            { Ir.array = "x";
                              indices = [ Expr.add i Expr.one ] })))
               ]) ];
  }

(* zero-trip loops: bodies must never be compiled (lazy errors) and the
   spill-slot allocation order must match the walker's first-visit order *)
let zerotrip_program =
    {
      Ir.pname = "zerotrip";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "x"; elem = Ir.Fdouble; dims = [ n ]; storage = Ir.Sparam } ];
      local_scalars = [];
      body =
        [ Ir.Nloop
            (Ir.mk_loop ~iter:"i" ~lo:Expr.zero ~hi:(Expr.const (-1))
               [ Ir.Ncomp
                   (Ir.mk_comp
                      (Ir.Darray { Ir.array = "x"; indices = [ i ] })
                      (Ir.Vfloat 1.0))
               ]);
          Ir.Nloop
            (Ir.mk_loop ~iter:"i" ~lo:Expr.zero ~hi:(Expr.sub n Expr.one)
               [ Ir.Ncomp
                   (Ir.mk_comp
                      (Ir.Darray { Ir.array = "x"; indices = [ i ] })
                      (Ir.Vbin
                         (Ir.Vadd,
                          Ir.Vread { Ir.array = "x"; indices = [ i ] },
                          Ir.Vfloat 1.0)))
               ]) ];
  }

let edge_cases =
  [
    ("non-affine subscripts", nonaffine_program, [ ("n", 17) ]);
    ("guards + min bound + scalar dest", guarded_program, [ ("n", 9) ]);
    ("negative-step loop", reverse_program, [ ("n", 12) ]);
    ("zero-trip loop", zerotrip_program, [ ("n", 6) ]);
  ]

let test_non_affine_guards_negstep () =
  List.iter (fun (name, p, sizes) -> check_both name p ~sizes) edge_cases

(* ------------------------------------------------------------------ *)
(* Random programs                                                      *)

let prop_trace_bitwise =
  QCheck.Test.make ~count:120
    ~name:"compiled trace bitwise-identical to walker"
    Test_property.arbitrary_program (fun p ->
      let sizes = [ ("n", 8) ] in
      let ok sample_outer =
        let tree = Trace.run config p ~sizes ~sample_outer () in
        let compiled = Tc.run config p ~sizes ~sample_outer () in
        List.length tree = List.length compiled
        && List.for_all2 Tc.counters_equal tree compiled
      in
      ok 0 && ok 3)

(* ------------------------------------------------------------------ *)
(* Batched (fused) stream replay + simulation memo: bitwise contract    *)

module Tb = Daisy_machine.Trace_bc
module Pool = Daisy_support.Pool

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"

(** The fused bytecode paths must be {e bitwise identical} to the tree
    oracle: the unfused walk, the batched walk, and — run twice against
    one memo — both the memo-miss and the memo-hit pass. *)
let check_batched name (p : Ir.program) ~sizes =
  List.iter
    (fun sample_outer ->
      let tree = Trace.run config p ~sizes ~sample_outer () in
      let cmp what got =
        if
          List.length tree <> List.length got
          || not (List.for_all2 Tc.counters_equal tree got)
        then
          Alcotest.failf "%s (sample=%d): %s differs from tree oracle" name
            sample_outer what
      in
      cmp "unfused bytecode"
        (Tb.run config p ~sizes ~sample_outer ~batch:false ());
      cmp "fused bytecode" (Tb.run config p ~sizes ~sample_outer ~batch:true ());
      let memo = Tb.memo_create config in
      cmp "memo miss pass"
        (Tb.run config p ~sizes ~sample_outer ~batch:true ~memo ());
      cmp "memo hit pass"
        (Tb.run config p ~sizes ~sample_outer ~batch:true ~memo ());
      let hits, _ = Tb.memo_stats memo in
      if tree <> [] && hits = 0 then
        Alcotest.failf "%s (sample=%d): identical re-run produced no memo hits"
          name sample_outer)
    [ 0; 7 ]

let test_batched_polybench () =
  List.iter
    (fun (b : Pb.benchmark) ->
      check_batched ("fused:A:" ^ b.Pb.name) (Pb.program b)
        ~sizes:b.Pb.test_sizes)
    (Pb.all @ Pb.extras);
  List.iter
    (fun (b : Pb.benchmark) ->
      let v = Variants.generate ~seed:("bvariant-" ^ b.Pb.name) (Pb.program b) in
      check_batched ("fused:B:" ^ b.Pb.name) v ~sizes:b.Pb.test_sizes)
    Pb.all

let test_batched_edge_cases () =
  (* negative step, zero trip, guards, non-affine subscripts *)
  List.iter
    (fun (name, p, sizes) -> check_batched ("fused:" ^ name) p ~sizes)
    edge_cases;
  (* write-back accounting: a store stream larger than L1 forces dirty
     evictions, so any skew in fused dirty bits shows up in writebacks *)
  let wb =
    lower
      {|void wb(int n, double A[n], double B[n]) {
          for (int r = 0; r < 3; r++)
            for (int i = 0; i < n; i++)
              A[i] = A[i] + B[i];
        }|}
  in
  check_batched "fused:writeback stream" wb ~sizes:[ ("n", 4096) ];
  (* strides that do not divide the line size must decline to the
     generic path (and still match bitwise) *)
  let strided =
    lower
      {|void st(int n, double A[3 * n], double B[5 * n]) {
          for (int i = 0; i < n; i++)
            A[3 * i] = B[5 * i];
        }|}
  in
  check_batched "fused:non-dividing stride" strided ~sizes:[ ("n", 100) ]

let prop_batched_bitwise =
  QCheck.Test.make ~count:120
    ~name:"fused bytecode trace bitwise-identical to walker"
    Test_property.arbitrary_program (fun p ->
      let sizes = [ ("n", 8) ] in
      let ok sample_outer =
        let tree = Trace.run config p ~sizes ~sample_outer () in
        let fused = Tb.run config p ~sizes ~sample_outer ~batch:true () in
        let plain = Tb.run config p ~sizes ~sample_outer ~batch:false () in
        List.length tree = List.length fused
        && List.for_all2 Tc.counters_equal tree fused
        && List.for_all2 Tc.counters_equal tree plain
      in
      ok 0 && ok 3)

(* a single memo shared across 4 domains must stay deterministic: racing
   stores resolve to the same entries, so parallel evaluation is
   bit-identical to sequential *)
let test_batched_parallel_memo () =
  let progs =
    List.map (fun (b : Pb.benchmark) -> (Pb.program b, b.Pb.test_sizes)) Pb.all
  in
  let eval memo (p, sizes) =
    (Cost.evaluate config p ~sizes ~engine:Cost.Bytecode ~memo ()).Cost.nests
    |> List.map (fun nc -> nc.Cost.counters)
  in
  let seq = List.map (eval (Tb.memo_create config)) progs in
  let shared = Tb.memo_create config in
  let par =
    Pool.with_pool ~jobs:4 (fun pool -> Pool.map ?pool (eval shared) progs)
  in
  List.iteri
    (fun i (xs, ys) ->
      if
        List.length xs <> List.length ys
        || not (List.for_all2 Tc.counters_equal xs ys)
      then Alcotest.failf "jobs 4 + shared memo: benchmark %d differs" i)
    (List.combine seq par)

(* ------------------------------------------------------------------ *)
(* Approx mode: documented accuracy contract                            *)

(** Relative error of approx-mode total cycles vs the exact engine at the
    same [sample_outer] — the bound documented in docs/performance.md. *)
let approx_bound = 0.15

let rel_err exact approx =
  if exact = 0.0 then Float.abs approx
  else Float.abs (approx -. exact) /. Float.abs exact

let cycles engine p ~sizes ~sample_outer =
  (Cost.evaluate config p ~sizes ~threads:1 ~sample_outer ~engine ())
    .Cost.total_cycles

let check_approx name p ~sizes =
  let exact = cycles Cost.Compiled p ~sizes ~sample_outer:12 in
  let approx =
    cycles (Cost.Approx Tc.default_approx) p ~sizes ~sample_outer:12
  in
  let err = rel_err exact approx in
  if err > approx_bound then
    Alcotest.failf "%s: approx error %.1f%% exceeds %.0f%% (exact %.4e approx %.4e)"
      name (100.0 *. err) (100.0 *. approx_bound) exact approx

let test_approx_polybench () =
  List.iter
    (fun (b : Pb.benchmark) ->
      check_approx ("approx:" ^ b.Pb.name) (Pb.program b) ~sizes:b.Pb.sim_sizes)
    (Pb.all @ Pb.extras)

let test_approx_npbench_cloudsc () =
  List.iter
    (fun (b : Np.benchmark) ->
      let p = Alower.lower Alower.frontend_policy b.Np.program in
      check_approx ("approx:np:" ^ b.Np.name) p ~sizes:b.Np.sim_sizes)
    Np.all;
  let orig, sizes = Cloudsc.erosion_original ~iters:8 in
  check_approx "approx:cloudsc:erosion" orig ~sizes

(* approx mode must also preserve scheduler *decisions* enough that it
   never diverges wildly: ordering of a clearly-better vs clearly-worse
   variant is preserved on gemm (ijk loop order vs the same nest marked
   vectorized) *)
let test_approx_ordering () =
  let gemm = List.find (fun b -> b.Pb.name = "gemm") Pb.all in
  let p = Pb.program gemm in
  let better = mark_attrs p in
  let sizes = gemm.Pb.sim_sizes in
  let e_p = cycles Cost.Compiled p ~sizes ~sample_outer:12 in
  let e_b = cycles Cost.Compiled better ~sizes ~sample_outer:12 in
  let a_p = cycles (Cost.Approx Tc.default_approx) p ~sizes ~sample_outer:12 in
  let a_b =
    cycles (Cost.Approx Tc.default_approx) better ~sizes ~sample_outer:12
  in
  Alcotest.(check bool)
    "exact and approx agree on which variant is faster" true
    (e_p > e_b = (a_p > a_b))

let suite =
  [
    ("polybench A bitwise", `Slow, test_polybench_a);
    ("polybench B bitwise", `Slow, test_polybench_b);
    ("npbench bitwise", `Slow, test_npbench);
    ("cloudsc bitwise", `Slow, test_cloudsc);
    ("library calls bitwise", `Quick, test_libcalls);
    ("attributed loops bitwise", `Slow, test_attributed_loops);
    ("non-affine/guard/negative-step/zero-trip", `Quick,
     test_non_affine_guards_negstep);
    QCheck_alcotest.to_alcotest prop_trace_bitwise;
    ("fused replay: polybench A/B bitwise", `Slow, test_batched_polybench);
    ("fused replay: edge cases bitwise", `Quick, test_batched_edge_cases);
    QCheck_alcotest.to_alcotest prop_batched_bitwise;
    ("fused replay: shared memo across jobs", `Slow, test_batched_parallel_memo);
    ("approx error bound: polybench", `Slow, test_approx_polybench);
    ("approx error bound: npbench+cloudsc", `Slow, test_approx_npbench_cloudsc);
    ("approx preserves ordering", `Slow, test_approx_ordering);
  ]
