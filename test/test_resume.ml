(** Kill/resume differential tests (docs/robustness.md, "Checkpoint &
    resume"): a search or seeding run killed at any snapshot boundary and
    resumed — with a fresh cache, from the on-disk journal — finishes
    bit-identical to the uninterrupted run, at any job count. Plus the
    supervision layer: per-evaluation deadlines, retry-once-then-exclude,
    and the quarantine sink with shrunk reproducers. *)

module Ir = Daisy_loopir.Ir
module Util = Daisy_support.Util
module Rng = Daisy_support.Rng
module Fault = Daisy_support.Fault
module Pool = Daisy_support.Pool
module Checkpoint = Daisy_support.Checkpoint
module Recipe = Daisy_transforms.Recipe
module S = Daisy_scheduler

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"

(* Deliberately not BLAS-shaped: these nests survive idiom detection and
   actually exercise the evolutionary search. *)

let one_nest_src =
  {|void f(int n, double A[n][n], double B[n][n]) {
      for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++)
          A[i][j] = B[i][j] * 2.0 + B[j][i];
    }|}

let two_nest_src =
  {|void f(int n, double A[n][n], double B[n][n], double s[n]) {
      for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++)
          A[i][j] = B[i][j] * 2.0 + B[j][i];
      for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++)
          s[i] += A[i][j];
    }|}

let sizes = [ ("n", 12) ]
let ctx () = S.Common.make_ctx ~sizes ()

let one_nest () =
  let p = lower one_nest_src in
  let nest =
    match p.Ir.body with [ Ir.Nloop l ] -> l | _ -> Alcotest.fail "one nest"
  in
  (p, nest)

let with_faults f =
  Fun.protect ~finally:Fault.clear (fun () -> Fault.clear (); f ())

let tmp_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "daisy-resume-%d-%s" (Unix.getpid ()) name)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let result_t = Alcotest.(pair string (float 0.0))
(* a search result compared exactly: (printed best recipe, fitness) *)

(* ------------------------------------------------------------------ *)
(* Evolve.search: kill at every generation boundary, resume bit-identically *)

exception Killed of S.Evolve.snapshot

let search_result ?pool ?cache ?on_generation ?resume (p, nest) seeds =
  let rng = Rng.of_string "resume-test" in
  let best, ms =
    S.Evolve.search ~population:6 ~iterations:3 ?cache ?pool ?on_generation
      ?resume (ctx ()) p nest ~seeds ~rng
  in
  (Recipe.to_string best, ms)

let check_search_resume ~jobs () =
  let ((_, nest) as unit_) = one_nest () in
  let seeds = S.Tiramisu.proposals nest in
  Pool.with_pool ~jobs (fun pool ->
      let reference = search_result ?pool unit_ seeds in
      (* iterations = 3 emits snapshots at gens 0, 1, 2 and 3 *)
      List.iter
        (fun kill_gen ->
          let snap =
            match
              search_result ?pool
                ~on_generation:(fun s ->
                  if s.S.Evolve.gen = kill_gen then raise (Killed s))
                unit_ seeds
            with
            | _ -> Alcotest.failf "gen %d: search survived the kill" kill_gen
            | exception Killed s -> s
          in
          (* resume with a fresh cache: every fitness the killed run knew
             must come back from the snapshot, not from shared memory *)
          let resumed =
            search_result ?pool ~cache:(S.Evolve.create_cache ()) ~resume:snap
              unit_ seeds
          in
          Alcotest.check result_t
            (Printf.sprintf "killed at gen %d, jobs %d" kill_gen jobs)
            reference resumed)
        [ 0; 1; 2; 3 ])

let test_search_resume_seq () = check_search_resume ~jobs:1 ()
let test_search_resume_par () = check_search_resume ~jobs:4 ()

(* the snapshot round-trips through the journal serialization too *)
let test_search_resume_serialized () =
  let ((_, nest) as unit_) = one_nest () in
  let seeds = S.Tiramisu.proposals nest in
  let reference = search_result unit_ seeds in
  let snap =
    match
      search_result
        ~on_generation:(fun s -> if s.S.Evolve.gen = 2 then raise (Killed s))
        unit_ seeds
    with
    | _ -> Alcotest.fail "search survived the kill"
    | exception Killed s -> s
  in
  let snap' =
    match S.Seed.(snapshot_of_lines (snapshot_to_lines snap)) with
    | Some s -> s
    | None -> Alcotest.fail "snapshot did not round-trip"
  in
  Alcotest.check result_t "resume from serialized snapshot" reference
    (search_result ~cache:(S.Evolve.create_cache ()) ~resume:snap' unit_ seeds)

(* ------------------------------------------------------------------ *)
(* Seed.seed_database: crash the journal persist, reload from disk,
   finish with a byte-identical database *)

let seed_fp = lazy (Checkpoint.fingerprint [ ("test", "seed-resume") ])

let seed_db_bytes ?journal ?pool name =
  let db = S.Database.create () in
  S.Seed.seed_database ~epochs:2 ~population:4 ~iterations:2 ?pool ?journal
    (ctx ()) ~db
    [ ("k", lower two_nest_src) ];
  let out = tmp_path name in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      S.Database.save db out;
      read_file out)

let check_seed_resume ~jobs ~nth () =
  with_faults (fun () ->
      let jpath = tmp_path (Printf.sprintf "seed-journal-%d-%d" jobs nth) in
      Fun.protect
        ~finally:(fun () -> try Sys.remove jpath with Sys_error _ -> ())
        (fun () ->
          Pool.with_pool ~jobs (fun pool ->
              let reference = seed_db_bytes ?pool "seed-ref" in
              let open_j resume =
                Checkpoint.open_journal ~path:jpath ~kind:"test-seed"
                  ~fingerprint:(Lazy.force seed_fp) ~resume ()
              in
              (* crash the nth journal persist (between write-temp and
                 rename), exactly like a kill at that instant *)
              let j = open_j false in
              Fault.arm_nth "checkpoint_save" nth;
              (match seed_db_bytes ~journal:j ?pool "seed-crashed" with
              | _ ->
                  Alcotest.failf "jobs %d nth %d: seeding survived the crash"
                    jobs nth
              | exception Fault.Injected "checkpoint_save" -> ());
              Fault.disarm "checkpoint_save";
              (* a real crash loses the process: resume strictly from the
                 on-disk journal. A crash before the very first persist
                 leaves no file at all — then the rerun starts fresh,
                 which must converge to the same database too. *)
              let j' = open_j (Sys.file_exists jpath) in
              Alcotest.(check (list string))
                "no load warnings" [] (Checkpoint.warnings j');
              let resumed = seed_db_bytes ~journal:j' ?pool "seed-resumed" in
              Alcotest.(check bool)
                (Printf.sprintf
                   "database byte-identical after crash at persist %d, jobs %d"
                   nth jobs)
                true
                (String.equal reference resumed))))

(* 2 nests x 2 epochs x (3 generation snapshots + 1 completion) + 2 epoch
   commits = 18 persists: kill points near the start, middle and end *)
let test_seed_resume_seq () =
  List.iter (fun nth -> check_seed_resume ~jobs:1 ~nth ()) [ 1; 5; 9 ]

let test_seed_resume_par () =
  List.iter (fun nth -> check_seed_resume ~jobs:4 ~nth ()) [ 1; 5; 9 ]

(* ------------------------------------------------------------------ *)
(* Pool.map_supervised: deadlines, retry-once, fatal exceptions *)

let check_supervised_deadline ~jobs () =
  Pool.with_pool ~jobs (fun pool ->
      let ran = Atomic.make 0 in
      let results =
        Pool.map_supervised ?pool ~deadline_s:0.0
          (fun x ->
            Atomic.incr ran;
            x)
          [ 1; 2; 3; 4 ]
      in
      Alcotest.(check int) "four slots" 4 (List.length results);
      List.iter
        (function
          | Error Util.Deadline_exceeded -> ()
          | Error e ->
              Alcotest.failf "expected Deadline_exceeded, got %s"
                (Printexc.to_string e)
          | Ok _ -> Alcotest.fail "expected every task to exceed its deadline")
        results;
      (* an expired deadline trips before the task body runs *)
      Alcotest.(check int) "task bodies never ran" 0 (Atomic.get ran))

let test_supervised_deadline_seq () = check_supervised_deadline ~jobs:1 ()
let test_supervised_deadline_par () = check_supervised_deadline ~jobs:4 ()

let check_supervised_retry ~jobs () =
  Pool.with_pool ~jobs (fun pool ->
      (* persistent failure: exactly two attempts per task, Error in-slot *)
      let attempts = Atomic.make 0 in
      let results =
        Pool.map_supervised ?pool
          (fun _ ->
            Atomic.incr attempts;
            failwith "boom")
          [ 1; 2; 3 ]
      in
      Alcotest.(check int) "retried exactly once each" 6 (Atomic.get attempts);
      List.iter
        (function
          | Error (Failure m) when m = "boom" -> ()
          | _ -> Alcotest.fail "expected Error (Failure boom)")
        results;
      (* flaky failure: the retry succeeds and the slot is Ok *)
      let first = Array.init 4 (fun _ -> Atomic.make true) in
      let results =
        Pool.map_supervised ?pool
          (fun i ->
            if Atomic.compare_and_set first.(i) true false then
              failwith "flaky first attempt"
            else i * 10)
          [ 0; 1; 2; 3 ]
      in
      Alcotest.(check (list int))
        "all recovered on retry, order preserved" [ 0; 10; 20; 30 ]
        (List.map
           (function Ok v -> v | Error _ -> Alcotest.fail "retry failed")
           results))

let test_supervised_retry_seq () = check_supervised_retry ~jobs:1 ()
let test_supervised_retry_par () = check_supervised_retry ~jobs:4 ()

let test_supervised_fatal () =
  (* fatal exceptions poison the batch like Pool.map instead of being
     captured — interrupts must not be swallowed into an Error slot *)
  Alcotest.check_raises "fatal poisons the batch" Stdlib.Exit (fun () ->
      ignore
        (Pool.map_supervised
           ~fatal:(function Stdlib.Exit -> true | _ -> false)
           (fun _ -> raise Stdlib.Exit)
           [ 1; 2 ]));
  (* mixed outcomes keep their slots *)
  let results =
    Pool.map_supervised
      (fun i -> if i mod 2 = 0 then failwith "even" else i)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check (list bool))
    "order preserved" [ true; false; true; false ]
    (List.map (function Ok _ -> true | Error _ -> false) results)

(* ------------------------------------------------------------------ *)
(* Quarantine: a crashing candidate never kills the search; a shrunk
   reproducer lands in the quarantine directory *)

let check_quarantine_crash ~jobs () =
  with_faults (fun () ->
      let dir = tmp_path (Printf.sprintf "quarantine-%d" jobs) in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let q = S.Quarantine.create ~dir () in
          let p, nest = one_nest () in
          Fault.arm_always "eval_candidate";
          let best, ms =
            Pool.with_pool ~jobs (fun pool ->
                S.Evolve.search ~population:4 ~iterations:2 ?pool ~quarantine:q
                  (ctx ()) p nest
                  ~seeds:(S.Tiramisu.proposals nest)
                  ~rng:(Rng.of_string "quarantine-test"))
          in
          (* every candidate crashed: the search still completed, and the
             only honest answer is "no recipe, infinite fitness" *)
          Alcotest.(check bool) "search completed with infinity" true
            (ms = infinity);
          Alcotest.(check string) "empty recipe" (Recipe.to_string [])
            (Recipe.to_string best);
          Alcotest.(check bool) "reproducers written" true
            (S.Quarantine.count q >= 1);
          let files = Sys.readdir dir in
          Alcotest.(check bool) "files on disk" true (Array.length files >= 1);
          let content = read_file (Filename.concat dir files.(0)) in
          Alcotest.(check bool) "self-describing header" true
            (String.length content > 0
            && String.sub content 0 27 = "daisy quarantine reproducer");
          List.iter
            (fun needle ->
              let re = Str.regexp_string needle in
              Alcotest.(check bool)
                (needle ^ " present") true
                (try
                   ignore (Str.search_forward re content 0);
                   true
                 with Not_found -> false))
            [ "reason:"; "Fault.Injected"; "sizes: n=12"; "recipe (shrunk)" ]))

let test_quarantine_crash_seq () = check_quarantine_crash ~jobs:1 ()
let test_quarantine_crash_par () = check_quarantine_crash ~jobs:4 ()

let test_quarantine_deadline () =
  let dir = tmp_path "quarantine-deadline" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let q = S.Quarantine.create ~dir () in
      let p, nest = one_nest () in
      (* an already-expired per-evaluation deadline: every candidate is
         excluded, the search and the caller still finish *)
      let ctx = S.Common.make_ctx ~sizes ~eval_deadline:0.0 () in
      let _, ms =
        S.Evolve.search ~population:4 ~iterations:2 ~quarantine:q ctx p nest
          ~seeds:(S.Tiramisu.proposals nest)
          ~rng:(Rng.of_string "deadline-test")
      in
      Alcotest.(check bool) "completed with infinity" true (ms = infinity);
      Alcotest.(check bool) "deadline failures quarantined" true
        (S.Quarantine.count q >= 1))

let test_quarantine_dedup_and_cap () =
  let dir = tmp_path "quarantine-cap" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let q = S.Quarantine.create ~max_repros:2 ~dir () in
      let p, _ = one_nest () in
      let still_fails _ _ = true in
      let report reason recipe =
        S.Quarantine.report q ~reason ~sizes ~program:p ~recipe ~still_fails
      in
      Alcotest.(check bool) "first written" true (report "r1" [] <> None);
      Alcotest.(check bool) "duplicate suppressed" true (report "r1" [] = None);
      Alcotest.(check bool) "second written" true (report "r2" [] <> None);
      Alcotest.(check bool) "cap reached" true (report "r3" [] = None);
      Alcotest.(check int) "count" 2 (S.Quarantine.count q))

(* ------------------------------------------------------------------ *)
(* Daisy.schedule: a miscompiling database recipe is excluded and reported *)

let test_miscompile_excluded () =
  with_faults (fun () ->
      let ctx = ctx () in
      let p = lower two_nest_src in
      let db = S.Database.create () in
      S.Seed.seed_database ~epochs:1 ~population:4 ~iterations:2 ctx ~db
        [ ("k", p) ];
      Alcotest.(check bool) "db seeded" true (S.Database.size db > 0);
      let has_recipe (r : S.Daisy.schedule_report) =
        List.exists
          (fun d ->
            match d.S.Daisy.action with `Recipe _ -> true | _ -> false)
          r.S.Daisy.decisions
      in
      let dir_ok = tmp_path "miscompile-ok"
      and dir_bad = tmp_path "miscompile-bad" in
      Fun.protect
        ~finally:(fun () -> rm_rf dir_ok; rm_rf dir_bad)
        (fun () ->
          (* verification on: equivalent recipes still transfer *)
          let q_ok = S.Quarantine.create ~dir:dir_ok () in
          let honest = S.Daisy.schedule ~quarantine:q_ok ctx ~db p in
          Alcotest.(check int) "honest recipes pass verification" 0
            (S.Quarantine.count q_ok);
          (* every equivalence check "miscompiles": no recipe may be
             scheduled, but the run must still complete *)
          Fault.arm_always "equiv_miscompile";
          let q_bad = S.Quarantine.create ~dir:dir_bad () in
          let report = S.Daisy.schedule ~quarantine:q_bad ctx ~db p in
          Alcotest.(check bool) "no miscompiled recipe scheduled" false
            (has_recipe report);
          if has_recipe honest then
            Alcotest.(check bool) "miscompiles reported" true
              (S.Quarantine.count q_bad >= 1)))

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "search kill/resume is bit-identical (jobs 1)" `Quick
      test_search_resume_seq;
    Alcotest.test_case "search kill/resume is bit-identical (jobs 4)" `Quick
      test_search_resume_par;
    Alcotest.test_case "search resumes from a serialized snapshot" `Quick
      test_search_resume_serialized;
    Alcotest.test_case "seeding crash/resume is byte-identical (jobs 1)"
      `Quick test_seed_resume_seq;
    Alcotest.test_case "seeding crash/resume is byte-identical (jobs 4)"
      `Quick test_seed_resume_par;
    Alcotest.test_case "supervised deadline trips every task (jobs 1)" `Quick
      test_supervised_deadline_seq;
    Alcotest.test_case "supervised deadline trips every task (jobs 4)" `Quick
      test_supervised_deadline_par;
    Alcotest.test_case "supervised retry-once semantics (jobs 1)" `Quick
      test_supervised_retry_seq;
    Alcotest.test_case "supervised retry-once semantics (jobs 4)" `Quick
      test_supervised_retry_par;
    Alcotest.test_case "fatal exceptions poison the batch" `Quick
      test_supervised_fatal;
    Alcotest.test_case "crashing candidates are quarantined (jobs 1)" `Quick
      test_quarantine_crash_seq;
    Alcotest.test_case "crashing candidates are quarantined (jobs 4)" `Quick
      test_quarantine_crash_par;
    Alcotest.test_case "deadline failures are quarantined" `Quick
      test_quarantine_deadline;
    Alcotest.test_case "quarantine dedups and caps reproducers" `Quick
      test_quarantine_dedup_and_cap;
    Alcotest.test_case "miscompiling recipes never schedule" `Quick
      test_miscompile_excluded;
  ]
