(** Error-path coverage for the reference interpreter: out-of-bounds
    subscripts, missing size parameters, and unbound scalars must raise
    {!Daisy_interp.Interp.Runtime_error} with a message that names the
    offending entity. *)

module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Interp = Daisy_interp.Interp

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"

let check_runtime_error name substrings f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Runtime_error" name
  | exception Interp.Runtime_error msg ->
      List.iter
        (fun sub ->
          let contains =
            let ls = String.length sub and lm = String.length msg in
            let rec go i = i + ls <= lm && (String.sub msg i ls = sub || go (i + 1)) in
            go 0
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: message %S mentions %S" name msg sub)
            true contains)
        substrings

let test_out_of_bounds () =
  (* at i = n-1 this writes A[n], one past the end *)
  let p =
    lower
      {|void f(int n, double A[n]) {
          for (int i = 0; i < n; i++)
            A[i + 1] = 1.0;
        }|}
  in
  check_runtime_error "oob write" [ "out of bounds"; "dimension 0" ]
    (fun () -> Interp.run_fresh p ~sizes:[ ("n", 4) ] ());
  (* reads are checked through the same bounds logic *)
  let q =
    lower
      {|void f(int n, double A[n], double B[n]) {
          for (int i = 0; i < n; i++)
            A[i] = B[i + 2];
        }|}
  in
  check_runtime_error "oob read" [ "out of bounds" ]
    (fun () -> Interp.run_fresh q ~sizes:[ ("n", 4) ] ())

let test_missing_size_parameter () =
  let p =
    lower
      {|void f(int n, int m, double A[n][m]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < m; j++)
              A[i][j] = 0.0;
        }|}
  in
  check_runtime_error "missing size" [ "missing size parameter"; "m" ]
    (fun () -> Interp.init p ~sizes:[ ("n", 4) ] ())

let test_unbound_scalar () =
  (* a scalar that is neither a declared parameter nor assigned before use:
     built directly in the IR, since the frontend would reject it *)
  let p =
    {
      Ir.pname = "unbound";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "A"; elem = Ir.Fdouble; dims = [ Expr.var "n" ];
            storage = Ir.Sparam } ];
      local_scalars = [ "alpha" ];
      body =
        [ Ir.Ncomp
            (Ir.mk_comp
               (Ir.Darray { Ir.array = "A"; indices = [ Expr.const 0 ] })
               (Ir.Vscalar "alpha")) ];
    }
  in
  check_runtime_error "unbound scalar" [ "unbound scalar"; "alpha" ]
    (fun () -> Interp.run_fresh p ~sizes:[ ("n", 4) ] ())

let test_declared_scalar_param_defaults () =
  (* a declared scalar parameter is defaulted deterministically, not an
     error — pin the contrast with the unbound-scalar case *)
  let p =
    lower
      {|void f(int n, double alpha, double A[n]) {
          for (int i = 0; i < n; i++)
            A[i] = alpha;
        }|}
  in
  let s1 = Interp.run_fresh p ~sizes:[ ("n", 4) ] () in
  let s2 = Interp.run_fresh p ~sizes:[ ("n", 4) ] () in
  Alcotest.(check (float 0.0)) "deterministic default" 0.0
    (Interp.max_rel_diff p s1 s2)

let suite =
  [
    ("out-of-bounds index", `Quick, test_out_of_bounds);
    ("missing size parameter", `Quick, test_missing_size_parameter);
    ("unbound scalar", `Quick, test_unbound_scalar);
    ("declared scalar defaults", `Quick, test_declared_scalar_param_defaults);
  ]
