(** Property-based tests: a QCheck generator of random loop-nest programs
    drives end-to-end semantic-preservation checks of every transformation
    pipeline — the strongest guarantee this reproduction offers that
    "normalization maps semantically equivalent loop nests to the same
    canonical form" without changing what they compute. *)

module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Interp = Daisy_interp.Interp
module Pipeline = Daisy_normalize.Pipeline
module S = Daisy_scheduler

let test_n = 8 (* concrete size for execution *)
let sizes = [ ("n", test_n) ]

(* ------------------------------------------------------------------ *)
(* Random program generator                                             *)

(* arrays available to generated programs *)
let arrays_2d = [ "A"; "B"; "C" ]
let arrays_1d = [ "x"; "y" ]

let decls : Ir.array_decl list =
  List.map
    (fun name ->
      { Ir.name; elem = Ir.Fdouble; dims = [ Expr.var "n"; Expr.var "n" ];
        storage = Ir.Sparam })
    arrays_2d
  @ List.map
      (fun name ->
        { Ir.name; elem = Ir.Fdouble; dims = [ Expr.var "n" ];
          storage = Ir.Sparam })
      arrays_1d

(* subscript: iterator +/- small offset (ranges keep everything in bounds) *)
let gen_subscript iters =
  QCheck.Gen.(
    let* it = oneofl iters in
    let* off = oneofl [ -1; 0; 0; 0; 1 ] in
    return (Expr.add (Expr.var it) (Expr.const off)))

let gen_access iters =
  QCheck.Gen.(
    let* two_d = bool in
    if two_d then
      let* a = oneofl arrays_2d in
      let* i1 = gen_subscript iters in
      let* i2 = gen_subscript iters in
      return { Ir.array = a; indices = [ i1; i2 ] }
    else
      let* a = oneofl arrays_1d in
      let* i1 = gen_subscript iters in
      return { Ir.array = a; indices = [ i1 ] })

let rec gen_vexpr iters depth =
  QCheck.Gen.(
    if depth = 0 then
      oneof
        [ map (fun a -> Ir.Vread a) (gen_access iters);
          map (fun f -> Ir.Vfloat f) (float_bound_inclusive 4.0) ]
    else
      frequency
        [ (2, map (fun a -> Ir.Vread a) (gen_access iters));
          (1, map (fun f -> Ir.Vfloat f) (float_bound_inclusive 4.0));
          (3,
           let* op = oneofl [ Ir.Vadd; Ir.Vsub; Ir.Vmul ] in
           let* a = gen_vexpr iters (depth - 1) in
           let* b = gen_vexpr iters (depth - 1) in
           return (Ir.Vbin (op, a, b)));
          (1,
           let* a = gen_vexpr iters (depth - 1) in
           return (Ir.Vcall ("sqrt", [ Ir.Vcall ("fabs", [ a ]) ]))) ])

let gen_comp iters =
  QCheck.Gen.(
    let* dest = gen_access iters in
    let* reduction = bool in
    let* rhs = gen_vexpr iters 2 in
    (* damp reductions so iterated updates stay finite and reassociation
       noise stays within tolerance *)
    let rhs =
      if reduction then
        Ir.Vbin (Ir.Vadd, Ir.Vread dest, Ir.Vbin (Ir.Vmul, Ir.Vfloat 0.01, rhs))
      else rhs
    in
    return (Ir.Ncomp (Ir.mk_comp (Ir.Darray dest) rhs)))

(* loops run 1 .. n-2 so +/-1 subscripts stay in bounds *)
let mk_loop iter body =
  Ir.mk_loop ~iter ~lo:Expr.one
    ~hi:(Expr.sub (Expr.var "n") (Expr.const 2))
    body

let gen_nest =
  QCheck.Gen.(
    let* depth = int_range 1 3 in
    let iters = Daisy_support.Util.take depth [ "i"; "j"; "k" ] in
    let* n_comps = int_range 1 3 in
    let* comps = list_size (return n_comps) (gen_comp iters) in
    let rec build = function
      | [] -> assert false
      | [ it ] -> mk_loop it comps
      | it :: rest -> mk_loop it [ Ir.Nloop (build rest) ]
    in
    return (Ir.Nloop (build iters)))

let gen_program =
  QCheck.Gen.(
    let* n_nests = int_range 1 3 in
    let* nests = list_size (return n_nests) gen_nest in
    return
      {
        Ir.pname = "random";
        size_params = [ "n" ];
        scalar_params = [];
        arrays = decls;
        local_scalars = [];
        body = nests;
      })

let arbitrary_program =
  QCheck.make ~print:(fun p -> Ir.program_to_string p) gen_program

let equivalent p q = Interp.equivalent ~tol:1e-6 p q ~sizes ()

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)

let prop_normalize_preserves =
  QCheck.Test.make ~count:120 ~name:"normalization preserves semantics"
    arbitrary_program (fun p ->
      equivalent p (Pipeline.normalize ~sizes p))

let prop_normalize_idempotent =
  QCheck.Test.make ~count:60 ~name:"normalization is idempotent (structure)"
    arbitrary_program (fun p ->
      let n1 = Pipeline.normalize ~sizes p in
      let n2 = Pipeline.normalize ~sizes n1 in
      Ir.equal_structure n1.Ir.body n2.Ir.body)

let prop_fission_preserves =
  QCheck.Test.make ~count:120 ~name:"maximal fission preserves semantics"
    arbitrary_program (fun p ->
      let p = Daisy_normalize.Iter_norm.run p in
      equivalent p (Daisy_normalize.Fission.run_fixpoint p))

let prop_variants_preserve =
  QCheck.Test.make ~count:60 ~name:"B-variant generator preserves semantics"
    arbitrary_program (fun p ->
      equivalent p (Daisy_benchmarks.Variants.generate ~seed:"prop" p))

let prop_baselines_preserve =
  QCheck.Test.make ~count:40 ~name:"baseline schedulers preserve semantics"
    arbitrary_program (fun p ->
      equivalent p (S.Baselines.clang_like p)
      && equivalent p (S.Baselines.icc_like p)
      && equivalent p (S.Baselines.polly_like p))

let prop_daisy_preserves =
  QCheck.Test.make ~count:20 ~name:"daisy scheduling preserves semantics"
    arbitrary_program (fun p ->
      let ctx =
        S.Common.make_ctx ~threads:4 ~sample_outer:4 ~sizes:[ ("n", 24) ] ()
      in
      let db = S.Database.create () in
      let r = S.Daisy.schedule ctx ~db p in
      equivalent p r.S.Daisy.program)

let prop_tiramisu_preserves =
  QCheck.Test.make ~count:15 ~name:"tiramisu model preserves semantics"
    arbitrary_program (fun p ->
      let ctx =
        S.Common.make_ctx ~threads:4 ~sample_outer:4 ~sizes:[ ("n", 24) ] ()
      in
      match S.Tiramisu.schedule ctx p with
      | S.Tiramisu.Scheduled q -> equivalent p q
      | S.Tiramisu.Unsupported _ -> true)

let prop_licm_preserves =
  QCheck.Test.make ~count:80 ~name:"loop-invariant code motion preserves semantics"
    arbitrary_program (fun p ->
      equivalent p (fst (Daisy_normalize.Licm.run p)))

(* ------------------------------------------------------------------ *)
(* Random recipes: every successful Recipe.apply must preserve semantics *)

module Recipe = Daisy_transforms.Recipe
module Legality = Daisy_dependence.Legality
module Rng = Daisy_support.Rng

(* Random recipe via the search's own mutation operator, so the property
   exercises exactly the moves the evolutionary scheduler can make. The
   chain sometimes starts from the identity interchange: [Recipe.mutate]
   never introduces an [Interchange] step, only perturbs existing ones. *)
let random_recipe rng band_size =
  let start =
    if band_size >= 2 && Rng.bool rng then
      [ Recipe.Interchange (List.init band_size (fun i -> i)) ]
    else []
  in
  let rec go k r =
    if k = 0 then r else go (k - 1) (Recipe.mutate rng band_size r)
  in
  go (1 + Rng.int rng 3) start

let arbitrary_program_and_seed =
  QCheck.pair arbitrary_program
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_bound 1_000_000))

let map_top_nests_with f p =
  {
    p with
    Ir.body =
      List.map
        (fun n -> match n with Ir.Nloop nest -> f nest | other -> other)
        p.Ir.body;
  }

let prop_recipe_apply_preserves =
  QCheck.Test.make ~count:120
    ~name:"successful Recipe.apply preserves semantics"
    arbitrary_program_and_seed (fun (p, seed) ->
      let rng = Rng.create seed in
      let p' =
        map_top_nests_with
          (fun nest ->
            let band, _ = Legality.perfect_band nest in
            let r = random_recipe rng (List.length band) in
            match Recipe.apply ~outer:[] nest r with
            | Ok nest' -> Ir.Nloop nest'
            | Error _ -> Ir.Nloop nest)
          p
      in
      equivalent p p')

let prop_recipe_lenient_preserves =
  QCheck.Test.make ~count:80
    ~name:"Recipe.apply_lenient preserves semantics"
    arbitrary_program_and_seed (fun (p, seed) ->
      let rng = Rng.create seed in
      let p' =
        map_top_nests_with
          (fun nest ->
            let band, _ = Legality.perfect_band nest in
            let r = random_recipe rng (List.length band) in
            Ir.Nloop (fst (Recipe.apply_lenient ~outer:[] nest r)))
          p
      in
      equivalent p p')

let prop_embedding_rename_invariant =
  QCheck.Test.make ~count:60 ~name:"embeddings invariant under canon"
    arbitrary_program (fun p ->
      let e1 =
        List.map Daisy_embedding.Embedding.of_node p.Ir.body
      in
      let e2 =
        List.map Daisy_embedding.Embedding.of_node (Ir.canon_nodes p.Ir.body)
      in
      List.for_all2
        (fun a b -> Daisy_embedding.Embedding.distance a b < 1e-9)
        e1 e2)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_normalize_preserves;
      prop_normalize_idempotent;
      prop_fission_preserves;
      prop_variants_preserve;
      prop_baselines_preserve;
      prop_daisy_preserves;
      prop_tiramisu_preserves;
      prop_licm_preserves;
      prop_recipe_apply_preserves;
      prop_recipe_lenient_preserves;
      prop_embedding_rename_invariant;
    ]
