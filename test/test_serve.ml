(** Tests for the daisyd serving stack (docs/serving.md): framing and
    payload round-trips, the admission queue, end-to-end scheduling over
    a real socket, hostile-client framing edge cases, load shedding,
    quotas, graceful degradation, evaluator-crash quarantine with
    checkpointed persistence, warm-store hot reload, and the SIGPIPE /
    EINTR / warning-throttle support satellites. *)

module Serve = Daisy.Serve
module P = Serve.Protocol
module Client = Serve.Client
module Server = Serve.Server
module Rqueue = Serve.Rqueue
module Store = Serve.Store
module Util = Daisy_support.Util
module Diag = Daisy_support.Diag
module Fault = Daisy_support.Fault
module S = Daisy_scheduler

let gemm_src =
  {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
      for (int i = 0; i < n; i++)
        for (int k = 0; k < n; k++)
          for (int j = 0; j < n; j++)
            C[i][j] += A[i][k] * B[k][j];
    }|}

let axpy_src =
  {|void f(int n, double y[n], double x[n]) {
      for (int i = 0; i < n; i++)
        y[i] = y[i] + 2.0 * x[i];
    }|}

let submit ?(client = "test") ?(sizes = [ ("n", 24) ]) source =
  { P.client; sizes; budget = None; deadline_s = Some 30.0; source }

let with_faults f =
  Fun.protect ~finally:Fault.clear (fun () -> Fault.clear (); f ())

let contains_sub ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Server harness: run a real daisyd on a private Unix socket          *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "daisyd-test-%d-%d.sock" (Unix.getpid ()) !n)

let test_config ?(jobs = 2) ?(queue = 8) ?(degrade_depth = 1000)
    ?(quota = 64) ?(idle_timeout = 2.0) ?checkpoint ?db socket =
  {
    (Server.default_config (`Unix socket)) with
    Server.jobs;
    queue_capacity = queue;
    degrade_depth;
    client_quota = quota;
    idle_timeout_s = idle_timeout;
    retry_backoff_s = 0.01;
    checkpoint;
    db_path = db;
    threads = 4;
    sample_outer = 4;
  }

(** Run [f address] against a live server; shuts the server down through
    the protocol [shutdown] verb afterwards (exercising the drain path
    on every test). *)
let with_server config f =
  let address = config.Server.address in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.run ~on_ready:(fun () -> Atomic.set ready true) config)
  in
  let deadline = Util.monotonic_s () +. 10.0 in
  while (not (Atomic.get ready)) && Util.monotonic_s () < deadline do
    Unix.sleepf 0.01
  done;
  Alcotest.(check bool) "server came up" true (Atomic.get ready);
  let result =
    Fun.protect
      ~finally:(fun () ->
        (try Client.with_connection address Client.shutdown
         with _ -> ());
        ignore (Domain.join d))
      (fun () -> f address)
  in
  result

(** Raw connected socket, for speaking garbage at the server. *)
let raw_connect address =
  match address with
  | `Unix path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | `Tcp _ -> assert false

let stat_of address name =
  match List.assoc_opt name (Client.with_connection address Client.stats) with
  | Some v -> v
  | None -> Alcotest.failf "stats verb is missing %s" name

(* ------------------------------------------------------------------ *)
(* Framing + payload round trips                                       *)

let test_frame_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let close fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> () in
  Fun.protect
    ~finally:(fun () -> close a; close b)
    (fun () ->
      List.iter
        (fun payload ->
          P.write_frame a payload;
          match P.read_frame b with
          | Ok got -> Alcotest.(check string) "payload" payload got
          | Error e -> Alcotest.failf "frame error: %s"
                         (P.string_of_frame_error e))
        [ ""; "x"; "daisy1 ping\n\n"; String.make 100_000 'z';
          "bin\x00\x01\xff\ndata" ];
      (* clean EOF between frames *)
      Unix.close a;
      match P.read_frame b with
      | Error P.Eof -> ()
      | Ok _ | Error _ -> Alcotest.fail "expected Eof after close")

let test_payload_roundtrip () =
  let reqs =
    [
      P.Ping;
      P.Stats;
      P.Reload;
      P.Shutdown;
      P.Schedule
        {
          P.client = "alice";
          sizes = [ ("n", 64); ("m", 128) ];
          budget = Some 1_000_000;
          deadline_s = Some 2.5;
          source = gemm_src;
        };
      P.Schedule
        { P.client = "b"; sizes = []; budget = None; deadline_s = None;
          source = "void f(int n) {\n}\n" };
    ]
  in
  List.iter
    (fun r ->
      match P.parse_request (P.encode_request r) with
      | Ok r' -> Alcotest.(check bool) "request round-trips" true (r = r')
      | Error m -> Alcotest.failf "parse_request: %s" m)
    reqs;
  let reps =
    [
      P.Pong;
      P.Stats_reply [ ("served", 3); ("shed", 0) ];
      P.Reload_reply "unchanged";
      P.Shutdown_reply;
      P.Schedule_reply
        {
          P.degraded = true;
          engine = "approx";
          cost_ms = 0.1254367890123;
          eval_s = 1.5e-3;
          retries = 1;
          queue_depth = 7;
          blas_calls = 1;
          decisions =
            [
              { P.label = "nest#1"; action = "blas gemm" };
              { P.label = "nest#2"; action = "recipe interchange(0,1)" };
            ];
        };
      P.Error_reply
        { code = P.Busy; message = "queue is full"; retryable = true };
      P.Error_reply
        { code = P.Quarantined; message = "crashed twice"; retryable = false };
    ]
  in
  List.iter
    (fun r ->
      match P.parse_response (P.encode_response r) with
      | Ok r' -> Alcotest.(check bool) "response round-trips" true (r = r')
      | Error m -> Alcotest.failf "parse_response: %s" m)
    reps;
  (* %h float rendering is exact *)
  (match
     P.parse_response
       (P.encode_response
          (P.Schedule_reply
             { P.degraded = false; engine = "bytecode"; cost_ms = 1.0 /. 3.0;
               eval_s = 0.0; retries = 0; queue_depth = 0; blas_calls = 0;
               decisions = [] }))
   with
  | Ok (P.Schedule_reply r) ->
      Alcotest.(check bool) "float exact" true (r.P.cost_ms = 1.0 /. 3.0)
  | _ -> Alcotest.fail "schedule reply did not round-trip")

(* ------------------------------------------------------------------ *)
(* Admission queue                                                     *)

let test_rqueue () =
  let q = Rqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Rqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Rqueue.try_push q 2);
  Alcotest.(check bool) "full refuses" false (Rqueue.try_push q 3);
  Alcotest.(check int) "length" 2 (Rqueue.length q);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Rqueue.pop q);
  Alcotest.(check bool) "room again" true (Rqueue.try_push q 4);
  Rqueue.close q;
  Alcotest.(check bool) "closed refuses" false (Rqueue.try_push q 5);
  (* drain semantics: queued items still come out after close *)
  Alcotest.(check (option int)) "drain 2" (Some 2) (Rqueue.pop q);
  Alcotest.(check (option int)) "drain 4" (Some 4) (Rqueue.pop q);
  Alcotest.(check (option int)) "then None" None (Rqueue.pop q);
  (* close wakes a blocked popper *)
  let q2 = Rqueue.create ~capacity:1 in
  let d = Domain.spawn (fun () -> Rqueue.pop q2) in
  Unix.sleepf 0.05;
  Rqueue.close q2;
  Alcotest.(check (option int)) "woken with None" None (Domain.join d);
  Alcotest.check_raises "capacity >= 1"
    (Invalid_argument "Rqueue.create: capacity must be >= 1") (fun () ->
      ignore (Rqueue.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* End-to-end scheduling                                               *)

let test_end_to_end () =
  with_server (test_config (fresh_socket ())) (fun address ->
      Client.with_connection address (fun c ->
          Client.ping c;
          let r1 = Client.schedule c (submit gemm_src) in
          Alcotest.(check bool) "not degraded" false r1.P.degraded;
          Alcotest.(check int) "blas call found" 1 r1.P.blas_calls;
          Alcotest.(check bool) "has decisions" true
            (List.length r1.P.decisions > 0);
          (* resubmission is bit-identical: same decisions, same cost *)
          let r2 = Client.schedule c (submit gemm_src) in
          Alcotest.(check bool) "decisions identical" true
            (r1.P.decisions = r2.P.decisions);
          Alcotest.(check bool) "cost identical" true
            (r1.P.cost_ms = r2.P.cost_ms));
      (* a parse error in the kernel is a structured bad-request, and
         the connection survives it *)
      Client.with_connection address (fun c ->
          (match Client.schedule c (submit "void f(int n) { garbage") with
          | _ -> Alcotest.fail "expected Bad_request"
          | exception Client.Server_error (P.Bad_request, _) -> ());
          Client.ping c))

(* ------------------------------------------------------------------ *)
(* Hostile framing: each case one structured error (or a counted
   disconnect), and the server keeps accepting afterwards              *)

let test_framing_edges () =
  with_server
    (test_config ~idle_timeout:0.4 (fresh_socket ()))
    (fun address ->
      let expect_error what fd =
        match P.read_frame ~timeout_s:5.0 fd with
        | Ok payload -> (
            match P.parse_response payload with
            | Ok (P.Error_reply { code = P.Protocol; _ }) -> ()
            | Ok _ -> Alcotest.failf "%s: expected protocol error" what
            | Error m -> Alcotest.failf "%s: unparseable response: %s" what m)
        | Error (P.Eof | P.Disconnect) ->
            (* server may also just close after answering; acceptable
               only if it did answer — so reaching here means it closed
               without answering *)
            Alcotest.failf "%s: server closed without a structured error" what
        | Error e ->
            Alcotest.failf "%s: %s" what (P.string_of_frame_error e)
      in
      (* garbage where the magic should be *)
      let fd = raw_connect address in
      ignore (Unix.write_substring fd "GARBAGE!" 0 8);
      expect_error "garbage" fd;
      Unix.close fd;
      (* oversized declared length *)
      let fd = raw_connect address in
      let b = Bytes.create 8 in
      Bytes.blit_string P.magic 0 b 0 4;
      Bytes.set_int32_be b 4 0x7fff_ffffl;
      ignore (Unix.write fd b 0 8);
      expect_error "oversized" fd;
      Unix.close fd;
      (* truncated frame: declare 100 bytes, send 10, stall *)
      let fd = raw_connect address in
      Bytes.blit_string P.magic 0 b 0 4;
      Bytes.set_int32_be b 4 100l;
      ignore (Unix.write fd b 0 8);
      ignore (Unix.write_substring fd "0123456789" 0 10);
      expect_error "truncated" fd;
      Unix.close fd;
      (* mid-frame disconnect: no one to answer, but the server counts
         it and keeps accepting *)
      let before = stat_of address "protocol_errors" in
      let fd = raw_connect address in
      ignore (Unix.write fd b 0 8);
      ignore (Unix.write_substring fd "01234" 0 5);
      Unix.close fd;
      Unix.sleepf 0.2;
      let after = stat_of address "protocol_errors" in
      Alcotest.(check bool) "disconnect counted" true (after > before);
      (* after all that abuse, a well-behaved client is still served *)
      Client.with_connection address (fun c ->
          let r = Client.schedule c (submit gemm_src) in
          Alcotest.(check int) "still schedules" 1 r.P.blas_calls))

(* The SIGPIPE regression: a client that submits work and hangs up
   before reading the response must not kill the daemon. *)
let test_client_hangup () =
  with_server (test_config (fresh_socket ())) (fun address ->
      for _ = 1 to 3 do
        let fd = raw_connect address in
        P.write_frame fd (P.encode_request (P.Schedule (submit gemm_src)));
        (* vanish without reading the (large) response *)
        Unix.close fd
      done;
      Unix.sleepf 0.5;
      (* daemon alive and serving *)
      Client.with_connection address (fun c ->
          let r = Client.schedule c (submit gemm_src) in
          Alcotest.(check int) "survived hangups" 1 r.P.blas_calls))

(* ------------------------------------------------------------------ *)
(* Admission control: deterministic shedding                           *)

let test_shed () =
  with_server
    (test_config ~jobs:1 ~queue:1 ~idle_timeout:3.0 (fresh_socket ()))
    (fun address ->
      (* occupy the only worker with a connection that sends nothing *)
      let stall = raw_connect address in
      Unix.sleepf 0.3;
      (* fills the 1-slot queue *)
      let queued = raw_connect address in
      Unix.sleepf 0.3;
      (* over admission: must be shed with a busy error immediately *)
      let c = Client.connect address in
      (match Client.schedule c (submit gemm_src) with
      | _ -> Alcotest.fail "expected Busy"
      | exception Client.Server_error (P.Busy, _) -> ()
      | exception Failure m ->
          (* the shed frame is best-effort; a raced close is also a
             refusal, never a hang *)
          Alcotest.(check bool) ("refused: " ^ m) true true);
      Client.close c;
      (* free the worker; the queued connection gets served *)
      Unix.close stall;
      P.write_frame queued (P.encode_request P.Ping);
      (match P.read_frame ~timeout_s:5.0 queued with
      | Ok payload ->
          Alcotest.(check bool) "queued connection served" true
            (P.parse_response payload = Ok P.Pong)
      | Error e ->
          Alcotest.failf "queued connection: %s" (P.string_of_frame_error e));
      Unix.close queued;
      Alcotest.(check bool) "shed counted" true (stat_of address "shed" >= 1))

(* Per-client quotas *)
let test_quota () =
  with_server
    (test_config ~jobs:2 ~quota:1 ~idle_timeout:5.0 (fresh_socket ()))
    (fun address ->
      let c1 = Client.connect address in
      Fun.protect
        ~finally:(fun () -> Client.close c1)
        (fun () ->
          let r1 = Client.schedule c1 (submit ~client:"greedy" axpy_src) in
          Alcotest.(check bool) "first served" true (r1.P.blas_calls >= 0);
          (* same client id on a second concurrent connection: refused *)
          Client.with_connection address (fun c2 ->
              (match Client.schedule c2 (submit ~client:"greedy" axpy_src) with
              | _ -> Alcotest.fail "expected Quota"
              | exception Client.Server_error (P.Quota, _) -> ());
              (* the connection survives the refusal, and a different
                 client id is under its own quota *)
              let r =
                Client.schedule c2 (submit ~client:"polite" axpy_src)
              in
              Alcotest.(check bool) "other client served" true
                (r.P.blas_calls >= 0))))

(* ------------------------------------------------------------------ *)
(* Transient faults: retry once, then poison; quarantine persists      *)

let test_retry_and_poison () =
  with_faults (fun () ->
      let checkpoint = Filename.temp_file "daisyd-test" ".ckpt" in
      Sys.remove checkpoint;
      let socket = fresh_socket () in
      with_server
        (test_config ~checkpoint socket)
        (fun address ->
          (* one transient crash: retried once, transparently *)
          Fault.arm_nth "serve_eval" 1;
          Client.with_connection address (fun c ->
              let r = Client.schedule c (submit gemm_src) in
              Alcotest.(check int) "one retry spent" 1 r.P.retries);
          Fault.clear ();
          (* persistent crash: fails twice -> poisoned *)
          Fault.arm_always "serve_eval";
          Client.with_connection address (fun c ->
              match Client.schedule c (submit gemm_src) with
              | _ -> Alcotest.fail "expected Eval_failed"
              | exception Client.Server_error (P.Eval_failed, m) ->
                  Alcotest.(check bool) "mentions quarantine" true
                    (contains_sub ~sub:"quarantined" m));
          Fault.clear ();
          (* the fault is gone, but the poison entry protects the
             evaluator: the same program is refused without evaluation *)
          Client.with_connection address (fun c ->
              (match Client.schedule c (submit gemm_src) with
              | _ -> Alcotest.fail "expected Quarantined"
              | exception Client.Server_error (P.Quarantined, _) -> ());
              (* a different program (or different sizes) is unaffected *)
              let r = Client.schedule c (submit axpy_src) in
              Alcotest.(check bool) "others unaffected" true
                (r.P.blas_calls >= 0);
              let r2 =
                Client.schedule c (submit ~sizes:[ ("n", 16) ] gemm_src)
              in
              Alcotest.(check bool) "other sizes unaffected" true
                (r2.P.blas_calls >= 0)));
      (* graceful shutdown checkpointed the poison set: a restarted
         daemon keeps refusing the poison program *)
      with_server
        (test_config ~checkpoint socket)
        (fun address ->
          Client.with_connection address (fun c ->
              (match Client.schedule c (submit gemm_src) with
              | _ -> Alcotest.fail "expected Quarantined after restart"
              | exception Client.Server_error (P.Quarantined, _) -> ());
              let r = Client.schedule c (submit axpy_src) in
              Alcotest.(check bool) "fresh programs still served" true
                (r.P.blas_calls >= 0)));
      if Sys.file_exists checkpoint then Sys.remove checkpoint)

(* ------------------------------------------------------------------ *)
(* Graceful degradation under pressure                                 *)

let test_degraded () =
  (* degrade_depth = 0: every request is over the pressure threshold *)
  let config =
    test_config ~degrade_depth:0 ~jobs:1 (fresh_socket ())
  in
  let t = Server.create config in
  (match Server.handle_schedule t (submit gemm_src) with
  | P.Schedule_reply r ->
      Alcotest.(check bool) "degraded flag" true r.P.degraded;
      Alcotest.(check string) "approx engine" "approx" r.P.engine;
      Alcotest.(check bool) "still a real answer" true
        (List.length r.P.decisions > 0)
  | P.Error_reply { message; _ } -> Alcotest.failf "error: %s" message
  | _ -> Alcotest.fail "expected a schedule reply");
  (* under the default threshold the same request is not degraded *)
  let t2 = Server.create (test_config ~jobs:1 (fresh_socket ())) in
  match Server.handle_schedule t2 (submit gemm_src) with
  | P.Schedule_reply r ->
      Alcotest.(check bool) "not degraded" false r.P.degraded;
      Alcotest.(check bool) "full-fidelity engine" true
        (r.P.engine <> "approx")
  | _ -> Alcotest.fail "expected a schedule reply"

(* ------------------------------------------------------------------ *)
(* Warm store: fingerprint-checked hot reload                          *)

let test_store_reload () =
  with_faults (fun () ->
      let path = Filename.temp_file "daisyd-test" ".db" in
      let db = S.Database.create () in
      S.Database.save db path;
      let store = Store.create ~path () in
      let fp0 = Store.fingerprint store in
      (* rewrite with identical contents: the stat changes, the
         fingerprint does not -> Unchanged *)
      S.Database.save db path;
      (match Store.reload_if_changed ~force:true store with
      | `Unchanged -> ()
      | `Reloaded _ -> Alcotest.fail "identical contents must not swap"
      | `Failed m -> Alcotest.failf "reload failed: %s" m);
      (* a corrupt rewrite never takes the store down *)
      let oc = open_out path in
      output_string oc "NOT A DATABASE\n";
      close_out oc;
      (match Store.reload_if_changed ~force:true store with
      | `Failed _ -> ()
      | `Reloaded _ | `Unchanged ->
          Alcotest.fail "corrupt file must fail the reload");
      Alcotest.(check string) "old snapshot kept" fp0
        (Store.fingerprint store);
      Alcotest.(check int) "failure counted" 1 (Store.failed_reloads store);
      (* a valid new database is swapped in *)
      S.Database.save (S.Database.create ()) path;
      (* ... same contents as fp0 again, so force a distinguishable one:
         an injected fault also keeps the old snapshot *)
      Fault.arm_always "serve_reload";
      (match Store.reload_if_changed ~force:true store with
      | `Failed _ -> ()
      | _ -> Alcotest.fail "injected fault must fail the reload");
      Fault.clear ();
      Alcotest.(check string) "snapshot still intact" fp0
        (Store.fingerprint store);
      Sys.remove path)

(* ------------------------------------------------------------------ *)
(* Satellites: per-label warning throttle, EINTR-safe IO               *)

let test_warn_throttle () =
  Diag.reset_warn ();
  Fun.protect ~finally:(fun () -> Diag.reset_warn ()) (fun () ->
      for _ = 1 to 5 do
        Diag.warn_throttled ~label:"test_serve_a" "warning a"
      done;
      Diag.warn_throttled ~label:"test_serve_b" "warning b";
      (* power-of-two emission: calls 1, 2, 4 of 5 emit *)
      Alcotest.(check int) "a calls" 5 (Diag.warn_calls "test_serve_a");
      Alcotest.(check int) "a emitted" 3 (Diag.warn_emitted "test_serve_a");
      (* labels are independent: b's single call always emits *)
      Alcotest.(check int) "b calls" 1 (Diag.warn_calls "test_serve_b");
      Alcotest.(check int) "b emitted" 1 (Diag.warn_emitted "test_serve_b");
      (* exactly-one assertions reset per label *)
      Diag.reset_warn ~label:"test_serve_a" ();
      Alcotest.(check int) "a reset" 0 (Diag.warn_calls "test_serve_a");
      Alcotest.(check int) "b untouched" 1 (Diag.warn_calls "test_serve_b"))

let test_eintr_io () =
  (* retry_eintr retries EINTR and only EINTR *)
  let attempts = ref 0 in
  let v =
    Util.retry_eintr (fun () ->
        incr attempts;
        if !attempts < 3 then
          raise (Unix.Unix_error (Unix.EINTR, "read", ""))
        else 42)
  in
  Alcotest.(check int) "value" 42 v;
  Alcotest.(check int) "retried twice" 3 !attempts;
  Alcotest.check_raises "other errors propagate"
    (Unix.Unix_error (Unix.EBADF, "read", "")) (fun () ->
      Util.retry_eintr (fun () ->
          raise (Unix.Unix_error (Unix.EBADF, "read", ""))));
  (* really_read / write_all across a pipe, including short reads *)
  let r, w = Unix.pipe () in
  let payload = Bytes.of_string (String.init 70_000 (fun i -> Char.chr (i land 0xff))) in
  let writer =
    Domain.spawn (fun () ->
        Util.write_all w payload 0 (Bytes.length payload);
        Unix.close w)
  in
  let buf = Bytes.create (Bytes.length payload) in
  Alcotest.(check bool) "really_read completes" true
    (Util.really_read r buf 0 (Bytes.length buf));
  Alcotest.(check bool) "payload intact" true (Bytes.equal payload buf);
  (* EOF mid-read reports false, not an exception *)
  Alcotest.(check bool) "eof is false" false
    (Util.really_read r (Bytes.create 4) 0 4);
  Unix.close r;
  Domain.join writer

let suite =
  [
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "payload round-trip" `Quick test_payload_roundtrip;
    Alcotest.test_case "admission queue" `Quick test_rqueue;
    Alcotest.test_case "end-to-end schedule" `Quick test_end_to_end;
    Alcotest.test_case "hostile framing" `Quick test_framing_edges;
    Alcotest.test_case "client hangup (sigpipe)" `Quick test_client_hangup;
    Alcotest.test_case "load shedding" `Quick test_shed;
    Alcotest.test_case "client quota" `Quick test_quota;
    Alcotest.test_case "retry, poison, quarantine" `Quick test_retry_and_poison;
    Alcotest.test_case "graceful degradation" `Quick test_degraded;
    Alcotest.test_case "warm-store reload" `Quick test_store_reload;
    Alcotest.test_case "warning throttle" `Quick test_warn_throttle;
    Alcotest.test_case "eintr-safe io" `Quick test_eintr_io;
  ]
