(** Crash-consistency and differential tests for the sharded warm store
    (docs/robustness.md, "Sharded warm store"). The contracts under
    test: sharded top-k is bit-identical to the monolithic scan
    (distances and order, on a 200-database differential suite); every
    ["shard_wal"]/["shard_compact"]/["shard_scrub"] crash point leaves a
    store that opens cleanly and answers like the pre- or post-state;
    a corrupt shard quarantines with exactly one throttled warning
    while the rest keep serving; compaction re-indexes only the
    touched shards. *)

module Embedding = Daisy_embedding.Embedding
module Fault = Daisy_support.Fault
module Diag = Daisy_support.Diag
module Rng = Daisy_support.Rng
module S = Daisy_scheduler
module Store = S.Shardstore

let with_faults f =
  Fun.protect ~finally:Fault.clear (fun () ->
      Fault.clear ();
      f ())

(* ------------------------------------------------------------------ *)
(* Scratch directories *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_dir (f : string -> 'a) : 'a =
  let d = Filename.temp_file "shardstore" ".d" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

(* ------------------------------------------------------------------ *)
(* Synthetic entries (same grid trick as test_ann: ties and duplicates
   are common by construction) *)

let mk_entry ?(cost = nan) ?hash ?(recipe = []) ~grid rng i :
    S.Database.entry =
  {
    S.Database.source = Printf.sprintf "synth:%d" i;
    embedding =
      Array.init Embedding.dim (fun _ -> float_of_int (Rng.int rng grid));
    recipe;
    canon_hash = (match hash with Some h -> h | None -> i);
    cost_ms = cost;
  }

let mk_entries ?(grid = 4) rng ~n : S.Database.entry list =
  List.init n (mk_entry ~grid rng)

(* chronological list -> monolithic database *)
let mono_of (chron : S.Database.entry list) : S.Database.t =
  S.Database.of_entries (List.rev chron)

let random_q rng ~grid =
  Array.init Embedding.dim (fun _ -> float_of_int (Rng.int rng grid))

let topk_key (l : (float * S.Database.entry) list) =
  List.map (fun (d, (e : S.Database.entry)) -> (d, e.source)) l

let result = Alcotest.(list (pair (float 0.0) string))

let check_topk ~name store mono ~k q =
  Alcotest.check result name
    (topk_key (S.Database.query_embedding mono ~k q))
    (topk_key (Store.query_embedding store ~k q))

(* ------------------------------------------------------------------ *)
(* Round-trip + as_database *)

let test_roundtrip () =
  with_dir (fun dir ->
      let rng = Rng.of_string "shard-roundtrip" in
      let chron = mk_entries rng ~n:60 in
      let st = Store.create ~shard_cap:8 dir (mono_of chron) in
      let mono = mono_of chron in
      Alcotest.(check int) "size" 60 (Store.size st);
      Alcotest.(check bool)
        "several shards" true ((Store.stats st).Store.st_shards > 1);
      for i = 0 to 9 do
        let q = random_q rng ~grid:4 in
        check_topk ~name:(Printf.sprintf "query %d" i) st mono ~k:10 q
      done;
      (* reopen: same contents, same answers *)
      let st2 = Store.open_ dir in
      Alcotest.(check string)
        "fingerprint survives reopen" (Store.fingerprint st)
        (Store.fingerprint st2);
      let q = random_q rng ~grid:4 in
      check_topk ~name:"reopened query" st2 mono ~k:5 q;
      (* the Database.of_backend handle serves the same answers *)
      let db = Store.as_database st in
      Alcotest.(check int) "backed size" 60 (S.Database.size db);
      Alcotest.check result "backed query"
        (topk_key (S.Database.query_embedding mono ~k:7 q))
        (topk_key (S.Database.query_embedding db ~k:7 q));
      let h = 17 in
      Alcotest.(check int)
        "backed exact matches"
        (List.length (S.Database.exact_matches_hash mono h))
        (List.length (S.Database.exact_matches_hash db h));
      Alcotest.check_raises "backed db is read-only"
        (Invalid_argument "Database.merge: backed database is read-only")
        (fun () -> S.Database.merge ~into:db (mono_of [])))

(* ------------------------------------------------------------------ *)
(* The 200-database differential: sharded top-k == monolithic scan,
   distances and order, committed + pending + dedup included *)

let test_differential_200 () =
  for seed = 0 to 199 do
    let rng = Rng.of_string (Printf.sprintf "shard-diff-%d" seed) in
    let grid = 1 + Rng.int rng 5 in
    let n = 1 + Rng.int rng 80 in
    let cap = 4 + Rng.int rng 24 in
    let chron = List.init n (mk_entry ~grid rng) in
    (* split into a created base and an appended tail; odd seeds also
       append better-cost duplicates of base entries (same hash +
       recipe + embedding, lower cost) to exercise dedup *)
    let nbase = 1 + Rng.int rng n in
    let base = Daisy_support.Util.take nbase chron in
    let tail = Daisy_support.Util.drop nbase chron in
    let dups =
      if seed mod 2 = 1 && base <> [] then
        List.filteri (fun i _ -> i mod 3 = 0) base
        |> List.map (fun (e : S.Database.entry) ->
               {
                 e with
                 source = e.source ^ "+retuned";
                 cost_ms = float_of_int (Rng.int rng 100);
               })
      else []
    in
    let appended = tail @ dups in
    let mono = mono_of base in
    S.Database.merge ~into:mono (mono_of appended);
    with_dir (fun dir ->
        let st = Store.create ~shard_cap:cap dir (mono_of base) in
        Store.append st appended;
        for qi = 0 to 2 do
          let q = random_q rng ~grid in
          let k = [| 1; 5; 10 |].(qi) in
          check_topk
            ~name:(Printf.sprintf "seed %d query %d (pending)" seed qi)
            st mono ~k q
        done;
        (* compacting must not change a single answer *)
        ignore (Store.compact st);
        let q = random_q rng ~grid in
        check_topk ~name:(Printf.sprintf "seed %d compacted" seed) st mono
          ~k:10 q;
        (* nor must a crash-free reopen *)
        if seed mod 7 = 0 then begin
          let st2 = Store.open_ dir in
          check_topk ~name:(Printf.sprintf "seed %d reopened" seed) st2 mono
            ~k:10 q
        end)
  done

(* ------------------------------------------------------------------ *)
(* WAL: torn tail replay + the shard_wal fault point *)

let test_wal_torn_tail () =
  with_dir (fun dir ->
      let rng = Rng.of_string "shard-torn" in
      let chron = mk_entries rng ~n:20 in
      let st = Store.create ~shard_cap:8 dir (mono_of chron) in
      let extra = List.init 2 (fun i -> mk_entry ~grid:4 rng (100 + i)) in
      Store.append st extra;
      let fp_pre = Store.fingerprint st in
      (* simulate a crash mid-append: half a record at the tail *)
      let wal = Filename.concat dir "wal.log" in
      let oc = open_out_gen [ Open_append ] 0o644 wal in
      output_string oc "rec deadbeefdeadbeef 5\nsource \"torn";
      close_out oc;
      let st2 = Store.open_ dir in
      Alcotest.(check string)
        "torn tail dropped: pre-state" fp_pre (Store.fingerprint st2);
      Alcotest.(check int)
        "both appended records replayed" 2
        (Store.wal_depth st2);
      (* the tear was truncated: appending after it still replays *)
      Store.append st2 [ mk_entry ~grid:4 rng 200 ];
      let st3 = Store.open_ dir in
      Alcotest.(check int) "append after tear" 3 (Store.wal_depth st3));
  (* the fault point: an injected failure mid-record rolls the batch
     back — all-or-nothing for the surviving handle, pre-state on disk *)
  with_faults (fun () ->
      with_dir (fun dir ->
          let rng = Rng.of_string "shard-walfault" in
          let chron = mk_entries rng ~n:12 in
          let st = Store.create ~shard_cap:8 dir (mono_of chron) in
          let fp_pre = Store.fingerprint st in
          Fault.arm_nth "shard_wal" 1;
          (match Store.append st [ mk_entry ~grid:4 rng 50 ] with
          | () -> Alcotest.fail "armed append did not fail"
          | exception Fault.Injected "shard_wal" -> ());
          Alcotest.(check string)
            "handle at pre-state" fp_pre (Store.fingerprint st);
          Alcotest.(check string)
            "disk at pre-state" fp_pre
            (Store.fingerprint (Store.open_ dir));
          (* the handle survives: the retry lands *)
          Store.append st [ mk_entry ~grid:4 rng 50 ];
          Alcotest.(check int) "retry visible" 1 (Store.wal_depth st);
          Alcotest.(check string)
            "reopen sees the retry" (Store.fingerprint st)
            (Store.fingerprint (Store.open_ dir))))

(* ------------------------------------------------------------------ *)
(* Kill/resume at every compaction crash point *)

let test_compact_crash_points () =
  with_faults (fun () ->
      let expected_fp = ref "" in
      let expected_q = ref [] in
      let build dir =
        Fault.clear ();
        let rng = Rng.of_string "shard-compact-crash" in
        let chron = mk_entries ~grid:3 rng ~n:40 in
        let st = Store.create ~shard_cap:8 dir (mono_of chron) in
        (* enough appends to touch several shards and force a split *)
        let extra = List.init 20 (fun i -> mk_entry ~grid:3 rng (100 + i)) in
        Store.append st extra;
        let q = random_q rng ~grid:3 in
        (st, q)
      in
      (* the reference run: no faults *)
      with_dir (fun dir ->
          let st, q = build dir in
          ignore (Store.compact st);
          expected_fp := Store.fingerprint st;
          expected_q := topk_key (Store.query_embedding st ~k:10 q));
      let nth = ref 1 in
      let continue = ref true in
      while !continue && !nth <= 40 do
        with_dir (fun dir ->
            let st, q = build dir in
            Fault.arm_nth "shard_compact" !nth;
            match Store.compact st with
            | _ ->
                (* the armed call count exceeded the crash points *)
                Alcotest.(check int)
                  "final run fired no fault" 0
                  (Fault.fired "shard_compact");
                Alcotest.(check string)
                  "clean compact contents" !expected_fp (Store.fingerprint st);
                continue := false
            | exception Fault.Injected "shard_compact" ->
                Fault.clear ();
                (* the dying handle healed itself from disk... *)
                Alcotest.(check string)
                  (Printf.sprintf "crash %d: handle contents" !nth)
                  !expected_fp (Store.fingerprint st);
                (* ...and an independent reopen sees the same contents
                   and the same answers (pre- or post-compaction are
                   logically identical; dedup absorbs WAL re-replay) *)
                let st2 = Store.open_ dir in
                Alcotest.(check string)
                  (Printf.sprintf "crash %d: reopen contents" !nth)
                  !expected_fp (Store.fingerprint st2);
                Alcotest.check result
                  (Printf.sprintf "crash %d: reopen answers" !nth)
                  !expected_q
                  (topk_key (Store.query_embedding st2 ~k:10 q));
                (* resume: compaction completes on the reopened store *)
                ignore (Store.compact st2);
                Alcotest.(check int)
                  (Printf.sprintf "crash %d: resumed, WAL drained" !nth)
                  0 (Store.wal_depth st2);
                Alcotest.(check string)
                  (Printf.sprintf "crash %d: resumed contents" !nth)
                  !expected_fp (Store.fingerprint st2);
                incr nth)
      done;
      Alcotest.(check bool) "exercised at least 3 crash points" true (!nth > 3))

(* ------------------------------------------------------------------ *)
(* Corruption: quarantine, one throttled warning, scrub repair *)

(* flip one byte well inside a file *)
let corrupt_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  close_in ic;
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  ignore (Unix.lseek fd (n / 2) Unix.SEEK_SET);
  ignore (Unix.write_substring fd "\xff" 0 1);
  Unix.close fd

(* the first segment file the manifest references *)
let first_segment dir =
  let man = In_channel.with_open_bin (Filename.concat dir "MANIFEST") In_channel.input_all in
  let lines = String.split_on_char '\n' man in
  List.find_map
    (fun l ->
      match String.split_on_char ' ' l with
      | [ "shard"; _; _; _; file; _ ] -> Some file
      | _ -> None)
    lines
  |> Option.get

let test_corrupt_one_shard () =
  with_dir (fun dir ->
      let rng = Rng.of_string "shard-corrupt" in
      let chron = mk_entries ~grid:5 rng ~n:60 in
      let st0 = Store.create ~shard_cap:8 dir (mono_of chron) in
      Alcotest.(check bool)
        "at least 3 shards" true ((Store.stats st0).Store.st_shards >= 3);
      let victim = first_segment dir in
      (* which entries live in the victim segment? *)
      let victim_db, _ = S.Database.load (Filename.concat dir victim) in
      let victim_sources =
        List.map
          (fun (e : S.Database.entry) -> e.source)
          (S.Database.entries victim_db)
      in
      Alcotest.(check bool) "victim is non-empty" true (victim_sources <> []);
      corrupt_file (Filename.concat dir victim);
      (* the flipped byte kills some entries of the segment, not all:
         the quarantined shard keeps serving the survivors by scan *)
      let survived =
        match S.Database.load (Filename.concat dir victim) with
        | db, _ ->
            List.map
              (fun (e : S.Database.entry) -> e.source)
              (S.Database.entries db)
        | exception Daisy_support.Diag.Error _ -> []
      in
      let lost =
        List.filter (fun s -> not (List.mem s survived)) victim_sources
      in
      Alcotest.(check bool) "corruption lost something" true (lost <> []);
      Diag.reset_warn ();
      let before = Store.quarantines () in
      let st = Store.open_ dir in
      let stats = Store.stats st in
      Alcotest.(check int) "one shard quarantined" 1 stats.Store.st_quarantined;
      Alcotest.(check int)
        "quarantine counter" (before + 1) (Store.quarantines ());
      (* the other shards keep serving: every non-victim entry is still
         found, with monolithic-scan answers over the survivors *)
      let survivors =
        List.filter
          (fun (e : S.Database.entry) -> not (List.mem e.source lost))
          chron
      in
      let mono = mono_of survivors in
      for i = 0 to 9 do
        let q = random_q rng ~grid:5 in
        Alcotest.check result
          (Printf.sprintf "degraded query %d" i)
          (topk_key (S.Database.query_embedding mono ~k:10 q))
          (topk_key (Store.query_embedding st ~k:10 q))
      done;
      (* exactly one throttled warning, however many queries ran *)
      Alcotest.(check int)
        "exactly one quarantine warning" 1
        (Diag.warn_emitted "shard_quarantine");
      (* scrub repairs from the in-memory survivors; the lost entries
         are counted, the store leaves quarantine *)
      let r = Store.scrub st in
      Alcotest.(check int) "one corrupt shard" 1 r.Store.sr_corrupt;
      Alcotest.(check int) "one repaired shard" 1 r.Store.sr_repaired;
      Alcotest.(check int)
        "lost entries counted" (List.length lost) r.Store.sr_entries_lost;
      Alcotest.(check int)
        "quarantine lifted" 0 (Store.stats st).Store.st_quarantined;
      (* a fresh open is clean and a fresh scrub reports nothing *)
      let st2 = Store.open_ dir in
      Alcotest.(check int)
        "reopen clean" 0 (Store.stats st2).Store.st_quarantined;
      let r2 = Store.scrub st2 in
      Alcotest.(check int) "second scrub clean" 0 r2.Store.sr_corrupt;
      Alcotest.(check string)
        "repair survives reopen" (Store.fingerprint st)
        (Store.fingerprint st2))

(* Kill/resume at every scrub-repair crash point. *)
let test_scrub_crash_points () =
  with_faults (fun () ->
      let build dir =
        Fault.clear ();
        let rng = Rng.of_string "shard-scrub-crash" in
        let chron = mk_entries ~grid:3 rng ~n:40 in
        let st0 = Store.create ~shard_cap:8 dir (mono_of chron) in
        ignore st0;
        corrupt_file (Filename.concat dir (first_segment dir));
        Store.open_ dir
      in
      let expected_fp = ref "" in
      with_dir (fun dir ->
          let st = build dir in
          ignore (Store.scrub st);
          expected_fp := Store.fingerprint st);
      let nth = ref 1 in
      let continue = ref true in
      while !continue && !nth <= 20 do
        with_dir (fun dir ->
            let st = build dir in
            Fault.arm_nth "shard_scrub" !nth;
            match Store.scrub st with
            | _ ->
                Alcotest.(check int)
                  "final scrub fired no fault" 0 (Fault.fired "shard_scrub");
                continue := false
            | exception Fault.Injected "shard_scrub" ->
                Fault.clear ();
                (* survivors are intact either side of the crash *)
                Alcotest.(check string)
                  (Printf.sprintf "scrub crash %d: healed handle" !nth)
                  !expected_fp (Store.fingerprint st);
                let st2 = Store.open_ dir in
                Alcotest.(check string)
                  (Printf.sprintf "scrub crash %d: reopen contents" !nth)
                  !expected_fp (Store.fingerprint st2);
                (* resume: the repair completes *)
                let r = Store.scrub st2 in
                Alcotest.(check int)
                  (Printf.sprintf "scrub crash %d: resumed repair" !nth)
                  0
                  ((Store.stats st2).Store.st_quarantined + min 0 r.Store.sr_corrupt);
                incr nth)
      done;
      Alcotest.(check bool)
        "exercised at least 1 scrub crash point" true (!nth > 1))

(* ------------------------------------------------------------------ *)
(* Incremental rebuild: one appended shard => one sidecar rebuilt *)

let test_incremental_rebuild () =
  with_dir (fun dir ->
      let rng = Rng.of_string "shard-incr" in
      let chron = mk_entries ~grid:5 rng ~n:60 in
      ignore (Store.create ~shard_cap:8 dir (mono_of chron));
      (* reopen with headroom so one append folds without splitting *)
      let st = Store.open_ ~shard_cap:32 dir in
      let shards = (Store.stats st).Store.st_shards in
      Alcotest.(check bool) "several shards" true (shards >= 3);
      Store.append st [ mk_entry ~grid:5 rng 100 ];
      Store.reset_ann_builds ();
      let rewritten = Store.compact st in
      Alcotest.(check int) "one shard rewritten" 1 rewritten;
      Alcotest.(check int)
        "one sidecar rebuilt, not the world" 1 (Store.ann_builds ());
      Alcotest.(check int)
        "shard count unchanged" shards (Store.stats st).Store.st_shards;
      (* nothing pending: a second compact is a no-op, no builds *)
      Store.reset_ann_builds ();
      Alcotest.(check int) "no-op compact" 0 (Store.compact st);
      Alcotest.(check int) "no-op builds nothing" 0 (Store.ann_builds ()))

(* Shards past the cap split during compaction, keeping answers exact. *)
let test_split_on_growth () =
  with_dir (fun dir ->
      let rng = Rng.of_string "shard-split" in
      let base = mk_entries ~grid:5 rng ~n:8 in
      let st = Store.create ~shard_cap:8 dir (mono_of base) in
      Alcotest.(check int) "single shard" 1 (Store.stats st).Store.st_shards;
      let extra = List.init 30 (fun i -> mk_entry ~grid:5 rng (10 + i)) in
      Store.append st extra;
      ignore (Store.compact st);
      Alcotest.(check bool)
        "split happened" true ((Store.stats st).Store.st_shards > 1);
      Alcotest.(check int) "WAL drained" 0 (Store.wal_depth st);
      let mono = mono_of base in
      S.Database.merge ~into:mono (mono_of extra);
      for i = 0 to 4 do
        let q = random_q rng ~grid:5 in
        check_topk ~name:(Printf.sprintf "post-split query %d" i) st mono
          ~k:10 q
      done;
      let st2 = Store.open_ dir in
      Alcotest.(check string)
        "split survives reopen" (Store.fingerprint st) (Store.fingerprint st2))

(* ------------------------------------------------------------------ *)
(* Idempotent replay: merging/appending the same records twice is a
   no-op (the crash window between manifest rename and WAL reset) *)

let test_idempotent_replay () =
  with_dir (fun dir ->
      let rng = Rng.of_string "shard-idem" in
      let chron = mk_entries ~grid:4 rng ~n:30 in
      let extra =
        List.init 10 (fun i ->
            mk_entry ~grid:4 ~cost:(float_of_int i) rng (50 + i))
      in
      let st = Store.create ~shard_cap:8 dir (mono_of chron) in
      Store.append st extra;
      ignore (Store.compact st);
      let fp = Store.fingerprint st in
      (* over-replay: the same records appended again fold to nothing *)
      Store.append st extra;
      ignore (Store.compact st);
      Alcotest.(check string) "double append is a no-op" fp (Store.fingerprint st);
      Alcotest.(check int) "size stable" 40 (Store.size st));
  (* the Database-level satellite: merge twice == merge once; a
     better-cost duplicate replaces in place *)
  let rng = Rng.of_string "shard-idem-db" in
  let shard = mono_of (mk_entries ~grid:4 rng ~n:20) in
  let into = S.Database.create () in
  S.Database.merge ~into shard;
  let once = S.Database.fingerprint into in
  S.Database.merge ~into shard;
  Alcotest.(check string)
    "merge twice == merge once" once
    (S.Database.fingerprint into);
  let e = List.nth (S.Database.entries into) 7 in
  let better = { e with S.Database.cost_ms = -1.0; source = "better" } in
  S.Database.merge ~into (S.Database.of_entries [ better ]);
  Alcotest.(check int) "dedup kept size" 20 (S.Database.size into);
  let winner =
    List.find
      (fun (x : S.Database.entry) ->
        S.Database.dedup_key x = S.Database.dedup_key e)
      (S.Database.entries into)
  in
  Alcotest.(check string) "better cost won in place" "better" winner.source

(* ------------------------------------------------------------------ *)
(* trim_wal: compaction only advances the consumed boundary — the WAL
   file keeps its bytes (concurrent-appender safety) until an explicit
   single-writer trim reclaims the folded prefix *)

let test_trim_wal () =
  with_dir (fun dir ->
      let rng = Rng.of_string "shard-trim" in
      let chron = mk_entries ~grid:4 rng ~n:20 in
      let st = Store.create ~shard_cap:32 dir (mono_of chron) in
      let wal = Filename.concat dir "wal.log" in
      let wal_bytes () = (Unix.stat wal).Unix.st_size in
      Store.append st [ mk_entry ~grid:4 rng 100; mk_entry ~grid:4 rng 101 ];
      let full = wal_bytes () in
      ignore (Store.compact st);
      (* compaction leaves the WAL bytes in place *)
      Alcotest.(check int) "compact keeps WAL bytes" full (wal_bytes ());
      Alcotest.(check int) "nothing pending" 0 (Store.wal_depth st);
      let fp = Store.fingerprint st in
      let dropped = Store.trim_wal st in
      Alcotest.(check bool) "trim reclaimed bytes" true (dropped > 0);
      Alcotest.(check bool) "WAL shrank" true (wal_bytes () < full);
      Alcotest.(check int) "second trim is a no-op" 0 (Store.trim_wal st);
      (* a reopen after the trim replays nothing and answers identically *)
      let st2 = Store.open_ dir in
      Alcotest.(check string) "content stable across trim" fp
        (Store.fingerprint st2);
      Alcotest.(check int) "no pending after reopen" 0 (Store.wal_depth st2);
      (* appends keep working on the trimmed log *)
      Store.append st2 [ mk_entry ~grid:4 rng 102 ];
      Alcotest.(check int) "append after trim" 1 (Store.wal_depth st2);
      Alcotest.(check int) "size grew" 23 (Store.size st2))

(* ------------------------------------------------------------------ *)
(* refresh: a reader follows an external writer, swapping only the
   shards whose segments changed *)

let test_refresh () =
  with_dir (fun dir ->
      let rng = Rng.of_string "shard-refresh" in
      let chron = mk_entries ~grid:4 rng ~n:40 in
      let writer = Store.create ~shard_cap:8 dir (mono_of chron) in
      let reader = Store.open_ dir in
      Alcotest.(check bool)
        "reader starts unchanged" true (Store.refresh reader = `Unchanged);
      (* an append is picked up from the WAL without touching shards *)
      Store.append writer [ mk_entry ~grid:4 rng 100 ];
      (match Store.refresh reader with
      | `Changed (0, 1) -> ()
      | _ -> Alcotest.fail "expected `Changed (0, 1) after append");
      Alcotest.(check string)
        "reader sees the append" (Store.fingerprint writer)
        (Store.fingerprint reader);
      (* compaction swaps only the affected shard *)
      let shards = (Store.stats writer).Store.st_shards in
      ignore (Store.compact writer);
      (match Store.refresh reader with
      | `Changed (swapped, _) ->
          Alcotest.(check int) "one shard swapped" 1 swapped;
          Alcotest.(check bool) "fewer than all" true (swapped < shards)
      | `Unchanged -> Alcotest.fail "reader missed the compaction");
      Alcotest.(check string)
        "reader tracks compaction" (Store.fingerprint writer)
        (Store.fingerprint reader);
      let q = random_q rng ~grid:4 in
      Alcotest.check result "reader answers match writer"
        (topk_key (Store.query_embedding writer ~k:10 q))
        (topk_key (Store.query_embedding reader ~k:10 q));
      Alcotest.(check bool)
        "steady state" true (Store.refresh reader = `Unchanged))

let suite =
  [
    Alcotest.test_case "roundtrip + as_database" `Quick test_roundtrip;
    Alcotest.test_case "200-database differential" `Slow test_differential_200;
    Alcotest.test_case "WAL torn tail + fault" `Quick test_wal_torn_tail;
    Alcotest.test_case "compact crash points" `Quick test_compact_crash_points;
    Alcotest.test_case "corrupt one shard" `Quick test_corrupt_one_shard;
    Alcotest.test_case "scrub crash points" `Quick test_scrub_crash_points;
    Alcotest.test_case "incremental rebuild" `Quick test_incremental_rebuild;
    Alcotest.test_case "split on growth" `Quick test_split_on_growth;
    Alcotest.test_case "idempotent replay" `Quick test_idempotent_replay;
    Alcotest.test_case "WAL trim" `Quick test_trim_wal;
    Alcotest.test_case "reader refresh" `Quick test_refresh;
  ]
