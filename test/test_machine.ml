(** Tests for the machine model: cache simulator, trace walker, roofline
    cost model. These validate the {e shapes} every experiment relies on:
    strided access costs more than contiguous, vectorization helps
    compute-bound code, DRAM bandwidth saturates parallel scaling. *)

module Ir = Daisy_loopir.Ir
module Config = Daisy_machine.Config
module Cache = Daisy_machine.Cache
module Cost = Daisy_machine.Cost
module Transforms = Daisy_transforms.Loop_transforms

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"
let config = Config.default

let ms p ~sizes ?(threads = 1) () =
  Cost.milliseconds (Cost.evaluate config p ~sizes ~threads ())

(* ------------------------------------------------------------------ *)
(* Cache simulator *)

let test_cache_basic () =
  let c = Cache.create config in
  (* sequential walk over 2 KiB: 256 doubles, 32 lines *)
  for i = 0 to 255 do
    Cache.access c ~addr:(i * 8) ~write:false
  done;
  let s = Cache.l1_stats c in
  Alcotest.(check int) "accesses" 256 (int_of_float s.Cache.accesses);
  Alcotest.(check int) "one miss per line" 32 (int_of_float s.Cache.misses)

let test_cache_reuse_hit () =
  let c = Cache.create config in
  Cache.access c ~addr:0 ~write:false;
  Cache.access c ~addr:8 ~write:false;
  Cache.access c ~addr:0 ~write:true;
  let s = Cache.l1_stats c in
  Alcotest.(check int) "single compulsory miss" 1 (int_of_float s.Cache.misses)

let test_cache_capacity_eviction () =
  let c = Cache.create config in
  (* stream 4x the L1 capacity, then re-stream: all misses both times *)
  let lines = 4 * config.Config.l1.Config.size_bytes / 64 in
  for r = 0 to 1 do
    ignore r;
    for i = 0 to lines - 1 do
      Cache.access c ~addr:(i * 64) ~write:false
    done
  done;
  let s = Cache.l1_stats c in
  Alcotest.(check int) "all miss" (2 * lines) (int_of_float s.Cache.misses);
  Alcotest.(check bool) "evictions happened" true (s.Cache.evicts > 0.0)

let test_cache_dirty_writeback () =
  let c = Cache.create config in
  let lines = 2 * config.Config.l1.Config.size_bytes / 64 in
  for i = 0 to lines - 1 do
    Cache.access c ~addr:(i * 64) ~write:true
  done;
  let s = Cache.l1_stats c in
  Alcotest.(check bool) "writebacks happened" true (s.Cache.writebacks > 0.0)

let test_cache_l2_catches_l1_misses () =
  let c = Cache.create config in
  (* working set bigger than L1 but within L2: second pass misses L1 only *)
  let lines = 2 * config.Config.l1.Config.size_bytes / 64 in
  for r = 0 to 1 do
    ignore r;
    for i = 0 to lines - 1 do
      Cache.access c ~addr:(i * 64) ~write:false
    done
  done;
  let l2 = Cache.l2_stats c in
  Alcotest.(check int) "L2 misses only compulsory" lines
    (int_of_float l2.Cache.misses)

(* Cache geometry edge cases: tiny synthetic levels exercise the
   replacement policy where it is most visible. *)

let tiny_config ~l1 ~l2 =
  { config with Config.l1; Config.l2 }

let test_cache_direct_mapped_conflict () =
  (* assoc=1: two lines in the same set conflict on every access even
     though 15 other sets are empty *)
  let l1 = { Config.name = "L1"; size_bytes = 1024; line_bytes = 64; assoc = 1 } in
  let l2 = { Config.name = "L2"; size_bytes = 8192; line_bytes = 64; assoc = 8 } in
  let c = Cache.create (tiny_config ~l1 ~l2) in
  (* line 0 and line 16 both map to set 0 of 16 *)
  for _ = 1 to 10 do
    Cache.access c ~addr:0 ~write:false;
    Cache.access c ~addr:1024 ~write:false
  done;
  let s = Cache.l1_stats c in
  Alcotest.(check int) "every access misses" 20 (int_of_float s.Cache.misses);
  Alcotest.(check int) "all but the first fill evict" 19
    (int_of_float s.Cache.evicts);
  (* the same pattern in a 4-way cache hits after the compulsory misses *)
  let c4 = Cache.create config in
  for _ = 1 to 10 do
    Cache.access c4 ~addr:0 ~write:false;
    Cache.access c4 ~addr:1024 ~write:false
  done;
  Alcotest.(check int) "associativity absorbs the conflict" 2
    (int_of_float (Cache.l1_stats c4).Cache.misses)

let test_cache_single_set_lru () =
  (* 4 lines, 1 set: fully associative. A 4-line working set is resident;
     a 5-line cyclic walk defeats LRU completely. *)
  let l1 = { Config.name = "L1"; size_bytes = 256; line_bytes = 64; assoc = 4 } in
  let l2 = { Config.name = "L2"; size_bytes = 8192; line_bytes = 64; assoc = 8 } in
  let cfg = tiny_config ~l1 ~l2 in
  let c = Cache.create cfg in
  for _ = 1 to 2 do
    for i = 0 to 3 do
      Cache.access c ~addr:(i * 64) ~write:false
    done
  done;
  Alcotest.(check int) "4-line set: compulsory misses only" 4
    (int_of_float (Cache.l1_stats c).Cache.misses);
  let c = Cache.create cfg in
  for _ = 1 to 3 do
    for i = 0 to 4 do
      Cache.access c ~addr:(i * 64) ~write:false
    done
  done;
  Alcotest.(check int) "5-line cycle thrashes LRU" 15
    (int_of_float (Cache.l1_stats c).Cache.misses)

let test_cache_writeback_accounting () =
  (* L1 with two direct-mapped lines: a dirty conflict victim is written
     back into L2 exactly once, and L2 sees fetch + writeback traffic *)
  let l1 = { Config.name = "L1"; size_bytes = 128; line_bytes = 64; assoc = 1 } in
  let l2 = { Config.name = "L2"; size_bytes = 8192; line_bytes = 64; assoc = 8 } in
  let c = Cache.create (tiny_config ~l1 ~l2) in
  Cache.access c ~addr:0 ~write:true;
  (* line 2, same set as line 0: evicts the dirty line *)
  Cache.access c ~addr:128 ~write:true;
  let s1 = Cache.l1_stats c and s2 = Cache.l2_stats c in
  Alcotest.(check int) "l1 misses" 2 (int_of_float s1.Cache.misses);
  Alcotest.(check int) "l1 evicts" 1 (int_of_float s1.Cache.evicts);
  Alcotest.(check int) "l1 writebacks" 1 (int_of_float s1.Cache.writebacks);
  (* L2: fetch of line 0, fetch of line 2, write-back of line 0 *)
  Alcotest.(check int) "l2 accesses" 3 (int_of_float s2.Cache.accesses);
  (* a clean victim writes nothing back *)
  let c = Cache.create (tiny_config ~l1 ~l2) in
  Cache.access c ~addr:0 ~write:false;
  Cache.access c ~addr:128 ~write:false;
  Alcotest.(check int) "clean eviction: no writeback" 0
    (int_of_float (Cache.l1_stats c).Cache.writebacks)

let test_cache_nonpow2_geometry () =
  (* non-power-of-two line size and set count round down at construction
     (line_bytes 48 -> 32; 1536/32/2 = 24 sets -> 16), so the cache must
     behave exactly like the explicitly rounded configuration *)
  let odd =
    { Config.name = "L1"; size_bytes = 1536; line_bytes = 48; assoc = 2 }
  in
  let rounded =
    { Config.name = "L1"; size_bytes = 1024; line_bytes = 32; assoc = 2 }
  in
  let l2 = { Config.name = "L2"; size_bytes = 8192; line_bytes = 64; assoc = 8 } in
  let run l1 =
    let c = Cache.create (tiny_config ~l1 ~l2) in
    (* deterministic pseudo-random mix of reads and writes *)
    let x = ref 12345 in
    for _ = 1 to 2000 do
      x := (!x * 1103515245) + 12345;
      let r = (!x lsr 16) land 0xffff in
      Cache.access c ~addr:(r * 8) ~write:(r land 3 = 0)
    done;
    (Cache.l1_stats c, Cache.l2_stats c)
  in
  let s1, s1' = run odd and s2, s2' = run rounded in
  let eq name (a : Cache.stats) (b : Cache.stats) =
    Alcotest.(check (float 0.0)) (name ^ " accesses") b.Cache.accesses a.Cache.accesses;
    Alcotest.(check (float 0.0)) (name ^ " misses") b.Cache.misses a.Cache.misses;
    Alcotest.(check (float 0.0)) (name ^ " evicts") b.Cache.evicts a.Cache.evicts;
    Alcotest.(check (float 0.0)) (name ^ " writebacks") b.Cache.writebacks a.Cache.writebacks
  in
  eq "l1" s1 s2;
  eq "l2" s1' s2'

let test_config_validate () =
  Alcotest.(check (list string)) "default config is clean" []
    (Config.validate config);
  let bad =
    {
      config with
      Config.l1 =
        { Config.name = "L1"; size_bytes = 1536; line_bytes = 48; assoc = 0 };
      Config.vector_width = 3;
    }
  in
  let msgs = Config.validate bad in
  Alcotest.(check bool) "bad geometry reported" true (msgs <> []);
  Alcotest.(check bool) "mentions the rounded line size" true
    (List.exists (fun m -> String.length m > 0 && String.index_opt m '3' <> None)
       msgs)

let test_cache_snapshot_restore () =
  (* replaying the same access sequence from a restored snapshot at a
     later clock yields bit-identical statistics deltas: LRU only depends
     on stamp order, which clock translation preserves *)
  let c = Cache.create config in
  for i = 0 to 99 do
    Cache.access c ~addr:(i * 64) ~write:(i land 1 = 0)
  done;
  let snap = Cache.snapshot c in
  let clock0 = Cache.clock c in
  let seq () =
    for i = 0 to 499 do
      Cache.access c ~addr:(i * 40) ~write:(i land 3 = 0)
    done
  in
  let before = Cache.copy_stats (Cache.l1_stats c) in
  seq ();
  let d1 = Cache.sub_stats (Cache.l1_stats c) before in
  let spent = Cache.clock c - clock0 in
  (* perturb the cache thoroughly, then restore and replay *)
  for i = 0 to 999 do
    Cache.access c ~addr:(i * 72) ~write:true
  done;
  Cache.restore c snap ~clock_delta:spent;
  let before = Cache.copy_stats (Cache.l1_stats c) in
  seq ();
  let d2 = Cache.sub_stats (Cache.l1_stats c) before in
  Alcotest.(check (float 0.0)) "misses replay" d1.Cache.misses d2.Cache.misses;
  Alcotest.(check (float 0.0)) "evicts replay" d1.Cache.evicts d2.Cache.evicts;
  Alcotest.(check (float 0.0)) "writebacks replay" d1.Cache.writebacks
    d2.Cache.writebacks

let test_cache_probe_hit_run () =
  (* l1_probe + l1_hit_run must leave the cache in exactly the state the
     per-access path produces: identical stats now AND identical eviction
     behavior later (stamps and dirty bits match) *)
  let l1 = { Config.name = "L1"; size_bytes = 256; line_bytes = 64; assoc = 4 } in
  let l2 = { Config.name = "L2"; size_bytes = 8192; line_bytes = 64; assoc = 8 } in
  let cfg = tiny_config ~l1 ~l2 in
  let addrs = [| 0; 64; 128 |] in
  let writes = [| false; true; false |] in
  let warm c =
    Array.iteri (fun j a -> Cache.access c ~addr:a ~write:writes.(j)) addrs
  in
  let tail c =
    (* 5-line cyclic walk: evicts in LRU order, exposing any stamp skew *)
    for _ = 1 to 3 do
      for i = 0 to 4 do
        Cache.access c ~addr:(i * 64) ~write:false
      done
    done
  in
  let generic = Cache.create cfg in
  warm generic;
  for _ = 1 to 7 do
    Array.iteri (fun j a -> Cache.access generic ~addr:a ~write:writes.(j)) addrs
  done;
  tail generic;
  let fused = Cache.create cfg in
  warm fused;
  let lines = Array.map (fun a -> a / 64) addrs in
  let slots = Array.make 3 0 in
  Alcotest.(check bool) "probe finds the warm lines" true
    (Cache.l1_probe fused ~lines ~n:3 ~slots);
  Cache.l1_hit_run fused ~slots ~writes ~k:3 ~n:7;
  tail fused;
  Alcotest.(check int) "clocks agree" (Cache.clock generic) (Cache.clock fused);
  let sg = Cache.l1_stats generic and sf = Cache.l1_stats fused in
  Alcotest.(check (float 0.0)) "accesses agree" sg.Cache.accesses sf.Cache.accesses;
  Alcotest.(check (float 0.0)) "misses agree" sg.Cache.misses sf.Cache.misses;
  Alcotest.(check (float 0.0)) "evicts agree" sg.Cache.evicts sf.Cache.evicts;
  let wg = Cache.l2_stats generic and wf = Cache.l2_stats fused in
  Alcotest.(check (float 0.0)) "dirty writebacks agree" wg.Cache.accesses
    wf.Cache.accesses

let test_cache_flush_keeps_stats () =
  let c = Cache.create config in
  Cache.access c ~addr:0 ~write:false;
  Cache.flush_l1 c;
  Cache.access c ~addr:0 ~write:false;
  let s = Cache.l1_stats c in
  Alcotest.(check int) "flush forgets the line" 2 (int_of_float s.Cache.misses);
  Alcotest.(check int) "flush keeps counts" 2 (int_of_float s.Cache.accesses)

let test_line_granular_agrees_on_streams () =
  (* line-granular stepping must charge the same misses / evicts /
     writebacks / loads / stores as per-element simulation on unit-stride
     streams — only raw L1 access (port probe) counts differ by design *)
  let module Trace = Daisy_machine.Trace in
  let module Tc = Daisy_machine.Trace_compile in
  let p =
    lower
      {|void f(int n, double A[n], double B[n], double C[n]) {
          for (int r = 0; r < 4; r++)
            for (int i = 0; i < n; i++)
              C[i] = A[i] * 2.0 + B[i];
        }|}
  in
  let sizes = [ ("n", 300) ] in
  let exact = Trace.run config p ~sizes () in
  let line = Tc.run config p ~sizes ~approx:Tc.line_step_only () in
  List.iter2
    (fun (e : Trace.counters) (l : Trace.counters) ->
      let same name a b =
        Alcotest.(check bool)
          (Printf.sprintf "%s equal (%.1f vs %.1f)" name a b)
          true
          (Int64.bits_of_float a = Int64.bits_of_float b)
      in
      same "loads" e.Trace.loads l.Trace.loads;
      same "stores" e.Trace.stores l.Trace.stores;
      same "flops" e.Trace.flops l.Trace.flops;
      same "l1 misses" e.Trace.l1.Cache.misses l.Trace.l1.Cache.misses;
      same "l1 evicts" e.Trace.l1.Cache.evicts l.Trace.l1.Cache.evicts;
      same "l1 writebacks" e.Trace.l1.Cache.writebacks
        l.Trace.l1.Cache.writebacks;
      same "l2 misses" e.Trace.l2.Cache.misses l.Trace.l2.Cache.misses;
      same "l2 writebacks" e.Trace.l2.Cache.writebacks
        l.Trace.l2.Cache.writebacks;
      (* 3 arrays x 300 elements x 4 sweeps = 3600 element accesses but
         only one line touch per 8 elements *)
      Alcotest.(check bool) "line touches fewer than element accesses" true
        (l.Trace.l1.Cache.accesses < e.Trace.l1.Cache.accesses))
    exact line

(* ------------------------------------------------------------------ *)
(* Cost model shapes *)

let copy_rowmajor =
  {|void f(int n, double A[n][n], double B[n][n]) {
      for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++)
          A[i][j] = B[i][j];
    }|}

let copy_colmajor =
  {|void f(int n, double A[n][n], double B[n][n]) {
      for (int j = 0; j < n; j++)
        for (int i = 0; i < n; i++)
          A[i][j] = B[i][j];
    }|}

let test_strided_slower () =
  let sizes = [ ("n", 128) ] in
  let good = ms (lower copy_rowmajor) ~sizes () in
  let bad = ms (lower copy_colmajor) ~sizes () in
  Alcotest.(check bool)
    (Printf.sprintf "column-major %.3f ms slower than row-major %.3f ms" bad good)
    true
    (bad > 2.0 *. good)

let gemm_order order =
  Printf.sprintf
    {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
        %s
              C[i][j] += A[i][k] * B[k][j];
      }|}
    (String.concat "\n"
       (List.map
          (fun v -> Printf.sprintf "for (int %s = 0; %s < n; %s++)" v v v)
          order))

let test_gemm_order_matters () =
  let sizes = [ ("n", 96) ] in
  let ikj = ms (lower (gemm_order [ "i"; "k"; "j" ])) ~sizes () in
  let jki = ms (lower (gemm_order [ "j"; "k"; "i" ])) ~sizes () in
  Alcotest.(check bool)
    (Printf.sprintf "jki %.3f ms slower than ikj %.3f ms" jki ikj)
    true (jki > 1.5 *. ikj)

let test_vectorization_helps () =
  let p =
    lower
      {|void f(int n, double A[n], double B[n], double C[n]) {
          for (int i = 0; i < n; i++)
            C[i] = C[i] + A[i] * B[i] + A[i] * A[i] + B[i] * B[i] + 1.0;
        }|}
  in
  let sizes = [ ("n", 512) ] in
  let scalar = ms p ~sizes () in
  let vectorized =
    match p.Ir.body with
    | [ Ir.Nloop l ] -> (
        match Transforms.vectorize ~outer:[] l with
        | Ok l' -> { p with Ir.body = [ Ir.Nloop l' ] }
        | Error e -> Alcotest.fail e)
    | _ -> Alcotest.fail "expected one nest"
  in
  let vec = ms vectorized ~sizes () in
  Alcotest.(check bool)
    (Printf.sprintf "vectorized %.4f ms faster than scalar %.4f ms" vec scalar)
    true (vec < scalar)

let test_parallel_speedup_and_saturation () =
  (* compute-heavy kernel: near-linear scaling *)
  let p =
    lower
      {|void f(int n, double A[n][n]) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              A[i][j] = A[i][j] * A[i][j] + A[i][j] * 2.0 + sqrt(A[i][j]);
        }|}
  in
  let p =
    match p.Ir.body with
    | [ Ir.Nloop l ] -> (
        match Transforms.parallelize ~outer:[] l 0 with
        | Ok l' -> { p with Ir.body = [ Ir.Nloop l' ] }
        | Error e -> Alcotest.fail e)
    | _ -> Alcotest.fail "one nest"
  in
  let sizes = [ ("n", 128) ] in
  let t1 = ms p ~sizes ~threads:1 () in
  let t8 = ms p ~sizes ~threads:8 () in
  Alcotest.(check bool)
    (Printf.sprintf "8 threads (%.4f) at least 4x faster than 1 (%.4f)" t8 t1)
    true
    (t1 /. t8 > 4.0)

let test_atomic_reduction_expensive () =
  (* a parallel-with-atomics reduction must cost much more than the
     sequential version of the same loop *)
  let src =
    {|void f(int n, double A[n][n], double s[1]) {
        for (int i = 0; i < n; i++)
          for (int j = 0; j < n; j++)
            s[0] += A[i][j];
      }|}
  in
  let p = lower src in
  let sizes = [ ("n", 64) ] in
  let seq = ms p ~sizes ~threads:8 () in
  let atomic =
    match p.Ir.body with
    | [ Ir.Nloop l ] ->
        let attrs = { l.Ir.attrs with Ir.parallel = true; atomic = true } in
        { p with Ir.body = [ Ir.Nloop { l with Ir.attrs = attrs } ] }
    | _ -> Alcotest.fail "one nest"
  in
  let at = ms atomic ~sizes ~threads:8 () in
  Alcotest.(check bool)
    (Printf.sprintf "atomic %.4f slower than sequential %.4f" at seq)
    true (at > 2.0 *. seq)

let test_sampling_consistent () =
  let p = lower (gemm_order [ "i"; "k"; "j" ]) in
  let sizes = [ ("n", 64) ] in
  let full = Cost.evaluate config p ~sizes () in
  let sampled = Cost.evaluate config p ~sizes ~sample_outer:16 () in
  let rel =
    Float.abs (full.Cost.total_cycles -. sampled.Cost.total_cycles)
    /. full.Cost.total_cycles
  in
  Alcotest.(check bool)
    (Printf.sprintf "sampled within 20%% (rel diff %.3f)" rel)
    true (rel < 0.2)

let test_libcall_near_peak () =
  (* a gemm libcall must beat the naive loop nest *)
  let n = 96 in
  let p_loop = lower (gemm_order [ "i"; "k"; "j" ]) in
  let call =
    Ir.Ncall
      {
        Ir.kid = Ir.fresh_id ();
        kernel = "gemm";
        args = [ "C"; "A"; "B" ];
        scalar_args = [ Ir.Vfloat 1.0 ];
        dims = Daisy_poly.Expr.[ var "n"; var "n"; var "n" ];
        writes_to = [ "C" ];
      }
  in
  let p_call = { p_loop with Ir.body = [ call ] } in
  let sizes = [ ("n", n) ] in
  let t_loop = ms p_loop ~sizes () in
  let t_call = ms p_call ~sizes () in
  Alcotest.(check bool)
    (Printf.sprintf "BLAS call %.4f faster than loop %.4f" t_call t_loop)
    true (t_call < t_loop)

let test_flop_accounting () =
  let p =
    lower
      {|void f(int n, double A[n]) {
          for (int i = 0; i < n; i++)
            A[i] = A[i] * 2.0 + 1.0;
        }|}
  in
  let r = Cost.evaluate config p ~sizes:[ ("n", 100) ] () in
  Alcotest.(check int) "2 flops x 100" 200 (int_of_float r.Cost.total_flops)

let test_peak_flops () =
  Alcotest.(check bool) "peak is positive" true (Config.peak_mflops config > 0.0)

let test_spill_model () =
  (* a huge unrolled body must generate spill traffic; the same body
     without unrolling must not *)
  let p =
    lower
      {|void f(int n, double A[n], double B[n], double C[n], double D[n]) {
          for (int i = 0; i < n; i++) {
            double t0 = A[i] * B[i] + C[i] * D[i];
            double t1 = A[i] + B[i] + C[i] + D[i];
            double t2 = t0 * t1 + A[i];
            double t3 = t0 - t1 * B[i];
            A[i] = t2 * t3;
            B[i] = t2 + t3;
          }
        }|}
  in
  let sizes = [ ("n", 256) ] in
  let with_unroll factor =
    match p.Ir.body with
    | [ Ir.Nloop l ] ->
        { p with Ir.body = [ Ir.Nloop { l with Ir.attrs = { l.Ir.attrs with Ir.unroll = factor } } ] }
    | _ -> Alcotest.fail "one nest"
  in
  let loads q = (Cost.evaluate config q ~sizes ()).Cost.l1_loads in
  Alcotest.(check bool) "unroll 8 spills" true
    (loads (with_unroll 8) > loads p)

let test_vector_ports_cheaper () =
  (* a vectorized cache-resident loop uses fewer L1 port slots, so an
     L1-bound kernel speeds up when vectorized (the repeat loop keeps the
     data resident so DRAM is not the binding constraint) *)
  let p =
    lower
      {|void f(int n, int reps, double A[n], double B[n], double C[n], double D[n]) {
          for (int r = 0; r < reps; r++)
            for (int i = 0; i < n; i++)
              A[i] = B[i] + C[i] + D[i];
        }|}
  in
  let sizes = [ ("n", 128); ("reps", 50) ] in
  let vec =
    match p.Ir.body with
    | [ Ir.Nloop l ] -> (
        match Transforms.vectorize ~outer:[] l with
        | Ok l' -> { p with Ir.body = [ Ir.Nloop l' ] }
        | Error e -> Alcotest.fail e)
    | _ -> Alcotest.fail "one nest"
  in
  let t q = Cost.milliseconds (Cost.evaluate config q ~sizes ()) in
  Alcotest.(check bool) "vectorized streaming faster" true (t vec < t p)

let suite =
  [
    ("register spill model", `Quick, test_spill_model);
    ("vector loads use fewer ports", `Quick, test_vector_ports_cheaper);
    ("cache sequential walk", `Quick, test_cache_basic);
    ("cache direct-mapped conflicts", `Quick, test_cache_direct_mapped_conflict);
    ("cache single-set LRU", `Quick, test_cache_single_set_lru);
    ("cache writeback accounting", `Quick, test_cache_writeback_accounting);
    ("cache non-pow2 geometry rounds", `Quick, test_cache_nonpow2_geometry);
    ("config validation", `Quick, test_config_validate);
    ("cache snapshot/restore", `Quick, test_cache_snapshot_restore);
    ("cache probe + hit-run", `Quick, test_cache_probe_hit_run);
    ("cache flush keeps stats", `Quick, test_cache_flush_keeps_stats);
    ("line-granular stream agreement", `Quick, test_line_granular_agrees_on_streams);
    ("cache temporal reuse", `Quick, test_cache_reuse_hit);
    ("cache capacity eviction", `Quick, test_cache_capacity_eviction);
    ("cache dirty writeback", `Quick, test_cache_dirty_writeback);
    ("cache L2 behind L1", `Quick, test_cache_l2_catches_l1_misses);
    ("strided copy slower", `Quick, test_strided_slower);
    ("gemm loop order matters", `Quick, test_gemm_order_matters);
    ("vectorization helps", `Quick, test_vectorization_helps);
    ("parallel speedup", `Quick, test_parallel_speedup_and_saturation);
    ("atomic reductions expensive", `Quick, test_atomic_reduction_expensive);
    ("outer-loop sampling consistent", `Quick, test_sampling_consistent);
    ("BLAS libcall near peak", `Quick, test_libcall_near_peak);
    ("flop accounting", `Quick, test_flop_accounting);
    ("peak flops", `Quick, test_peak_flops);
  ]
