(** Differential tests of the compiled execution engine: on every
    benchmark in the repo (PolyBench A/B variants and extras, NPBench
    lowerings, CLOUDSC) and on random programs, [Interp.run_compiled]
    must produce a final state {e bitwise identical} to the tree-walking
    oracle [Interp.run] — every array element (locals included) and every
    scalar, compared bit for bit. Error paths must match too: the same
    [Runtime_error] message for out-of-bounds subscripts, unbound
    scalars, unknown intrinsics and unknown arrays. *)

module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Interp = Daisy_interp.Interp
module Pb = Daisy_benchmarks.Polybench
module Np = Daisy_benchmarks.Npbench
module Variants = Daisy_benchmarks.Variants
module Cloudsc = Daisy_benchmarks.Cloudsc
module Alower = Daisy_arraylang.Lower

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"

(* ------------------------------------------------------------------ *)
(* Bitwise state comparison                                             *)

let bits = Int64.bits_of_float

let check_bitwise name (p : Ir.program) ~sizes ?(scalars = []) () =
  let s1 = Interp.run_fresh p ~sizes ~scalars () in
  let s2 = Interp.run_compiled_fresh p ~sizes ~scalars () in
  Alcotest.(check int)
    (name ^ ": same array count")
    (Hashtbl.length s1.Interp.arrays)
    (Hashtbl.length s2.Interp.arrays);
  Hashtbl.iter
    (fun aname (t1 : Interp.tensor) ->
      match Hashtbl.find_opt s2.Interp.arrays aname with
      | None -> Alcotest.failf "%s: array %s missing from compiled state" name aname
      | Some t2 ->
          Alcotest.(check (array int))
            (Printf.sprintf "%s: %s dims" name aname)
            (Array.to_list t1.Interp.dims |> Array.of_list)
            (Array.to_list t2.Interp.dims |> Array.of_list);
          Array.iteri
            (fun i x ->
              if bits x <> bits t2.Interp.data.(i) then
                Alcotest.failf "%s: %s[%d] differs: %h (tree) vs %h (compiled)"
                  name aname i x t2.Interp.data.(i))
            t1.Interp.data)
    s1.Interp.arrays;
  let module SMap = Daisy_support.Util.SMap in
  if not (SMap.equal (fun a b -> bits a = bits b) s1.Interp.scalars s2.Interp.scalars)
  then Alcotest.failf "%s: scalar environments differ" name

let check_same_error name (p : Ir.program) ~sizes () =
  let outcome run =
    match run () with
    | (_ : Interp.state) -> Error "completed without error"
    | exception Interp.Runtime_error m -> Ok m
  in
  let r1 = outcome (fun () -> Interp.run_fresh p ~sizes ()) in
  let r2 = outcome (fun () -> Interp.run_compiled_fresh p ~sizes ()) in
  match (r1, r2) with
  | Ok m1, Ok m2 ->
      Alcotest.(check string) (name ^ ": identical error message") m1 m2
  | Error w, _ -> Alcotest.failf "%s: tree oracle %s" name w
  | _, Error w -> Alcotest.failf "%s: compiled engine %s" name w

(* ------------------------------------------------------------------ *)
(* Benchmark sweeps                                                     *)

let test_polybench_a () =
  List.iter
    (fun (b : Pb.benchmark) ->
      check_bitwise ("A:" ^ b.Pb.name) (Pb.program b) ~sizes:b.Pb.test_sizes ())
    (Pb.all @ Pb.extras)

let test_polybench_b () =
  List.iter
    (fun (b : Pb.benchmark) ->
      let v = Variants.generate ~seed:("bvariant-" ^ b.Pb.name) (Pb.program b) in
      check_bitwise ("B:" ^ b.Pb.name) v ~sizes:b.Pb.test_sizes ())
    Pb.all

let test_polybench_libcalls () =
  (* idiom-replaced programs exercise the compiled Ncall path *)
  let replaced = ref 0 in
  List.iter
    (fun (b : Pb.benchmark) ->
      let p, n = Daisy_blas.Patterns.replace_all (Pb.program b) in
      replaced := !replaced + n;
      if n > 0 then
        check_bitwise ("libcall:" ^ b.Pb.name) p ~sizes:b.Pb.test_sizes ())
    Pb.all;
  Alcotest.(check bool)
    (Printf.sprintf "%d library calls exercised" !replaced)
    true (!replaced > 0)

let test_npbench () =
  List.iter
    (fun (b : Np.benchmark) ->
      List.iter
        (fun (pname, policy) ->
          let p = Alower.lower policy b.Np.program in
          check_bitwise
            (Printf.sprintf "np:%s:%s" b.Np.name pname)
            p ~sizes:b.Np.test_sizes ())
        [ ("frontend", Alower.frontend_policy); ("numpy", Alower.numpy_policy) ])
    Np.all

let test_cloudsc () =
  let orig, sizes = Cloudsc.erosion_original ~iters:3 in
  check_bitwise "cloudsc:erosion-original" orig ~sizes ();
  let opt, sizes = Cloudsc.erosion_optimized ~iters:3 in
  check_bitwise "cloudsc:erosion-optimized" opt ~sizes ();
  let small_sizes = [ ("nblocks", 2); ("klev", 6); ("nproma", 8) ] in
  List.iter
    (fun v ->
      let p, _ = Cloudsc.full_model v ~blocks:2 in
      check_bitwise
        ("cloudsc:" ^ Cloudsc.string_of_version v)
        p ~sizes:small_sizes ())
    Cloudsc.all_versions

(* ------------------------------------------------------------------ *)
(* Non-affine subscripts: the compiled-expression fallback path          *)

let test_non_affine_subscripts () =
  (* A[(i*i) mod n] += B[max(i-2, 0)] — products, mod, max: everything
     Affine.of_expr rejects *)
  let n = Expr.var "n" and i = Expr.var "i" in
  let sq_mod = Expr.md (Expr.mul i i) n in
  let clamped = Expr.max_ (Expr.sub i (Expr.const 2)) Expr.zero in
  let dest = { Ir.array = "A"; indices = [ sq_mod ] } in
  let p =
    {
      Ir.pname = "nonaffine";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "A"; elem = Ir.Fdouble; dims = [ n ]; storage = Ir.Sparam };
          { Ir.name = "B"; elem = Ir.Fdouble; dims = [ n ]; storage = Ir.Sparam } ];
      local_scalars = [];
      body =
        [ Ir.Nloop
            (Ir.mk_loop ~iter:"i" ~lo:Expr.zero
               ~hi:(Expr.sub n Expr.one)
               [ Ir.Ncomp
                   (Ir.mk_comp (Ir.Darray dest)
                      (Ir.Vbin
                         (Ir.Vadd, Ir.Vread dest,
                          Ir.Vread { Ir.array = "B"; indices = [ clamped ] })))
               ]) ];
    }
  in
  check_bitwise "non-affine subscripts" p ~sizes:[ ("n", 17) ] ()

let test_min_max_bounds_and_guards () =
  (* min/max loop bounds (tiling-style), guards, Vselect, Vint, scalar
     destinations and intrinsics in one program *)
  let n = Expr.var "n" and m = Expr.var "m" in
  let i = Expr.var "i" and j = Expr.var "j" in
  let acc_dest = Ir.Dscalar "acc" in
  let p =
    {
      Ir.pname = "kitchen";
      size_params = [ "n"; "m" ];
      scalar_params = [ "alpha" ];
      arrays =
        [ { Ir.name = "A"; elem = Ir.Fdouble; dims = [ n; m ];
            storage = Ir.Sparam } ];
      local_scalars = [ "acc" ];
      body =
        [ Ir.Ncomp (Ir.mk_comp acc_dest (Ir.Vfloat 0.0));
          Ir.Nloop
            (Ir.mk_loop ~iter:"i" ~lo:Expr.zero
               ~hi:(Expr.sub (Expr.min_ n m) Expr.one)
               [ Ir.Nloop
                   (Ir.mk_loop ~iter:"j" ~lo:Expr.zero
                      ~hi:(Expr.sub m Expr.one)
                      [ Ir.Ncomp
                          (Ir.mk_comp
                             ~guard:
                               (Ir.Pcmp
                                  (Ir.Cle, Ir.Vint j, Ir.Vint i))
                             acc_dest
                             (Ir.Vbin
                                (Ir.Vadd, Ir.Vscalar "acc",
                                 Ir.Vselect
                                   ( Ir.Pcmp
                                       (Ir.Cgt,
                                        Ir.Vread
                                          { Ir.array = "A"; indices = [ i; j ] },
                                        Ir.Vfloat 0.5),
                                     Ir.Vcall
                                       ("pow",
                                        [ Ir.Vread
                                            { Ir.array = "A";
                                              indices = [ i; j ] };
                                          Ir.Vfloat 2.0 ]),
                                     Ir.Vneg (Ir.Vscalar "alpha") ))))
                      ]);
                 Ir.Ncomp
                   (Ir.mk_comp
                      (Ir.Darray { Ir.array = "A"; indices = [ i; Expr.zero ] })
                      (Ir.Vcall ("tanh", [ Ir.Vscalar "acc" ])))
               ]) ];
    }
  in
  check_bitwise "min/max bounds + guards + scalars" p
    ~sizes:[ ("n", 7); ("m", 9) ]
    ~scalars:[ ("alpha", 0.25) ]
    ()

let test_negative_step () =
  (* downward loop: prefix sums accumulated in reverse *)
  let n = Expr.var "n" and i = Expr.var "i" in
  let p =
    {
      Ir.pname = "reverse";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "x"; elem = Ir.Fdouble; dims = [ n ]; storage = Ir.Sparam } ];
      local_scalars = [];
      body =
        [ Ir.Nloop
            (Ir.mk_loop ~iter:"i"
               ~lo:(Expr.sub n (Expr.const 2))
               ~hi:Expr.zero ~step:(-1)
               [ Ir.Ncomp
                   (Ir.mk_comp
                      (Ir.Darray { Ir.array = "x"; indices = [ i ] })
                      (Ir.Vbin
                         (Ir.Vadd,
                          Ir.Vread { Ir.array = "x"; indices = [ i ] },
                          Ir.Vread
                            { Ir.array = "x";
                              indices = [ Expr.add i Expr.one ] })))
               ]) ];
    }
  in
  check_bitwise "negative-step loop" p ~sizes:[ ("n", 12) ] ()

(* ------------------------------------------------------------------ *)
(* Error-path parity                                                    *)

let test_error_out_of_bounds () =
  let p =
    lower
      {|void f(int n, double A[n]) {
          for (int i = 0; i < n; i++)
            A[i + 1] = 1.0;
        }|}
  in
  check_same_error "oob write" p ~sizes:[ ("n", 4) ] ();
  let q =
    lower
      {|void f(int n, double A[n], double B[n][n]) {
          for (int i = 0; i < n; i++)
            A[i] = B[i + 2][i];
        }|}
  in
  check_same_error "oob read (2d)" q ~sizes:[ ("n", 4) ] ()

let test_error_unbound_scalar () =
  let p =
    {
      Ir.pname = "unbound";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "A"; elem = Ir.Fdouble; dims = [ Expr.var "n" ];
            storage = Ir.Sparam } ];
      local_scalars = [ "alpha" ];
      body =
        [ Ir.Ncomp
            (Ir.mk_comp
               (Ir.Darray { Ir.array = "A"; indices = [ Expr.const 0 ] })
               (Ir.Vscalar "alpha")) ];
    }
  in
  check_same_error "unbound scalar" p ~sizes:[ ("n", 4) ] ()

let test_error_unknown_intrinsic () =
  let p =
    {
      Ir.pname = "intrinsic";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "A"; elem = Ir.Fdouble; dims = [ Expr.var "n" ];
            storage = Ir.Sparam } ];
      local_scalars = [];
      body =
        [ Ir.Ncomp
            (Ir.mk_comp
               (Ir.Darray { Ir.array = "A"; indices = [ Expr.const 0 ] })
               (Ir.Vcall ("bogus", [ Ir.Vfloat 1.0; Ir.Vfloat 2.0 ]))) ];
    }
  in
  check_same_error "unknown intrinsic" p ~sizes:[ ("n", 4) ] ();
  (* a known intrinsic at the wrong arity is the same error path *)
  let q =
    {
      p with
      Ir.body =
        [ Ir.Ncomp
            (Ir.mk_comp
               (Ir.Darray { Ir.array = "A"; indices = [ Expr.const 0 ] })
               (Ir.Vcall ("sqrt", [ Ir.Vfloat 1.0; Ir.Vfloat 2.0 ]))) ];
    }
  in
  check_same_error "wrong-arity intrinsic" q ~sizes:[ ("n", 4) ] ()

let test_error_unknown_array () =
  let p =
    {
      Ir.pname = "unknown-array";
      size_params = [ "n" ];
      scalar_params = [];
      arrays =
        [ { Ir.name = "A"; elem = Ir.Fdouble; dims = [ Expr.var "n" ];
            storage = Ir.Sparam } ];
      local_scalars = [];
      body =
        [ Ir.Ncomp
            (Ir.mk_comp
               (Ir.Darray { Ir.array = "A"; indices = [ Expr.const 0 ] })
               (Ir.Vread { Ir.array = "Ghost"; indices = [ Expr.const 0 ] })) ];
    }
  in
  check_same_error "unknown array read" p ~sizes:[ ("n", 4) ] ();
  let q =
    {
      p with
      Ir.body =
        [ Ir.Ncomp
            (Ir.mk_comp
               (Ir.Darray { Ir.array = "Ghost"; indices = [ Expr.const 0 ] })
               (Ir.Vfloat 1.0)) ];
    }
  in
  check_same_error "unknown array write" q ~sizes:[ ("n", 4) ] ()

(* ------------------------------------------------------------------ *)
(* Random programs                                                      *)

let prop_compiled_bitwise =
  QCheck.Test.make ~count:120
    ~name:"compiled engine bitwise-identical to oracle"
    Test_property.arbitrary_program (fun p ->
      let sizes = [ ("n", 8) ] in
      let s1 = Interp.run_fresh p ~sizes () in
      let s2 = Interp.run_compiled_fresh p ~sizes () in
      let ok = ref true in
      Hashtbl.iter
        (fun aname (t1 : Interp.tensor) ->
          match Hashtbl.find_opt s2.Interp.arrays aname with
          | None -> ok := false
          | Some t2 ->
              Array.iteri
                (fun i x -> if bits x <> bits t2.Interp.data.(i) then ok := false)
                t1.Interp.data)
        s1.Interp.arrays;
      !ok)

let suite =
  [
    ("polybench A variants bitwise", `Slow, test_polybench_a);
    ("polybench B variants bitwise", `Slow, test_polybench_b);
    ("polybench library calls bitwise", `Quick, test_polybench_libcalls);
    ("npbench lowerings bitwise", `Slow, test_npbench);
    ("cloudsc bitwise", `Slow, test_cloudsc);
    ("non-affine subscript fallback", `Quick, test_non_affine_subscripts);
    ("min/max bounds, guards, scalars", `Quick, test_min_max_bounds_and_guards);
    ("negative-step loops", `Quick, test_negative_step);
    ("error parity: out of bounds", `Quick, test_error_out_of_bounds);
    ("error parity: unbound scalar", `Quick, test_error_unbound_scalar);
    ("error parity: unknown intrinsic", `Quick, test_error_unknown_intrinsic);
    ("error parity: unknown array", `Quick, test_error_unknown_array);
    QCheck_alcotest.to_alcotest prop_compiled_bitwise;
  ]
