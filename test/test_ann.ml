(** Differential and property tests for the ANN index (docs/performance.md,
    "ANN transfer tuning"). The contract under test: the k-d tree and the
    LSH-bucket paths return {e exactly} the same top-k — distances and
    order, ties included — as the [Embedding.nearest_by] linear scan, on
    every database; persistence round-trips bit-identically; corruption
    degrades to the scan with one warning, never a crash. *)

module Ir = Daisy_loopir.Ir
module Ann = Daisy_embedding.Ann
module Embedding = Daisy_embedding.Embedding
module Fault = Daisy_support.Fault
module Pool = Daisy_support.Pool
module Rng = Daisy_support.Rng
module Util = Daisy_support.Util
module S = Daisy_scheduler

let lower = Daisy_lang.Lower.program_of_string ~source:"test.c"

let gemm_src =
  {|void f(int n, double C[n][n], double A[n][n], double B[n][n]) {
      for (int i = 0; i < n; i++)
        for (int k = 0; k < n; k++)
          for (int j = 0; j < n; j++)
            C[i][j] += A[i][k] * B[k][j];
    }|}

let with_faults f =
  Fun.protect ~finally:Fault.clear (fun () -> Fault.clear (); f ())

let contains_sub ~sub s =
  let ls = String.length s and lsub = String.length sub in
  let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
  go 0

(* Exact comparison: same distances (float equality), same entry order. *)
let result = Alcotest.(list (pair (float 0.0) int))

(** The ground truth: the linear scan over [(index, vector)] pairs in
    index order — arrival order and entry index coincide, as they do for
    [Database.entries]. *)
let scan_topk (vecs : float array array) ~k (q : float array) :
    (float * int) list =
  let entries = Array.to_list (Array.mapi (fun i v -> (i, v)) vecs) in
  Embedding.nearest_by ~embed:snd k entries q
  |> List.map (fun (d, (i, _)) -> (d, i))

(** Random vectors on a small integer grid — duplicates and tied
    distances are common by construction, which is the point. *)
let random_vecs rng ~n ~dim : float array array =
  let grid = 1 + Rng.int rng 5 in
  let scale = if Rng.bool rng then 1.0 else 0.5 in
  Array.init n (fun _ ->
      Array.init dim (fun _ -> scale *. float_of_int (Rng.int rng grid)))

(* ------------------------------------------------------------------ *)
(* nearest_by tie-breaking: stable under permutation of the input *)

let test_nearest_by_stability () =
  (* four entries equidistant from the origin (distance 1), ranked by
     their coordinates lexicographically; a fifth bit-equal pair ranked
     by arrival order *)
  let q = [| 0.0; 0.0 |] in
  let entries =
    [
      ("c", [| 1.0; 0.0 |]);
      ("a", [| 0.0; 1.0 |]);
      ("d", [| 1.0; 0.0 |]);  (* bit-equal to "c", arrived later *)
      ("b", [| 0.6; 0.8 |]);
      ("far", [| 3.0; 4.0 |]);
    ]
  in
  let expect = [ "a"; "b"; "c"; "d"; "far" ] in
  let names l = List.map (fun (_, (n, _)) -> n) l in
  Alcotest.(check (list string))
    "lexicographic tie order" expect
    (names (Embedding.nearest_by ~embed:snd 5 entries q));
  (* every permutation that keeps "c" before "d" returns the same list;
     swapping them only swaps the bit-equal pair *)
  List.iteri
    (fun i perm ->
      let got = names (Embedding.nearest_by ~embed:snd 5 perm q) in
      let expect =
        (* arrival order decides only the bit-equal pair c/d *)
        let d_before_c =
          let rec go = function
            | ("d", _) :: _ -> true
            | ("c", _) :: _ -> false
            | _ :: tl -> go tl
            | [] -> false
          in
          go perm
        in
        if d_before_c then [ "a"; "b"; "d"; "c"; "far" ] else expect
      in
      Alcotest.(check (list string))
        (Printf.sprintf "permutation %d" i)
        expect got)
    (Util.permutations entries)

(* ------------------------------------------------------------------ *)
(* The differential property: both index structures == the scan, on ~200
   random databases varying n, dim, duplicates and tied distances *)

let check_db ~name (vecs : float array array) ~dim (queries : float array list)
    (ks : int list) =
  let n = Array.length vecs in
  let kd = Ann.build ~algo:Ann.Kd ~fingerprint:"fp" ~dim vecs in
  let lsh = Ann.build ~algo:Ann.Lsh ~fingerprint:"fp" ~dim vecs in
  List.iteri
    (fun qi q ->
      List.iter
        (fun k ->
          let expect = scan_topk vecs ~k q in
          Alcotest.check result
            (Printf.sprintf "%s n=%d dim=%d q=%d k=%d kd" name n dim qi k)
            expect
            (Ann.query kd ~k q);
          Alcotest.check result
            (Printf.sprintf "%s n=%d dim=%d q=%d k=%d lsh" name n dim qi k)
            expect
            (Ann.query lsh ~k q))
        ks)
    queries

let test_differential () =
  for case = 0 to 199 do
    let rng = Rng.of_string (Printf.sprintf "ann-diff-%d" case) in
    let dim = Rng.choose rng [ 2; 3; 16; 20 ] in
    let n = Rng.int rng 300 in
    let vecs = random_vecs rng ~n ~dim in
    let queries =
      List.init 3 (fun _ ->
          Array.init dim (fun _ -> float_of_int (Rng.int rng 6) *. 0.5))
    in
    let ks = List.sort_uniq compare [ 1; 3; max 1 n; n + 3 ] in
    check_db ~name:(Printf.sprintf "case %d" case) vecs ~dim queries ks
  done

let test_differential_parallel () =
  (* one shared index queried from 4 domains: results must equal the
     sequential scan, query by query — including through the paged
     (file-backed, lazily loaded) form, whose page cache the domains
     share *)
  let rng = Rng.of_string "ann-par" in
  let dim = Embedding.dim in
  let n = 500 in
  let vecs = random_vecs rng ~n ~dim in
  let queries =
    List.init 40 (fun _ ->
        Array.init dim (fun _ -> float_of_int (Rng.int rng 4)))
  in
  let kd = Ann.build ~algo:Ann.Kd ~fingerprint:"fp" ~dim vecs in
  let path = Filename.temp_file "daisyann" ".ann" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Ann.save kd path;
      let paged =
        match Ann.load ~path ~fingerprint:"fp" with
        | Ok t -> t
        | Error m -> Alcotest.fail m
      in
      List.iter
        (fun jobs ->
          Pool.with_pool ~jobs (fun pool ->
              let got =
                Pool.map ?pool
                  (fun q -> (Ann.query kd ~k:5 q, Ann.query paged ~k:5 q))
                  queries
              in
              List.iter2
                (fun q (mem, pg) ->
                  let expect = scan_topk vecs ~k:5 q in
                  Alcotest.check result
                    (Printf.sprintf "jobs=%d mem" jobs)
                    expect mem;
                  Alcotest.check result
                    (Printf.sprintf "jobs=%d paged" jobs)
                    expect pg)
                queries got))
        [ 1; 4 ])

(* ------------------------------------------------------------------ *)
(* Persistence *)

let test_save_load_roundtrip () =
  let rng = Rng.of_string "ann-roundtrip" in
  let dim = Embedding.dim in
  let vecs = random_vecs rng ~n:300 ~dim in
  let queries =
    List.init 10 (fun _ ->
        Array.init dim (fun _ -> float_of_int (Rng.int rng 4)))
  in
  List.iter
    (fun algo ->
      let t = Ann.build ~algo ~fingerprint:"fp-1" ~dim vecs in
      let path = Filename.temp_file "daisyann" ".ann" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Ann.save t path;
          (match Ann.load ~path ~fingerprint:"fp-1" with
          | Error m -> Alcotest.fail m
          | Ok loaded ->
              Alcotest.(check int) "n" (Ann.n t) (Ann.n loaded);
              Alcotest.(check int) "pages" (Ann.pages t) (Ann.pages loaded);
              List.iter
                (fun q ->
                  Alcotest.check result "loaded == built"
                    (Ann.query t ~k:7 q)
                    (Ann.query loaded ~k:7 q))
                queries);
          (* staleness rule: a different database fingerprint refuses *)
          (match Ann.load ~path ~fingerprint:"fp-2" with
          | Ok _ -> Alcotest.fail "stale index accepted"
          | Error m ->
              Alcotest.(check bool)
                (Printf.sprintf "stale reason mentions staleness: %s" m)
                true
                (contains_sub ~sub:"stale" m))))
    [ Ann.Kd; Ann.Lsh ];
  match Ann.load ~path:"/nonexistent/daisy.ann" ~fingerprint:"x" with
  | Ok _ -> Alcotest.fail "loaded a missing file"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Database edge cases, through both the scan and the index path *)

let mk_entry rng i : S.Database.entry =
  {
    S.Database.source = Printf.sprintf "synth:%d" i;
    embedding =
      Array.init Embedding.dim (fun _ -> float_of_int (Rng.int rng 3));
    recipe = (if Rng.bool rng then [] else [ Daisy_transforms.Recipe.Vectorize ]);
    canon_hash = i;
    cost_ms = nan;
  }

let check_query_paths ~name db ~k q expect_n =
  (* scan path *)
  S.Database.detach_index db;
  let scan = S.Database.query_embedding db ~k q in
  Alcotest.(check int) (name ^ ": scan count") expect_n (List.length scan);
  (* index paths: identical, entry for entry *)
  List.iter
    (fun algo ->
      S.Database.build_index ~algo db;
      let indexed = S.Database.query_embedding db ~k q in
      Alcotest.(check int)
        (name ^ ": index count")
        (List.length scan) (List.length indexed);
      List.iter2
        (fun (d1, (e1 : S.Database.entry)) (d2, (e2 : S.Database.entry)) ->
          Alcotest.(check (float 0.0)) (name ^ ": distance") d1 d2;
          Alcotest.(check string) (name ^ ": entry") e1.source e2.source)
        scan indexed)
    [ Ann.Kd; Ann.Lsh ];
  S.Database.detach_index db

let test_database_edges () =
  let rng = Rng.of_string "ann-db-edges" in
  let zeros = Array.make Embedding.dim 0.0 in
  let q = Array.init Embedding.dim (fun _ -> float_of_int (Rng.int rng 3)) in
  (* empty database *)
  let empty = S.Database.of_entries [] in
  check_query_paths ~name:"empty" empty ~k:3 q 0;
  (* single entry *)
  let single = S.Database.of_entries [ mk_entry rng 0 ] in
  check_query_paths ~name:"single k=1" single ~k:1 q 1;
  check_query_paths ~name:"single k>n" single ~k:5 q 1;
  (* k = n and k > n *)
  let db = S.Database.of_entries (List.init 150 (mk_entry rng)) in
  check_query_paths ~name:"k=n" db ~k:150 q 150;
  check_query_paths ~name:"k>n" db ~k:151 q 150;
  check_query_paths ~name:"k=1" db ~k:1 q 1;
  (* all-zeros query vector *)
  check_query_paths ~name:"zero query" db ~k:10 zeros 10;
  (* k <= 0 *)
  S.Database.build_index db;
  Alcotest.(check int)
    "k=0" 0
    (List.length (S.Database.query_embedding db ~k:0 q))

let test_database_query_nest () =
  (* the public query path with a real nest, scan vs index *)
  let p = lower gemm_src in
  let nest =
    match p.Ir.body with [ Ir.Nloop l ] -> l | _ -> Alcotest.fail "nest"
  in
  let rng = Rng.of_string "ann-db-nest" in
  let db = S.Database.of_entries (List.init 80 (mk_entry rng)) in
  S.Database.add db ~source:"gemm" ~nest ~recipe:[];
  S.Database.detach_index db;
  let scan = S.Database.query db ~k:5 nest in
  S.Database.build_index db;
  let indexed = S.Database.query db ~k:5 nest in
  List.iter2
    (fun (d1, (e1 : S.Database.entry)) (d2, (e2 : S.Database.entry)) ->
      Alcotest.(check (float 0.0)) "distance" d1 d2;
      Alcotest.(check string) "entry" e1.source e2.source)
    scan indexed;
  (match scan with
  | (d, e) :: _ ->
      Alcotest.(check (float 0.0)) "self distance" 0.0 d;
      Alcotest.(check string) "self match" "gemm" e.S.Database.source
  | [] -> Alcotest.fail "no results");
  (* mutation detaches the index *)
  Alcotest.(check bool) "indexed" true (S.Database.has_index db);
  S.Database.add db ~source:"gemm2" ~nest ~recipe:[];
  Alcotest.(check bool) "detached on add" false (S.Database.has_index db)

(* ------------------------------------------------------------------ *)
(* Robustness: mid-build crashes and corrupt index files *)

let test_build_crash_preserves_old_index () =
  with_faults (fun () ->
      let rng = Rng.of_string "ann-crash" in
      let db = S.Database.of_entries (List.init 120 (mk_entry rng)) in
      let path = Filename.temp_file "daisyann" ".ann" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          ignore (S.Database.rebuild_index db path);
          let old = match Ann.load ~path ~fingerprint:(S.Database.fingerprint db) with
            | Ok t -> t
            | Error m -> Alcotest.fail m
          in
          (* grow the database, then crash the rebuild mid-write *)
          let p = lower gemm_src in
          let nest =
            match p.Ir.body with
            | [ Ir.Nloop l ] -> l
            | _ -> Alcotest.fail "nest"
          in
          S.Database.add db ~source:"late" ~nest ~recipe:[];
          Fault.arm_nth "ann_build" 1;
          (try ignore (S.Database.rebuild_index db path)
           with Fault.Injected "ann_build" -> ());
          Alcotest.(check int) "fault fired" 1 (Fault.fired "ann_build");
          (* the old index file is untouched and still loads *)
          match Ann.load ~path ~fingerprint:(Ann.fingerprint old) with
          | Ok reloaded ->
              Alcotest.(check int) "old index intact" (Ann.n old)
                (Ann.n reloaded)
          | Error m -> Alcotest.fail ("old index lost: " ^ m)))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc s)

let test_corrupt_index_falls_back () =
  let rng = Rng.of_string "ann-corrupt" in
  let db = S.Database.of_entries (List.init 200 (mk_entry rng)) in
  let q = Array.init Embedding.dim (fun _ -> float_of_int (Rng.int rng 3)) in
  let path = Filename.temp_file "daisyann" ".ann" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore (S.Database.rebuild_index db path);
      S.Database.detach_index db;
      (* flip one byte in every page entry line, keeping lengths intact:
         every page now fails its checksum when (lazily) fetched *)
      let contents = read_file path in
      let corrupted =
        String.concat "\n"
          (List.map
             (fun line ->
               if String.length line > 2 && String.sub line 0 2 = "e " then begin
                 let b = Bytes.of_string line in
                 let i = String.length line - 1 in
                 Bytes.set b i (if Bytes.get b i = '0' then '1' else '0');
                 Bytes.to_string b
               end
               else line)
             (String.split_on_char '\n' contents))
      in
      write_file path corrupted;
      (* header, tree and table are intact, so the load succeeds… *)
      (match S.Database.load_index db path with
      | Ok _ -> ()
      | Error m -> Alcotest.fail ("load refused: " ^ m));
      (* …and the first query hits the corrupt page, falls back to the
         scan (same result), detaches the index, and counts one fallback *)
      S.Database.reset_index_fallbacks ();
      let indexed = S.Database.query_embedding db ~k:5 q in
      Alcotest.(check int) "one fallback" 1 (S.Database.index_fallbacks ());
      Alcotest.(check bool) "detached" false (S.Database.has_index db);
      let scan = S.Database.query_embedding db ~k:5 q in
      List.iter2
        (fun (d1, (e1 : S.Database.entry)) (d2, (e2 : S.Database.entry)) ->
          Alcotest.(check (float 0.0)) "fallback distance" d1 d2;
          Alcotest.(check string) "fallback entry" e1.source e2.source)
        scan indexed;
      (* further queries stay on the scan with no new fallbacks *)
      ignore (S.Database.query_embedding db ~k:5 q);
      Alcotest.(check int) "no repeat" 1 (S.Database.index_fallbacks ()))

let test_truncated_index_refused () =
  let rng = Rng.of_string "ann-trunc" in
  let db = S.Database.of_entries (List.init 100 (mk_entry rng)) in
  let path = Filename.temp_file "daisyann" ".ann" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore (S.Database.rebuild_index db path);
      S.Database.detach_index db;
      let contents = read_file path in
      write_file path (String.sub contents 0 (String.length contents / 2));
      match S.Database.load_index db path with
      | Ok _ -> Alcotest.fail "truncated index accepted"
      | Error _ ->
          (* queries keep working on the scan *)
          let q = Array.make Embedding.dim 0.0 in
          Alcotest.(check int)
            "scan still works" 5
            (List.length (S.Database.query_embedding db ~k:5 q)))

let test_ann_query_fault_falls_back () =
  with_faults (fun () ->
      let rng = Rng.of_string "ann-qfault" in
      let db = S.Database.of_entries (List.init 90 (mk_entry rng)) in
      let q = Array.init Embedding.dim (fun _ -> float_of_int (Rng.int rng 3)) in
      S.Database.build_index db;
      S.Database.reset_index_fallbacks ();
      Fault.arm_nth "ann_query" 1;
      let indexed = S.Database.query_embedding db ~k:5 q in
      Alcotest.(check int) "one fallback" 1 (S.Database.index_fallbacks ());
      let scan = S.Database.query_embedding db ~k:5 q in
      List.iter2
        (fun (d1, (e1 : S.Database.entry)) (d2, (e2 : S.Database.entry)) ->
          Alcotest.(check (float 0.0)) "distance" d1 d2;
          Alcotest.(check string) "entry" e1.source e2.source)
        scan indexed)

let suite =
  [
    Alcotest.test_case "nearest_by: permutation-stable ties" `Quick
      test_nearest_by_stability;
    Alcotest.test_case "differential: kd & lsh == scan (200 dbs)" `Slow
      test_differential;
    Alcotest.test_case "differential: parallel, mem & paged" `Quick
      test_differential_parallel;
    Alcotest.test_case "save/load round-trip + staleness" `Quick
      test_save_load_roundtrip;
    Alcotest.test_case "database edge cases, both paths" `Quick
      test_database_edges;
    Alcotest.test_case "database query on a real nest" `Quick
      test_database_query_nest;
    Alcotest.test_case "ann_build crash keeps old index" `Quick
      test_build_crash_preserves_old_index;
    Alcotest.test_case "corrupt pages fall back to scan" `Quick
      test_corrupt_index_falls_back;
    Alcotest.test_case "truncated index refused, scan works" `Quick
      test_truncated_index_refused;
    Alcotest.test_case "ann_query fault falls back" `Quick
      test_ann_query_fault_falls_back;
  ]
