(** Differential determinism tests: the parallel scheduling engine must be
    bit-identical to the sequential path — same recipes, same fitness
    values, same database contents — at any job count (the contract in
    docs/parallelism.md). *)

module Ir = Daisy_loopir.Ir
module S = Daisy_scheduler
module Pb = Daisy_benchmarks.Polybench
module Pool = Daisy_support.Pool
module Recipe = Daisy_transforms.Recipe
module Rng = Daisy_support.Rng

(* small shared sizes covering every size parameter of the four kernels.
   jacobi-2d is included deliberately: its two sweep nests are structurally
   near-identical, which once exposed a fitness-cache key collision that
   only diverged under a pool (first-writer races). *)
let kernels = [ Pb.gemm; Pb.atax; Pb.mvt; Pb.jacobi_2d ]

let sizes =
  [ ("ni", 48); ("nj", 40); ("nk", 44); ("m", 40); ("n", 48);
    ("tsteps", 4) ]

let ctx = S.Common.make_ctx ~threads:8 ~sample_outer:4 ~sizes ()

let recipe = Alcotest.testable Recipe.pp Recipe.equal

(* ------------------------------------------------------------------ *)
(* Evolve.search: sequential vs 4-domain pool *)

let search_result ?pool (b : Pb.benchmark) =
  let p = Pb.program b in
  let units = S.Common.program_units p in
  List.map
    (fun (outer, nest) ->
      (* fresh rng + cache per run so both modes start from the same state *)
      let rng = Rng.of_string ("diff-" ^ b.Pb.name) in
      S.Evolve.search ~population:6 ~iterations:2
        ~cache:(S.Evolve.create_cache ()) ?pool ~outer ctx p nest
        ~seeds:(S.Tiramisu.proposals nest) ~rng)
    units

let test_search_differential () =
  Pool.with_pool ~jobs:4 (fun pool ->
      List.iter
        (fun (b : Pb.benchmark) ->
          let seq = search_result b in
          let par = search_result ?pool b in
          List.iter2
            (fun (r1, f1) (r2, f2) ->
              Alcotest.check recipe (b.Pb.name ^ " recipe") r1 r2;
              Alcotest.(check (float 0.0)) (b.Pb.name ^ " fitness") f1 f2)
            seq par)
        kernels)

(* ------------------------------------------------------------------ *)
(* Seed.seed_database: sequential vs 4-domain pool *)

let seeded_entries ?pool () =
  let db = S.Database.create () in
  S.Seed.seed_database ~epochs:2 ~population:4 ~iterations:2 ?pool ctx ~db
    (List.map (fun (b : Pb.benchmark) -> (b.Pb.name, Pb.program b)) kernels);
  S.Database.entries db

let test_seed_differential () =
  let seq = seeded_entries () in
  let par = Pool.with_pool ~jobs:4 (fun pool -> seeded_entries ?pool ()) in
  Alcotest.(check int) "entry count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : S.Database.entry) (b : S.Database.entry) ->
      Alcotest.(check string) "source" a.S.Database.source b.S.Database.source;
      Alcotest.check recipe
        ("recipe of " ^ a.S.Database.source)
        a.S.Database.recipe b.S.Database.recipe;
      Alcotest.(check int)
        ("canon hash of " ^ a.S.Database.source)
        a.S.Database.canon_hash b.S.Database.canon_hash;
      Alcotest.(check bool)
        ("embedding of " ^ a.S.Database.source)
        true
        (a.S.Database.embedding = b.S.Database.embedding))
    seq par

(* sharded seeding (one shard per benchmark, evolved in parallel, merged in
   benchmark order — the bench harness path) must equal seeding the same
   benchmarks one after the other into a single database *)
let test_shard_merge_differential () =
  let merged =
    Pool.with_pool ~jobs:4 (fun pool ->
        let db = S.Database.create () in
        Pool.map ?pool
          (fun (b : Pb.benchmark) ->
            let shard = S.Database.create () in
            S.Seed.seed_database ~epochs:2 ~population:4 ~iterations:2 ?pool
              ctx ~db:shard
              [ (b.Pb.name, Pb.program b) ];
            shard)
          kernels
        |> List.iter (fun shard -> S.Database.merge ~into:db shard);
        S.Database.entries db)
  in
  let seq =
    let db = S.Database.create () in
    List.iter
      (fun (b : Pb.benchmark) ->
        S.Seed.seed_database ~epochs:2 ~population:4 ~iterations:2 ctx ~db
          [ (b.Pb.name, Pb.program b) ])
      kernels;
    S.Database.entries db
  in
  Alcotest.(check int) "entry count" (List.length seq) (List.length merged);
  List.iter2
    (fun (a : S.Database.entry) (b : S.Database.entry) ->
      Alcotest.(check string) "source" a.S.Database.source b.S.Database.source;
      Alcotest.check recipe
        ("recipe of " ^ a.S.Database.source)
        a.S.Database.recipe b.S.Database.recipe)
    seq merged

let suite =
  [
    ("search: parallel == sequential", `Slow, test_search_differential);
    ("seeding: parallel == sequential", `Slow, test_seed_differential);
    ("sharded seeding == sequential", `Slow, test_shard_merge_differential);
  ]
