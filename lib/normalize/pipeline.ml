(** The a priori normalization pipeline (paper Fig. 5):

    1. iterator normalization (prerequisite),
    2. scalar expansion + maximal loop fission, iterated to a fixed point,
    3. stride minimization per resulting loop nest.

    The output is the canonical form the auto-scheduler's database is keyed
    on: semantically equivalent loop nests with different permutations and
    compositions map to the same (or nearly the same) normalized program. *)

open Daisy_support
module Ir = Daisy_loopir.Ir

type report = {
  scalar_expansions : (string * string) list;
  fission_nests_before : int;
  fission_nests_after : int;
  permuted_nests : int;
}

let pp_report ppf r =
  Fmt.pf ppf
    "normalization: %d scalars expanded, %d -> %d top-level nests, %d nests permuted"
    (List.length r.scalar_expansions)
    r.fission_nests_before r.fission_nests_after r.permuted_nests

let top_level_nests (p : Ir.program) =
  List.length
    (List.filter (function Ir.Nloop _ -> true | _ -> false) p.Ir.body)

type options = {
  fission : bool;
  stride : bool;
  criterion : Stride.criterion;
}

let default_options ?(sizes = []) () =
  let sizes =
    List.fold_left (fun m (k, v) -> Util.SMap.add k v m) Util.SMap.empty sizes
  in
  {
    fission = true;
    stride = true;
    criterion =
      (if Util.SMap.is_empty sizes then Stride.Out_of_order
       else Stride.Sum_of_strides sizes);
  }

(** [check stage p] — when [Ir.validation_enabled], re-validate the
    program after a normalization stage and raise [Diag.Error] naming the
    stage on any structural violation (a transformation-bug net; see
    docs/robustness.md). *)
let check (stage : string) (p : Ir.program) : Ir.program =
  (if !Ir.validation_enabled then
     match Ir.validate p with
     | [] -> ()
     | violations ->
         Diag.errorf "normalization stage %s produced an invalid program:@,%a"
           stage
           (Fmt.list ~sep:Fmt.cut Fmt.string)
           violations);
  p

(** [run ?options p] — normalize [p]; returns the normalized program and a
    report of what was applied. *)
let run ?options (p : Ir.program) : Ir.program * report =
  let options =
    match options with Some o -> o | None -> default_options ()
  in
  let p = check "iter-norm" (Iter_norm.run p) in
  let before = top_level_nests p in
  let p, expansions =
    if options.fission then begin
      (* scalar expansion and fission enable each other; iterate *)
      let rec fixpoint i p expansions =
        if i > 4 then (p, expansions)
        else
          let p', exp' = Scalar_expand.run p in
          let p' = check "scalar-expand" p' in
          let p'' = check "fission" (Fission.run_fixpoint p') in
          if exp' = [] && Ir.equal_structure p.Ir.body p''.Ir.body then
            (p'', expansions)
          else fixpoint (i + 1) p'' (expansions @ exp')
      in
      fixpoint 0 p []
    end
    else (p, [])
  in
  let after = top_level_nests p in
  (* stride minimization can change which loop is outermost, which in turn
     can expose further distribution opportunities — iterate both passes to
     a joint fixed point (the paper's "fixed-point pipeline") *)
  let p, permuted =
    if options.stride then begin
      let rec joint i p permuted =
        let p', n = Stride.run options.criterion p in
        let p' = check "stride" p' in
        let p'' =
          if options.fission then check "fission" (Fission.run_fixpoint p')
          else p'
        in
        if i >= 3 || Ir.equal_structure p.Ir.body p''.Ir.body then
          (p'', permuted + n)
        else joint (i + 1) p'' (permuted + n)
      in
      joint 0 p 0
    end
    else (p, 0)
  in
  ( p,
    {
      scalar_expansions = expansions;
      fission_nests_before = before;
      fission_nests_after = after;
      permuted_nests = permuted;
    } )

(** Convenience: normalize with concrete sizes for the stride criterion. *)
let normalize ?(sizes = []) (p : Ir.program) : Ir.program =
  fst (run ~options:(default_options ~sizes ()) p)
