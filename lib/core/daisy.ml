(** The daisy toolchain — umbrella module.

    Re-exports every library of the reproduction of "A Priori Loop Nest
    Normalization: Automatic Loop Scheduling in Complex Applications"
    (CGO 2025) and provides the one-call {!compile} convenience pipeline.

    Layering (bottom to top):
    {ul
    {- {!Support}, {!Poly}: utilities and the affine/Fourier–Motzkin core.}
    {- {!Lang}: the C-like kernel DSL (parser, sema, direct lowering).}
    {- {!Lir}, {!Lift}: the LLVM-like low-level IR and the §3 lifting pass.}
    {- {!Loopir}: the symbolic loop-nest tree all passes operate on.}
    {- {!Dependence}: direction vectors, distribution graphs, legality.}
    {- {!Normalize}: iterator normalization, scalar expansion, maximal
       fission, stride minimization — the paper's contribution.}
    {- {!Transforms}: interchange/tiling/fusion/marking + recipes.}
    {- {!Machine}: cache-simulator + roofline cost model ("the hardware").}
    {- {!Interp}: reference interpreter for semantics validation.}
    {- {!Blas}, {!Embedding}: idiom detection and performance embeddings.}
    {- {!Scheduler}: the daisy auto-scheduler and all baseline models.}
    {- {!Arraylang}: the NumPy-style frontend for the Python experiments.}
    {- {!Benchmarks}: PolyBench A/B variants, NPBench versions, CLOUDSC.}
    {- {!Serve}: the daisyd scheduling daemon (framed protocol, admission
       control, graceful degradation — docs/serving.md).}} *)

module Support = Daisy_support
module Poly = Daisy_poly
module Lang = Daisy_lang
module Lir = Daisy_lir
module Lift = Daisy_lift
module Loopir = Daisy_loopir
module Dependence = Daisy_dependence
module Interp = Daisy_interp
module Normalize = Daisy_normalize
module Transforms = Daisy_transforms
module Machine = Daisy_machine
module Blas = Daisy_blas
module Embedding = Daisy_embedding
module Scheduler = Daisy_scheduler
module Arraylang = Daisy_arraylang
module Benchmarks = Daisy_benchmarks
module Serve = Daisy_serve

(** Result of the one-call pipeline. *)
type compiled = {
  original : Loopir.Ir.program;
  normalized : Loopir.Ir.program;
  scheduled : Loopir.Ir.program;
  report : Scheduler.Daisy.schedule_report;
  original_ms : float;
  scheduled_ms : float;
}

(** [compile ?db ?threads ~sizes source] — parse a DSL kernel, lift it
    through the low-level IR, normalize, schedule with daisy, and simulate
    both versions on the default machine. *)
let compile ?db ?threads ~sizes (source : string) : compiled =
  let func = Lir.From_ast.func_of_string source in
  let original = Lift.Lift.lift func in
  let ctx = Scheduler.Common.make_ctx ?threads ~sizes () in
  let db = match db with Some db -> db | None -> Scheduler.Database.create () in
  let normalized = Normalize.Pipeline.normalize ~sizes original in
  let report = Scheduler.Daisy.schedule ctx ~db original in
  {
    original;
    normalized;
    scheduled = report.Scheduler.Daisy.program;
    report;
    original_ms = Scheduler.Common.runtime_ms ctx original;
    scheduled_ms = Scheduler.Common.runtime_ms ctx report.Scheduler.Daisy.program;
  }
