(** The warm store: the transfer-tuning database (and its optional ANN
    sidecar) a running daemon serves from, with crash-safe hot reload.

    An offline [daisyc seed --db-out] job rewrites the database file
    atomically (write-temp/fsync/rename); the daemon detects the update
    with a cheap [stat] pre-check and swaps in the new snapshot only
    when the {e content fingerprint} actually changed — a rewrite of
    identical contents is reported [`Unchanged], so downstream caches
    keyed on the fingerprint stay valid. In-flight requests keep using
    the snapshot they started with (snapshots are immutable once
    published); a failed reload — unreadable file, bad magic, injected
    ["serve_reload"] fault — keeps the previous snapshot serving and
    warns (throttled per-label). *)

module Database = Daisy_scheduler.Database
module Diag = Daisy_support.Diag
module Fault = Daisy_support.Fault

type snapshot = {
  db : Database.t;
  fingerprint : string;
  index : string option;  (** description of the attached ANN sidecar *)
}

type t = {
  path : string option;
  lock : Mutex.t;
  mutable current : snapshot;
  mutable last_stat : (float * int) option;  (** (mtime, size) pre-check *)
  mutable reloads : int;
  mutable failed_reloads : int;
}

let empty_snapshot () =
  { db = Database.create (); fingerprint = "empty"; index = None }

(* Load a database file into a fresh snapshot: the ["serve_reload"]
   fault point fires before the read, per-entry corruption is tolerated
   by [Database.load] (warned, throttled), and the ANN sidecar at
   [path ^ ".ann"] is attached when present and valid — a missing,
   stale or corrupt sidecar silently degrades to the linear scan. *)
let load_snapshot path : snapshot =
  Fault.inject "serve_reload";
  let db, warnings = Database.load path in
  List.iter
    (fun w -> Diag.warn_throttled ~label:"serve_db_load" "%s" w)
    warnings;
  let index =
    let ann = path ^ ".ann" in
    if Sys.file_exists ann then
      match Database.load_index db ann with
      | Ok desc -> Some desc
      | Error reason ->
          Diag.warn_throttled ~label:"serve_ann_load"
            "ann sidecar %s not attached (%s); serving from the linear scan"
            ann reason;
          None
    else None
  in
  { db; fingerprint = Database.fingerprint db; index }

let stat_of path =
  match Unix.stat path with
  | { Unix.st_mtime; st_size; _ } -> Some (st_mtime, st_size)
  | exception Unix.Unix_error (_, _, _) -> None

let create ?path () : t =
  let current, last_stat =
    match path with
    | None -> (empty_snapshot (), None)
    | Some p -> (load_snapshot p, stat_of p)
  in
  {
    path;
    lock = Mutex.create ();
    current;
    last_stat;
    reloads = 0;
    failed_reloads = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let snapshot t = locked t (fun () -> t.current)
let db t = (snapshot t).db
let fingerprint t = (snapshot t).fingerprint
let reloads t = locked t (fun () -> t.reloads)
let failed_reloads t = locked t (fun () -> t.failed_reloads)

let reload_if_changed ?(force = false) t :
    [ `Reloaded of string | `Unchanged | `Failed of string ] =
  match t.path with
  | None -> `Unchanged
  | Some path ->
      locked t (fun () ->
          let st = stat_of path in
          if (not force) && st <> None && st = t.last_stat then `Unchanged
          else
            match load_snapshot path with
            | snap ->
                t.last_stat <- st;
                if String.equal snap.fingerprint t.current.fingerprint then
                  `Unchanged
                else begin
                  t.current <- snap;
                  t.reloads <- t.reloads + 1;
                  `Reloaded snap.fingerprint
                end
            | exception e ->
                t.failed_reloads <- t.failed_reloads + 1;
                let reason = Printexc.to_string e in
                Diag.warn_throttled ~label:"serve_reload"
                  "warm-store reload of %s failed (%s); keeping the previous \
                   snapshot"
                  path reason;
                `Failed reason)
