(** The warm store: the transfer-tuning database (and its optional ANN
    sidecar) a running daemon serves from, with crash-safe hot reload.

    Two backings. A monolithic file: an offline [daisyc seed --db-out]
    job rewrites it atomically (write-temp/fsync/rename) and a reload
    republishes the whole snapshot. A sharded store directory
    ({!Daisy_scheduler.Shardstore.is_store_dir}): reloads happen at
    {e manifest granularity} — {!Shardstore.refresh} swaps only the
    shards whose segments changed and replays new WAL records, so a
    seeder appending a handful of entries never forces a full re-read.

    Either way the daemon detects updates with a cheap [stat] pre-check
    and reports [`Reloaded] only when the {e content fingerprint}
    actually changed — a rewrite (or compaction) of identical contents
    is [`Unchanged], so downstream caches keyed on the fingerprint stay
    valid. A failed reload — unreadable file, bad magic, injected
    ["serve_reload"] fault — keeps the previous snapshot serving and
    warns (throttled per-label). *)

module Database = Daisy_scheduler.Database
module Shardstore = Daisy_scheduler.Shardstore
module Diag = Daisy_support.Diag
module Fault = Daisy_support.Fault

type snapshot = {
  db : Database.t;
  fingerprint : string;
  index : string option;  (** description of the attached ANN sidecar *)
}

(* What backs the store: a single atomically-rewritten database file,
   or a sharded store directory followed at manifest granularity. *)
type source = Mono of string | Shard of Shardstore.t

type t = {
  source : source option;
  lock : Mutex.t;
  mutable current : snapshot;
  mutable last_stat : (float * int) option;  (** (mtime, size) pre-check *)
  mutable reloads : int;
  mutable failed_reloads : int;
  mutable shard_swaps : int;  (** shards reloaded across all refreshes *)
}

let empty_snapshot () =
  { db = Database.create (); fingerprint = "empty"; index = None }

(* Load a database file into a fresh snapshot: the ["serve_reload"]
   fault point fires before the read, per-entry corruption is tolerated
   by [Database.load] (warned, throttled), and the ANN sidecar at
   [path ^ ".ann"] is attached when present and valid — a missing,
   stale or corrupt sidecar silently degrades to the linear scan. *)
let load_snapshot path : snapshot =
  Fault.inject "serve_reload";
  let db, warnings = Database.load path in
  List.iter
    (fun w -> Diag.warn_throttled ~label:"serve_db_load" "%s" w)
    warnings;
  let index =
    let ann = path ^ ".ann" in
    if Sys.file_exists ann then
      match Database.load_index db ann with
      | Ok desc -> Some desc
      | Error reason ->
          Diag.warn_throttled ~label:"serve_ann_load"
            "ann sidecar %s not attached (%s); serving from the linear scan"
            ann reason;
          None
    else None
  in
  { db; fingerprint = Database.fingerprint db; index }

let stat_of path =
  match Unix.stat path with
  | { Unix.st_mtime; st_size; _ } -> Some (st_mtime, st_size)
  | exception Unix.Unix_error (_, _, _) -> None

(* Pre-check for a sharded store: one stat each on the manifest and the
   WAL, folded into the same (mtime, size) shape — appends grow the WAL,
   compaction/scrub/trim rewrite the manifest. Only an optimisation:
   {!Shardstore.refresh} re-verifies by checksum. *)
let shard_stat dir =
  match
    ( stat_of (Filename.concat dir "MANIFEST"),
      stat_of (Filename.concat dir "wal.log") )
  with
  | Some (mt, sz), Some (mt', sz') -> Some (Float.max mt mt', sz + sz')
  | (Some _ as s), None | None, (Some _ as s) -> s
  | None, None -> None

let shard_desc st =
  let s = Shardstore.stats st in
  Printf.sprintf "sharded store: %d shards, %d entries, gen %d"
    s.Shardstore.st_shards s.Shardstore.st_entries s.Shardstore.st_gen

(* The sharded snapshot's [db] is a read-only handle {e through} the
   shard store ({!Shardstore.as_database}): per-shard hot reload swaps
   segments underneath it instead of republishing a whole database. *)
let shard_snapshot st =
  {
    db = Shardstore.as_database st;
    fingerprint = Shardstore.fingerprint st;
    index = Some (shard_desc st);
  }

let create ?path () : t =
  let source, current, last_stat =
    match path with
    | None -> (None, empty_snapshot (), None)
    | Some p when Shardstore.is_store_dir p ->
        Fault.inject "serve_reload";
        let st = Shardstore.open_ p in
        (Some (Shard st), shard_snapshot st, shard_stat p)
    | Some p -> (Some (Mono p), load_snapshot p, stat_of p)
  in
  {
    source;
    lock = Mutex.create ();
    current;
    last_stat;
    reloads = 0;
    failed_reloads = 0;
    shard_swaps = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let snapshot t = locked t (fun () -> t.current)
let db t = (snapshot t).db
let fingerprint t = (snapshot t).fingerprint
let reloads t = locked t (fun () -> t.reloads)
let failed_reloads t = locked t (fun () -> t.failed_reloads)
let shard_swaps t = locked t (fun () -> t.shard_swaps)

let sharded t : Shardstore.t option =
  match t.source with Some (Shard st) -> Some st | _ -> None

let shard_stats t : Shardstore.stats option =
  match t.source with
  | Some (Shard st) -> Some (Shardstore.stats st)
  | _ -> None

let reload_if_changed ?(force = false) t :
    [ `Reloaded of string | `Unchanged | `Failed of string ] =
  match t.source with
  | None -> `Unchanged
  | Some (Shard st) ->
      locked t (fun () ->
          let pre = shard_stat (Shardstore.dir st) in
          if (not force) && pre <> None && pre = t.last_stat then `Unchanged
          else
            match
              Fault.inject "serve_reload";
              Shardstore.refresh st
            with
            | `Unchanged ->
                t.last_stat <- pre;
                `Unchanged
            | `Changed (swapped, _appended) ->
                t.last_stat <- shard_stat (Shardstore.dir st);
                t.shard_swaps <- t.shard_swaps + swapped;
                let snap = shard_snapshot st in
                if String.equal snap.fingerprint t.current.fingerprint then
                  (* compaction/split of identical content: the shard
                     files changed but the served content didn't *)
                  `Unchanged
                else begin
                  t.current <- snap;
                  t.reloads <- t.reloads + 1;
                  `Reloaded snap.fingerprint
                end
            | exception e ->
                t.failed_reloads <- t.failed_reloads + 1;
                let reason = Printexc.to_string e in
                Diag.warn_throttled ~label:"serve_reload"
                  "warm-store refresh of %s failed (%s); keeping the previous \
                   snapshot"
                  (Shardstore.dir st) reason;
                `Failed reason)
  | Some (Mono path) ->
      locked t (fun () ->
          let st = stat_of path in
          if (not force) && st <> None && st = t.last_stat then `Unchanged
          else
            match load_snapshot path with
            | snap ->
                t.last_stat <- st;
                if String.equal snap.fingerprint t.current.fingerprint then
                  `Unchanged
                else begin
                  t.current <- snap;
                  t.reloads <- t.reloads + 1;
                  `Reloaded snap.fingerprint
                end
            | exception e ->
                t.failed_reloads <- t.failed_reloads + 1;
                let reason = Printexc.to_string e in
                Diag.warn_throttled ~label:"serve_reload"
                  "warm-store reload of %s failed (%s); keeping the previous \
                   snapshot"
                  path reason;
                `Failed reason)
