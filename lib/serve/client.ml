(** A small blocking client for the daisyd protocol — used by the
    [daisyc submit] subcommand, the bench load generator, and the
    serve tests. One connection, request/response in lockstep. *)

module Util = Daisy_support.Util
module P = Protocol

type t = { fd : Unix.file_descr; timeout_s : float }

exception Server_error of P.error_code * string

let connect ?(timeout_s = 30.0) (address : Server.address) : t =
  Util.ignore_sigpipe ();
  let fd =
    match address with
    | `Unix path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX path)
         with e -> (try Unix.close fd with _ -> ()); raise e);
        fd
    | `Tcp (host, port) ->
        let addr =
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_INET (addr, port))
         with e -> (try Unix.close fd with _ -> ()); raise e);
        fd
  in
  { fd; timeout_s }

let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()

let with_connection ?timeout_s address f =
  let t = connect ?timeout_s address in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(** One request/response round trip. Raises [Failure] on a framing or
    parse problem (including the server vanishing mid-response). *)
let request (t : t) (req : P.request) : P.response =
  P.write_frame t.fd (P.encode_request req);
  match P.read_frame ~timeout_s:t.timeout_s t.fd with
  | Ok payload -> (
      match P.parse_response payload with
      | Ok r -> r
      | Error m -> failwith ("daisyd sent an unparseable response: " ^ m))
  | Error fe ->
      failwith ("no response from daisyd: " ^ P.string_of_frame_error fe)

(** [schedule] round trip that unpacks the reply, raising
    {!Server_error} on a structured server error. *)
let schedule (t : t) (r : P.schedule_request) : P.schedule_reply =
  match request t (P.Schedule r) with
  | P.Schedule_reply reply -> reply
  | P.Error_reply { code; message; _ } -> raise (Server_error (code, message))
  | _ -> failwith "daisyd answered a schedule request with the wrong verb"

let ping t =
  match request t P.Ping with
  | P.Pong -> ()
  | _ -> failwith "daisyd answered ping with the wrong verb"

let stats t =
  match request t P.Stats with
  | P.Stats_reply kvs -> kvs
  | P.Error_reply { code; message; _ } -> raise (Server_error (code, message))
  | _ -> failwith "daisyd answered stats with the wrong verb"

let reload t =
  match request t P.Reload with
  | P.Reload_reply status -> status
  | P.Error_reply { code; message; _ } -> raise (Server_error (code, message))
  | _ -> failwith "daisyd answered reload with the wrong verb"

let shutdown t =
  match request t P.Shutdown with
  | P.Shutdown_reply -> ()
  | P.Error_reply { code; message; _ } -> raise (Server_error (code, message))
  | _ -> failwith "daisyd answered shutdown with the wrong verb"
