(** Blocking daisyd client: one connection, request/response in
    lockstep. Used by [daisyc submit], the bench load generator, and
    the serve tests. *)

type t

exception Server_error of Protocol.error_code * string

val connect : ?timeout_s:float -> Server.address -> t
(** [timeout_s] (default 30 s) bounds every response read. Raises
    [Unix.Unix_error] when the server is not there. *)

val close : t -> unit

val with_connection :
  ?timeout_s:float -> Server.address -> (t -> 'a) -> 'a

val request : t -> Protocol.request -> Protocol.response
(** Raw round trip. Raises [Failure] on framing/parse problems. *)

val schedule : t -> Protocol.schedule_request -> Protocol.schedule_reply
(** Raises {!Server_error} on a structured server error ([busy],
    [quarantined], …). *)

val ping : t -> unit
val stats : t -> (string * int) list
val reload : t -> string
val shutdown : t -> unit
