(** The daisyd wire protocol (docs/serving.md).

    Frames are ["DSY1"] magic + 4-byte big-endian payload length +
    payload. The payload is line-oriented UTF-8 text: a
    ["daisy1 <verb>"] first line, [key value] header lines, a blank
    line, then an optional body (the kernel source for requests, the
    per-nest decisions for responses). Magic-first framing makes garbage
    on the stream deterministically detectable, and the length prefix
    bounds every read so a hostile client can neither desynchronize the
    server nor make it buffer unboundedly. *)

module Util = Daisy_support.Util

let default_max_frame = 4 * 1024 * 1024
let magic = "DSY1"

type frame_error =
  | Eof  (** clean end-of-stream between frames *)
  | Disconnect  (** the peer vanished mid-frame *)
  | Timeout  (** the frame did not complete within the read deadline *)
  | Oversized of int  (** declared length beyond the frame cap *)
  | Bad_magic  (** garbage where a frame header was expected *)

let string_of_frame_error = function
  | Eof -> "end of stream"
  | Disconnect -> "peer disconnected mid-frame"
  | Timeout -> "frame read timed out"
  | Oversized n -> Printf.sprintf "oversized frame length %d" n
  | Bad_magic -> "bad frame magic (garbage on stream)"

(* ------------------------------------------------------------------ *)
(* Frame IO                                                            *)

let write_frame fd payload =
  let n = String.length payload in
  let b = Bytes.create (8 + n) in
  Bytes.blit_string magic 0 b 0 4;
  Bytes.set b 4 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 5 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 6 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 7 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 8 n;
  Util.write_all fd b 0 (8 + n)

(* Read exactly [len] bytes before the absolute deadline; [`Eof] only
   when the stream ends cleanly before the first byte of the frame
   ([started = false]). [deadline = infinity] blocks indefinitely. *)
let read_exactly ~deadline ~started fd buf off len =
  let rec go off len started =
    if len <= 0 then `Ok
    else
      let wait () =
        if deadline = infinity then true
        else
          let remaining = deadline -. Util.monotonic_s () in
          if remaining <= 0.0 then false
          else
            let r, _, _ =
              Util.retry_eintr (fun () -> Unix.select [ fd ] [] [] remaining)
            in
            r <> []
      in
      if not (wait ()) then `Timeout
      else
        match Util.read_retry fd buf off len with
        | 0 -> if started then `Disconnect else `Eof
        | n -> go (off + n) (len - n) true
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            if started then `Disconnect else `Eof
  in
  go off len started

let read_frame ?(max_frame = default_max_frame) ?(timeout_s = infinity) fd :
    (string, frame_error) result =
  let deadline =
    if timeout_s = infinity then infinity else Util.monotonic_s () +. timeout_s
  in
  let header = Bytes.create 8 in
  match read_exactly ~deadline ~started:false fd header 0 8 with
  | `Eof -> Error Eof
  | `Disconnect -> Error Disconnect
  | `Timeout -> Error Timeout
  | `Ok ->
      if Bytes.sub_string header 0 4 <> magic then Error Bad_magic
      else
        let b i = Char.code (Bytes.get header (4 + i)) in
        let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
        if len > max_frame then Error (Oversized len)
        else
          let payload = Bytes.create len in
          (match read_exactly ~deadline ~started:true fd payload 0 len with
          | `Ok -> Ok (Bytes.to_string payload)
          | `Timeout -> Error Timeout
          | `Eof | `Disconnect -> Error Disconnect)

(* ------------------------------------------------------------------ *)
(* Payloads                                                            *)

let version_line = "daisy1"

type schedule_request = {
  client : string;
  sizes : (string * int) list;
  budget : int option;  (** per-candidate-evaluation step fuel cap *)
  deadline_s : float option;  (** whole-request wall deadline *)
  source : string;  (** kernel source in the lang DSL *)
}

type request =
  | Ping
  | Stats
  | Reload
  | Shutdown
  | Schedule of schedule_request

type error_code =
  | Busy  (** admission control shed the request; retry later *)
  | Quota  (** the client is over its concurrent-connection quota *)
  | Quarantined  (** this exact program previously crashed the evaluator *)
  | Protocol  (** framing failure; the connection is closed *)
  | Bad_request  (** well-framed but unparseable request *)
  | Eval_failed  (** the evaluator failed (twice, for transient faults) *)
  | Deadline  (** the request blew its wall deadline *)
  | Fuel  (** the request blew its evaluation step budget *)
  | Shutting_down  (** the server is draining; retry against a new one *)

let string_of_error_code = function
  | Busy -> "busy"
  | Quota -> "quota"
  | Quarantined -> "quarantined"
  | Protocol -> "protocol"
  | Bad_request -> "bad-request"
  | Eval_failed -> "eval-failed"
  | Deadline -> "deadline"
  | Fuel -> "fuel"
  | Shutting_down -> "shutting-down"

let error_code_of_string = function
  | "busy" -> Some Busy
  | "quota" -> Some Quota
  | "quarantined" -> Some Quarantined
  | "protocol" -> Some Protocol
  | "bad-request" -> Some Bad_request
  | "eval-failed" -> Some Eval_failed
  | "deadline" -> Some Deadline
  | "fuel" -> Some Fuel
  | "shutting-down" -> Some Shutting_down
  | _ -> None

type decision = { label : string; action : string }

type schedule_reply = {
  degraded : bool;  (** served in degraded mode (approx cost model) *)
  engine : string;  (** trace engine that produced the prediction *)
  cost_ms : float;  (** predicted runtime of the scheduled program *)
  eval_s : float;  (** server-side evaluation wall time *)
  retries : int;  (** transient-failure retries spent on this request *)
  queue_depth : int;  (** queue depth observed at admission *)
  blas_calls : int;
  decisions : decision list;
}

type response =
  | Pong
  | Stats_reply of (string * int) list
  | Reload_reply of string
  | Shutdown_reply
  | Schedule_reply of schedule_reply
  | Error_reply of { code : error_code; message : string; retryable : bool }

(* ---- encoding ---- *)

let encode_request = function
  | Ping -> version_line ^ " ping\n\n"
  | Stats -> version_line ^ " stats\n\n"
  | Reload -> version_line ^ " reload\n\n"
  | Shutdown -> version_line ^ " shutdown\n\n"
  | Schedule r ->
      let b = Buffer.create (256 + String.length r.source) in
      Buffer.add_string b (version_line ^ " schedule\n");
      Buffer.add_string b (Printf.sprintf "client %s\n" r.client);
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf "size %s %d\n" k v))
        r.sizes;
      Option.iter
        (fun n -> Buffer.add_string b (Printf.sprintf "budget %d\n" n))
        r.budget;
      Option.iter
        (fun d -> Buffer.add_string b (Printf.sprintf "deadline %h\n" d))
        r.deadline_s;
      Buffer.add_char b '\n';
      Buffer.add_string b r.source;
      Buffer.contents b

let encode_response = function
  | Pong -> version_line ^ " ok pong\n\n"
  | Shutdown_reply -> version_line ^ " ok shutdown\n\n"
  | Stats_reply kvs ->
      let b = Buffer.create 256 in
      Buffer.add_string b (version_line ^ " ok stats\n");
      List.iter
        (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s %d\n" k v))
        kvs;
      Buffer.add_char b '\n';
      Buffer.contents b
  | Reload_reply status ->
      Printf.sprintf "%s ok reload\nstatus %s\n\n" version_line status
  | Schedule_reply r ->
      let b = Buffer.create 512 in
      Buffer.add_string b (version_line ^ " ok schedule\n");
      Buffer.add_string b
        (Printf.sprintf "degraded %d\n" (if r.degraded then 1 else 0));
      Buffer.add_string b (Printf.sprintf "engine %s\n" r.engine);
      Buffer.add_string b (Printf.sprintf "cost_ms %h\n" r.cost_ms);
      Buffer.add_string b (Printf.sprintf "eval_s %h\n" r.eval_s);
      Buffer.add_string b (Printf.sprintf "retries %d\n" r.retries);
      Buffer.add_string b (Printf.sprintf "queue_depth %d\n" r.queue_depth);
      Buffer.add_string b (Printf.sprintf "blas_calls %d\n" r.blas_calls);
      Buffer.add_char b '\n';
      List.iter
        (fun d -> Buffer.add_string b (Printf.sprintf "%s\t%s\n" d.label d.action))
        r.decisions;
      Buffer.contents b
  | Error_reply { code; message; retryable } ->
      Printf.sprintf "%s error %s\nretryable %d\n\n%s" version_line
        (string_of_error_code code)
        (if retryable then 1 else 0)
        message

(* ---- parsing ---- *)

(* Split a payload into (first line, header lines, body). *)
let split_payload (s : string) : (string * string list * string, string) result =
  match String.index_opt s '\n' with
  | None -> Error "missing header line"
  | Some i -> (
      let first = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      (* headers end at the first blank line *)
      let rec find_blank pos =
        if pos >= String.length rest then None
        else
          match String.index_from_opt rest pos '\n' with
          | None -> None
          | Some j ->
              if j = pos then Some j
              else find_blank (j + 1)
      in
      match find_blank 0 with
      | None -> Error "missing blank line after headers"
      | Some j ->
          let headers = String.sub rest 0 j in
          let body = String.sub rest (j + 1) (String.length rest - j - 1) in
          let lines =
            if headers = "" then []
            else String.split_on_char '\n' headers
          in
          Ok (first, lines, body))

let split_kv line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.sub line (i + 1) (String.length line - i - 1) )

let parse_request (payload : string) : (request, string) result =
  match split_payload payload with
  | Error m -> Error m
  | Ok (first, headers, body) -> (
      match String.split_on_char ' ' first with
      | [ v; verb ] when v = version_line -> (
          match verb with
          | "ping" -> Ok Ping
          | "stats" -> Ok Stats
          | "reload" -> Ok Reload
          | "shutdown" -> Ok Shutdown
          | "schedule" ->
              let client = ref "" in
              let sizes = ref [] in
              let budget = ref None in
              let deadline = ref None in
              let err = ref None in
              List.iter
                (fun line ->
                  if !err = None && line <> "" then
                    let k, v = split_kv line in
                    match k with
                    | "client" ->
                        if v = "" then err := Some "empty client id"
                        else client := v
                    | "size" -> (
                        match String.split_on_char ' ' v with
                        | [ name; n ] -> (
                            match int_of_string_opt n with
                            | Some n -> sizes := (name, n) :: !sizes
                            | None ->
                                err :=
                                  Some
                                    (Printf.sprintf "bad size value %S" n))
                        | _ ->
                            err :=
                              Some
                                (Printf.sprintf "bad size header %S" line))
                    | "budget" -> (
                        match int_of_string_opt v with
                        | Some n when n > 0 -> budget := Some n
                        | _ ->
                            err :=
                              Some (Printf.sprintf "bad budget %S" v))
                    | "deadline" -> (
                        match float_of_string_opt v with
                        | Some d when d > 0.0 -> deadline := Some d
                        | _ ->
                            err :=
                              Some (Printf.sprintf "bad deadline %S" v))
                    | _ -> err := Some (Printf.sprintf "unknown header %S" k))
                headers;
              (match !err with
              | Some m -> Error m
              | None ->
                  if !client = "" then Error "missing client header"
                  else if body = "" then Error "empty kernel source"
                  else
                    Ok
                      (Schedule
                         {
                           client = !client;
                           sizes = List.rev !sizes;
                           budget = !budget;
                           deadline_s = !deadline;
                           source = body;
                         }))
          | v -> Error (Printf.sprintf "unknown request verb %S" v))
      | _ -> Error (Printf.sprintf "bad request header %S" first))

let parse_response (payload : string) : (response, string) result =
  match split_payload payload with
  | Error m -> Error m
  | Ok (first, headers, body) -> (
      let header_kvs = List.filter_map (fun l -> if l = "" then None else Some (split_kv l)) headers in
      let find k = List.assoc_opt k header_kvs in
      match String.split_on_char ' ' first with
      | [ v; "ok"; "pong" ] when v = version_line -> Ok Pong
      | [ v; "ok"; "shutdown" ] when v = version_line -> Ok Shutdown_reply
      | [ v; "ok"; "stats" ] when v = version_line ->
          let kvs =
            List.filter_map
              (fun (k, s) ->
                match int_of_string_opt s with
                | Some n -> Some (k, n)
                | None -> None)
              header_kvs
          in
          Ok (Stats_reply kvs)
      | [ v; "ok"; "reload" ] when v = version_line ->
          Ok (Reload_reply (Option.value ~default:"" (find "status")))
      | [ v; "ok"; "schedule" ] when v = version_line -> (
          let int_of k = Option.bind (find k) int_of_string_opt in
          let float_of k = Option.bind (find k) float_of_string_opt in
          match
            (int_of "degraded", find "engine", float_of "cost_ms",
             float_of "eval_s", int_of "retries", int_of "queue_depth",
             int_of "blas_calls")
          with
          | ( Some degraded, Some engine, Some cost_ms, Some eval_s,
              Some retries, Some queue_depth, Some blas_calls ) ->
              let decisions =
                String.split_on_char '\n' body
                |> List.filter_map (fun line ->
                       if line = "" then None
                       else
                         match String.index_opt line '\t' with
                         | None -> Some { label = line; action = "" }
                         | Some i ->
                             Some
                               {
                                 label = String.sub line 0 i;
                                 action =
                                   String.sub line (i + 1)
                                     (String.length line - i - 1);
                               })
              in
              Ok
                (Schedule_reply
                   {
                     degraded = degraded <> 0;
                     engine;
                     cost_ms;
                     eval_s;
                     retries;
                     queue_depth;
                     blas_calls;
                     decisions;
                   })
          | _ -> Error "missing schedule reply headers")
      | [ v; "error"; code ] when v = version_line -> (
          match error_code_of_string code with
          | Some code ->
              let retryable =
                match find "retryable" with Some "1" -> true | _ -> false
              in
              Ok (Error_reply { code; message = body; retryable })
          | None -> Error (Printf.sprintf "unknown error code %S" code))
      | _ -> Error (Printf.sprintf "bad response header %S" first))
