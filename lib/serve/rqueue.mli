(** A bounded, closable MPMC queue — the server's admission control.
    [try_push] never blocks (a full or closed queue refuses the item,
    the deterministic load-shed); [pop] blocks until an item or close;
    workers drain remaining items after {!close} before seeing [None]. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** [false] iff the queue is full or closed (the item is refused). *)

val pop : 'a t -> 'a option
(** Block until an item is available ([Some]) or the queue is closed
    and empty ([None]). *)

val close : 'a t -> unit
(** Refuse further pushes and wake all blocked poppers. Items already
    queued are still popped (drain semantics). Idempotent. *)

val closed : 'a t -> bool
val length : 'a t -> int

val drain : 'a t -> 'a list
(** Atomically remove and return everything queued (for cleanup paths
    that must close refused connections). *)
