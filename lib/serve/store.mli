(** The daemon's warm store: an immutable snapshot of the
    transfer-tuning database (plus optional ANN sidecar) with
    fingerprint-checked atomic hot reload. See docs/serving.md,
    "Hot reload". *)

type snapshot = {
  db : Daisy_scheduler.Database.t;
  fingerprint : string;  (** {!Daisy_scheduler.Database.fingerprint} *)
  index : string option;  (** attached ANN sidecar description *)
}

type t

val create : ?path:string -> unit -> t
(** [create ~path ()] loads the database at [path] (raising
    [Daisy_support.Diag.Error] on whole-file problems — the daemon
    fails fast at boot) and attaches the [path ^ ".ann"] sidecar when
    present and valid. Without [path], an empty store (requests are
    served from baselines only). *)

val snapshot : t -> snapshot
(** The current snapshot. Immutable once returned: in-flight requests
    keep serving from it across a concurrent reload. *)

val db : t -> Daisy_scheduler.Database.t
val fingerprint : t -> string
val reloads : t -> int
val failed_reloads : t -> int

val reload_if_changed :
  ?force:bool -> t -> [ `Reloaded of string | `Unchanged | `Failed of string ]
(** Cheap [stat] pre-check (skipped with [force]), then reload and swap
    only when the content fingerprint changed. A failed reload — file
    unreadable, bad magic, injected ["serve_reload"] fault — keeps the
    previous snapshot and returns [`Failed]: a hot reload can never
    take a serving daemon down. *)
