(** The daemon's warm store: an immutable snapshot of the
    transfer-tuning database (plus optional ANN sidecar) with
    fingerprint-checked atomic hot reload. See docs/serving.md,
    "Hot reload". *)

type snapshot = {
  db : Daisy_scheduler.Database.t;
  fingerprint : string;  (** {!Daisy_scheduler.Database.fingerprint} *)
  index : string option;  (** attached ANN sidecar description *)
}

type t

val create : ?path:string -> unit -> t
(** [create ~path ()] loads the database at [path] (raising
    [Daisy_support.Diag.Error] on whole-file problems — the daemon
    fails fast at boot) and attaches the [path ^ ".ann"] sidecar when
    present and valid. When [path] is a sharded store directory
    ({!Daisy_scheduler.Shardstore.is_store_dir}) the snapshot serves
    {e through} the shard store instead, with per-shard hot reload and
    quarantine-degraded corruption handling. Without [path], an empty
    store (requests are served from baselines only). *)

val snapshot : t -> snapshot
(** The current snapshot. Immutable once returned: in-flight requests
    keep serving from it across a concurrent reload. *)

val db : t -> Daisy_scheduler.Database.t
val fingerprint : t -> string
val reloads : t -> int
val failed_reloads : t -> int

val sharded : t -> Daisy_scheduler.Shardstore.t option
(** The backing shard store, when [path] named a store directory — the
    daemon's background compactor and scrubber drive maintenance
    through this handle. *)

val shard_stats : t -> Daisy_scheduler.Shardstore.stats option
val shard_swaps : t -> int
(** Total shards swapped in across all refreshes (0 for a monolithic
    store) — the per-shard hot-reload counter. *)

val reload_if_changed :
  ?force:bool -> t -> [ `Reloaded of string | `Unchanged | `Failed of string ]
(** Cheap [stat] pre-check (skipped with [force]), then reload and swap
    only when the content fingerprint changed. A failed reload — file
    unreadable, bad magic, injected ["serve_reload"] fault — keeps the
    previous snapshot and returns [`Failed]: a hot reload can never
    take a serving daemon down. *)
