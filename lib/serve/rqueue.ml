(** A bounded, closable MPMC queue — the admission-control heart of the
    server. [try_push] never blocks: a full queue refuses the item, so
    the accept loop can shed load deterministically instead of queueing
    unboundedly. [pop] blocks until an item arrives or the queue is
    closed; closing wakes every waiter, and drained workers see [None]
    only once the queue is both closed {e and} empty — the graceful
    SIGTERM drain. *)

type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Rqueue.create: capacity must be >= 1";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_push t x =
  locked t (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  locked t (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.nonempty t.lock
      done;
      if Queue.is_empty t.items then None else Some (Queue.pop t.items))

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let closed t = locked t (fun () -> t.closed)
let length t = locked t (fun () -> Queue.length t.items)

let drain t =
  locked t (fun () ->
      let acc = ref [] in
      while not (Queue.is_empty t.items) do
        acc := Queue.pop t.items :: !acc
      done;
      List.rev !acc)
