(** The daisyd server loop: accept, admission-control, degrade, serve.
    See docs/serving.md for the operational contract. *)

type address = [ `Unix of string | `Tcp of string * int ]

type config = {
  address : address;
  jobs : int;  (** worker domains serving requests *)
  queue_capacity : int;  (** admission bound: beyond it requests shed *)
  degrade_depth : int;  (** queue depth at which evaluation degrades *)
  client_quota : int;  (** max concurrent serving connections per client *)
  eval_steps : int option;  (** server-side per-evaluation fuel cap *)
  eval_deadline_s : float option;  (** server-side per-request deadline cap *)
  idle_timeout_s : float;  (** per-connection frame read timeout *)
  retry_backoff_s : float;  (** backoff before the single transient retry *)
  db_path : string option;  (** warm store (hot-reloadable) *)
  checkpoint : string option;  (** poison set + counters journal *)
  default_size : int;  (** value for size parameters a request omits *)
  max_frame : int;
  threads : int;  (** simulated core count of the machine model *)
  sample_outer : int;
  compact_depth : int;
      (** sharded store: background-compact once this many WAL entries
          are pending (0 disables; default 64) *)
  scrub_interval_s : float;
      (** sharded store: background-scrub this often (0 disables) *)
}

val default_config : address -> config

type counters = {
  accepted : int Atomic.t;
  served : int Atomic.t;
  shed : int Atomic.t;
  degraded : int Atomic.t;
  retried : int Atomic.t;
  failed : int Atomic.t;
  quarantined : int Atomic.t;
  poisoned : int Atomic.t;
  quota_refused : int Atomic.t;
  protocol_errors : int Atomic.t;
  hangups : int Atomic.t;
  reloads : int Atomic.t;
  compactions : int Atomic.t;  (** background shard compactions that folded *)
  scrubs : int Atomic.t;  (** background shard scrubs completed *)
}

type t

val run : ?on_ready:(unit -> unit) -> config -> t
(** Bind, spawn [jobs] worker domains, and serve until shutdown — via
    the protocol [shutdown] verb, {!request_stop}, or an installed
    interrupt handler ([Daisy_support.Checkpoint.interrupted]). Blocks
    the calling thread; [on_ready] fires once the listener is bound.
    Shutdown drains queued connections, joins the workers, checkpoints
    the poison set and counters, and removes a Unix socket file.
    Raises [Daisy_support.Diag.Error] if the warm store is unreadable
    at boot (fail fast) and [Unix.Unix_error] if the address cannot be
    bound. *)

val request_stop : t -> unit
(** Ask a running server to stop from another thread/domain; the accept
    loop notices within its poll interval (~0.1 s). *)

val counters : t -> counters
val queue_depth : t -> int
val store : t -> Store.t

val string_of_address : address -> string

(**/**)

val handle_schedule : t -> Protocol.schedule_request -> Protocol.response
val create : config -> t
