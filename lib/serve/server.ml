(** daisyd's server loop: a long-lived scheduling service that survives
    slow, hostile and crashing requests (docs/serving.md).

    Architecture: one accept loop (the calling thread) plus
    [config.jobs] worker domains. The accept loop only ever accepts and
    enqueues raw connections — it never reads from a socket, so a slow
    or hostile client cannot stall admission. Admission control is the
    bounded {!Rqueue}: when it is full the connection is shed with a
    [busy] error immediately (deterministic load-shedding, never an
    unbounded backlog). Workers pop connections and serve their
    requests serially under a per-connection read timeout.

    Robustness contract, per request:
    - fuel: every candidate evaluation runs under [eval_steps] step
      budget ([fuel] error);
    - wall deadline: the whole request runs under [Util.with_deadline]
      ([deadline] error);
    - transient failures (injected ["serve_eval"] faults, engine
      crashes) are retried once after a backoff; a second crash poisons
      the request's content hash so the same program is {e never}
      retried into a crash loop ([quarantined] on resubmission);
    - under pressure (queue depth >= [degrade_depth]) evaluation
      degrades to the [Approx] cost engine and the response carries a
      [degraded] flag — never a silently wrong recipe (the engine
      failure chain bytecode -> closure -> tree inside
      [Cost.evaluate_guarded] is always active as well);
    - SIGTERM/shutdown drains queued connections, then checkpoints the
      poison set and counters to the journal so a restarted daemon
      keeps refusing known-poison programs. *)

module Util = Daisy_support.Util
module Diag = Daisy_support.Diag
module Fault = Daisy_support.Fault
module Budget = Daisy_support.Budget
module Checkpoint = Daisy_support.Checkpoint
module Cost = Daisy_machine.Cost
module Trace_compile = Daisy_machine.Trace_compile
module Interp = Daisy_interp.Interp
module S_common = Daisy_scheduler.Common
module S_daisy = Daisy_scheduler.Daisy
module Recipe = Daisy_transforms.Recipe
module Ir = Daisy_loopir.Ir
module P = Protocol

type address = [ `Unix of string | `Tcp of string * int ]

type config = {
  address : address;
  jobs : int;  (** worker domains serving requests *)
  queue_capacity : int;  (** admission bound: beyond it requests shed *)
  degrade_depth : int;  (** queue depth at which evaluation degrades *)
  client_quota : int;  (** max concurrent serving connections per client *)
  eval_steps : int option;  (** server-side per-evaluation fuel cap *)
  eval_deadline_s : float option;  (** server-side per-request deadline cap *)
  idle_timeout_s : float;  (** per-connection frame read timeout *)
  retry_backoff_s : float;  (** backoff before the single transient retry *)
  db_path : string option;  (** warm store (hot-reloadable) *)
  checkpoint : string option;  (** poison set + counters journal *)
  default_size : int;  (** value for size parameters a request omits *)
  max_frame : int;
  threads : int;  (** simulated core count of the machine model *)
  sample_outer : int;
  compact_depth : int;
      (** sharded store: background-compact once this many WAL entries
          are pending (0 disables the compactor) *)
  scrub_interval_s : float;
      (** sharded store: background-scrub this often (0 disables) *)
}

let default_config address =
  {
    address;
    jobs = 2;
    queue_capacity = 64;
    degrade_depth = 8;
    client_quota = 8;
    eval_steps = Some 200_000_000;
    eval_deadline_s = Some 30.0;
    idle_timeout_s = 10.0;
    retry_backoff_s = 0.05;
    db_path = None;
    checkpoint = None;
    default_size = 64;
    max_frame = P.default_max_frame;
    threads = 12;
    sample_outer = 12;
    compact_depth = 64;
    scrub_interval_s = 0.0;
  }

(* ------------------------------------------------------------------ *)
(* Counters — atomic, exported through the [stats] verb                *)

type counters = {
  accepted : int Atomic.t;  (** connections admitted to the queue *)
  served : int Atomic.t;  (** schedule requests answered with a recipe *)
  shed : int Atomic.t;  (** connections refused with [busy] *)
  degraded : int Atomic.t;  (** schedule replies served in degraded mode *)
  retried : int Atomic.t;  (** transient-failure retries spent *)
  failed : int Atomic.t;  (** schedule requests answered with an error *)
  quarantined : int Atomic.t;  (** requests refused by the poison set *)
  poisoned : int Atomic.t;  (** programs added to the poison set *)
  quota_refused : int Atomic.t;  (** connections refused by client quota *)
  protocol_errors : int Atomic.t;  (** framing/parse failures observed *)
  hangups : int Atomic.t;  (** peers that vanished while we responded *)
  reloads : int Atomic.t;  (** warm-store snapshots swapped in *)
  compactions : int Atomic.t;  (** background shard compactions run *)
  scrubs : int Atomic.t;  (** background shard scrubs run *)
}

let make_counters () =
  {
    accepted = Atomic.make 0;
    served = Atomic.make 0;
    shed = Atomic.make 0;
    degraded = Atomic.make 0;
    retried = Atomic.make 0;
    failed = Atomic.make 0;
    quarantined = Atomic.make 0;
    poisoned = Atomic.make 0;
    quota_refused = Atomic.make 0;
    protocol_errors = Atomic.make 0;
    hangups = Atomic.make 0;
    reloads = Atomic.make 0;
    compactions = Atomic.make 0;
    scrubs = Atomic.make 0;
  }

let counter_kvs (c : counters) ~queue_depth ~poison_size =
  [
    ("accepted", Atomic.get c.accepted);
    ("served", Atomic.get c.served);
    ("shed", Atomic.get c.shed);
    ("degraded", Atomic.get c.degraded);
    ("retried", Atomic.get c.retried);
    ("failed", Atomic.get c.failed);
    ("quarantined", Atomic.get c.quarantined);
    ("poisoned", Atomic.get c.poisoned);
    ("quota_refused", Atomic.get c.quota_refused);
    ("protocol_errors", Atomic.get c.protocol_errors);
    ("hangups", Atomic.get c.hangups);
    ("reloads", Atomic.get c.reloads);
    ("compactions", Atomic.get c.compactions);
    ("scrubs", Atomic.get c.scrubs);
    ("queue_depth", queue_depth);
    ("poison_size", poison_size);
  ]

(* Sharded-store gauges, appended to the [stats] reply when the warm
   store is a store directory. Timestamps are unix seconds (0 = never). *)
let shard_kvs store ~shard_swaps =
  match Store.shard_stats store with
  | None -> []
  | Some s ->
      let ts f = if Float.is_nan f then 0 else int_of_float f in
      [
        ("shards", s.Daisy_scheduler.Shardstore.st_shards);
        ("shard_entries", s.Daisy_scheduler.Shardstore.st_entries);
        ("wal_depth", s.Daisy_scheduler.Shardstore.st_wal_depth);
        ("shards_quarantined", s.Daisy_scheduler.Shardstore.st_quarantined);
        ("shard_gen", s.Daisy_scheduler.Shardstore.st_gen);
        ("shard_swaps", shard_swaps);
        ("last_compaction", ts s.Daisy_scheduler.Shardstore.st_compacted);
        ("last_scrub", ts s.Daisy_scheduler.Shardstore.st_scrubbed);
      ]

type t = {
  config : config;
  store : Store.t;
  queue : Unix.file_descr Rqueue.t;
  counters : counters;
  base_ctx : S_common.ctx;
  (* content hash -> reason; requests matching an entry are refused *)
  poison : (string, string) Hashtbl.t;
  (* client id -> connections currently being served *)
  clients : (string, int) Hashtbl.t;
  reg_lock : Mutex.t;
  stop : bool Atomic.t;
  journal : Checkpoint.journal option;
  maint_busy : bool Atomic.t;  (** one background maintenance at a time *)
  mutable last_scrub_check : float;  (** monotonic; gates the scrub cadence *)
}

(* ------------------------------------------------------------------ *)
(* Poison set persistence (checkpoint journal, kind "daisyd")          *)

let poison_key_prefix = "poison/"

let restore_state t =
  match t.journal with
  | None -> ()
  | Some j ->
      List.iter
        (fun key ->
          match Checkpoint.find j key with
          | Some [ reason ]
            when String.length key > String.length poison_key_prefix
                 && String.sub key 0 (String.length poison_key_prefix)
                    = poison_key_prefix ->
              let hash =
                String.sub key
                  (String.length poison_key_prefix)
                  (String.length key - String.length poison_key_prefix)
              in
              Hashtbl.replace t.poison hash reason
          | _ -> ())
        (Checkpoint.keys j)

let checkpoint_state t =
  match t.journal with
  | None -> ()
  | Some j ->
      let records =
        Mutex.lock t.reg_lock;
        let r =
          Hashtbl.fold
            (fun hash reason acc ->
              (poison_key_prefix ^ hash, [ reason ]) :: acc)
            t.poison []
        in
        Mutex.unlock t.reg_lock;
        List.sort compare r
      in
      let kvs = counter_kvs t.counters ~queue_depth:0 ~poison_size:0 in
      let counters_record =
        List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) kvs
      in
      Checkpoint.set_many j ~remove:[]
        (("counters", counters_record) :: records)

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)

let action_string : S_daisy.action -> string = function
  | `Blas k -> "blas " ^ k
  | `Recipe r -> "recipe " ^ Recipe.to_string r
  | `Unoptimized -> "unoptimized"
  | `Unliftable -> "unliftable"

(* The poison key: content hash of the exact (source, sizes) pair — the
   unit that crashed is the unit that stays quarantined. *)
let program_key (r : P.schedule_request) : string =
  Util.fnv1a64
    (String.concat "\n"
       (r.P.source
       :: List.map
            (fun (k, v) -> Printf.sprintf "%s=%d" k v)
            (List.sort compare r.P.sizes)))

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (min a b)

let poisoned t key =
  Mutex.lock t.reg_lock;
  let r = Hashtbl.find_opt t.poison key in
  Mutex.unlock t.reg_lock;
  r

let add_poison t key reason =
  Mutex.lock t.reg_lock;
  let fresh = not (Hashtbl.mem t.poison key) in
  if fresh then Hashtbl.replace t.poison key reason;
  Mutex.unlock t.reg_lock;
  if fresh then Atomic.incr t.counters.poisoned

let err ?(retryable = false) code message =
  P.Error_reply { code; message; retryable }

(* One scheduling attempt. The ["serve_eval"] fault point models a
   transient evaluator crash (armed from DAISY_FAULT in tests/CI). *)
let attempt_schedule t ~engine ~eval_steps ~eval_deadline ~sizes program =
  Fault.inject "serve_eval";
  S_daisy.schedule_request ~base:t.base_ctx ~engine ?eval_steps
    ?eval_deadline ~sizes ~db:(Store.db t.store) program

let handle_schedule t (r : P.schedule_request) : P.response =
  if Atomic.get t.stop then
    err ~retryable:true P.Shutting_down "server is draining"
  else
    let key = program_key r in
    match poisoned t key with
    | Some reason ->
        Atomic.incr t.counters.quarantined;
        err P.Quarantined
          (Printf.sprintf "program %s is quarantined: %s" key reason)
    | None -> (
        match
          Daisy_lang.Lower.program_of_string
            ~source:("client:" ^ r.P.client) r.P.source
        with
        | exception Diag.Error d -> err P.Bad_request (Diag.to_string d)
        | exception Invalid_argument m -> err P.Bad_request m
        | program ->
            let sizes =
              List.map
                (fun name ->
                  match List.assoc_opt name r.P.sizes with
                  | Some v -> (name, v)
                  | None -> (name, t.config.default_size))
                program.Ir.size_params
            in
            let queue_depth = Rqueue.length t.queue in
            let degraded = queue_depth >= t.config.degrade_depth in
            let engine =
              if degraded then Cost.Approx Trace_compile.default_approx
              else t.base_ctx.S_common.engine
            in
            let eval_steps = min_opt r.P.budget t.config.eval_steps in
            let eval_deadline =
              min_opt r.P.deadline_s t.config.eval_deadline_s
            in
            let t0 = Util.monotonic_s () in
            let attempt () =
              attempt_schedule t ~engine ~eval_steps ~eval_deadline ~sizes
                program
            in
            let finish ~retries (outcome : S_daisy.request_outcome) =
              Atomic.incr t.counters.served;
              if degraded then Atomic.incr t.counters.degraded;
              P.Schedule_reply
                {
                  P.degraded;
                  engine = Cost.string_of_engine outcome.S_daisy.engine_used;
                  cost_ms = outcome.S_daisy.predicted_ms;
                  eval_s = Util.monotonic_s () -. t0;
                  retries;
                  queue_depth;
                  blas_calls =
                    outcome.S_daisy.report.S_daisy.blas_calls;
                  decisions =
                    List.map
                      (fun (d : S_daisy.nest_decision) ->
                        {
                          P.label = d.S_daisy.label;
                          action = action_string d.S_daisy.action;
                        })
                      outcome.S_daisy.report.S_daisy.decisions;
                }
            in
            let fail code message =
              Atomic.incr t.counters.failed;
              err code message
            in
            (* semantic and resource failures are deterministic — they are
               answered, not retried; anything else is a transient
               evaluator crash: back off, retry once, then poison. *)
            match attempt () with
            | outcome -> finish ~retries:0 outcome
            | exception Budget.Exhausted ->
                fail P.Fuel "evaluation step budget exhausted"
            | exception Util.Deadline_exceeded ->
                fail P.Deadline "request wall deadline exceeded"
            | exception Interp.Runtime_error m ->
                fail P.Eval_failed ("runtime error: " ^ m)
            | exception Diag.Error d ->
                fail P.Eval_failed (Diag.to_string d)
            | exception first -> (
                Atomic.incr t.counters.retried;
                Unix.sleepf t.config.retry_backoff_s;
                match attempt () with
                | outcome -> finish ~retries:1 outcome
                | exception Budget.Exhausted ->
                    fail P.Fuel "evaluation step budget exhausted"
                | exception Util.Deadline_exceeded ->
                    fail P.Deadline "request wall deadline exceeded"
                | exception second ->
                    let reason =
                      Printf.sprintf "evaluator crashed twice (%s; then %s)"
                        (Printexc.to_string first)
                        (Printexc.to_string second)
                    in
                    add_poison t key reason;
                    fail P.Eval_failed (reason ^ "; program quarantined")))

let handle_request t (req : P.request) : P.response * [ `Keep | `Stop ] =
  match req with
  | P.Ping -> (P.Pong, `Keep)
  | P.Stats ->
      let poison_size =
        Mutex.lock t.reg_lock;
        let n = Hashtbl.length t.poison in
        Mutex.unlock t.reg_lock;
        n
      in
      ( P.Stats_reply
          (counter_kvs t.counters ~queue_depth:(Rqueue.length t.queue)
             ~poison_size
          @ shard_kvs t.store ~shard_swaps:(Store.shard_swaps t.store)),
        `Keep )
  | P.Reload ->
      let status =
        match Store.reload_if_changed ~force:true t.store with
        | `Reloaded fp ->
            Atomic.incr t.counters.reloads;
            "reloaded " ^ fp
        | `Unchanged -> "unchanged"
        | `Failed reason -> "failed " ^ reason
      in
      (P.Reload_reply status, `Keep)
  | P.Shutdown ->
      Atomic.set t.stop true;
      (P.Shutdown_reply, `Stop)
  | P.Schedule r -> (handle_schedule t r, `Keep)

(* ------------------------------------------------------------------ *)
(* Connection handling (worker side)                                   *)

(* Best-effort response write: a peer hanging up mid-response must
   never take the worker (or, via SIGPIPE, the whole daemon) down. *)
let try_respond t fd response =
  match P.write_frame fd (P.encode_response response) with
  | () -> true
  | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
      Atomic.incr t.counters.hangups;
      false
  | exception Unix.Unix_error (_, _, _) ->
      Atomic.incr t.counters.hangups;
      false

(* Per-connection client-quota registration: a connection occupies one
   slot of its client's quota from its first [schedule] request until
   the connection closes. *)
let register_client t client =
  Mutex.lock t.reg_lock;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.clients client) in
  let ok = n < t.config.client_quota in
  if ok then Hashtbl.replace t.clients client (n + 1);
  Mutex.unlock t.reg_lock;
  ok

let release_client t client =
  Mutex.lock t.reg_lock;
  (match Hashtbl.find_opt t.clients client with
  | Some n when n > 1 -> Hashtbl.replace t.clients client (n - 1)
  | Some _ -> Hashtbl.remove t.clients client
  | None -> ());
  Mutex.unlock t.reg_lock

let serve_connection t fd =
  let registered = ref None in
  Fun.protect
    ~finally:(fun () ->
      Option.iter (release_client t) !registered;
      try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      let rec loop () =
        match
          P.read_frame ~max_frame:t.config.max_frame
            ~timeout_s:t.config.idle_timeout_s fd
        with
        | Error P.Eof -> ()
        | Error P.Disconnect ->
            (* mid-frame hangup: nobody to answer — count and close *)
            Atomic.incr t.counters.protocol_errors
        | Error (P.Timeout | P.Oversized _ | P.Bad_magic) as e ->
            (* framing is unrecoverable on this connection: one
               structured error, then close — the listener stays up *)
            let msg =
              match e with
              | Error fe -> P.string_of_frame_error fe
              | Ok _ -> assert false
            in
            Atomic.incr t.counters.protocol_errors;
            ignore (try_respond t fd (err P.Protocol msg))
        | Ok payload -> (
            match P.parse_request payload with
            | Error m ->
                (* well-framed but unparseable: answer and keep going *)
                Atomic.incr t.counters.protocol_errors;
                if try_respond t fd (err P.Bad_request m) then loop ()
            | Ok req -> (
                (* client quota: enforced at the first schedule request
                   of the connection *)
                let quota_ok =
                  match (req, !registered) with
                  | P.Schedule r, None ->
                      if register_client t r.P.client then begin
                        registered := Some r.P.client;
                        true
                      end
                      else false
                  | _ -> true
                in
                if not quota_ok then begin
                  Atomic.incr t.counters.quota_refused;
                  let client =
                    match req with P.Schedule r -> r.P.client | _ -> "?"
                  in
                  if
                    try_respond t fd
                      (err ~retryable:true P.Quota
                         (Printf.sprintf
                            "client %s is over its quota of %d concurrent \
                             connections"
                            client t.config.client_quota))
                  then loop ()
                end
                else
                  let response, continue = handle_request t req in
                  let wrote = try_respond t fd response in
                  match continue with
                  | `Stop -> ()
                  | `Keep -> if wrote then loop ()))
      in
      loop ())

let worker_loop t () =
  let rec go () =
    match Rqueue.pop t.queue with
    | None -> ()
    | Some fd ->
        (try serve_connection t fd
         with e ->
           (* a defect in connection handling must not kill the worker *)
           Diag.warn_throttled ~label:"serve_worker"
             "connection handler failed: %s" (Printexc.to_string e));
        go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Listener + accept loop                                              *)

let bind_listener (address : address) : Unix.file_descr =
  match address with
  | `Unix path ->
      if Sys.file_exists path then (try Unix.unlink path with _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.bind fd (Unix.ADDR_UNIX path)
       with e -> (try Unix.close fd with _ -> ()); raise e);
      Unix.listen fd 64;
      fd
  | `Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      (try Unix.bind fd (Unix.ADDR_INET (addr, port))
       with e -> (try Unix.close fd with _ -> ()); raise e);
      Unix.listen fd 64;
      fd

let string_of_address = function
  | `Unix path -> "unix:" ^ path
  | `Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* Shed an over-admission connection: a tiny best-effort [busy] frame
   (fits any socket buffer), then close. *)
let shed t fd =
  Atomic.incr t.counters.shed;
  (try
     P.write_frame fd
       (P.encode_response
          (err ~retryable:true P.Busy "request queue is full"))
   with _ -> ());
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let create (config : config) : t =
  Util.ignore_sigpipe ();
  let store = Store.create ?path:config.db_path () in
  let journal =
    match config.checkpoint with
    | None -> None
    | Some path ->
        let fingerprint =
          Checkpoint.fingerprint
            [
              ("kind", "daisyd");
              ("address", string_of_address config.address);
              ("db", Option.value ~default:"none" config.db_path);
            ]
        in
        let open_j resume =
          Checkpoint.open_journal ~path ~kind:"daisyd" ~fingerprint ~resume ()
        in
        let j =
          if Sys.file_exists path then
            try open_j true
            with Diag.Error d ->
              Diag.warn_throttled ~label:"serve_checkpoint"
                "cannot resume serve checkpoint %s (%s); starting fresh" path
                (Diag.to_string d);
              open_j false
          else open_j false
        in
        List.iter
          (fun w -> Diag.warn_throttled ~label:"serve_checkpoint" "%s" w)
          (Checkpoint.warnings j);
        Some j
  in
  let base_ctx =
    S_common.make_ctx ~threads:config.threads
      ~sample_outer:config.sample_outer ?eval_steps:config.eval_steps
      ?eval_deadline:config.eval_deadline_s
      ~sizes:[]
      ()
  in
  let t =
    {
      config;
      store;
      queue = Rqueue.create ~capacity:config.queue_capacity;
      counters = make_counters ();
      base_ctx;
      poison = Hashtbl.create 16;
      clients = Hashtbl.create 16;
      reg_lock = Mutex.create ();
      stop = Atomic.make false;
      journal;
      maint_busy = Atomic.make false;
      last_scrub_check = Util.monotonic_s ();
    }
  in
  restore_state t;
  t

(* ------------------------------------------------------------------ *)
(* Background shard maintenance (sharded warm store only)              *)

(* Called from the accept loop's 1 s tick; never blocks it. Compaction
   folds the pending WAL into the affected shards once it is
   [compact_depth] deep; scrubbing re-verifies every segment and
   sidecar each [scrub_interval_s]. Both run on a detached thread — the
   request path only ever contends on the store's own lock, for the
   duration of the affected segments' rewrite. A failed run is warned
   (throttled) and the handle self-heals from disk; the daemon keeps
   serving. *)
let maybe_maintain t =
  match Store.sharded t.store with
  | None -> ()
  | Some st ->
      let due_compact =
        t.config.compact_depth > 0
        && Daisy_scheduler.Shardstore.wal_depth st >= t.config.compact_depth
      in
      let now = Util.monotonic_s () in
      let due_scrub =
        t.config.scrub_interval_s > 0.0
        && now -. t.last_scrub_check >= t.config.scrub_interval_s
      in
      if
        (due_compact || due_scrub)
        && Atomic.compare_and_set t.maint_busy false true
      then begin
        if due_scrub then t.last_scrub_check <- now;
        ignore
          (Thread.create
             (fun () ->
               Fun.protect
                 ~finally:(fun () -> Atomic.set t.maint_busy false)
                 (fun () ->
                   let wall = Unix.gettimeofday () in
                   (if due_compact then
                      match
                        Daisy_scheduler.Shardstore.compact ~now:wall st
                      with
                      | rewritten ->
                          if rewritten > 0 then
                            Atomic.incr t.counters.compactions
                      | exception e ->
                          Diag.warn_throttled ~label:"serve_maint"
                            "background compaction failed: %s"
                            (Printexc.to_string e));
                   if due_scrub then
                     match Daisy_scheduler.Shardstore.scrub ~now:wall st with
                     | (_ : Daisy_scheduler.Shardstore.scrub_report) ->
                         Atomic.incr t.counters.scrubs
                     | exception e ->
                         Diag.warn_throttled ~label:"serve_maint"
                           "background scrub failed: %s"
                           (Printexc.to_string e)))
             ())
      end

let request_stop t = Atomic.set t.stop true

(** [run ?on_ready config] — bind, spawn workers, and serve until
    shutdown (SIGTERM/SIGINT via [Checkpoint.install_signal_handlers],
    the protocol [shutdown] verb, or {!request_stop}). Blocks the
    calling thread; [on_ready] fires once the listener is bound.
    Returns the server handle after a graceful drain (queued
    connections served, poison set and counters checkpointed). *)
let run ?on_ready (config : config) : t =
  let t = create config in
  let listener = bind_listener config.address in
  let workers =
    List.init (max 1 config.jobs) (fun _ -> Domain.spawn (worker_loop t))
  in
  Option.iter (fun f -> f ()) on_ready;
  let last_reload_check = ref (Util.monotonic_s ()) in
  let rec accept_loop () =
    if Atomic.get t.stop || Checkpoint.interrupted () then ()
    else begin
      (* hot-reload poll: cheap stat pre-check at most once a second *)
      let now = Util.monotonic_s () in
      if now -. !last_reload_check >= 1.0 then begin
        last_reload_check := now;
        (match Store.reload_if_changed t.store with
        | `Reloaded _ -> Atomic.incr t.counters.reloads
        | `Unchanged | `Failed _ -> ());
        maybe_maintain t
      end;
      let ready =
        match Util.retry_eintr (fun () -> Unix.select [ listener ] [] [] 0.1)
        with
        | r, _, _ -> r
        | exception Unix.Unix_error (_, _, _) -> []
      in
      (match ready with
      | [] -> ()
      | _ -> (
          match Util.retry_eintr (fun () -> Unix.accept listener) with
          | fd, _ ->
              if Rqueue.try_push t.queue fd then
                Atomic.incr t.counters.accepted
              else shed t fd
          | exception Unix.Unix_error (_, _, _) -> ()));
      accept_loop ()
    end
  in
  accept_loop ();
  Atomic.set t.stop true;
  (try Unix.close listener with Unix.Unix_error (_, _, _) -> ());
  (match config.address with
  | `Unix path -> ( try Unix.unlink path with _ -> ())
  | `Tcp _ -> ());
  (* drain: no further pushes; workers finish queued connections *)
  Rqueue.close t.queue;
  List.iter Domain.join workers;
  checkpoint_state t;
  t

let counters t = t.counters
let queue_depth t = Rqueue.length t.queue
let store t = t.store
