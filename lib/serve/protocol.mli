(** The daisyd wire protocol: ["DSY1"]-magic length-prefixed frames
    carrying line-oriented request/response payloads. See
    docs/serving.md for the full spec. *)

val default_max_frame : int
(** 4 MiB — the default bound on a frame's declared payload length. *)

val magic : string

type frame_error =
  | Eof  (** clean end-of-stream between frames *)
  | Disconnect  (** the peer vanished mid-frame *)
  | Timeout  (** the frame did not complete within the read deadline *)
  | Oversized of int  (** declared length beyond the frame cap *)
  | Bad_magic  (** garbage where a frame header was expected *)

val string_of_frame_error : frame_error -> string

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame (EINTR-safe; raises [Unix_error (EPIPE, _, _)] if
    the peer hung up and SIGPIPE is ignored). *)

val read_frame :
  ?max_frame:int ->
  ?timeout_s:float ->
  Unix.file_descr ->
  (string, frame_error) result
(** Read one frame's payload. [timeout_s] bounds the whole frame
    (header + payload) from the moment the call is made; [infinity]
    (the default) blocks. *)

(** {1 Payloads} *)

type schedule_request = {
  client : string;
  sizes : (string * int) list;
  budget : int option;  (** per-candidate-evaluation step fuel cap *)
  deadline_s : float option;  (** whole-request wall deadline *)
  source : string;  (** kernel source in the lang DSL *)
}

type request =
  | Ping
  | Stats
  | Reload
  | Shutdown
  | Schedule of schedule_request

type error_code =
  | Busy  (** admission control shed the request; retry later *)
  | Quota  (** the client is over its concurrent-connection quota *)
  | Quarantined  (** this exact program previously crashed the evaluator *)
  | Protocol  (** framing failure; the connection is closed *)
  | Bad_request  (** well-framed but unparseable request *)
  | Eval_failed  (** the evaluator failed (twice, for transient faults) *)
  | Deadline  (** the request blew its wall deadline *)
  | Fuel  (** the request blew its evaluation step budget *)
  | Shutting_down  (** the server is draining; retry against a new one *)

val string_of_error_code : error_code -> string
val error_code_of_string : string -> error_code option

type decision = { label : string; action : string }

type schedule_reply = {
  degraded : bool;  (** served in degraded mode (approx cost model) *)
  engine : string;  (** trace engine that produced the prediction *)
  cost_ms : float;  (** predicted runtime of the scheduled program *)
  eval_s : float;  (** server-side evaluation wall time *)
  retries : int;  (** transient-failure retries spent on this request *)
  queue_depth : int;  (** queue depth observed at admission *)
  blas_calls : int;
  decisions : decision list;
}

type response =
  | Pong
  | Stats_reply of (string * int) list
  | Reload_reply of string
  | Shutdown_reply
  | Schedule_reply of schedule_reply
  | Error_reply of { code : error_code; message : string; retryable : bool }

val encode_request : request -> string
val parse_request : string -> (request, string) result
val encode_response : response -> string
val parse_response : string -> (response, string) result
