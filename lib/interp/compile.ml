(** Compiled execution engine for loopir: a one-pass compiler from
    {!Ir.program} to a closure tree over slot-indexed storage.

    The tree-walking oracle ({!Interp.run}) pays, per iteration, an
    [SMap.union] to build the integer environment, string-map lookups for
    every iterator and scalar, an [Expr.eval] tree walk per subscript and
    an [Array.of_list (List.map ...)] allocation per access. This engine
    pays all of that once, at compile time:

    - every loop iterator is resolved to a slot in one preallocated
      [int array] — the loop body closures read [iters.(slot)] directly;
    - every array name is resolved once to its {!Istate.tensor};
    - affine subscripts are precompiled to [base + sum coeff*slot] with
      size parameters folded into [base] (non-affine subscripts fall back
      to a compiled expression closure, so [min]/[max]/[mod]/products
      still execute exactly);
    - scalars are resolved to slots in a [float array] with a bound flag,
      written back to the state's scalar map when execution finishes;
    - [vexpr]/[pred] trees become float/bool closures, and each
      computation's guard and destination are compiled once, outside the
      iteration space.

    Determinism contract: for any program and initial state, running this
    engine produces a final state bitwise identical to {!Interp.run}'s —
    same float operations in the same order, same bounds checks with the
    same {!Istate.Runtime_error} messages, same lazily-raised errors for
    unknown arrays, unbound scalars and unknown intrinsics
    (differential-tested in [test/test_compile.ml]). *)

open Daisy_support
open Istate
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Affine = Daisy_poly.Affine

(* ------------------------------------------------------------------ *)
(* Compilation context                                                  *)

type scalar_slots = {
  names : string array;
  values : float array;
  bound : bool array;
}

type ctx = {
  state : state;
  scalars : scalar_slots;
  scalar_tbl : (string, int) Hashtbl.t;
  slots : (string * int) list;  (** lexically scoped iterator -> slot *)
  nslots : int ref;  (** total loop slots allocated so far *)
  budget : Budget.t;  (** ticked once per executed loop iteration *)
}

let scalar_slot ctx s =
  match Hashtbl.find_opt ctx.scalar_tbl s with
  | Some i -> i
  | None ->
      (* the prepass collects every Vscalar/Dscalar name, so this is
         unreachable for well-formed programs *)
      runtime_error "unbound scalar %s" s

(* ------------------------------------------------------------------ *)
(* Integer expressions: affine fast path + compiled-tree fallback       *)

(* The fallback mirrors [Expr.eval] exactly (including its
   [Invalid_argument] messages for unbound variables and zero divisors),
   but resolves iterators to slots and size parameters to constants at
   compile time. *)
let rec compile_int_tree ctx (e : Expr.t) : int array -> int =
  match e with
  | Expr.Const n -> fun _ -> n
  | Expr.Var v -> (
      match List.assoc_opt v ctx.slots with
      | Some s -> fun it -> it.(s)
      | None -> (
          match Util.SMap.find_opt v ctx.state.sizes with
          | Some n -> fun _ -> n
          | None ->
              (* lazily, like the oracle: only an error if evaluated *)
              fun _ ->
                invalid_arg
                  (Printf.sprintf "Expr.eval: unbound variable %s" v)))
  | Expr.Add (a, b) ->
      let fa = compile_int_tree ctx a and fb = compile_int_tree ctx b in
      fun it -> fa it + fb it
  | Expr.Sub (a, b) ->
      let fa = compile_int_tree ctx a and fb = compile_int_tree ctx b in
      fun it -> fa it - fb it
  | Expr.Mul (a, b) ->
      let fa = compile_int_tree ctx a and fb = compile_int_tree ctx b in
      fun it -> fa it * fb it
  | Expr.Div (a, b) ->
      let fa = compile_int_tree ctx a and fb = compile_int_tree ctx b in
      fun it ->
        let x = fa it and y = fb it in
        if y = 0 then invalid_arg "Expr.eval: division by zero"
        else
          let q = x / y and r = x mod y in
          if r <> 0 && (r < 0) <> (y < 0) then q - 1 else q
  | Expr.Mod (a, b) ->
      let fa = compile_int_tree ctx a and fb = compile_int_tree ctx b in
      fun it ->
        let x = fa it and y = fb it in
        if y = 0 then invalid_arg "Expr.eval: modulo by zero"
        else
          let r = x mod y in
          if r <> 0 && (r < 0) <> (y < 0) then r + y else r
  | Expr.Neg a ->
      let fa = compile_int_tree ctx a in
      fun it -> -fa it
  | Expr.Min (a, b) ->
      let fa = compile_int_tree ctx a and fb = compile_int_tree ctx b in
      fun it -> min (fa it) (fb it)
  | Expr.Max (a, b) ->
      let fa = compile_int_tree ctx a and fb = compile_int_tree ctx b in
      fun it -> max (fa it) (fb it)

let compile_int ctx (e : Expr.t) : int array -> int =
  match Affine.of_expr e with
  | None -> compile_int_tree ctx e
  | Some aff ->
      let base = ref aff.Affine.const in
      let terms = ref [] in
      let ok = ref true in
      Util.SMap.iter
        (fun v c ->
          match List.assoc_opt v ctx.slots with
          | Some s -> terms := (s, c) :: !terms
          | None -> (
              match Util.SMap.find_opt v ctx.state.sizes with
              | Some n -> base := !base + (c * n)
              | None -> ok := false))
        aff.Affine.terms;
      if not !ok then compile_int_tree ctx e
      else
        let b = !base in
        (match !terms with
        | [] -> fun _ -> b
        | [ (s, 1) ] when b = 0 -> fun it -> it.(s)
        | [ (s, 1) ] -> fun it -> it.(s) + b
        | [ (s, c) ] -> fun it -> (c * it.(s)) + b
        | [ (s1, c1); (s2, c2) ] ->
            fun it -> (c1 * it.(s1)) + (c2 * it.(s2)) + b
        | ts ->
            let ts = Array.of_list ts in
            fun it ->
              let acc = ref b in
              Array.iter (fun (s, c) -> acc := !acc + (c * it.(s))) ts;
              !acc)

(* ------------------------------------------------------------------ *)
(* Array accesses                                                       *)

let compile_index_fns ctx indices =
  Array.of_list (List.map (compile_int ctx) indices)

(* Like the oracle, all subscripts are evaluated before any bounds check,
   and bounds are checked dimension by dimension with identical messages.
   Rank-1/2 accesses get inline fast paths; anything else (including a
   rank mismatch with the declaration) goes through {!linear_index} on a
   per-access scratch buffer. *)
let compile_read ctx (a : Ir.access) : int array -> float =
  let fns = compile_index_fns ctx a.Ir.indices in
  match Hashtbl.find_opt ctx.state.arrays a.Ir.array with
  | None ->
      let name = a.Ir.array in
      fun it ->
        Array.iter (fun f -> ignore (f it)) fns;
        runtime_error "unknown array %s" name
  | Some t ->
      let dims = t.dims and data = t.data in
      if Array.length fns = 1 && Array.length dims = 1 then begin
        let f0 = fns.(0) and d0 = dims.(0) in
        fun it ->
          let i0 = f0 it in
          if i0 < 0 || i0 >= d0 then
            runtime_error "index %d out of bounds [0, %d) in dimension %d" i0
              d0 0;
          data.(i0)
      end
      else if Array.length fns = 2 && Array.length dims = 2 then begin
        let f0 = fns.(0) and f1 = fns.(1) in
        let d0 = dims.(0) and d1 = dims.(1) in
        fun it ->
          let i0 = f0 it in
          let i1 = f1 it in
          if i0 < 0 || i0 >= d0 then
            runtime_error "index %d out of bounds [0, %d) in dimension %d" i0
              d0 0;
          if i1 < 0 || i1 >= d1 then
            runtime_error "index %d out of bounds [0, %d) in dimension %d" i1
              d1 1;
          data.((i0 * d1) + i1)
      end
      else begin
        let n = Array.length fns in
        let scratch = Array.make n 0 in
        fun it ->
          for k = 0 to n - 1 do
            scratch.(k) <- fns.(k) it
          done;
          data.(linear_index dims scratch)
      end

let compile_write ctx (a : Ir.access) : int array -> float -> unit =
  let fns = compile_index_fns ctx a.Ir.indices in
  match Hashtbl.find_opt ctx.state.arrays a.Ir.array with
  | None ->
      let name = a.Ir.array in
      fun it _ ->
        Array.iter (fun f -> ignore (f it)) fns;
        runtime_error "unknown array %s" name
  | Some t ->
      let dims = t.dims and data = t.data in
      if Array.length fns = 1 && Array.length dims = 1 then begin
        let f0 = fns.(0) and d0 = dims.(0) in
        fun it v ->
          let i0 = f0 it in
          if i0 < 0 || i0 >= d0 then
            runtime_error "index %d out of bounds [0, %d) in dimension %d" i0
              d0 0;
          data.(i0) <- v
      end
      else if Array.length fns = 2 && Array.length dims = 2 then begin
        let f0 = fns.(0) and f1 = fns.(1) in
        let d0 = dims.(0) and d1 = dims.(1) in
        fun it v ->
          let i0 = f0 it in
          let i1 = f1 it in
          if i0 < 0 || i0 >= d0 then
            runtime_error "index %d out of bounds [0, %d) in dimension %d" i0
              d0 0;
          if i1 < 0 || i1 >= d1 then
            runtime_error "index %d out of bounds [0, %d) in dimension %d" i1
              d1 1;
          data.((i0 * d1) + i1) <- v
      end
      else begin
        let n = Array.length fns in
        let scratch = Array.make n 0 in
        fun it v ->
          for k = 0 to n - 1 do
            scratch.(k) <- fns.(k) it
          done;
          data.(linear_index dims scratch) <- v
      end

(* ------------------------------------------------------------------ *)
(* Value expressions and predicates                                     *)

let rec compile_vexpr ctx (e : Ir.vexpr) : int array -> float =
  match e with
  | Ir.Vfloat f -> fun _ -> f
  | Ir.Vint ie ->
      let fi = compile_int ctx ie in
      fun it -> float_of_int (fi it)
  | Ir.Vread a -> compile_read ctx a
  | Ir.Vscalar s ->
      let slot = scalar_slot ctx s in
      let values = ctx.scalars.values and bound = ctx.scalars.bound in
      fun _ ->
        if bound.(slot) then values.(slot)
        else runtime_error "unbound scalar %s" s
  | Ir.Vbin (op, a, b) -> (
      let fa = compile_vexpr ctx a and fb = compile_vexpr ctx b in
      match op with
      | Ir.Vadd -> fun it -> fa it +. fb it
      | Ir.Vsub -> fun it -> fa it -. fb it
      | Ir.Vmul -> fun it -> fa it *. fb it
      | Ir.Vdiv -> fun it -> fa it /. fb it)
  | Ir.Vneg a ->
      let fa = compile_vexpr ctx a in
      fun it -> -.fa it
  | Ir.Vcall (f, args) -> (
      let fns = List.map (compile_vexpr ctx) args in
      match (f, fns) with
      | "sqrt", [ fa ] -> fun it -> sqrt (fa it)
      | "exp", [ fa ] -> fun it -> exp (fa it)
      | "log", [ fa ] -> fun it -> log (fa it)
      | "fabs", [ fa ] -> fun it -> Float.abs (fa it)
      | "floor", [ fa ] -> fun it -> floor (fa it)
      | "ceil", [ fa ] -> fun it -> ceil (fa it)
      | "sin", [ fa ] -> fun it -> sin (fa it)
      | "cos", [ fa ] -> fun it -> cos (fa it)
      | "tanh", [ fa ] -> fun it -> tanh (fa it)
      | "pow", [ fa; fb ] ->
          fun it ->
            let x = fa it in
            let y = fb it in
            Float.pow x y
      | "min", [ fa; fb ] ->
          fun it ->
            let x = fa it in
            let y = fb it in
            Float.min x y
      | "max", [ fa; fb ] ->
          fun it ->
            let x = fa it in
            let y = fb it in
            Float.max x y
      | _ ->
          (* like the oracle: arguments are evaluated, then the unknown
             intrinsic (or wrong arity) raises *)
          let fns = Array.of_list fns in
          let arity = Array.length fns in
          fun it ->
            Array.iter (fun g -> ignore (g it)) fns;
            runtime_error "unknown intrinsic %s/%d" f arity)
  | Ir.Vselect (p, a, b) ->
      let fp = compile_pred ctx p in
      let fa = compile_vexpr ctx a and fb = compile_vexpr ctx b in
      fun it -> if fp it then fa it else fb it

and compile_pred ctx (p : Ir.pred) : int array -> bool =
  match p with
  | Ir.Pcmp (op, a, b) -> (
      let fa = compile_vexpr ctx a and fb = compile_vexpr ctx b in
      match op with
      | Ir.Clt -> fun it -> fa it < fb it
      | Ir.Cle -> fun it -> fa it <= fb it
      | Ir.Cgt -> fun it -> fa it > fb it
      | Ir.Cge -> fun it -> fa it >= fb it
      | Ir.Ceq -> fun it -> fa it = fb it
      | Ir.Cne -> fun it -> fa it <> fb it)
  | Ir.Pand (a, b) ->
      let fa = compile_pred ctx a and fb = compile_pred ctx b in
      fun it -> fa it && fb it
  | Ir.Por (a, b) ->
      let fa = compile_pred ctx a and fb = compile_pred ctx b in
      fun it -> fa it || fb it
  | Ir.Pnot a ->
      let fa = compile_pred ctx a in
      fun it -> not (fa it)

(* ------------------------------------------------------------------ *)
(* Computations, library calls, loops                                   *)

let compile_comp ctx (c : Ir.comp) : int array -> unit =
  let frhs = compile_vexpr ctx c.Ir.rhs in
  let fdest =
    match c.Ir.dest with
    | Ir.Dscalar s ->
        let slot = scalar_slot ctx s in
        let values = ctx.scalars.values and bound = ctx.scalars.bound in
        fun _ v ->
          values.(slot) <- v;
          bound.(slot) <- true
    | Ir.Darray a -> compile_write ctx a
  in
  match c.Ir.guard with
  | None ->
      fun it ->
        let v = frhs it in
        fdest it v
  | Some g ->
      let fg = compile_pred ctx g in
      fun it ->
        if fg it then begin
          let v = frhs it in
          fdest it v
        end

let compile_libcall ctx (k : Ir.libcall) : int array -> unit =
  let fdims = List.map (compile_int ctx) k.Ir.dims in
  let fscalars = Array.of_list (List.map (compile_vexpr ctx) k.Ir.scalar_args) in
  let scalar i it =
    if i < Array.length fscalars then fscalars.(i) it else 1.0
  in
  let eval_dims it = List.iter (fun f -> ignore (f it)) fdims in
  match List.find_opt (fun n -> not (Hashtbl.mem ctx.state.arrays n)) k.Ir.args with
  | Some name ->
      fun it ->
        eval_dims it;
        runtime_error "unknown array %s" name
  | None -> (
      let data name = (Hashtbl.find ctx.state.arrays name).data in
      match (k.Ir.kernel, k.Ir.args, fdims) with
      | "gemm", [ c; a; b ], [ fm; fn; fk ] ->
          let dc = data c and da = data a and db = data b in
          fun it ->
            let m = fm it in
            let n = fn it in
            let kk = fk it in
            let alpha = scalar 0 it in
            Daisy_blas.Kernels.gemm ~m ~n ~k:kk ~alpha da db dc
      | "gemv", [ y; a; x ], [ fm; fn ] ->
          let dy = data y and da = data a and dx = data x in
          fun it ->
            let m = fm it in
            let n = fn it in
            let alpha = scalar 0 it in
            Daisy_blas.Kernels.gemv ~m ~n ~alpha da dx dy
      | "gemvt", [ y; a; x ], [ fm; fn ] ->
          let dy = data y and da = data a and dx = data x in
          fun it ->
            let m = fm it in
            let n = fn it in
            let alpha = scalar 0 it in
            Daisy_blas.Kernels.gemvt ~m ~n ~alpha da dx dy
      | "syrk", [ c; a ], [ fn; fm ] ->
          let dc = data c and da = data a in
          fun it ->
            let n = fn it in
            let m = fm it in
            let alpha = scalar 0 it in
            Daisy_blas.Kernels.syrk ~n ~m ~alpha da dc
      | "syr2k", [ c; a; b ], [ fn; fm ] ->
          let dc = data c and da = data a and db = data b in
          fun it ->
            let n = fn it in
            let m = fm it in
            let alpha = scalar 0 it in
            Daisy_blas.Kernels.syr2k ~n ~m ~alpha da db dc
      | kern, args, _ ->
          let na = List.length args and nd = List.length fdims in
          fun it ->
            eval_dims it;
            runtime_error "unsupported library call %s/%d arrays/%d dims" kern
              na nd)

let rec compile_node ctx (n : Ir.node) : int array -> unit =
  match n with
  | Ir.Ncomp c -> compile_comp ctx c
  | Ir.Ncall k -> compile_libcall ctx k
  | Ir.Nloop l ->
      let flo = compile_int ctx l.Ir.lo and fhi = compile_int ctx l.Ir.hi in
      let slot = !(ctx.nslots) in
      incr ctx.nslots;
      let fbody =
        compile_nodes { ctx with slots = (l.Ir.iter, slot) :: ctx.slots }
          l.Ir.body
      in
      let step = l.Ir.step in
      let budget = ctx.budget in
      if step > 0 then
        fun it ->
          let lo = flo it in
          let hi = fhi it in
          let i = ref lo in
          while !i <= hi do
            Budget.tick budget;
            it.(slot) <- !i;
            fbody it;
            i := !i + step
          done
      else
        fun it ->
          let lo = flo it in
          let hi = fhi it in
          let i = ref lo in
          while !i >= hi do
            Budget.tick budget;
            it.(slot) <- !i;
            fbody it;
            i := !i + step
          done

and compile_nodes ctx nodes : int array -> unit =
  match List.map (compile_node ctx) nodes with
  | [] -> fun _ -> ()
  | [ f ] -> f
  | fs ->
      let fs = Array.of_list fs in
      let n = Array.length fs in
      fun it ->
        for i = 0 to n - 1 do
          fs.(i) it
        done

(* ------------------------------------------------------------------ *)
(* Program compilation                                                  *)

(** [compile p state] compiles [p] against [state]'s sizes and storage
    (one pass, no execution). The returned thunk executes the program,
    mutating [state]; it may be invoked repeatedly as long as [state]'s
    arrays are not reallocated. [budget] is ticked once per executed loop
    iteration and raises {!Budget.Exhausted} when it runs out; it is
    baked into the closures, so repeated thunk invocations keep drawing
    from the same fuel. *)
let compile ?(budget = Budget.unlimited ()) (p : Ir.program) (st : state) :
    unit -> unit =
  Fault.inject "interp_compile";
  let scalar_names = Ir.program_scalar_names p in
  let scalar_tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if not (Hashtbl.mem scalar_tbl n) then
        Hashtbl.add scalar_tbl n (Hashtbl.length scalar_tbl))
    scalar_names;
  let nscalars = Hashtbl.length scalar_tbl in
  let scalars =
    {
      names = Array.make nscalars "";
      values = Array.make nscalars 0.0;
      bound = Array.make nscalars false;
    }
  in
  Hashtbl.iter (fun n i -> scalars.names.(i) <- n) scalar_tbl;
  let ctx =
    { state = st; scalars; scalar_tbl; slots = []; nslots = ref 0; budget }
  in
  let fbody = compile_nodes ctx p.Ir.body in
  let niters = max 1 !(ctx.nslots) in
  fun () ->
    for i = 0 to nscalars - 1 do
      match Util.SMap.find_opt scalars.names.(i) st.scalars with
      | Some v ->
          scalars.values.(i) <- v;
          scalars.bound.(i) <- true
      | None ->
          scalars.values.(i) <- 0.0;
          scalars.bound.(i) <- false
    done;
    (* write slot scalars back into the map even when execution raises, so
       a post-mortem state looks like the oracle's *)
    let writeback () =
      let m = ref st.scalars in
      for i = 0 to nscalars - 1 do
        if scalars.bound.(i) then
          m := Util.SMap.add scalars.names.(i) scalars.values.(i) !m
      done;
      st.scalars <- !m
    in
    let it = Array.make niters 0 in
    Fun.protect ~finally:writeback (fun () -> fbody it)

(** [run p state] — compile and execute once, mutating [state]. *)
let run ?budget (p : Ir.program) (st : state) = (compile ?budget p st) ()

(** [run_fresh p ~sizes ...] — allocate a fresh state and run [p] in it. *)
let run_fresh ?budget (p : Ir.program) ~sizes ?(scalars = []) ?init_fn () =
  let st = init p ~sizes ~scalars ?init_fn () in
  run ?budget p st;
  st
