(** Compiled execution engine for loopir programs: iterators resolved to
    slots in a preallocated [int array], array names resolved once to
    their tensors, affine subscripts precompiled to
    [base + sum coeff*slot] (with a compiled-expression fallback for
    non-affine subscripts), scalars in slot arrays, and [vexpr]/[pred]
    trees compiled to closures.

    Bitwise-identical to the tree-walking oracle {!Interp.run} on final
    states and on error behavior (same {!Istate.Runtime_error} messages,
    raised at the same points of execution). *)

val compile : Daisy_loopir.Ir.program -> Istate.state -> unit -> unit
(** One-pass compilation against the state's sizes and storage; the
    returned thunk executes the program, mutating the state. Reusable as
    long as the state's arrays are not reallocated. *)

val run : Daisy_loopir.Ir.program -> Istate.state -> unit
(** Compile and execute once. *)

val run_fresh :
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  ?init_fn:(string -> int -> float) ->
  unit ->
  Istate.state
(** Allocate a fresh state ({!Istate.init}) and run the program in it. *)
