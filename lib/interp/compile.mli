(** Compiled execution engine for loopir programs: iterators resolved to
    slots in a preallocated [int array], array names resolved once to
    their tensors, affine subscripts precompiled to
    [base + sum coeff*slot] (with a compiled-expression fallback for
    non-affine subscripts), scalars in slot arrays, and [vexpr]/[pred]
    trees compiled to closures.

    Bitwise-identical to the tree-walking oracle {!Interp.run} on final
    states and on error behavior (same {!Istate.Runtime_error} messages,
    raised at the same points of execution).

    Every entry point accepts an optional {!Daisy_support.Budget}; the
    engine ticks it once per executed loop iteration and lets
    [Budget.Exhausted] escape. Compilation passes through the
    ["interp_compile"] {!Daisy_support.Fault} injection point. *)

val compile :
  ?budget:Daisy_support.Budget.t ->
  Daisy_loopir.Ir.program ->
  Istate.state ->
  unit ->
  unit
(** One-pass compilation against the state's sizes and storage; the
    returned thunk executes the program, mutating the state. Reusable as
    long as the state's arrays are not reallocated. [budget] is baked
    into the closures: repeated thunk invocations draw from the same
    fuel. *)

val run :
  ?budget:Daisy_support.Budget.t ->
  Daisy_loopir.Ir.program ->
  Istate.state ->
  unit
(** Compile and execute once. *)

val run_fresh :
  ?budget:Daisy_support.Budget.t ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  ?init_fn:(string -> int -> float) ->
  unit ->
  Istate.state
(** Allocate a fresh state ({!Istate.init}) and run the program in it. *)
