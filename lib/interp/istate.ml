(** Shared execution state of the two loopir interpreters.

    Both the tree-walking oracle ({!Interp}) and the compiled fast path
    ({!Compile}) execute programs over this state: concrete [float array]
    storage per array, an integer size environment, and a scalar
    environment. Keeping allocation, the deterministic initializer and the
    bounds-checking index arithmetic in one place guarantees the two
    engines cannot drift on anything but the walk itself. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr

type tensor = { dims : int array; data : float array }

let tensor_size t = Array.fold_left ( * ) 1 t.dims

type state = {
  sizes : int Util.SMap.t;
  mutable scalars : float Util.SMap.t;
  arrays : (string, tensor) Hashtbl.t;
}

exception Runtime_error of string

let runtime_error fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Initialization                                                       *)

(** Deterministic PolyBench-style initializer: a bounded, array-dependent
    value for every element, identical across program variants. *)
let default_init name i =
  let h = ref 1469598103934665603 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 1099511628211) name;
  let v = (!h lxor (i * 2654435761)) land 0xFFFF in
  (float_of_int v /. 65536.0) +. 0.01

let linear_index dims indices =
  let rank = Array.length dims in
  let rec go k acc =
    if k = rank then acc
    else begin
      let i = indices.(k) in
      if i < 0 || i >= dims.(k) then
        runtime_error "index %d out of bounds [0, %d) in dimension %d" i dims.(k) k;
      go (k + 1) ((acc * dims.(k)) + i)
    end
  in
  go 0 0

(** [init p ~sizes ~scalars ?init_fn ()] allocates every array of [p].
    Parameter arrays are filled by [init_fn] (default {!default_init});
    locals are zeroed. *)
let init (p : Ir.program) ~sizes ?(scalars = []) ?(init_fn = default_init) () =
  let sizes =
    List.fold_left (fun m (k, v) -> Util.SMap.add k v m) Util.SMap.empty sizes
  in
  List.iter
    (fun sp ->
      if not (Util.SMap.mem sp sizes) then
        runtime_error "missing size parameter %s" sp)
    p.Ir.size_params;
  let scalar_map =
    List.fold_left (fun m (k, v) -> Util.SMap.add k v m) Util.SMap.empty scalars
  in
  (* default any unspecified scalar parameter deterministically *)
  let scalar_map =
    List.fold_left
      (fun m sp ->
        if Util.SMap.mem sp m then m else Util.SMap.add sp (default_init sp 0) m)
      scalar_map p.Ir.scalar_params
  in
  let arrays = Hashtbl.create 16 in
  List.iter
    (fun (a : Ir.array_decl) ->
      let dims =
        Array.of_list (List.map (fun d -> Expr.eval sizes d) a.Ir.dims)
      in
      Array.iter
        (fun d ->
          if d <= 0 then
            runtime_error "array %s has non-positive dimension %d" a.Ir.name d)
        dims;
      let n = Array.fold_left ( * ) 1 dims in
      let data =
        match a.Ir.storage with
        | Ir.Sparam -> Array.init n (fun i -> init_fn a.Ir.name i)
        | Ir.Slocal -> Array.make n 0.0
      in
      Hashtbl.replace arrays a.Ir.name { dims; data })
    p.Ir.arrays;
  { sizes; scalars = scalar_map; arrays }

(* ------------------------------------------------------------------ *)
(* Intrinsics                                                           *)

let eval_intrinsic f args =
  match (f, args) with
  | "sqrt", [ x ] -> sqrt x
  | "exp", [ x ] -> exp x
  | "log", [ x ] -> log x
  | "fabs", [ x ] -> Float.abs x
  | "floor", [ x ] -> floor x
  | "ceil", [ x ] -> ceil x
  | "sin", [ x ] -> sin x
  | "cos", [ x ] -> cos x
  | "tanh", [ x ] -> tanh x
  | "pow", [ x; y ] -> Float.pow x y
  | "min", [ x; y ] -> Float.min x y
  | "max", [ x; y ] -> Float.max x y
  | _ -> runtime_error "unknown intrinsic %s/%d" f (List.length args)
