(** Reference interpreter for loopir programs over real [float array]
    storage — the oracle proving every transformation semantics-preserving.
    Two engines share the execution state: the tree-walking oracle
    ({!run}) and the slot-based compiled fast path ({!run_compiled},
    bitwise-identical and 10–100x faster — see [docs/performance.md]).
    Scheduling attributes do not affect interpretation. *)

type tensor = Istate.tensor = { dims : int array; data : float array }

val tensor_size : tensor -> int

type state = Istate.state = {
  sizes : int Daisy_support.Util.SMap.t;
  mutable scalars : float Daisy_support.Util.SMap.t;
  arrays : (string, tensor) Hashtbl.t;
}

exception Runtime_error of string

val default_init : string -> int -> float
(** Deterministic PolyBench-style initializer: bounded, array-dependent,
    identical across program variants. *)

val init :
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  ?init_fn:(string -> int -> float) ->
  unit ->
  state
(** Allocate every array (parameters via [init_fn], locals zeroed). *)

val run : ?budget:Daisy_support.Budget.t -> Daisy_loopir.Ir.program -> state -> unit
(** Execute the program body with the tree-walking oracle, mutating
    [state]. [budget] (default unlimited) is ticked once per executed
    loop iteration; {!Daisy_support.Budget.Exhausted} escapes when it
    runs out. *)

val run_fresh :
  ?budget:Daisy_support.Budget.t ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  ?init_fn:(string -> int -> float) ->
  unit ->
  state

val run_compiled :
  ?budget:Daisy_support.Budget.t -> Daisy_loopir.Ir.program -> state -> unit
(** Execute with the compiled engine ({!Compile}): bitwise-identical final
    states and error behavior, 10–100x faster than {!run}. *)

val run_compiled_fresh :
  ?budget:Daisy_support.Budget.t ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  ?init_fn:(string -> int -> float) ->
  unit ->
  state
(** {!run_fresh} on the compiled engine. *)

val run_bytecode :
  ?budget:Daisy_support.Budget.t -> Daisy_loopir.Ir.program -> state -> unit
(** Execute with the flat-bytecode engine ({!Bc_exec} over
    {!Daisy_lir.Bytecode}): bitwise-identical final states and error
    behavior, faster than {!run_compiled} (see [docs/performance.md],
    "Bytecode engine"). *)

val run_bytecode_fresh :
  ?budget:Daisy_support.Budget.t ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  ?init_fn:(string -> int -> float) ->
  unit ->
  state
(** {!run_fresh} on the bytecode engine. *)

type engine = Tree | Closure | Bytecode
(** The three semantic engines, slowest first — all bit-identical on the
    differential suite. *)

val engine_of_string : string -> engine option
val string_of_engine : engine -> string

val default_engine : engine ref
(** Engine the {!equivalent} family runs on (default [Bytecode]). A
    failing engine degrades bytecode -> closure -> tree with throttled
    warnings; semantic errors and [Budget.Exhausted] propagate. *)

val compiled_fallbacks : unit -> int
(** Number of times a guarded run (the {!equivalent} family) failed with
    a non-semantic exception and was transparently re-run on the next
    engine down the bytecode -> closure -> tree chain. Each fallback logs
    a throttled warning to stderr. Semantic errors ([Runtime_error],
    [Invalid_argument]) and [Budget.Exhausted] propagate instead — all
    engines raise those identically. *)

val reset_compiled_fallbacks : unit -> unit

val max_rel_diff : Daisy_loopir.Ir.program -> state -> state -> float
(** Maximum relative difference between parameter arrays of two states
    (equal values, including inf/nan, count as zero). *)

val equivalent_on :
  ?tol:float ->
  arrays:string list ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  unit ->
  bool
(** Run both programs from identical initial states (compiled engine,
    with transparent tree-oracle fallback on engine failure) and compare
    only the named arrays (for cross-language checks). *)

val equivalent :
  ?tol:float ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  unit ->
  bool
(** Compare all parameter arrays (compiled engine). *)
