(** Shared execution state of the two loopir interpreters (the
    tree-walking oracle {!Interp} and the compiled fast path {!Compile}):
    storage, deterministic initialization, bounds-checked indexing and
    intrinsics live here so the engines cannot drift on anything but the
    walk itself. *)

type tensor = { dims : int array; data : float array }

val tensor_size : tensor -> int

type state = {
  sizes : int Daisy_support.Util.SMap.t;
  mutable scalars : float Daisy_support.Util.SMap.t;
  arrays : (string, tensor) Hashtbl.t;
}

exception Runtime_error of string

val runtime_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Runtime_error} with a formatted message. *)

val default_init : string -> int -> float
(** Deterministic PolyBench-style initializer: bounded, array-dependent,
    identical across program variants. *)

val linear_index : int array -> int array -> int
(** Row-major linear index with per-dimension bounds checks
    (@raise Runtime_error on the first out-of-bounds dimension). *)

val init :
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?scalars:(string * float) list ->
  ?init_fn:(string -> int -> float) ->
  unit ->
  state
(** Allocate every array (parameters via [init_fn], locals zeroed). *)

val eval_intrinsic : string -> float list -> float
(** @raise Runtime_error on an unknown intrinsic or wrong arity. *)
