(** Reference interpreter for loopir programs.

    Executes programs over real [float array] storage; the test suite uses it
    to prove every normalization and scheduling transformation semantics-
    preserving (original and transformed programs must produce bitwise-close
    outputs from identical initial states).

    Two engines share the execution state ({!Istate}):

    - {!run} — the tree-walking oracle: simple, obviously-correct recursive
      evaluation over string-map environments;
    - {!run_compiled} — the slot-based compiled engine ({!Compile}),
      10–100x faster and differential-tested to produce bitwise-identical
      states (see [test/test_compile.ml] and [docs/performance.md]).

    The equivalence checkers ({!equivalent}, {!equivalent_on}) run on the
    compiled engine and transparently fall back to the oracle if it fails
    with a non-semantic exception (see {!compiled_fallbacks}); the oracle
    remains the ground truth the compiled engine is itself validated
    against.

    Scheduling attributes ([parallel], [vectorized], [unroll]) do not affect
    interpretation — they are promises to the machine model, not semantics. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr

(* ------------------------------------------------------------------ *)
(* Shared execution state (re-exported from Istate)                     *)

type tensor = Istate.tensor = { dims : int array; data : float array }

let tensor_size = Istate.tensor_size

type state = Istate.state = {
  sizes : int Util.SMap.t;
  mutable scalars : float Util.SMap.t;
  arrays : (string, tensor) Hashtbl.t;
}

exception Runtime_error = Istate.Runtime_error

let runtime_error = Istate.runtime_error
let default_init = Istate.default_init
let linear_index = Istate.linear_index
let init = Istate.init
let eval_intrinsic = Istate.eval_intrinsic

(* ------------------------------------------------------------------ *)
(* Tree-walking evaluation (the oracle)                                 *)

type frame = {
  state : state;
  mutable iters : int Util.SMap.t;
  budget : Budget.t;  (** ticked once per executed loop iteration *)
}

let int_env fr =
  Util.SMap.union (fun _ i _ -> Some i) fr.iters fr.state.sizes

let read_tensor state array indices =
  match Hashtbl.find_opt state.arrays array with
  | None -> runtime_error "unknown array %s" array
  | Some t -> t.data.(linear_index t.dims indices)

let write_tensor state array indices v =
  match Hashtbl.find_opt state.arrays array with
  | None -> runtime_error "unknown array %s" array
  | Some t -> t.data.(linear_index t.dims indices) <- v

let rec eval_vexpr fr (e : Ir.vexpr) : float =
  match e with
  | Ir.Vfloat f -> f
  | Ir.Vint ie -> float_of_int (Expr.eval (int_env fr) ie)
  | Ir.Vread { array; indices } ->
      let env = int_env fr in
      let idx = Array.of_list (List.map (Expr.eval env) indices) in
      read_tensor fr.state array idx
  | Ir.Vscalar s -> (
      match Util.SMap.find_opt s fr.state.scalars with
      | Some v -> v
      | None -> runtime_error "unbound scalar %s" s)
  | Ir.Vbin (op, a, b) -> (
      let x = eval_vexpr fr a and y = eval_vexpr fr b in
      match op with
      | Ir.Vadd -> x +. y
      | Ir.Vsub -> x -. y
      | Ir.Vmul -> x *. y
      | Ir.Vdiv -> x /. y)
  | Ir.Vneg a -> -.eval_vexpr fr a
  | Ir.Vcall (f, args) -> eval_intrinsic f (List.map (eval_vexpr fr) args)
  | Ir.Vselect (p, a, b) -> if eval_pred fr p then eval_vexpr fr a else eval_vexpr fr b

and eval_pred fr (p : Ir.pred) : bool =
  match p with
  | Ir.Pcmp (op, a, b) -> (
      let x = eval_vexpr fr a and y = eval_vexpr fr b in
      match op with
      | Ir.Clt -> x < y
      | Ir.Cle -> x <= y
      | Ir.Cgt -> x > y
      | Ir.Cge -> x >= y
      | Ir.Ceq -> x = y
      | Ir.Cne -> x <> y)
  | Ir.Pand (a, b) -> eval_pred fr a && eval_pred fr b
  | Ir.Por (a, b) -> eval_pred fr a || eval_pred fr b
  | Ir.Pnot a -> not (eval_pred fr a)

let exec_comp fr (c : Ir.comp) =
  let run =
    match c.Ir.guard with None -> true | Some g -> eval_pred fr g
  in
  if run then
    let v = eval_vexpr fr c.Ir.rhs in
    match c.Ir.dest with
    | Ir.Dscalar s -> fr.state.scalars <- Util.SMap.add s v fr.state.scalars
    | Ir.Darray { array; indices } ->
        let env = int_env fr in
        let idx = Array.of_list (List.map (Expr.eval env) indices) in
        write_tensor fr.state array idx v

let tensor_of fr name =
  match Hashtbl.find_opt fr.state.arrays name with
  | Some t -> t
  | None -> runtime_error "unknown array %s" name

let exec_libcall fr (k : Ir.libcall) =
  let env = int_env fr in
  let dims = List.map (Expr.eval env) k.Ir.dims in
  let scalar i =
    match List.nth_opt k.Ir.scalar_args i with
    | Some e -> eval_vexpr fr e
    | None -> 1.0
  in
  let data name = (tensor_of fr name).data in
  match (k.Ir.kernel, k.Ir.args, dims) with
  | "gemm", [ c; a; b ], [ m; n; kk ] ->
      Daisy_blas.Kernels.gemm ~m ~n ~k:kk ~alpha:(scalar 0) (data a) (data b) (data c)
  | "gemv", [ y; a; x ], [ m; n ] ->
      Daisy_blas.Kernels.gemv ~m ~n ~alpha:(scalar 0) (data a) (data x) (data y)
  | "gemvt", [ y; a; x ], [ m; n ] ->
      Daisy_blas.Kernels.gemvt ~m ~n ~alpha:(scalar 0) (data a) (data x) (data y)
  | "syrk", [ c; a ], [ n; m ] ->
      Daisy_blas.Kernels.syrk ~n ~m ~alpha:(scalar 0) (data a) (data c)
  | "syr2k", [ c; a; b ], [ n; m ] ->
      Daisy_blas.Kernels.syr2k ~n ~m ~alpha:(scalar 0) (data a) (data b) (data c)
  | kern, args, dims ->
      runtime_error "unsupported library call %s/%d arrays/%d dims" kern
        (List.length args) (List.length dims)

let rec exec_nodes fr (nodes : Ir.node list) =
  List.iter
    (fun n ->
      match n with
      | Ir.Ncomp c -> exec_comp fr c
      | Ir.Ncall k -> exec_libcall fr k
      | Ir.Nloop l ->
          let env = int_env fr in
          let lo = Expr.eval env l.Ir.lo and hi = Expr.eval env l.Ir.hi in
          let saved = fr.iters in
          if l.Ir.step > 0 then begin
            let i = ref lo in
            while !i <= hi do
              Budget.tick fr.budget;
              fr.iters <- Util.SMap.add l.Ir.iter !i saved;
              exec_nodes fr l.Ir.body;
              i := !i + l.Ir.step
            done
          end
          else begin
            let i = ref lo in
            while !i >= hi do
              Budget.tick fr.budget;
              fr.iters <- Util.SMap.add l.Ir.iter !i saved;
              exec_nodes fr l.Ir.body;
              i := !i + l.Ir.step
            done
          end;
          fr.iters <- saved)
    nodes

(** [run p state] executes the body of [p] with the tree-walking oracle,
    mutating [state]. *)
let run ?(budget = Budget.unlimited ()) (p : Ir.program) (state : state) =
  exec_nodes { state; iters = Util.SMap.empty; budget } p.Ir.body

(** [run_fresh p ~sizes ...] allocates a fresh state and runs [p] in it
    (tree-walking oracle). *)
let run_fresh ?budget (p : Ir.program) ~sizes ?(scalars = []) ?init_fn () =
  let state = init p ~sizes ~scalars ?init_fn () in
  run ?budget p state;
  state

(* ------------------------------------------------------------------ *)
(* Compiled fast path                                                   *)

(** [run_compiled p state] executes [p] with the slot-based compiled
    engine ({!Compile}) — bitwise identical to {!run}, 10–100x faster. *)
let run_compiled ?budget (p : Ir.program) (state : state) =
  Compile.run ?budget p state

(** [run_compiled_fresh p ~sizes ...] — {!run_fresh} on the compiled
    engine. *)
let run_compiled_fresh ?budget (p : Ir.program) ~sizes ?(scalars = [])
    ?init_fn () =
  Compile.run_fresh ?budget p ~sizes ~scalars ?init_fn ()

(* ------------------------------------------------------------------ *)
(* Bytecode fast path                                                   *)

(** [run_bytecode p state] executes [p] with the flat-bytecode engine
    ({!Bc_exec} over {!Daisy_lir.Bytecode}) — bitwise identical to {!run},
    faster than {!run_compiled}. *)
let run_bytecode ?budget (p : Ir.program) (state : state) =
  Bc_exec.run ?budget p state

(** [run_bytecode_fresh p ~sizes ...] — {!run_fresh} on the bytecode
    engine. *)
let run_bytecode_fresh ?budget (p : Ir.program) ~sizes ?(scalars = [])
    ?init_fn () =
  Bc_exec.run_fresh ?budget p ~sizes ~scalars ?init_fn ()

(* ------------------------------------------------------------------ *)
(* Engine selection                                                     *)

(** The three semantic engines, slowest (and most obviously correct)
    first. All are bit-identical on the differential suite; {!engine}
    picks which one the {!equivalent} family runs. *)
type engine = Tree | Closure | Bytecode

let engine_of_string = function
  | "tree" -> Some Tree
  | "closure" -> Some Closure
  | "bytecode" -> Some Bytecode
  | _ -> None

let string_of_engine = function
  | Tree -> "tree"
  | Closure -> "closure"
  | Bytecode -> "bytecode"

let default_engine = ref Bytecode

(* ------------------------------------------------------------------ *)
(* Guarded runs: degrade bytecode -> closure -> tree on engine failure   *)

let fallbacks = Atomic.make 0

let compiled_fallbacks () = Atomic.get fallbacks
let reset_compiled_fallbacks () = Atomic.set fallbacks 0

let warn_fallback ~from ~to_ exn =
  let n = Atomic.fetch_and_add fallbacks 1 + 1 in
  (* per-label throttling (Diag.warn_throttled): a hot loop of bytecode
     failures cannot flood stderr, nor silence closure-engine warnings *)
  Diag.warn_throttled
    ~label:("interp_fallback:" ^ from)
    "%s engine failed (%s); falling back to %s engine (fallback #%d)" from
    (Printexc.to_string exn) to_ n

(* [Runtime_error] and [Invalid_argument] are semantic — all engines
   raise them identically for the same program — so they propagate; any
   other exception is an engine defect and triggers the next engine down
   the chain. [Budget.Exhausted] also propagates: every engine would
   exhaust too. *)
let checked_run_fresh ?budget (p : Ir.program) ~sizes ~scalars () =
  let closure_or_tree () =
    try run_compiled_fresh ?budget p ~sizes ~scalars ()
    with
    | (Runtime_error _ | Invalid_argument _ | Budget.Exhausted) as e ->
        raise e
    | e ->
        warn_fallback ~from:"closure" ~to_:"tree" e;
        run_fresh ?budget p ~sizes ~scalars ()
  in
  match !default_engine with
  | Tree -> run_fresh ?budget p ~sizes ~scalars ()
  | Closure -> closure_or_tree ()
  | Bytecode -> (
      try run_bytecode_fresh ?budget p ~sizes ~scalars ()
      with
      | (Runtime_error _ | Invalid_argument _ | Budget.Exhausted) as e ->
          raise e
      | e ->
          warn_fallback ~from:"bytecode" ~to_:"closure" e;
          closure_or_tree ())

(* ------------------------------------------------------------------ *)
(* Comparison                                                           *)

(** Maximum relative difference between parameter arrays of two states
    (locals are scratch and excluded). *)
let max_rel_diff (p : Ir.program) (s1 : state) (s2 : state) =
  List.fold_left
    (fun acc (a : Ir.array_decl) ->
      match a.Ir.storage with
      | Ir.Slocal -> acc
      | Ir.Sparam -> (
          match
            (Hashtbl.find_opt s1.arrays a.Ir.name, Hashtbl.find_opt s2.arrays a.Ir.name)
          with
          | Some t1, Some t2 ->
              let n = min (tensor_size t1) (tensor_size t2) in
              let m = ref acc in
              for i = 0 to n - 1 do
                let x = t1.data.(i) and y = t2.data.(i) in
                (* identical values (including inf = inf, nan = nan) count
                   as zero difference *)
                if not (x = y || (Float.is_nan x && Float.is_nan y)) then begin
                  let scale =
                    Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
                  in
                  m := Float.max !m (Float.abs (x -. y) /. scale)
                end
              done;
              !m
          | _ -> infinity))
    0.0 p.Ir.arrays

(** [equivalent_on ~arrays p1 p2 ~sizes] — run both programs from identical
    initial states and compare only the named arrays (for cross-language
    checks where the programs declare different temporaries). Runs on the
    compiled engine. *)
let equivalent_on ?(tol = 1e-9) ~(arrays : string list) (p1 : Ir.program)
    (p2 : Ir.program) ~sizes ?(scalars = []) () =
  let s1 = checked_run_fresh p1 ~sizes ~scalars () in
  let s2 = checked_run_fresh p2 ~sizes ~scalars () in
  List.for_all
    (fun name ->
      match (Hashtbl.find_opt s1.arrays name, Hashtbl.find_opt s2.arrays name) with
      | Some t1, Some t2 ->
          let nn = min (tensor_size t1) (tensor_size t2) in
          let ok = ref true in
          for i = 0 to nn - 1 do
            let x = t1.data.(i) and y = t2.data.(i) in
            if not (x = y || (Float.is_nan x && Float.is_nan y)) then begin
              let scale =
                Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
              in
              if Float.abs (x -. y) /. scale > tol then ok := false
            end
          done;
          !ok
      | _ -> false)
    arrays

(** [equivalent p1 p2 ~sizes] runs both programs from identical initial
    states and checks parameter arrays agree within [tol]. Runs on the
    compiled engine. *)
let equivalent ?(tol = 1e-9) (p1 : Ir.program) (p2 : Ir.program) ~sizes
    ?(scalars = []) () =
  let s1 = checked_run_fresh p1 ~sizes ~scalars () in
  let s2 = checked_run_fresh p2 ~sizes ~scalars () in
  max_rel_diff p1 s1 s2 <= tol
