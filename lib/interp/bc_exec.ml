(** Bytecode execution engine for loopir: the semantic backend of the
    flat bytecode produced by {!Daisy_lir.Bytecode.lower}.

    Where {!Compile} builds a closure tree (one heap object and one
    indirect call per IR node), this engine walks a contiguous [int array]
    with a threaded-dispatch loop: a global table of per-opcode handlers,
    each tail-calling into the next instruction — no [match] per opcode,
    no pointer chasing between body nodes. Loop iterators and evaluated
    upper bounds live in one integer register file, scalars in a float
    register file with bound flags, expression temporaries on a
    preallocated float stack sized at lowering time.

    Fused innermost loops ([FUSE] superinstructions) execute the whole
    trip count out of one closure: after a side-effect-free safety
    precheck (all operands affine, every subscript in bounds for the full
    trip, every scalar bound), the whole trip's fuel is spent upfront and
    the body runs with per-site linear index increments instead of
    re-evaluated subscripts. The RPN body is re-parsed into one
    expression tree per store and compiled to direct-indexed closures,
    with fully unrolled loops for the dominant fma / scaled-fma /
    load-op-store statements (including the register-accumulator form
    gemm and atax reduce to, guarded by an alias check). Any precheck
    shortfall falls back to the generic dispatch loop over the retained
    body — bit-identical behavior, including mid-loop errors.

    Determinism contract: identical to {!Interp.run} (the tree oracle) —
    same float operations in the same order, same bounds checks and error
    messages, same lazily-raised errors, same total fuel per loop.
    [Budget.Exhausted] surfaces at loop back-edges, except that a fused
    fast-path loop spends its whole trip at the loop head — still within
    one innermost trip of the exact engines. Differential-tested in
    [test/test_bytecode.ml].

    Fault points: ["bc_compile"] fires inside lowering, ["bc_run"] before
    execution. *)

open Daisy_support
open Istate
module Ir = Daisy_loopir.Ir
module B = Daisy_lir.Bytecode

type vm = {
  code : int array;
  iregs : int array;
  fstk : float array;  (** expression stack *)
  mutable sp : int;
  mutable flag : bool;  (** set by FCMP/NOTF, consumed by JF/JT *)
  svals : float array;
  sbound : bool array;
  snames : string array;
  names : string array;
  fconsts : float array;
  ixfs : (unit -> int) array;  (** one evaluator per ix id *)
  readers : (unit -> float) array;  (** one per site id *)
  writers : (float -> unit) array;
  callfs : (vm -> unit) array;  (** one per library call *)
  fusefs : (unit -> int) array;  (** one per fuse; returns the next pc *)
  budget : Budget.t;
}

(* ------------------------------------------------------------------ *)
(* Threaded dispatch                                                    *)

let table : (vm -> int -> unit) array =
  Array.make B.n_ops (fun _ _ -> assert false)

let step vm pc =
  (Array.unsafe_get table (Array.unsafe_get vm.code pc)) vm pc

let () =
  let open B in
  table.(op_halt) <- (fun _ _ -> ());
  table.(op_ret) <- (fun _ _ -> ());
  table.(op_loop) <-
    (fun vm pc ->
      let code = vm.code in
      let lo = (Array.unsafe_get vm.ixfs code.(pc + 3)) () in
      let hi = (Array.unsafe_get vm.ixfs code.(pc + 4)) () in
      vm.iregs.(code.(pc + 2)) <- hi;
      let st = code.(pc + 5) in
      if if st > 0 then lo <= hi else lo >= hi then begin
        Budget.tick vm.budget;
        vm.iregs.(code.(pc + 1)) <- lo;
        step vm (pc + 7)
      end
      else step vm code.(pc + 6));
  table.(op_loopbk) <-
    (fun vm pc ->
      let code = vm.code in
      let ireg = code.(pc + 1) in
      let st = code.(pc + 3) in
      let i = vm.iregs.(ireg) + st in
      let hi = vm.iregs.(code.(pc + 2)) in
      if if st > 0 then i <= hi else i >= hi then begin
        Budget.tick vm.budget;
        vm.iregs.(ireg) <- i;
        step vm code.(pc + 4)
      end
      else step vm (pc + 5));
  table.(op_fconst) <-
    (fun vm pc ->
      Array.unsafe_set vm.fstk vm.sp
        (Array.unsafe_get vm.fconsts vm.code.(pc + 1));
      vm.sp <- vm.sp + 1;
      step vm (pc + 2));
  table.(op_fscalar) <-
    (fun vm pc ->
      let slot = vm.code.(pc + 1) in
      if Array.unsafe_get vm.sbound slot then begin
        Array.unsafe_set vm.fstk vm.sp (Array.unsafe_get vm.svals slot);
        vm.sp <- vm.sp + 1;
        step vm (pc + 2)
      end
      else runtime_error "unbound scalar %s" vm.snames.(slot));
  table.(op_fload) <-
    (fun vm pc ->
      Array.unsafe_set vm.fstk vm.sp
        ((Array.unsafe_get vm.readers vm.code.(pc + 1)) ());
      vm.sp <- vm.sp + 1;
      step vm (pc + 2));
  table.(op_fstore) <-
    (fun vm pc ->
      (* pop the value first, then evaluate the destination subscripts
         (the oracle computes the rhs before the destination indices) *)
      let sp = vm.sp - 1 in
      vm.sp <- sp;
      (Array.unsafe_get vm.writers vm.code.(pc + 1))
        (Array.unsafe_get vm.fstk sp);
      step vm (pc + 2));
  table.(op_fstore_s) <-
    (fun vm pc ->
      let slot = vm.code.(pc + 1) in
      let sp = vm.sp - 1 in
      vm.sp <- sp;
      Array.unsafe_set vm.svals slot (Array.unsafe_get vm.fstk sp);
      Array.unsafe_set vm.sbound slot true;
      step vm (pc + 2));
  table.(op_fadd) <-
    (fun vm pc ->
      let sp = vm.sp in
      Array.unsafe_set vm.fstk (sp - 2)
        (Array.unsafe_get vm.fstk (sp - 2) +. Array.unsafe_get vm.fstk (sp - 1));
      vm.sp <- sp - 1;
      step vm (pc + 1));
  table.(op_fsub) <-
    (fun vm pc ->
      let sp = vm.sp in
      Array.unsafe_set vm.fstk (sp - 2)
        (Array.unsafe_get vm.fstk (sp - 2) -. Array.unsafe_get vm.fstk (sp - 1));
      vm.sp <- sp - 1;
      step vm (pc + 1));
  table.(op_fmul) <-
    (fun vm pc ->
      let sp = vm.sp in
      Array.unsafe_set vm.fstk (sp - 2)
        (Array.unsafe_get vm.fstk (sp - 2) *. Array.unsafe_get vm.fstk (sp - 1));
      vm.sp <- sp - 1;
      step vm (pc + 1));
  table.(op_fdiv) <-
    (fun vm pc ->
      let sp = vm.sp in
      Array.unsafe_set vm.fstk (sp - 2)
        (Array.unsafe_get vm.fstk (sp - 2) /. Array.unsafe_get vm.fstk (sp - 1));
      vm.sp <- sp - 1;
      step vm (pc + 1));
  table.(op_fneg) <-
    (fun vm pc ->
      let sp = vm.sp in
      Array.unsafe_set vm.fstk (sp - 1) (-.Array.unsafe_get vm.fstk (sp - 1));
      step vm (pc + 1));
  table.(op_fint) <-
    (fun vm pc ->
      Array.unsafe_set vm.fstk vm.sp
        (float_of_int ((Array.unsafe_get vm.ixfs vm.code.(pc + 1)) ()));
      vm.sp <- vm.sp + 1;
      step vm (pc + 2));
  table.(op_fintr1) <-
    (fun vm pc ->
      let sp = vm.sp in
      let x = Array.unsafe_get vm.fstk (sp - 1) in
      let k = vm.code.(pc + 1) in
      Array.unsafe_set vm.fstk (sp - 1)
        (if k = 0 then sqrt x
         else if k = 1 then exp x
         else if k = 2 then log x
         else if k = 3 then Float.abs x
         else if k = 4 then floor x
         else if k = 5 then ceil x
         else if k = 6 then sin x
         else if k = 7 then cos x
         else tanh x);
      step vm (pc + 2));
  table.(op_fintr2) <-
    (fun vm pc ->
      let sp = vm.sp in
      let x = Array.unsafe_get vm.fstk (sp - 2) in
      let y = Array.unsafe_get vm.fstk (sp - 1) in
      let k = vm.code.(pc + 1) in
      Array.unsafe_set vm.fstk (sp - 2)
        (if k = 0 then Float.pow x y
         else if k = 1 then Float.min x y
         else Float.max x y);
      vm.sp <- sp - 1;
      step vm (pc + 2));
  table.(op_fbadcall) <-
    (fun vm pc ->
      (* arguments are already evaluated, like the oracle *)
      let nargs = vm.code.(pc + 2) in
      vm.sp <- vm.sp - nargs;
      runtime_error "unknown intrinsic %s/%d" vm.names.(vm.code.(pc + 1)) nargs);
  table.(op_fcmp) <-
    (fun vm pc ->
      let sp = vm.sp in
      let x = Array.unsafe_get vm.fstk (sp - 2) in
      let y = Array.unsafe_get vm.fstk (sp - 1) in
      vm.sp <- sp - 2;
      let k = vm.code.(pc + 1) in
      vm.flag <-
        (if k = 0 then x < y
         else if k = 1 then x <= y
         else if k = 2 then x > y
         else if k = 3 then x >= y
         else if k = 4 then x = y
         else x <> y);
      step vm (pc + 2));
  table.(op_jf) <-
    (fun vm pc -> step vm (if vm.flag then pc + 2 else vm.code.(pc + 1)));
  table.(op_jt) <-
    (fun vm pc -> step vm (if vm.flag then vm.code.(pc + 1) else pc + 2));
  table.(op_jmp) <- (fun vm pc -> step vm vm.code.(pc + 1));
  table.(op_notf) <-
    (fun vm pc ->
      vm.flag <- not vm.flag;
      step vm (pc + 1));
  table.(op_callk) <-
    (fun vm pc ->
      (Array.unsafe_get vm.callfs vm.code.(pc + 1)) vm;
      step vm (pc + 2));
  table.(op_fuse) <-
    (fun vm pc -> step vm ((Array.unsafe_get vm.fusefs vm.code.(pc + 1)) ()))

(* ------------------------------------------------------------------ *)
(* Binding: sites                                                       *)

(* Readers and writers replicate [Compile.compile_read]/[compile_write]
   exactly: unknown arrays evaluate all subscripts before raising, all
   subscripts are evaluated before any bounds check, bounds are checked
   dimension by dimension with identical messages, rank-1/2 fast paths,
   and {!Istate.linear_index} for everything else. *)

let bind_reader (bc : B.t) (st : state) (ixfs : (unit -> int) array)
    (s : B.site) : unit -> float =
  let fns = Array.map (fun id -> ixfs.(id)) s.B.s_ixs in
  let name = bc.B.names.(s.B.s_array) in
  match Hashtbl.find_opt st.arrays name with
  | None ->
      fun () ->
        Array.iter (fun f -> ignore (f ())) fns;
        runtime_error "unknown array %s" name
  | Some t ->
      let dims = t.dims and data = t.data in
      if Array.length fns = 1 && Array.length dims = 1 then begin
        let f0 = fns.(0) and d0 = dims.(0) in
        fun () ->
          let i0 = f0 () in
          if i0 < 0 || i0 >= d0 then
            runtime_error "index %d out of bounds [0, %d) in dimension %d" i0
              d0 0;
          Array.unsafe_get data i0
      end
      else if Array.length fns = 2 && Array.length dims = 2 then begin
        let f0 = fns.(0) and f1 = fns.(1) in
        let d0 = dims.(0) and d1 = dims.(1) in
        fun () ->
          let i0 = f0 () in
          let i1 = f1 () in
          if i0 < 0 || i0 >= d0 then
            runtime_error "index %d out of bounds [0, %d) in dimension %d" i0
              d0 0;
          if i1 < 0 || i1 >= d1 then
            runtime_error "index %d out of bounds [0, %d) in dimension %d" i1
              d1 1;
          Array.unsafe_get data ((i0 * d1) + i1)
      end
      else begin
        let n = Array.length fns in
        let scratch = Array.make n 0 in
        fun () ->
          for k = 0 to n - 1 do
            scratch.(k) <- fns.(k) ()
          done;
          data.(linear_index dims scratch)
      end

let bind_writer (bc : B.t) (st : state) (ixfs : (unit -> int) array)
    (s : B.site) : float -> unit =
  let fns = Array.map (fun id -> ixfs.(id)) s.B.s_ixs in
  let name = bc.B.names.(s.B.s_array) in
  match Hashtbl.find_opt st.arrays name with
  | None ->
      fun _ ->
        Array.iter (fun f -> ignore (f ())) fns;
        runtime_error "unknown array %s" name
  | Some t ->
      let dims = t.dims and data = t.data in
      if Array.length fns = 1 && Array.length dims = 1 then begin
        let f0 = fns.(0) and d0 = dims.(0) in
        fun v ->
          let i0 = f0 () in
          if i0 < 0 || i0 >= d0 then
            runtime_error "index %d out of bounds [0, %d) in dimension %d" i0
              d0 0;
          Array.unsafe_set data i0 v
      end
      else if Array.length fns = 2 && Array.length dims = 2 then begin
        let f0 = fns.(0) and f1 = fns.(1) in
        let d0 = dims.(0) and d1 = dims.(1) in
        fun v ->
          let i0 = f0 () in
          let i1 = f1 () in
          if i0 < 0 || i0 >= d0 then
            runtime_error "index %d out of bounds [0, %d) in dimension %d" i0
              d0 0;
          if i1 < 0 || i1 >= d1 then
            runtime_error "index %d out of bounds [0, %d) in dimension %d" i1
              d1 1;
          Array.unsafe_set data ((i0 * d1) + i1) v
      end
      else begin
        let n = Array.length fns in
        let scratch = Array.make n 0 in
        fun v ->
          for k = 0 to n - 1 do
            scratch.(k) <- fns.(k) ()
          done;
          data.(linear_index dims scratch) <- v
      end

(* ------------------------------------------------------------------ *)
(* Binding: library calls                                               *)

let bind_call (bc : B.t) (st : state) (ixfs : (unit -> int) array)
    (ck : B.callk) : vm -> unit =
  let dimfs = Array.map (fun id -> ixfs.(id)) ck.B.ck_dims in
  let eval_dims () = Array.iter (fun f -> ignore (f ())) dimfs in
  let alpha vm =
    if ck.B.ck_alpha < 0 then 1.0
    else begin
      let sp0 = vm.sp in
      step vm ck.B.ck_alpha;
      vm.sp <- sp0;
      vm.fstk.(sp0)
    end
  in
  match
    Array.find_opt
      (fun nid -> not (Hashtbl.mem st.arrays bc.B.names.(nid)))
      ck.B.ck_args
  with
  | Some nid ->
      let name = bc.B.names.(nid) in
      fun _ ->
        eval_dims ();
        runtime_error "unknown array %s" name
  | None ->
      let data i = (Hashtbl.find st.arrays bc.B.names.(ck.B.ck_args.(i))).data in
      let kind = ck.B.ck_kind in
      if kind = 0 then begin
        let dc = data 0 and da = data 1 and db = data 2 in
        let fm = dimfs.(0) and fn = dimfs.(1) and fk = dimfs.(2) in
        fun vm ->
          let m = fm () in
          let n = fn () in
          let kk = fk () in
          let a = alpha vm in
          Daisy_blas.Kernels.gemm ~m ~n ~k:kk ~alpha:a da db dc
      end
      else if kind = 1 || kind = 2 then begin
        let dy = data 0 and da = data 1 and dx = data 2 in
        let fm = dimfs.(0) and fn = dimfs.(1) in
        let f = if kind = 1 then Daisy_blas.Kernels.gemv else Daisy_blas.Kernels.gemvt in
        fun vm ->
          let m = fm () in
          let n = fn () in
          let a = alpha vm in
          f ~m ~n ~alpha:a da dx dy
      end
      else if kind = 3 then begin
        let dc = data 0 and da = data 1 in
        let fn = dimfs.(0) and fm = dimfs.(1) in
        fun vm ->
          let n = fn () in
          let m = fm () in
          let a = alpha vm in
          Daisy_blas.Kernels.syrk ~n ~m ~alpha:a da dc
      end
      else if kind = 4 then begin
        let dc = data 0 and da = data 1 and db = data 2 in
        let fn = dimfs.(0) and fm = dimfs.(1) in
        fun vm ->
          let n = fn () in
          let m = fm () in
          let a = alpha vm in
          Daisy_blas.Kernels.syr2k ~n ~m ~alpha:a da db dc
      end
      else begin
        let kern = bc.B.names.(ck.B.ck_kernel) in
        let na = ck.B.ck_na and nd = ck.B.ck_nd in
        fun _ ->
          eval_dims ();
          runtime_error "unsupported library call %s/%d arrays/%d dims" kern na
            nd
      end

(* ------------------------------------------------------------------ *)
(* Binding: fused loops                                                 *)

(* Per-op compiled form of a fused body. Memory sites carry a current
   linear index advanced by a per-iteration delta instead of re-evaluated
   subscripts; the precheck below proves the rewrite unobservable. *)
type fop =
  | Fconst of float
  | Fscalar of int
  | Fload of int  (** msite index *)
  | Fstore of int
  | Farith of int  (** opcode *)
  | Fintr1 of int
  | Fintr2 of int

(* A fused body re-parsed from its RPN stream into statement trees
   (one per store), compiled once at bind time. Inside an eligible fused
   loop every leaf is error-free and side-effect-free, so tree evaluation
   order is unobservable and only the float operations themselves (kept
   in IR order) matter. *)
type ftree =
  | Tconst of float
  | Tscalar of int
  | Tload of int  (** msite index *)
  | Tbin of int * ftree * ftree  (** opcode *)
  | Tneg of ftree
  | Tintr1 of int * ftree
  | Tintr2 of int * ftree * ftree

type msite = {
  m_data : float array;
  m_dims : int array;
  m_ixs : (unit -> int) array;  (** subscript evaluators, for i = lo *)
  m_coeffs : int array;  (** per-dim coefficient of the fused iterator *)
}

(* coefficient of register [ireg] in an affine-or-simpler ix *)
let ireg_coeff (bc : B.t) ~ireg (ix : B.ix) : int =
  match ix with
  | B.Ix_const _ -> 0
  | B.Ix_reg r -> if r = ireg then 1 else 0
  | B.Ix_aff (off, nt) ->
      let c = ref 0 in
      for k = 0 to nt - 1 do
        if bc.B.pool.(off + 1 + (2 * k)) = ireg then
          c := !c + bc.B.pool.(off + 2 + (2 * k))
      done;
      !c
  | B.Ix_code _ -> assert false

let bind_fuse (bc : B.t) (st : state) (ixfs : (unit -> int) array)
    ~(svals : float array) ~(sbound : bool array) ~(iregs : int array)
    ~(budget : Budget.t) (fu : B.fuse) : unit -> int =
  let ireg = fu.B.fu_ireg and hireg = fu.B.fu_hireg in
  let stp = fu.B.fu_step in
  let flo = ixfs.(fu.B.fu_lo) and fhi = ixfs.(fu.B.fu_hi) in
  let body_pc = fu.B.fu_body_pc and end_pc = fu.B.fu_end_pc in
  (* --- bind-time eligibility + site table --- *)
  let msites = ref [] in
  let nmsites = ref 0 in
  let scalar_slots = ref [] in
  let ok = ref true in
  let plan =
    Array.map
      (fun (o, operand) ->
        if o = B.op_fload || o = B.op_fstore then begin
          let s = bc.B.sites.(operand) in
          (match Hashtbl.find_opt st.arrays bc.B.names.(s.B.s_array) with
          | None -> ok := false
          | Some t ->
              let rank = Array.length t.dims in
              let n = Array.length s.B.s_ixs in
              if n <> rank || rank < 1 then ok := false
              else if
                Array.exists
                  (fun id ->
                    match bc.B.ixs.(id) with
                    | B.Ix_code _ -> true
                    | _ -> false)
                  s.B.s_ixs
              then ok := false
              else
                msites :=
                  {
                    m_data = t.data;
                    m_dims = t.dims;
                    m_ixs = Array.map (fun id -> ixfs.(id)) s.B.s_ixs;
                    m_coeffs =
                      Array.map
                        (fun id -> ireg_coeff bc ~ireg bc.B.ixs.(id))
                        s.B.s_ixs;
                  }
                  :: !msites);
          let idx = !nmsites in
          incr nmsites;
          if o = B.op_fload then Fload idx else Fstore idx
        end
        else if o = B.op_fconst then Fconst bc.B.fpool.(operand)
        else if o = B.op_fscalar then begin
          scalar_slots := operand :: !scalar_slots;
          Fscalar operand
        end
        else if o = B.op_fintr1 then Fintr1 operand
        else if o = B.op_fintr2 then Fintr2 operand
        else Farith o)
      fu.B.fu_ops
  in
  let msites = Array.of_list (List.rev !msites) in
  let scalar_slots = Array.of_list !scalar_slots in
  let ok = !ok in
  let slow lo =
    Budget.tick budget;
    iregs.(ireg) <- lo;
    body_pc
  in
  if not ok then
    fun () ->
      let lo = flo () in
      let hi = fhi () in
      iregs.(hireg) <- hi;
      if if stp > 0 then lo <= hi else lo >= hi then slow lo else end_pc
  else begin
    (* per-site start index and delta, recomputed at each execution *)
    let n_ms = Array.length msites in
    let starts = Array.make (max 1 n_ms) 0 in
    let deltas = Array.make (max 1 n_ms) 0 in
    (* safe trip count: iterations t in [0, safe) have every subscript of
       every site in bounds (per-dimension linear bound arithmetic) *)
    let safe_trips trip =
      let safe = ref trip in
      for m = 0 to n_ms - 1 do
        let ms = msites.(m) in
        let rank = Array.length ms.m_dims in
        let lin = ref 0 and dl = ref 0 in
        for d = 0 to rank - 1 do
          let a = ms.m_ixs.(d) () in
          let b = ms.m_coeffs.(d) * stp in
          let s =
            if a < 0 || a >= ms.m_dims.(d) then 0
            else if b = 0 then trip
            else if b > 0 then ((ms.m_dims.(d) - 1 - a) / b) + 1
            else (a / -b) + 1
          in
          if s < !safe then safe := s;
          lin := (!lin * ms.m_dims.(d)) + a;
          dl := (!dl * ms.m_dims.(d)) + b
        done;
        starts.(m) <- !lin;
        deltas.(m) <- !dl
      done;
      !safe
    in
    (* --- statement trees: the RPN body re-parsed, one tree per store --- *)
    let stmts : (int * ftree) list =
      let stack = ref [] in
      let out = ref [] in
      let pop () =
        match !stack with
        | a :: r ->
            stack := r;
            a
        | [] -> assert false
      in
      Array.iter
        (fun f ->
          match f with
          | Fconst c -> stack := Tconst c :: !stack
          | Fscalar s -> stack := Tscalar s :: !stack
          | Fload m -> stack := Tload m :: !stack
          | Fstore m -> out := (m, pop ()) :: !out
          | Farith o ->
              if o = B.op_fneg then begin
                let a = pop () in
                stack := Tneg a :: !stack
              end
              else
                let b = pop () in
                let a = pop () in
                stack := Tbin (o, a, b) :: !stack
          | Fintr1 k ->
              let a = pop () in
              stack := Tintr1 (k, a) :: !stack
          | Fintr2 k ->
              let b = pop () in
              let a = pop () in
              stack := Tintr2 (k, a, b) :: !stack)
        plan;
      assert (!stack = []);
      List.rev !out
    in
    let is_store = Array.make (max 1 n_ms) false in
    Array.iter (function Fstore m -> is_store.(m) <- true | _ -> ()) plan;
    (* Deferring a reduction's store into a register is only exact when no
       other load can observe the store cell mid-loop: the feed load and
       the store must share one fixed cell, and every other load on the
       same array must either stand still elsewhere or walk a stride that
       misses the cell for the whole trip. Checked per execution — starts
       and deltas are runtime values. *)
    let acc_safe ~feed ~store trip =
      msites.(store).m_data == msites.(feed).m_data
      && starts.(store) = starts.(feed)
      && deltas.(store) = 0
      && deltas.(feed) = 0
      &&
      let ss = starts.(store) in
      let sd = msites.(store).m_data in
      let ok = ref true in
      for k = 0 to n_ms - 1 do
        if
          k <> feed && k <> store
          && (not is_store.(k))
          && msites.(k).m_data == sd
        then begin
          let d = deltas.(k) in
          if d = 0 then begin if starts.(k) = ss then ok := false end
          else
            let diff = ss - starts.(k) in
            if diff = 0 then ok := false
            else if
              (if d > 0 then diff > 0 else diff < 0)
              && diff mod d = 0
              && abs (diff / d) < trip
            then ok := false
        end
      done;
      !ok
    in
    (* --- fully unrolled bodies for the dominant statement shapes --- *)
    let spec : (int -> unit) option =
      (* mode 0: d3 <- d0 +. d1 *. d2            (fma)
         mode 1: d3 <- d0 +. (sv *. d1) *. d2    (scaled fma, gemm)
         mode 2: d3 <- d0 +. (d1 *. sv) *. d2
         mode 3: d3 <- d1 *. d2 +. d0            (mirrored fma)
         mode 4: d3 <- d0 -. d1 *. d2            (fms, trisolv) *)
      let fma ~mode ~sl l0 l1 l2 s3 =
        Some
          (fun trip ->
            let d0 = msites.(l0).m_data and d1 = msites.(l1).m_data in
            let d2 = msites.(l2).m_data and d3 = msites.(s3).m_data in
            let sv =
              if mode = 1 || mode = 2 then Array.unsafe_get svals sl else 0.0
            in
            if acc_safe ~feed:l0 ~store:s3 trip then begin
              let acc = ref (Array.unsafe_get d0 starts.(l0)) in
              let c1 = ref starts.(l1) and c2 = ref starts.(l2) in
              let dl1 = deltas.(l1) and dl2 = deltas.(l2) in
              (if mode = 0 then
                 for _ = 1 to trip do
                   acc :=
                     !acc
                     +. Array.unsafe_get d1 !c1 *. Array.unsafe_get d2 !c2;
                   c1 := !c1 + dl1;
                   c2 := !c2 + dl2
                 done
               else if mode = 1 then
                 for _ = 1 to trip do
                   acc :=
                     !acc
                     +. sv *. Array.unsafe_get d1 !c1
                        *. Array.unsafe_get d2 !c2;
                   c1 := !c1 + dl1;
                   c2 := !c2 + dl2
                 done
               else if mode = 2 then
                 for _ = 1 to trip do
                   acc :=
                     !acc
                     +. Array.unsafe_get d1 !c1 *. sv
                        *. Array.unsafe_get d2 !c2;
                   c1 := !c1 + dl1;
                   c2 := !c2 + dl2
                 done
               else if mode = 3 then
                 for _ = 1 to trip do
                   acc :=
                     (Array.unsafe_get d1 !c1 *. Array.unsafe_get d2 !c2)
                     +. !acc;
                   c1 := !c1 + dl1;
                   c2 := !c2 + dl2
                 done
               else
                 for _ = 1 to trip do
                   acc :=
                     !acc
                     -. Array.unsafe_get d1 !c1 *. Array.unsafe_get d2 !c2;
                   c1 := !c1 + dl1;
                   c2 := !c2 + dl2
                 done);
              Array.unsafe_set d3 starts.(s3) !acc
            end
            else begin
              let c0 = ref starts.(l0) and c1 = ref starts.(l1) in
              let c2 = ref starts.(l2) and c3 = ref starts.(s3) in
              let dl0 = deltas.(l0) and dl1 = deltas.(l1) in
              let dl2 = deltas.(l2) and dl3 = deltas.(s3) in
              if mode = 0 then
                for _ = 1 to trip do
                  Array.unsafe_set d3 !c3
                    (Array.unsafe_get d0 !c0
                    +. Array.unsafe_get d1 !c1 *. Array.unsafe_get d2 !c2);
                  c0 := !c0 + dl0;
                  c1 := !c1 + dl1;
                  c2 := !c2 + dl2;
                  c3 := !c3 + dl3
                done
              else if mode = 1 then
                for _ = 1 to trip do
                  Array.unsafe_set d3 !c3
                    (Array.unsafe_get d0 !c0
                    +. sv *. Array.unsafe_get d1 !c1
                       *. Array.unsafe_get d2 !c2);
                  c0 := !c0 + dl0;
                  c1 := !c1 + dl1;
                  c2 := !c2 + dl2;
                  c3 := !c3 + dl3
                done
              else if mode = 2 then
                for _ = 1 to trip do
                  Array.unsafe_set d3 !c3
                    (Array.unsafe_get d0 !c0
                    +. Array.unsafe_get d1 !c1 *. sv
                       *. Array.unsafe_get d2 !c2);
                  c0 := !c0 + dl0;
                  c1 := !c1 + dl1;
                  c2 := !c2 + dl2;
                  c3 := !c3 + dl3
                done
              else if mode = 3 then
                for _ = 1 to trip do
                  Array.unsafe_set d3 !c3
                    ((Array.unsafe_get d1 !c1 *. Array.unsafe_get d2 !c2)
                    +. Array.unsafe_get d0 !c0);
                  c0 := !c0 + dl0;
                  c1 := !c1 + dl1;
                  c2 := !c2 + dl2;
                  c3 := !c3 + dl3
                done
              else
                for _ = 1 to trip do
                  Array.unsafe_set d3 !c3
                    (Array.unsafe_get d0 !c0
                    -. Array.unsafe_get d1 !c1 *. Array.unsafe_get d2 !c2);
                  c0 := !c0 + dl0;
                  c1 := !c1 + dl1;
                  c2 := !c2 + dl2;
                  c3 := !c3 + dl3
                done
            end)
      in
      (* d2 <- d0 op d1, accumulator form when the store feeds load 0 *)
      let bin2 ~o l0 l1 s2 =
        Some
          (fun trip ->
            let d0 = msites.(l0).m_data and d1 = msites.(l1).m_data in
            let d2 = msites.(s2).m_data in
            if acc_safe ~feed:l0 ~store:s2 trip then begin
              let acc = ref (Array.unsafe_get d0 starts.(l0)) in
              let c1 = ref starts.(l1) in
              let dl1 = deltas.(l1) in
              (if o = B.op_fadd then
                 for _ = 1 to trip do
                   acc := !acc +. Array.unsafe_get d1 !c1;
                   c1 := !c1 + dl1
                 done
               else if o = B.op_fsub then
                 for _ = 1 to trip do
                   acc := !acc -. Array.unsafe_get d1 !c1;
                   c1 := !c1 + dl1
                 done
               else if o = B.op_fmul then
                 for _ = 1 to trip do
                   acc := !acc *. Array.unsafe_get d1 !c1;
                   c1 := !c1 + dl1
                 done
               else
                 for _ = 1 to trip do
                   acc := !acc /. Array.unsafe_get d1 !c1;
                   c1 := !c1 + dl1
                 done);
              Array.unsafe_set d2 starts.(s2) !acc
            end
            else begin
              let c0 = ref starts.(l0) and c1 = ref starts.(l1) in
              let c2 = ref starts.(s2) in
              let dl0 = deltas.(l0) and dl1 = deltas.(l1) in
              let dl2 = deltas.(s2) in
              if o = B.op_fadd then
                for _ = 1 to trip do
                  Array.unsafe_set d2 !c2
                    (Array.unsafe_get d0 !c0 +. Array.unsafe_get d1 !c1);
                  c0 := !c0 + dl0;
                  c1 := !c1 + dl1;
                  c2 := !c2 + dl2
                done
              else if o = B.op_fsub then
                for _ = 1 to trip do
                  Array.unsafe_set d2 !c2
                    (Array.unsafe_get d0 !c0 -. Array.unsafe_get d1 !c1);
                  c0 := !c0 + dl0;
                  c1 := !c1 + dl1;
                  c2 := !c2 + dl2
                done
              else if o = B.op_fmul then
                for _ = 1 to trip do
                  Array.unsafe_set d2 !c2
                    (Array.unsafe_get d0 !c0 *. Array.unsafe_get d1 !c1);
                  c0 := !c0 + dl0;
                  c1 := !c1 + dl1;
                  c2 := !c2 + dl2
                done
              else
                for _ = 1 to trip do
                  Array.unsafe_set d2 !c2
                    (Array.unsafe_get d0 !c0 /. Array.unsafe_get d1 !c1);
                  c0 := !c0 + dl0;
                  c1 := !c1 + dl1;
                  c2 := !c2 + dl2
                done
            end)
      in
      (* d <- [c *.] (load0 +/- load1 +/- ... +/- loadk), the stencil
         shape: a left-deep add/sub chain of loads, optionally scaled or
         divided by a constant. wrap 0: bare sum, 1: c *. sum,
         2: sum *. c, 3: sum /. c (seidel) *)
      let stencil sm t =
        let rec flat t acc =
          match t with
          | Tload m -> Some ((m, false) :: acc)
          | Tbin (o, rest, Tload m) when o = B.op_fadd || o = B.op_fsub ->
              flat rest ((m, o = B.op_fsub) :: acc)
          | _ -> None
        in
        let wrap, cc, inner =
          match t with
          | Tbin (o, Tconst c, u) when o = B.op_fmul -> (1, c, u)
          | Tbin (o, u, Tconst c) when o = B.op_fmul -> (2, c, u)
          | Tbin (o, u, Tconst c) when o = B.op_fdiv -> (3, c, u)
          | u -> (0, 0.0, u)
        in
        match flat inner [] with
        | Some leaves when List.length leaves >= 2 ->
            let leaves = Array.of_list leaves in
            let nl = Array.length leaves in
            let lm = Array.map fst leaves in
            let lsub = Array.map snd leaves in
            let ldata = Array.map (fun m -> msites.(m).m_data) lm in
            let lpos = Array.make nl 0 in
            let ldelta = Array.make nl 0 in
            Some
              (fun trip ->
                for l = 0 to nl - 1 do
                  lpos.(l) <- starts.(lm.(l));
                  ldelta.(l) <- deltas.(lm.(l))
                done;
                let ds = msites.(sm).m_data in
                let cs = ref starts.(sm) in
                let dls = deltas.(sm) in
                let d0 = Array.unsafe_get ldata 0 in
                for _ = 1 to trip do
                  let s =
                    ref (Array.unsafe_get d0 (Array.unsafe_get lpos 0))
                  in
                  for l = 1 to nl - 1 do
                    let v =
                      Array.unsafe_get
                        (Array.unsafe_get ldata l)
                        (Array.unsafe_get lpos l)
                    in
                    s := (if Array.unsafe_get lsub l then !s -. v else !s +. v)
                  done;
                  Array.unsafe_set ds !cs
                    (if wrap = 0 then !s
                     else if wrap = 1 then cc *. !s
                     else if wrap = 2 then !s *. cc
                     else !s /. cc);
                  for l = 0 to nl - 1 do
                    Array.unsafe_set lpos l
                      (Array.unsafe_get lpos l + Array.unsafe_get ldelta l)
                  done;
                  cs := !cs + dls
                done)
        | _ -> None
      in
      match stmts with
      | [ (s3, Tbin (oa, Tload l0, Tbin (om, Tload l1, Tload l2))) ]
        when oa = B.op_fadd && om = B.op_fmul ->
          fma ~mode:0 ~sl:0 l0 l1 l2 s3
      | [
       ( s3,
         Tbin
           (oa, Tload l0, Tbin (om, Tbin (om2, Tscalar sl, Tload l1), Tload l2))
       );
      ]
        when oa = B.op_fadd && om = B.op_fmul && om2 = B.op_fmul ->
          fma ~mode:1 ~sl l0 l1 l2 s3
      | [
       ( s3,
         Tbin
           (oa, Tload l0, Tbin (om, Tbin (om2, Tload l1, Tscalar sl), Tload l2))
       );
      ]
        when oa = B.op_fadd && om = B.op_fmul && om2 = B.op_fmul ->
          fma ~mode:2 ~sl l0 l1 l2 s3
      | [ (s3, Tbin (oa, Tbin (om, Tload l1, Tload l2), Tload l0)) ]
        when oa = B.op_fadd && om = B.op_fmul ->
          fma ~mode:3 ~sl:0 l0 l1 l2 s3
      | [ (s3, Tbin (oa, Tload l0, Tbin (om, Tload l1, Tload l2))) ]
        when oa = B.op_fsub && om = B.op_fmul ->
          fma ~mode:4 ~sl:0 l0 l1 l2 s3
      | [ (s2, Tbin (o, Tload l0, Tload l1)) ]
        when o = B.op_fadd || o = B.op_fsub || o = B.op_fmul || o = B.op_fdiv
        ->
          bin2 ~o l0 l1 s2
      | [ (sm, t) ] -> stencil sm t
      | _ -> None
    in
    (* --- generic fused body: statement trees compiled to closures with
       direct-indexed leaves (leaf operands of a binop are inlined into
       its closure, so a k-node tree costs well under k calls) --- *)
    let body : int -> unit =
      match spec with
      | Some f -> f
      | None ->
          let curs = Array.map (fun _ -> ref 0) msites in
          let rec comp (t : ftree) : unit -> float =
            match t with
            | Tconst c -> fun () -> c
            | Tscalar s -> fun () -> Array.unsafe_get svals s
            | Tload m ->
                let d = msites.(m).m_data and c = curs.(m) in
                fun () -> Array.unsafe_get d !c
            | Tneg (Tload m) ->
                let d = msites.(m).m_data and c = curs.(m) in
                fun () -> -.Array.unsafe_get d !c
            | Tneg a ->
                let fa = comp a in
                fun () -> -.fa ()
            | Tbin (o, a, b) -> comp_bin o a b
            | Tintr1 (k, a) ->
                let fa = comp a in
                if k = 0 then fun () -> sqrt (fa ())
                else if k = 1 then fun () -> exp (fa ())
                else if k = 2 then fun () -> log (fa ())
                else if k = 3 then fun () -> Float.abs (fa ())
                else if k = 4 then fun () -> floor (fa ())
                else if k = 5 then fun () -> ceil (fa ())
                else if k = 6 then fun () -> sin (fa ())
                else if k = 7 then fun () -> cos (fa ())
                else fun () -> tanh (fa ())
            | Tintr2 (k, a, b) ->
                let fa = comp a in
                let fb = comp b in
                if k = 0 then fun () -> Float.pow (fa ()) (fb ())
                else if k = 1 then fun () -> Float.min (fa ()) (fb ())
                else fun () -> Float.max (fa ()) (fb ())
          and comp_bin o a b =
            match (a, b) with
            | Tload ma, Tload mb ->
                let da = msites.(ma).m_data and ca = curs.(ma) in
                let db = msites.(mb).m_data and cb = curs.(mb) in
                if o = B.op_fadd then fun () ->
                  Array.unsafe_get da !ca +. Array.unsafe_get db !cb
                else if o = B.op_fsub then fun () ->
                  Array.unsafe_get da !ca -. Array.unsafe_get db !cb
                else if o = B.op_fmul then fun () ->
                  Array.unsafe_get da !ca *. Array.unsafe_get db !cb
                else fun () ->
                  Array.unsafe_get da !ca /. Array.unsafe_get db !cb
            | Tconst cc, Tload mb ->
                let db = msites.(mb).m_data and cb = curs.(mb) in
                if o = B.op_fadd then fun () -> cc +. Array.unsafe_get db !cb
                else if o = B.op_fsub then fun () ->
                  cc -. Array.unsafe_get db !cb
                else if o = B.op_fmul then fun () ->
                  cc *. Array.unsafe_get db !cb
                else fun () -> cc /. Array.unsafe_get db !cb
            | Tload ma, Tconst cc ->
                let da = msites.(ma).m_data and ca = curs.(ma) in
                if o = B.op_fadd then fun () -> Array.unsafe_get da !ca +. cc
                else if o = B.op_fsub then fun () ->
                  Array.unsafe_get da !ca -. cc
                else if o = B.op_fmul then fun () ->
                  Array.unsafe_get da !ca *. cc
                else fun () -> Array.unsafe_get da !ca /. cc
            | Tscalar s, Tload mb ->
                let db = msites.(mb).m_data and cb = curs.(mb) in
                if o = B.op_fadd then fun () ->
                  Array.unsafe_get svals s +. Array.unsafe_get db !cb
                else if o = B.op_fsub then fun () ->
                  Array.unsafe_get svals s -. Array.unsafe_get db !cb
                else if o = B.op_fmul then fun () ->
                  Array.unsafe_get svals s *. Array.unsafe_get db !cb
                else fun () ->
                  Array.unsafe_get svals s /. Array.unsafe_get db !cb
            | Tload ma, Tscalar s ->
                let da = msites.(ma).m_data and ca = curs.(ma) in
                if o = B.op_fadd then fun () ->
                  Array.unsafe_get da !ca +. Array.unsafe_get svals s
                else if o = B.op_fsub then fun () ->
                  Array.unsafe_get da !ca -. Array.unsafe_get svals s
                else if o = B.op_fmul then fun () ->
                  Array.unsafe_get da !ca *. Array.unsafe_get svals s
                else fun () ->
                  Array.unsafe_get da !ca /. Array.unsafe_get svals s
            | a, Tload mb ->
                let fa = comp a in
                let db = msites.(mb).m_data and cb = curs.(mb) in
                if o = B.op_fadd then fun () ->
                  fa () +. Array.unsafe_get db !cb
                else if o = B.op_fsub then fun () ->
                  fa () -. Array.unsafe_get db !cb
                else if o = B.op_fmul then fun () ->
                  fa () *. Array.unsafe_get db !cb
                else fun () -> fa () /. Array.unsafe_get db !cb
            | Tload ma, b ->
                let da = msites.(ma).m_data and ca = curs.(ma) in
                let fb = comp b in
                if o = B.op_fadd then fun () ->
                  Array.unsafe_get da !ca +. fb ()
                else if o = B.op_fsub then fun () ->
                  Array.unsafe_get da !ca -. fb ()
                else if o = B.op_fmul then fun () ->
                  Array.unsafe_get da !ca *. fb ()
                else fun () -> Array.unsafe_get da !ca /. fb ()
            | Tconst cc, b ->
                let fb = comp b in
                if o = B.op_fadd then fun () -> cc +. fb ()
                else if o = B.op_fsub then fun () -> cc -. fb ()
                else if o = B.op_fmul then fun () -> cc *. fb ()
                else fun () -> cc /. fb ()
            | a, Tconst cc ->
                let fa = comp a in
                if o = B.op_fadd then fun () -> fa () +. cc
                else if o = B.op_fsub then fun () -> fa () -. cc
                else if o = B.op_fmul then fun () -> fa () *. cc
                else fun () -> fa () /. cc
            | Tscalar s, b ->
                let fb = comp b in
                if o = B.op_fadd then fun () ->
                  Array.unsafe_get svals s +. fb ()
                else if o = B.op_fsub then fun () ->
                  Array.unsafe_get svals s -. fb ()
                else if o = B.op_fmul then fun () ->
                  Array.unsafe_get svals s *. fb ()
                else fun () -> Array.unsafe_get svals s /. fb ()
            | a, Tscalar s ->
                let fa = comp a in
                if o = B.op_fadd then fun () ->
                  fa () +. Array.unsafe_get svals s
                else if o = B.op_fsub then fun () ->
                  fa () -. Array.unsafe_get svals s
                else if o = B.op_fmul then fun () ->
                  fa () *. Array.unsafe_get svals s
                else fun () -> fa () /. Array.unsafe_get svals s
            | _ ->
                let fa = comp a in
                let fb = comp b in
                if o = B.op_fadd then fun () -> fa () +. fb ()
                else if o = B.op_fsub then fun () -> fa () -. fb ()
                else if o = B.op_fmul then fun () -> fa () *. fb ()
                else fun () -> fa () /. fb ()
          in
          let stmt_fns =
            Array.of_list
              (List.map
                 (fun (m, t) ->
                   let d = msites.(m).m_data and c = curs.(m) in
                   let f = comp t in
                   fun () -> Array.unsafe_set d !c (f ()))
                 stmts)
          in
          let nst = Array.length stmt_fns in
          if nst = 1 then begin
            let f = Array.unsafe_get stmt_fns 0 in
            fun trip ->
              for m = 0 to n_ms - 1 do
                curs.(m) := starts.(m)
              done;
              for _ = 1 to trip do
                f ();
                for m = 0 to n_ms - 1 do
                  let c = Array.unsafe_get curs m in
                  c := !c + Array.unsafe_get deltas m
                done
              done
          end
          else
            fun trip ->
              for m = 0 to n_ms - 1 do
                curs.(m) := starts.(m)
              done;
              for _ = 1 to trip do
                for k = 0 to nst - 1 do
                  (Array.unsafe_get stmt_fns k) ()
                done;
                for m = 0 to n_ms - 1 do
                  let c = Array.unsafe_get curs m in
                  c := !c + Array.unsafe_get deltas m
                done
              done
    in
    fun () ->
      let lo = flo () in
      let hi = fhi () in
      iregs.(hireg) <- hi;
      if if stp > 0 then lo <= hi else lo >= hi then begin
        let trip =
          if stp > 0 then ((hi - lo) / stp) + 1 else ((lo - hi) / -stp) + 1
        in
        let bound = ref true in
        for k = 0 to Array.length scalar_slots - 1 do
          if not sbound.(scalar_slots.(k)) then bound := false
        done;
        (* subscripts are evaluated against the register file, so the
           iterator register must hold lo; invisible outside execution *)
        iregs.(ireg) <- lo;
        if (not !bound) || safe_trips trip < trip then slow lo
        else begin
          (* The whole nest is budgeted upfront: one [spend] equals the
             trip's worth of back-edge ticks, and [Exhausted] fires at
             the loop head — within one innermost trip of the exact
             engines. With fuel secured the body is exception-free, so
             it carries no per-iteration tick; the wall-clock deadline
             is polled once per entry instead of every 4096 ticks. *)
          Budget.spend budget trip;
          Util.check_deadline ();
          body trip;
          iregs.(ireg) <- lo + ((trip - 1) * stp);
          end_pc
        end
      end
      else end_pc
  end

(* ------------------------------------------------------------------ *)
(* Program binding and execution                                        *)

(** [compile p state] lowers [p] to bytecode against [state]'s sizes and
    binds it to [state]'s storage. The returned thunk executes the
    program, mutating [state]; it may be invoked repeatedly as long as
    [state]'s arrays are not reallocated. [budget] semantics match
    {!Compile.compile}: ticked once per executed loop iteration, baked
    into the engine, shared across invocations. *)
let compile ?(budget = Budget.unlimited ()) (p : Ir.program) (st : state) :
    unit -> unit =
  let bc = B.lower ~sizes:st.sizes p in
  let iregs = Array.make (max 1 bc.B.n_iregs) 0 in
  let xstack = Array.make (max 1 bc.B.max_xstack) 0 in
  let ixfs =
    Array.map
      (B.binder ~pool:bc.B.pool ~xpool:bc.B.xpool ~names:bc.B.names
         ~regs:iregs ~xstack)
      bc.B.ixs
  in
  let nscalars = Array.length bc.B.scalar_names in
  let svals = Array.make (max 1 nscalars) 0.0 in
  let sbound = Array.make (max 1 nscalars) false in
  let readers = Array.map (bind_reader bc st ixfs) bc.B.sites in
  let writers = Array.map (bind_writer bc st ixfs) bc.B.sites in
  let callfs = Array.map (bind_call bc st ixfs) bc.B.calls in
  let fusefs =
    Array.map
      (bind_fuse bc st ixfs ~svals ~sbound ~iregs ~budget)
      bc.B.fuses
  in
  let vm =
    {
      code = bc.B.code;
      iregs;
      fstk = Array.make (max 1 bc.B.max_stack) 0.0;
      sp = 0;
      flag = false;
      svals;
      sbound;
      snames = bc.B.scalar_names;
      names = bc.B.names;
      fconsts = bc.B.fpool;
      ixfs;
      readers;
      writers;
      callfs;
      fusefs;
      budget;
    }
  in
  fun () ->
    Fault.inject "bc_run";
    for i = 0 to nscalars - 1 do
      match Util.SMap.find_opt bc.B.scalar_names.(i) st.scalars with
      | Some v ->
          svals.(i) <- v;
          sbound.(i) <- true
      | None ->
          svals.(i) <- 0.0;
          sbound.(i) <- false
    done;
    (* write slot scalars back into the map even when execution raises, so
       a post-mortem state looks like the oracle's *)
    let writeback () =
      let m = ref st.scalars in
      for i = 0 to nscalars - 1 do
        if sbound.(i) then
          m := Util.SMap.add bc.B.scalar_names.(i) svals.(i) !m
      done;
      st.scalars <- !m
    in
    vm.sp <- 0;
    vm.flag <- false;
    Fun.protect ~finally:writeback (fun () -> step vm 0)

(** [run p state] — lower, bind and execute once, mutating [state]. *)
let run ?budget (p : Ir.program) (st : state) = (compile ?budget p st) ()

(** [run_fresh p ~sizes ...] — allocate a fresh state and run [p] in it. *)
let run_fresh ?budget (p : Ir.program) ~sizes ?(scalars = []) ?init_fn () =
  let st = init p ~sizes ~scalars ?init_fn () in
  run ?budget p st;
  st
