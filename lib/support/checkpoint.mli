(** Crash-safe run state: atomic file replacement, a versioned checksummed
    run journal, and cooperative interrupt handling.

    The journal is what makes long-running work resumable: the search and
    seeding loops persist a snapshot at every natural boundary (per
    generation, per nest, per epoch), each update replacing the journal
    file atomically — so a crash, OOM kill or SIGKILL at {e any} instant
    leaves the previous complete snapshot on disk. See
    [docs/robustness.md], "Checkpoint & resume". *)

exception Interrupted of int
(** An interrupt (SIGINT/SIGTERM, or {!request_interrupt}) was observed by
    {!check_interrupt}; carries the signal number (conventional exit code:
    128 + signal). *)

val install_signal_handlers : unit -> unit
(** Route SIGINT and SIGTERM to the interrupt flag. The first signal only
    sets the flag (the run flushes its snapshot and exits at the next
    polling point); a second signal of the same kind falls through to the
    default behavior and kills the process. *)

val request_interrupt : int -> unit
(** Set the interrupt flag as if signal [sg] had arrived. *)

val reset_interrupt : unit -> unit
val interrupted : unit -> bool

val check_interrupt : unit -> unit
(** Raise {!Interrupted} iff the flag is set. Polled by the search loops
    right {e after} flushing their checkpoint snapshot. *)

val atomic_write : ?fault_label:string -> string -> (out_channel -> unit) -> unit
(** [atomic_write path writer] — run [writer] on a temp file in the same
    directory, fsync, and rename it over [path]. On any exception the temp
    file is removed and [path] is untouched. [?fault_label] names a
    {!Daisy_support.Fault} point injected after the temp file is written
    but before the rename — an injected crash loses the update in flight,
    never the previous file. *)

val fingerprint : (string * string) list -> string
(** Hash a canonical key/value rendering of an invocation's configuration
    (16 hex digits) — stored in the journal header and required to match
    on resume. *)

type journal

val open_journal :
  path:string -> kind:string -> fingerprint:string -> resume:bool -> unit ->
  journal
(** [resume:false] — a fresh empty journal (the file is written on the
    first update). [resume:true] — load [path]; raises
    [Daisy_support.Diag.Error] with a one-line message when the file is
    missing, has a bad magic line, an unsupported version, a different
    [kind] (another subcommand), or a fingerprint that does not match this
    invocation. Individually corrupt records are skipped and reported via
    {!warnings} (re-doing that slice of work is always safe). *)

val path : journal -> string
val warnings : journal -> string list

val find : journal -> string -> string list option
val keys : journal -> string list
(** All record keys, sorted. *)

val set : journal -> string -> string list -> unit
(** Insert/replace one record and persist the journal atomically. Every
    persist passes through the ["checkpoint_save"] fault point.
    Thread-safe (pool workers checkpoint concurrently). Keys and payload
    lines must not contain newlines. *)

val set_many : journal -> remove:string list -> (string * string list) list -> unit
(** Remove and insert records in one atomic persist. *)

val remove : journal -> string -> unit

val delete : journal -> unit
(** Drop all records and delete the journal file (a completed run consumes
    its checkpoint). *)
