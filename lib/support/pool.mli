(** A reusable domain-based work pool for deterministic parallel evaluation.

    The pool runs batches of independent tasks across OCaml 5 domains.
    [map] preserves input order, so a parallel map returns exactly the list
    the sequential [List.map] would — callers that only require their task
    function to be pure get bit-identical results at any job count.

    The submitting thread participates in executing its own batch, which
    makes nested submissions safe: a task running on a pool worker may
    itself call [map] on the same pool without risking deadlock. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns a pool of [jobs] workers: [jobs - 1] domains plus
    the submitting thread. [jobs <= 1] creates a pool that runs everything
    inline. *)

val jobs : t -> int
(** Total worker count (including the submitting thread). *)

val map : ?pool:t -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?pool f xs] is [List.map f xs], evaluated in parallel when [pool]
    is given. Order is preserved. Failure is fail-fast: the first raising
    task poisons the batch — tasks already claimed by a worker run to
    completion, not-yet-claimed tasks are skipped — and the exception of
    the lowest-index failing task is re-raised with its backtrace
    (deterministic at any job count, because task indices are claimed in
    increasing order). Every pool task passes through the ["pool_task"]
    {!Daisy_support.Fault} injection point. *)

val map_array : ?pool:t -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}. *)

val iter : ?pool:t -> ('a -> unit) -> 'a list -> unit
(** [iter ?pool f xs] runs [f] on every element, in parallel when [pool] is
    given. *)

val map_supervised :
  ?pool:t ->
  ?deadline_s:float ->
  ?fatal:(exn -> bool) ->
  ('a -> 'b) ->
  'a list ->
  ('b, exn) result list
(** Supervised {!map}: each task runs under an optional per-task
    wall-clock deadline of [deadline_s] seconds (cooperative —
    registered via [Util.set_deadline] on the executing domain and
    polled by [Budget.tick] inside every engine, raising
    [Util.Deadline_exceeded]). A task that raises is retried exactly
    once with a fresh deadline; a second failure yields [Error e]
    in its slot instead of poisoning the batch, so the caller can
    quarantine the input deterministically. Exceptions for which
    [fatal] is true (default: none) are neither retried nor captured —
    they poison the batch exactly like {!map}. Order is preserved. *)

val shutdown : t -> unit
(** Join all worker domains. Must not be called while a [map] is in flight;
    further submissions run inline. Idempotent. *)

val with_pool : jobs:int -> (t option -> 'a) -> 'a
(** [with_pool ~jobs f] calls [f (Some pool)] with a fresh pool and shuts
    it down afterwards (also on exceptions); [jobs <= 1] calls [f None] so
    callers fall back to their sequential path without spawning domains. *)
