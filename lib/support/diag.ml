(** Diagnostics: structured errors and warnings carrying a {!Loc.t}.

    All user-facing failures in the toolchain are raised as {!exception:Error}
    so drivers can render them uniformly. *)

type severity = Err | Warn | Note

type t = { severity : severity; loc : Loc.t; message : string }

exception Error of t

let pp_severity ppf = function
  | Err -> Fmt.string ppf "error"
  | Warn -> Fmt.string ppf "warning"
  | Note -> Fmt.string ppf "note"

let pp ppf { severity; loc; message } =
  Fmt.pf ppf "%a: %a: %s" Loc.pp loc pp_severity severity message

let to_string t = Fmt.str "%a" pp t

let make ?(severity = Err) ?(loc = Loc.dummy) fmt =
  Fmt.kstr (fun message -> { severity; loc; message }) fmt

(** [errorf ~loc fmt ...] raises {!exception:Error} with a formatted message. *)
let errorf ?(loc = Loc.dummy) fmt =
  Fmt.kstr (fun message -> raise (Error { severity = Err; loc; message })) fmt

let () =
  Printexc.register_printer (function
    | Error d -> Some (to_string d)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Per-label throttled warnings.

   Hot failure paths (engine fallbacks, corrupt-store queries, serve
   retries) must not flood stderr, but one label throttling must not
   silence another: each label keeps its own counter and emits on
   power-of-two call counts (1, 2, 4, 8, ...). The counters are exposed
   so tests can assert "exactly one warning" without scraping stderr.
   Mutex-guarded: warnings fire from pool worker domains. *)

let warn_lock = Mutex.create ()

type warn_counter = { mutable calls : int; mutable emitted : int }

let warn_tbl : (string, warn_counter) Hashtbl.t = Hashtbl.create 8

let warn_throttled ~label fmt =
  Fmt.kstr
    (fun message ->
      let emit_as =
        Mutex.lock warn_lock;
        let c =
          match Hashtbl.find_opt warn_tbl label with
          | Some c -> c
          | None ->
              let c = { calls = 0; emitted = 0 } in
              Hashtbl.add warn_tbl label c;
              c
        in
        c.calls <- c.calls + 1;
        let emit = c.calls land (c.calls - 1) = 0 in
        if emit then c.emitted <- c.emitted + 1;
        let n = c.calls in
        Mutex.unlock warn_lock;
        if emit then Some n else None
      in
      match emit_as with
      | None -> ()
      | Some n ->
          let message =
            if n = 1 then message
            else Printf.sprintf "%s (occurrence #%d of '%s')" message n label
          in
          Fmt.epr "%a@." pp { severity = Warn; loc = Loc.dummy; message })
    fmt

let warn_calls label =
  Mutex.lock warn_lock;
  let n =
    match Hashtbl.find_opt warn_tbl label with Some c -> c.calls | None -> 0
  in
  Mutex.unlock warn_lock;
  n

let warn_emitted label =
  Mutex.lock warn_lock;
  let n =
    match Hashtbl.find_opt warn_tbl label with Some c -> c.emitted | None -> 0
  in
  Mutex.unlock warn_lock;
  n

let reset_warn ?label () =
  Mutex.lock warn_lock;
  (match label with
  | Some l -> Hashtbl.remove warn_tbl l
  | None -> Hashtbl.reset warn_tbl);
  Mutex.unlock warn_lock
