(** Crash-safe run state (see the interface).

    Two layers:

    - {!atomic_write}: write-temp / fsync / rename file replacement. A
      crash at any instant leaves either the old file or the new file on
      disk, never a torn mixture.
    - a {e journal}: a mutex-guarded key → payload-lines store persisted
      through {!atomic_write} on every update, with DAISYDB-style
      framing — a versioned header carrying a config fingerprint, and an
      FNV-1a-64 checksum per record.

    The interrupt flag cooperates with SIGINT/SIGTERM: the handler only
    sets an atomic flag (async-signal-safe), and the long-running loops
    (per generation, per nest, per epoch) poll {!check_interrupt} right
    after flushing their snapshot, so an interrupted run always leaves a
    resumable journal behind. *)

exception Interrupted of int  (** the signal number that stopped the run *)

let () =
  Printexc.register_printer (function
    | Interrupted sg ->
        Some (Printf.sprintf "Daisy_support.Checkpoint.Interrupted(signal %d)" sg)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Interrupt flag + signal handlers *)

let interrupt_flag = Atomic.make 0  (* 0 = not interrupted, else signal no. *)

let request_interrupt sg = Atomic.set interrupt_flag sg
let reset_interrupt () = Atomic.set interrupt_flag 0
let interrupted () = Atomic.get interrupt_flag <> 0

let check_interrupt () =
  let sg = Atomic.get interrupt_flag in
  if sg <> 0 then raise (Interrupted sg)

let install_signal_handlers () =
  (* [os] is the conventional signal number (2/15) — OCaml's [Sys.sigint]
     etc. are internal negative codes, useless in a 128+N exit status *)
  let install sg os =
    try
      Sys.set_signal sg
        (Sys.Signal_handle
           (fun _ ->
             request_interrupt os;
             (* a second signal of the same kind falls through to the
                default behavior: the user can always kill a stuck run *)
             Sys.set_signal sg Sys.Signal_default))
    with Invalid_argument _ | Sys_error _ -> ()  (* not supported here *)
  in
  install Sys.sigint 2;
  install Sys.sigterm 15

(* ------------------------------------------------------------------ *)
(* Atomic file replacement *)

let atomic_write ?fault_label (path : string) (writer : out_channel -> unit) :
    unit =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc = open_out tmp in
  match
    writer oc;
    Option.iter Fault.inject fault_label;
    flush oc;
    Unix.fsync (Unix.descr_of_out_channel oc)
  with
  | () ->
      close_out oc;
      Sys.rename tmp path
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      Printexc.raise_with_backtrace e bt

(* ------------------------------------------------------------------ *)
(* Config fingerprints *)

let fingerprint (kvs : (string * string) list) : string =
  kvs
  |> List.map (fun (k, v) -> Printf.sprintf "%S=%S" k v)
  |> String.concat "\n"
  |> Util.fnv1a64

(* ------------------------------------------------------------------ *)
(* The journal *)

let magic = "DAISYCKPT"
let version = 1

type journal = {
  path : string;
  kind : string;
  fp : string;
  lock : Mutex.t;
  mutable records : string list Util.SMap.t;
  mutable load_warnings : string list;
}

let path j = j.path
let warnings j = j.load_warnings

(* On-disk layout (line-based; payload lines are prefixed with "| " so a
   payload can never be confused with framing):

   {v
   DAISYCKPT 1 <kind>
   fingerprint <16 hex>
   record <16-hex FNV-1a-64 of the payload joined by \n> <key>
   | <payload line>
   | <payload line>
   end
   ...
   v} *)

let render j : string =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%s %d %s\n" magic version j.kind);
  Buffer.add_string buf (Printf.sprintf "fingerprint %s\n" j.fp);
  Util.SMap.iter
    (fun key lines ->
      Buffer.add_string buf
        (Printf.sprintf "record %s %s\n"
           (Util.fnv1a64 (String.concat "\n" lines))
           key);
      List.iter (fun l -> Buffer.add_string buf (Printf.sprintf "| %s\n" l)) lines;
      Buffer.add_string buf "end\n")
    j.records;
  Buffer.contents buf

(* With [j.lock] held: persist the whole journal atomically. Every save
   passes through the ["checkpoint_save"] fault point (inside
   [atomic_write], after the temp file is written but before the rename),
   so an injected crash loses at most the update in flight — exactly like
   a real kill. *)
let persist_locked j =
  atomic_write ~fault_label:"checkpoint_save" j.path (fun oc ->
      output_string oc (render j))

let locked j f =
  Mutex.lock j.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock j.lock) f

let find j key = locked j (fun () -> Util.SMap.find_opt key j.records)
let keys j = locked j (fun () -> List.map fst (Util.SMap.bindings j.records))

let set_many j ~(remove : string list) (sets : (string * string list) list) :
    unit =
  let sanitize (key, lines) =
    if String.contains key '\n' then
      invalid_arg "Checkpoint: record key contains a newline";
    List.iter
      (fun l ->
        if String.contains l '\n' then
          invalid_arg "Checkpoint: payload line contains a newline")
      lines;
    (key, lines)
  in
  let sets = List.map sanitize sets in
  locked j (fun () ->
      j.records <-
        List.fold_left (fun m k -> Util.SMap.remove k m) j.records remove;
      j.records <-
        List.fold_left (fun m (k, v) -> Util.SMap.add k v m) j.records sets;
      persist_locked j)

let set j key lines = set_many j ~remove:[] [ (key, lines) ]
let remove j key = set_many j ~remove:[ key ] []

let delete j =
  locked j (fun () ->
      j.records <- Util.SMap.empty;
      try Sys.remove j.path with Sys_error _ -> ())

let strip_prefix p s =
  let lp = String.length p in
  if String.length s >= lp && String.equal (String.sub s 0 lp) p then
    Some (String.sub s lp (String.length s - lp))
  else None

let parse_file ~path ~kind ~fp (text : string) :
    string list Util.SMap.t * string list =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let n = Array.length lines in
  if n = 0 || String.trim lines.(0) = "" then
    Diag.errorf "%s: empty file is not a daisy checkpoint" path;
  (match String.split_on_char ' ' lines.(0) with
  | [ m; v; k ] when String.equal m magic ->
      (match int_of_string_opt v with
      | Some ver when ver = version -> ()
      | _ ->
          Diag.errorf
            "%s: unsupported checkpoint version %S (this build reads %d)" path
            v version);
      if not (String.equal k kind) then
        Diag.errorf
          "%s: checkpoint was written by 'daisyc %s', not 'daisyc %s' — \
           refusing to resume"
          path k kind
  | _ ->
      Diag.errorf "%s: not a daisy checkpoint (bad magic line %S)" path
        lines.(0));
  (if n < 2 then Diag.errorf "%s: truncated checkpoint header" path
   else
     match strip_prefix "fingerprint " lines.(1) with
     | Some stored when String.equal (String.trim stored) fp -> ()
     | Some stored ->
         Diag.errorf
           "%s: checkpoint fingerprint %s does not match this invocation \
            (%s) — same files, sizes, engine and budgets are required to \
            resume"
           path (String.trim stored) fp
     | None -> Diag.errorf "%s: missing fingerprint line" path);
  let warnings = ref [] in
  let warn fmt =
    Printf.ksprintf
      (fun m -> warnings := Printf.sprintf "%s: %s" path m :: !warnings)
      fmt
  in
  let records = ref Util.SMap.empty in
  let i = ref 2 in
  while !i < n do
    let line = lines.(!i) in
    if String.trim line = "" then incr i
    else
      match strip_prefix "record " line with
      | None ->
          warn "line %d: expected 'record <checksum> <key>', got %S — skipping"
            (!i + 1) line;
          incr i
      | Some rest ->
          let ck, key =
            match String.index_opt rest ' ' with
            | Some sp ->
                ( String.sub rest 0 sp,
                  String.sub rest (sp + 1) (String.length rest - sp - 1) )
            | None -> (rest, "")
          in
          let start = !i + 1 in
          let j = ref start in
          let body = ref [] in
          while
            !j < n
            &&
            match strip_prefix "| " lines.(!j) with
            | Some payload ->
                body := payload :: !body;
                true
            | None -> false
          do
            incr j
          done;
          if !j >= n || not (String.equal lines.(!j) "end") then begin
            warn "record %S (line %d): truncated (no 'end') — skipping" key
              (!i + 1);
            i := !j
          end
          else begin
            let body = List.rev !body in
            let expected = Util.fnv1a64 (String.concat "\n" body) in
            if String.equal ck expected then
              records := Util.SMap.add key body !records
            else
              warn "record %S (line %d): checksum mismatch — skipping" key
                (!i + 1);
            i := !j + 1
          end
  done;
  (!records, List.rev !warnings)

let open_journal ~path ~kind ~fingerprint:fp ~resume () : journal =
  let j =
    {
      path;
      kind;
      fp;
      lock = Mutex.create ();
      records = Util.SMap.empty;
      load_warnings = [];
    }
  in
  if resume then begin
    if not (Sys.file_exists path) then
      Diag.errorf
        "%s: no checkpoint to resume from (run once with --checkpoint to \
         create one)"
        path;
    let text =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let records, warns = parse_file ~path ~kind ~fp text in
    j.records <- records;
    j.load_warnings <- warns
  end;
  j
