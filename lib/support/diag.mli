(** Diagnostics: structured errors and warnings carrying a {!Loc.t}. All
    user-facing failures are raised as {!exception:Error}. *)

type severity = Err | Warn | Note

type t = { severity : severity; loc : Loc.t; message : string }

exception Error of t

val pp_severity : severity Fmt.t
val pp : t Fmt.t
val to_string : t -> string

val make :
  ?severity:severity -> ?loc:Loc.t -> ('a, Format.formatter, unit, t) format4 -> 'a

val errorf : ?loc:Loc.t -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!exception:Error} with a formatted message. *)

val warn_throttled : label:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Emit a warning to stderr, throttled {e per label}: each label keeps
    its own call counter and only the power-of-two calls (1st, 2nd, 4th,
    8th, ...) print, so a hot loop of failures on one label neither
    floods stderr nor silences warnings of other labels. Thread-safe. *)

val warn_calls : string -> int
(** Calls recorded for a label by {!warn_throttled} (including
    suppressed ones) — lets tests assert warning behaviour without
    scraping stderr. *)

val warn_emitted : string -> int
(** Warnings actually printed for a label. *)

val reset_warn : ?label:string -> unit -> unit
(** Reset one label's counters, or all of them. *)
