(** Greedy minimization of failing inputs — the engine behind the
    quarantine reproducer shrinker ([Daisy_scheduler.Quarantine]).

    Generic over the element type: the scheduler instantiates it twice,
    once over recipe steps and once over loop-body nodes, to reduce a
    crashing (program, recipe) pair to a smallest failing reproducer. *)

val list :
  ?max_checks:int -> still_fails:('a list -> bool) -> 'a list -> 'a list
(** [list ~still_fails xs] — assuming [still_fails xs], return a sublist
    (order preserved) that still satisfies [still_fails], greedily removing
    chunks of halving size until no single element can be removed. The
    predicate is called at most [max_checks] times (default 1000); an
    exception inside the predicate counts as "no longer failing", so the
    shrinker itself never raises. *)
