(** Small general-purpose helpers shared across the toolchain. *)

module SMap : Map.S with type key = string
module SSet : Set.S with type elt = string
module IMap : Map.S with type key = int
module ISet : Set.S with type elt = int

val gcd : int -> int -> int
val lcm : int -> int -> int

val pow : int -> int -> int
(** [pow base e] for non-negative [e]. *)

val permutations : 'a list -> 'a list list
(** All permutations (intended for small lists). *)

val pairs : 'a list -> ('a * 'a) list
(** All unordered pairs of distinct positions. *)

val sum_by : ('a -> int) -> 'a list -> int
val sum_byf : ('a -> float) -> 'a list -> float
val geomean : float list -> float
val mean : float list -> float
val take : int -> 'a list -> 'a list
val drop : int -> 'a list -> 'a list
val span : ('a -> bool) -> 'a list -> 'a list * 'a list
val list_index_of : ('a -> 'b -> bool) -> 'a -> 'b list -> int option

val dedup : eq:('a -> 'a -> bool) -> 'a list -> 'a list
(** Remove duplicates, keeping first occurrences (O(n^2)). *)

val fresh_name : string -> SSet.t -> string
(** [fresh_name base taken] — [base], or [base_0], [base_1], ... *)

val fnv1a64 : string -> string
(** FNV-1a 64-bit hash, rendered as 16 hex digits (the framing checksum
    of the database and checkpoint formats). *)

val monotonic_s : unit -> float
(** Wall-clock seconds, clamped to be non-decreasing across calls (and
    across domains) so deadline arithmetic survives clock
    discontinuities. The only place the toolchain reads wall time. *)

exception Deadline_exceeded
(** Raised by {!check_deadline} (polled from [Budget.tick], i.e. from
    inside every engine) when the current domain's evaluation deadline
    has passed. *)

val set_deadline : float option -> unit
(** Set or clear the absolute deadline ({!monotonic_s} seconds) for
    evaluation work on the calling domain. *)

val check_deadline : unit -> unit
(** Raise {!Deadline_exceeded} iff this domain has a deadline and it has
    passed. Cheap when no deadline is set. *)

val with_deadline : float option -> (unit -> 'a) -> 'a
(** [with_deadline (Some s) f] runs [f] with a deadline [s] seconds from
    now on this domain, clearing it afterwards; [None] is just [f ()]. *)

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide (idempotent). A peer hanging up
    mid-write then surfaces as [Unix_error (EPIPE, _, _)] at the write
    site instead of killing the process — mandatory before serving
    sockets. *)

val retry_eintr : (unit -> 'a) -> 'a
(** Run a syscall wrapper, retrying as long as it fails with
    [Unix_error (EINTR, _, _)] (a signal arrived mid-call). *)

val read_retry : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.read] with EINTR retry. *)

val really_read : Unix.file_descr -> bytes -> int -> int -> bool
(** [really_read fd buf off len] — read exactly [len] bytes (EINTR-safe,
    looping over short reads); [false] iff end-of-stream arrived first. *)

val write_all : Unix.file_descr -> bytes -> int -> int -> unit
(** Write exactly [len] bytes (EINTR-safe, looping over short writes).
    Raises [Unix_error (EPIPE, _, _)] if the peer has hung up (with
    {!ignore_sigpipe} in effect). *)

val pp_si : float Fmt.t
(** Engineering-friendly float formatting for report tables. *)
