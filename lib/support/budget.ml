(** Step budgets for candidate evaluation (see the interface).

    A budget is a mutable fuel counter; engines call {!tick} once per
    executed loop iteration. The check is a decrement and a branch, so a
    budgeted run costs the same as an unbudgeted one to within noise.
    {!unlimited} budgets start at [max_int] fuel — at one tick per
    nanosecond that is ~292 years, so they never exhaust in practice but
    still use the exact same code path as finite budgets. *)

type t = { mutable fuel : int }

exception Exhausted

let make ~steps = { fuel = max 0 steps }
let unlimited () = { fuel = max_int }

(* Wall-clock deadlines piggyback on the fuel counter: every engine ticks
   once per iteration, so polling the domain deadline every 4096 ticks
   bounds a supervised evaluation's overrun without a per-iteration clock
   read. [Util.check_deadline] is a DLS load when no deadline is set. *)
let tick b =
  b.fuel <- b.fuel - 1;
  if b.fuel < 0 then raise Exhausted;
  if b.fuel land 4095 = 0 then Util.check_deadline ()

let spend b n =
  b.fuel <- b.fuel - max 0 n;
  if b.fuel < 0 then raise Exhausted

let remaining b = max 0 b.fuel
let exhausted b = b.fuel < 0

let () =
  Printexc.register_printer (function
    | Exhausted -> Some "Daisy_support.Budget.Exhausted (evaluation step budget exhausted)"
    | _ -> None)
