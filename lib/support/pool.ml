(** Domain-based work pool (see the interface for the contract).

    Design: one shared FIFO of {e batches}; each batch owns an index cursor
    into its task array. Workers (and any thread blocked in [map]) claim
    the next unclaimed index of the front batch, release the lock, run the
    task, and report completion. A thread that submitted a batch keeps
    claiming indices of {e its own} batch first and only sleeps when every
    index is claimed but some are still running elsewhere — so a submitter
    always makes progress even when all domains are busy, which is what
    makes nested [map] calls deadlock-free.

    Failure poisons a batch: when a task reports failure, the batch's
    unclaimed suffix is skipped (accounted as completed) so the batch
    drains fast. Claimed tasks still run to completion, and claims are
    handed out in strictly increasing index order, so the lowest-index
    failure is always recorded before the batch finishes — which is what
    lets [map] re-raise the first error deterministically. *)

type batch = {
  run : int -> bool;  (** execute task [i]; [false] = failed; must not raise *)
  size : int;
  mutable next : int;  (** next unclaimed index *)
  mutable completed : int;
}

type t = {
  n_workers : int;
  mutex : Mutex.t;
  work : Condition.t;  (** new batch available, or shutdown *)
  finished : Condition.t;  (** some task completed *)
  pending : batch Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.n_workers

(* All claim/complete bookkeeping happens with [t.mutex] held. *)

let claim_any t : (batch * int) option =
  let rec go () =
    if Queue.is_empty t.pending then None
    else
      let b = Queue.peek t.pending in
      if b.next >= b.size then begin
        (* exhausted by its submitter while still queued *)
        ignore (Queue.pop t.pending);
        go ()
      end
      else begin
        let i = b.next in
        b.next <- i + 1;
        if b.next >= b.size then ignore (Queue.pop t.pending);
        Some (b, i)
      end
  in
  go ()

let complete t b =
  b.completed <- b.completed + 1;
  if b.completed >= b.size then Condition.broadcast t.finished

let run_claimed t b i =
  Mutex.unlock t.mutex;
  let ok = b.run i in
  Mutex.lock t.mutex;
  if not ok then begin
    (* Poison: skip the not-yet-claimed suffix of this batch. Already
       claimed tasks run to completion regardless. *)
    let skipped = b.size - b.next in
    b.next <- b.size;
    b.completed <- b.completed + skipped
  end;
  complete t b

let worker t =
  Mutex.lock t.mutex;
  let rec loop () =
    match claim_any t with
    | Some (b, i) ->
        run_claimed t b i;
        loop ()
    | None ->
        if t.stop then Mutex.unlock t.mutex
        else begin
          Condition.wait t.work t.mutex;
          loop ()
        end
  in
  loop ()

let create ~jobs =
  let n_workers = max 1 jobs in
  let t =
    {
      n_workers;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      pending = Queue.create ();
      stop = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (n_workers - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

(** With [t.mutex] held: enqueue [b] and participate until every task of
    [b] has completed. *)
let run_batch_locked t b =
  Queue.push b t.pending;
  Condition.broadcast t.work;
  let rec help () =
    if b.completed >= b.size then Mutex.unlock t.mutex
    else if b.next < b.size then begin
      let i = b.next in
      b.next <- i + 1;
      run_claimed t b i;
      help ()
    end
    else begin
      Condition.wait t.finished t.mutex;
      help ()
    end
  in
  help ()

(** Submit [b] and participate until every task of [b] has completed. *)
let run_batch t b =
  Mutex.lock t.mutex;
  if t.stop then begin
    (* pool already shut down: degrade to inline execution (still
       fail-fast — stop at the first failed task) *)
    Mutex.unlock t.mutex;
    let i = ref 0 in
    let ok = ref true in
    while !ok && !i < b.size do
      ok := b.run !i;
      incr i
    done
  end
  else run_batch_locked t b

let map_array ?pool f arr =
  match pool with
  | None -> Array.map f arr
  | Some t when t.n_workers <= 1 -> Array.map f arr
  | Some t ->
      let n = Array.length arr in
      if n = 0 then [||]
      else begin
        let results = Array.make n None in
        let b =
          {
            run =
              (fun i ->
                match
                  Fault.inject "pool_task";
                  f arr.(i)
                with
                | v ->
                    results.(i) <- Some (Ok v);
                    true
                | exception e ->
                    results.(i) <- Some (Error (e, Printexc.get_raw_backtrace ()));
                    false);
            size = n;
            next = 0;
            completed = 0;
          }
        in
        run_batch t b;
        (* A poisoned batch leaves [None] in its skipped suffix, so scan
           for the lowest-index error before unwrapping. *)
        let first_error = ref None in
        for i = n - 1 downto 0 do
          match results.(i) with
          | Some (Error (e, bt)) -> first_error := Some (e, bt)
          | _ -> ()
        done;
        match !first_error with
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None ->
            Array.map
              (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
              results
      end

let map ?pool f xs =
  match pool with
  | None -> List.map f xs
  | Some _ -> Array.to_list (map_array ?pool f (Array.of_list xs))

let iter ?pool f xs =
  match pool with
  | None -> List.iter f xs
  | Some _ -> ignore (map ?pool f xs)

(* ------------------------------------------------------------------ *)
(* Supervision: per-task wall-clock deadlines with retry-once semantics.

   A deadline cannot preempt an OCaml domain, so it is cooperative: the
   task's deadline is registered in the executing domain's DLS slot
   ([Util.set_deadline]) and every engine polls it from [Budget.tick] —
   a supervised evaluation raises [Util.Deadline_exceeded] within 4096
   iterations of its deadline passing. *)

let map_supervised ?pool ?deadline_s ?(fatal = fun _ -> false) f xs =
  let attempt x = Util.with_deadline deadline_s (fun () -> f x) in
  let supervised x =
    match attempt x with
    | v -> Ok v
    | exception e when not (fatal e) -> (
        (* transient failure: retry exactly once, with a fresh deadline *)
        match attempt x with
        | v -> Ok v
        | exception e2 when not (fatal e2) -> Error e2)
  in
  (* fatal exceptions escape [supervised] and poison the batch — the
     ordinary fail-fast [map] semantics *)
  map ?pool supervised xs

let with_pool ~jobs f =
  if jobs <= 1 then f None
  else
    let t = create ~jobs in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f (Some t))
