(** Labeled fault-injection points for robustness testing.

    Production code marks interesting failure sites with
    [Fault.inject "label"]; tests (or the [DAISY_FAULT] environment
    variable) arm a label with a trigger, and the next matching call
    raises {!exception:Injected}. Unarmed points cost one atomic load, so
    the hooks ship in production code paths.

    Injection points in the tree today: ["interp_compile"] (compiled
    interpreter entry), ["trace_compile"] (compiled trace engine entry),
    ["pool_task"] (every pool-executed task), ["db_load"] (every database
    entry parsed from disk), ["ann_build"] (every ANN index page written
    to disk), ["ann_query"] (every ANN index query). See
    docs/robustness.md.

    Triggers:
    - [always] — fire on every call;
    - [nth:N] — fire on the [N]th call at that point (1-based), once;
    - [prob:P:SEED] — fire each call with probability [P], drawn from a
      deterministic stream derived from [SEED] ({!Daisy_support.Rng}).

    [DAISY_FAULT] holds a comma-separated list of [label=trigger] specs
    and is read once at startup, e.g.
    [DAISY_FAULT="trace_compile=nth:3,db_load=prob:0.1:ci"]. *)

exception Injected of string
(** Raised by {!inject} with the point's label. *)

val inject : string -> unit
(** [inject label] raises {!exception:Injected} iff [label] is armed and
    its trigger fires on this call; otherwise does nothing. *)

val fires : string -> bool
(** Like {!inject} but returns whether the trigger fired instead of
    raising — for sites that degrade in place rather than unwind. *)

val configure : string -> unit
(** Arm points from a [label=trigger,...] spec (the [DAISY_FAULT]
    syntax). Raises [Invalid_argument] on a malformed spec. *)

val arm_always : string -> unit
val arm_nth : string -> int -> unit
(** [arm_nth label n] fires on the [n]th call, exactly once. *)

val arm_prob : string -> p:float -> seed:string -> unit
(** Fire each call with probability [p] from a deterministic seeded
    stream. *)

val disarm : string -> unit
val clear : unit -> unit
(** Disarm every point and reset all counters. *)

val armed : string -> bool
val calls : string -> int
(** Calls seen at an armed point (0 once disarmed/cleared). *)

val fired : string -> int
(** Times the point fired. *)
