(** Deterministic pseudo-random streams (splitmix64). Every stochastic
    component draws from a named stream, so runs are bit-reproducible. *)

type t

val create : int -> t
val of_string : string -> t
(** Derive a stream deterministically from a name (FNV-1a). *)

val state : t -> int64
(** The complete stream state — persisting it checkpoints the stream. *)

val set_state : t -> int64 -> unit
(** Rewind/advance a stream in place to a saved {!state}. *)

val restore : int64 -> t
(** A fresh stream positioned at a saved {!state}: [restore (state t)]
    continues exactly where [t] was. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [\[0, n)]; requires [n > 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val split : t -> string -> t
(** Derive an independent child stream. *)

val choose : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
