(** Fault injection for robustness testing (see the interface).

    A global table maps point labels to triggers. The fast path —
    {!inject} at an unarmed point — is one atomic load, so shipping the
    injection points in production code costs nothing measurable. All
    slow-path bookkeeping is mutex-guarded: points may fire from pool
    worker domains. *)

type trigger =
  | Always
  | Nth of int  (** fire on the [n]th call (1-based), exactly once *)
  | Prob of float * Rng.t  (** seeded coin per call *)

type point = { mutable trigger : trigger; mutable calls : int; mutable fired : int }

exception Injected of string

let lock = Mutex.create ()
let points : (string, point) Hashtbl.t = Hashtbl.create 8

(* true iff any point is armed — the fast path of [inject] *)
let enabled = Atomic.make false

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let arm label trigger =
  locked (fun () ->
      Hashtbl.replace points label { trigger; calls = 0; fired = 0 };
      Atomic.set enabled true)

let arm_always label = arm label Always
let arm_nth label n = arm label (Nth (max 1 n))

let arm_prob label ~p ~seed =
  arm label (Prob (p, Rng.of_string ("fault-" ^ label ^ "-" ^ seed)))

let disarm label =
  locked (fun () ->
      Hashtbl.remove points label;
      if Hashtbl.length points = 0 then Atomic.set enabled false)

let clear () =
  locked (fun () ->
      Hashtbl.reset points;
      Atomic.set enabled false)

let armed label = locked (fun () -> Hashtbl.mem points label)
let calls label = locked (fun () -> match Hashtbl.find_opt points label with Some p -> p.calls | None -> 0)
let fired label = locked (fun () -> match Hashtbl.find_opt points label with Some p -> p.fired | None -> 0)

(** [fires label] — record one call at [label]; true iff the armed trigger
    fires on this call. *)
let fires label =
  if not (Atomic.get enabled) then false
  else
    locked (fun () ->
        match Hashtbl.find_opt points label with
        | None -> false
        | Some pt ->
            pt.calls <- pt.calls + 1;
            let hit =
              match pt.trigger with
              | Always -> true
              | Nth n -> pt.calls = n && pt.fired = 0
              | Prob (p, rng) -> Rng.float rng < p
            in
            if hit then pt.fired <- pt.fired + 1;
            hit)

let inject label = if fires label then raise (Injected label)

(* ------------------------------------------------------------------ *)
(* Configuration parsing: "label=trigger,label=trigger" with trigger one
   of "always" | "nth:N" | "prob:P:SEED".                               *)

let parse_trigger label spec =
  match String.split_on_char ':' spec with
  | [ "always" ] -> Always
  | [ "nth"; n ] -> (
      match int_of_string_opt n with
      | Some n when n >= 1 -> Nth n
      | _ -> invalid_arg (Printf.sprintf "fault %s: nth wants a positive integer, got %S" label n))
  | "prob" :: p :: rest -> (
      let seed = String.concat ":" rest in
      match float_of_string_opt p with
      | Some p when p >= 0.0 && p <= 1.0 ->
          Prob (p, Rng.of_string ("fault-" ^ label ^ "-" ^ seed))
      | _ -> invalid_arg (Printf.sprintf "fault %s: prob wants a probability in [0,1], got %S" label p))
  | _ ->
      invalid_arg
        (Printf.sprintf "fault %s: unknown trigger %S (always | nth:N | prob:P:SEED)" label spec)

let configure s =
  String.split_on_char ',' s
  |> List.iter (fun item ->
         let item = String.trim item in
         if item <> "" then
           match String.index_opt item '=' with
           | Some i when i > 0 ->
               let label = String.sub item 0 i in
               let spec = String.sub item (i + 1) (String.length item - i - 1) in
               arm label (parse_trigger label spec)
           | Some _ ->
               invalid_arg (Printf.sprintf "fault spec %S: empty label" item)
           | None ->
               invalid_arg (Printf.sprintf "fault spec %S: expected label=trigger" item))

(* Arm from the environment so test runs (CI: DAISY_FAULT=...) exercise
   the degradation paths without code changes. *)
let () =
  match Sys.getenv_opt "DAISY_FAULT" with
  | Some s when String.trim s <> "" -> configure s
  | _ -> ()

let () =
  Printexc.register_printer (function
    | Injected label -> Some (Printf.sprintf "Daisy_support.Fault.Injected(%S)" label)
    | _ -> None)
