(** Greedy list minimization for failing-input reduction (see the
    interface).

    The algorithm is a bounded greedy variant of delta debugging: starting
    from the full failing list, repeatedly try to remove chunks (halving
    the chunk size down to single elements) and keep any removal after
    which the input still fails, until a whole pass at chunk size 1
    removes nothing. The result is [1-minimal] for monotone predicates:
    removing any single remaining element makes the failure disappear —
    and for arbitrary predicates it is still a failing sublist no larger
    than the input. *)

let list ?(max_checks = 1_000) ~(still_fails : 'a list -> bool)
    (xs : 'a list) : 'a list =
  let checks = ref 0 in
  let check ys =
    if !checks >= max_checks then false
    else begin
      incr checks;
      (* a predicate that itself blows up counts as "does not fail the
         same way": never let the shrinker crash the caller *)
      try still_fails ys with _ -> false
    end
  in
  let remove_chunk xs start len =
    List.filteri (fun i _ -> i < start || i >= start + len) xs
  in
  let rec pass xs chunk removed_any =
    (* one sweep at the current chunk size, left to right *)
    let rec sweep xs start removed_any =
      if start >= List.length xs then (xs, removed_any)
      else
        let candidate = remove_chunk xs start chunk in
        if List.length candidate < List.length xs && check candidate then
          (* keep the removal; retry the same start position *)
          sweep candidate start true
        else sweep xs (start + chunk) removed_any
    in
    let xs, removed_any = sweep xs 0 removed_any in
    if chunk > 1 then pass xs (max 1 (chunk / 2)) removed_any
    else if removed_any && !checks < max_checks then
      (* restart at size-1 granularity until a fixpoint *)
      pass xs 1 false
    else xs
  in
  match xs with
  | [] -> []
  | _ -> pass xs (max 1 (List.length xs / 2)) false
