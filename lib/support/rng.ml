(** Deterministic pseudo-random streams (splitmix64).

    Every stochastic component in the toolchain (variant generation,
    evolutionary search, the Tiramisu-like model noise) draws from a named
    stream so runs are bit-reproducible. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(** [of_string s] derives a stream deterministically from a name (FNV-1a). *)
let of_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  { state = !h }

(* The whole stream state is one int64, so checkpointing a search means
   persisting a single word; [set_state]/[restore] resume the stream at
   exactly the draw it was interrupted at. *)
let state t = t.state
let set_state t s = t.state <- s
let restore s = { state = s }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)
let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* mask to OCaml's non-negative int range (62 bits) *)
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod n

(** [float t] is uniform in [\[0, 1)]. *)
let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** [split t name] derives an independent child stream. *)
let split t name =
  let child = of_string name in
  child.state <- Int64.logxor child.state (next_int64 t);
  child

(** [choose t xs] picks a uniform element of the non-empty list [xs]. *)
let choose t xs =
  match xs with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(** [shuffle t xs] is a Fisher-Yates shuffle of [xs]. *)
let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
