(** Small general-purpose helpers shared across the toolchain. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)
module IMap = Map.Make (Int)
module ISet = Set.Make (Int)

let rec gcd a b =
  let a = abs a and b = abs b in
  if b = 0 then a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (a * b) / gcd a b

(** [pow base e] for non-negative [e]. *)
let rec pow base e =
  if e < 0 then invalid_arg "Util.pow"
  else if e = 0 then 1
  else
    let h = pow base (e / 2) in
    if e mod 2 = 0 then h * h else h * h * base

(** [permutations xs] enumerates all permutations of [xs] (lexicographic in
    input order). Intended for small lists (stride-minimization search). *)
let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) xs in
          List.map (fun p -> x :: p) (permutations rest))
        xs

(** [pairs xs] is all unordered pairs of distinct positions in [xs]. *)
let pairs xs =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go xs

let sum_by f xs = List.fold_left (fun acc x -> acc + f x) 0 xs
let sum_byf f xs = List.fold_left (fun acc x -> acc +. f x) 0.0 xs

let geomean xs =
  match xs with
  | [] -> nan
  | _ ->
      let n = float_of_int (List.length xs) in
      exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. n)

let mean xs =
  match xs with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(** [take n xs] is the first [n] elements of [xs] (or all of them). *)
let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec drop n = function
  | xs when n <= 0 -> xs
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

(** [span p xs] splits [xs] into the longest prefix satisfying [p] and the
    remainder. *)
let span p xs =
  let rec go acc = function
    | x :: rest when p x -> go (x :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go [] xs

let list_index_of eq x xs =
  let rec go i = function
    | [] -> None
    | y :: rest -> if eq x y then Some i else go (i + 1) rest
  in
  go 0 xs

(** [dedup ~eq xs] removes duplicates, keeping first occurrences. O(n^2);
    fine for the short lists used here. *)
let dedup ~eq xs =
  List.fold_left
    (fun acc x -> if List.exists (eq x) acc then acc else x :: acc)
    [] xs
  |> List.rev

(** Fresh-name generation: [fresh_name base taken] returns [base] or
    [base_0], [base_1], ... — the first not in [taken]. *)
let fresh_name base taken =
  if not (SSet.mem base taken) then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s_%d" base i in
      if SSet.mem candidate taken then go (i + 1) else candidate
    in
    go 0

(** FNV-1a 64-bit hash of a string, rendered as 16 hex digits — the
    framing checksum shared by the database and checkpoint formats. *)
let fnv1a64 (s : string) : string =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

(* ------------------------------------------------------------------ *)
(* Monotonic wall clock and per-domain evaluation deadlines.

   [Unix.gettimeofday] can jump backwards (NTP slew, VM migration); all
   deadline accounting in the toolchain goes through [monotonic_s], which
   clamps the clock to be non-decreasing, so an elapsed-time difference
   is never negative and a deadline never un-expires. The clamp state is
   shared across domains under a mutex — this is the one place wall
   time is read. *)

let clock_lock = Mutex.create ()
let clock_last = ref neg_infinity

let monotonic_s () : float =
  Mutex.lock clock_lock;
  let now = Unix.gettimeofday () in
  let t = if now > !clock_last then now else !clock_last in
  clock_last := t;
  Mutex.unlock clock_lock;
  t

exception Deadline_exceeded

(* Absolute deadline (monotonic seconds) of the evaluation task currently
   running on this domain; [nan] = none. Stored per domain so pool
   workers supervise their own tasks independently. *)
let deadline_key : float Domain.DLS.key = Domain.DLS.new_key (fun () -> nan)

let set_deadline = function
  | None -> Domain.DLS.set deadline_key nan
  | Some d -> Domain.DLS.set deadline_key d

let check_deadline () =
  let d = Domain.DLS.get deadline_key in
  if (not (Float.is_nan d)) && monotonic_s () >= d then
    raise Deadline_exceeded

(** [with_deadline d f] — run [f] with a deadline of [d] seconds from now
    on this domain (cleared afterwards); [None] runs unconstrained.
    Engines poll {!check_deadline} from [Budget.tick], so any budgeted
    evaluation raises {!Deadline_exceeded} soon after the wall-clock
    budget runs out. *)
let with_deadline (d : float option) (f : unit -> 'a) : 'a =
  match d with
  | None -> f ()
  | Some s ->
      set_deadline (Some (monotonic_s () +. max 0.0 s));
      Fun.protect ~finally:(fun () -> set_deadline None) (fun () ->
          check_deadline ();
          f ())

let () =
  Printexc.register_printer (function
    | Deadline_exceeded ->
        Some "Daisy_support.Util.Deadline_exceeded (evaluation wall-clock deadline exceeded)"
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* SIGPIPE hygiene and EINTR-safe IO — the serving layer's substrate.

   A daemon talking to clients over sockets must survive two classic
   Unix hazards: a peer hanging up mid-write (SIGPIPE kills the whole
   process by default) and signals interrupting slow syscalls (EINTR
   surfacing as [Unix_error] from reads/writes that should simply be
   retried). Every socket read/write in the toolchain goes through the
   helpers below. *)

let sigpipe_ignored = ref false

let ignore_sigpipe () =
  if not !sigpipe_ignored then begin
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    sigpipe_ignored := true
  end

let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let read_retry fd buf off len = retry_eintr (fun () -> Unix.read fd buf off len)

let really_read fd buf off len =
  let rec go off len =
    if len <= 0 then true
    else
      let n = read_retry fd buf off len in
      if n = 0 then false else go (off + n) (len - n)
  in
  go off len

let write_all fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = retry_eintr (fun () -> Unix.write fd buf off len) in
      go (off + n) (len - n)
    end
  in
  go off len

(** Format a float with engineering-friendly precision for report tables. *)
let pp_si ppf v =
  let a = Float.abs v in
  if a = 0.0 then Fmt.pf ppf "0"
  else if a >= 1e9 then Fmt.pf ppf "%.2fG" (v /. 1e9)
  else if a >= 1e6 then Fmt.pf ppf "%.2fM" (v /. 1e6)
  else if a >= 1e3 then Fmt.pf ppf "%.2fk" (v /. 1e3)
  else if a >= 1.0 then Fmt.pf ppf "%.2f" v
  else if a >= 1e-3 then Fmt.pf ppf "%.2fm" (v *. 1e3)
  else Fmt.pf ppf "%.2fu" (v *. 1e6)
