(** Step budgets: fuel counters that bound the work of one candidate
    evaluation.

    Every interpreter and trace engine accepts an optional budget and
    calls {!tick} once per executed loop iteration; when the fuel runs
    out the engine raises {!exception:Exhausted} instead of running
    forever. The scheduler maps exhaustion to [infinity] fitness
    ({!Daisy_scheduler.Evolve}), so one pathological candidate cannot
    hang a search (see docs/robustness.md for the full contract).

    A budget is single-use mutable state: allocate a fresh one per
    evaluation and do not share it across domains. *)

type t

exception Exhausted
(** Raised by {!tick}/{!spend} when the fuel goes negative. Once raised,
    every further tick on the same budget raises again. *)

val make : steps:int -> t
(** A budget of [steps] loop iterations ([steps <= 0] exhausts on the
    first tick). *)

val unlimited : unit -> t
(** A fresh effectively-infinite budget ([max_int] fuel) — the default of
    every engine entry point. *)

val tick : t -> unit
(** Consume one step; raises {!exception:Exhausted} when none remain.
    Every 4096th tick also polls the calling domain's wall-clock deadline
    ({!Daisy_support.Util.check_deadline}), so a supervised evaluation
    raises [Util.Deadline_exceeded] soon after its deadline passes. *)

val spend : t -> int -> unit
(** Consume [n] steps at once (negative [n] is treated as 0). *)

val remaining : t -> int
(** Fuel left, clamped to 0. *)

val exhausted : t -> bool
