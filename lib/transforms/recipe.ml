(** Optimization recipes: serializable transformation sequences applied to a
    single loop nest.

    Recipes are what the daisy scheduler's database stores (paper §4:
    "pairs of an embedding for the loop nest and transformation sequences
    including loop interchange, tiling, parallelization and
    vectorization"). *)

open Daisy_support
module Ir = Daisy_loopir.Ir

type step =
  | Interchange of int list  (** new order of band positions *)
  | Tile of (int * int) list  (** (band position, tile size) *)
  | Parallelize of int  (** band position *)
  | Vectorize  (** innermost band loop *)
  | Unroll of int * int  (** (band position, factor) *)

type t = step list

let pp_step ppf = function
  | Interchange order ->
      Fmt.pf ppf "interchange(%a)" (Fmt.list ~sep:(Fmt.any " ") Fmt.int) order
  | Tile specs ->
      Fmt.pf ppf "tile(%a)"
        (Fmt.list ~sep:(Fmt.any " ") (fun ppf (p, s) -> Fmt.pf ppf "%d:%d" p s))
        specs
  | Parallelize p -> Fmt.pf ppf "parallel(%d)" p
  | Vectorize -> Fmt.pf ppf "vectorize"
  | Unroll (p, f) -> Fmt.pf ppf "unroll(%d:%d)" p f

let pp ppf (r : t) = Fmt.pf ppf "[%a]" (Fmt.list ~sep:(Fmt.any "; ") pp_step) r
let to_string r = Fmt.str "%a" pp r

(** [of_string s] parses the {!to_string} syntax back into a recipe (the
    on-disk database format round-trips through it). *)
let of_string (s : string) : (t, string) result =
  let fail fmt = Fmt.kstr (fun m -> raise (Failure m)) fmt in
  let int_arg tok =
    match int_of_string_opt tok with
    | Some i -> i
    | None -> fail "recipe: expected integer, got %S" tok
  in
  let pair_arg tok =
    match String.split_on_char ':' tok with
    | [ a; b ] -> (int_arg a, int_arg b)
    | _ -> fail "recipe: expected pos:value pair, got %S" tok
  in
  let step_of item =
    let item = String.trim item in
    match String.index_opt item '(' with
    | None -> (
        match item with
        | "vectorize" -> Vectorize
        | _ -> fail "recipe: unknown step %S" item)
    | Some i ->
        let name = String.sub item 0 i in
        let rest = String.sub item (i + 1) (String.length item - i - 1) in
        let nr = String.length rest in
        if nr = 0 || rest.[nr - 1] <> ')' then
          fail "recipe: missing ')' in %S" item
        else
          let args =
            String.sub rest 0 (nr - 1)
            |> String.split_on_char ' '
            |> List.map String.trim
            |> List.filter (fun t -> t <> "")
          in
          (match (name, args) with
          | "interchange", _ :: _ -> Interchange (List.map int_arg args)
          | "tile", _ :: _ -> Tile (List.map pair_arg args)
          | "parallel", [ p ] -> Parallelize (int_arg p)
          | "unroll", [ pf ] ->
              let p, f = pair_arg pf in
              Unroll (p, f)
          | _ -> fail "recipe: unknown step %S" item)
  in
  let s = String.trim s in
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
    Error (Fmt.str "recipe: expected [...], got %S" s)
  else
    let body = String.trim (String.sub s 1 (n - 2)) in
    if body = "" then Ok []
    else
      try Ok (String.split_on_char ';' body |> List.map step_of)
      with Failure m -> Error m

let equal (a : t) (b : t) = a = b

(** [apply_step ~outer nest step] — one legality-checked step. *)
let apply_step ~outer (nest : Ir.loop) (step : step) :
    (Ir.loop, string) result =
  match step with
  | Interchange order ->
      Loop_transforms.interchange ~outer nest (Array.of_list order)
  | Tile specs -> Loop_transforms.tile ~outer nest specs
  | Parallelize pos -> Loop_transforms.parallelize ~outer nest pos
  | Vectorize -> Loop_transforms.vectorize ~outer nest
  | Unroll (pos, f) -> Loop_transforms.unroll nest pos f

(** Debug net (see docs/robustness.md): when [Ir.validation_enabled],
    re-validate a transformed nest against the names the input nest was
    closed over (size parameters and [outer] iterators) and raise
    [Diag.Error] on any structural violation. *)
let check_result ~outer (input : Ir.loop) (result : (Ir.loop, string) result)
    : (Ir.loop, string) result =
  (match result with
  | Ok nest' when !Ir.validation_enabled -> (
      let params =
        Util.SSet.union
          (Ir.free_index_vars [ Ir.Nloop input ])
          (Util.SSet.of_list (List.map (fun (l : Ir.loop) -> l.Ir.iter) outer))
      in
      match Ir.validate_nodes ~params [ Ir.Nloop nest' ] with
      | [] -> ()
      | violations ->
          Diag.errorf "recipe produced an invalid nest:@,%a"
            (Fmt.list ~sep:Fmt.cut Fmt.string)
            violations)
  | _ -> ());
  result

(** [apply ~outer nest recipe] — apply all steps; fails on the first
    illegal step (the paper: "If a B loop nest is not reduced to an A loop
    nest, the transformation sequence cannot be applied"). *)
let apply ~outer (nest : Ir.loop) (recipe : t) : (Ir.loop, string) result =
  List.fold_left
    (fun acc step ->
      match acc with
      | Error _ as e -> e
      | Ok nest -> (
          match apply_step ~outer nest step with
          | Ok nest' -> Ok nest'
          | Error e -> Error (Fmt.str "%a: %s" pp_step step e)))
    (Ok nest) recipe
  |> check_result ~outer nest

(** [apply_lenient ~outer nest recipe] — apply steps, skipping any that are
    illegal on this nest; returns the nest and how many steps applied. *)
let apply_lenient ~outer (nest : Ir.loop) (recipe : t) : Ir.loop * int =
  List.fold_left
    (fun (nest, applied) step ->
      match apply_step ~outer nest step with
      | Ok nest' -> (nest', applied + 1)
      | Error _ -> (nest, applied))
    (nest, 0) recipe

(* ------------------------------------------------------------------ *)
(* Search-space helpers (used by the evolutionary scheduler)            *)

let tile_sizes = [ 8; 16; 32; 64; 128 ]

(** Random recipe mutation: tweak tile sizes, toggle vectorization, change
    the parallel loop, swap interchange entries. *)
let mutate (rng : Rng.t) (band_size : int) (r : t) : t =
  if band_size = 0 then r
  else
    let mutate_step step =
      match step with
      | Tile specs ->
          Tile
            (List.map
               (fun (p, s) ->
                 if Rng.float rng < 0.5 then (p, Rng.choose rng tile_sizes)
                 else (p, s))
               specs)
      | Unroll (p, _) -> Unroll (p, Rng.choose rng [ 2; 4; 8 ])
      | Interchange order when List.length order >= 2 ->
          let arr = Array.of_list order in
          let i = Rng.int rng (Array.length arr) in
          let j = Rng.int rng (Array.length arr) in
          let tmp = arr.(i) in
          arr.(i) <- arr.(j);
          arr.(j) <- tmp;
          Interchange (Array.to_list arr)
      | other -> other
    in
    match Rng.int rng 4 with
    | 0 -> List.map mutate_step r
    | 1 ->
        (* drop a random step *)
        if r = [] then r
        else
          let k = Rng.int rng (List.length r) in
          List.filteri (fun i _ -> i <> k) r
    | 2 ->
        (* add a step *)
        let candidates =
          [ Vectorize; Parallelize 0;
            Tile (List.init (min band_size 3) (fun i -> (i, Rng.choose rng tile_sizes)));
            Unroll (band_size - 1, Rng.choose rng [ 2; 4; 8 ]) ]
        in
        r @ [ Rng.choose rng candidates ]
    | _ -> List.map mutate_step r

(** Crossover: take a prefix of one recipe and a suffix of the other. *)
let crossover (rng : Rng.t) (a : t) (b : t) : t =
  let ka = if a = [] then 0 else Rng.int rng (List.length a + 1) in
  let kb = if b = [] then 0 else Rng.int rng (List.length b + 1) in
  Util.take ka a @ Util.drop kb b
