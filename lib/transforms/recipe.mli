(** Optimization recipes: serializable transformation sequences applied to
    a single loop nest — what the daisy scheduler's database stores. *)

type step =
  | Interchange of int list  (** new order of band positions *)
  | Tile of (int * int) list  (** (band position, tile size) *)
  | Parallelize of int  (** band position *)
  | Vectorize  (** innermost band loop *)
  | Unroll of int * int  (** (band position, factor) *)

type t = step list

val pp_step : step Fmt.t
val pp : t Fmt.t
val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse the {!to_string} syntax (e.g.
    ["[interchange(1 0); tile(0:32 1:64); vectorize]"]); total inverse of
    {!to_string} on well-formed recipes. *)

val equal : t -> t -> bool

val apply_step :
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  step ->
  (Daisy_loopir.Ir.loop, string) result

val apply :
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  t ->
  (Daisy_loopir.Ir.loop, string) result
(** Apply all steps; fails on the first illegal one (the paper: "If a B
    loop nest is not reduced to an A loop nest, the transformation sequence
    cannot be applied"). *)

val apply_lenient :
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  t ->
  Daisy_loopir.Ir.loop * int
(** Apply steps, skipping illegal ones; returns how many applied. *)

val tile_sizes : int list
(** Tile-size palette explored by the search. *)

val mutate : Daisy_support.Rng.t -> int -> t -> t
(** Random mutation for the evolutionary search ([int] = band size). *)

val crossover : Daisy_support.Rng.t -> t -> t -> t
