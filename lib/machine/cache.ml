(** Trace-driven two-level set-associative LRU cache simulator.

    Write-allocate, write-back. The simulator tracks per-level accesses,
    misses, evictions and dirty write-backs; the cost model converts these
    to bandwidth demand.

    Geometry is normalized at construction: [line_bytes] and the set count
    are rounded down to powers of two (with one {!Daisy_support.Diag}
    warning per distinct geometry) so the hot path can use a shift for the
    line address and a mask for the set index — no division or modulo per
    access. The fused trace replay ({!Trace_bc}) additionally uses
    {!l1_probe} / {!l1_hit_run} to retire whole all-hit loop trips in one
    O(sites) step, and {!snapshot} / {!restore} to re-install a previously
    simulated cache state for the cross-candidate simulation memo. *)

module Diag = Daisy_support.Diag

type stats = {
  mutable accesses : float;
  mutable misses : float;
  mutable evicts : float;
  mutable writebacks : float;
}

let zero_stats () = { accesses = 0.0; misses = 0.0; evicts = 0.0; writebacks = 0.0 }

let copy_stats s =
  { accesses = s.accesses; misses = s.misses; evicts = s.evicts; writebacks = s.writebacks }

let sub_stats a b =
  {
    accesses = a.accesses -. b.accesses;
    misses = a.misses -. b.misses;
    evicts = a.evicts -. b.evicts;
    writebacks = a.writebacks -. b.writebacks;
  }

let add_stats dst d =
  dst.accesses <- dst.accesses +. d.accesses;
  dst.misses <- dst.misses +. d.misses;
  dst.evicts <- dst.evicts +. d.evicts;
  dst.writebacks <- dst.writebacks +. d.writebacks

type level = {
  sets : int;  (** always a power of two *)
  set_mask : int;  (** [sets - 1]; set index = [line land set_mask] *)
  assoc : int;
  line_shift : int;
  tags : int array;  (** sets * assoc; -1 = invalid *)
  dirty : bool array;
  stamp : int array;  (** LRU: higher = more recent *)
  stats : stats;
  set_epoch : int array;
      (** per set, bumped whenever a valid line leaves that set
          (eviction, flush, snapshot restore). A (line, slot) pair
          observed at its set's epoch [e] is still resident at [slot]
          while that epoch equals [e]: lines only leave a set through an
          eviction in that set, and filling invalid ways displaces
          nothing. The fused replay memoizes per-site slots on this. *)
  mutable last_slot : int;
      (** slot used by the most recent access to this level *)
}

(* Largest power of two <= n (n clamped to >= 1), with its log2. *)
let floor_pow2 n =
  let n = max 1 n in
  let p = ref 1 and s = ref 0 in
  while !p * 2 <= n do
    p := !p * 2;
    incr s
  done;
  (!p, !s)

(* Warn once per distinct rounded geometry: cache creation sits on the
   per-candidate path, so an ill-formed Config must not flood stderr. *)
let warned : (string, unit) Hashtbl.t = Hashtbl.create 8
let warned_lock = Mutex.create ()

let warn_rounded (c : Config.cache_level) ~line_bytes ~sets_req ~sets =
  let key =
    Printf.sprintf "%s/%d/%d/%d" c.Config.name c.Config.size_bytes
      c.Config.line_bytes c.Config.assoc
  in
  let fresh =
    Mutex.protect warned_lock (fun () ->
        if Hashtbl.mem warned key then false
        else begin
          Hashtbl.add warned key ();
          true
        end)
  in
  if fresh then
    Fmt.epr "%a@." Diag.pp
      (Diag.make ~severity:Diag.Warn
         "cache %s: non-power-of-two geometry (line_bytes=%d, sets=%d) \
          rounded down to line_bytes=%d, sets=%d"
         c.Config.name c.Config.line_bytes sets_req line_bytes sets)

let make_level (c : Config.cache_level) : level =
  let line_bytes, line_shift = floor_pow2 c.Config.line_bytes in
  let assoc = max 1 c.Config.assoc in
  let lines = max 1 (c.Config.size_bytes / line_bytes) in
  let sets_req = max 1 (lines / assoc) in
  let sets, _ = floor_pow2 sets_req in
  if line_bytes <> c.Config.line_bytes || sets <> sets_req then
    warn_rounded c ~line_bytes ~sets_req ~sets;
  {
    sets;
    set_mask = sets - 1;
    assoc;
    line_shift;
    tags = Array.make (sets * assoc) (-1);
    dirty = Array.make (sets * assoc) false;
    stamp = Array.make (sets * assoc) 0;
    stats = zero_stats ();
    set_epoch = Array.make sets 0;
    last_slot = 0;
  }

type t = { l1 : level; l2 : level; mutable clock : int }

let create (c : Config.t) : t =
  { l1 = make_level c.Config.l1; l2 = make_level c.Config.l2; clock = 0 }

let l1_line_shift t = t.l1.line_shift
let clock t = t.clock

(** Access one level with a line address. Returns [`Hit] or
    [`Miss of evicted_dirty_line_option]. *)
let access_level (t : t) (lv : level) (line : int) ~(write : bool) :
    [ `Hit | `Miss of int option ] =
  lv.stats.accesses <- lv.stats.accesses +. 1.0;
  t.clock <- t.clock + 1;
  let set = line land lv.set_mask in
  let base = set * lv.assoc in
  let rec find w = if w = lv.assoc then -1
    else if lv.tags.(base + w) = line then base + w
    else find (w + 1)
  in
  let slot = find 0 in
  if slot >= 0 then begin
    lv.stamp.(slot) <- t.clock;
    if write then lv.dirty.(slot) <- true;
    lv.last_slot <- slot;
    `Hit
  end
  else begin
    lv.stats.misses <- lv.stats.misses +. 1.0;
    (* choose victim: first invalid way, else LRU *)
    let victim = ref (base) in
    let best = ref max_int in
    let invalid = ref (-1) in
    for w = 0 to lv.assoc - 1 do
      let s = base + w in
      if lv.tags.(s) = -1 then (if !invalid = -1 then invalid := s)
      else if lv.stamp.(s) < !best then begin
        best := lv.stamp.(s);
        victim := s
      end
    done;
    let slot = if !invalid >= 0 then !invalid else !victim in
    let evicted =
      if lv.tags.(slot) = -1 then None
      else begin
        lv.stats.evicts <- lv.stats.evicts +. 1.0;
        lv.set_epoch.(set) <- lv.set_epoch.(set) + 1;
        let dirty_line = if lv.dirty.(slot) then Some lv.tags.(slot) else None in
        if dirty_line <> None then
          lv.stats.writebacks <- lv.stats.writebacks +. 1.0;
        dirty_line
      end
    in
    lv.tags.(slot) <- line;
    lv.dirty.(slot) <- write;
    lv.stamp.(slot) <- t.clock;
    lv.last_slot <- slot;
    `Miss evicted
  end

(** [access_line t ~line ~write] — one memory access through the
    hierarchy, line-addressed (the fused replay precomputes lines). *)
let access_line (t : t) ~(line : int) ~(write : bool) : unit =
  match access_level t t.l1 line ~write with
  | `Hit -> ()
  | `Miss evicted_dirty ->
      (match access_level t t.l2 line ~write:false with
      | `Hit -> ()
      | `Miss _ -> ());
      (* write back a dirty L1 victim into L2 *)
      (match evicted_dirty with
      | Some dline -> ignore (access_level t t.l2 dline ~write:true)
      | None -> ())

(** [access t ~addr ~write] — one memory access through the hierarchy. *)
let access (t : t) ~(addr : int) ~(write : bool) : unit =
  access_line t ~line:(addr lsr t.l1.line_shift) ~write

(** [l1_replay_advance t ~addrs ~deltas ~writes ~n ~mline ~mslot ~mep] —
    one fused replay iteration: the [n] accesses [addrs.(i)]/[writes.(i)]
    in order, bit-identical to [n] {!access} calls, advancing each
    address by its delta afterwards. [mline]/[mslot]/[mep] form the
    caller-owned per-touch slot memo: when touch [i]'s line is unchanged
    and its set epoch still matches, residency at [mslot.(i)] is proven
    and the access charges the hit without a tag scan; otherwise the
    full access runs and the memo re-arms. An eviction inside the loop
    bumps its set's epoch, so later touches of the same set re-validate
    against the fresh value. *)
let l1_replay_advance (t : t) ~(addrs : int array) ~(deltas : int array)
    ~(writes : bool array) ~(memoable : bool array) ~(n : int)
    ~(mline : int array) ~(mslot : int array) ~(mep : int array) : unit =
  let lv = t.l1 in
  let shift = lv.line_shift in
  (* indices are bounded by [n] <= every array's length (the replay plan
     allocates them together), so unchecked indexing is safe here *)
  for i = 0 to n - 1 do
    let addr = Array.unsafe_get addrs i in
    Array.unsafe_set addrs i (addr + Array.unsafe_get deltas i);
    let line = addr lsr shift in
    if Array.unsafe_get memoable i then begin
      let set = line land lv.set_mask in
      if
        Array.unsafe_get mep i = Array.unsafe_get lv.set_epoch set
        && Array.unsafe_get mline i = line
      then begin
        lv.stats.accesses <- lv.stats.accesses +. 1.0;
        t.clock <- t.clock + 1;
        let slot = Array.unsafe_get mslot i in
        Array.unsafe_set lv.stamp slot t.clock;
        if Array.unsafe_get writes i then Array.unsafe_set lv.dirty slot true
      end
      else begin
        let write = Array.unsafe_get writes i in
        access_line t ~line ~write;
        Array.unsafe_set mline i line;
        Array.unsafe_set mslot i lv.last_slot;
        Array.unsafe_set mep i (Array.unsafe_get lv.set_epoch set)
      end
    end
    else access_line t ~line ~write:(Array.unsafe_get writes i)
  done

(* ------------------------------------------------------------------ *)
(* Fused replay fast path                                              *)

(** Pure residency probe: true iff every [lines.(0..n-1)] currently hits
    in L1, filling [slots] with each line's L1 slot index. No statistics,
    no clock movement, no LRU update — safe to call speculatively. *)
let l1_probe (t : t) ~(lines : int array) ~(n : int) ~(slots : int array) :
    bool =
  let lv = t.l1 in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    let line = lines.(!i) in
    let base = (line land lv.set_mask) * lv.assoc in
    let rec find w =
      if w = lv.assoc then -1
      else if lv.tags.(base + w) = line then base + w
      else find (w + 1)
    in
    let s = find 0 in
    if s < 0 then ok := false else slots.(!i) <- s;
    incr i
  done;
  !ok

(** [l1_probe_memo] — {!l1_probe} consulting (and re-arming) the
    caller's per-touch slot memo: a touch whose line is unchanged at a
    matching set epoch is proven resident without a tag scan; a scanned
    hit records its slot back into the memo (a true residency fact, so
    later accesses charging hits through it stay bit-identical). *)
let l1_probe_memo (t : t) ~(lines : int array) ~(n : int)
    ~(slots : int array) ~(mline : int array) ~(mslot : int array)
    ~(mep : int array) : bool =
  let lv = t.l1 in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i < n do
    let line = Array.unsafe_get lines !i in
    let set = line land lv.set_mask in
    if
      Array.unsafe_get mep !i = Array.unsafe_get lv.set_epoch set
      && Array.unsafe_get mline !i = line
    then Array.unsafe_set slots !i (Array.unsafe_get mslot !i)
    else begin
      let base = set * lv.assoc in
      let rec find w =
        if w = lv.assoc then -1
        else if lv.tags.(base + w) = line then base + w
        else find (w + 1)
      in
      let s = find 0 in
      if s < 0 then ok := false
      else begin
        Array.unsafe_set slots !i s;
        Array.unsafe_set mline !i line;
        Array.unsafe_set mslot !i s;
        Array.unsafe_set mep !i (Array.unsafe_get lv.set_epoch set)
      end
    end;
    incr i
  done;
  !ok

(** [l1_hit_run t ~slots ~writes ~k ~n] — retire [n] iterations of a
    [k]-touch all-L1-hit pattern in O(k): bit-identical to calling
    {!access} n*k times when every touch hits (the caller must have
    proved residency with {!l1_probe}; all-hit traffic cannot evict, so
    residency over one probed iteration implies it for the whole run).

    Exactness: per-touch the generic path bumps [accesses] by 1.0 from an
    integer-valued float (exact while < 2^53, as is the single fused add),
    bumps the clock, sets the slot stamp to the clock and ORs the dirty
    bit. The final stamp of slot [slots.(j)] comes from the last
    iteration: [clock_after - k + j + 1]; writing in ascending [j]
    resolves touches sharing a slot exactly as the generic order does. *)
let l1_hit_run (t : t) ~(slots : int array) ~(writes : bool array) ~(k : int)
    ~(n : int) : unit =
  let lv = t.l1 in
  lv.stats.accesses <- lv.stats.accesses +. float_of_int (n * k);
  t.clock <- t.clock + (n * k);
  for j = 0 to k - 1 do
    let s = Array.unsafe_get slots j in
    Array.unsafe_set lv.stamp s (t.clock - k + j + 1);
    if Array.unsafe_get writes j then Array.unsafe_set lv.dirty s true
  done

(* ------------------------------------------------------------------ *)
(* Snapshots (cross-candidate simulation memo)                         *)

type level_image = {
  im_tags : int array;
  im_dirty : bool array;
  im_stamp : int array;  (** relative to the clock at snapshot time *)
}

type snapshot = { sn_l1 : level_image; sn_l2 : level_image }

let image_of_level (t : t) (lv : level) : level_image =
  {
    im_tags = Array.copy lv.tags;
    im_dirty = Array.copy lv.dirty;
    im_stamp = Array.map (fun s -> s - t.clock) lv.stamp;
  }

(** Capture tag/dirty/LRU state with stamps stored relative to the current
    clock. LRU decisions depend only on stamp order within a set, which
    clock translation preserves, so a snapshot restored at a different
    clock reproduces the exact same future simulation. Statistics are not
    captured. *)
let snapshot (t : t) : snapshot =
  { sn_l1 = image_of_level t t.l1; sn_l2 = image_of_level t t.l2 }

let bump_all_epochs (lv : level) =
  for s = 0 to lv.sets - 1 do
    lv.set_epoch.(s) <- lv.set_epoch.(s) + 1
  done

let restore_level (t : t) (lv : level) (im : level_image) : unit =
  bump_all_epochs lv;
  Array.blit im.im_tags 0 lv.tags 0 (Array.length lv.tags);
  Array.blit im.im_dirty 0 lv.dirty 0 (Array.length lv.dirty);
  let n = Array.length lv.stamp in
  for i = 0 to n - 1 do
    lv.stamp.(i) <- im.im_stamp.(i) + t.clock
  done

(** [restore t sn ~clock_delta] — advance the clock by [clock_delta] (the
    number of level accesses the memoized walk performed) and re-install
    the snapshot's tag/dirty/stamp state, rebased to the new clock.
    Statistics are untouched; the caller adds the memoized deltas. *)
let restore (t : t) (sn : snapshot) ~(clock_delta : int) : unit =
  t.clock <- t.clock + clock_delta;
  restore_level t t.l1 sn.sn_l1;
  restore_level t t.l2 sn.sn_l2

let flush_level (lv : level) =
  bump_all_epochs lv;
  Array.fill lv.tags 0 (Array.length lv.tags) (-1);
  Array.fill lv.dirty 0 (Array.length lv.dirty) false

(** Reset tag state but keep statistics. *)
let flush (t : t) =
  flush_level t.l1;
  flush_level t.l2

(** Reset one level's tag state (keep statistics) — used by the approx
    trace engine when a truncated loop's skipped traffic would have cycled
    that level anyway. *)
let flush_l1 (t : t) = flush_level t.l1
let flush_l2 (t : t) = flush_level t.l2

let l1_stats t = t.l1.stats
let l2_stats t = t.l2.stats
