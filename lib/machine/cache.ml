(** Trace-driven two-level set-associative LRU cache simulator.

    Write-allocate, write-back. The simulator tracks per-level accesses,
    misses, evictions and dirty write-backs; the cost model converts these
    to bandwidth demand. *)

type stats = {
  mutable accesses : float;
  mutable misses : float;
  mutable evicts : float;
  mutable writebacks : float;
}

let zero_stats () = { accesses = 0.0; misses = 0.0; evicts = 0.0; writebacks = 0.0 }

let copy_stats s =
  { accesses = s.accesses; misses = s.misses; evicts = s.evicts; writebacks = s.writebacks }

let sub_stats a b =
  {
    accesses = a.accesses -. b.accesses;
    misses = a.misses -. b.misses;
    evicts = a.evicts -. b.evicts;
    writebacks = a.writebacks -. b.writebacks;
  }

type level = {
  sets : int;
  assoc : int;
  line_shift : int;
  tags : int array;  (** sets * assoc; -1 = invalid *)
  dirty : bool array;
  stamp : int array;  (** LRU: higher = more recent *)
  stats : stats;
}

let make_level (c : Config.cache_level) : level =
  let lines = c.Config.size_bytes / c.Config.line_bytes in
  let sets = max 1 (lines / c.Config.assoc) in
  let line_shift =
    let rec go s n = if n <= 1 then s else go (s + 1) (n / 2) in
    go 0 c.Config.line_bytes
  in
  {
    sets;
    assoc = c.Config.assoc;
    line_shift;
    tags = Array.make (sets * c.Config.assoc) (-1);
    dirty = Array.make (sets * c.Config.assoc) false;
    stamp = Array.make (sets * c.Config.assoc) 0;
    stats = zero_stats ();
  }

type t = { l1 : level; l2 : level; mutable clock : int }

let create (c : Config.t) : t =
  { l1 = make_level c.Config.l1; l2 = make_level c.Config.l2; clock = 0 }

(** Access one level with a line address. Returns [`Hit] or
    [`Miss of evicted_dirty_line_option]. *)
let access_level (t : t) (lv : level) (line : int) ~(write : bool) :
    [ `Hit | `Miss of int option ] =
  lv.stats.accesses <- lv.stats.accesses +. 1.0;
  t.clock <- t.clock + 1;
  let set = line mod lv.sets in
  let base = set * lv.assoc in
  let rec find w = if w = lv.assoc then -1
    else if lv.tags.(base + w) = line then base + w
    else find (w + 1)
  in
  let slot = find 0 in
  if slot >= 0 then begin
    lv.stamp.(slot) <- t.clock;
    if write then lv.dirty.(slot) <- true;
    `Hit
  end
  else begin
    lv.stats.misses <- lv.stats.misses +. 1.0;
    (* choose victim: first invalid way, else LRU *)
    let victim = ref (base) in
    let best = ref max_int in
    let invalid = ref (-1) in
    for w = 0 to lv.assoc - 1 do
      let s = base + w in
      if lv.tags.(s) = -1 then (if !invalid = -1 then invalid := s)
      else if lv.stamp.(s) < !best then begin
        best := lv.stamp.(s);
        victim := s
      end
    done;
    let slot = if !invalid >= 0 then !invalid else !victim in
    let evicted =
      if lv.tags.(slot) = -1 then None
      else begin
        lv.stats.evicts <- lv.stats.evicts +. 1.0;
        let dirty_line = if lv.dirty.(slot) then Some lv.tags.(slot) else None in
        if dirty_line <> None then
          lv.stats.writebacks <- lv.stats.writebacks +. 1.0;
        dirty_line
      end
    in
    lv.tags.(slot) <- line;
    lv.dirty.(slot) <- write;
    lv.stamp.(slot) <- t.clock;
    `Miss evicted
  end

(** [access t ~addr ~write] — one memory access through the hierarchy. *)
let access (t : t) ~(addr : int) ~(write : bool) : unit =
  let line = addr lsr t.l1.line_shift in
  match access_level t t.l1 line ~write with
  | `Hit -> ()
  | `Miss evicted_dirty ->
      (match access_level t t.l2 line ~write:false with
      | `Hit -> ()
      | `Miss _ -> ());
      (* write back a dirty L1 victim into L2 *)
      (match evicted_dirty with
      | Some dline -> ignore (access_level t t.l2 dline ~write:true)
      | None -> ())

let flush_level (lv : level) =
  Array.fill lv.tags 0 (Array.length lv.tags) (-1);
  Array.fill lv.dirty 0 (Array.length lv.dirty) false

(** Reset tag state but keep statistics. *)
let flush (t : t) =
  flush_level t.l1;
  flush_level t.l2

(** Reset one level's tag state (keep statistics) — used by the approx
    trace engine when a truncated loop's skipped traffic would have cycled
    that level anyway. *)
let flush_l1 (t : t) = flush_level t.l1
let flush_l2 (t : t) = flush_level t.l2

let l1_stats t = t.l1.stats
let l2_stats t = t.l2.stats
