(** Machine model parameters.

    The default configuration is a proportionally scaled-down Xeon
    E5-2680v3 (the paper's testbed): problem sizes in this reproduction are
    scaled down from PolyBench LARGE to keep trace-driven simulation
    tractable, and cache capacities are scaled by the same factor so
    working-set-to-cache ratios — and therefore every relative comparison —
    are preserved (see DESIGN.md §7). *)

type cache_level = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  assoc : int;
}

type t = {
  l1 : cache_level;
  l2 : cache_level;
  freq_ghz : float;
  cores : int;
  scalar_flops_per_cycle : float;  (** sustained scalar FP throughput *)
  vector_width : int;  (** doubles per SIMD operation (AVX2) *)
  l1_accesses_per_cycle : float;  (** load/store ports *)
  l2_bytes_per_cycle : float;  (** per-core L1<->L2 bandwidth *)
  dram_bytes_per_cycle : float;  (** shared off-chip bandwidth *)
  atomic_cycles : float;  (** serialized cost of one atomic update *)
  parallel_region_base_cycles : float;  (** fork/join fixed cost *)
  parallel_region_per_thread_cycles : float;
  unroll_ilp_boost : float;  (** flop-rate multiplier for unrolled loops *)
  spill_latency_cycles : float;  (** added latency per register spill op *)
  blas_efficiency : float;  (** fraction of vector peak a tuned BLAS hits *)
}

(** Scaled-down Xeon-like machine: L1 8 KiB / 4-way, L2 64 KiB / 8-way,
    64-byte lines. Peak vector FMA throughput is
    [scalar_flops_per_cycle * vector_width] flops/cycle/core. *)
let default : t =
  {
    l1 = { name = "L1"; size_bytes = 8 * 1024; line_bytes = 64; assoc = 4 };
    l2 = { name = "L2"; size_bytes = 64 * 1024; line_bytes = 64; assoc = 8 };
    freq_ghz = 2.5;
    cores = 12;
    scalar_flops_per_cycle = 2.0;
    vector_width = 4;
    l1_accesses_per_cycle = 2.0;
    l2_bytes_per_cycle = 32.0;
    dram_bytes_per_cycle = 16.0;
    atomic_cycles = 24.0;
    parallel_region_base_cycles = 2000.0;
    parallel_region_per_thread_cycles = 200.0;
    unroll_ilp_boost = 1.25;
    spill_latency_cycles = 0.15;
    blas_efficiency = 0.85;
  }

(** Peak FLOP/s of the whole machine in MFLOP/s (vector FMA on all cores),
    as measured by the paper's peak benchmark. *)
let peak_mflops (c : t) =
  c.freq_ghz *. 1000.0 *. c.scalar_flops_per_cycle
  *. float_of_int c.vector_width *. float_of_int c.cores

(** Structural validation: one message per parameter the simulator would
    have to round or clamp (see {!Cache.make_level}). An empty list means
    the configuration is simulated exactly as written. *)
let validate (c : t) : string list =
  let probs = ref [] in
  let add fmt = Printf.ksprintf (fun s -> probs := s :: !probs) fmt in
  let is_pow2 n = n > 0 && n land (n - 1) = 0 in
  let floor_pow2 n =
    let n = max 1 n in
    let p = ref 1 in
    while !p * 2 <= n do p := !p * 2 done;
    !p
  in
  let level (lv : cache_level) =
    if lv.line_bytes <= 0 then
      add "%s: line_bytes must be positive (got %d)" lv.name lv.line_bytes
    else if not (is_pow2 lv.line_bytes) then
      add "%s: line_bytes %d is not a power of two (simulated as %d)" lv.name
        lv.line_bytes (floor_pow2 lv.line_bytes);
    if lv.assoc <= 0 then
      add "%s: assoc must be positive (got %d)" lv.name lv.assoc;
    if lv.size_bytes < lv.line_bytes then
      add "%s: size_bytes %d is smaller than one line (%d)" lv.name
        lv.size_bytes lv.line_bytes
    else begin
      let line_bytes = floor_pow2 lv.line_bytes in
      let assoc = max 1 lv.assoc in
      let sets = max 1 (lv.size_bytes / line_bytes / assoc) in
      if not (is_pow2 sets) then
        add "%s: %d sets (size/line/assoc) is not a power of two (simulated \
             as %d)"
          lv.name sets (floor_pow2 sets)
    end
  in
  level c.l1;
  level c.l2;
  if c.vector_width <= 0 || not (is_pow2 c.vector_width) then
    add "vector_width %d must be a positive power of two" c.vector_width;
  if c.cores <= 0 then add "cores must be positive (got %d)" c.cores;
  List.rev !probs

(** Cost of intrinsics in scalar-equivalent flops. *)
let intrinsic_flops = function
  | "sqrt" -> 6.0
  | "exp" | "log" | "pow" -> 20.0
  | "sin" | "cos" | "tanh" -> 24.0
  | "fabs" | "min" | "max" | "floor" | "ceil" -> 1.0
  | _ -> 8.0
