(** Compiled trace engine — the fast path of the cost model.

    Exact mode (no [approx]) is bit-identical to [Trace.run]; approx mode
    trades bounded accuracy for asymptotic speed via line-granular cache
    stepping and adaptive multi-level loop sampling. See
    [docs/performance.md] for the accuracy contract. *)

type approx = {
  line_step : bool;  (** enable line-granular cache stepping *)
  block : int;  (** iterations per stabilization block *)
  warm : int;  (** leading blocks excluded from the stability test *)
  tol : float;  (** relative tolerance on per-block counter deltas *)
  min_trip : int;  (** loops with fewer iterations run exactly *)
}

val default_approx : approx

val line_step_only : approx
(** Line-granular stepping only; adaptive loop sampling disabled. *)

val counters_equal : Trace.counters -> Trace.counters -> bool
(** Bitwise equality of counter records ([Int64.bits_of_float]). *)

val trace_node :
  Trace.walk_ctx -> ?approx:approx -> Daisy_loopir.Ir.node -> Trace.counters
(** Compile and trace one top-level node against a shared cache. *)

val run :
  Config.t ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?sample_outer:int ->
  ?approx:approx ->
  ?budget:Daisy_support.Budget.t ->
  unit ->
  Trace.counters list
(** Drop-in replacement for [Trace.run]. [budget] is ticked once per
    executed loop iteration ([Budget.Exhausted] escapes); entry passes
    through the ["trace_compile"] {!Daisy_support.Fault} point. *)
