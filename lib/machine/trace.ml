(** Trace generation: walk a loopir program over concrete sizes, feed every
    memory access through the cache simulator and accumulate operation
    counts per top-level nest.

    Guards are assumed taken (their evaluation cost is charged and the
    guarded computation executes) — the machine model has no data values, so
    this is the standard control-independent approximation.

    For tractability, the outermost loop of each top-level nest can be
    {e sampled}: only the first [sample_outer] iterations are traced and all
    counter deltas are scaled by [trip / sample_outer]. Loop nests are
    overwhelmingly iteration-homogeneous, so sampling preserves shapes. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr

type counters = {
  mutable flops : float;  (** scalar-equivalent flops outside SIMD loops *)
  mutable vec_flops : float;  (** flops executed in effective SIMD loops *)
  mutable unrolled_flops : float;  (** scalar flops with unroll ILP boost *)
  mutable loads : float;
  mutable stores : float;
  mutable gather_extra : float;  (** extra L1-port pressure from gathers *)
  mutable spill_ops : float;  (** register spill fills+stores *)
  mutable atomics : float;  (** contended atomic updates (shared cell) *)
  mutable atomics_private : float;
      (** uncontended atomics (per-iteration distinct cells) *)
  mutable parallel_regions : float;
  mutable par_trip : float;  (** iterations of the outermost parallel loop *)
  mutable has_parallel : bool;
  mutable libcall_flops : float;
  mutable libcall_bytes : float;
  mutable l1 : Cache.stats;
  mutable l2 : Cache.stats;
}

let zero_counters () =
  {
    flops = 0.0; vec_flops = 0.0; unrolled_flops = 0.0;
    loads = 0.0; stores = 0.0; gather_extra = 0.0; spill_ops = 0.0;
    atomics = 0.0; atomics_private = 0.0;
    parallel_regions = 0.0; par_trip = 0.0; has_parallel = false;
    libcall_flops = 0.0; libcall_bytes = 0.0;
    l1 = Cache.zero_stats (); l2 = Cache.zero_stats ();
  }

(** Deep copy (fresh cache stat records) — the simulation memo hands out
    private copies so no two evaluations share mutable counters. *)
let copy_counters (c : counters) : counters =
  {
    c with
    l1 = Cache.copy_stats c.l1;
    l2 = Cache.copy_stats c.l2;
  }

let scale_counters (c : counters) (f : float) =
  c.flops <- c.flops *. f;
  c.vec_flops <- c.vec_flops *. f;
  c.unrolled_flops <- c.unrolled_flops *. f;
  c.loads <- c.loads *. f;
  c.stores <- c.stores *. f;
  c.gather_extra <- c.gather_extra *. f;
  c.spill_ops <- c.spill_ops *. f;
  c.atomics <- c.atomics *. f;
  c.atomics_private <- c.atomics_private *. f;
  c.parallel_regions <- c.parallel_regions *. f;
  c.libcall_flops <- c.libcall_flops *. f;
  c.libcall_bytes <- c.libcall_bytes *. f;
  c.l1 <-
    {
      Cache.accesses = c.l1.Cache.accesses *. f;
      misses = c.l1.Cache.misses *. f;
      evicts = c.l1.Cache.evicts *. f;
      writebacks = c.l1.Cache.writebacks *. f;
    };
  c.l2 <-
    {
      Cache.accesses = c.l2.Cache.accesses *. f;
      misses = c.l2.Cache.misses *. f;
      evicts = c.l2.Cache.evicts *. f;
      writebacks = c.l2.Cache.writebacks *. f;
    }

let add_counters (a : counters) (b : counters) =
  a.flops <- a.flops +. b.flops;
  a.vec_flops <- a.vec_flops +. b.vec_flops;
  a.unrolled_flops <- a.unrolled_flops +. b.unrolled_flops;
  a.loads <- a.loads +. b.loads;
  a.stores <- a.stores +. b.stores;
  a.gather_extra <- a.gather_extra +. b.gather_extra;
  a.spill_ops <- a.spill_ops +. b.spill_ops;
  a.atomics <- a.atomics +. b.atomics;
  a.atomics_private <- a.atomics_private +. b.atomics_private;
  a.parallel_regions <- a.parallel_regions +. b.parallel_regions;
  a.par_trip <- Float.max a.par_trip b.par_trip;
  a.has_parallel <- a.has_parallel || b.has_parallel;
  a.libcall_flops <- a.libcall_flops +. b.libcall_flops;
  a.libcall_bytes <- a.libcall_bytes +. b.libcall_bytes;
  a.l1 <-
    {
      Cache.accesses = a.l1.Cache.accesses +. b.l1.Cache.accesses;
      misses = a.l1.Cache.misses +. b.l1.Cache.misses;
      evicts = a.l1.Cache.evicts +. b.l1.Cache.evicts;
      writebacks = a.l1.Cache.writebacks +. b.l1.Cache.writebacks;
    };
  a.l2 <-
    {
      Cache.accesses = a.l2.Cache.accesses +. b.l2.Cache.accesses;
      misses = a.l2.Cache.misses +. b.l2.Cache.misses;
      evicts = a.l2.Cache.evicts +. b.l2.Cache.evicts;
      writebacks = a.l2.Cache.writebacks +. b.l2.Cache.writebacks;
    }

(* ------------------------------------------------------------------ *)
(* Expression compilation: iterator slots + closed-over parameters      *)

exception Unsupported_trace of string

type compile_ctx = {
  slot_of : string -> int option;  (** iterator name -> slot *)
  param_env : int Util.SMap.t;
}

let rec compile_expr (ctx : compile_ctx) (e : Expr.t) : int array -> int =
  match e with
  | Expr.Const n -> fun _ -> n
  | Expr.Var v -> (
      match ctx.slot_of v with
      | Some s -> fun iters -> iters.(s)
      | None -> (
          match Util.SMap.find_opt v ctx.param_env with
          | Some n -> fun _ -> n
          | None -> raise (Unsupported_trace ("unbound variable " ^ v))))
  | Expr.Add (a, b) ->
      let fa = compile_expr ctx a and fb = compile_expr ctx b in
      fun it -> fa it + fb it
  | Expr.Sub (a, b) ->
      let fa = compile_expr ctx a and fb = compile_expr ctx b in
      fun it -> fa it - fb it
  | Expr.Mul (a, b) ->
      let fa = compile_expr ctx a and fb = compile_expr ctx b in
      fun it -> fa it * fb it
  | Expr.Div (a, b) ->
      let fa = compile_expr ctx a and fb = compile_expr ctx b in
      fun it ->
        let x = fa it and y = fb it in
        let q = x / y and r = x mod y in
        if r <> 0 && (r < 0) <> (y < 0) then q - 1 else q
  | Expr.Mod (a, b) ->
      let fa = compile_expr ctx a and fb = compile_expr ctx b in
      fun it ->
        let x = fa it and y = fb it in
        let r = x mod y in
        if r <> 0 && (r < 0) <> (y < 0) then r + y else r
  | Expr.Neg a ->
      let fa = compile_expr ctx a in
      fun it -> -fa it
  | Expr.Min (a, b) ->
      let fa = compile_expr ctx a and fb = compile_expr ctx b in
      fun it -> min (fa it) (fb it)
  | Expr.Max (a, b) ->
      let fa = compile_expr ctx a and fb = compile_expr ctx b in
      fun it -> max (fa it) (fb it)

(* ------------------------------------------------------------------ *)
(* Memory layout                                                        *)

type layout = {
  base_of : string -> int;  (** byte address of element 0 *)
  dims_of : string -> int array;
}

(** Row-major layout with line-aligned bases and a guard gap between
    arrays. *)
let layout_of (p : Ir.program) ~(sizes : int Util.SMap.t) : layout =
  let tbl = Hashtbl.create 16 in
  let next = ref 4096 in
  List.iter
    (fun (a : Ir.array_decl) ->
      let dims =
        Array.of_list (List.map (fun d -> max 1 (Expr.eval sizes d)) a.Ir.dims)
      in
      let n = Array.fold_left ( * ) 1 dims in
      Hashtbl.replace tbl a.Ir.name (!next, dims);
      next := !next + (n * 8) + 256;
      next := (!next + 63) land lnot 63)
    p.Ir.arrays;
  (* local scalars live in registers / stack lines: give each its own line *)
  let scalar_tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      Hashtbl.replace scalar_tbl s !next;
      next := !next + 64)
    (p.Ir.local_scalars @ p.Ir.scalar_params);
  {
    base_of =
      (fun name ->
        match Hashtbl.find_opt tbl name with
        | Some (b, _) -> b
        | None -> (
            match Hashtbl.find_opt scalar_tbl name with
            | Some b -> b
            | None -> raise (Unsupported_trace ("unknown container " ^ name))));
    dims_of =
      (fun name ->
        match Hashtbl.find_opt tbl name with
        | Some (_, d) -> d
        | None -> [||]);
  }

(* ------------------------------------------------------------------ *)
(* Compiled computations                                                *)

type compiled_access = {
  addr_fn : int array -> int;  (** byte address *)
  write : bool;
  strided_in_simd : bool;  (** non-unit, non-zero stride w.r.t. SIMD iter *)
  is_register : bool;
      (** scalar temporaries live in registers: no memory traffic unless
          spilled by the register-pressure model *)
}

type compiled_comp = {
  accesses : compiled_access list;
  comp_flops : float;  (** scalar-equivalent flops per execution *)
  flop_class : [ `Scalar | `Vector | `Unrolled ];
  is_atomic : bool;
  atomic_contended : bool;
      (** the destination cell is shared across parallel iterations *)
}

let vexpr_flops (e : Ir.vexpr) : float =
  let rec go = function
    | Ir.Vfloat _ | Ir.Vint _ | Ir.Vscalar _ | Ir.Vread _ -> 0.0
    | Ir.Vbin (_, a, b) -> 1.0 +. go a +. go b
    | Ir.Vneg a -> 1.0 +. go a
    | Ir.Vcall (f, args) ->
        Config.intrinsic_flops f +. Util.sum_byf go args
    | Ir.Vselect (p, a, b) -> go_pred p +. go a +. go b
  and go_pred = function
    | Ir.Pcmp (_, a, b) -> 1.0 +. go a +. go b
    | Ir.Pand (a, b) | Ir.Por (a, b) -> 1.0 +. go_pred a +. go_pred b
    | Ir.Pnot a -> 1.0 +. go_pred a
  in
  go e

(** Stride (in elements) of an access w.r.t. an iterator, from affine
    subscripts; [None] if non-affine. *)
let simd_stride (dims : int array) (indices : Expr.t list) (iter : string) :
    int option =
  let module Affine = Daisy_poly.Affine in
  let rec go i = function
    | [] -> Some 0
    | idx :: rest -> (
        match Affine.of_expr idx with
        | None -> None
        | Some aff -> (
            let c = Affine.coeff iter aff in
            let dim_stride =
              let s = ref 1 in
              for k = i + 1 to Array.length dims - 1 do
                s := !s * dims.(k)
              done;
              !s
            in
            match go (i + 1) rest with
            | None -> None
            | Some acc -> Some (acc + (c * dim_stride))))
  in
  go 0 indices

(* ------------------------------------------------------------------ *)
(* Register pressure                                                     *)

(** Architectural registers available to the spill model. *)
let n_registers = 16

(** Register-pressure model: an innermost loop whose live values (distinct
    memory elements + scalar temporaries, multiplied by the unroll factor)
    exceed the architectural registers spills the excess to the stack —
    extra L1 loads and stores every iteration. This is what makes the big
    inlined-and-unrolled CLOUDSC bodies expensive (paper Table 1) and what
    maximal fission repairs. Shared by the tree walker and the compiled
    engine ([Trace_compile]) so their spill counts cannot drift. *)
let spill_estimate (l : Ir.loop) : int =
  let comps = Ir.comps_in l.Ir.body in
  let mem =
    Util.dedup ~eq:( = )
      (List.concat_map
         (fun c -> Ir.comp_array_reads c @ Ir.comp_array_writes c)
         comps)
  in
  let scalars =
    Util.dedup ~eq:String.equal
      (List.concat_map
         (fun c -> Ir.comp_scalar_reads c @ Ir.comp_scalar_writes c)
         comps)
  in
  let unroll = max 1 l.Ir.attrs.Ir.unroll in
  (* liveness-based estimate: named values (memory elements + scalar
     temporaries) plus expression-tree temporaries (one per ~6 flops),
     overlapped live ranges (~60% live at once), replicated by
     unrolling *)
  let flops = Util.sum_byf (fun c -> vexpr_flops c.Ir.rhs) comps in
  let named = List.length mem + List.length scalars in
  let live =
    int_of_float
      (0.6 *. (float_of_int named +. (flops /. 6.0)) *. float_of_int unroll)
  in
  max 0 (live - n_registers)

(* ------------------------------------------------------------------ *)
(* The walker                                                           *)

type walk_ctx = {
  config : Config.t;
  cache : Cache.t;
  layout : layout;
  param_env : int Util.SMap.t;
  sample_outer : int;  (** 0 = no sampling *)
  budget : Budget.t;  (** ticked once per walked loop iteration *)
}

let compile_access cctx (layout : layout) ~write ~(simd_iter : string option)
    ({ Ir.array; indices } : Ir.access) : compiled_access =
  let base = layout.base_of array in
  let dims = layout.dims_of array in
  if Array.length dims = 0 then
    (* scalar container: register-allocated *)
    { addr_fn = (fun _ -> base); write; strided_in_simd = false;
      is_register = true }
  else begin
    let index_fns = List.map (compile_expr cctx) indices in
    let dims_l = Array.to_list dims in
    let addr_fn iters =
      let rec go fns ds acc =
        match (fns, ds) with
        | [], [] -> acc
        | f :: fns', d :: ds' -> go fns' ds' ((acc * d) + f iters)
        | _ -> raise (Unsupported_trace "rank mismatch")
      in
      base + (8 * go index_fns dims_l 0)
    in
    let strided =
      match simd_iter with
      | None -> false
      | Some it -> (
          match simd_stride dims indices it with
          | Some s -> s <> 0 && s <> 1
          | None -> true)
    in
    { addr_fn; write; strided_in_simd = strided; is_register = false }
  end

(** Compile a computation given its static context. *)
let compile_comp cctx (wctx : walk_ctx) ~(simd_iter : string option)
    ~(unrolled : bool) ~(atomic_region : bool)
    ~(parallel_iter : string option) (c : Ir.comp) : compiled_comp =
  (* duplicate reads of the same element stay in a register (CSE) *)
  let reads =
    Util.dedup ~eq:( = )
      (Ir.comp_array_reads c
      @ List.map
          (fun s -> { Ir.array = s; indices = [] })
          (Ir.comp_scalar_reads c))
  in
  let writes =
    match c.Ir.dest with
    | Ir.Darray a -> [ a ]
    | Ir.Dscalar s -> [ { Ir.array = s; indices = [] } ]
  in
  let accesses =
    List.map (compile_access cctx wctx.layout ~write:false ~simd_iter) reads
    @ List.map (compile_access cctx wctx.layout ~write:true ~simd_iter) writes
  in
  let flops =
    vexpr_flops c.Ir.rhs
    +. (match c.Ir.guard with
       | Some g ->
           let rec gp = function
             | Ir.Pcmp (_, a, b) -> 1.0 +. vexpr_flops a +. vexpr_flops b
             | Ir.Pand (a, b) | Ir.Por (a, b) -> 1.0 +. gp a +. gp b
             | Ir.Pnot a -> 1.0 +. gp a
           in
           gp g
       | None -> 0.0)
  in
  let vectorizable =
    simd_iter <> None
    && List.for_all (fun a -> not a.strided_in_simd) accesses
  in
  let atomic_contended =
    atomic_region
    &&
    match (parallel_iter, c.Ir.dest) with
    | Some it, Ir.Darray a ->
        (* contended iff the destination does not vary with the parallel
           iterator *)
        List.for_all
          (fun idx ->
            match Daisy_poly.Affine.of_expr idx with
            | Some aff -> Daisy_poly.Affine.coeff it aff = 0
            | None -> false)
          a.Ir.indices
    | Some _, Ir.Dscalar _ -> true
    | None, _ -> true
  in
  {
    accesses;
    comp_flops = Float.max 1.0 flops;
    flop_class =
      (if vectorizable then `Vector else if unrolled then `Unrolled else `Scalar);
    is_atomic = atomic_region;
    atomic_contended;
  }

(** Trace one top-level node; returns its counters. *)
let trace_node (wctx : walk_ctx) (node : Ir.node) : counters =
  let counters = zero_counters () in
  let l1_before = Cache.copy_stats (Cache.l1_stats wctx.cache) in
  let l2_before = Cache.copy_stats (Cache.l2_stats wctx.cache) in
  (* assign iterator slots by collecting loop iterators in the subtree *)
  let iter_names =
    Ir.loops_in [ node ] |> List.map (fun (l : Ir.loop) -> l.Ir.iter)
    |> Util.dedup ~eq:String.equal
  in
  let slot_tbl = Hashtbl.create 8 in
  List.iteri (fun i n -> Hashtbl.replace slot_tbl n i) iter_names;
  let cctx =
    {
      slot_of = (fun n -> Hashtbl.find_opt slot_tbl n);
      param_env = wctx.param_env;
    }
  in
  let iters = Array.make (max 1 (List.length iter_names)) 0 in
  let gather_mult = float_of_int wctx.config.Config.vector_width -. 1.0 in
  (* recursive walk; compiled computations are built lazily per static
     context and memoized by cid *)
  let comp_cache : (int, compiled_comp) Hashtbl.t = Hashtbl.create 64 in
  let spill_info : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  let stack_base = ref 1024 in
  let spills_of (l : Ir.loop) : int * int =
    match Hashtbl.find_opt spill_info l.Ir.lid with
    | Some s -> s
    | None ->
        let spills = spill_estimate l in
        let base = !stack_base in
        if spills > 0 then stack_base := !stack_base + (spills * 8);
        Hashtbl.replace spill_info l.Ir.lid (spills, base);
        (spills, base)
  in
  let scale_factor = ref 1.0 in
  let rec walk nodes ~depth ~simd_iter ~unrolled ~atomic_region ~in_parallel
      ~parallel_iter =
    List.iter
      (fun n ->
        match n with
        | Ir.Ncomp c ->
            let cc =
              match Hashtbl.find_opt comp_cache c.Ir.cid with
              | Some cc -> cc
              | None ->
                  let cc =
                    compile_comp cctx wctx ~simd_iter ~unrolled ~atomic_region
                      ~parallel_iter c
                  in
                  Hashtbl.replace comp_cache c.Ir.cid cc;
                  cc
            in
            let port_cost =
              (* a vector load/store moves vw elements per port operation *)
              if cc.flop_class = `Vector then
                1.0 /. float_of_int wctx.config.Config.vector_width
              else 1.0
            in
            List.iter
              (fun a ->
                if not a.is_register then begin
                  Cache.access wctx.cache ~addr:(a.addr_fn iters) ~write:a.write;
                  if a.write then counters.stores <- counters.stores +. port_cost
                  else counters.loads <- counters.loads +. port_cost;
                  if a.strided_in_simd && simd_iter <> None then
                    counters.gather_extra <- counters.gather_extra +. gather_mult
                end)
              cc.accesses;
            (match cc.flop_class with
            | `Vector -> counters.vec_flops <- counters.vec_flops +. cc.comp_flops
            | `Unrolled ->
                counters.unrolled_flops <- counters.unrolled_flops +. cc.comp_flops
            | `Scalar -> counters.flops <- counters.flops +. cc.comp_flops);
            if cc.is_atomic then
              if cc.atomic_contended then
                counters.atomics <- counters.atomics +. 1.0
              else counters.atomics_private <- counters.atomics_private +. 1.0
        | Ir.Ncall k ->
            let dims =
              List.map
                (fun d ->
                  (* dims may reference iterators of enclosing loops *)
                  (compile_expr cctx d) iters)
                k.Ir.dims
            in
            counters.libcall_flops <-
              counters.libcall_flops
              +. (try Daisy_blas.Kernels.flops k.Ir.kernel dims with _ -> 0.0);
            counters.libcall_bytes <-
              counters.libcall_bytes
              +. (try Daisy_blas.Kernels.min_bytes k.Ir.kernel dims with _ -> 0.0)
        | Ir.Nloop l ->
            let lo = (compile_expr cctx l.Ir.lo) iters in
            let hi = (compile_expr cctx l.Ir.hi) iters in
            let trip =
              if l.Ir.step > 0 then max 0 (((hi - lo) / l.Ir.step) + 1)
              else max 0 (((lo - hi) / -l.Ir.step) + 1)
            in
            let starts_parallel =
              l.Ir.attrs.Ir.parallel && not in_parallel
            in
            if starts_parallel then begin
              counters.has_parallel <- true;
              counters.parallel_regions <- counters.parallel_regions +. 1.0;
              counters.par_trip <- Float.max counters.par_trip (float_of_int trip)
            end;
            let simd_iter' =
              if l.Ir.attrs.Ir.vectorized then Some l.Ir.iter else simd_iter
            in
            let unrolled' = unrolled || l.Ir.attrs.Ir.unroll > 1 in
            let atomic' = atomic_region || (starts_parallel && l.Ir.attrs.Ir.atomic) in
            let parallel_iter' =
              if starts_parallel then Some l.Ir.iter else parallel_iter
            in
            let slot = Hashtbl.find slot_tbl l.Ir.iter in
            let spills, spill_base =
              if Ir.loops_in l.Ir.body = [] then spills_of l else (0, 0)
            in
            (* sampling only at the outermost level of the top-level nest *)
            let sample =
              if depth = 0 && wctx.sample_outer > 0 && trip > wctx.sample_outer
              then wctx.sample_outer
              else trip
            in
            let i = ref lo in
            for k = 0 to sample - 1 do
              ignore k;
              Budget.tick wctx.budget;
              iters.(slot) <- !i;
              walk l.Ir.body ~depth:(depth + 1) ~simd_iter:simd_iter'
                ~unrolled:unrolled' ~atomic_region:atomic'
                ~in_parallel:(in_parallel || starts_parallel)
                ~parallel_iter:parallel_iter';
              for sp = 0 to spills - 1 do
                let addr = spill_base + (sp * 8) in
                Cache.access wctx.cache ~addr ~write:true;
                Cache.access wctx.cache ~addr ~write:false
              done;
              if spills > 0 then begin
                counters.loads <- counters.loads +. float_of_int spills;
                counters.stores <- counters.stores +. float_of_int spills;
                counters.spill_ops <- counters.spill_ops +. float_of_int (2 * spills)
              end;
              i := !i + l.Ir.step
            done;
            if sample < trip then
              scale_factor := float_of_int trip /. float_of_int sample)
      nodes
  in
  walk [ node ] ~depth:0 ~simd_iter:None ~unrolled:false ~atomic_region:false
    ~in_parallel:false ~parallel_iter:None;
  counters.l1 <- Cache.sub_stats (Cache.l1_stats wctx.cache) l1_before;
  counters.l2 <- Cache.sub_stats (Cache.l2_stats wctx.cache) l2_before;
  if !scale_factor > 1.0 then begin
    let regions = counters.parallel_regions in
    scale_counters counters !scale_factor;
    (* a parallel region at the sampled (outermost) level forks once, not
       once per sampled iteration *)
    if regions > 0.0 then counters.parallel_regions <- regions
  end;
  counters

(** [run config p ~sizes ~sample_outer] — trace the whole program; returns
    the per-top-level-node counters in order. *)
let run (config : Config.t) (p : Ir.program) ~(sizes : (string * int) list)
    ?(sample_outer = 0) ?(budget = Budget.unlimited ()) () : counters list =
  let param_env =
    List.fold_left (fun m (k, v) -> Util.SMap.add k v m) Util.SMap.empty sizes
  in
  let layout = layout_of p ~sizes:param_env in
  let cache = Cache.create config in
  let wctx = { config; cache; layout; param_env; sample_outer; budget } in
  List.map (trace_node wctx) p.Ir.body
