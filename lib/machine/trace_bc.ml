(** Bytecode trace engine: the cost-model walk over the flat LIR.

    The third trace engine. [Daisy_lir.Bytecode.lower ~hooks] produces one
    trace section per top-level node — a flat [TLOOP]/[TLOOPBK]/[TCOMP]/
    [TCALL] stream whose operands index side tables of pre-resolved loop
    bounds, byte-address generators and computation descriptors — and this
    module walks those streams against the shared [Cache] simulator.

    {b Exact contract}: bit-identical counters to [Trace_compile.run] in
    exact mode (and hence to [Trace.run]): the same float additions in the
    same order, the same cache accesses in the same order, the same lazy
    error behavior (per-entity descriptors are consulted at execution
    time, so a node inside a zero-trip loop never raises), the same
    first-execution spill-slot allocation order, the same cid-keyed
    first-executed-occurrence memoization of computation contexts, and the
    same depth-0 [sample_outer] semantics. [test/test_bytecode.ml] and the
    batched-replay block of [test/test_trace.ml] enforce this
    differentially at jobs 1 and 4.

    {b Batched stream replay} (the fused fast path, on by default; off via
    [~batch:false] or [DAISY_TRACE_FUSE=0]): when an innermost loop body
    is a straight-line run of computations ([w_body]) whose sites are all
    affine with per-iteration byte deltas that divide the L1 line size,
    the replay precomputes per-site line addresses once per loop entry and
    bumps them by the delta instead of re-evaluating the affine form and
    re-deriving [addr lsr line_shift] per access. Whole same-line runs are
    then retired in O(sites): one leading iteration runs generically, a
    pure residency probe proves every touched line L1-resident (all-hit
    traffic cannot evict, so one probed iteration covers the run), and
    {!Cache.l1_hit_run} plus closed-form counter charging replay the rest.
    The closed form is used only when every per-iteration increment is a
    multiple of 2^-12 and magnitudes stay far below 2^53, where repeated
    float addition equals the fused multiply-add bit-for-bit; otherwise —
    and whenever the probe declines — the generic per-iteration path runs,
    so the fast path never changes a counter bit.

    {b Simulation memo} (cross-candidate, opt-in via [?memo]): trace
    sections are content-addressed by (canonical fingerprint, [sample_outer],
    incoming cache-state class); a hit replays the memoized outcome —
    counters copy, raw cache-stat deltas, budget ticks, clock advance and
    the outgoing tag/dirty/LRU state via {!Cache.restore} — without
    walking. LRU decisions depend only on stamp order within a set, which
    clock translation preserves, so the restored state is bit-identical to
    having re-walked the section.

    Approx mode (line stepping, adaptive sampling) stays exclusive to
    [Trace_compile]; the bytecode engine only replaces the exact path.

    Fault points: ["bc_compile"] fires inside lowering, ["bc_run"] before
    the walk, ["trace_fuse"] before a batched walk — [Cost.evaluate_guarded]
    degrades bytecode -> compiled -> tree on any of them. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module B = Daisy_lir.Bytecode

(* ------------------------------------------------------------------ *)
(* Lowering hooks                                                       *)

(** Flops of a computation: rhs plus guard predicate, un-clamped —
    replicates [Trace.compile_comp]'s accounting. *)
let comp_flops (c : Ir.comp) : float =
  let rec gp = function
    | Ir.Pcmp (_, a, b) -> 1.0 +. Trace.vexpr_flops a +. Trace.vexpr_flops b
    | Ir.Pand (a, b) | Ir.Por (a, b) -> 1.0 +. gp a +. gp b
    | Ir.Pnot a -> 1.0 +. gp a
  in
  Trace.vexpr_flops c.Ir.rhs
  +. (match c.Ir.guard with Some g -> gp g | None -> 0.0)

(** Machine-model hooks over a concrete layout, so [Bytecode.lower] can
    fold byte addresses and precompute spill/flop/stride facts without a
    dependency on this library. *)
let hooks_of_layout (layout : Trace.layout) : B.trace_hooks =
  {
    B.th_base_of =
      (fun name ->
        match layout.Trace.base_of name with
        | b -> Some b
        | exception Trace.Unsupported_trace _ -> None);
    th_dims_of = layout.Trace.dims_of;
    th_spills = Trace.spill_estimate;
    th_comp_flops = comp_flops;
    th_simd_stride = Trace.simd_stride;
  }

let lower (p : Ir.program) ~(param_env : int Util.SMap.t) : B.t =
  let layout = Trace.layout_of p ~sizes:param_env in
  B.lower ~hooks:(hooks_of_layout layout) ~sizes:param_env p

(* ------------------------------------------------------------------ *)
(* Runtime                                                              *)

(** One bound (executable) access site of a computation occurrence. *)
type csite = { cs_fn : unit -> int; cs_write : bool; cs_gather : bool }

(** A computation occurrence bound at its first execution against the
    cid-memoized context — mirrors the per-node closures of
    [Trace_compile]. *)
type ccomp = {
  k_sites : csite array;
  k_port : float;
  k_class : int;
  k_flops : float;
  k_atomic : bool;
  k_contended : bool;
}

(* ------------------------------------------------------------------ *)
(* Batched replay plans                                                 *)

(** One site of a batched loop: the bound address thunk (evaluated once
    per loop entry) and its per-iteration byte delta. Only consulted at
    loop entry — the replay itself runs over the plan's flat unboxed
    arrays, so the hot loops never chase record pointers or unbox the
    float fields of this mixed record. *)
type bsite = {
  b_write : bool;
  b_gather : bool;
  b_port : float;
  b_fn : unit -> int;
  b_dd : int;
  b_shift : int;  (** log2 |b_dd| — eligible deltas divide the pow2 line *)
}

(** Static replay plan for one straight-line innermost loop. *)
type bplan = {
  p_flat : bsite array;  (** all sites, execution order (entry-time only) *)
  p_nsites : int;  (** [Array.length p_flat] *)
  p_spills : int;
  p_sp_base : int;
  p_touch : int;  (** L1 touches per iteration: sites + 2*spills *)
  (* hot replay state: flat unboxed arrays, length [p_touch] unless
     noted (spill entries carry delta 0 and fixed addresses) *)
  p_addr : int array;  (** running byte address per touch *)
  p_dd : int array;  (** per-iteration byte delta per touch *)
  p_shifts : int array;  (** log2 |delta| per touch (chunked mode only) *)
  p_port : float array;  (** per site: port weight for loads/stores *)
  p_gth : bool array;  (** per site: gather site *)
  (* per body comp, in order: flop class/amount and atomic kind *)
  p_gclass : int array;
  p_gflops : float array;
  p_gatomic : bool array;
  p_gcontended : bool array;
  p_lines : int array;  (** scratch, length [p_touch] *)
  p_writes : bool array;  (** per touch, length [p_touch] *)
  p_memoable : bool array;
      (** per touch: |delta| < line size, so the slot memo can validate
          across iterations; streaming touches (|delta| >= line) change
          lines every iteration and skip the memo entirely *)
  p_slots : int array;  (** probe scratch, length [p_touch] *)
  p_striding : int array;  (** indices into [p_flat] with [b_dd <> 0] *)
  (* caller-owned per-touch slot memo for {!Cache.l1_replay_iter} *)
  p_mline : int array;
  p_mslot : int array;
  p_mep : int array;  (** -1 = not yet armed *)
  p_batchable : bool;
      (** every delta is 0 or divides the line with |dd| <= line/2, so
          run lengths are well defined and hit-runs can retire whole
          same-line spans; when false the loop still replays through the
          fused per-iteration path (incremental addresses, no closures) *)
  p_minrun : int;
      (** shortest full-line run over striding sites ([max_int] when none
          stride): hit-runs can retire at most [p_minrun - 1] iterations
          per chunk, so tiny values mean the chunk machinery churns *)
  mutable p_chunked : bool;
      (** current mode: chunk/probe/hit-run machinery vs plain fused
          per-iteration replay. Seeded from the static geometry and
          demoted adaptively when observed chunks come out too short to
          pay for the machinery (many staggered sites shrink the min
          same-line run far below [p_minrun]). Both modes are exact, so
          the switch is a pure performance decision. *)
  mutable p_iters : int;  (** iterations replayed through the chunked mode *)
  mutable p_chunks : int;  (** chunk-leading generic iterations thereof *)
  (* per-iteration counter increments, for closed-form charging *)
  p_loads : float;
  p_stores : float;
  p_gather : float;
  p_flops : float;
  p_vflops : float;
  p_uflops : float;
  p_atomics : float;
  p_atomics_priv : float;
  p_spill_f : float;
  p_dyadic : bool;  (** every increment is a multiple of 2^-12 *)
}

type bstate = Bunknown | Bineligible | Bplan of bplan

(* Closed-form charging is exact only while every accumulator stays in a
   range where float addition of 2^-12 multiples is exact: |v| < 2^40
   keeps v*4096 < 2^53 with a wide margin. *)
let dyadic_bound = 1.099511627776e12 (* 2^40 *)
let is_dyadic x = Float.is_integer (x *. 4096.0) && Float.abs x < dyadic_bound

let batch_default =
  match Sys.getenv_opt "DAISY_TRACE_FUSE" with Some "0" -> false | _ -> true


(** Walk one trace section; returns its counters, exactly like
    [Trace_compile.trace_node]. *)
let trace_tnode ?(batch = batch_default) (wctx : Trace.walk_ctx) (bc : B.t)
    (tn : B.tnode) : Trace.counters =
  let config = wctx.Trace.config in
  let cache = wctx.Trace.cache in
  let budget = wctx.Trace.budget in
  let counters = Trace.zero_counters () in
  let l1_before = Cache.copy_stats (Cache.l1_stats cache) in
  let l2_before = Cache.copy_stats (Cache.l2_stats cache) in
  let iters = Array.make (max 1 tn.B.t_nslots) 0 in
  let xstack = Array.make (max 1 bc.B.max_xstack) 0 in
  let bind ix =
    B.binder ~pool:tn.B.t_pool ~xpool:tn.B.t_xpool ~names:bc.B.names
      ~regs:iters ~xstack ix
  in
  let gather_mult = float_of_int config.Config.vector_width -. 1.0 in
  let vw = float_of_int config.Config.vector_width in
  let line_shift = Cache.l1_line_shift cache in
  let line_bytes = 1 lsl line_shift in
  (* loop runtime state, indexed by loop id (loops are not reentrant) *)
  let nl = Array.length tn.B.t_loops in
  let lo_fns = Array.make nl (fun () -> 0) in
  let hi_fns = Array.make nl (fun () -> 0) in
  Array.iteri
    (fun i (w : B.tloop) ->
      lo_fns.(i) <- bind tn.B.t_ixs.(w.B.w_lo);
      hi_fns.(i) <- bind tn.B.t_ixs.(w.B.w_hi))
    tn.B.t_loops;
  let rem = Array.make (max 1 nl) 0 in
  let cur = Array.make (max 1 nl) 0 in
  let trips = Array.make (max 1 nl) 0 in
  let counts = Array.make (max 1 nl) 0 in
  let plans = Array.make (max 1 nl) Bunknown in
  (* spill slots: counts memoized per lid so duplicated subtrees share,
     allocation order = first-execution order, base advances only for
     loops that actually spill *)
  let sp_n = Array.make (max 1 nl) (-1) in
  let sp_base = Array.make (max 1 nl) 0 in
  let spill_tbl : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  let stack_base = ref 1024 in
  (* computation occurrences: cid memo picks the first-executed occurrence
     as the shared static context *)
  let nc = Array.length tn.B.t_comps in
  let comp_rt : ccomp option array = Array.make (max 1 nc) None in
  let comp_memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let bind_site ~(in_simd : bool) (ts : B.tsite) : csite =
    let fn =
      match ts.B.ts_acc with
      | B.Ta_aff (off, n) -> bind (B.Ix_aff (off, n))
      | B.Ta_gen (base, dims, ixids) ->
          let fns = Array.map (fun i -> bind tn.B.t_ixs.(i)) ixids in
          let ni = Array.length fns and nd = Array.length dims in
          let n = if nd < ni then nd else ni in
          fun () ->
            let acc = ref 0 in
            for k = 0 to n - 1 do
              acc := (!acc * dims.(k)) + fns.(k) ()
            done;
            if nd <> ni then raise (Trace.Unsupported_trace "rank mismatch");
            base + (8 * !acc)
    in
    { cs_fn = fn; cs_write = ts.B.ts_write;
      cs_gather = ts.B.ts_strided && in_simd }
  in
  let bind_comp (id : int) (y : B.tcomp) : ccomp =
    let mid =
      match Hashtbl.find_opt comp_memo y.B.y_cid with
      | Some m -> m
      | None ->
          Hashtbl.replace comp_memo y.B.y_cid id;
          id
    in
    let m = tn.B.t_comps.(mid) in
    let k =
      {
        k_sites =
          Array.map (bind_site ~in_simd:y.B.y_in_simd) m.B.y_sites;
        k_port = (if m.B.y_class = 1 then 1.0 /. vw else 1.0);
        k_class = m.B.y_class;
        k_flops = m.B.y_flops;
        k_atomic = m.B.y_atomic;
        k_contended = m.B.y_contended;
      }
    in
    comp_rt.(id) <- Some k;
    k
  in
  (* per-iteration byte delta of one site of the memoized occurrence:
     [Some 0] for loop-invariant sites, [None] for non-affine ones *)
  let site_delta (w : B.tloop) (ts : B.tsite) : int option =
    match ts.B.ts_acc with
    | B.Ta_gen _ -> None
    | B.Ta_aff (off, nt) ->
        let c = ref 0 in
        for k = 0 to nt - 1 do
          if tn.B.t_pool.(off + 1 + (2 * k)) = w.B.w_slot then
            c := tn.B.t_pool.(off + 2 + (2 * k))
        done;
        Some (!c * w.B.w_step)
  in
  (* Build the replay plan for a straight-line loop at its first non-empty
     entry — the comps bind here, which IS their first execution, so the
     cid memo and spill allocation order are untouched. Never called for
     zero-trip entries (lazy error contract). *)
  let build_plan (id : int) (w : B.tloop) : bstate =
    match w.B.w_body with
    | None -> Bineligible
    | Some ids ->
        let ok =
          Array.for_all (fun cid -> tn.B.t_comps.(cid).B.y_err = None) ids
        in
        if not ok then Bineligible
        else begin
          let groups =
            Array.map
              (fun cid ->
                let y = tn.B.t_comps.(cid) in
                let k =
                  match comp_rt.(cid) with
                  | Some k -> k
                  | None -> bind_comp cid y
                in
                (cid, k))
              ids
          in
          let eligible = ref true in
          let batchable = ref true in
          let bgroups =
            Array.map
              (fun (cid, k) ->
                let y = tn.B.t_comps.(cid) in
                let mid =
                  match Hashtbl.find_opt comp_memo y.B.y_cid with
                  | Some m -> m
                  | None -> cid
                in
                let m = tn.B.t_comps.(mid) in
                let sites =
                  Array.mapi
                    (fun s (ts : B.tsite) ->
                      let dd =
                        match site_delta w ts with
                        | Some dd -> dd
                        | None ->
                            eligible := false;
                            0
                      in
                      let a = abs dd in
                      if
                        not
                          (dd = 0
                          || (a <= line_bytes / 2 && line_bytes mod a = 0))
                      then batchable := false;
                      (* batchable deltas divide the power-of-two line
                         size, so |dd| is itself a power of two and run
                         lengths reduce to shifts; the shift is
                         meaningless (and unused) when not batchable *)
                      let shift =
                        let s = ref 0 in
                        while a > 1 lsl !s do incr s done;
                        !s
                      in
                      {
                        b_write = k.k_sites.(s).cs_write;
                        b_gather = k.k_sites.(s).cs_gather;
                        b_port = k.k_port;
                        b_fn = k.k_sites.(s).cs_fn;
                        b_dd = dd;
                        b_shift = shift;
                      })
                    m.B.y_sites
                in
                (k, sites))
              groups
          in
          if not !eligible then Bineligible
          else begin
            let flat = Array.concat (Array.to_list (Array.map snd bgroups)) in
            let nst = Array.length flat in
            let striding = ref [] in
            let minrun = ref max_int in
            for s = nst - 1 downto 0 do
              if flat.(s).b_dd <> 0 then begin
                striding := s :: !striding;
                let r = line_bytes lsr flat.(s).b_shift in
                if r < !minrun then minrun := r
              end
            done;
            let spills = sp_n.(id) in
            let base = sp_base.(id) in
            let touch = nst + (2 * spills) in
            let lines = Array.make (max 1 touch) 0 in
            let writes = Array.make (max 1 touch) false in
            let memoable = Array.make (max 1 touch) true in
            let addrs = Array.make (max 1 touch) 0 in
            let deltas = Array.make (max 1 touch) 0 in
            let shifts = Array.make (max 1 touch) 0 in
            let ports = Array.make (max 1 nst) 0.0 in
            let gth = Array.make (max 1 nst) false in
            Array.iteri
              (fun s a ->
                writes.(s) <- a.b_write;
                deltas.(s) <- a.b_dd;
                shifts.(s) <- a.b_shift;
                ports.(s) <- a.b_port;
                gth.(s) <- a.b_gather;
                memoable.(s) <- abs a.b_dd < line_bytes)
              flat;
            for sp = 0 to spills - 1 do
              let addr = base + (sp * 8) in
              let line = addr lsr line_shift in
              lines.(nst + (2 * sp)) <- line;
              lines.(nst + (2 * sp) + 1) <- line;
              addrs.(nst + (2 * sp)) <- addr;
              addrs.(nst + (2 * sp) + 1) <- addr;
              writes.(nst + (2 * sp)) <- true
            done;
            let ng = Array.length bgroups in
            let gclass = Array.make (max 1 ng) 0 in
            let gflops = Array.make (max 1 ng) 0.0 in
            let gatomic = Array.make (max 1 ng) false in
            let gcontended = Array.make (max 1 ng) false in
            Array.iteri
              (fun g ((k : ccomp), _) ->
                gclass.(g) <- k.k_class;
                gflops.(g) <- k.k_flops;
                gatomic.(g) <- k.k_atomic;
                gcontended.(g) <- k.k_contended)
              bgroups;
            let fspills = float_of_int spills in
            let loads = ref 0.0 and stores = ref 0.0 and gather = ref 0.0 in
            Array.iter
              (fun a ->
                if a.b_write then stores := !stores +. a.b_port
                else loads := !loads +. a.b_port;
                if a.b_gather then gather := !gather +. gather_mult)
              flat;
            loads := !loads +. fspills;
            stores := !stores +. fspills;
            let flops = ref 0.0 and vflops = ref 0.0 and uflops = ref 0.0 in
            let atomics = ref 0.0 and atomics_priv = ref 0.0 in
            Array.iter
              (fun (k, _) ->
                (if k.k_class = 1 then vflops := !vflops +. k.k_flops
                 else if k.k_class = 2 then uflops := !uflops +. k.k_flops
                 else flops := !flops +. k.k_flops);
                if k.k_atomic then
                  if k.k_contended then atomics := !atomics +. 1.0
                  else atomics_priv := !atomics_priv +. 1.0)
              bgroups;
            let dyadic =
              Array.for_all (fun a -> is_dyadic a.b_port) flat
              && is_dyadic gather_mult
              && Array.for_all (fun (k, _) -> is_dyadic k.k_flops) bgroups
              && is_dyadic !loads && is_dyadic !stores && is_dyadic !gather
              && is_dyadic !flops && is_dyadic !vflops && is_dyadic !uflops
            in
            Bplan
              {
                p_flat = flat;
                p_nsites = nst;
                p_spills = spills;
                p_sp_base = base;
                p_touch = touch;
                p_addr = addrs;
                p_dd = deltas;
                p_shifts = shifts;
                p_port = ports;
                p_gth = gth;
                p_gclass = gclass;
                p_gflops = gflops;
                p_gatomic = gatomic;
                p_gcontended = gcontended;
                p_lines = lines;
                p_writes = writes;
                p_memoable = memoable;
                p_slots = Array.make (max 1 touch) 0;
                p_striding = Array.of_list !striding;
                p_mline = Array.make (max 1 touch) (-1);
                p_mslot = Array.make (max 1 touch) 0;
                p_mep = Array.make (max 1 touch) (-1);
                p_batchable = !batchable;
                p_minrun = !minrun;
                p_chunked = !batchable && !minrun >= 4;
                p_iters = 0;
                p_chunks = 0;
                p_loads = !loads;
                p_stores = !stores;
                p_gather = !gather;
                p_flops = !flops;
                p_vflops = !vflops;
                p_uflops = !uflops;
                p_atomics = !atomics;
                p_atomics_priv = !atomics_priv;
                p_spill_f = fspills;
                p_dyadic = dyadic;
              }
          end
        end
  in
  (* One generic iteration of a batched loop, at the plan's current
     addresses, advancing them by the deltas — byte-for-byte the dispatch
     loop's charges. All cache traffic runs first in touch order (the
     spill write/read pairs sit after the sites), then the counter adds:
     cache state and counters are disjoint, and per accumulator the add
     sequence is unchanged, so the split preserves bit-exactness while
     one call covers the iteration's traffic and the epoch-validated
     slot memo skips tag scans for proven hits. *)
  let generic_iteration (pl : bplan) : unit =
    Cache.l1_replay_advance cache ~addrs:pl.p_addr ~deltas:pl.p_dd
      ~writes:pl.p_writes ~memoable:pl.p_memoable ~n:pl.p_touch
      ~mline:pl.p_mline ~mslot:pl.p_mslot ~mep:pl.p_mep;
    let ports = pl.p_port in
    let wr = pl.p_writes in
    let gth = pl.p_gth in
    for s = 0 to pl.p_nsites - 1 do
      let port = Array.unsafe_get ports s in
      (if Array.unsafe_get wr s then
         counters.Trace.stores <- counters.Trace.stores +. port
       else counters.Trace.loads <- counters.Trace.loads +. port);
      if Array.unsafe_get gth s then
        counters.Trace.gather_extra <-
          counters.Trace.gather_extra +. gather_mult
    done;
    let gflops = pl.p_gflops in
    for g = 0 to Array.length gflops - 1 do
      let f = Array.unsafe_get gflops g in
      let c = Array.unsafe_get pl.p_gclass g in
      (if c = 1 then
         counters.Trace.vec_flops <- counters.Trace.vec_flops +. f
       else if c = 2 then
         counters.Trace.unrolled_flops <-
           counters.Trace.unrolled_flops +. f
       else counters.Trace.flops <- counters.Trace.flops +. f);
      if pl.p_gatomic.(g) then
        if pl.p_gcontended.(g) then
          counters.Trace.atomics <- counters.Trace.atomics +. 1.0
        else
          counters.Trace.atomics_private <-
            counters.Trace.atomics_private +. 1.0
    done;
    if pl.p_spills > 0 then begin
      counters.Trace.loads <- counters.Trace.loads +. pl.p_spill_f;
      counters.Trace.stores <- counters.Trace.stores +. pl.p_spill_f;
      counters.Trace.spill_ops <-
        counters.Trace.spill_ops +. (2.0 *. pl.p_spill_f)
    end
  in
  (* [generic_iteration] with the per-site/per-group counter loops
     collapsed into one add per accumulator. Valid only under the same
     dyadic guard that licenses the chunked closed form: every
     accumulator value and partial sum is then an exactly-represented
     2^-12 multiple, float addition on them is exact and hence
     associative, so the per-iteration totals are bit-identical to the
     site-by-site sequence (this is the chunked transform at m = 1). *)
  let light_iteration (pl : bplan) : unit =
    Cache.l1_replay_advance cache ~addrs:pl.p_addr ~deltas:pl.p_dd
      ~writes:pl.p_writes ~memoable:pl.p_memoable ~n:pl.p_touch
      ~mline:pl.p_mline ~mslot:pl.p_mslot ~mep:pl.p_mep;
    (if pl.p_loads <> 0.0 then
       counters.Trace.loads <- counters.Trace.loads +. pl.p_loads);
    (if pl.p_stores <> 0.0 then
       counters.Trace.stores <- counters.Trace.stores +. pl.p_stores);
    (if pl.p_gather <> 0.0 then
       counters.Trace.gather_extra <-
         counters.Trace.gather_extra +. pl.p_gather);
    (if pl.p_flops <> 0.0 then
       counters.Trace.flops <- counters.Trace.flops +. pl.p_flops);
    (if pl.p_vflops <> 0.0 then
       counters.Trace.vec_flops <- counters.Trace.vec_flops +. pl.p_vflops);
    (if pl.p_uflops <> 0.0 then
       counters.Trace.unrolled_flops <-
         counters.Trace.unrolled_flops +. pl.p_uflops);
    (if pl.p_atomics <> 0.0 then
       counters.Trace.atomics <- counters.Trace.atomics +. pl.p_atomics);
    (if pl.p_atomics_priv <> 0.0 then
       counters.Trace.atomics_private <-
         counters.Trace.atomics_private +. pl.p_atomics_priv);
    (if pl.p_spill_f <> 0.0 then
       counters.Trace.spill_ops <-
         counters.Trace.spill_ops +. (2.0 *. pl.p_spill_f))
  in
  (* library calls: dimension thunks bound at first execution *)
  let nk = Array.length tn.B.t_calls in
  let call_rt : (unit -> int) array option array = Array.make (max 1 nk) None in
  let scale_factor = ref 1.0 in
  let code = tn.B.t_code in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    let op = code.(!pc) in
    if op = B.t_comp then begin
      let id = code.(!pc + 1) in
      let y = tn.B.t_comps.(id) in
      (match y.B.y_err with
      | Some m -> raise (Trace.Unsupported_trace m)
      | None -> ());
      let k =
        match comp_rt.(id) with Some k -> k | None -> bind_comp id y
      in
      let sites = k.k_sites in
      let port = k.k_port in
      for s = 0 to Array.length sites - 1 do
        let a = sites.(s) in
        Cache.access cache ~addr:(a.cs_fn ()) ~write:a.cs_write;
        if a.cs_write then
          counters.Trace.stores <- counters.Trace.stores +. port
        else counters.Trace.loads <- counters.Trace.loads +. port;
        if a.cs_gather then
          counters.Trace.gather_extra <-
            counters.Trace.gather_extra +. gather_mult
      done;
      (if k.k_class = 1 then
         counters.Trace.vec_flops <- counters.Trace.vec_flops +. k.k_flops
       else if k.k_class = 2 then
         counters.Trace.unrolled_flops <-
           counters.Trace.unrolled_flops +. k.k_flops
       else counters.Trace.flops <- counters.Trace.flops +. k.k_flops);
      if k.k_atomic then
        if k.k_contended then
          counters.Trace.atomics <- counters.Trace.atomics +. 1.0
        else
          counters.Trace.atomics_private <-
            counters.Trace.atomics_private +. 1.0;
      pc := !pc + 2
    end
    else if op = B.t_loop then begin
      let id = code.(!pc + 1) in
      let end_pc = code.(!pc + 2) in
      let w = tn.B.t_loops.(id) in
      (match w.B.w_err with
      | Some m -> raise (Trace.Unsupported_trace m)
      | None -> ());
      let lo = lo_fns.(id) () in
      let hi = hi_fns.(id) () in
      let step = w.B.w_step in
      let trip =
        if step > 0 then max 0 (((hi - lo) / step) + 1)
        else max 0 (((lo - hi) / -step) + 1)
      in
      if w.B.w_starts_parallel then begin
        counters.Trace.has_parallel <- true;
        counters.Trace.parallel_regions <-
          counters.Trace.parallel_regions +. 1.0;
        counters.Trace.par_trip <-
          Float.max counters.Trace.par_trip (float_of_int trip)
      end;
      if sp_n.(id) < 0 then begin
        let s, b =
          if not w.B.w_is_leaf then (0, 0)
          else
            match Hashtbl.find_opt spill_tbl w.B.w_lid with
            | Some sb -> sb
            | None ->
                let s = w.B.w_spills in
                let b = !stack_base in
                if s > 0 then stack_base := !stack_base + (s * 8);
                Hashtbl.replace spill_tbl w.B.w_lid (s, b);
                (s, b)
        in
        sp_n.(id) <- s;
        sp_base.(id) <- b
      end;
      let count =
        if
          w.B.w_depth0
          && wctx.Trace.sample_outer > 0
          && trip > wctx.Trace.sample_outer
        then wctx.Trace.sample_outer
        else trip
      in
      trips.(id) <- trip;
      counts.(id) <- count;
      if count = 0 then pc := end_pc
      else begin
        rem.(id) <- count;
        cur.(id) <- lo;
        Budget.tick budget;
        iters.(w.B.w_slot) <- lo;
        (match plans.(id) with
        | Bunknown when batch -> plans.(id) <- build_plan id w
        | _ -> ());
        match plans.(id) with
        | Bplan pl when batch ->
            (* fused replay of the whole trip: addresses advance
               incrementally (no per-iteration closure calls), and when
               the plan is batchable with long enough same-line runs the
               chunk machinery retires all-hit spans in closed form *)
            let flat = pl.p_flat in
            let nst = pl.p_nsites in
            for s = 0 to nst - 1 do
              pl.p_addr.(s) <- flat.(s).b_fn ()
            done;
            let guard =
              (* the closed form c +. m*inc equals m repeated adds only
                 while c is itself a 2^-12 multiple and both stay small
                 enough that every intermediate is exact: c < 2^38 and
                 count*inc < 2^38 bound every intermediate accumulator by
                 2^39 (numerators < 2^51) and every per-chunk product
                 fm *. inc by 2^38 (numerators < 2^50). Checked once per
                 loop entry so the replay loops carry no float guards.
                 The same bounds license [light_iteration]'s collapsed
                 per-iteration adds (the m = 1 case). *)
              pl.p_dyadic
              &&
              let fcount = float_of_int count in
              let mag = 2.74877906944e11 (* 2^38 *) in
              let ok c inc =
                inc = 0.0
                || (Float.is_integer (c *. 4096.0)
                    && Float.abs c < mag
                    && fcount *. inc < mag)
              in
              ok counters.Trace.loads pl.p_loads
              && ok counters.Trace.stores pl.p_stores
              && ok counters.Trace.gather_extra pl.p_gather
              && ok counters.Trace.flops pl.p_flops
              && ok counters.Trace.vec_flops pl.p_vflops
              && ok counters.Trace.unrolled_flops pl.p_uflops
              && ok counters.Trace.atomics pl.p_atomics
              && ok counters.Trace.atomics_private pl.p_atomics_priv
              && ok counters.Trace.spill_ops (2.0 *. pl.p_spill_f)
              && ok (Cache.l1_stats cache).Cache.accesses
                   (float_of_int pl.p_touch)
            in
            let chunked =
              (* statically: runs shorter than 4 iterations cap hit-run
                 spans at 3, so the per-chunk probe/min machinery costs
                 more than the per-iteration path it replaces; demoted
                 adaptively when observed chunks come out short *)
              pl.p_chunked
              && (let ok = ref true in
                  for s = 0 to nst - 1 do
                    if
                      pl.p_addr.(s) < 0
                      || pl.p_addr.(s) + ((count - 1) * pl.p_dd.(s)) < 0
                    then ok := false
                    (* lsr-based run-length math assumes non-negative
                       addresses throughout the trip *)
                  done;
                  !ok)
              && guard
            in
            if not chunked then begin
              (* fused-only replay: incremental addresses and
                 table-driven charging, the cache touched
                 access-by-access — bit-identical to the dispatch loop
                 for any stride, address sign, or accumulator value *)
              (* fuel for the whole trip at once (the entry already
                 ticked iteration one), exactly as the chunked mode
                 spends per hit-run; the deadline poll that [Budget.tick]
                 amortizes is kept on the same 4096 cadence *)
              Budget.spend budget (count - 1);
              if guard then
                for it = 1 to count do
                  if it land 4095 = 0 then Util.check_deadline ();
                  light_iteration pl
                done
              else
                for it = 1 to count do
                  if it land 4095 = 0 then Util.check_deadline ();
                  generic_iteration pl
                done
            end
            else begin
              let remaining = ref count in
              let chunks = ref 0 in
              let first = ref true in
              let mask = line_bytes - 1 in
              let striding = pl.p_striding in
              let ns = Array.length striding in
              while !remaining > 0 do
                (* iterations (incl. the current one) for which every
                   site stays on its current line *)
                let chunk = ref !remaining in
                for q = 0 to ns - 1 do
                  let idx = Array.unsafe_get striding q in
                  let addr = Array.unsafe_get pl.p_addr idx in
                  let sh = Array.unsafe_get pl.p_shifts idx in
                  let r =
                    if Array.unsafe_get pl.p_dd idx > 0 then
                      ((line_bytes - (addr land mask) - 1) lsr sh) + 1
                    else ((addr land mask) lsr sh) + 1
                  in
                  if r < !chunk then chunk := r
                done;
                if !first then first := false else Budget.tick budget;
                incr chunks;
                light_iteration pl;
                decr remaining;
                let m = min (!chunk - 1) !remaining in
                if m > 0 then begin
                  for s = 0 to nst - 1 do
                    pl.p_lines.(s) <- pl.p_addr.(s) lsr line_shift
                  done;
                  if
                    Cache.l1_probe_memo cache ~lines:pl.p_lines
                      ~n:pl.p_touch ~slots:pl.p_slots ~mline:pl.p_mline
                      ~mslot:pl.p_mslot ~mep:pl.p_mep
                  then begin
                    let fm = float_of_int m in
                    Budget.spend budget m;
                    Util.check_deadline ();
                    Cache.l1_hit_run cache ~slots:pl.p_slots
                      ~writes:pl.p_writes ~k:pl.p_touch ~n:m;
                    (if pl.p_loads <> 0.0 then
                       counters.Trace.loads <-
                         counters.Trace.loads +. (fm *. pl.p_loads));
                    (if pl.p_stores <> 0.0 then
                       counters.Trace.stores <-
                         counters.Trace.stores +. (fm *. pl.p_stores));
                    (if pl.p_gather <> 0.0 then
                       counters.Trace.gather_extra <-
                         counters.Trace.gather_extra +. (fm *. pl.p_gather));
                    (if pl.p_flops <> 0.0 then
                       counters.Trace.flops <-
                         counters.Trace.flops +. (fm *. pl.p_flops));
                    (if pl.p_vflops <> 0.0 then
                       counters.Trace.vec_flops <-
                         counters.Trace.vec_flops +. (fm *. pl.p_vflops));
                    (if pl.p_uflops <> 0.0 then
                       counters.Trace.unrolled_flops <-
                         counters.Trace.unrolled_flops +. (fm *. pl.p_uflops));
                    (if pl.p_atomics <> 0.0 then
                       counters.Trace.atomics <-
                         counters.Trace.atomics +. (fm *. pl.p_atomics));
                    (if pl.p_atomics_priv <> 0.0 then
                       counters.Trace.atomics_private <-
                         counters.Trace.atomics_private
                         +. (fm *. pl.p_atomics_priv));
                    (* spill loads/stores are folded into p_loads/p_stores *)
                    (if pl.p_spill_f <> 0.0 then
                       counters.Trace.spill_ops <-
                         counters.Trace.spill_ops
                         +. (fm *. 2.0 *. pl.p_spill_f));
                    for s = 0 to nst - 1 do
                      pl.p_addr.(s) <- pl.p_addr.(s) + (m * pl.p_dd.(s))
                    done;
                    remaining := !remaining - m
                  end
                end
              done;
              (* demote to plain fused replay once enough evidence shows
                 chunks averaging under 2 iterations: hit-runs then
                 retire under half the traffic, and the per-chunk min
                 and probe cost more than they save *)
              pl.p_iters <- pl.p_iters + count;
              pl.p_chunks <- pl.p_chunks + !chunks;
              if pl.p_iters >= 4096 && 2 * pl.p_chunks > pl.p_iters then
                pl.p_chunked <- false
            end;
            rem.(id) <- 0;
            let last = lo + ((count - 1) * step) in
            cur.(id) <- last;
            iters.(w.B.w_slot) <- last;
            if count < trips.(id) then
              scale_factor :=
                float_of_int trips.(id) /. float_of_int counts.(id);
            pc := end_pc
        | _ -> pc := !pc + 3
      end
    end
    else if op = B.t_loopbk then begin
      let id = code.(!pc + 1) in
      let body_pc = code.(!pc + 2) in
      let spills = sp_n.(id) in
      if spills > 0 then begin
        let base = sp_base.(id) in
        for sp = 0 to spills - 1 do
          let addr = base + (sp * 8) in
          Cache.access cache ~addr ~write:true;
          Cache.access cache ~addr ~write:false
        done;
        let fs = float_of_int spills in
        counters.Trace.loads <- counters.Trace.loads +. fs;
        counters.Trace.stores <- counters.Trace.stores +. fs;
        counters.Trace.spill_ops <-
          counters.Trace.spill_ops +. (2.0 *. fs)
      end;
      let r = rem.(id) - 1 in
      rem.(id) <- r;
      if r > 0 then begin
        let w = tn.B.t_loops.(id) in
        let i = cur.(id) + w.B.w_step in
        cur.(id) <- i;
        Budget.tick budget;
        iters.(w.B.w_slot) <- i;
        pc := body_pc
      end
      else begin
        if counts.(id) < trips.(id) then
          scale_factor :=
            float_of_int trips.(id) /. float_of_int counts.(id);
        pc := !pc + 3
      end
    end
    else if op = B.t_call then begin
      let id = code.(!pc + 1) in
      let z = tn.B.t_calls.(id) in
      (match z.B.z_err with
      | Some m -> raise (Trace.Unsupported_trace m)
      | None -> ());
      let fns =
        match call_rt.(id) with
        | Some fns -> fns
        | None ->
            let fns = Array.map (fun i -> bind tn.B.t_ixs.(i)) z.B.z_dims in
            call_rt.(id) <- Some fns;
            fns
      in
      let n = Array.length fns in
      let rec dims k = if k = n then [] else
        let v = fns.(k) () in
        v :: dims (k + 1)
      in
      let dims = dims 0 in
      let kernel = bc.B.names.(z.B.z_kernel) in
      counters.Trace.libcall_flops <-
        counters.Trace.libcall_flops
        +. (try Daisy_blas.Kernels.flops kernel dims with _ -> 0.0);
      counters.Trace.libcall_bytes <-
        counters.Trace.libcall_bytes
        +. (try Daisy_blas.Kernels.min_bytes kernel dims with _ -> 0.0);
      pc := !pc + 2
    end
    else (* t_halt *)
      running := false
  done;
  counters.Trace.l1 <- Cache.sub_stats (Cache.l1_stats cache) l1_before;
  counters.Trace.l2 <- Cache.sub_stats (Cache.l2_stats cache) l2_before;
  if !scale_factor > 1.0 then begin
    let regions = counters.Trace.parallel_regions in
    Trace.scale_counters counters !scale_factor;
    if regions > 0.0 then counters.Trace.parallel_regions <- regions
  end;
  counters

(* ------------------------------------------------------------------ *)
(* Cross-candidate simulation memo                                      *)

type memo_key = {
  mk_fp : string;
      (** canonical fingerprint: [Marshal] (no sharing) of the trace
          section plus the artifact name table it indexes *)
  mk_sample : int;
  mk_state : int;  (** incoming cache-state class: -1 = cold, else the
                       id of the entry whose outgoing state we're in *)
}

type memo_entry = {
  me_id : int;
  me_counters : Trace.counters;  (** final (scaled) counters, private *)
  me_l1 : Cache.stats;  (** raw (unscaled) cache-stat deltas *)
  me_l2 : Cache.stats;
  me_ticks : int;  (** budget steps the walk consumed *)
  me_clock : int;  (** LRU clock advance *)
  me_snap : Cache.snapshot;  (** outgoing tag/dirty/LRU state *)
}

(** Cross-candidate simulation memo: safe to share across domains (the
    table is mutex-guarded; hits only read immutable entries). Keys are
    exact — structural fingerprints, never lossy hashes — so a hit can
    only be a re-simulation of an identical section from an identical
    state class under an identical cache config. *)
type memo = {
  mm_config : Config.t;
  mm_tbl : (memo_key, memo_entry) Hashtbl.t;
  mm_lock : Mutex.t;
  mutable mm_next : int;
  mutable mm_hits : int;
  mutable mm_misses : int;
  mm_cap : int;
}

let memo_create ?(cap = 4096) (config : Config.t) : memo =
  {
    mm_config = config;
    mm_tbl = Hashtbl.create 256;
    mm_lock = Mutex.create ();
    mm_next = 0;
    mm_hits = 0;
    mm_misses = 0;
    mm_cap = max 1 cap;
  }

let memo_stats (m : memo) : int * int =
  Mutex.protect m.mm_lock (fun () -> (m.mm_hits, m.mm_misses))

let fingerprint (bc : B.t) (tn : B.tnode) : string =
  Marshal.to_string (tn, bc.B.names) [ Marshal.No_sharing ]

(** [run config p ~sizes ?sample_outer ?budget ?batch ?memo ()] — lower
    once, walk every trace section; drop-in replacement for
    [Trace_compile.run] exact mode. [batch] enables the fused batched
    replay (default on; [DAISY_TRACE_FUSE=0] flips the default); [memo]
    shares simulation results across calls with an identical config. *)
let run (config : Config.t) (p : Ir.program) ~(sizes : (string * int) list)
    ?(sample_outer = 0) ?(budget = Budget.unlimited ())
    ?(batch = batch_default) ?memo () : Trace.counters list =
  Fault.inject "bc_run";
  if batch then Fault.inject "trace_fuse";
  let param_env =
    List.fold_left (fun m (k, v) -> Util.SMap.add k v m) Util.SMap.empty sizes
  in
  let layout = Trace.layout_of p ~sizes:param_env in
  let bc = B.lower ~hooks:(hooks_of_layout layout) ~sizes:param_env p in
  let cache = Cache.create config in
  let wctx =
    { Trace.config; cache; layout; param_env; sample_outer; budget }
  in
  let memo =
    match memo with Some m when m.mm_config = config -> memo | _ -> None
  in
  (* incoming state class threads through the tnodes of one run: a fresh
     cache is Cold (-1); each hit/store moves to that entry's outgoing
     state; -2 = unclassified (full table), memoization stops there *)
  let state = ref (-1) in
  let eval (tnl : B.tnode) : Trace.counters =
    match memo with
    | None -> trace_tnode ~batch wctx bc tnl
    | Some m ->
        if !state = -2 then trace_tnode ~batch wctx bc tnl
        else begin
          let key =
            { mk_fp = fingerprint bc tnl; mk_sample = sample_outer;
              mk_state = !state }
          in
          let hit =
            Mutex.protect m.mm_lock (fun () ->
                match Hashtbl.find_opt m.mm_tbl key with
                | Some e ->
                    m.mm_hits <- m.mm_hits + 1;
                    Some e
                | None ->
                    m.mm_misses <- m.mm_misses + 1;
                    None)
          in
          match hit with
          | Some e ->
              (* replay the memoized outcome: budget first (Exhausted at
                 the same fuel the walk would have died at), then clock,
                 state and raw stat deltas *)
              Budget.spend budget e.me_ticks;
              Util.check_deadline ();
              Cache.restore cache e.me_snap ~clock_delta:e.me_clock;
              Cache.add_stats (Cache.l1_stats cache) e.me_l1;
              Cache.add_stats (Cache.l2_stats cache) e.me_l2;
              state := e.me_id;
              Trace.copy_counters e.me_counters
          | None ->
              let l1b = Cache.copy_stats (Cache.l1_stats cache) in
              let l2b = Cache.copy_stats (Cache.l2_stats cache) in
              let clock_b = Cache.clock cache in
              let fuel_b = Budget.remaining budget in
              let c = trace_tnode ~batch wctx bc tnl in
              let entry =
                {
                  me_id = 0;
                  me_counters = Trace.copy_counters c;
                  me_l1 = Cache.sub_stats (Cache.l1_stats cache) l1b;
                  me_l2 = Cache.sub_stats (Cache.l2_stats cache) l2b;
                  me_ticks = fuel_b - Budget.remaining budget;
                  me_clock = Cache.clock cache - clock_b;
                  me_snap = Cache.snapshot cache;
                }
              in
              let id =
                Mutex.protect m.mm_lock (fun () ->
                    match Hashtbl.find_opt m.mm_tbl key with
                    | Some e ->
                        (* racing domain stored it first: deterministic
                           walks from the same key are identical, adopt *)
                        e.me_id
                    | None ->
                        if Hashtbl.length m.mm_tbl >= m.mm_cap then -2
                        else begin
                          let id = m.mm_next in
                          m.mm_next <- id + 1;
                          Hashtbl.replace m.mm_tbl key
                            { entry with me_id = id };
                          id
                        end)
              in
              state := id;
              c
        end
  in
  Array.to_list (Array.map eval bc.B.tnodes)
