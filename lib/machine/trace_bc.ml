(** Bytecode trace engine: the cost-model walk over the flat LIR.

    The third trace engine. [Daisy_lir.Bytecode.lower ~hooks] produces one
    trace section per top-level node — a flat [TLOOP]/[TLOOPBK]/[TCOMP]/
    [TCALL] stream whose operands index side tables of pre-resolved loop
    bounds, byte-address generators and computation descriptors — and this
    module walks those streams against the shared [Cache] simulator.

    {b Exact contract}: bit-identical counters to [Trace_compile.run] in
    exact mode (and hence to [Trace.run]): the same float additions in the
    same order, the same cache accesses in the same order, the same lazy
    error behavior (per-entity descriptors are consulted at execution
    time, so a node inside a zero-trip loop never raises), the same
    first-execution spill-slot allocation order, the same cid-keyed
    first-executed-occurrence memoization of computation contexts, and the
    same depth-0 [sample_outer] semantics. [test/test_bytecode.ml]
    enforces this differentially at jobs 1 and 4.

    Approx mode (line stepping, adaptive sampling) stays exclusive to
    [Trace_compile]; the bytecode engine only replaces the exact path.

    Fault points: ["bc_compile"] fires inside lowering, ["bc_run"] before
    the walk — [Cost.evaluate_guarded] degrades bytecode -> compiled ->
    tree on either. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module B = Daisy_lir.Bytecode

(* ------------------------------------------------------------------ *)
(* Lowering hooks                                                       *)

(** Flops of a computation: rhs plus guard predicate, un-clamped —
    replicates [Trace.compile_comp]'s accounting. *)
let comp_flops (c : Ir.comp) : float =
  let rec gp = function
    | Ir.Pcmp (_, a, b) -> 1.0 +. Trace.vexpr_flops a +. Trace.vexpr_flops b
    | Ir.Pand (a, b) | Ir.Por (a, b) -> 1.0 +. gp a +. gp b
    | Ir.Pnot a -> 1.0 +. gp a
  in
  Trace.vexpr_flops c.Ir.rhs
  +. (match c.Ir.guard with Some g -> gp g | None -> 0.0)

(** Machine-model hooks over a concrete layout, so [Bytecode.lower] can
    fold byte addresses and precompute spill/flop/stride facts without a
    dependency on this library. *)
let hooks_of_layout (layout : Trace.layout) : B.trace_hooks =
  {
    B.th_base_of =
      (fun name ->
        match layout.Trace.base_of name with
        | b -> Some b
        | exception Trace.Unsupported_trace _ -> None);
    th_dims_of = layout.Trace.dims_of;
    th_spills = Trace.spill_estimate;
    th_comp_flops = comp_flops;
    th_simd_stride = Trace.simd_stride;
  }

let lower (p : Ir.program) ~(param_env : int Util.SMap.t) : B.t =
  let layout = Trace.layout_of p ~sizes:param_env in
  B.lower ~hooks:(hooks_of_layout layout) ~sizes:param_env p

(* ------------------------------------------------------------------ *)
(* Runtime                                                              *)

(** One bound (executable) access site of a computation occurrence. *)
type csite = { cs_fn : unit -> int; cs_write : bool; cs_gather : bool }

(** A computation occurrence bound at its first execution against the
    cid-memoized context — mirrors the per-node closures of
    [Trace_compile]. *)
type ccomp = {
  k_sites : csite array;
  k_port : float;
  k_class : int;
  k_flops : float;
  k_atomic : bool;
  k_contended : bool;
}

(** Walk one trace section; returns its counters, exactly like
    [Trace_compile.trace_node]. *)
let trace_tnode (wctx : Trace.walk_ctx) (bc : B.t) (tn : B.tnode) :
    Trace.counters =
  let config = wctx.Trace.config in
  let cache = wctx.Trace.cache in
  let budget = wctx.Trace.budget in
  let counters = Trace.zero_counters () in
  let l1_before = Cache.copy_stats (Cache.l1_stats cache) in
  let l2_before = Cache.copy_stats (Cache.l2_stats cache) in
  let iters = Array.make (max 1 tn.B.t_nslots) 0 in
  let xstack = Array.make (max 1 bc.B.max_xstack) 0 in
  let bind ix =
    B.binder ~pool:tn.B.t_pool ~xpool:tn.B.t_xpool ~names:bc.B.names
      ~regs:iters ~xstack ix
  in
  let gather_mult = float_of_int config.Config.vector_width -. 1.0 in
  let vw = float_of_int config.Config.vector_width in
  (* loop runtime state, indexed by loop id (loops are not reentrant) *)
  let nl = Array.length tn.B.t_loops in
  let lo_fns = Array.make nl (fun () -> 0) in
  let hi_fns = Array.make nl (fun () -> 0) in
  Array.iteri
    (fun i (w : B.tloop) ->
      lo_fns.(i) <- bind tn.B.t_ixs.(w.B.w_lo);
      hi_fns.(i) <- bind tn.B.t_ixs.(w.B.w_hi))
    tn.B.t_loops;
  let rem = Array.make (max 1 nl) 0 in
  let cur = Array.make (max 1 nl) 0 in
  let trips = Array.make (max 1 nl) 0 in
  let counts = Array.make (max 1 nl) 0 in
  (* spill slots: counts memoized per lid so duplicated subtrees share,
     allocation order = first-execution order, base advances only for
     loops that actually spill *)
  let sp_n = Array.make (max 1 nl) (-1) in
  let sp_base = Array.make (max 1 nl) 0 in
  let spill_tbl : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  let stack_base = ref 1024 in
  (* computation occurrences: cid memo picks the first-executed occurrence
     as the shared static context *)
  let nc = Array.length tn.B.t_comps in
  let comp_rt : ccomp option array = Array.make (max 1 nc) None in
  let comp_memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let bind_site ~(in_simd : bool) (ts : B.tsite) : csite =
    let fn =
      match ts.B.ts_acc with
      | B.Ta_aff (off, n) -> bind (B.Ix_aff (off, n))
      | B.Ta_gen (base, dims, ixids) ->
          let fns = Array.map (fun i -> bind tn.B.t_ixs.(i)) ixids in
          let ni = Array.length fns and nd = Array.length dims in
          let n = if nd < ni then nd else ni in
          fun () ->
            let acc = ref 0 in
            for k = 0 to n - 1 do
              acc := (!acc * dims.(k)) + fns.(k) ()
            done;
            if nd <> ni then raise (Trace.Unsupported_trace "rank mismatch");
            base + (8 * !acc)
    in
    { cs_fn = fn; cs_write = ts.B.ts_write;
      cs_gather = ts.B.ts_strided && in_simd }
  in
  let bind_comp (id : int) (y : B.tcomp) : ccomp =
    let mid =
      match Hashtbl.find_opt comp_memo y.B.y_cid with
      | Some m -> m
      | None ->
          Hashtbl.replace comp_memo y.B.y_cid id;
          id
    in
    let m = tn.B.t_comps.(mid) in
    let k =
      {
        k_sites =
          Array.map (bind_site ~in_simd:y.B.y_in_simd) m.B.y_sites;
        k_port = (if m.B.y_class = 1 then 1.0 /. vw else 1.0);
        k_class = m.B.y_class;
        k_flops = m.B.y_flops;
        k_atomic = m.B.y_atomic;
        k_contended = m.B.y_contended;
      }
    in
    comp_rt.(id) <- Some k;
    k
  in
  (* library calls: dimension thunks bound at first execution *)
  let nk = Array.length tn.B.t_calls in
  let call_rt : (unit -> int) array option array = Array.make (max 1 nk) None in
  let scale_factor = ref 1.0 in
  let code = tn.B.t_code in
  let pc = ref 0 in
  let running = ref true in
  while !running do
    let op = code.(!pc) in
    if op = B.t_comp then begin
      let id = code.(!pc + 1) in
      let y = tn.B.t_comps.(id) in
      (match y.B.y_err with
      | Some m -> raise (Trace.Unsupported_trace m)
      | None -> ());
      let k =
        match comp_rt.(id) with Some k -> k | None -> bind_comp id y
      in
      let sites = k.k_sites in
      let port = k.k_port in
      for s = 0 to Array.length sites - 1 do
        let a = sites.(s) in
        Cache.access cache ~addr:(a.cs_fn ()) ~write:a.cs_write;
        if a.cs_write then
          counters.Trace.stores <- counters.Trace.stores +. port
        else counters.Trace.loads <- counters.Trace.loads +. port;
        if a.cs_gather then
          counters.Trace.gather_extra <-
            counters.Trace.gather_extra +. gather_mult
      done;
      (if k.k_class = 1 then
         counters.Trace.vec_flops <- counters.Trace.vec_flops +. k.k_flops
       else if k.k_class = 2 then
         counters.Trace.unrolled_flops <-
           counters.Trace.unrolled_flops +. k.k_flops
       else counters.Trace.flops <- counters.Trace.flops +. k.k_flops);
      if k.k_atomic then
        if k.k_contended then
          counters.Trace.atomics <- counters.Trace.atomics +. 1.0
        else
          counters.Trace.atomics_private <-
            counters.Trace.atomics_private +. 1.0;
      pc := !pc + 2
    end
    else if op = B.t_loop then begin
      let id = code.(!pc + 1) in
      let end_pc = code.(!pc + 2) in
      let w = tn.B.t_loops.(id) in
      (match w.B.w_err with
      | Some m -> raise (Trace.Unsupported_trace m)
      | None -> ());
      let lo = lo_fns.(id) () in
      let hi = hi_fns.(id) () in
      let step = w.B.w_step in
      let trip =
        if step > 0 then max 0 (((hi - lo) / step) + 1)
        else max 0 (((lo - hi) / -step) + 1)
      in
      if w.B.w_starts_parallel then begin
        counters.Trace.has_parallel <- true;
        counters.Trace.parallel_regions <-
          counters.Trace.parallel_regions +. 1.0;
        counters.Trace.par_trip <-
          Float.max counters.Trace.par_trip (float_of_int trip)
      end;
      if sp_n.(id) < 0 then begin
        let s, b =
          if not w.B.w_is_leaf then (0, 0)
          else
            match Hashtbl.find_opt spill_tbl w.B.w_lid with
            | Some sb -> sb
            | None ->
                let s = w.B.w_spills in
                let b = !stack_base in
                if s > 0 then stack_base := !stack_base + (s * 8);
                Hashtbl.replace spill_tbl w.B.w_lid (s, b);
                (s, b)
        in
        sp_n.(id) <- s;
        sp_base.(id) <- b
      end;
      let count =
        if
          w.B.w_depth0
          && wctx.Trace.sample_outer > 0
          && trip > wctx.Trace.sample_outer
        then wctx.Trace.sample_outer
        else trip
      in
      trips.(id) <- trip;
      counts.(id) <- count;
      if count = 0 then pc := end_pc
      else begin
        rem.(id) <- count;
        cur.(id) <- lo;
        Budget.tick budget;
        iters.(w.B.w_slot) <- lo;
        pc := !pc + 3
      end
    end
    else if op = B.t_loopbk then begin
      let id = code.(!pc + 1) in
      let body_pc = code.(!pc + 2) in
      let spills = sp_n.(id) in
      if spills > 0 then begin
        let base = sp_base.(id) in
        for sp = 0 to spills - 1 do
          let addr = base + (sp * 8) in
          Cache.access cache ~addr ~write:true;
          Cache.access cache ~addr ~write:false
        done;
        let fs = float_of_int spills in
        counters.Trace.loads <- counters.Trace.loads +. fs;
        counters.Trace.stores <- counters.Trace.stores +. fs;
        counters.Trace.spill_ops <-
          counters.Trace.spill_ops +. (2.0 *. fs)
      end;
      let r = rem.(id) - 1 in
      rem.(id) <- r;
      if r > 0 then begin
        let w = tn.B.t_loops.(id) in
        let i = cur.(id) + w.B.w_step in
        cur.(id) <- i;
        Budget.tick budget;
        iters.(w.B.w_slot) <- i;
        pc := body_pc
      end
      else begin
        if counts.(id) < trips.(id) then
          scale_factor :=
            float_of_int trips.(id) /. float_of_int counts.(id);
        pc := !pc + 3
      end
    end
    else if op = B.t_call then begin
      let id = code.(!pc + 1) in
      let z = tn.B.t_calls.(id) in
      (match z.B.z_err with
      | Some m -> raise (Trace.Unsupported_trace m)
      | None -> ());
      let fns =
        match call_rt.(id) with
        | Some fns -> fns
        | None ->
            let fns = Array.map (fun i -> bind tn.B.t_ixs.(i)) z.B.z_dims in
            call_rt.(id) <- Some fns;
            fns
      in
      let n = Array.length fns in
      let rec dims k = if k = n then [] else
        let v = fns.(k) () in
        v :: dims (k + 1)
      in
      let dims = dims 0 in
      let kernel = bc.B.names.(z.B.z_kernel) in
      counters.Trace.libcall_flops <-
        counters.Trace.libcall_flops
        +. (try Daisy_blas.Kernels.flops kernel dims with _ -> 0.0);
      counters.Trace.libcall_bytes <-
        counters.Trace.libcall_bytes
        +. (try Daisy_blas.Kernels.min_bytes kernel dims with _ -> 0.0);
      pc := !pc + 2
    end
    else (* t_halt *)
      running := false
  done;
  counters.Trace.l1 <- Cache.sub_stats (Cache.l1_stats cache) l1_before;
  counters.Trace.l2 <- Cache.sub_stats (Cache.l2_stats cache) l2_before;
  if !scale_factor > 1.0 then begin
    let regions = counters.Trace.parallel_regions in
    Trace.scale_counters counters !scale_factor;
    if regions > 0.0 then counters.Trace.parallel_regions <- regions
  end;
  counters

(** [run config p ~sizes ?sample_outer ?budget ()] — lower once, walk every
    trace section; drop-in replacement for [Trace_compile.run] exact mode. *)
let run (config : Config.t) (p : Ir.program) ~(sizes : (string * int) list)
    ?(sample_outer = 0) ?(budget = Budget.unlimited ()) () :
    Trace.counters list =
  Fault.inject "bc_run";
  let param_env =
    List.fold_left (fun m (k, v) -> Util.SMap.add k v m) Util.SMap.empty sizes
  in
  let layout = Trace.layout_of p ~sizes:param_env in
  let bc = B.lower ~hooks:(hooks_of_layout layout) ~sizes:param_env p in
  let cache = Cache.create config in
  let wctx =
    { Trace.config; cache; layout; param_env; sample_outer; budget }
  in
  Array.to_list (Array.map (trace_tnode wctx bc) bc.B.tnodes)
