(** Trace-driven two-level set-associative LRU cache simulator
    (write-allocate, write-back).

    Geometry is normalized at construction: [line_bytes] and the set
    count are rounded down to powers of two (one
    {!Daisy_support.Diag} warning per distinct geometry), so the hot
    path indexes sets with a mask and lines with a shift. *)

type stats = {
  mutable accesses : float;
  mutable misses : float;
  mutable evicts : float;
  mutable writebacks : float;
}

val zero_stats : unit -> stats
val copy_stats : stats -> stats
val sub_stats : stats -> stats -> stats

val add_stats : stats -> stats -> unit
(** [add_stats dst d] accumulates [d] into [dst] field-wise. *)

type t

val create : Config.t -> t

val l1_line_shift : t -> int
(** log2 of the (normalized) L1 line size; line = [addr lsr shift]. *)

val clock : t -> int
(** Total level accesses so far (the LRU clock). *)

val access : t -> addr:int -> write:bool -> unit
(** One memory access through the hierarchy. *)

val access_line : t -> line:int -> write:bool -> unit
(** Same, line-addressed: [access t ~addr] is
    [access_line t ~line:(addr lsr l1_line_shift t)]. The fused replay
    precomputes line addresses and bumps them by per-iteration strides. *)

val l1_replay_advance :
  t ->
  addrs:int array ->
  deltas:int array ->
  writes:bool array ->
  memoable:bool array ->
  n:int ->
  mline:int array ->
  mslot:int array ->
  mep:int array ->
  unit
(** One fused replay iteration: the [n] accesses [addrs.(i)]/[writes.(i)]
    in order, bit-identical to [n] {!access} calls, each address advanced
    by [deltas.(i)] afterwards. [mline]/[mslot]/[mep] (caller-owned, all
    length >= [n], [mep] initialized to -1) memoize each touch's L1 slot,
    validated by line equality plus the line's per-set eviction epoch — a
    valid memo entry proves residency, so the access charges the hit
    without a tag scan. Set epochs bump on every eviction, flush and
    snapshot restore, which is exactly the set of events that can
    displace a valid line. Touches with [memoable.(i)] false bypass the
    memo entirely (neither consulted nor re-armed) — the caller asserts
    their line changes every iteration (|delta| >= line size), so a memo
    entry armed last iteration can never match. *)

val l1_probe : t -> lines:int array -> n:int -> slots:int array -> bool
(** Pure residency probe: true iff every [lines.(0..n-1)] currently hits
    in L1, filling [slots.(0..n-1)] with the L1 slot of each line. No
    statistics, clock or LRU side effects. *)

val l1_probe_memo :
  t ->
  lines:int array ->
  n:int ->
  slots:int array ->
  mline:int array ->
  mslot:int array ->
  mep:int array ->
  bool
(** {!l1_probe} consulting (and re-arming) the caller's per-touch slot
    memo: memo-valid touches prove residency without a tag scan, and
    scanned hits record their slots back into the memo. *)

val l1_hit_run : t -> slots:int array -> writes:bool array -> k:int -> n:int -> unit
(** Retire [n] iterations of a [k]-touch all-L1-hit pattern in O(k),
    bit-identical to n*k generic hits (see the implementation for the
    stamp/clock argument). Caller must have proved residency of all [k]
    lines with {!l1_probe} immediately before. *)

type snapshot
(** Tag/dirty/LRU state with stamps relative to the capture-time clock;
    statistics are not captured. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> clock_delta:int -> unit
(** Advance the clock by [clock_delta] and re-install the snapshot,
    stamps rebased to the new clock. LRU behavior depends only on stamp
    order, which translation preserves, so future simulation from a
    restored state is bit-identical to having replayed the memoized
    walk. Statistics are untouched. *)

val flush : t -> unit
(** Reset tag state, keep statistics. *)

val flush_l1 : t -> unit
val flush_l2 : t -> unit
(** Reset one level's tag state, keep statistics. *)

val l1_stats : t -> stats
val l2_stats : t -> stats
