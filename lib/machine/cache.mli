(** Trace-driven two-level set-associative LRU cache simulator
    (write-allocate, write-back). *)

type stats = {
  mutable accesses : float;
  mutable misses : float;
  mutable evicts : float;
  mutable writebacks : float;
}

val zero_stats : unit -> stats
val copy_stats : stats -> stats
val sub_stats : stats -> stats -> stats

type t

val create : Config.t -> t

val access : t -> addr:int -> write:bool -> unit
(** One memory access through the hierarchy. *)

val flush : t -> unit
(** Reset tag state, keep statistics. *)

val flush_l1 : t -> unit
val flush_l2 : t -> unit
(** Reset one level's tag state, keep statistics. *)

val l1_stats : t -> stats
val l2_stats : t -> stats
