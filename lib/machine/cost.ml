(** Roofline-style cost model: convert trace counters into cycles and
    seconds.

    Per top-level nest, the runtime is the maximum of four throughput
    bounds — FP issue, L1 port pressure, L1<->L2 bandwidth and shared DRAM
    bandwidth — plus serialized atomic updates and parallel fork/join
    overheads. DRAM bandwidth is shared across cores, which produces the
    strong-scaling saturation the CLOUDSC case study observes. *)

module Ir = Daisy_loopir.Ir
module Budget = Daisy_support.Budget
module Diag = Daisy_support.Diag

type nest_cost = {
  counters : Trace.counters;
  threads_used : float;
  cycles : float;
}

type report = {
  nests : nest_cost list;
  total_cycles : float;
  seconds : float;
  total_flops : float;
  mflops : float;  (** achieved MFLOP/s *)
  l1_loads : float;
  l1_evicts : float;
  l2_misses : float;
}

let line_bytes (config : Config.t) = float_of_int config.Config.l1.Config.line_bytes

(** Cycles for one nest under [threads] available cores. *)
let nest_cycles (config : Config.t) ~(threads : int) (c : Trace.counters) :
    nest_cost =
  let open Config in
  let p =
    if c.Trace.has_parallel && threads > 1 then
      Float.min (float_of_int threads) (Float.max 1.0 c.Trace.par_trip)
    else 1.0
  in
  let rs = config.scalar_flops_per_cycle in
  let rv = rs *. float_of_int config.vector_width in
  let ru = rs *. config.unroll_ilp_boost in
  let t_flop =
    (c.Trace.flops /. rs) +. (c.Trace.vec_flops /. rv)
    +. (c.Trace.unrolled_flops /. ru)
  in
  let t_l1 =
    (c.Trace.loads +. c.Trace.stores +. c.Trace.gather_extra)
    /. config.l1_accesses_per_cycle
  in
  let lb = line_bytes config in
  let l2_bytes = (c.Trace.l1.Cache.misses +. c.Trace.l1.Cache.writebacks) *. lb in
  let t_l2 = l2_bytes /. config.l2_bytes_per_cycle in
  let dram_bytes = (c.Trace.l2.Cache.misses +. c.Trace.l2.Cache.writebacks) *. lb in
  (* DRAM bandwidth is shared: the per-thread division is capped *)
  let t_dram_total = dram_bytes /. config.dram_bytes_per_cycle in
  (* tuned library calls: near-peak vector FMA, streaming from DRAM *)
  let t_lib_flop =
    c.Trace.libcall_flops /. (rv *. config.blas_efficiency)
  in
  let t_lib_mem = c.Trace.libcall_bytes /. config.dram_bytes_per_cycle in
  let t_spill = c.Trace.spill_ops *. config.spill_latency_cycles in
  let per_thread = (Float.max (Float.max t_flop t_l1) t_l2 +. t_spill) /. p in
  let dram_bound = t_dram_total (* not divided by p *) in
  (* tuned BLAS libraries are internally threaded *)
  let lib = Float.max (t_lib_flop /. float_of_int (max 1 threads)) t_lib_mem in
  let base = Float.max per_thread (Float.max dram_bound lib) in
  (* contended atomics serialize; uncontended ones cost extra cycles but
     run on all threads *)
  let t_atomic =
    (c.Trace.atomics *. config.atomic_cycles)
    +. (c.Trace.atomics_private *. config.atomic_cycles /. (2.0 *. p))
  in
  let overhead =
    if c.Trace.has_parallel && threads > 1 then
      c.Trace.parallel_regions
      *. (config.parallel_region_base_cycles
         +. (config.parallel_region_per_thread_cycles *. float_of_int threads))
    else 0.0
  in
  { counters = c; threads_used = p; cycles = base +. t_atomic +. overhead }

(** Which trace engine produces the counters. [Tree] is the original
    walker (the oracle); [Compiled] is the closure-tree engine, bit-identical
    to the walker; [Bytecode] is the flat-LIR engine, bit-identical to both
    and the default; [Approx] is the compiled engine with line-granular
    stepping and adaptive loop sampling (bounded relative error, see
    docs/performance.md). *)
type engine = Tree | Compiled | Bytecode | Approx of Trace_compile.approx

let engine_of_string = function
  | "tree" -> Tree
  | "compiled" -> Compiled
  | "bytecode" -> Bytecode
  | "approx" -> Approx Trace_compile.default_approx
  | s ->
      invalid_arg
        ("unknown trace engine '" ^ s ^ "' (tree|compiled|bytecode|approx)")

let string_of_engine = function
  | Tree -> "tree"
  | Compiled -> "compiled"
  | Bytecode -> "bytecode"
  | Approx _ -> "approx"

(** [evaluate config p ~sizes ~threads ?sample_outer ?engine ?budget ()] —
    trace and cost a program. [budget] bounds the walked loop iterations;
    {!Daisy_support.Budget.Exhausted} escapes when it runs out. *)
let evaluate (config : Config.t) (p : Ir.program) ~(sizes : (string * int) list)
    ?(threads = 1) ?(sample_outer = 0) ?(engine = Bytecode) ?budget ?memo () :
    report =
  let counters =
    match engine with
    | Tree -> Trace.run config p ~sizes ~sample_outer ?budget ()
    | Compiled -> Trace_compile.run config p ~sizes ~sample_outer ?budget ()
    | Bytecode -> Trace_bc.run config p ~sizes ~sample_outer ?budget ?memo ()
    | Approx a ->
        Trace_compile.run config p ~sizes ~sample_outer ~approx:a ?budget ()
  in
  let nests = List.map (nest_cycles config ~threads) counters in
  let total_cycles =
    List.fold_left (fun acc n -> acc +. n.cycles) 0.0 nests
  in
  let total_flops =
    List.fold_left
      (fun acc n ->
        acc +. n.counters.Trace.flops +. n.counters.Trace.vec_flops
        +. n.counters.Trace.unrolled_flops +. n.counters.Trace.libcall_flops)
      0.0 nests
  in
  let seconds = total_cycles /. (config.Config.freq_ghz *. 1e9) in
  {
    nests;
    total_cycles;
    seconds;
    total_flops;
    mflops = (if seconds > 0.0 then total_flops /. seconds /. 1e6 else 0.0);
    l1_loads =
      List.fold_left (fun a n -> a +. n.counters.Trace.l1.Cache.accesses) 0.0 nests;
    l1_evicts =
      List.fold_left (fun a n -> a +. n.counters.Trace.l1.Cache.evicts) 0.0 nests;
    l2_misses =
      List.fold_left (fun a n -> a +. n.counters.Trace.l2.Cache.misses) 0.0 nests;
  }

(* ------------------------------------------------------------------ *)
(* Guarded evaluation: budgeted, with tree-oracle fallback              *)

let fallbacks = Atomic.make 0

let engine_fallbacks () = Atomic.get fallbacks
let reset_engine_fallbacks () = Atomic.set fallbacks 0

let warn_fallback engine next exn =
  let n = Atomic.fetch_and_add fallbacks 1 + 1 in
  (* per-label throttling (Diag.warn_throttled): a search over thousands
     of candidates cannot flood stderr, and each failing engine keeps its
     own counter *)
  Diag.warn_throttled
    ~label:("trace_fallback:" ^ string_of_engine engine)
    "%s trace engine failed (%s); falling back to %s engine (fallback #%d)"
    (string_of_engine engine) (Printexc.to_string exn)
    (string_of_engine next) n

(** [evaluate_guarded config p ~sizes ... ?steps ()] — the resilient entry
    point the scheduler uses. Each attempt gets a fresh budget of [steps]
    walked loop iterations (unlimited when [steps] is [None]);
    [Budget.Exhausted] propagates so callers can map it to [infinity]
    fitness. Any other failure of a non-tree engine logs a throttled
    warning, bumps {!engine_fallbacks}, and transparently re-runs one
    engine down the bytecode -> compiled -> tree chain with a fresh
    budget. *)
let evaluate_guarded (config : Config.t) (p : Ir.program)
    ~(sizes : (string * int) list) ?threads ?sample_outer
    ?(engine = Bytecode) ?steps ?memo () : report =
  let budget () =
    match steps with Some n -> Budget.make ~steps:n | None -> Budget.unlimited ()
  in
  let attempt eng =
    evaluate config p ~sizes ?threads ?sample_outer ~engine:eng
      ~budget:(budget ()) ?memo ()
  in
  let rec go eng =
    let next =
      match eng with
      | Bytecode -> Some Compiled
      | Compiled | Approx _ -> Some Tree
      | Tree -> None
    in
    match next with
    | None -> attempt eng
    | Some down -> (
        try attempt eng with
        | Budget.Exhausted as e -> raise e
        | e ->
            warn_fallback eng down e;
            go down)
  in
  go engine

(* ------------------------------------------------------------------ *)
(* Cross-candidate simulation memo (re-exported from the bytecode
   engine so schedulers depend on [Cost] only)                          *)

type sim_memo = Trace_bc.memo

let sim_memo_create = Trace_bc.memo_create
let sim_memo_stats = Trace_bc.memo_stats

(** Simulated milliseconds — the unit every experiment reports. *)
let milliseconds (r : report) = r.seconds *. 1e3

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "@[<v>cycles %.3e (%.3f ms)  flops %.3e  %.1f MFLOP/s@,\
     L1 loads %.3e  L1 evicts %.3e  L2 misses %.3e@]"
    r.total_cycles (milliseconds r) r.total_flops r.mflops r.l1_loads
    r.l1_evicts r.l2_misses
