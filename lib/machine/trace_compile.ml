(** Compiled trace engine: the fast path of the cost model.

    Mirrors the [lib/interp/compile] design for the machine-model walker
    ([Trace]): one pass turns each top-level node of an [Ir.program] into a
    tree of closures — loop iterators live in slots of one preallocated
    [int array], every access carries a precompiled affine address
    generator ([base + Σ coeff·slot] with size parameters folded into the
    base via [Trace.compile_expr]), and every computation becomes a
    counter-bump closure feeding the existing [Cache] simulator.

    {b Exact mode} (no [approx]) is {e bit-identical} to [Trace.run]: the
    same float additions in the same order, the same cache accesses in the
    same order, the same lazy compilation behavior (a node inside a
    zero-trip loop is never compiled, so error behavior matches the
    walker's visit-time compilation), the same first-visit spill-slot
    allocation order, and the same depth-0 [sample_outer] semantics.
    [test/test_trace.ml] enforces this differentially.

    {b Approx mode} adds two asymptotic wins on top of the compiled tree,
    both documented in [docs/performance.md]:

    - {e line-granular stepping}: an access whose per-iteration address
      delta w.r.t. the immediately enclosing loop is a non-zero divisor of
      the cache line touches the simulator once per {e line} instead of
      once per element; element-level [loads]/[stores]/flops are still
      charged exactly.
    - {e multi-level sampling}: any loop at depth >= 1 whose per-block
      counter deltas stabilize (within [tol], after [warm] warm-up blocks)
      is cut short and the remaining iterations are extrapolated linearly
      into both the counters and the cache statistics. The exact walker
      stays the oracle for the accuracy contract. *)

open Daisy_support
module Ir = Daisy_loopir.Ir

type approx = {
  line_step : bool;  (** enable line-granular cache stepping *)
  block : int;  (** iterations per stabilization block *)
  warm : int;  (** leading blocks excluded from the stability test *)
  tol : float;  (** relative tolerance on per-block counter deltas *)
  min_trip : int;  (** loops with fewer iterations run exactly *)
}

(* Calibrated on the PolyBench/NPBench/CLOUDSC suite (see
   docs/performance.md): worst-case total-cycle error ~3% at a geomean
   ~12x speedup over the exact compiled engine. A block of 8 iterations
   spans one cache line of unit-stride doubles, so per-block miss deltas
   are line-phase invariant. *)
let default_approx =
  { line_step = true; block = 8; warm = 0; tol = 0.2; min_trip = 16 }

(** Line-granular stepping only — adaptive loop sampling disabled. Used by
    the cache tests to check per-element vs per-line agreement. *)
let line_step_only =
  { line_step = true; block = 1; warm = 0; tol = 0.0; min_trip = max_int }

(** Bitwise equality of two counter records (floats compared through
    [Int64.bits_of_float]) — the exact-mode contract. *)
let counters_equal (a : Trace.counters) (b : Trace.counters) : bool =
  let feq x y = Int64.bits_of_float x = Int64.bits_of_float y in
  let seq (x : Cache.stats) (y : Cache.stats) =
    feq x.Cache.accesses y.Cache.accesses
    && feq x.Cache.misses y.Cache.misses
    && feq x.Cache.evicts y.Cache.evicts
    && feq x.Cache.writebacks y.Cache.writebacks
  in
  feq a.Trace.flops b.Trace.flops
  && feq a.Trace.vec_flops b.Trace.vec_flops
  && feq a.Trace.unrolled_flops b.Trace.unrolled_flops
  && feq a.Trace.loads b.Trace.loads
  && feq a.Trace.stores b.Trace.stores
  && feq a.Trace.gather_extra b.Trace.gather_extra
  && feq a.Trace.spill_ops b.Trace.spill_ops
  && feq a.Trace.atomics b.Trace.atomics
  && feq a.Trace.atomics_private b.Trace.atomics_private
  && feq a.Trace.parallel_regions b.Trace.parallel_regions
  && feq a.Trace.par_trip b.Trace.par_trip
  && a.Trace.has_parallel = b.Trace.has_parallel
  && feq a.Trace.libcall_flops b.Trace.libcall_flops
  && feq a.Trace.libcall_bytes b.Trace.libcall_bytes
  && seq a.Trace.l1 b.Trace.l1
  && seq a.Trace.l2 b.Trace.l2

(* ------------------------------------------------------------------ *)
(* Compilation                                                          *)

(** One memory-access site of a compiled computation. [last_line] is the
    line-stepping memo: the site skips the simulator while successive
    addresses stay on the same cache line. *)
type site = {
  addr_fn : int array -> int;
  write : bool;
  gather : bool;  (** bump [gather_extra] on every execution *)
  line_skip : bool;  (** statically eligible for line-granular stepping *)
  mutable last_line : int;
}

(** Compile a node only at its first execution, memoized. This replicates
    the tree walker exactly: nodes inside zero-trip loops are never
    compiled (lazy errors), and first-execution order drives the spill
    stack-slot allocation order. *)
let lazily (compile : unit -> unit -> unit) : unit -> unit =
  let cell = ref None in
  fun () ->
    match !cell with
    | Some f -> f ()
    | None ->
        let f = compile () in
        cell := Some f;
        f ()

(* number of float fields snapshotted by the adaptive sampler: 12 counter
   fields + 4 L1 + 4 L2 cache statistics *)
let n_fields = 20

(** Compile and trace one top-level node; returns its counters. *)
let trace_node (wctx : Trace.walk_ctx) ?(approx : approx option)
    (node : Ir.node) : Trace.counters =
  let config = wctx.Trace.config in
  let cache = wctx.Trace.cache in
  let budget = wctx.Trace.budget in
  let counters = Trace.zero_counters () in
  let l1_before = Cache.copy_stats (Cache.l1_stats cache) in
  let l2_before = Cache.copy_stats (Cache.l2_stats cache) in
  (* iterator slots: same per-name assignment as the walker *)
  let iter_names =
    Ir.loops_in [ node ]
    |> List.map (fun (l : Ir.loop) -> l.Ir.iter)
    |> Util.dedup ~eq:String.equal
  in
  let slot_tbl = Hashtbl.create 8 in
  List.iteri (fun i n -> Hashtbl.replace slot_tbl n i) iter_names;
  let cctx =
    {
      Trace.slot_of = (fun n -> Hashtbl.find_opt slot_tbl n);
      param_env = wctx.Trace.param_env;
    }
  in
  let iters = Array.make (max 1 (List.length iter_names)) 0 in
  let gather_mult = float_of_int config.Config.vector_width -. 1.0 in
  let comp_cache : (int, Trace.compiled_comp) Hashtbl.t = Hashtbl.create 64 in
  let spill_info : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  let stack_base = ref 1024 in
  let spills_of (l : Ir.loop) : int * int =
    match Hashtbl.find_opt spill_info l.Ir.lid with
    | Some s -> s
    | None ->
        let spills = Trace.spill_estimate l in
        let base = !stack_base in
        if spills > 0 then stack_base := !stack_base + (spills * 8);
        Hashtbl.replace spill_info l.Ir.lid (spills, base);
        (spills, base)
  in
  let scale_factor = ref 1.0 in
  let line_bytes = config.Config.l1.Config.line_bytes in
  let l1_lines = config.Config.l1.Config.size_bytes / line_bytes in
  let l2_lines =
    config.Config.l2.Config.size_bytes / config.Config.l2.Config.line_bytes
  in
  (* the simulated cache's own shift: [Cache.make_level] rounds
     non-power-of-two line sizes down, so deriving the shift here from the
     raw config could disagree with the lines the cache actually tracks *)
  let line_shift = Cache.l1_line_shift cache in
  (* --- adaptive-sampling machinery (approx mode only) --------------- *)
  let snap (dst : float array) =
    dst.(0) <- counters.Trace.flops;
    dst.(1) <- counters.Trace.vec_flops;
    dst.(2) <- counters.Trace.unrolled_flops;
    dst.(3) <- counters.Trace.loads;
    dst.(4) <- counters.Trace.stores;
    dst.(5) <- counters.Trace.gather_extra;
    dst.(6) <- counters.Trace.spill_ops;
    dst.(7) <- counters.Trace.atomics;
    dst.(8) <- counters.Trace.atomics_private;
    dst.(9) <- counters.Trace.parallel_regions;
    dst.(10) <- counters.Trace.libcall_flops;
    dst.(11) <- counters.Trace.libcall_bytes;
    let s1 = Cache.l1_stats cache and s2 = Cache.l2_stats cache in
    dst.(12) <- s1.Cache.accesses;
    dst.(13) <- s1.Cache.misses;
    dst.(14) <- s1.Cache.evicts;
    dst.(15) <- s1.Cache.writebacks;
    dst.(16) <- s2.Cache.accesses;
    dst.(17) <- s2.Cache.misses;
    dst.(18) <- s2.Cache.evicts;
    dst.(19) <- s2.Cache.writebacks
  in
  let extrapolate (d : float array) (factor : float) =
    counters.Trace.flops <- counters.Trace.flops +. (factor *. d.(0));
    counters.Trace.vec_flops <- counters.Trace.vec_flops +. (factor *. d.(1));
    counters.Trace.unrolled_flops <-
      counters.Trace.unrolled_flops +. (factor *. d.(2));
    counters.Trace.loads <- counters.Trace.loads +. (factor *. d.(3));
    counters.Trace.stores <- counters.Trace.stores +. (factor *. d.(4));
    counters.Trace.gather_extra <-
      counters.Trace.gather_extra +. (factor *. d.(5));
    counters.Trace.spill_ops <- counters.Trace.spill_ops +. (factor *. d.(6));
    counters.Trace.atomics <- counters.Trace.atomics +. (factor *. d.(7));
    counters.Trace.atomics_private <-
      counters.Trace.atomics_private +. (factor *. d.(8));
    counters.Trace.parallel_regions <-
      counters.Trace.parallel_regions +. (factor *. d.(9));
    counters.Trace.libcall_flops <-
      counters.Trace.libcall_flops +. (factor *. d.(10));
    counters.Trace.libcall_bytes <-
      counters.Trace.libcall_bytes +. (factor *. d.(11));
    let s1 = Cache.l1_stats cache and s2 = Cache.l2_stats cache in
    s1.Cache.accesses <- s1.Cache.accesses +. (factor *. d.(12));
    s1.Cache.misses <- s1.Cache.misses +. (factor *. d.(13));
    s1.Cache.evicts <- s1.Cache.evicts +. (factor *. d.(14));
    s1.Cache.writebacks <- s1.Cache.writebacks +. (factor *. d.(15));
    s2.Cache.accesses <- s2.Cache.accesses +. (factor *. d.(16));
    s2.Cache.misses <- s2.Cache.misses +. (factor *. d.(17));
    s2.Cache.evicts <- s2.Cache.evicts +. (factor *. d.(18));
    s2.Cache.writebacks <- s2.Cache.writebacks +. (factor *. d.(19))
  in
  let stable ~tol (a : float array) (b : float array) =
    let ok = ref true in
    for k = 0 to n_fields - 1 do
      let x = a.(k) and y = b.(k) in
      if
        Float.abs (x -. y)
        > tol *. Float.max 1.0 (Float.max (Float.abs x) (Float.abs y))
      then ok := false
    done;
    !ok
  in
  (* --- node compilation --------------------------------------------- *)
  (* [inner] is the immediately enclosing loop (iterator, step): the
     fastest-varying dimension of any access compiled below it, used for
     line-stepping eligibility. *)
  let rec compile_nodes nodes ~depth ~simd_iter ~unrolled ~atomic_region
      ~in_parallel ~parallel_iter ~inner : unit -> unit =
    let fs =
      List.map
        (fun n ->
          compile_node n ~depth ~simd_iter ~unrolled ~atomic_region
            ~in_parallel ~parallel_iter ~inner)
        nodes
    in
    match fs with
    | [] -> fun () -> ()
    | [ f ] -> f
    | fs ->
        let a = Array.of_list fs in
        let n = Array.length a in
        fun () ->
          for i = 0 to n - 1 do
            a.(i) ()
          done
  and compile_node n ~depth ~simd_iter ~unrolled ~atomic_region ~in_parallel
      ~parallel_iter ~inner : unit -> unit =
    match n with
    | Ir.Ncomp c ->
        lazily (fun () ->
            let cc =
              match Hashtbl.find_opt comp_cache c.Ir.cid with
              | Some cc -> cc
              | None ->
                  let cc =
                    Trace.compile_comp cctx wctx ~simd_iter ~unrolled
                      ~atomic_region ~parallel_iter c
                  in
                  Hashtbl.replace comp_cache c.Ir.cid cc;
                  cc
            in
            let port_cost =
              if cc.Trace.flop_class = `Vector then
                1.0 /. float_of_int config.Config.vector_width
              else 1.0
            in
            let in_simd = simd_iter <> None in
            (* raw access list in [compile_comp]'s construction order, to
               pair each compiled access with its subscripts for the
               line-stepping analysis *)
            let raw =
              Util.dedup ~eq:( = )
                (Ir.comp_array_reads c
                @ List.map
                    (fun s -> { Ir.array = s; indices = [] })
                    (Ir.comp_scalar_reads c))
              @ (match c.Ir.dest with
                | Ir.Darray a -> [ a ]
                | Ir.Dscalar s -> [ { Ir.array = s; indices = [] } ])
            in
            let steppable (ra : Ir.access) =
              match approx with
              | Some ap when ap.line_step -> (
                  match inner with
                  | None -> false
                  | Some (it, step) -> (
                      let dims = wctx.Trace.layout.Trace.dims_of ra.Ir.array in
                      Array.length dims > 0
                      &&
                      match Trace.simd_stride dims ra.Ir.indices it with
                      | Some s ->
                          let d = abs (8 * s * step) in
                          d <> 0 && d < line_bytes && line_bytes mod d = 0
                      | None -> false))
              | _ -> false
            in
            let sites =
              List.map2
                (fun ra (a : Trace.compiled_access) ->
                  if a.Trace.is_register then None
                  else
                    Some
                      {
                        addr_fn = a.Trace.addr_fn;
                        write = a.Trace.write;
                        gather = a.Trace.strided_in_simd && in_simd;
                        line_skip = steppable ra;
                        last_line = -1;
                      })
                raw cc.Trace.accesses
              |> List.filter_map Fun.id
            in
            let sites = Array.of_list sites in
            let ns = Array.length sites in
            let fl = cc.Trace.comp_flops in
            let bump_flops =
              match cc.Trace.flop_class with
              | `Vector ->
                  fun () ->
                    counters.Trace.vec_flops <- counters.Trace.vec_flops +. fl
              | `Unrolled ->
                  fun () ->
                    counters.Trace.unrolled_flops <-
                      counters.Trace.unrolled_flops +. fl
              | `Scalar ->
                  fun () -> counters.Trace.flops <- counters.Trace.flops +. fl
            in
            let bump_tail =
              if cc.Trace.is_atomic then
                if cc.Trace.atomic_contended then fun () ->
                  bump_flops ();
                  counters.Trace.atomics <- counters.Trace.atomics +. 1.0
                else fun () ->
                  bump_flops ();
                  counters.Trace.atomics_private <-
                    counters.Trace.atomics_private +. 1.0
              else bump_flops
            in
            fun () ->
              for s = 0 to ns - 1 do
                let a = sites.(s) in
                let addr = a.addr_fn iters in
                (if a.line_skip then begin
                   let ln = addr lsr line_shift in
                   if ln <> a.last_line then begin
                     a.last_line <- ln;
                     Cache.access cache ~addr ~write:a.write
                   end
                 end
                 else Cache.access cache ~addr ~write:a.write);
                if a.write then
                  counters.Trace.stores <- counters.Trace.stores +. port_cost
                else counters.Trace.loads <- counters.Trace.loads +. port_cost;
                if a.gather then
                  counters.Trace.gather_extra <-
                    counters.Trace.gather_extra +. gather_mult
              done;
              bump_tail ())
    | Ir.Ncall k ->
        lazily (fun () ->
            let fdims = List.map (Trace.compile_expr cctx) k.Ir.dims in
            let kernel = k.Ir.kernel in
            fun () ->
              let dims = List.map (fun f -> f iters) fdims in
              counters.Trace.libcall_flops <-
                counters.Trace.libcall_flops
                +. (try Daisy_blas.Kernels.flops kernel dims with _ -> 0.0);
              counters.Trace.libcall_bytes <-
                counters.Trace.libcall_bytes
                +. (try Daisy_blas.Kernels.min_bytes kernel dims with _ -> 0.0))
    | Ir.Nloop l ->
        let starts_parallel = l.Ir.attrs.Ir.parallel && not in_parallel in
        let simd_iter' =
          if l.Ir.attrs.Ir.vectorized then Some l.Ir.iter else simd_iter
        in
        let unrolled' = unrolled || l.Ir.attrs.Ir.unroll > 1 in
        let atomic' =
          atomic_region || (starts_parallel && l.Ir.attrs.Ir.atomic)
        in
        let parallel_iter' =
          if starts_parallel then Some l.Ir.iter else parallel_iter
        in
        let slot = Hashtbl.find slot_tbl l.Ir.iter in
        let is_leaf = Ir.loops_in l.Ir.body = [] in
        let step = l.Ir.step in
        let adapt =
          match approx with
          | Some ap when depth >= 1 && ap.block > 0 && ap.min_trip < max_int ->
              Some ap
          | _ -> None
        in
        lazily (fun () ->
            let flo = Trace.compile_expr cctx l.Ir.lo in
            let fhi = Trace.compile_expr cctx l.Ir.hi in
            let fbody =
              compile_nodes l.Ir.body ~depth:(depth + 1) ~simd_iter:simd_iter'
                ~unrolled:unrolled' ~atomic_region:atomic'
                ~in_parallel:(in_parallel || starts_parallel)
                ~parallel_iter:parallel_iter'
                ~inner:(Some (l.Ir.iter, step))
            in
            (* per-loop scratch for the adaptive sampler (loops are not
               reentrant, so compile-time allocation is safe) *)
            let snap_prev = Array.make n_fields 0.0 in
            let snap_cur = Array.make n_fields 0.0 in
            let delta_prev = Array.make n_fields 0.0 in
            let delta_cur = Array.make n_fields 0.0 in
            let sp_memo = ref None in
            fun () ->
              let lo = flo iters in
              let hi = fhi iters in
              let trip =
                if step > 0 then max 0 (((hi - lo) / step) + 1)
                else max 0 (((lo - hi) / -step) + 1)
              in
              if starts_parallel then begin
                counters.Trace.has_parallel <- true;
                counters.Trace.parallel_regions <-
                  counters.Trace.parallel_regions +. 1.0;
                counters.Trace.par_trip <-
                  Float.max counters.Trace.par_trip (float_of_int trip)
              end;
              let spills, spill_base =
                match !sp_memo with
                | Some sb -> sb
                | None ->
                    let sb = if is_leaf then spills_of l else (0, 0) in
                    sp_memo := Some sb;
                    sb
              in
              let fspills = float_of_int spills in
              let run_iters i0 count =
                let i = ref i0 in
                for _ = 1 to count do
                  Budget.tick budget;
                  iters.(slot) <- !i;
                  fbody ();
                  for sp = 0 to spills - 1 do
                    let addr = spill_base + (sp * 8) in
                    Cache.access cache ~addr ~write:true;
                    Cache.access cache ~addr ~write:false
                  done;
                  if spills > 0 then begin
                    counters.Trace.loads <- counters.Trace.loads +. fspills;
                    counters.Trace.stores <- counters.Trace.stores +. fspills;
                    counters.Trace.spill_ops <-
                      counters.Trace.spill_ops +. (2.0 *. fspills)
                  end;
                  i := !i + step
                done;
                !i
              in
              match adapt with
              | Some ap when trip >= ap.min_trip && trip >= 2 * ap.block ->
                  (* block-sampled execution: run whole blocks until two
                     consecutive per-block deltas agree within [tol], then
                     extrapolate the remaining iterations *)
                  let b = ap.block in
                  snap snap_prev;
                  let i = ref lo in
                  let executed = ref 0 in
                  let blocks = ref 0 in
                  let have_delta = ref false in
                  let finished = ref false in
                  while (not !finished) && !executed + b <= trip do
                    i := run_iters !i b;
                    executed := !executed + b;
                    incr blocks;
                    snap snap_cur;
                    for k = 0 to n_fields - 1 do
                      delta_cur.(k) <- snap_cur.(k) -. snap_prev.(k)
                    done;
                    if
                      !have_delta
                      && !blocks >= ap.warm + 2
                      && stable ~tol:ap.tol delta_prev delta_cur
                    then begin
                      let factor =
                        float_of_int (trip - !executed) /. float_of_int b
                      in
                      extrapolate delta_cur factor;
                      (* if the skipped iterations would have streamed more
                         distinct lines through a level than it holds, the
                         tag state at the truncation point tells later code
                         nothing — flush that level (stats are kept; the
                         skipped misses were already charged by
                         extrapolation). The per-level miss deltas estimate
                         the skipped line traffic. *)
                      if factor *. delta_cur.(13) >= float_of_int l1_lines
                      then Cache.flush_l1 cache;
                      if factor *. delta_cur.(17) >= float_of_int l2_lines
                      then Cache.flush_l2 cache;
                      finished := true
                    end
                    else begin
                      Array.blit delta_cur 0 delta_prev 0 n_fields;
                      Array.blit snap_cur 0 snap_prev 0 n_fields;
                      have_delta := true
                    end
                  done;
                  if not !finished then ignore (run_iters !i (trip - !executed))
              | _ ->
                  if
                    depth = 0
                    && wctx.Trace.sample_outer > 0
                    && trip > wctx.Trace.sample_outer
                  then begin
                    ignore (run_iters lo wctx.Trace.sample_outer);
                    scale_factor :=
                      float_of_int trip /. float_of_int wctx.Trace.sample_outer
                  end
                  else ignore (run_iters lo trip))
  in
  let root =
    compile_nodes [ node ] ~depth:0 ~simd_iter:None ~unrolled:false
      ~atomic_region:false ~in_parallel:false ~parallel_iter:None ~inner:None
  in
  root ();
  counters.Trace.l1 <- Cache.sub_stats (Cache.l1_stats cache) l1_before;
  counters.Trace.l2 <- Cache.sub_stats (Cache.l2_stats cache) l2_before;
  if !scale_factor > 1.0 then begin
    let regions = counters.Trace.parallel_regions in
    Trace.scale_counters counters !scale_factor;
    if regions > 0.0 then counters.Trace.parallel_regions <- regions
  end;
  counters

(** [run config p ~sizes ?sample_outer ?approx ()] — compile and trace the
    whole program; returns per-top-level-node counters in order, exactly
    like [Trace.run]. *)
let run (config : Config.t) (p : Ir.program) ~(sizes : (string * int) list)
    ?(sample_outer = 0) ?approx ?(budget = Budget.unlimited ()) () :
    Trace.counters list =
  Fault.inject "trace_compile";
  let param_env =
    List.fold_left (fun m (k, v) -> Util.SMap.add k v m) Util.SMap.empty sizes
  in
  let layout = Trace.layout_of p ~sizes:param_env in
  let cache = Cache.create config in
  let wctx = { Trace.config; cache; layout; param_env; sample_outer; budget } in
  List.map (trace_node wctx ?approx) p.Ir.body
