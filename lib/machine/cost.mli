(** Roofline-style cost model: convert trace counters into cycles and
    simulated seconds. Per top-level nest the runtime is the max of FP
    issue, L1 port, L1<->L2 bandwidth and shared DRAM bandwidth, plus
    register-spill latency, atomic updates and parallel fork/join
    overheads. Shared DRAM bandwidth produces the strong-scaling
    saturation of the CLOUDSC study. *)

type nest_cost = {
  counters : Trace.counters;
  threads_used : float;
  cycles : float;
}

type report = {
  nests : nest_cost list;
  total_cycles : float;
  seconds : float;
  total_flops : float;
  mflops : float;
  l1_loads : float;
  l1_evicts : float;
  l2_misses : float;
}

val nest_cycles : Config.t -> threads:int -> Trace.counters -> nest_cost

type engine = Tree | Compiled | Bytecode | Approx of Trace_compile.approx
(** Which trace engine produces the counters. [Tree] is the original walker
    (the oracle); [Compiled] is the closure-tree engine, bit-identical to
    the walker; [Bytecode] is the flat-LIR engine ({!Trace_bc}),
    bit-identical to both and the default; [Approx] adds line-granular
    stepping and adaptive loop sampling with bounded relative error
    (docs/performance.md). *)

val engine_of_string : string -> engine
(** Parse "tree" | "compiled" | "bytecode" | "approx"; raises
    [Invalid_argument] otherwise. *)

val string_of_engine : engine -> string

type sim_memo = Trace_bc.memo
(** Cross-candidate simulation memo: content-addressed
    (trace-section fingerprint, [sample_outer], incoming cache-state
    class) -> (counters, raw stat deltas, outgoing cache state). Shared
    safely across domains; only consulted by the [Bytecode] engine, and
    only when its config matches the evaluation's. *)

val sim_memo_create : ?cap:int -> Config.t -> sim_memo

val sim_memo_stats : sim_memo -> int * int
(** (hits, misses) — instrumented like the scheduler's fitness cache. *)

val evaluate :
  Config.t ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?threads:int ->
  ?sample_outer:int ->
  ?engine:engine ->
  ?budget:Daisy_support.Budget.t ->
  ?memo:sim_memo ->
  unit ->
  report
(** Trace and cost a program ([sample_outer] > 0 samples the outermost loop
    of each top-level nest and extrapolates; [engine] defaults to
    [Bytecode]). [budget] bounds the walked loop iterations;
    [Daisy_support.Budget.Exhausted] escapes when it runs out. *)

val evaluate_guarded :
  Config.t ->
  Daisy_loopir.Ir.program ->
  sizes:(string * int) list ->
  ?threads:int ->
  ?sample_outer:int ->
  ?engine:engine ->
  ?steps:int ->
  ?memo:sim_memo ->
  unit ->
  report
(** The resilient entry point the scheduler uses. Each attempt gets a
    fresh budget of [steps] walked loop iterations (unlimited when
    [None]); [Budget.Exhausted] propagates so callers can map it to
    [infinity] fitness. Any other non-tree-engine failure logs a
    throttled warning, bumps {!engine_fallbacks} and transparently
    re-runs one engine down the bytecode -> compiled -> tree chain. *)

val engine_fallbacks : unit -> int
(** Times {!evaluate_guarded} stepped down the engine chain. *)

val reset_engine_fallbacks : unit -> unit

val milliseconds : report -> float
val pp_report : report Fmt.t
