(** Machine model parameters — a proportionally scaled-down Xeon E5-2680v3
    (the paper's testbed); see DESIGN.md §7 for the scaling argument. *)

type cache_level = {
  name : string;
  size_bytes : int;
  line_bytes : int;
  assoc : int;
}

type t = {
  l1 : cache_level;
  l2 : cache_level;
  freq_ghz : float;
  cores : int;
  scalar_flops_per_cycle : float;
  vector_width : int;  (** doubles per SIMD operation *)
  l1_accesses_per_cycle : float;  (** load/store ports *)
  l2_bytes_per_cycle : float;  (** per-core L1<->L2 bandwidth *)
  dram_bytes_per_cycle : float;  (** shared off-chip bandwidth *)
  atomic_cycles : float;
  parallel_region_base_cycles : float;
  parallel_region_per_thread_cycles : float;
  unroll_ilp_boost : float;
  spill_latency_cycles : float;
  blas_efficiency : float;  (** fraction of vector peak a tuned BLAS hits *)
}

val default : t
(** Scaled Xeon-like machine: L1 8 KiB / 4-way, L2 64 KiB / 8-way. *)

val peak_mflops : t -> float
(** Whole-machine vector-FMA peak in MFLOP/s. *)

val validate : t -> string list
(** One message per parameter the cache simulator would have to round or
    clamp (non-power-of-two line size / set count, non-positive
    associativity, ...). Empty = simulated exactly as written. *)

val intrinsic_flops : string -> float
(** Cost of intrinsics in scalar-equivalent flops. *)
