(** Flat bytecode: the single lowered program format shared by the
    semantic interpreter backend ([Interp] engine [Bytecode], executed by
    [lib/interp/bc_exec.ml]) and the cost-model trace backend ([Cost]
    engine [Bytecode], executed by [lib/machine/trace_bc.ml]).

    One pass over {!Daisy_loopir.Ir.program} produces:

    - a contiguous opcode stream ([code : int array]) plus operand pools
      ([pool] for affine address terms, [xpool] for compiled non-affine
      integer expressions, [fpool] for float constants, [names] for
      interned strings);
    - a register file layout: every loop gets two integer registers (the
      iterator and its evaluated upper bound), scalars get slots in a
      float register file with bound flags;
    - affine subscripts fused into address-generation descriptors
      ([Ix_aff]: [base + sum coeff*reg] as one table-driven operand)
      exactly as {!Daisy_interp.Compile.compile_int} folds them, with an
      [Ix_code] RPN fallback mirroring the compiled-expression tree;
    - superinstructions: a static peephole pass rewrites innermost loops
      whose body is straight-line float code (loads/stores/arithmetic)
      into one [FUSE] opcode; the executing backend runs the whole loop
      out of a fused closure (with direct-indexed FMA/accumulator
      specializations) after a side-effect-free safety precheck, and
      falls back to the generic instruction loop otherwise;
    - when trace hooks are supplied, a parallel {e trace section} per
      top-level node: a compact 5-opcode stream with per-occurrence
      computation descriptors, precomputed byte-address generators and
      compile-time error strings, driving the cache simulator with
      bit-identical counters to {!Daisy_machine.Trace_compile}.

    Exactness contract: the semantic stream replicates the tree oracle's
    observable behavior (evaluation order, error messages, raise points);
    the trace section replicates the compiled trace engine's counter
    arithmetic, float-addition order included. The differential suite in
    [test/test_bytecode.ml] enforces both.

    Lowering passes through the ["bc_compile"] {!Daisy_support.Fault}
    injection point; under [DAISY_VALIDATE] ({!Daisy_loopir.Ir.validation_enabled})
    the input program is validated before lowering and the produced
    artifact is checked by {!verify} after. *)

open Daisy_support
module L = Daisy_loopir.Ir
module Expr = Daisy_poly.Expr
module Affine = Daisy_poly.Affine

(* ------------------------------------------------------------------ *)
(* Growable vectors                                                     *)

module Ivec = struct
  type t = { mutable a : int array; mutable n : int }

  let create () = { a = Array.make 64 0; n = 0 }
  let len v = v.n

  let push v x =
    if v.n = Array.length v.a then begin
      let a' = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 a' 0 v.n;
      v.a <- a'
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i = v.a.(i)
  let set v i x = v.a.(i) <- x
  let to_array v = Array.sub v.a 0 v.n
end

(** Growable list-with-count used for record tables; [gpush] returns the
    index of the pushed element. *)
type 'a gvec = { mutable items : 'a list; mutable count : int }

let gvec () = { items = []; count = 0 }

let gpush g x =
  let i = g.count in
  g.items <- x :: g.items;
  g.count <- i + 1;
  i

let garr g = Array.of_list (List.rev g.items)

(* ------------------------------------------------------------------ *)
(* The semantic ISA                                                     *)

(* opcode = code.(pc); operands follow inline. Lengths in [op_len]. *)
let op_halt = 0 (* [] end of stream *)
let op_loop = 1 (* [ireg; hireg; lo_ix; hi_ix; step; end_pc] loop entry *)
let op_loopbk = 2 (* [ireg; hireg; step; body_pc] loop back-edge *)
let op_fconst = 3 (* [fpool id] push float constant *)
let op_fscalar = 4 (* [slot] push scalar register (checked bound) *)
let op_fload = 5 (* [site id] push array element *)
let op_fstore = 6 (* [site id] pop value, store to array element *)
let op_fstore_s = 7 (* [slot] pop value, store to scalar register *)
let op_fadd = 8 (* [] pop b, a; push a +. b *)
let op_fsub = 9 (* [] pop b, a; push a -. b *)
let op_fmul = 10 (* [] pop b, a; push a *. b *)
let op_fdiv = 11 (* [] pop b, a; push a /. b *)
let op_fneg = 12 (* [] negate top of stack *)
let op_fint = 13 (* [ix id] push float_of_int of an integer expression *)
let op_fintr1 = 14 (* [kind] unary intrinsic on top of stack *)
let op_fintr2 = 15 (* [kind] binary intrinsic *)
let op_fbadcall = 16 (* [name id; nargs] unknown intrinsic: raises *)
let op_fcmp = 17 (* [kind] pop b, a; set flag from comparison *)
let op_jf = 18 (* [target] jump if flag is false *)
let op_jt = 19 (* [target] jump if flag is true *)
let op_jmp = 20 (* [target] unconditional jump *)
let op_notf = 21 (* [] invert flag *)
let op_callk = 22 (* [call id] library kernel call *)
let op_fuse = 23 (* [fuse id; 5 stale words] fused innermost loop *)
let op_ret = 24 (* [] end of an alpha fragment *)
let n_ops = 25

let op_len =
  [| 1; 7; 5; 2; 2; 2; 2; 2; 1; 1; 1; 1; 1; 2; 2; 2; 3; 2; 2; 2; 2; 1; 2; 7; 1 |]

let op_name =
  [|
    "HALT"; "LOOP"; "LOOPBK"; "FCONST"; "FSCALAR"; "FLOAD"; "FSTORE";
    "FSTORE_S"; "FADD"; "FSUB"; "FMUL"; "FDIV"; "FNEG"; "FINT"; "FINTR1";
    "FINTR2"; "FBADCALL"; "FCMP"; "JF"; "JT"; "JMP"; "NOTF"; "CALLK"; "FUSE";
    "RET";
  |]

(* unary intrinsic kinds (FINTR1) *)
let intr1_names =
  [| "sqrt"; "exp"; "log"; "fabs"; "floor"; "ceil"; "sin"; "cos"; "tanh" |]

(* binary intrinsic kinds (FINTR2) *)
let intr2_names = [| "pow"; "min"; "max" |]

(* comparison kinds (FCMP) *)
let cmp_names = [| "lt"; "le"; "gt"; "ge"; "eq"; "ne" |]

(* ------------------------------------------------------------------ *)
(* The xcode mini-ISA: compiled non-affine integer expressions           *)

(* RPN streams in [xpool], evaluated atomically on a scratch int stack.
   Operand order is chosen so a stream replicates the observable
   evaluation order of the closure-compiled expression trees. *)
let x_push = 0 (* [imm] push constant *)
let x_reg = 1 (* [reg] push integer register *)
let x_err = 2 (* [name id] unbound variable: raises like Expr.eval *)
let x_add = 3
let x_sub = 4
let x_mul = 5
let x_neg = 6
let x_min = 7
let x_max = 8
let x_divf = 9 (* checked floor division (Expr.eval semantics) *)
let x_modf = 10 (* checked floor modulo *)
let x_divt = 11 (* unchecked floor division (trace semantics) *)
let x_modt = 12 (* unchecked floor modulo *)
let n_xops = 13

let xop_len = [| 2; 2; 2; 1; 1; 1; 1; 1; 1; 1; 1; 1; 1 |]

let xop_name =
  [|
    "push"; "reg"; "err"; "add"; "sub"; "mul"; "neg"; "min"; "max"; "divf";
    "modf"; "divt"; "modt";
  |]

(* ------------------------------------------------------------------ *)
(* The trace ISA                                                        *)

let t_halt = 0 (* [] *)
let t_loop = 1 (* [loop id; end_pc] *)
let t_loopbk = 2 (* [loop id; body_pc] *)
let t_comp = 3 (* [comp id] *)
let t_call = 4 (* [call id] *)
let n_tops = 5

let top_len = [| 1; 3; 3; 2; 2 |]
let top_name = [| "THALT"; "TLOOP"; "TLOOPBK"; "TCOMP"; "TCALL" |]

(* ------------------------------------------------------------------ *)
(* Artifact types                                                       *)

(** An integer-expression operand. Registers index the semantic integer
    register file (or, inside a trace section, the node's slot file). *)
type ix =
  | Ix_const of int
  | Ix_reg of int
  | Ix_aff of int * int
      (** [pool] offset and term count; layout [base; (reg, coeff)...] *)
  | Ix_code of int * int  (** [xpool] offset and length (RPN stream) *)

(** A semantic array-access site. *)
type site = { s_array : int;  (** name id *) s_ixs : int array  (** ix ids *) }

(** A lowered library call. [ck_kind]: 0 gemm, 1 gemv, 2 gemvt, 3 syrk,
    4 syr2k, 5 unsupported. [ck_alpha] is the pc of a [RET]-terminated
    fragment computing the first scalar argument (emitted after [HALT]),
    or -1 for the implicit 1.0. *)
type callk = {
  ck_kind : int;
  ck_kernel : int;  (** name id *)
  ck_args : int array;  (** name ids, in source order *)
  ck_dims : int array;  (** ix ids, in source order *)
  mutable ck_alpha : int;
  ck_na : int;
  ck_nd : int;
}

(** A fused innermost loop (superinstruction). The original [LOOP] words
    are overwritten in place ([FUSE fid] + five stale words) and the
    terminating [LOOPBK] is retained, so the generic-dispatch slow path
    simply enters the body at [fu_body_pc]. [fu_ops] is the straight-line
    body as (opcode, operand) pairs (operand -1 for zero-operand ops). *)
type fuse = {
  fu_ireg : int;
  fu_hireg : int;
  fu_lo : int;  (** ix id *)
  fu_hi : int;  (** ix id *)
  fu_step : int;
  fu_body_pc : int;
  fu_end_pc : int;
  fu_ops : (int * int) array;
}

(** A trace-section byte-address generator. *)
type taccess =
  | Ta_aff of int * int
      (** node-pool offset, term count; layout [byte_base; (slot,
          byte_coeff)...] — the whole multi-dim row-major address fused
          into one linear form *)
  | Ta_gen of int * int array * int array
      (** base, declared dims, index ix ids — row-major fold with the
          compiled engine's rank-mismatch behavior *)

type tsite = { ts_acc : taccess; ts_write : bool; ts_strided : bool }

(** One computation occurrence in a trace stream. The [y_cid]-keyed memo
    at runtime replicates {!Daisy_machine.Trace_compile}: the first
    executed occurrence provides sites, flop class and atomics for every
    later occurrence; only [y_in_simd] stays per-occurrence. *)
type tcomp = {
  y_cid : int;
  y_err : string option;  (** compile-time error, raised at every execution *)
  y_sites : tsite array;  (** non-register accesses: reads then write *)
  y_flops : float;
  y_class : int;  (** 0 scalar, 1 vector, 2 unrolled *)
  y_atomic : bool;
  y_contended : bool;
  y_in_simd : bool;
}

type tcall = {
  z_err : string option;
  z_kernel : int;  (** name id *)
  z_dims : int array;  (** ix ids *)
}

type tloop = {
  w_err : string option;
  w_slot : int;
  w_lid : int;
  w_step : int;
  w_lo : int;  (** ix id *)
  w_hi : int;  (** ix id *)
  w_spills : int;  (** spill estimate (leaf loops; 0 otherwise) *)
  w_is_leaf : bool;
  w_starts_parallel : bool;
  w_depth0 : bool;
  mutable w_body : int array option;
      (** [Some ids] iff the loop body is a straight-line run of [t_comp]
          instructions only (no nested loops, no calls): the comp ids in
          execution order. Patched after the body is emitted; the trace
          replay uses it as the static precheck for batched stream
          replay. *)
}

(** The trace section for one top-level node. *)
type tnode = {
  t_code : int array;
  t_nslots : int;
  t_ixs : ix array;
  t_loops : tloop array;
  t_comps : tcomp array;
  t_calls : tcall array;
  t_pool : int array;
  t_xpool : int array;
}

(** Hooks supplied by the machine model so the trace section can be
    lowered without a dependency on [lib/machine]. *)
type trace_hooks = {
  th_base_of : string -> int option;  (** byte base, [None] if unknown *)
  th_dims_of : string -> int array;  (** [[||]] for scalar containers *)
  th_spills : L.loop -> int;
  th_comp_flops : L.comp -> float;  (** rhs + guard flops, un-clamped *)
  th_simd_stride : int array -> Expr.t list -> string -> int option;
}

(** The lowered artifact. *)
type t = {
  bc_pname : string;
  code : int array;
  pool : int array;
  xpool : int array;
  fpool : float array;
  names : string array;
  ixs : ix array;
  sites : site array;
  calls : callk array;
  fuses : fuse array;
  n_iregs : int;
  scalar_names : string array;
  max_stack : int;
  max_xstack : int;
  tnodes : tnode array;
}

(* ------------------------------------------------------------------ *)
(* Shared runtime helpers                                               *)

(** Evaluate an xcode stream. [regs] is the integer register file the
    stream was lowered against; [stack] is caller-provided scratch (xcode
    evaluation is atomic, so one per evaluator is enough). *)
let eval_xcode ~(xpool : int array) ~(names : string array)
    ~(regs : int array) ~(stack : int array) ~off ~len : int =
  let p = ref off in
  let fin = off + len in
  let sp = ref 0 in
  while !p < fin do
    let op = xpool.(!p) in
    if op <= x_err then begin
      (if op = x_push then stack.(!sp) <- xpool.(!p + 1)
       else if op = x_reg then stack.(!sp) <- regs.(xpool.(!p + 1))
       else
         invalid_arg
           (Printf.sprintf "Expr.eval: unbound variable %s"
              names.(xpool.(!p + 1))));
      incr sp;
      p := !p + 2
    end
    else if op = x_neg then begin
      stack.(!sp - 1) <- -stack.(!sp - 1);
      incr p
    end
    else begin
      (* binary: t = top, u = below *)
      decr sp;
      let t = stack.(!sp) in
      let u = stack.(!sp - 1) in
      let r =
        if op = x_add then t + u
        else if op = x_sub then t - u
        else if op = x_mul then t * u
        else if op = x_min then min t u
        else if op = x_max then max t u
        else if op = x_divf then begin
          (* dividend below, divisor on top (Expr.eval order) *)
          if t = 0 then invalid_arg "Expr.eval: division by zero";
          let q = u / t and r = u mod t in
          if r <> 0 && r < 0 <> (t < 0) then q - 1 else q
        end
        else if op = x_modf then begin
          if t = 0 then invalid_arg "Expr.eval: modulo by zero";
          let r = u mod t in
          if r <> 0 && r < 0 <> (t < 0) then r + t else r
        end
        else if op = x_divt then begin
          let q = u / t and r = u mod t in
          if r <> 0 && r < 0 <> (t < 0) then q - 1 else q
        end
        else begin
          (* x_modt *)
          let r = u mod t in
          if r <> 0 && r < 0 <> (t < 0) then r + t else r
        end
      in
      stack.(!sp - 1) <- r;
      incr p
    end
  done;
  stack.(0)

(** Bind an {!ix} to a thunk over a register file, with the same
    specialization ladder as the closure compilers. *)
let binder ~(pool : int array) ~(xpool : int array) ~(names : string array)
    ~(regs : int array) ~(xstack : int array) (ix : ix) : unit -> int =
  match ix with
  | Ix_const n -> fun () -> n
  | Ix_reg r -> fun () -> regs.(r)
  | Ix_aff (off, nterms) ->
      let b = pool.(off) in
      if nterms = 1 then begin
        let r = pool.(off + 1) and c = pool.(off + 2) in
        if c = 1 then fun () -> regs.(r) + b
        else fun () -> (c * regs.(r)) + b
      end
      else if nterms = 2 then begin
        let r1 = pool.(off + 1) and c1 = pool.(off + 2) in
        let r2 = pool.(off + 3) and c2 = pool.(off + 4) in
        fun () -> (c1 * regs.(r1)) + (c2 * regs.(r2)) + b
      end
      else
        fun () ->
          let acc = ref b in
          for k = 0 to nterms - 1 do
            acc := !acc + (pool.(off + 2 + (2 * k)) * regs.(pool.(off + 1 + (2 * k))))
          done;
          !acc
  | Ix_code (off, len) ->
      fun () -> eval_xcode ~xpool ~names ~regs ~stack:xstack ~off ~len

(* ------------------------------------------------------------------ *)
(* Lowering: shared emitter state                                       *)

type resolution = Rreg of int | Rconst of int | Runbound

(** One code section (the semantic stream or one trace node). *)
type section = {
  sc_code : Ivec.t;
  sc_pool : Ivec.t;
  sc_xpool : Ivec.t;
  sc_ixs : ix gvec;
}

let section () =
  { sc_code = Ivec.create (); sc_pool = Ivec.create ();
    sc_xpool = Ivec.create (); sc_ixs = gvec () }

(** Global lowering state: string/float interners and stack-depth
    accounting shared by every section. *)
type emitter = {
  name_tbl : (string, int) Hashtbl.t;
  names : string gvec;
  f_tbl : (int64, int) Hashtbl.t;
  fpool : float gvec;
  mutable xdepth : int;
  mutable max_xstack : int;
}

let emitter () =
  {
    name_tbl = Hashtbl.create 16;
    names = gvec ();
    f_tbl = Hashtbl.create 16;
    fpool = gvec ();
    xdepth = 0;
    max_xstack = 0;
  }

let intern_name em s =
  match Hashtbl.find_opt em.name_tbl s with
  | Some i -> i
  | None ->
      let i = gpush em.names s in
      Hashtbl.add em.name_tbl s i;
      i

let intern_float em f =
  let bits = Int64.bits_of_float f in
  match Hashtbl.find_opt em.f_tbl bits with
  | Some i -> i
  | None ->
      let i = gpush em.fpool f in
      Hashtbl.add em.f_tbl bits i;
      i

(* ------------------------------------------------------------------ *)
(* Integer-expression lowering                                          *)

let xpush_depth em =
  em.xdepth <- em.xdepth + 1;
  if em.xdepth > em.max_xstack then em.max_xstack <- em.xdepth

(* Emission order matches the closure trees' observable evaluation order:
   [fa it + fb it] applies [fb] first (OCaml right-to-left), while
   div/mod bind [let x = fa it and y = fb it] left-to-right. *)
let rec emit_x em sec resolve ~checked (e : Expr.t) : unit =
  let pushx v = Ivec.push sec.sc_xpool v in
  match e with
  | Expr.Const n ->
      pushx x_push;
      pushx n;
      xpush_depth em
  | Expr.Var v ->
      (match resolve v with
      | Rreg r ->
          pushx x_reg;
          pushx r
      | Rconst n ->
          pushx x_push;
          pushx n
      | Runbound ->
          pushx x_err;
          pushx (intern_name em v));
      xpush_depth em
  | Expr.Add (a, b) ->
      emit_x em sec resolve ~checked b;
      emit_x em sec resolve ~checked a;
      pushx x_add;
      em.xdepth <- em.xdepth - 1
  | Expr.Sub (a, b) ->
      emit_x em sec resolve ~checked b;
      emit_x em sec resolve ~checked a;
      pushx x_sub;
      em.xdepth <- em.xdepth - 1
  | Expr.Mul (a, b) ->
      emit_x em sec resolve ~checked b;
      emit_x em sec resolve ~checked a;
      pushx x_mul;
      em.xdepth <- em.xdepth - 1
  | Expr.Min (a, b) ->
      emit_x em sec resolve ~checked b;
      emit_x em sec resolve ~checked a;
      pushx x_min;
      em.xdepth <- em.xdepth - 1
  | Expr.Max (a, b) ->
      emit_x em sec resolve ~checked b;
      emit_x em sec resolve ~checked a;
      pushx x_max;
      em.xdepth <- em.xdepth - 1
  | Expr.Div (a, b) ->
      emit_x em sec resolve ~checked a;
      emit_x em sec resolve ~checked b;
      pushx (if checked then x_divf else x_divt);
      em.xdepth <- em.xdepth - 1
  | Expr.Mod (a, b) ->
      emit_x em sec resolve ~checked a;
      emit_x em sec resolve ~checked b;
      pushx (if checked then x_modf else x_modt);
      em.xdepth <- em.xdepth - 1
  | Expr.Neg a -> emit_x em sec resolve ~checked a; pushx x_neg

let lower_xcode em sec resolve ~checked e : ix =
  let off = Ivec.len sec.sc_xpool in
  em.xdepth <- 0;
  emit_x em sec resolve ~checked e;
  Ix_code (off, Ivec.len sec.sc_xpool - off)

(** Lower an integer expression: affine fast path with all variables
    resolved (size parameters folded into the base), whole-expression
    xcode fallback otherwise — the same split as [Compile.compile_int].
    Returns the new ix id in [sec]. *)
let lower_ix em sec resolve ~checked (e : Expr.t) : int =
  let ix =
    match Affine.of_expr e with
    | None -> lower_xcode em sec resolve ~checked e
    | Some aff ->
        let base = ref aff.Affine.const in
        let terms = ref [] in
        let ok = ref true in
        Util.SMap.iter
          (fun v c ->
            match resolve v with
            | Rreg r -> terms := (r, c) :: !terms
            | Rconst n -> base := !base + (c * n)
            | Runbound -> ok := false)
          aff.Affine.terms;
        if not !ok then lower_xcode em sec resolve ~checked e
        else begin
          match !terms with
          | [] -> Ix_const !base
          | [ (r, 1) ] when !base = 0 -> Ix_reg r
          | ts ->
              let off = Ivec.len sec.sc_pool in
              Ivec.push sec.sc_pool !base;
              List.iter
                (fun (r, c) ->
                  Ivec.push sec.sc_pool r;
                  Ivec.push sec.sc_pool c)
                ts;
              Ix_aff (off, List.length ts)
        end
  in
  gpush sec.sc_ixs ix

(* ------------------------------------------------------------------ *)
(* Semantic lowering                                                    *)

type sem_state = {
  em : emitter;
  sec : section;
  sites : site gvec;
  calls : callk gvec;
  fuses : fuse gvec;
  scalar_tbl : (string, int) Hashtbl.t;
  sizes : int Util.SMap.t;
  mutable slots : (string * int) list;  (** lexically scoped iter -> ireg *)
  mutable nregs : int;
  mutable depth : int;
  mutable maxdepth : int;
  mutable pending : (callk * (string * int) list * L.vexpr) list;
}

let sem_resolve ss v =
  match List.assoc_opt v ss.slots with
  | Some r -> Rreg r
  | None -> (
      match Util.SMap.find_opt v ss.sizes with
      | Some n -> Rconst n
      | None -> Runbound)

let emit ss w = Ivec.push ss.sec.sc_code w
let here ss = Ivec.len ss.sec.sc_code
let patch ss at v = Ivec.set ss.sec.sc_code at v

let push_f ss =
  ss.depth <- ss.depth + 1;
  if ss.depth > ss.maxdepth then ss.maxdepth <- ss.depth

let lower_int ss e = lower_ix ss.em ss.sec (sem_resolve ss) ~checked:true e

let lower_site ss (a : L.access) : int =
  let ixs = List.map (lower_int ss) a.L.indices in
  gpush ss.sites { s_array = intern_name ss.em a.L.array; s_ixs = Array.of_list ixs }

let scalar_slot ss s =
  match Hashtbl.find_opt ss.scalar_tbl s with
  | Some i -> i
  | None ->
      (* the prepass collects every scalar name, so this is unreachable
         for well-formed programs *)
      Diag.errorf "bytecode lowering: unbound scalar %s" s

let intr1_kind f =
  let rec go i =
    if i >= Array.length intr1_names then -1
    else if intr1_names.(i) = f then i
    else go (i + 1)
  in
  go 0

let intr2_kind f =
  let rec go i =
    if i >= Array.length intr2_names then -1
    else if intr2_names.(i) = f then i
    else go (i + 1)
  in
  go 0

(* Stack effect discipline matches the tree oracle's evaluation order:
   binary operands left then right, intrinsic arguments left to right,
   guard before rhs before destination indices. *)
let rec emit_vexpr ss (e : L.vexpr) : unit =
  match e with
  | L.Vfloat f ->
      emit ss op_fconst;
      emit ss (intern_float ss.em f);
      push_f ss
  | L.Vint ie ->
      let id = lower_int ss ie in
      emit ss op_fint;
      emit ss id;
      push_f ss
  | L.Vread a ->
      let sid = lower_site ss a in
      emit ss op_fload;
      emit ss sid;
      push_f ss
  | L.Vscalar s ->
      emit ss op_fscalar;
      emit ss (scalar_slot ss s);
      push_f ss
  | L.Vbin (op, a, b) ->
      emit_vexpr ss a;
      emit_vexpr ss b;
      emit ss
        (match op with
        | L.Vadd -> op_fadd
        | L.Vsub -> op_fsub
        | L.Vmul -> op_fmul
        | L.Vdiv -> op_fdiv);
      ss.depth <- ss.depth - 1
  | L.Vneg a ->
      emit_vexpr ss a;
      emit ss op_fneg
  | L.Vcall (f, args) -> (
      let n = List.length args in
      match args with
      | [ a ] when intr1_kind f >= 0 ->
          emit_vexpr ss a;
          emit ss op_fintr1;
          emit ss (intr1_kind f)
      | [ a; b ] when intr2_kind f >= 0 ->
          emit_vexpr ss a;
          emit_vexpr ss b;
          emit ss op_fintr2;
          emit ss (intr2_kind f);
          ss.depth <- ss.depth - 1
      | _ ->
          List.iter (emit_vexpr ss) args;
          emit ss op_fbadcall;
          emit ss (intern_name ss.em f);
          emit ss n;
          (* raises after evaluating its arguments; net effect on the
             depth simulation is pop n, push 1 *)
          ss.depth <- ss.depth - n;
          push_f ss)
  | L.Vselect (p, a, b) ->
      emit_pred ss p;
      emit ss op_jf;
      let l_else = here ss in
      emit ss 0;
      let d0 = ss.depth in
      emit_vexpr ss a;
      emit ss op_jmp;
      let l_end = here ss in
      emit ss 0;
      patch ss l_else (here ss);
      ss.depth <- d0;
      emit_vexpr ss b;
      patch ss l_end (here ss)

and emit_pred ss (p : L.pred) : unit =
  match p with
  | L.Pcmp (op, a, b) ->
      emit_vexpr ss a;
      emit_vexpr ss b;
      emit ss op_fcmp;
      emit ss
        (match op with
        | L.Clt -> 0
        | L.Cle -> 1
        | L.Cgt -> 2
        | L.Cge -> 3
        | L.Ceq -> 4
        | L.Cne -> 5);
      ss.depth <- ss.depth - 2
  | L.Pand (a, b) ->
      (* short-circuit: if a is false, the flag is already false *)
      emit_pred ss a;
      emit ss op_jf;
      let l = here ss in
      emit ss 0;
      emit_pred ss b;
      patch ss l (here ss)
  | L.Por (a, b) ->
      emit_pred ss a;
      emit ss op_jt;
      let l = here ss in
      emit ss 0;
      emit_pred ss b;
      patch ss l (here ss)
  | L.Pnot a ->
      emit_pred ss a;
      emit ss op_notf

let emit_comp ss (c : L.comp) : unit =
  let l_end = ref (-1) in
  (match c.L.guard with
  | None -> ()
  | Some g ->
      emit_pred ss g;
      emit ss op_jf;
      l_end := here ss;
      emit ss 0);
  emit_vexpr ss c.L.rhs;
  (match c.L.dest with
  | L.Dscalar s ->
      emit ss op_fstore_s;
      emit ss (scalar_slot ss s)
  | L.Darray a ->
      let sid = lower_site ss a in
      emit ss op_fstore;
      emit ss sid);
  ss.depth <- ss.depth - 1;
  if !l_end >= 0 then patch ss !l_end (here ss)

let emit_libcall ss (k : L.libcall) : unit =
  let dims = List.map (lower_int ss) k.L.dims in
  let na = List.length k.L.args and nd = List.length k.L.dims in
  let kind =
    match (k.L.kernel, na, nd) with
    | "gemm", 3, 3 -> 0
    | "gemv", 3, 2 -> 1
    | "gemvt", 3, 2 -> 2
    | "syrk", 2, 2 -> 3
    | "syr2k", 3, 2 -> 4
    | _ -> 5
  in
  let ck =
    {
      ck_kind = kind;
      ck_kernel = intern_name ss.em k.L.kernel;
      ck_args = Array.of_list (List.map (intern_name ss.em) k.L.args);
      ck_dims = Array.of_list dims;
      ck_alpha = -1;
      ck_na = na;
      ck_nd = nd;
    }
  in
  let id = gpush ss.calls ck in
  (match k.L.scalar_args with
  | [] -> ()
  | a :: _ -> ss.pending <- (ck, ss.slots, a) :: ss.pending);
  emit ss op_callk;
  emit ss id

let rec emit_node ss (n : L.node) : unit =
  match n with
  | L.Ncomp c -> emit_comp ss c
  | L.Ncall k -> emit_libcall ss k
  | L.Nloop l ->
      (* bounds are lowered in the enclosing scope *)
      let lo = lower_int ss l.L.lo in
      let hi = lower_int ss l.L.hi in
      let ireg = ss.nregs in
      let hireg = ss.nregs + 1 in
      ss.nregs <- ss.nregs + 2;
      emit ss op_loop;
      emit ss ireg;
      emit ss hireg;
      emit ss lo;
      emit ss hi;
      emit ss l.L.step;
      let l_end = here ss in
      emit ss 0;
      let body_pc = here ss in
      let saved = ss.slots in
      ss.slots <- (l.L.iter, ireg) :: saved;
      List.iter (emit_node ss) l.L.body;
      ss.slots <- saved;
      emit ss op_loopbk;
      emit ss ireg;
      emit ss hireg;
      emit ss l.L.step;
      emit ss body_pc;
      patch ss l_end (here ss)

(* ------------------------------------------------------------------ *)
(* Peephole: superinstruction formation                                 *)

let fusable op =
  op = op_fconst || op = op_fscalar || op = op_fload || op = op_fstore
  || op = op_fadd || op = op_fsub || op = op_fmul || op = op_fdiv
  || op = op_fneg || op = op_fintr1 || op = op_fintr2

(** Rewrite innermost loops whose whole body is straight-line float code
    into [FUSE] superinstructions, in place (no pc remapping: [FUSE] has
    [LOOP]'s length and the body plus [LOOPBK] stay behind it as the
    slow path). *)
let peephole (fuses : fuse gvec) (code : int array) : unit =
  let n = Array.length code in
  let pc = ref 0 in
  while !pc < n do
    let op = code.(!pc) in
    let len = op_len.(op) in
    (if op = op_loop then begin
       let ireg = code.(!pc + 1) in
       let end_pc = code.(!pc + 6) in
       let bk = end_pc - op_len.(op_loopbk) in
       if
         bk >= !pc + 7 && end_pc <= n
         && code.(bk) = op_loopbk
         && code.(bk + 1) = ireg
         && code.(bk + 4) = !pc + 7
       then begin
         let ok = ref true in
         let ops = ref [] in
         let q = ref (!pc + 7) in
         while !ok && !q < bk do
           let o = code.(!q) in
           if fusable o then begin
             let operand = if op_len.(o) = 2 then code.(!q + 1) else -1 in
             ops := (o, operand) :: !ops;
             q := !q + op_len.(o)
           end
           else ok := false
         done;
         if !ok && !q = bk then begin
           let fu =
             {
               fu_ireg = ireg;
               fu_hireg = code.(!pc + 2);
               fu_lo = code.(!pc + 3);
               fu_hi = code.(!pc + 4);
               fu_step = code.(!pc + 5);
               fu_body_pc = !pc + 7;
               fu_end_pc = end_pc;
               fu_ops = Array.of_list (List.rev !ops);
             }
           in
           let fid = gpush fuses fu in
           code.(!pc) <- op_fuse;
           code.(!pc + 1) <- fid
         end
       end
     end);
    pc := !pc + len
  done

(* ------------------------------------------------------------------ *)
(* Trace-section lowering                                               *)

(** Depth-first left-to-right scan for the first variable that neither
    the slot table nor the parameter environment resolves — the variable
    whose compilation raises first in the closure engines. *)
let rec first_unbound resolve (e : Expr.t) : string option =
  match e with
  | Expr.Const _ -> None
  | Expr.Var v -> ( match resolve v with Runbound -> Some v | _ -> None)
  | Expr.Add (a, b)
  | Expr.Sub (a, b)
  | Expr.Mul (a, b)
  | Expr.Div (a, b)
  | Expr.Mod (a, b)
  | Expr.Min (a, b)
  | Expr.Max (a, b) -> (
      match first_unbound resolve a with
      | Some _ as s -> s
      | None -> first_unbound resolve b)
  | Expr.Neg a -> first_unbound resolve a

let unbound_err resolve e =
  Option.map (fun v -> "unbound variable " ^ v) (first_unbound resolve e)

(** The first compile-time error of a computation, scanning accesses in
    the closure engines' construction order: deduped reads (arrays then
    scalars-as-registers), then the destination; per access the container
    lookup first, then each subscript left to right (register containers
    skip subscripts entirely). *)
let comp_err (hooks : trace_hooks) resolve (c : L.comp) : string option =
  let reads =
    Util.dedup ~eq:( = )
      (L.comp_array_reads c
      @ List.map
          (fun s -> { L.array = s; indices = [] })
          (L.comp_scalar_reads c))
  in
  let writes =
    match c.L.dest with
    | L.Darray a -> [ a ]
    | L.Dscalar s -> [ { L.array = s; indices = [] } ]
  in
  let rec scan = function
    | [] -> None
    | (a : L.access) :: rest -> (
        match hooks.th_base_of a.L.array with
        | None -> Some ("unknown container " ^ a.L.array)
        | Some _ ->
            if Array.length (hooks.th_dims_of a.L.array) = 0 then scan rest
            else
              let rec iscan = function
                | [] -> scan rest
                | ie :: irest -> (
                    match unbound_err resolve ie with
                    | Some _ as s -> s
                    | None -> iscan irest)
              in
              iscan a.L.indices)
  in
  scan (reads @ writes)

let dim_stride (dims : int array) (d : int) : int =
  let s = ref 1 in
  for k = d + 1 to Array.length dims - 1 do
    s := !s * dims.(k)
  done;
  !s

(** Lower one non-register access to a byte-address generator. The fused
    [Ta_aff] form requires rank-exact, fully-affine, fully-resolved
    subscripts; anything else keeps the compiled engine's row-major fold
    over per-subscript generators. *)
let lower_taccess em sec resolve ~base ~(dims : int array)
    (indices : Expr.t list) : taccess =
  let rank_ok = List.length indices = Array.length dims in
  let affs =
    if rank_ok then
      List.map
        (fun ie ->
          match Affine.of_expr ie with
          | None -> None
          | Some aff ->
              let const = ref aff.Affine.const in
              let terms = ref [] in
              let ok = ref true in
              Util.SMap.iter
                (fun v c ->
                  match resolve v with
                  | Rreg r -> terms := (r, c) :: !terms
                  | Rconst n -> const := !const + (c * n)
                  | Runbound -> ok := false)
                aff.Affine.terms;
              if !ok then Some (!const, !terms) else None)
        indices
    else []
  in
  if rank_ok && List.for_all Option.is_some affs then begin
    let byte_base = ref base in
    let coeffs = Hashtbl.create 4 in
    let order = ref [] in
    List.iteri
      (fun d a ->
        let const, terms = Option.get a in
        let stride = 8 * dim_stride dims d in
        byte_base := !byte_base + (const * stride);
        List.iter
          (fun (r, c) ->
            (if not (Hashtbl.mem coeffs r) then order := r :: !order);
            Hashtbl.replace coeffs r
              ((try Hashtbl.find coeffs r with Not_found -> 0) + (c * stride)))
          terms)
      affs;
    let off = Ivec.len sec.sc_pool in
    Ivec.push sec.sc_pool !byte_base;
    let n = ref 0 in
    List.iter
      (fun r ->
        let c = Hashtbl.find coeffs r in
        if c <> 0 then begin
          Ivec.push sec.sc_pool r;
          Ivec.push sec.sc_pool c;
          incr n
        end)
      (List.rev !order);
    Ta_aff (off, !n)
  end
  else
    Ta_gen
      ( base,
        dims,
        Array.of_list
          (List.map (fun ie -> lower_ix em sec resolve ~checked:false ie) indices)
      )

(** Lower the trace section for one top-level node. *)
let lower_tnode em (hooks : trace_hooks) ~(param_env : int Util.SMap.t)
    (node : L.node) : tnode =
  let sec = section () in
  let loops = gvec () and comps = gvec () and calls = gvec () in
  (* iterator slots: subtree pre-order, deduped by name *)
  let iter_names =
    L.loops_in [ node ]
    |> List.map (fun (l : L.loop) -> l.L.iter)
    |> Util.dedup ~eq:String.equal
  in
  let slot_tbl = Hashtbl.create 8 in
  List.iteri (fun i n -> Hashtbl.replace slot_tbl n i) iter_names;
  let resolve v =
    match Hashtbl.find_opt slot_tbl v with
    | Some s -> Rreg s
    | None -> (
        match Util.SMap.find_opt v param_env with
        | Some n -> Rconst n
        | None -> Runbound)
  in
  let emit w = Ivec.push sec.sc_code w in
  let here () = Ivec.len sec.sc_code in
  let lower_i ie = lower_ix em sec resolve ~checked:false ie in
  let dummy_ix () = gpush sec.sc_ixs (Ix_const 0) in
  let rec walk nodes ~depth ~simd_iter ~unrolled ~atomic_region ~in_parallel
      ~parallel_iter =
    List.iter
      (fun n ->
        match n with
        | L.Ncomp c ->
            let err = comp_err hooks resolve c in
            let sites =
              if err <> None then [||]
              else begin
                let reads =
                  Util.dedup ~eq:( = )
                    (L.comp_array_reads c
                    @ List.map
                        (fun s -> { L.array = s; indices = [] })
                        (L.comp_scalar_reads c))
                in
                let writes =
                  match c.L.dest with
                  | L.Darray a -> [ a ]
                  | L.Dscalar s -> [ { L.array = s; indices = [] } ]
                in
                let one ~write (a : L.access) =
                  let dims = hooks.th_dims_of a.L.array in
                  if Array.length dims = 0 then None (* register *)
                  else begin
                    let base =
                      match hooks.th_base_of a.L.array with
                      | Some b -> b
                      | None -> assert false (* covered by comp_err *)
                    in
                    let strided =
                      match simd_iter with
                      | None -> false
                      | Some it -> (
                          match hooks.th_simd_stride dims a.L.indices it with
                          | Some s -> s <> 0 && s <> 1
                          | None -> true)
                    in
                    Some
                      {
                        ts_acc =
                          lower_taccess em sec resolve ~base ~dims a.L.indices;
                        ts_write = write;
                        ts_strided = strided;
                      }
                  end
                in
                Array.of_list
                  (List.filter_map (one ~write:false) reads
                  @ List.filter_map (one ~write:true) writes)
              end
            in
            (* vectorizable over all accesses; register sites are never
               strided, so restricting to memory sites is equivalent *)
            let vectorizable =
              simd_iter <> None
              && Array.for_all (fun s -> not s.ts_strided) sites
            in
            let contended =
              atomic_region
              &&
              match (parallel_iter, c.L.dest) with
              | Some it, L.Darray a ->
                  List.for_all
                    (fun idx ->
                      match Affine.of_expr idx with
                      | Some aff -> Affine.coeff it aff = 0
                      | None -> false)
                    a.L.indices
              | Some _, L.Dscalar _ -> true
              | None, _ -> true
            in
            let y =
              {
                y_cid = c.L.cid;
                y_err = err;
                y_sites = sites;
                y_flops = Float.max 1.0 (hooks.th_comp_flops c);
                y_class =
                  (if vectorizable then 1 else if unrolled then 2 else 0);
                y_atomic = atomic_region;
                y_contended = contended;
                y_in_simd = simd_iter <> None;
              }
            in
            let id = gpush comps y in
            emit t_comp;
            emit id
        | L.Ncall k ->
            let err =
              List.fold_left
                (fun acc d ->
                  match acc with Some _ -> acc | None -> unbound_err resolve d)
                None k.L.dims
            in
            let z =
              {
                z_err = err;
                z_kernel = intern_name em k.L.kernel;
                z_dims =
                  (if err <> None then
                     Array.of_list (List.map (fun _ -> dummy_ix ()) k.L.dims)
                   else Array.of_list (List.map lower_i k.L.dims));
              }
            in
            let id = gpush calls z in
            emit t_call;
            emit id
        | L.Nloop l ->
            let starts_parallel = l.L.attrs.L.parallel && not in_parallel in
            let err =
              match unbound_err resolve l.L.lo with
              | Some _ as s -> s
              | None -> unbound_err resolve l.L.hi
            in
            let is_leaf = L.loops_in l.L.body = [] in
            let w =
              {
                w_err = err;
                w_slot = Hashtbl.find slot_tbl l.L.iter;
                w_lid = l.L.lid;
                w_step = l.L.step;
                w_lo = (if err <> None then dummy_ix () else lower_i l.L.lo);
                w_hi = (if err <> None then dummy_ix () else lower_i l.L.hi);
                w_spills = (if is_leaf then hooks.th_spills l else 0);
                w_is_leaf = is_leaf;
                w_starts_parallel = starts_parallel;
                w_depth0 = depth = 0;
                w_body = None;
              }
            in
            let id = gpush loops w in
            emit t_loop;
            emit id;
            let l_end = here () in
            emit 0;
            let body_pc = here () in
            walk l.L.body ~depth:(depth + 1)
              ~simd_iter:
                (if l.L.attrs.L.vectorized then Some l.L.iter else simd_iter)
              ~unrolled:(unrolled || l.L.attrs.L.unroll > 1)
              ~atomic_region:
                (atomic_region || (starts_parallel && l.L.attrs.L.atomic))
              ~in_parallel:(in_parallel || starts_parallel)
              ~parallel_iter:
                (if starts_parallel then Some l.L.iter else parallel_iter);
            (* straight-line body: a run of [t_comp] only — record the
               comp ids so the trace replay can batch the whole trip *)
            let body_end = here () in
            let straight = ref true in
            let ids = ref [] in
            let p = ref body_pc in
            while !straight && !p < body_end do
              if Ivec.get sec.sc_code !p = t_comp then begin
                ids := Ivec.get sec.sc_code (!p + 1) :: !ids;
                p := !p + top_len.(t_comp)
              end
              else straight := false
            done;
            if !straight then w.w_body <- Some (Array.of_list (List.rev !ids));
            emit t_loopbk;
            emit id;
            emit body_pc;
            Ivec.set sec.sc_code l_end (here ()))
      nodes
  in
  walk [ node ] ~depth:0 ~simd_iter:None ~unrolled:false ~atomic_region:false
    ~in_parallel:false ~parallel_iter:None;
  emit t_halt;
  {
    t_code = Ivec.to_array sec.sc_code;
    t_nslots = List.length iter_names;
    t_ixs = garr sec.sc_ixs;
    t_loops = garr loops;
    t_comps = garr comps;
    t_calls = garr calls;
    t_pool = Ivec.to_array sec.sc_pool;
    t_xpool = Ivec.to_array sec.sc_xpool;
  }

(* ------------------------------------------------------------------ *)
(* Verifier                                                             *)

(** Structural checks on a lowered artifact: every operand in range,
    operand-pool and register-file bounds respected, jump targets on
    instruction boundaries, xcode streams well-formed (no stack
    underflow, one result). Returns human-readable problems. *)
let verify (a : t) : string list =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let n_names = Array.length a.names in
  let check_ix_table ~what ~(ixs : ix array) ~(pool : int array)
      ~(xpool : int array) ~nregs =
    Array.iteri
      (fun i ix ->
        match ix with
        | Ix_const _ -> ()
        | Ix_reg r ->
            if r < 0 || r >= nregs then
              err "%s: ix %d: register %d out of file [0, %d)" what i r nregs
        | Ix_aff (off, nt) ->
            if nt < 1 || off < 0 || off + 1 + (2 * nt) > Array.length pool then
              err "%s: ix %d: affine slice [%d, %d) outside pool" what i off
                (off + 1 + (2 * nt))
            else
              for k = 0 to nt - 1 do
                let r = pool.(off + 1 + (2 * k)) in
                if r < 0 || r >= nregs then
                  err "%s: ix %d: affine register %d out of file [0, %d)" what
                    i r nregs
              done
        | Ix_code (off, len) ->
            if off < 0 || len < 1 || off + len > Array.length xpool then
              err "%s: ix %d: xcode slice [%d, %d) outside xpool" what i off
                (off + len)
            else begin
              let depth = ref 0 in
              let p = ref off in
              let bad = ref false in
              while (not !bad) && !p < off + len do
                let op = xpool.(!p) in
                if op < 0 || op >= n_xops then begin
                  err "%s: ix %d: bad xcode opcode %d" what i op;
                  bad := true
                end
                else begin
                  (if op = x_push then ()
                   else if op = x_reg then begin
                     let r = xpool.(!p + 1) in
                     if r < 0 || r >= nregs then begin
                       err "%s: ix %d: xcode register %d out of file [0, %d)"
                         what i r nregs;
                       bad := true
                     end
                   end
                   else if op = x_err then begin
                     let nm = xpool.(!p + 1) in
                     if nm < 0 || nm >= n_names then begin
                       err "%s: ix %d: xcode name id %d out of table" what i nm;
                       bad := true
                     end
                   end);
                  if not !bad then begin
                    (if op <= x_err then incr depth
                     else if op = x_neg then begin
                       if !depth < 1 then begin
                         err "%s: ix %d: xcode stack underflow" what i;
                         bad := true
                       end
                     end
                     else if !depth < 2 then begin
                       err "%s: ix %d: xcode stack underflow" what i;
                       bad := true
                     end
                     else decr depth);
                    if !p + xop_len.(op) > off + len then begin
                      err "%s: ix %d: truncated xcode stream" what i;
                      bad := true
                    end
                    else p := !p + xop_len.(op)
                  end
                end
              done;
              if (not !bad) && !depth <> 1 then
                err "%s: ix %d: xcode leaves %d values on the stack" what i
                  !depth
            end)
      ixs
  in
  (* --- semantic stream --- *)
  check_ix_table ~what:"sem" ~ixs:a.ixs ~pool:a.pool ~xpool:a.xpool
    ~nregs:(max 1 a.n_iregs);
  let n = Array.length a.code in
  let boundary = Array.make (n + 1) false in
  let nscalars = Array.length a.scalar_names in
  let ck_ix what pc v =
    if v < 0 || v >= Array.length a.ixs then
      err "sem pc %d: %s ix id %d out of table" pc what v
  in
  let ck_reg what pc v =
    if v < 0 || v >= max 1 a.n_iregs then
      err "sem pc %d: %s register %d out of file [0, %d)" pc what v a.n_iregs
  in
  let pc = ref 0 in
  let bad = ref false in
  while (not !bad) && !pc < n do
    let p = !pc in
    boundary.(p) <- true;
    let op = a.code.(p) in
    if op < 0 || op >= n_ops then begin
      err "sem pc %d: bad opcode %d" p op;
      bad := true
    end
    else if p + op_len.(op) > n then begin
      err "sem pc %d: truncated %s" p op_name.(op);
      bad := true
    end
    else begin
      (if op = op_loop then begin
         ck_reg "iterator" p a.code.(p + 1);
         ck_reg "bound" p a.code.(p + 2);
         ck_ix "lo" p a.code.(p + 3);
         ck_ix "hi" p a.code.(p + 4);
         if a.code.(p + 5) = 0 then err "sem pc %d: zero loop step" p
       end
       else if op = op_loopbk then begin
         ck_reg "iterator" p a.code.(p + 1);
         ck_reg "bound" p a.code.(p + 2);
         if a.code.(p + 3) = 0 then err "sem pc %d: zero loop step" p
       end
       else if op = op_fconst then begin
         let v = a.code.(p + 1) in
         if v < 0 || v >= Array.length a.fpool then
           err "sem pc %d: fpool id %d out of table" p v
       end
       else if op = op_fscalar || op = op_fstore_s then begin
         let v = a.code.(p + 1) in
         if v < 0 || v >= max 1 nscalars then
           err "sem pc %d: scalar slot %d out of file [0, %d)" p v nscalars
       end
       else if op = op_fload || op = op_fstore then begin
         let v = a.code.(p + 1) in
         if v < 0 || v >= Array.length a.sites then
           err "sem pc %d: site id %d out of table" p v
         else begin
           let s = a.sites.(v) in
           if s.s_array < 0 || s.s_array >= n_names then
             err "sem pc %d: site %d: name id %d out of table" p v s.s_array;
           Array.iter (ck_ix "subscript" p) s.s_ixs
         end
       end
       else if op = op_fint then ck_ix "operand" p a.code.(p + 1)
       else if op = op_fintr1 then begin
         let v = a.code.(p + 1) in
         if v < 0 || v >= Array.length intr1_names then
           err "sem pc %d: unary intrinsic kind %d out of range" p v
       end
       else if op = op_fintr2 then begin
         let v = a.code.(p + 1) in
         if v < 0 || v >= Array.length intr2_names then
           err "sem pc %d: binary intrinsic kind %d out of range" p v
       end
       else if op = op_fbadcall then begin
         let v = a.code.(p + 1) in
         if v < 0 || v >= n_names then
           err "sem pc %d: name id %d out of table" p v;
         if a.code.(p + 2) < 0 then err "sem pc %d: negative arity" p
       end
       else if op = op_fcmp then begin
         let v = a.code.(p + 1) in
         if v < 0 || v >= Array.length cmp_names then
           err "sem pc %d: comparison kind %d out of range" p v
       end
       else if op = op_callk then begin
         let v = a.code.(p + 1) in
         if v < 0 || v >= Array.length a.calls then
           err "sem pc %d: call id %d out of table" p v
         else begin
           let ck = a.calls.(v) in
           if ck.ck_kernel < 0 || ck.ck_kernel >= n_names then
             err "sem pc %d: call %d: kernel name id out of table" p v;
           Array.iter
             (fun nm ->
               if nm < 0 || nm >= n_names then
                 err "sem pc %d: call %d: array name id out of table" p v)
             ck.ck_args;
           Array.iter (ck_ix "dim" p) ck.ck_dims
         end
       end
       else if op = op_fuse then begin
         let v = a.code.(p + 1) in
         if v < 0 || v >= Array.length a.fuses then
           err "sem pc %d: fuse id %d out of table" p v
         else begin
           let fu = a.fuses.(v) in
           ck_reg "iterator" p fu.fu_ireg;
           ck_reg "bound" p fu.fu_hireg;
           ck_ix "lo" p fu.fu_lo;
           ck_ix "hi" p fu.fu_hi;
           if fu.fu_step = 0 then err "sem pc %d: zero fused step" p;
           if fu.fu_body_pc <> p + 7 then
             err "sem pc %d: fuse body pc %d is not pc+7" p fu.fu_body_pc;
           Array.iter
             (fun (o, operand) ->
               if not (fusable o) then
                 err "sem pc %d: non-fusable opcode %d in fuse %d" p o v
               else if op_len.(o) = 2 && operand < 0 then
                 err "sem pc %d: fuse %d: missing operand for %s" p v
                   op_name.(o))
             fu.fu_ops
         end
       end);
      pc := p + op_len.(op)
    end
  done;
  if not !bad then begin
    (* jump targets on instruction boundaries *)
    let ck_target what p v =
      if v < 0 || v > n || not (if v = n then false else boundary.(v)) then
        err "sem pc %d: %s target %d is not an instruction boundary" p what v
    in
    let pc = ref 0 in
    while !pc < n do
      let p = !pc in
      let op = a.code.(p) in
      (if op = op_loop then ck_target "loop end" p a.code.(p + 6)
       else if op = op_loopbk then ck_target "back-edge" p a.code.(p + 4)
       else if op = op_jf || op = op_jt || op = op_jmp then
         ck_target "jump" p a.code.(p + 1)
       else if op = op_fuse then begin
         let fu = a.fuses.(a.code.(p + 1)) in
         ck_target "fuse body" p fu.fu_body_pc;
         ck_target "fuse end" p fu.fu_end_pc
       end);
      pc := p + op_len.(op)
    done;
    Array.iter
      (fun ck ->
        if ck.ck_alpha >= 0 && (ck.ck_alpha >= n || not boundary.(ck.ck_alpha))
        then err "call: alpha fragment pc %d is not an instruction boundary"
            ck.ck_alpha)
      a.calls
  end;
  (* --- trace sections --- *)
  Array.iteri
    (fun ti tn ->
      let what = Printf.sprintf "tnode %d" ti in
      check_ix_table ~what ~ixs:tn.t_ixs ~pool:tn.t_pool ~xpool:tn.t_xpool
        ~nregs:(max 1 tn.t_nslots);
      let ck_tix pc v =
        if v < 0 || v >= Array.length tn.t_ixs then
          err "%s pc %d: ix id %d out of table" what pc v
      in
      let m = Array.length tn.t_code in
      let tbound = Array.make (m + 1) false in
      let pc = ref 0 in
      let bad = ref false in
      while (not !bad) && !pc < m do
        let p = !pc in
        tbound.(p) <- true;
        let op = tn.t_code.(p) in
        if op < 0 || op >= n_tops then begin
          err "%s pc %d: bad opcode %d" what p op;
          bad := true
        end
        else if p + top_len.(op) > m then begin
          err "%s pc %d: truncated %s" what p top_name.(op);
          bad := true
        end
        else begin
          (if op = t_loop || op = t_loopbk then begin
             let v = tn.t_code.(p + 1) in
             if v < 0 || v >= Array.length tn.t_loops then
               err "%s pc %d: loop id %d out of table" what p v
             else begin
               let w = tn.t_loops.(v) in
               if w.w_slot < 0 || w.w_slot >= max 1 tn.t_nslots then
                 err "%s pc %d: loop slot %d out of file" what p w.w_slot;
               if w.w_step = 0 then err "%s pc %d: zero loop step" what p;
               ck_tix p w.w_lo;
               ck_tix p w.w_hi;
               match w.w_body with
               | None -> ()
               | Some ids ->
                   Array.iter
                     (fun id ->
                       if id < 0 || id >= Array.length tn.t_comps then
                         err "%s pc %d: body comp id %d out of table" what p
                           id)
                     ids
             end
           end
           else if op = t_comp then begin
             let v = tn.t_code.(p + 1) in
             if v < 0 || v >= Array.length tn.t_comps then
               err "%s pc %d: comp id %d out of table" what p v
             else
               Array.iter
                 (fun s ->
                   match s.ts_acc with
                   | Ta_aff (off, nt) ->
                       if
                         nt < 0 || off < 0
                         || off + 1 + (2 * nt) > Array.length tn.t_pool
                       then
                         err "%s pc %d: address slice [%d, %d) outside pool"
                           what p off
                           (off + 1 + (2 * nt))
                       else
                         for k = 0 to nt - 1 do
                           let r = tn.t_pool.(off + 1 + (2 * k)) in
                           if r < 0 || r >= max 1 tn.t_nslots then
                             err "%s pc %d: address slot %d out of file" what
                               p r
                         done
                   | Ta_gen (_, _, ixs) -> Array.iter (ck_tix p) ixs)
                 tn.t_comps.(v).y_sites
           end
           else if op = t_call then begin
             let v = tn.t_code.(p + 1) in
             if v < 0 || v >= Array.length tn.t_calls then
               err "%s pc %d: call id %d out of table" what p v
             else begin
               let z = tn.t_calls.(v) in
               if z.z_kernel < 0 || z.z_kernel >= n_names then
                 err "%s pc %d: kernel name id out of table" what p;
               Array.iter (ck_tix p) z.z_dims
             end
           end);
          pc := p + top_len.(op)
        end
      done;
      if not !bad then begin
        let ck_target p v =
          if v < 0 || v >= m || not tbound.(v) then
            err "%s pc %d: target %d is not an instruction boundary" what p v
        in
        let pc = ref 0 in
        while !pc < m do
          let p = !pc in
          let op = tn.t_code.(p) in
          if op = t_loop || op = t_loopbk then ck_target p tn.t_code.(p + 2);
          pc := p + top_len.(op)
        done
      end)
    a.tnodes;
  List.rev !errs

(* ------------------------------------------------------------------ *)
(* Disassembler                                                         *)

let pp_ix ~(pool : int array) ppf (ix : ix) =
  match ix with
  | Ix_const n -> Fmt.pf ppf "%d" n
  | Ix_reg r -> Fmt.pf ppf "r%d" r
  | Ix_aff (off, nt) ->
      Fmt.pf ppf "%d" pool.(off);
      for k = 0 to nt - 1 do
        Fmt.pf ppf "+%d*r%d" pool.(off + 2 + (2 * k)) pool.(off + 1 + (2 * k))
      done
  | Ix_code (off, len) -> Fmt.pf ppf "x[%d..%d]" off (off + len - 1)

let pp_sem_operand (a : t) ppf ~pc ~op =
  let ix i = Fmt.str "%a" (pp_ix ~pool:a.pool) a.ixs.(i) in
  if op = op_loop then
    Fmt.pf ppf " r%d r%d lo=%s hi=%s step=%d end=%d" a.code.(pc + 1)
      a.code.(pc + 2)
      (ix a.code.(pc + 3))
      (ix a.code.(pc + 4))
      a.code.(pc + 5)
      a.code.(pc + 6)
  else if op = op_loopbk then
    Fmt.pf ppf " r%d r%d step=%d body=%d" a.code.(pc + 1) a.code.(pc + 2)
      a.code.(pc + 3)
      a.code.(pc + 4)
  else if op = op_fconst then
    Fmt.pf ppf " %h" a.fpool.(a.code.(pc + 1))
  else if op = op_fscalar || op = op_fstore_s then
    Fmt.pf ppf " %s" a.scalar_names.(a.code.(pc + 1))
  else if op = op_fload || op = op_fstore then begin
    let s = a.sites.(a.code.(pc + 1)) in
    Fmt.pf ppf " %s[%s]" a.names.(s.s_array)
      (String.concat ", " (Array.to_list (Array.map ix s.s_ixs)))
  end
  else if op = op_fint then Fmt.pf ppf " %s" (ix a.code.(pc + 1))
  else if op = op_fintr1 then
    Fmt.pf ppf " %s" intr1_names.(a.code.(pc + 1))
  else if op = op_fintr2 then
    Fmt.pf ppf " %s" intr2_names.(a.code.(pc + 1))
  else if op = op_fbadcall then
    Fmt.pf ppf " %s/%d" a.names.(a.code.(pc + 1)) a.code.(pc + 2)
  else if op = op_fcmp then Fmt.pf ppf " %s" cmp_names.(a.code.(pc + 1))
  else if op = op_jf || op = op_jt || op = op_jmp then
    Fmt.pf ppf " %d" a.code.(pc + 1)
  else if op = op_callk then begin
    let ck = a.calls.(a.code.(pc + 1)) in
    Fmt.pf ppf " %s(%s; dims=%s%s)" a.names.(ck.ck_kernel)
      (String.concat ", "
         (Array.to_list (Array.map (fun n -> a.names.(n)) ck.ck_args)))
      (String.concat ", " (Array.to_list (Array.map ix ck.ck_dims)))
      (if ck.ck_alpha >= 0 then Fmt.str "; alpha@%d" ck.ck_alpha else "")
  end
  else if op = op_fuse then begin
    let fu = a.fuses.(a.code.(pc + 1)) in
    Fmt.pf ppf " r%d r%d lo=%s hi=%s step=%d body=%d end=%d {"
      fu.fu_ireg fu.fu_hireg (ix fu.fu_lo) (ix fu.fu_hi) fu.fu_step
      fu.fu_body_pc fu.fu_end_pc;
    Array.iteri
      (fun i (o, operand) ->
        if i > 0 then Fmt.pf ppf "; ";
        Fmt.pf ppf "%s" (String.lowercase_ascii op_name.(o));
        if op_len.(o) = 2 then begin
          if o = op_fload || o = op_fstore then begin
            let s = a.sites.(operand) in
            Fmt.pf ppf " %s[%s]" a.names.(s.s_array)
              (String.concat ", " (Array.to_list (Array.map ix s.s_ixs)))
          end
          else if o = op_fconst then Fmt.pf ppf " %h" a.fpool.(operand)
          else if o = op_fscalar then
            Fmt.pf ppf " %s" a.scalar_names.(operand)
          else if o = op_fintr1 then Fmt.pf ppf " %s" intr1_names.(operand)
          else if o = op_fintr2 then Fmt.pf ppf " %s" intr2_names.(operand)
        end)
      fu.fu_ops;
    Fmt.pf ppf "}"
  end

(** Disassemble the semantic stream (and a summary of the trace sections)
    for [daisyc schedule --dump-bc] and the golden tests. *)
let pp ppf (a : t) =
  Fmt.pf ppf "bytecode %s: %d words, %d iregs, %d scalars, stack %d@."
    a.bc_pname (Array.length a.code) a.n_iregs
    (Array.length a.scalar_names) a.max_stack;
  let n = Array.length a.code in
  let pc = ref 0 in
  while !pc < n do
    let p = !pc in
    let op = a.code.(p) in
    Fmt.pf ppf "%4d: %-8s" p op_name.(op);
    pp_sem_operand a ppf ~pc:p ~op;
    Fmt.pf ppf "@.";
    pc := p + op_len.(op)
  done;
  if Array.length a.tnodes > 0 then
    Fmt.pf ppf "trace sections: %d (%s)@." (Array.length a.tnodes)
      (String.concat ", "
         (Array.to_list
            (Array.map
               (fun tn ->
                 Printf.sprintf "%d words/%d slots" (Array.length tn.t_code)
                   tn.t_nslots)
               a.tnodes)))

let to_string (a : t) : string = Fmt.str "%a" pp a

(* ------------------------------------------------------------------ *)
(* Entry point                                                          *)

(** [lower ?hooks ~sizes p] — lower [p] once. [sizes] resolves size
    parameters (the semantic engine passes the state's sizes, the trace
    engine its parameter environment). When [hooks] is given, a trace
    section is lowered per top-level node; otherwise [tnodes] is empty. *)
let lower ?(hooks : trace_hooks option) ~(sizes : int Util.SMap.t)
    (p : L.program) : t =
  Fault.inject "bc_compile";
  (if !L.validation_enabled then
     match L.validate p with
     | [] -> ()
     | errs ->
         Diag.errorf "bytecode lowering: invalid program %s: %s" p.L.pname
           (String.concat "; " errs));
  let em = emitter () in
  let sec = section () in
  let scalar_tbl = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if not (Hashtbl.mem scalar_tbl n) then
        Hashtbl.add scalar_tbl n (Hashtbl.length scalar_tbl))
    (L.program_scalar_names p);
  let nscalars = Hashtbl.length scalar_tbl in
  let scalar_names = Array.make nscalars "" in
  Hashtbl.iter (fun n i -> scalar_names.(i) <- n) scalar_tbl;
  let ss =
    {
      em;
      sec;
      sites = gvec ();
      calls = gvec ();
      fuses = gvec ();
      scalar_tbl;
      sizes;
      slots = [];
      nregs = 0;
      depth = 0;
      maxdepth = 0;
      pending = [];
    }
  in
  List.iter (emit_node ss) p.L.body;
  emit ss op_halt;
  (* alpha fragments: first scalar argument of each library call, lowered
     with the call site's lexical scope and executed on demand *)
  List.iter
    (fun (ck, slots, a) ->
      ck.ck_alpha <- here ss;
      ss.slots <- slots;
      let d = ss.depth in
      ss.depth <- 0;
      emit_vexpr ss a;
      emit ss op_ret;
      ss.depth <- d)
    (List.rev ss.pending);
  ss.slots <- [];
  let code = Ivec.to_array sec.sc_code in
  peephole ss.fuses code;
  let tnodes =
    match hooks with
    | None -> [||]
    | Some hooks ->
        Array.of_list
          (List.map (lower_tnode em hooks ~param_env:sizes) p.L.body)
  in
  let art =
    {
      bc_pname = p.L.pname;
      code;
      pool = Ivec.to_array sec.sc_pool;
      xpool = Ivec.to_array sec.sc_xpool;
      fpool = garr em.fpool;
      names = garr em.names;
      ixs = garr sec.sc_ixs;
      sites = garr ss.sites;
      calls = garr ss.calls;
      fuses = garr ss.fuses;
      n_iregs = ss.nregs;
      scalar_names;
      max_stack = ss.maxdepth;
      max_xstack = em.max_xstack;
      tnodes;
    }
  in
  (if !L.validation_enabled then
     match verify art with
     | [] -> ()
     | errs ->
         Diag.errorf "bytecode verifier: %s: %s" p.L.pname
           (String.concat "; " errs));
  art
