(** Sub-linear nearest-neighbour indexes over performance embeddings.

    [Embedding.nearest_by] is a linear scan — fine at benchmark-suite
    size, disqualifying at the million-entry recipe databases the serving
    roadmap targets. This module provides two index structures with one
    non-negotiable contract: a query returns {e exactly} the same top-k
    (distances and order) as the linear scan, for every database and
    every query.

    - a bucket {b k-d tree} (the low-dimensional exact workhorse):
      leaves hold up to {!page_cap} entries, internal nodes carry the
      bounding box of their subtree, and queries run best-bin-first — a
      min-heap of (lower-bound, subtree) visited in bound order, bounded
      by pruning against the current k-th best distance;
    - {b LSH buckets} (selected automatically past a dimensionality or
      entry-count threshold, see {!auto_algo}): entries are quantized by
      deterministic unit projections into buckets, and a query scans
      buckets in increasing order of a per-bucket distance lower bound
      (a projection is 1-Lipschitz, so the projection-space gap to a
      bucket's cell lower-bounds the true distance), stopping once the
      bound exceeds the k-th best.

    Both searches prune with {e strict} comparisons against the k-th
    best distance and rank candidates with {!Embedding.compare_key}
    extended by the entry index, so ties resolve exactly as the scan's
    stable ordering does.

    Indexes persist in a versioned [DAISYANN 1] file written atomically
    next to the DAISYDB file, with FNV-1a-64 checksums per section and
    per page, a content fingerprint for staleness detection, and a paged
    loader: {!load} reads only the header, tree and page table; leaf
    pages are fetched (and checksum-verified) on demand, so a query
    never materialises the full database. Corruption discovered at any
    point raises {!Corrupt}, which callers (see [Database.query]) turn
    into a one-warning fallback to the linear scan. *)

open Daisy_support

exception Corrupt of string

let () =
  Printexc.register_printer (function
    | Corrupt m -> Some (Printf.sprintf "Daisy_embedding.Ann.Corrupt(%S)" m)
    | _ -> None)

let magic = "DAISYANN"
let version = 1

(** Leaf capacity of the k-d tree and target LSH bucket occupancy. *)
let page_cap = 64

(** Number of LSH projections. *)
let lsh_projs = 8

type algo = Kd | Lsh

let string_of_algo = function Kd -> "kd" | Lsh -> "lsh"

let algo_of_string = function
  | "kd" -> Some Kd
  | "lsh" -> Some Lsh
  | _ -> None

(** [auto_algo ~n ~dim] — the k-d tree is exact and fast while the
    dimensionality stays low and the tree fits comfortably; past either
    threshold the bucketed path wins. *)
let auto_algo ~n ~dim = if dim > 24 || n > 250_000 then Lsh else Kd

type entry = { eidx : int; vec : float array }

type node =
  | Leaf of { lo : float array; hi : float array; page : int }
  | Split of { lo : float array; hi : float array; left : node; right : node }

type lsh = {
  projs : float array array;  (** [lsh_projs] unit directions *)
  mins : float array;  (** per-projection minimum over all entries *)
  width : float;  (** quantization cell width (> 0) *)
  codes : int array array;  (** bucket code of each page *)
}

type structure =
  | Empty
  | Kdtree of node
  | Buckets of lsh

type pages =
  | Mem of entry array array
  | Paged of {
      path : string;
      offsets : (int * int) array;  (** (byte offset, entry count) per page *)
      cache : (int, entry array) Hashtbl.t;
      lock : Mutex.t;
    }

type t = {
  algo : algo;
  n : int;
  dim : int;
  fingerprint : string;
  structure : structure;
  npages : int;
  pages : pages;
}

let n t = t.n
let dim t = t.dim
let fingerprint t = t.fingerprint
let algo t = t.algo
let pages t = t.npages

let describe t =
  Printf.sprintf "%s, %d entries, %d pages" (string_of_algo t.algo) t.n
    t.npages

(* ------------------------------------------------------------------ *)
(* Shared small pieces *)

let dot (a : float array) (b : float array) : float =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let bbox (es : entry array) ~dim : float array * float array =
  let lo = Array.make dim infinity and hi = Array.make dim neg_infinity in
  Array.iter
    (fun e ->
      for i = 0 to dim - 1 do
        if e.vec.(i) < lo.(i) then lo.(i) <- e.vec.(i);
        if e.vec.(i) > hi.(i) then hi.(i) <- e.vec.(i)
      done)
    es;
  (lo, hi)

(** Distance from [q] to the axis-aligned box [lo, hi] — a lower bound on
    the distance from [q] to any point inside. *)
let box_lb (q : float array) (lo : float array) (hi : float array) : float =
  let acc = ref 0.0 in
  for i = 0 to Array.length lo - 1 do
    let d =
      if q.(i) < lo.(i) then lo.(i) -. q.(i)
      else if q.(i) > hi.(i) then q.(i) -. hi.(i)
      else 0.0
    in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

(* ------------------------------------------------------------------ *)
(* The bounded top-k accumulator: exactly [Embedding.nearest_by]'s
   ordering — (distance, embedding lexicographic) via
   [Embedding.compare_key], with the entry index as the final tie-break
   (the scan's arrival order and our entry index coincide). *)

type topk = {
  k : int;
  mutable xs : (float * entry) list;  (* ascending by ranking key *)
  mutable size : int;
  mutable worst : (float * float array * int) option;
      (* ranking key of the k-th element once full *)
}

let topk_create k = { k; xs = []; size = 0; worst = None }

let key_lt (d1, v1, i1) (d2, v2, i2) =
  let c = Embedding.compare_key (d1, v1) (d2, v2) in
  if c <> 0 then c < 0 else i1 < i2

(** Distance the search bound must stay within to still matter: entries
    strictly farther than this cannot enter the top-k (equal distance
    still can, through the lexicographic tie-break — hence all pruning
    below compares strictly). *)
let topk_bound tk =
  match tk.worst with Some (d, _, _) -> d | None -> infinity

let topk_full tk = tk.size >= tk.k

let topk_offer tk (q : float array) (e : entry) : unit =
  let d = Embedding.distance e.vec q in
  let key = (d, e.vec, e.eidx) in
  let admit = match tk.worst with None -> true | Some w -> key_lt key w in
  if admit then begin
    let rec ins l =
      match l with
      | [] -> [ (d, e) ]
      | ((d', e') as hd) :: tl ->
          if key_lt key (d', e'.vec, e'.eidx) then (d, e) :: l
          else hd :: ins tl
    in
    tk.xs <- ins tk.xs;
    if tk.size < tk.k then tk.size <- tk.size + 1
    else tk.xs <- Util.take tk.k tk.xs;
    if tk.size = tk.k then begin
      match List.nth_opt tk.xs (tk.k - 1) with
      | Some (d', e') -> tk.worst <- Some (d', e'.vec, e'.eidx)
      | None -> ()
    end
  end

let topk_result tk = List.map (fun (d, e) -> (d, e.eidx)) tk.xs

(* ------------------------------------------------------------------ *)
(* Building *)

type build_pages = { mutable rev : entry array list; mutable count : int }

let add_page bp es =
  bp.rev <- es :: bp.rev;
  bp.count <- bp.count + 1;
  bp.count - 1

(** Bucket k-d tree: split the widest dimension at the median until a
    subtree fits in a page. Duplicate-heavy inputs that cannot be split
    (zero spread on every dimension) become one oversized page. *)
let build_kd bp ~dim (es : entry array) : node =
  let rec go (es : entry array) : node =
    let lo, hi = bbox es ~dim in
    if Array.length es <= page_cap then Leaf { lo; hi; page = add_page bp es }
    else begin
      (* widest dimension *)
      let d = ref 0 and spread = ref neg_infinity in
      for i = 0 to dim - 1 do
        let s = hi.(i) -. lo.(i) in
        if s > !spread then begin
          spread := s;
          d := i
        end
      done;
      if !spread <= 0.0 then
        (* every entry identical: no split exists *)
        Leaf { lo; hi; page = add_page bp es }
      else begin
        let d = !d in
        let es = Array.copy es in
        Array.sort
          (fun a b ->
            let c = Float.compare a.vec.(d) b.vec.(d) in
            if c <> 0 then c else compare a.eidx b.eidx)
          es;
        let len = Array.length es in
        let m = ref (len / 2) in
        (* keep both sides non-empty under duplicates: advance the split
           past the run of minimum values if the median sits inside it *)
        while es.(!m).vec.(d) = es.(0).vec.(d) do
          incr m
        done;
        let left = Array.sub es 0 !m and right = Array.sub es !m (len - !m) in
        Split { lo; hi; left = go left; right = go right }
      end
    end
  in
  go es

(** Deterministic unit projection directions: derived from a named
    stream, so build and every rebuild agree bit-for-bit. *)
let make_projs ~dim : float array array =
  Array.init lsh_projs (fun i ->
      let rng = Rng.of_string (Printf.sprintf "daisyann-proj-%d-%d" dim i) in
      let v = Array.init dim (fun _ -> Rng.float rng -. 0.5) in
      let norm = sqrt (dot v v) in
      if norm > 0.0 then Array.map (fun x -> x /. norm) v
      else Array.init dim (fun j -> if j = 0 then 1.0 else 0.0))

let build_lsh bp ~dim (es : entry array) : lsh =
  let projs = make_projs ~dim in
  let n = Array.length es in
  let vals =
    Array.map (fun u -> Array.map (fun e -> dot u e.vec) es) projs
  in
  let mins = Array.map (fun col -> Array.fold_left min infinity col) vals in
  let maxs =
    Array.map (fun col -> Array.fold_left max neg_infinity col) vals
  in
  (* target ~n/page_cap occupied buckets: b cells per projection *)
  let b =
    max 1
      (int_of_float
         (ceil
            (Float.pow
               (float_of_int (max 1 n) /. float_of_int page_cap)
               (1.0 /. float_of_int lsh_projs))))
  in
  let range =
    Array.fold_left max 0.0 (Array.map2 (fun a b -> b -. a) mins maxs)
  in
  let width = if range > 0.0 then range /. float_of_int b else 1.0 in
  let code_of i =
    Array.init lsh_projs (fun j ->
        int_of_float (floor ((vals.(j).(i) -. mins.(j)) /. width)))
  in
  let tbl : (int array, entry list) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri
    (fun i e ->
      let c = code_of i in
      Hashtbl.replace tbl c (e :: (Option.value ~default:[] (Hashtbl.find_opt tbl c))))
    es;
  let buckets =
    Hashtbl.fold (fun c es acc -> (c, es) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let codes =
    List.map
      (fun (c, es) ->
        (* entries in index order within the bucket *)
        let arr = Array.of_list es in
        Array.sort (fun a b -> compare a.eidx b.eidx) arr;
        ignore (add_page bp arr);
        c)
      buckets
    |> Array.of_list
  in
  { projs; mins; width; codes }

let build ?algo ~fingerprint ~dim (vectors : float array array) : t =
  if dim <= 0 then invalid_arg "Ann.build: dim must be positive";
  Array.iteri
    (fun i v ->
      if Array.length v <> dim then
        invalid_arg
          (Printf.sprintf "Ann.build: vector %d has %d coordinates, not %d" i
             (Array.length v) dim))
    vectors;
  let n = Array.length vectors in
  let algo = match algo with Some a -> a | None -> auto_algo ~n ~dim in
  let es = Array.mapi (fun eidx vec -> { eidx; vec }) vectors in
  let bp = { rev = []; count = 0 } in
  let structure =
    if n = 0 then Empty
    else
      match algo with
      | Kd -> Kdtree (build_kd bp ~dim es)
      | Lsh -> Buckets (build_lsh bp ~dim es)
  in
  {
    algo;
    n;
    dim;
    fingerprint;
    structure;
    npages = bp.count;
    pages = Mem (Array.of_list (List.rev bp.rev));
  }

(* ------------------------------------------------------------------ *)
(* Page access *)

let parse_entry_line ~dim (line : string) : entry option =
  match String.split_on_char ' ' line with
  | "e" :: idx :: floats when List.length floats = dim -> (
      match int_of_string_opt idx with
      | None -> None
      | Some eidx ->
          let vals = List.filter_map float_of_string_opt floats in
          if List.length vals <> dim then None
          else Some { eidx; vec = Array.of_list vals })
  | _ -> None

let entry_line (e : entry) : string =
  Printf.sprintf "e %d %s" e.eidx
    (String.concat " "
       (List.map (Printf.sprintf "%h") (Array.to_list e.vec)))

(** Fetch one page, loading (and checksum-verifying) it on demand for
    file-backed indexes. Thread-safe: parallel queries share the cache
    under a mutex. Raises {!Corrupt} on any mismatch. *)
let fetch_page t (page : int) : entry array =
  match t.pages with
  | Mem arr ->
      if page < 0 || page >= Array.length arr then
        raise (Corrupt (Printf.sprintf "page %d out of range" page))
      else arr.(page)
  | Paged { path; offsets; cache; lock } ->
      Mutex.lock lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock lock)
        (fun () ->
          match Hashtbl.find_opt cache page with
          | Some es -> es
          | None ->
              if page < 0 || page >= Array.length offsets then
                raise (Corrupt (Printf.sprintf "page %d out of range" page));
              let offset, count = offsets.(page) in
              let ic =
                try open_in_bin path
                with Sys_error m -> raise (Corrupt m)
              in
              Fun.protect
                ~finally:(fun () -> close_in_noerr ic)
                (fun () ->
                  let header, body =
                    try
                      seek_in ic offset;
                      let header = input_line ic in
                      (header, List.init count (fun _ -> input_line ic))
                    with End_of_file ->
                      raise
                        (Corrupt
                           (Printf.sprintf "page %d: truncated file" page))
                  in
                  let ck =
                    match String.split_on_char ' ' header with
                    | [ "page"; id; ck; cnt ]
                      when int_of_string_opt id = Some page
                           && int_of_string_opt cnt = Some count ->
                        ck
                    | _ ->
                        raise
                          (Corrupt
                             (Printf.sprintf "page %d: bad page header %S"
                                page header))
                  in
                  if
                    not
                      (String.equal ck
                         (Util.fnv1a64 (String.concat "\n" body)))
                  then
                    raise
                      (Corrupt
                         (Printf.sprintf "page %d: checksum mismatch" page));
                  let es =
                    List.map
                      (fun l ->
                        match parse_entry_line ~dim:t.dim l with
                        | Some e -> e
                        | None ->
                            raise
                              (Corrupt
                                 (Printf.sprintf
                                    "page %d: malformed entry line %S" page l)))
                      body
                    |> Array.of_list
                  in
                  Hashtbl.add cache page es;
                  es))

(* ------------------------------------------------------------------ *)
(* Querying *)

(* A monomorphic binary min-heap of (lower bound, subtree), the
   best-bin-first frontier. Ordering on the float only: tie order among
   equal bounds does not affect results (pruning is strict and the top-k
   comparator is total), and the heap is deterministic regardless. *)
module Frontier = struct
  type h = { mutable a : (float * node) array; mutable len : int }

  let create () = { a = [||]; len = 0 }

  let push h p x =
    if h.len = Array.length h.a then begin
      let grown =
        Array.make (max 16 (2 * h.len)) (p, x)
      in
      Array.blit h.a 0 grown 0 h.len;
      h.a <- grown
    end;
    h.a.(h.len) <- (p, x);
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      fst h.a.(!i) < fst h.a.(parent)
      &&
      (let tmp = h.a.(!i) in
       h.a.(!i) <- h.a.(parent);
       h.a.(parent) <- tmp;
       i := parent;
       true)
    do
      ()
    done

  let pop h : (float * node) option =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.a.(0) <- h.a.(h.len);
        let i = ref 0 in
        let continue = ref true in
        while !continue do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < h.len && fst h.a.(l) < fst h.a.(!smallest) then smallest := l;
          if r < h.len && fst h.a.(r) < fst h.a.(!smallest) then smallest := r;
          if !smallest = !i then continue := false
          else begin
            let tmp = h.a.(!i) in
            h.a.(!i) <- h.a.(!smallest);
            h.a.(!smallest) <- tmp;
            i := !smallest
          end
        done
      end;
      Some top
    end
end

let node_box = function
  | Leaf { lo; hi; _ } -> (lo, hi)
  | Split { lo; hi; _ } -> (lo, hi)

let query_kd t root tk (q : float array) : unit =
  let frontier = Frontier.create () in
  let lo, hi = node_box root in
  Frontier.push frontier (box_lb q lo hi) root;
  let stop = ref false in
  while not !stop do
    match Frontier.pop frontier with
    | None -> stop := true
    | Some (lb, node) ->
        (* frontier bounds pop in non-decreasing order (a child's box is
           inside its parent's), so the first bound strictly past the
           k-th best distance ends the search — bounded best-bin-first *)
        if topk_full tk && lb > topk_bound tk then stop := true
        else (
          match node with
          | Leaf { page; _ } -> Array.iter (topk_offer tk q) (fetch_page t page)
          | Split { left; right; _ } ->
              let llo, lhi = node_box left and rlo, rhi = node_box right in
              Frontier.push frontier (box_lb q llo lhi) left;
              Frontier.push frontier (box_lb q rlo rhi) right)
  done

let query_lsh t (l : lsh) tk (q : float array) : unit =
  let qp = Array.map (fun u -> dot u q) l.projs in
  (* lower bound on the true distance from q to anything in the page's
     bucket: each projection is 1-Lipschitz, so the largest
     projection-space gap to the bucket's cell bounds from below *)
  let page_lb (code : int array) : float =
    let m = ref 0.0 in
    for j = 0 to lsh_projs - 1 do
      let ilo = l.mins.(j) +. (float_of_int code.(j) *. l.width) in
      let ihi = ilo +. l.width in
      let d =
        if qp.(j) < ilo then ilo -. qp.(j)
        else if qp.(j) > ihi then qp.(j) -. ihi
        else 0.0
      in
      if d > !m then m := d
    done;
    !m
  in
  let order = Array.mapi (fun i code -> (page_lb code, i)) l.codes in
  Array.sort
    (fun (a, i) (b, j) ->
      if a < b then -1 else if a > b then 1 else compare i j)
    order;
  (try
     Array.iter
       (fun (lb, page) ->
         if topk_full tk && lb > topk_bound tk then raise Exit
         else Array.iter (topk_offer tk q) (fetch_page t page))
       order
   with Exit -> ())

(** [query t ~k q] — the [k] entries nearest to [q]: exactly
    [Embedding.nearest_by]'s result (distances and order) over the
    indexed vectors, as [(distance, entry index)] pairs. Raises
    {!Corrupt} if a file-backed page fails its checksum (or the armed
    ["ann_query"] fault point fires). *)
let query t ~k (q : float array) : (float * int) list =
  if Fault.fires "ann_query" then
    raise (Corrupt "injected fault at ann_query");
  if Array.length q <> t.dim then
    invalid_arg
      (Printf.sprintf "Ann.query: query has %d coordinates, index has %d"
         (Array.length q) t.dim);
  if k <= 0 then []
  else
    let tk = topk_create k in
    (match t.structure with
    | Empty -> ()
    | Kdtree root -> query_kd t root tk q
    | Buckets l -> query_lsh t l tk q);
    topk_result tk

(* ------------------------------------------------------------------ *)
(* Persistence: DAISYANN 1.

   Line-based, like DAISYDB/DAISYCKPT, plus a seekable page layout:

   {v
   DAISYANN 1
   algo kd|lsh
   n <entries>
   dim <coordinates>
   fingerprint <16-hex FNV-1a-64 of the database contents>
   section params <16-hex checksum> <nlines>     (LSH only; empty for kd)
   ...
   section tree <16-hex checksum> <nlines>       (kd splits/leaves, pre-order)
   ...
   page <id> <16-hex checksum> <count>           (one block per page)
   e <entry index> <dim %h floats>
   ...
   section table <16-hex checksum> <npages>
   page <id> <byte offset> <count>
   trailer <table byte offset, %012d>
   v}

   The loader reads the header and tree, seeks to the trailer (fixed
   21 bytes) for the page table's offset, and never touches page blocks
   — those are fetched and verified on demand by {!fetch_page}. *)

let floats_str (v : float array) =
  String.concat " " (List.map (Printf.sprintf "%h") (Array.to_list v))

let floats_of_str ~expect (s : string) : float array option =
  let toks = String.split_on_char ' ' s |> List.filter (fun t -> t <> "") in
  let vals = List.filter_map float_of_string_opt toks in
  if List.length toks <> expect || List.length vals <> expect then None
  else Some (Array.of_list vals)

let tree_lines (root : node) : string list =
  let rec go acc = function
    | Leaf { lo; hi; page } ->
        Printf.sprintf "leaf %d %s %s" page (floats_str lo) (floats_str hi)
        :: acc
    | Split { lo; hi; left; right } ->
        let acc = go acc right in
        let acc = go acc left in
        Printf.sprintf "split %s %s" (floats_str lo) (floats_str hi) :: acc
  in
  go [] root

let tree_of_lines ~dim (lines : string list) : node option =
  let arr = Array.of_list lines in
  let pos = ref 0 in
  let split2 s =
    match floats_of_str ~expect:(2 * dim) s with
    | None -> None
    | Some both ->
        Some (Array.sub both 0 dim, Array.sub both dim dim)
  in
  let rec go () : node option =
    if !pos >= Array.length arr then None
    else begin
      let line = arr.(!pos) in
      incr pos;
      match String.index_opt line ' ' with
      | None -> None
      | Some i -> (
          let tag = String.sub line 0 i in
          let rest = String.sub line (i + 1) (String.length line - i - 1) in
          match tag with
          | "split" -> (
              match split2 rest with
              | None -> None
              | Some (lo, hi) -> (
                  match go () with
                  | None -> None
                  | Some left -> (
                      match go () with
                      | None -> None
                      | Some right -> Some (Split { lo; hi; left; right }))))
          | "leaf" -> (
              match String.index_opt rest ' ' with
              | None -> None
              | Some j -> (
                  match
                    ( int_of_string_opt (String.sub rest 0 j),
                      split2
                        (String.sub rest (j + 1) (String.length rest - j - 1))
                    )
                  with
                  | Some page, Some (lo, hi) -> Some (Leaf { lo; hi; page })
                  | _ -> None))
          | _ -> None)
    end
  in
  match go () with
  | Some root when !pos = Array.length arr -> Some root
  | _ -> None

let params_lines (l : lsh) : string list =
  (Printf.sprintf "projs %d" (Array.length l.projs))
  :: (Array.to_list l.projs |> List.map (fun p -> "p " ^ floats_str p))
  @ [ "mins " ^ floats_str l.mins; Printf.sprintf "width %h" l.width ]
  @ (Array.to_list l.codes
    |> List.mapi (fun i c ->
           Printf.sprintf "code %d %s" i
             (String.concat " " (List.map string_of_int (Array.to_list c)))))

let params_of_lines ~dim ~npages (lines : string list) : lsh option =
  let ( let* ) = Option.bind in
  match lines with
  | [] -> None
  | projs_l :: rest ->
      let strip p s =
        let lp = String.length p in
        if String.length s >= lp && String.equal (String.sub s 0 lp) p then
          Some (String.sub s lp (String.length s - lp))
        else None
      in
      let* np = Option.bind (strip "projs " projs_l) int_of_string_opt in
      if np <> lsh_projs || List.length rest < np + 2 + npages then None
      else begin
        let proj_ls = Util.take np rest in
        let rest = Util.drop np rest in
        let* projs =
          List.fold_left
            (fun acc l ->
              let* acc = acc in
              let* s = strip "p " l in
              let* v = floats_of_str ~expect:dim s in
              Some (v :: acc))
            (Some []) proj_ls
        in
        let projs = Array.of_list (List.rev projs) in
        match rest with
        | mins_l :: width_l :: code_ls when List.length code_ls = npages ->
            let* mins =
              Option.bind (strip "mins " mins_l)
                (floats_of_str ~expect:lsh_projs)
            in
            let* width =
              Option.bind (strip "width " width_l) float_of_string_opt
            in
            let* codes =
              List.fold_left
                (fun acc (i, l) ->
                  let* acc = acc in
                  let* s = strip "code " l in
                  match String.split_on_char ' ' s with
                  | id :: toks
                    when int_of_string_opt id = Some i
                         && List.length toks = lsh_projs ->
                      let vals = List.filter_map int_of_string_opt toks in
                      if List.length vals <> lsh_projs then None
                      else Some (Array.of_list vals :: acc)
                  | _ -> None)
                (Some [])
                (List.mapi (fun i l -> (i, l)) code_ls)
            in
            Some
              {
                projs;
                mins;
                width;
                codes = Array.of_list (List.rev codes);
              }
        | _ -> None
      end

let section_str name (lines : string list) : string =
  Printf.sprintf "section %s %s %d\n%s" name
    (Util.fnv1a64 (String.concat "\n" lines))
    (List.length lines)
    (String.concat "" (List.map (fun l -> l ^ "\n") lines))

(** [save t path] — write the index atomically (write-temp, fsync,
    rename): a crash at any instant — including one injected at the
    per-page ["ann_build"] fault point — leaves any previous index file
    intact. *)
let save (t : t) (path : string) : unit =
  let page_arrays = Array.init t.npages (fun i -> fetch_page t i) in
  let params =
    match t.structure with
    | Buckets l -> params_lines l
    | Empty | Kdtree _ -> []
  in
  let tree =
    match t.structure with
    | Empty -> [ "empty" ]
    | Kdtree root -> tree_lines root
    | Buckets _ -> [ "buckets" ]
  in
  let header =
    Printf.sprintf "%s %d\nalgo %s\nn %d\ndim %d\nfingerprint %s\n" magic
      version (string_of_algo t.algo) t.n t.dim t.fingerprint
  in
  let prefix =
    header ^ section_str "params" params ^ section_str "tree" tree
  in
  let blocks =
    Array.mapi
      (fun i es ->
        let body = Array.to_list es |> List.map entry_line in
        Printf.sprintf "page %d %s %d\n%s" i
          (Util.fnv1a64 (String.concat "\n" body))
          (List.length body)
          (String.concat "" (List.map (fun l -> l ^ "\n") body)))
      page_arrays
  in
  (* byte offsets of each page block, then of the table *)
  let offsets = Array.make t.npages 0 in
  let pos = ref (String.length prefix) in
  Array.iteri
    (fun i block ->
      offsets.(i) <- !pos;
      pos := !pos + String.length block)
    blocks;
  let table_offset = !pos in
  let table =
    Array.to_list
      (Array.mapi
         (fun i es ->
           Printf.sprintf "page %d %d %d" i offsets.(i) (Array.length es))
         page_arrays)
  in
  let table_str = section_str "table" table in
  let trailer = Printf.sprintf "trailer %012d\n" table_offset in
  Checkpoint.atomic_write path (fun oc ->
      output_string oc prefix;
      Array.iter
        (fun block ->
          Fault.inject "ann_build";
          output_string oc block)
        blocks;
      output_string oc table_str;
      output_string oc trailer)

let trailer_len = String.length (Printf.sprintf "trailer %012d\n" 0)

(** [load ~path ~fingerprint] — open a saved index without materialising
    its pages. [Error reason] covers a missing/unreadable file, any
    header/tree/table corruption, a version mismatch, and — the
    staleness rule — a stored fingerprint different from [fingerprint]
    (the current database contents); the caller rebuilds or falls back
    to the scan. Page corruption is only discovered when a query
    actually touches the page, as {!Corrupt}. *)
let load ~path ~fingerprint:(expect_fp : string) : (t, string) result =
  let ( let* ) = Result.bind in
  let fail fmt = Printf.ksprintf (fun m -> Error (path ^ ": " ^ m)) fmt in
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let line () =
            match input_line ic with
            | l -> Ok l
            | exception End_of_file -> fail "truncated index"
          in
          let* l0 = line () in
          let* () =
            match String.split_on_char ' ' l0 with
            | [ m; v ] when String.equal m magic -> (
                match int_of_string_opt v with
                | Some ver when ver = version -> Ok ()
                | _ ->
                    fail "unsupported index version %S (this build reads %d)"
                      v version)
            | _ -> fail "not a daisy ANN index (bad magic line %S)" l0
          in
          let read_field name =
            let* l = line () in
            let p = name ^ " " in
            let lp = String.length p in
            if String.length l > lp && String.equal (String.sub l 0 lp) p
            then Ok (String.sub l lp (String.length l - lp))
            else fail "expected '%s ...', got %S" name l
          in
          let* algo_s = read_field "algo" in
          let* algo =
            match algo_of_string algo_s with
            | Some a -> Ok a
            | None -> fail "unknown algo %S" algo_s
          in
          let* n_s = read_field "n" in
          let* n =
            match int_of_string_opt n_s with
            | Some n when n >= 0 -> Ok n
            | _ -> fail "malformed n line"
          in
          let* dim_s = read_field "dim" in
          let* dim =
            match int_of_string_opt dim_s with
            | Some d when d > 0 -> Ok d
            | _ -> fail "malformed dim line"
          in
          let* fp = read_field "fingerprint" in
          let* () =
            if String.equal fp expect_fp then Ok ()
            else
              fail
                "stale index: built for database fingerprint %s, current is \
                 %s"
                fp expect_fp
          in
          let read_section name =
            let* l = line () in
            match String.split_on_char ' ' l with
            | [ "section"; nm; ck; cnt ] when String.equal nm name -> (
                match int_of_string_opt cnt with
                | Some cnt when cnt >= 0 ->
                    let* body =
                      let rec go acc i =
                        if i = 0 then Ok (List.rev acc)
                        else
                          let* l = line () in
                          go (l :: acc) (i - 1)
                      in
                      go [] cnt
                    in
                    if
                      String.equal ck
                        (Util.fnv1a64 (String.concat "\n" body))
                    then Ok body
                    else fail "section %s: checksum mismatch" name
                | _ -> fail "section %s: malformed count" name)
            | _ -> fail "expected 'section %s ...', got %S" name l
          in
          let* params = read_section "params" in
          let* tree = read_section "tree" in
          (* the page table lives at the end; its offset in the trailer *)
          let len = in_channel_length ic in
          let* () =
            if len < trailer_len then fail "truncated index" else Ok ()
          in
          seek_in ic (len - trailer_len);
          let* tl = line () in
          let* table_offset =
            match String.split_on_char ' ' tl with
            | [ "trailer"; off ] -> (
                match int_of_string_opt off with
                | Some o when o >= 0 && o < len -> Ok o
                | _ -> fail "malformed trailer %S" tl)
            | _ -> fail "malformed trailer %S" tl
          in
          seek_in ic table_offset;
          let* table = read_section "table" in
          let* offsets =
            List.fold_left
              (fun acc (i, l) ->
                let* acc = acc in
                match String.split_on_char ' ' l with
                | [ "page"; id; off; cnt ]
                  when int_of_string_opt id = Some i -> (
                    match (int_of_string_opt off, int_of_string_opt cnt) with
                    | Some o, Some c when o >= 0 && c >= 0 ->
                        Ok ((o, c) :: acc)
                    | _ -> fail "malformed table line %S" l)
                | _ -> fail "malformed table line %S" l)
              (Ok [])
              (List.mapi (fun i l -> (i, l)) table)
          in
          let offsets = Array.of_list (List.rev offsets) in
          let npages = Array.length offsets in
          let* () =
            let total =
              Array.fold_left (fun acc (_, c) -> acc + c) 0 offsets
            in
            if total = n then Ok ()
            else fail "page table covers %d entries, header says %d" total n
          in
          let* structure =
            if n = 0 then Ok Empty
            else
              match algo with
              | Kd -> (
                  match tree_of_lines ~dim tree with
                  | None -> fail "malformed tree section"
                  | Some root ->
                      (* every leaf must reference a real page *)
                      let ok = ref true in
                      let rec check = function
                        | Leaf { page; _ } ->
                            if page < 0 || page >= npages then ok := false
                        | Split { left; right; _ } ->
                            check left;
                            check right
                      in
                      check root;
                      if !ok then Ok (Kdtree root)
                      else fail "tree references missing pages")
              | Lsh -> (
                  match params_of_lines ~dim ~npages params with
                  | None -> fail "malformed params section"
                  | Some l -> Ok (Buckets l))
          in
          Ok
            {
              algo;
              n;
              dim;
              fingerprint = fp;
              structure;
              npages;
              pages =
                Paged
                  {
                    path;
                    offsets;
                    cache = Hashtbl.create 16;
                    lock = Mutex.create ();
                  };
            })

(** [verify ~path ~fingerprint] — the scrubber's deep integrity check:
    {!load} the index (header, tree, table), then fetch and
    checksum-verify {e every} page — corruption that {!load} alone would
    only surface mid-query. *)
let verify ~path ~fingerprint : (string, string) result =
  match load ~path ~fingerprint with
  | Error _ as e -> e
  | Ok t -> (
      try
        for p = 0 to t.npages - 1 do
          ignore (fetch_page t p)
        done;
        Ok (describe t)
      with Corrupt m -> Error (path ^ ": " ^ m))
