(** Sub-linear nearest-neighbour indexes over performance embeddings.

    Two exact index structures — a bucket k-d tree with best-bin-first
    bounded search (the low-dimensional workhorse) and an LSH-bucket
    path (selected automatically past a dimensionality or entry-count
    threshold) — with one contract: {!query} returns {e exactly} the
    same top-k (distances and order) as [Embedding.nearest_by] run over
    the indexed vectors, for every database and every query. Ties
    resolve by {!Embedding.compare_key} and then by entry index, which
    coincides with the scan's arrival order.

    Indexes persist in a versioned [DAISYANN 1] file (FNV-1a-64
    checksums, atomic writes, content fingerprint for staleness) with a
    paged loader: {!load} never materialises the entries; leaf pages are
    fetched and checksum-verified on demand. Fault-injection labels:
    ["ann_build"] (per page during {!save}) and ["ann_query"] (at
    {!query} entry). *)

type t

type algo = Kd | Lsh

exception Corrupt of string
(** A file-backed page (or section) failed its checksum or could not be
    parsed, or the ["ann_query"] fault point fired. Callers fall back to
    the linear scan. *)

val page_cap : int
(** Leaf capacity of the k-d tree and target LSH bucket occupancy. *)

val auto_algo : n:int -> dim:int -> algo
(** Index structure chosen when {!build} is not given one explicitly:
    [Lsh] when [dim > 24] or [n > 250_000], [Kd] otherwise. *)

val build :
  ?algo:algo -> fingerprint:string -> dim:int -> float array array -> t
(** [build ~fingerprint ~dim vectors] — index [vectors] (entry [i] keeps
    index [i] in query results) in memory. [fingerprint] identifies the
    database contents the index was built from; {!load} refuses an index
    whose stored fingerprint differs. Deterministic: the same vectors
    produce a bit-identical index (and index file). Raises
    [Invalid_argument] if any vector's length differs from [dim]. *)

val query : t -> k:int -> float array -> (float * int) list
(** [query t ~k q] — the [k] entries nearest to [q] as
    [(distance, entry index)], nearest first: exactly
    [Embedding.nearest_by]'s distances and order over the indexed
    vectors. Raises {!Corrupt} on page corruption (file-backed indexes)
    or an injected ["ann_query"] fault. Thread-safe: parallel queries
    may share [t]. *)

val save : t -> string -> unit
(** Write the [DAISYANN 1] file atomically (write-temp, fsync, rename):
    a crash mid-write — including the per-page ["ann_build"] fault
    point — leaves any previous index file intact. *)

val load : path:string -> fingerprint:string -> (t, string) result
(** [load ~path ~fingerprint] — open a saved index, reading only the
    header, tree and page table; pages load lazily at query time.
    [Error reason] on a missing/unreadable file, version mismatch,
    header/tree/table corruption, or a stored fingerprint differing from
    [fingerprint] (the staleness rule: fingerprint of the current
    database contents). *)

val n : t -> int
val dim : t -> int
val fingerprint : t -> string
val algo : t -> algo

val pages : t -> int
(** Number of leaf pages (k-d tree) or occupied buckets (LSH). *)

val describe : t -> string
(** One-line human-readable summary, e.g. ["kd, 1500 entries, 42 pages"]. *)

val verify : path:string -> fingerprint:string -> (string, string) result
(** [verify ~path ~fingerprint] — deep integrity check: {!load}, then
    fetch and checksum-verify every page (corruption {!load} alone would
    only surface lazily, mid-query). [Ok description] when the whole
    file is intact; [Error reason] otherwise. The sharded warm store's
    scrubber runs this over every shard sidecar. *)
