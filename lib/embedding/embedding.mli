(** Performance embeddings: fixed-length, iterator-rename-invariant feature
    vectors of loop nests. The transfer-tuning database matches nests by
    Euclidean distance between these vectors (paper §4, after Trümper et
    al., ICS'23). *)

type t = float array

val dim : int
(** Length of every embedding vector. *)

val of_node : Daisy_loopir.Ir.node -> t

val distance : t -> t -> float
(** Euclidean distance. *)

val nearest_by : embed:('a -> t) -> int -> 'a list -> t -> (float * 'a) list
(** [nearest_by ~embed k entries q] — the [k] entries closest to [q],
    nearest first, comparing [embed entry] against [q]. O(n*k) bounded
    insertion (no full sort, no intermediate pair list); ties keep the
    earlier entry first, exactly like a stable full sort. *)

val nearest : int -> (t * 'a) list -> t -> (float * 'a) list
(** [nearest k db q] — the [k] entries closest to [q], nearest first.
    [nearest_by] over pre-paired entries. *)

val pp : t Fmt.t
