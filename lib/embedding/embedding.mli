(** Performance embeddings: fixed-length, iterator-rename-invariant feature
    vectors of loop nests. The transfer-tuning database matches nests by
    Euclidean distance between these vectors (paper §4, after Trümper et
    al., ICS'23). *)

type t = float array

val dim : int
(** Length of every embedding vector. *)

val of_node : Daisy_loopir.Ir.node -> t

val distance : t -> t -> float
(** Euclidean distance. *)

val compare_key : float * t -> float * t -> int
(** Total order on [(distance, embedding)] ranking keys: distance first,
    then the embedding lexicographically. The shared tie-break contract
    of every top-k path ({!nearest_by}, {!Ann}): entries at equal
    distance rank by their embedding coordinates, making results
    independent of database order; only bit-equal embeddings fall back
    to arrival order / entry index (which coincide). *)

val nearest_by : embed:('a -> t) -> int -> 'a list -> t -> (float * 'a) list
(** [nearest_by ~embed k entries q] — the [k] entries closest to [q],
    nearest first, comparing [embed entry] against [q]. O(n*k) bounded
    insertion (no full sort, no intermediate pair list). Ranked by
    {!compare_key}, so the result is the same for any permutation of
    [entries]; only entries with bit-equal embeddings keep their
    arrival order (earlier first, like a stable full sort). *)

val nearest : int -> (t * 'a) list -> t -> (float * 'a) list
(** [nearest k db q] — the [k] entries closest to [q], nearest first.
    [nearest_by] over pre-paired entries. *)

val pp : t Fmt.t
