(** Performance embeddings: fixed-length feature vectors of loop nests.

    The daisy scheduler's transfer tuning matches normalized loop nests to
    database entries by Euclidean distance between these vectors (paper §4,
    after Trümper et al., "Performance Embeddings", ICS'23). The features
    are static, structure- and access-pattern-centric, and deliberately
    invariant under iterator renaming — after normalization, semantically
    equivalent nests land (near-)identically in embedding space. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Affine = Daisy_poly.Affine
module Expr = Daisy_poly.Expr

let dim = 16

type t = float array (* length = dim *)

(* feature indices *)
let f_depth = 0
let f_n_comps = 1
let f_n_loops = 2
let f_flops = 3
let f_reads = 4
let f_writes = 5
let f_unit_stride = 6
let f_const_stride = 7
let f_big_stride = 8
let f_invariant = 9
let f_reduction = 10
let f_guarded = 11
let f_intrinsics = 12
let f_arrays = 13
let f_rank = 14
let f_triangular = 15

(** Per-access classification of the innermost-iterator stride. *)
let classify_stride (band_iters : string list) (a : Ir.access) :
    [ `Unit | `Const | `Big | `Invariant | `Unknown ] =
  match List.rev band_iters with
  | [] -> `Invariant
  | innermost :: _ -> (
      let affine_all =
        List.map Affine.of_expr a.Ir.indices
      in
      if List.exists (fun o -> o = None) affine_all then `Unknown
      else
        let coeffs =
          List.mapi
            (fun i o ->
              match o with
              | Some aff -> (i, Affine.coeff innermost aff)
              | None -> (i, 0))
            affine_all
        in
        let rank = List.length a.Ir.indices in
        let weighted =
          List.fold_left (fun acc (i, c) -> if c <> 0 then max acc (rank - i) else acc) 0 coeffs
        in
        if weighted = 0 then `Invariant
        else if weighted = 1 then
          (* innermost iterator appears only in the last dimension *)
          let _, c = List.nth coeffs (rank - 1) in
          if abs c = 1 then `Unit else `Const
        else `Big)

(** Embed a loop nest (or any node). *)
let of_node (n : Ir.node) : t =
  let v = Array.make dim 0.0 in
  let comps = Ir.comps_with_context [ n ] in
  let loops = Ir.loops_in [ n ] in
  v.(f_depth) <- float_of_int (Ir.depth [ n ]);
  v.(f_n_comps) <- float_of_int (List.length comps);
  v.(f_n_loops) <- float_of_int (List.length loops);
  let arrays = ref Util.SSet.empty in
  let max_rank = ref 0 in
  List.iter
    (fun (ctx, (c : Ir.comp)) ->
      let band_iters = List.map (fun (l : Ir.loop) -> l.Ir.iter) ctx in
      v.(f_flops) <- v.(f_flops) +. float_of_int (Ir.flops_of_vexpr c.Ir.rhs);
      let reads = Ir.comp_array_reads c in
      let writes = Ir.comp_array_writes c in
      v.(f_reads) <- v.(f_reads) +. float_of_int (List.length reads);
      v.(f_writes) <- v.(f_writes) +. float_of_int (List.length writes);
      List.iter
        (fun (a : Ir.access) ->
          arrays := Util.SSet.add a.Ir.array !arrays;
          max_rank := max !max_rank (List.length a.Ir.indices);
          match classify_stride band_iters a with
          | `Unit -> v.(f_unit_stride) <- v.(f_unit_stride) +. 1.0
          | `Const -> v.(f_const_stride) <- v.(f_const_stride) +. 1.0
          | `Big | `Unknown -> v.(f_big_stride) <- v.(f_big_stride) +. 1.0
          | `Invariant -> v.(f_invariant) <- v.(f_invariant) +. 1.0)
        (reads @ writes);
      if Daisy_dependence.Legality.is_reduction_comp c then
        v.(f_reduction) <- v.(f_reduction) +. 1.0;
      if c.Ir.guard <> None then v.(f_guarded) <- v.(f_guarded) +. 1.0;
      let rec intrinsics e =
        match e with
        | Ir.Vcall (_, args) -> 1 + Util.sum_by intrinsics args
        | Ir.Vbin (_, a, b) -> intrinsics a + intrinsics b
        | Ir.Vneg a -> intrinsics a
        | Ir.Vselect (_, a, b) -> intrinsics a + intrinsics b
        | _ -> 0
      in
      v.(f_intrinsics) <- v.(f_intrinsics) +. float_of_int (intrinsics c.Ir.rhs))
    comps;
  v.(f_arrays) <- float_of_int (Util.SSet.cardinal !arrays);
  v.(f_rank) <- float_of_int !max_rank;
  (* triangular: some loop bound references another iterator *)
  let iter_names = Util.SSet.of_list (List.map (fun (l : Ir.loop) -> l.Ir.iter) loops) in
  v.(f_triangular) <-
    (if
       List.exists
         (fun (l : Ir.loop) ->
           not
             (Util.SSet.is_empty
                (Util.SSet.inter iter_names
                   (Util.SSet.union (Expr.free_vars l.Ir.lo) (Expr.free_vars l.Ir.hi)))))
         loops
     then 1.0
     else 0.0);
  (* log-compress count features so big nests don't dominate distance *)
  Array.map (fun x -> if x > 1.0 then 1.0 +. log x else x) v

let distance (a : t) (b : t) : float =
  let acc = ref 0.0 in
  Array.iteri
    (fun i x ->
      let d = x -. b.(i) in
      acc := !acc +. (d *. d))
    a;
  sqrt !acc

(** Total order on [(distance, embedding)] ranking keys: by distance
    first, then lexicographically by embedding coordinates. This is the
    tie-break contract every top-k path in the toolchain (the linear scan
    below, {!Ann}'s k-d tree and LSH buckets) agrees on: entries at equal
    distance rank by their embedding, so the result is independent of the
    order the database happens to store them in. Only entries with
    bit-equal embeddings remain order-dependent — they are broken by
    arrival order (the scan) / entry index (the index), which coincide. *)
let compare_key ((d1 : float), (e1 : t)) ((d2 : float), (e2 : t)) : int =
  if d1 < d2 then -1
  else if d1 > d2 then 1
  else
    let n1 = Array.length e1 and n2 = Array.length e2 in
    let rec go i =
      if i >= n1 || i >= n2 then compare n1 n2
      else if e1.(i) < e2.(i) then -1
      else if e1.(i) > e2.(i) then 1
      else go (i + 1)
    in
    go 0

(** [nearest_by ~embed k entries q] — the [k] entries closest to query
    [q], closest first. O(n*k) bounded insertion instead of sorting the
    whole database. Ranking is by {!compare_key} — distance, then the
    embedding lexicographically — so the returned list is the same for
    any permutation of [entries]; only bit-equal embeddings fall back to
    keeping the earlier entry first (like a stable full sort). *)
let nearest_by ~(embed : 'a -> t) (k : int) (entries : 'a list) (q : t) :
    (float * 'a) list =
  if k <= 0 then []
  else begin
    (* [best] is ascending by (distance, embedding, arrival), at most [k]
       long; [worst] is the ranking key of its last element once full *)
    let best = ref [] in
    let count = ref 0 in
    let worst = ref None in
    let rec insert key payload l =
      match l with
      | [] -> [ (key, payload) ]
      | ((key', _) as hd) :: tl ->
          (* strict [<]: an equal-key newcomer goes after — stable *)
          if compare_key key key' < 0 then (key, payload) :: l
          else hd :: insert key payload tl
    in
    List.iter
      (fun entry ->
        let e = embed entry in
        let key = (distance e q, e) in
        match !worst with
        | None ->
            best := insert key entry !best;
            incr count;
            if !count = k then worst := Some (fst (List.nth !best (k - 1)))
        | Some w ->
            if compare_key key w < 0 then begin
              best := Util.take k (insert key entry !best);
              worst := Some (fst (List.nth !best (k - 1)))
            end)
      entries;
    List.map (fun ((d, _), payload) -> (d, payload)) !best
  end

(** [nearest k db q] — the [k] database entries closest to query [q]. *)
let nearest (k : int) (db : (t * 'a) list) (q : t) : (float * 'a) list =
  List.map (fun (d, (_, payload)) -> (d, payload)) (nearest_by ~embed:fst k db q)

let pp ppf (t : t) =
  Fmt.pf ppf "[%a]"
    (Fmt.list ~sep:(Fmt.any " ") (fun ppf x -> Fmt.pf ppf "%.2f" x))
    (Array.to_list t)
