(** Crash-consistent, self-healing sharded warm store for the
    transfer-tuning database.

    A store is a directory: a checksummed [DAISYMAN 1] manifest binding
    immutable per-shard DAISYDB segments (each with its own DAISYANN
    sidecar) plus a checksummed write-ahead log for appends. Entries
    partition by embedding region through a k-d tree of median splits,
    so every embedding routes to exactly one shard and the cross-shard
    top-k merge is bit-identical to the monolithic scan (the
    {!Daisy_embedding.Embedding.compare_key} contract).

    Durability: segments are immutable; appends only touch the WAL
    (per-record FNV-1a-64 checksums, fsync, torn-tail-tolerant replay);
    {!compact} and {!scrub} write new-generation segments first and
    commit them with one atomic manifest rename, which also advances
    the manifest's [consumed] WAL offset past every folded record — the
    WAL file itself is only ever appended to (see {!trim_wal}). Every
    crash point — the ["shard_wal"], ["shard_compact"] and
    ["shard_scrub"] {!Daisy_support.Fault} labels — leaves a store that
    opens cleanly and answers bit-identically to the pre- or
    post-operation state; any WAL over-replay is absorbed by
    {!Database.merge}'s content-keyed dedup.

    Corruption containment: a shard failing its checksums or
    fingerprint is quarantined — the store keeps serving the remaining
    shards (surviving entries of the bad one answer by scan), emits one
    throttled ["shard_quarantine"] warning, counts the event, and
    {!scrub} repairs the shard from survivors + WAL when possible.

    Writer discipline: at most one process appends at a time, and at
    most one process compacts/scrubs/trims at a time — but because
    compaction never rewrites the WAL, the appender and the maintainer
    may be {e different} processes (a seeder appending under a
    compacting daemon is safe). Any number of readers may {!refresh}
    concurrently. See docs/robustness.md, "Sharded warm store". *)

type t

val default_shard_cap : int
(** Compaction splits a shard past this many entries (512). *)

val is_store_dir : string -> bool
(** Does [path] name a store directory (has a [MANIFEST])? *)

val create : ?shard_cap:int -> ?overwrite:bool -> string -> Database.t -> t
(** [create dir db] — partition [db]'s entries into a fresh store at
    [dir] (created if missing): per-shard segments + ANN sidecars, a
    manifest, an empty WAL. Refuses to replace an existing store unless
    [overwrite]. *)

val open_ : ?shard_cap:int -> string -> t
(** Open an existing store: verify and parse the manifest, load every
    segment (quarantining corrupt ones), collect orphaned generation
    files, replay the WAL (dropping and truncating a torn tail). Raises
    [Daisy_support.Diag.Error] only for a missing/corrupt manifest —
    segment corruption degrades, never fails the open. *)

val dir : t -> string

val append : t -> Database.entry list -> unit
(** Durably append entries: one checksummed WAL record each (fsync
    before return), routed to their shards' pending sets. Committed
    segments are not touched. The ["shard_wal"] fault point fires
    mid-record; a crash there leaves every earlier record durable and
    the torn record dropped on replay. *)

val compact : ?now:float -> t -> int
(** Fold pending WAL entries into their shards — {e only} the affected
    shards are rewritten (new-generation segment + rebuilt sidecar),
    splitting any shard past [shard_cap]. The manifest rename is the
    commit point (["shard_compact"] fault label; crash before = pre-
    state, after = post-state modulo idempotent WAL re-replay); it
    advances the [consumed] boundary rather than touching the WAL file,
    so a concurrent appender in another process loses nothing. Returns
    the number of shards rewritten (0 = nothing to fold). [now] stamps
    the manifest's last-compaction time. *)

val trim_wal : t -> int
(** Drop the consumed (already-folded) WAL prefix; returns the bytes
    reclaimed. Call only at a single-writer moment (daemon startup, end
    of a seeding run): records appended by {e another} process during
    the trim would be lost. Crash-safe at every point. *)

type scrub_report = {
  sr_shards : int;
  sr_corrupt : int;  (** segments that failed verification *)
  sr_repaired : int;
  sr_sidecars_rebuilt : int;
  sr_entries_lost : int;  (** manifest count minus recovered entries *)
}

val scrub : ?repair:bool -> ?now:float -> t -> scrub_report
(** Walk every shard verifying segment checksums + fingerprint and
    deep-verifying ANN sidecars ({!Daisy_embedding.Ann.verify}). A bad
    segment is quarantined and — with [repair], the default — rewritten
    from the in-memory state (survivors + WAL replay) under the
    ["shard_scrub"] fault label; a bad sidecar alone is rebuilt in
    place. *)

val refresh : t -> [ `Unchanged | `Changed of int * int ]
(** Follow an external writer: re-read the manifest and WAL.
    [`Changed (swapped, appended)] — [swapped] shards were reloaded
    from disk (unchanged shards are reused by (file, fingerprint)
    identity: per-shard hot reload), [appended] new WAL records
    replayed. *)

val size : t -> int
val entries : t -> Database.entry list
(** All entries (committed + pending, deduped), grouped by shard. *)

val query_embedding :
  t -> k:int -> Daisy_embedding.Embedding.t -> (float * Database.entry) list
(** Exact top-k across shards: per-shard top-k (ANN-accelerated when
    the shard has no pending entries) re-ranked under
    [Embedding.nearest_by] — bit-identical (distances and order) to the
    monolithic scan of {!entries}. *)

val exact_matches_hash : t -> int -> Database.entry list

val fingerprint : t -> string
(** Logical content fingerprint (sorted entry bodies): invariant under
    partitioning, compaction and splits — the hot-reload staleness
    rule. *)

val as_database : t -> Database.t
(** A read-only {!Database.t} handle serving through this store
    ({!Database.of_backend}) — drop-in for every [~db] consumer. *)

type stats = {
  st_shards : int;
  st_entries : int;
  st_wal_depth : int;  (** pending (un-compacted) WAL entries *)
  st_quarantined : int;
  st_gen : int;
  st_compacted : float;  (** unix seconds; [nan] = never *)
  st_scrubbed : float;
}

val stats : t -> stats
val wal_depth : t -> int

val ann_builds : unit -> int
(** Process-wide count of ANN sidecar builds — the incremental-rebuild
    assertion: appending to one shard and compacting must bump this by
    the rewritten-shard count, not the total shard count. *)

val reset_ann_builds : unit -> unit

val quarantines : unit -> int
(** Process-wide count of shard quarantine events. *)

val reset_quarantines : unit -> unit
