(** Quarantine sink for failing candidates.

    When supervised search evaluation ({!Evolve.search}) or equivalence
    verification ({!Daisy.schedule}) encounters a candidate that crashes,
    exceeds its deadline, or miscompiles, the candidate is excluded from
    selection deterministically and reported here. The sink greedily
    shrinks the (program, recipe) pair with {!Daisy_support.Shrink} and
    writes a self-contained reproducer file into the quarantine
    directory, so a long run never dies on a bad candidate yet the bug is
    kept, minimized, for later triage. *)

type t

val create :
  ?max_repros:int -> ?shrink_checks:int -> dir:string -> unit -> t
(** [create ~dir ()] — a sink writing reproducers into [dir] (created if
    missing). At most [max_repros] (default 20) reproducers are written;
    each shrink calls its failure predicate at most [shrink_checks]
    (default 200) times per phase. Thread-safe: pool workers may report
    concurrently. *)

val dir : t -> string

val count : t -> int
(** Reproducers written so far (after deduplication and capping). *)

val report :
  t ->
  reason:string ->
  sizes:(string * int) list ->
  program:Daisy_loopir.Ir.program ->
  recipe:Daisy_transforms.Recipe.t ->
  still_fails:
    (Daisy_loopir.Ir.program -> Daisy_transforms.Recipe.t -> bool) ->
  string option
(** [report t ~reason ~sizes ~program ~recipe ~still_fails] — shrink the
    failing pair ([still_fails] must hold on the original pair; an
    exception inside it counts as "no longer failing") and write a
    reproducer. The recipe's steps are minimized first, then the
    program's loop-body statements. Returns the path of the written
    file, or [None] when the failure deduplicates against an earlier
    report or the [max_repros] cap is reached. Reproducer filenames are
    derived from the shrunk content, so concurrent reporting orders (or
    different job counts) produce the same files. *)
