(** Quarantine sink: shrink failing candidates and keep reproducers
    (see the interface). *)

module Ir = Daisy_loopir.Ir
module Recipe = Daisy_transforms.Recipe
module Shrink = Daisy_support.Shrink
module Util = Daisy_support.Util
module Checkpoint = Daisy_support.Checkpoint

type t = {
  dir : string;
  max_repros : int;
  shrink_checks : int;
  lock : Mutex.t;
  mutable seen : Util.SSet.t;  (** pre-shrink failure keys *)
  mutable written : int;
}

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ -> ()
  end

let create ?(max_repros = 20) ?(shrink_checks = 200) ~dir () =
  mkdir_p dir;
  {
    dir;
    max_repros;
    shrink_checks;
    lock = Mutex.create ();
    seen = Util.SSet.empty;
    written = 0;
  }

let dir t = t.dir

let count t =
  Mutex.lock t.lock;
  let n = t.written in
  Mutex.unlock t.lock;
  n

(** Pre-shrink identity of a failure: same reason, same recipe, same nest
    structure — report once. *)
let failure_key ~reason ~(program : Ir.program) ~recipe =
  Printf.sprintf "%s\x00%s\x00%d" reason
    (Recipe.to_string recipe)
    (Ir.hash_structure program.Ir.body)

(** Minimize the program's statements: first the top-level node list,
    then — when a single nest remains — its direct loop body. *)
let shrink_program ~max_checks ~(check : Ir.program -> bool)
    (p : Ir.program) : Ir.program =
  let body =
    Shrink.list ~max_checks
      ~still_fails:(fun b -> check { p with Ir.body = b })
      p.Ir.body
  in
  let p = { p with Ir.body } in
  match p.Ir.body with
  | [ Ir.Nloop l ] ->
      let inner =
        Shrink.list ~max_checks
          ~still_fails:(fun b ->
            check { p with Ir.body = [ Ir.Nloop { l with Ir.body = b } ] })
          l.Ir.body
      in
      { p with Ir.body = [ Ir.Nloop { l with Ir.body = inner } ] }
  | _ -> p

let render ~reason ~sizes ~(recipe : Recipe.t) ~(shrunk_recipe : Recipe.t)
    ~(program : Ir.program) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b "daisy quarantine reproducer\n";
  Buffer.add_string b (Printf.sprintf "reason: %s\n" reason);
  Buffer.add_string b
    ("sizes:"
    ^ String.concat ""
        (List.map (fun (k, v) -> Printf.sprintf " %s=%d" k v) sizes)
    ^ "\n");
  Buffer.add_string b
    (Printf.sprintf "recipe (original): %s\n" (Recipe.to_string recipe));
  Buffer.add_string b
    (Printf.sprintf "recipe (shrunk):   %s\n" (Recipe.to_string shrunk_recipe));
  Buffer.add_string b "program (shrunk):\n";
  Buffer.add_string b (Ir.program_to_string program);
  Buffer.contents b

let report t ~reason ~sizes ~(program : Ir.program) ~(recipe : Recipe.t)
    ~(still_fails : Ir.program -> Recipe.t -> bool) : string option =
  let key = failure_key ~reason ~program ~recipe in
  let claim =
    Mutex.lock t.lock;
    let fresh = (not (Util.SSet.mem key t.seen)) && t.written < t.max_repros in
    if fresh then begin
      t.seen <- Util.SSet.add key t.seen;
      t.written <- t.written + 1
    end;
    Mutex.unlock t.lock;
    fresh
  in
  if not claim then None
  else begin
    (* Shrink the recipe first (cheap, often collapses to one step),
       then the program against the shrunk recipe. *)
    let shrunk_recipe =
      Shrink.list ~max_checks:t.shrink_checks
        ~still_fails:(fun steps -> still_fails program steps)
        recipe
    in
    let shrunk_program =
      shrink_program ~max_checks:t.shrink_checks
        ~check:(fun p -> still_fails p shrunk_recipe)
        program
    in
    let content =
      render ~reason ~sizes ~recipe ~shrunk_recipe ~program:shrunk_program
    in
    (* Content-addressed filename: identical failures land on identical
       paths regardless of reporting order or job count. *)
    let path =
      Filename.concat t.dir (Printf.sprintf "repro-%s.txt" (Util.fnv1a64 content))
    in
    Checkpoint.atomic_write path (fun oc -> output_string oc content);
    Some path
  end
