(** The self-healing sharded warm store.

    A store is a directory:

    {v
    MANIFEST              DAISYMAN 1: checksummed shard map + routing tree
    wal.log               DAISYWAL 1: checksummed append records
    shard-<id>-g<G>.db    immutable DAISYDB segment (generation G)
    shard-<id>-g<G>.db.ann  DAISYANN sidecar for that segment
    v}

    Entries partition by embedding region: a k-d tree of median splits
    (widest-spread dimension first, the same ranking key discipline as
    {!Daisy_embedding.Ann}) routes every embedding to exactly one leaf
    shard, so bit-equal embeddings always share a shard and the
    cross-shard top-k merge needs no tie-break beyond
    {!Daisy_embedding.Embedding.compare_key}.

    Durability contract (see docs/robustness.md, "Sharded warm store"):

    - {e Segments are immutable.} {!append} only writes WAL records
      (FNV-1a-64 per-record checksum, fsync before return); committed
      shard files are never rewritten in place.
    - {e The manifest is the commit point.} {!compact} and {!scrub}
      write new-generation segments {e first}, then replace the
      manifest via {!Daisy_support.Checkpoint.atomic_write}; a crash on
      either side of the rename leaves the store bit-identical to the
      pre- or post-operation state. The WAL is replaced with an empty
      file {e after} the manifest rename — a crash between the two
      over-replays records into shards that already contain them, which
      {!Database.merge}'s content-keyed dedup absorbs.
    - {e Torn tails are tolerated.} Replay stops at the first
      incomplete record; {!open_} truncates the tear so later appends
      stay parseable (single-writer discipline: at most one process
      appends/compacts; readers {!refresh} concurrently).
    - {e Corruption is contained.} A segment that fails its checksums
      or fingerprint is quarantined: the store keeps serving the other
      shards (plus whatever entries survived, by scan), emits one
      throttled ["shard_quarantine"] warning, and counts the event;
      {!scrub} repairs the shard from the in-memory state (survivors +
      WAL replay) when possible.

    Fault labels: ["shard_wal"] (mid-record, per WAL append),
    ["shard_compact"] (per new segment + manifest rename),
    ["shard_scrub"] (per repair segment + manifest rename). *)

module Util = Daisy_support.Util
module Diag = Daisy_support.Diag
module Fault = Daisy_support.Fault
module Checkpoint = Daisy_support.Checkpoint
module Embedding = Daisy_embedding.Embedding
module Ann = Daisy_embedding.Ann

let manifest_name = "MANIFEST"
let wal_name = "wal.log"
let man_magic = "DAISYMAN 1"
let wal_magic = "DAISYWAL 1"
let wal_header = wal_magic ^ "\n"
let default_shard_cap = 512

(* process-wide counter of ANN sidecar builds — the incremental-rebuild
   assertion: an append + compact touching one shard must bump this by
   exactly the number of shards rewritten, not the shard count *)
let ann_build_count = Atomic.make 0
let ann_builds () = Atomic.get ann_build_count
let reset_ann_builds () = Atomic.set ann_build_count 0

let quarantine_count = Atomic.make 0
let quarantines () = Atomic.get quarantine_count
let reset_quarantines () = Atomic.set quarantine_count 0

(* ------------------------------------------------------------------ *)
(* Routing tree *)

type tree =
  | Leaf of int
  | Split of { sdim : int; thr : float; left : tree; right : tree }

let rec route (tr : tree) (e : Embedding.t) : int =
  match tr with
  | Leaf id -> id
  | Split { sdim; thr; left; right } ->
      if sdim < Array.length e && e.(sdim) >= thr then route right e
      else route left e

let rec tree_leaves = function
  | Leaf id -> [ id ]
  | Split { left; right; _ } -> tree_leaves left @ tree_leaves right

let rec replace_leaf (tr : tree) (id : int) (sub : tree) : tree =
  match tr with
  | Leaf i when i = id -> sub
  | Leaf _ -> tr
  | Split s ->
      Split
        {
          s with
          left = replace_leaf s.left id sub;
          right = replace_leaf s.right id sub;
        }

let rec tree_to_lines = function
  | Leaf id -> [ Printf.sprintf "leaf %d" id ]
  | Split { sdim; thr; left; right } ->
      Printf.sprintf "split %d %h" sdim thr
      :: (tree_to_lines left @ tree_to_lines right)

let tree_of_lines (lines : string list) : (tree * string list) option =
  let rec go = function
    | [] -> None
    | l :: rest -> (
        match String.split_on_char ' ' l with
        | [ "leaf"; id ] ->
            Option.map (fun id -> (Leaf id, rest)) (int_of_string_opt id)
        | [ "split"; d; thr ] -> (
            match (int_of_string_opt d, float_of_string_opt thr) with
            | Some sdim, Some thr ->
                Option.bind (go rest) (fun (left, rest) ->
                    Option.map
                      (fun (right, rest) ->
                        (Split { sdim; thr; left; right }, rest))
                      (go rest))
            | _ -> None)
        | _ -> None)
  in
  go lines

(* Median split on the widest-spread dimension — the same discipline as
   {!Ann}'s k-d builder: the threshold is the median coordinate value,
   advanced past a run of minimum values so both sides are non-empty.
   Returns [None] when every dimension has zero spread (an oversized
   leaf is the only option). The partition is stable, so chronological
   order survives within each side. *)
let split_entries (es : Database.entry array) :
    (int * float * Database.entry array * Database.entry array) option =
  let n = Array.length es in
  if n < 2 then None
  else
    let dim =
      Array.fold_left
        (fun d (e : Database.entry) -> max d (Array.length e.embedding))
        0 es
    in
    let best = ref (-1) and best_spread = ref 0. in
    for d = 0 to dim - 1 do
      let mn = ref infinity and mx = ref neg_infinity in
      Array.iter
        (fun (e : Database.entry) ->
          let v = if d < Array.length e.embedding then e.embedding.(d) else 0. in
          if v < !mn then mn := v;
          if v > !mx then mx := v)
        es;
      let s = !mx -. !mn in
      if s > !best_spread then (
        best := d;
        best_spread := s)
    done;
    if !best < 0 then None
    else
      let d = !best in
      let coord (e : Database.entry) =
        if d < Array.length e.embedding then e.embedding.(d) else 0.
      in
      let coords = Array.map coord es in
      Array.sort Float.compare coords;
      let thr = ref coords.(n / 2) in
      if Float.equal !thr coords.(0) then begin
        let i = ref (n / 2) in
        while !i < n && Float.equal coords.(!i) coords.(0) do
          incr i
        done;
        if !i < n then thr := coords.(!i)
      end;
      let left = Array.of_seq (Seq.filter (fun e -> coord e < !thr) (Array.to_seq es)) in
      let right =
        Array.of_seq (Seq.filter (fun e -> coord e >= !thr) (Array.to_seq es))
      in
      if Array.length left = 0 || Array.length right = 0 then None
      else Some (d, !thr, left, right)

(* Partition chronological entries into leaf shards of at most [cap]
   entries (oversized leaves only under zero spread), assigning fresh
   leaf ids from [next_id]. *)
let rec build_partition ~cap (next_id : int ref)
    (es : Database.entry array) : tree * (int * Database.entry array) list =
  if Array.length es <= cap then (
    let id = !next_id in
    incr next_id;
    (Leaf id, [ (id, es) ]))
  else
    match split_entries es with
    | None ->
        let id = !next_id in
        incr next_id;
        (Leaf id, [ (id, es) ])
    | Some (sdim, thr, l, r) ->
        let left, ls = build_partition ~cap next_id l in
        let right, rs = build_partition ~cap next_id r in
        (Split { sdim; thr; left; right }, ls @ rs)

(* ------------------------------------------------------------------ *)
(* Store state *)

type shard = {
  sid : int;
  mutable file : string;  (** segment basename *)
  mutable fp : string;  (** segment content fingerprint per manifest *)
  mutable ann_file : string option;
  mutable declared : int;  (** entry count per manifest *)
  mutable db : Database.t;  (** committed entries (immutable segment) *)
  mutable pending : Database.entry list;  (** WAL entries, chronological *)
  mutable view : Database.t;
      (** committed + pending, merge-deduped; [== db] when no pending *)
  mutable quarantined : bool;
}

type t = {
  dir : string;
  shard_cap : int;
  lock : Mutex.t;
  mutable gen : int;
  mutable next_id : int;
  mutable tree : tree;
  mutable shards : shard list;  (** sorted by [sid] *)
  mutable compacted : float;  (** unix seconds; [nan] = never *)
  mutable scrubbed : float;
  mutable man_ck : string;  (** manifest body checksum (refresh identity) *)
  mutable consumed : int;
      (** WAL byte offset up to which records are folded into segments
          (or re-held past it); persisted in the manifest *)
  mutable wal_size : int;  (** replayed-through WAL offset (bytes) *)
  mutable wal_torn : bool;  (** an append died mid-record on this handle *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let dir t = t.dir
let ( // ) = Filename.concat
let man_path t = t.dir // manifest_name
let wal_path t = t.dir // wal_name

let seg_name ~sid ~gen = Printf.sprintf "shard-%03d-g%d.db" sid gen

let is_store_dir (path : string) : bool =
  Sys.file_exists path
  && Sys.is_directory path
  && Sys.file_exists (path // manifest_name)

let rebuild_view (sh : shard) : unit =
  match sh.pending with
  | [] -> sh.view <- sh.db
  | pend ->
      let v = Database.of_entries (Database.entries sh.db) in
      Database.merge ~into:v (Database.of_entries (List.rev pend));
      sh.view <- v

let find_shard t (sid : int) : shard =
  match List.find_opt (fun sh -> sh.sid = sid) t.shards with
  | Some sh -> sh
  | None ->
      Diag.errorf "shardstore %s: routing tree references unknown shard %d"
        t.dir sid

(* ------------------------------------------------------------------ *)
(* Manifest *)

let manifest_body t : string list =
  let tl = tree_to_lines t.tree in
  let ts v = if Float.is_nan v then "-" else Printf.sprintf "%h" v in
  [
    Printf.sprintf "gen %d" t.gen;
    Printf.sprintf "nextid %d" t.next_id;
    Printf.sprintf "consumed %d" t.consumed;
    Printf.sprintf "compacted %s" (ts t.compacted);
    Printf.sprintf "scrubbed %s" (ts t.scrubbed);
    Printf.sprintf "tree %d" (List.length tl);
  ]
  @ tl
  @ [ Printf.sprintf "shards %d" (List.length t.shards) ]
  @ List.map
      (fun sh ->
        Printf.sprintf "shard %d %d %s %s %s" sh.sid sh.declared sh.fp sh.file
          (Option.value sh.ann_file ~default:"-"))
      t.shards

let write_manifest ?fault_label t : unit =
  let body = manifest_body t in
  let ck = Util.fnv1a64 (String.concat "\n" body) in
  Checkpoint.atomic_write ?fault_label (man_path t) (fun oc ->
      output_string oc (man_magic ^ "\n");
      Printf.fprintf oc "checksum %s\n" ck;
      List.iter (fun l -> output_string oc (l ^ "\n")) body);
  t.man_ck <- ck

type man = {
  m_gen : int;
  m_next_id : int;
  m_consumed : int;
  m_compacted : float;
  m_scrubbed : float;
  m_tree : tree;
  m_shards : (int * int * string * string * string option) list;
      (** id, entries, fp, file, ann *)
  m_ck : string;
}

let read_manifest (path : string) : man =
  let fail fmt = Printf.ksprintf (fun m -> Diag.errorf "%s: %s" path m) fmt in
  let lines =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> String.split_on_char '\n' s
    | exception Sys_error m -> Diag.errorf "%s" m
  in
  match lines with
  | magic :: ck_l :: body0 -> (
      if not (String.equal magic man_magic) then
        fail "not a daisy shard manifest (bad magic line %S)" magic;
      let body =
        match List.rev body0 with "" :: r -> List.rev r | _ -> body0
      in
      let ck =
        match String.split_on_char ' ' ck_l with
        | [ "checksum"; ck ] -> ck
        | _ -> fail "malformed checksum line %S" ck_l
      in
      if not (String.equal ck (Util.fnv1a64 (String.concat "\n" body))) then
        fail "manifest checksum mismatch (corrupt manifest)";
      let int_field name = function
        | l :: rest -> (
            match String.split_on_char ' ' l with
            | [ n; v ] when String.equal n name -> (
                match int_of_string_opt v with
                | Some v -> (v, rest)
                | None -> fail "malformed %s line %S" name l)
            | _ -> fail "expected '%s ...', got %S" name l)
        | [] -> fail "truncated manifest (missing %s)" name
      in
      let ts_field name = function
        | l :: rest -> (
            match String.split_on_char ' ' l with
            | [ n; "-" ] when String.equal n name -> (nan, rest)
            | [ n; v ] when String.equal n name -> (
                match float_of_string_opt v with
                | Some v -> (v, rest)
                | None -> fail "malformed %s line %S" name l)
            | _ -> fail "expected '%s ...', got %S" name l)
        | [] -> fail "truncated manifest (missing %s)" name
      in
      let m_gen, body = int_field "gen" body in
      let m_next_id, body = int_field "nextid" body in
      let m_consumed, body = int_field "consumed" body in
      let m_compacted, body = ts_field "compacted" body in
      let m_scrubbed, body = ts_field "scrubbed" body in
      let ntree, body = int_field "tree" body in
      if List.length body < ntree then fail "truncated tree section";
      let tree_lines = Util.take ntree body in
      let body = Util.drop ntree body in
      let m_tree =
        match tree_of_lines tree_lines with
        | Some (tr, []) -> tr
        | _ -> fail "malformed tree section"
      in
      let nshards, body = int_field "shards" body in
      if List.length body <> nshards then
        fail "shard section has %d lines, header says %d" (List.length body)
          nshards;
      let m_shards =
        List.map
          (fun l ->
            match String.split_on_char ' ' l with
            | [ "shard"; id; cnt; fp; file; ann ] -> (
                match (int_of_string_opt id, int_of_string_opt cnt) with
                | Some id, Some cnt ->
                    ( id,
                      cnt,
                      fp,
                      file,
                      if String.equal ann "-" then None else Some ann )
                | _ -> fail "malformed shard line %S" l)
            | _ -> fail "malformed shard line %S" l)
          body
      in
      {
        m_gen;
        m_next_id;
        m_consumed;
        m_compacted;
        m_scrubbed;
        m_tree;
        m_shards;
        m_ck = ck;
      })
  | _ -> fail "truncated manifest"

(* ------------------------------------------------------------------ *)
(* WAL *)

let wal_record (e : Database.entry) : string =
  let lines = Database.entry_to_lines e in
  let ck = Util.fnv1a64 (String.concat "\n" lines) in
  Printf.sprintf "rec %s %d\n%send\n" ck (List.length lines)
    (String.concat "" (List.map (fun l -> l ^ "\n") lines))

(* Parse records from [from] to the end of [s]. Returns the entries of
   every intact record, the byte offset after the last complete record
   (the good end — anything past it is a torn tail), per-record
   warnings, and whether a tail was torn. A complete record with a bad
   checksum or unparseable body is skipped with a warning (replay
   continues past it); an incomplete record stops the replay. *)
let parse_wal_records (s : string) (from : int) :
    Database.entry list * int * string list * bool =
  let len = String.length s in
  let entries = ref [] and warnings = ref [] in
  let pos = ref from and good = ref from and torn = ref false in
  let line_at p =
    if p >= len then None
    else
      match String.index_from_opt s p '\n' with
      | None -> None
      | Some nl -> Some (String.sub s p (nl - p), nl + 1)
  in
  while (not !torn) && !pos < len do
    let start = !pos in
    match line_at start with
    | None -> torn := true
    | Some (hdr, p1) -> (
        match String.split_on_char ' ' hdr with
        | [ "rec"; ck; nl_s ] -> (
            match int_of_string_opt nl_s with
            | Some nlines when nlines >= 0 && nlines <= 64 -> (
                let rec body acc p i =
                  if i = 0 then
                    match line_at p with
                    | Some ("end", p') -> Some (List.rev acc, p')
                    | _ -> None
                  else
                    match line_at p with
                    | Some (l, p') -> body (l :: acc) p' (i - 1)
                    | None -> None
                in
                match body [] p1 nlines with
                | None -> torn := true
                | Some (lines, p') -> (
                    pos := p';
                    good := p';
                    if
                      String.equal ck
                        (Util.fnv1a64 (String.concat "\n" lines))
                    then
                      match Database.entry_of_lines lines with
                      | Ok e -> entries := e :: !entries
                      | Error m ->
                          warnings :=
                            Printf.sprintf
                              "WAL record at byte %d: unparseable entry (%s)"
                              start m
                            :: !warnings
                    else
                      warnings :=
                        Printf.sprintf
                          "WAL record at byte %d: checksum mismatch" start
                        :: !warnings))
            | _ -> torn := true)
        | _ -> torn := true)
  done;
  (List.rev !entries, !good, List.rev !warnings, !torn)

let read_wal (path : string) : string =
  if Sys.file_exists path then
    In_channel.with_open_bin path In_channel.input_all
  else ""

(* Append [records] to the WAL and fsync. The ["shard_wal"] fault point
   fires once per record, {e between} the two halves of its bytes — a
   process killed there leaves a torn tail (dropped on replay); a mere
   exception rolls the file back to the pre-batch size, so a surviving
   handle sees append as all-or-nothing. *)
let wal_append t (records : string list) : unit =
  if t.wal_torn then begin
    (* a previous append on this handle died mid-record; drop the tear
       before writing after it *)
    (try Unix.truncate (wal_path t) t.wal_size with Unix.Unix_error _ -> ());
    t.wal_torn <- false
  end;
  let fresh = not (Sys.file_exists (wal_path t)) in
  let fd =
    Unix.openfile (wal_path t) Unix.[ O_WRONLY; O_CREAT; O_APPEND ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let write s off len =
        let n = ref off in
        while !n < off + len do
          n := !n + Unix.write_substring fd s !n (off + len - !n)
        done
      in
      if fresh then begin
        write wal_header 0 (String.length wal_header);
        t.wal_size <- String.length wal_header
      end;
      let base = t.wal_size in
      (try
         List.iter
           (fun r ->
             let len = String.length r in
             let half = (len + 1) / 2 in
             write r 0 half;
             Fault.inject "shard_wal";
             write r half (len - half);
             t.wal_size <- t.wal_size + len)
           records
       with e ->
         (* an exception mid-batch (injected fault, disk full) rolls the
            file back: append is all-or-nothing for a surviving handle.
            Only a process crash leaves the torn tail, which replay-on-
            open drops. *)
         (match Unix.ftruncate fd base with
         | () -> t.wal_size <- base
         | exception Unix.Unix_error _ -> t.wal_torn <- true);
         (try Unix.fsync fd with Unix.Unix_error _ -> ());
         raise e);
      Unix.fsync fd)

let reset_wal t : unit =
  Checkpoint.atomic_write (wal_path t) (fun oc -> output_string oc wal_header);
  t.wal_size <- String.length wal_header;
  t.consumed <- String.length wal_header;
  t.wal_torn <- false

(* ------------------------------------------------------------------ *)
(* Segment load + quarantine *)

let quarantine_shard t (sh : shard) (reason : string) : unit =
  if not sh.quarantined then begin
    sh.quarantined <- true;
    Atomic.incr quarantine_count;
    Diag.warn_throttled ~label:"shard_quarantine"
      "shardstore %s: shard %d quarantined (%s); serving %d surviving \
       entries by scan"
      t.dir sh.sid reason (Database.size sh.db)
  end

(* Load a shard's segment (and sidecar) from disk into [sh.db]. Any
   whole-file failure, per-entry corruption, or fingerprint mismatch
   quarantines the shard — it keeps serving whatever loaded, by scan. A
   bad sidecar alone never quarantines: the shard just loses its index
   acceleration. *)
let load_segment t (sh : shard) : unit =
  let path = t.dir // sh.file in
  match Database.load path with
  | exception Diag.Error d -> quarantine_shard t sh (Diag.to_string d)
  | exception Sys_error m -> quarantine_shard t sh m
  | db, warnings -> (
      sh.db <- db;
      let fp = Database.fingerprint db in
      if warnings <> [] then
        quarantine_shard t sh
          (Printf.sprintf "%d corrupt entries" (List.length warnings))
      else if not (String.equal fp sh.fp) then
        quarantine_shard t sh
          (Printf.sprintf "fingerprint mismatch (manifest %s, segment %s)"
             sh.fp fp)
      else
        match sh.ann_file with
        | None -> ()
        | Some ann -> (
            match Database.load_index db (t.dir // ann) with
            | Ok _ -> ()
            | Error reason ->
                Diag.warn_throttled ~label:"shard_sidecar"
                  "shardstore %s: shard %d sidecar unusable (%s); queries \
                   fall back to scan"
                  t.dir sh.sid reason))

(* Remove generation files no manifest entry references, plus crashed
   [atomic_write] temps ([<name>.tmp.<pid>]) — leftovers of a
   compaction or repair that died before its manifest rename. Safe
   against live readers: entries are always materialised in memory, so
   yanking an old paged sidecar at worst downgrades an in-flight handle
   to the scan path. *)
let gc_orphans t : unit =
  let live =
    List.concat_map (fun sh -> [ sh.file; sh.file ^ ".ann" ]) t.shards
  in
  let has_infix hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
    go 0
  in
  Array.iter
    (fun f ->
      let stale =
        has_infix f ".tmp."
        || String.length f >= 6
           && String.equal (String.sub f 0 6) "shard-"
           && (Filename.check_suffix f ".db"
             || Filename.check_suffix f ".db.ann")
           && not (List.mem f live)
      in
      if stale then try Sys.remove (t.dir // f) with Sys_error _ -> ())
    (try Sys.readdir t.dir with Sys_error _ -> [||])

(* ------------------------------------------------------------------ *)
(* Open / create *)

let replay_wal ?(truncate_tear = false) t : int =
  let s = read_wal (wal_path t) in
  let len = String.length s in
  let hdr =
    let h = String.length wal_header in
    if len >= h && String.equal (String.sub s 0 h) wal_header then h
    else if len = 0 then 0
    else Diag.errorf "shardstore %s: %s is not a daisy WAL" t.dir wal_name
  in
  let start =
    (* records before [consumed] are folded into segments; a [consumed]
       outside the file (a trim raced a crash) clamps to the header, and
       over-replaying the prefix is absorbed by merge dedup *)
    if t.consumed > len || t.consumed < hdr then hdr else t.consumed
  in
  t.consumed <- start;
  let entries, good, warnings, torn = parse_wal_records s start in
  List.iter
    (fun w -> Diag.warn_throttled ~label:"shard_wal_replay" "shardstore %s: %s" t.dir w)
    warnings;
  if torn then begin
    Diag.warn_throttled ~label:"shard_wal_replay"
      "shardstore %s: dropped torn WAL tail (%d bytes)" t.dir
      (String.length s - good);
    if truncate_tear then
      try Unix.truncate (wal_path t) good with Unix.Unix_error _ -> ()
  end;
  t.wal_size <- good;
  t.wal_torn <- false;
  List.iter
    (fun (e : Database.entry) ->
      let sh = find_shard t (route t.tree e.embedding) in
      sh.pending <- e :: sh.pending)
    entries;
  List.iter
    (fun sh ->
      sh.pending <- List.rev sh.pending;
      rebuild_view sh)
    t.shards;
  List.length entries

let open_ ?(shard_cap = default_shard_cap) (dirname : string) : t =
  let m = read_manifest (dirname // manifest_name) in
  let t =
    {
      dir = dirname;
      shard_cap;
      lock = Mutex.create ();
      gen = m.m_gen;
      next_id = m.m_next_id;
      tree = m.m_tree;
      shards = [];
      compacted = m.m_compacted;
      scrubbed = m.m_scrubbed;
      man_ck = m.m_ck;
      consumed = m.m_consumed;
      wal_size = 0;
      wal_torn = false;
    }
  in
  t.shards <-
    List.map
      (fun (sid, declared, fp, file, ann_file) ->
        let empty = Database.create () in
        {
          sid;
          file;
          fp;
          ann_file;
          declared;
          db = empty;
          pending = [];
          view = empty;
          quarantined = false;
        })
      (List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b) m.m_shards);
  (* every tree leaf must resolve *)
  List.iter (fun id -> ignore (find_shard t id)) (tree_leaves t.tree);
  List.iter (fun sh -> load_segment t sh) t.shards;
  List.iter (fun sh -> rebuild_view sh) t.shards;
  gc_orphans t;
  ignore (replay_wal ~truncate_tear:true t);
  t

(* Write one shard's segment + sidecar for generation [gen]; returns the
   updated (file, fp, ann_file, declared). [fault] names the injection
   point fired before the segment write. *)
let write_segment t ~fault ~gen (sid : int) (db : Database.t) :
    string * string * string option * int =
  let file = seg_name ~sid ~gen in
  Fault.inject fault;
  Database.save db (t.dir // file);
  let fp = Database.fingerprint db in
  let ann_file =
    if Database.size db = 0 then None
    else begin
      Atomic.incr ann_build_count;
      ignore (Database.rebuild_index db (t.dir // (file ^ ".ann")));
      Some (file ^ ".ann")
    end
  in
  (file, fp, ann_file, Database.size db)

let create ?(shard_cap = default_shard_cap) ?(overwrite = false)
    (dirname : string) (db : Database.t) : t =
  if (not overwrite) && is_store_dir dirname then
    Diag.errorf "shardstore %s: already a store (pass overwrite to replace)"
      dirname;
  if not (Sys.file_exists dirname) then Unix.mkdir dirname 0o755;
  let chron = Array.of_list (List.rev (Database.entries db)) in
  let next_id = ref 0 in
  let tree, parts = build_partition ~cap:shard_cap next_id chron in
  let t =
    {
      dir = dirname;
      shard_cap;
      lock = Mutex.create ();
      gen = 1;
      next_id = !next_id;
      tree;
      shards = [];
      compacted = nan;
      scrubbed = nan;
      man_ck = "";
      consumed = String.length wal_header;
      wal_size = 0;
      wal_torn = false;
    }
  in
  t.shards <-
    List.map
      (fun (sid, es) ->
        let sdb =
          Database.of_entries (List.rev (Array.to_list es))
        in
        let file, fp, ann_file, declared =
          write_segment t ~fault:"shard_compact" ~gen:t.gen sid sdb
        in
        {
          sid;
          file;
          fp;
          ann_file;
          declared;
          db = sdb;
          pending = [];
          view = sdb;
          quarantined = false;
        })
      parts;
  reset_wal t;
  write_manifest ~fault_label:"shard_compact" t;
  gc_orphans t;
  t

(* A failed compaction/scrub (injected fault, IO error) can leave the
   in-memory handle mid-mutation; disk, though, is always a consistent
   pre- or post-state. Reload it so the handle survives. Caller holds
   the lock. *)
let reload_in_place t : unit =
  let t' = open_ ~shard_cap:t.shard_cap t.dir in
  t.gen <- t'.gen;
  t.next_id <- t'.next_id;
  t.tree <- t'.tree;
  t.shards <- t'.shards;
  t.compacted <- t'.compacted;
  t.scrubbed <- t'.scrubbed;
  t.man_ck <- t'.man_ck;
  t.consumed <- t'.consumed;
  t.wal_size <- t'.wal_size;
  t.wal_torn <- t'.wal_torn

(* ------------------------------------------------------------------ *)
(* Append *)

let append t (es : Database.entry list) : unit =
  if es = [] then ()
  else
    with_lock t (fun () ->
        wal_append t (List.map wal_record es);
        List.iter
          (fun (e : Database.entry) ->
            let sh = find_shard t (route t.tree e.embedding) in
            sh.pending <- sh.pending @ [ e ];
            rebuild_view sh)
          es)

(* ------------------------------------------------------------------ *)
(* Compaction *)

let compact_locked ~now t : int =
  let affected =
        List.filter (fun sh -> sh.pending <> [] && not sh.quarantined) t.shards
      in
      if affected = [] then 0
      else begin
        let gen = t.gen + 1 in
        (* fold committed + pending, splitting shards past the cap; all
           new-generation files land before the manifest rename commits
           them, so a crash anywhere up to the rename is the pre-state
           (the orphans are collected on the next open) *)
        let rewritten = ref 0 in
        let new_shards, removed =
          List.fold_left
            (fun (acc, removed) sh ->
              if not (List.memq sh affected) then (sh :: acc, removed)
              else begin
                let folded = Database.of_entries (Database.entries sh.view) in
                if Database.size folded > t.shard_cap then begin
                  let chron =
                    Array.of_list (List.rev (Database.entries folded))
                  in
                  let next = ref t.next_id in
                  let sub, parts = build_partition ~cap:t.shard_cap next chron in
                  (* an unsplittable oversized shard keeps its leaf *)
                  match parts with
                  | [ _ ] ->
                      let file, fp, ann_file, declared =
                        write_segment t ~fault:"shard_compact" ~gen sh.sid
                          folded
                      in
                      incr rewritten;
                      ( {
                          sh with
                          file;
                          fp;
                          ann_file;
                          declared;
                          db = folded;
                          pending = [];
                          view = folded;
                        }
                        :: acc,
                        removed )
                  | _ ->
                      t.next_id <- !next;
                      t.tree <- replace_leaf t.tree sh.sid sub;
                      let subs =
                        List.map
                          (fun (sid, es) ->
                            let sdb =
                              Database.of_entries (List.rev (Array.to_list es))
                            in
                            let file, fp, ann_file, declared =
                              write_segment t ~fault:"shard_compact" ~gen sid
                                sdb
                            in
                            incr rewritten;
                            {
                              sid;
                              file;
                              fp;
                              ann_file;
                              declared;
                              db = sdb;
                              pending = [];
                              view = sdb;
                              quarantined = false;
                            })
                          parts
                      in
                      (List.rev_append subs acc, sh :: removed)
                end
                else begin
                  let file, fp, ann_file, declared =
                    write_segment t ~fault:"shard_compact" ~gen sh.sid folded
                  in
                  incr rewritten;
                  ( {
                      sh with
                      file;
                      fp;
                      ann_file;
                      declared;
                      db = folded;
                      pending = [];
                      view = folded;
                    }
                    :: acc,
                    removed )
                end
              end)
            ([], []) t.shards
        in
        ignore removed;
        t.shards <- List.sort (fun a b -> compare a.sid b.sid) new_shards;
        t.gen <- gen;
        t.compacted <- now;
        (* Commit protocol: the WAL file is never replaced, so a
           concurrent appender in another process is safe — the manifest
           rename just advances [consumed] past every record folded
           here; anything a racing appender writes lands after the
           boundary and replays normally. Quarantined shards' pending
           records are re-appended past the boundary first so they
           survive a reopen; a crash between that append and the rename
           leaves them duplicated in the WAL, which replay dedups. *)
        let fold_boundary = t.wal_size in
        let held =
          List.concat_map
            (fun sh -> if sh.quarantined then sh.pending else [])
            t.shards
        in
        if held <> [] then wal_append t (List.map wal_record held);
        t.consumed <- fold_boundary;
        write_manifest ~fault_label:"shard_compact" t;
        gc_orphans t;
        !rewritten
      end

let compact ?(now = nan) t : int =
  with_lock t (fun () ->
      try compact_locked ~now t
      with e ->
        reload_in_place t;
        raise e)

(* ------------------------------------------------------------------ *)
(* Scrub *)

type scrub_report = {
  sr_shards : int;
  sr_corrupt : int;
  sr_repaired : int;
  sr_sidecars_rebuilt : int;
  sr_entries_lost : int;
}

let scrub_locked ~repair ~now t : scrub_report =
      let corrupt = ref 0
      and repaired = ref 0
      and sidecars = ref 0
      and lost = ref 0 in
      let dirty = ref false in
      let gen = t.gen + 1 in
      List.iter
        (fun sh ->
          let path = t.dir // sh.file in
          let disk_ok =
            match Database.load path with
            | exception Diag.Error _ -> false
            | exception Sys_error _ -> false
            | db, warnings ->
                warnings = []
                && String.equal (Database.fingerprint db) sh.fp
          in
          if not disk_ok then begin
            incr corrupt;
            quarantine_shard t sh "scrub: segment failed verification";
            if repair then begin
              (* the in-memory view (survivors + WAL replay) is the best
                 recovery we have; write it as a fresh generation *)
              let folded = Database.of_entries (Database.entries sh.view) in
              let file, fp, ann_file, declared =
                write_segment t ~fault:"shard_scrub" ~gen sh.sid folded
              in
              lost := !lost + max 0 (sh.declared - declared);
              sh.file <- file;
              sh.fp <- fp;
              sh.ann_file <- ann_file;
              sh.declared <- declared;
              sh.db <- folded;
              sh.pending <- [];
              sh.view <- folded;
              sh.quarantined <- false;
              incr repaired;
              dirty := true
            end
          end
          else
            (* segment intact: deep-verify the sidecar *)
            match sh.ann_file with
            | None -> ()
            | Some ann -> (
                match Ann.verify ~path:(t.dir // ann) ~fingerprint:sh.fp with
                | Ok _ -> ()
                | Error reason ->
                    Diag.warn_throttled ~label:"shard_sidecar"
                      "shardstore %s: shard %d sidecar failed scrub (%s)"
                      t.dir sh.sid reason;
                    if repair then begin
                      Atomic.incr ann_build_count;
                      ignore (Database.rebuild_index sh.db (t.dir // ann));
                      incr sidecars;
                      dirty := true
                    end))
        t.shards;
      t.scrubbed <- now;
      if !dirty then t.gen <- gen;
      write_manifest ~fault_label:"shard_scrub" t;
      gc_orphans t;
      {
        sr_shards = List.length t.shards;
        sr_corrupt = !corrupt;
        sr_repaired = !repaired;
        sr_sidecars_rebuilt = !sidecars;
        sr_entries_lost = !lost;
      }

let scrub ?(repair = true) ?(now = nan) t : scrub_report =
  with_lock t (fun () ->
      try scrub_locked ~repair ~now t
      with e ->
        reload_in_place t;
        raise e)

(* ------------------------------------------------------------------ *)
(* WAL trim *)

(* Drop the consumed WAL prefix (appends never shrink it; only this
   does). Only call at a known single-writer moment — daemon startup,
   the end of a seeding run — because a record another process appends
   between the read and the rename would be lost. Crash-safe: the
   manifest commits [consumed = header] {e before} the file shrinks, so
   a crash between the two re-replays the folded prefix on the next
   open, which merge dedup absorbs. Returns the bytes dropped. *)
let trim_wal t : int =
  with_lock t (fun () ->
      let hdr = String.length wal_header in
      if t.wal_torn then 0
      else
        let s = read_wal (wal_path t) in
        let len = String.length s in
        let boundary =
          if t.consumed > len || t.consumed < hdr then hdr else t.consumed
        in
        if boundary <= hdr || len < hdr then 0
        else begin
          let tail = String.sub s boundary (len - boundary) in
          t.consumed <- hdr;
          write_manifest t;
          Checkpoint.atomic_write (wal_path t) (fun oc ->
              output_string oc wal_header;
              output_string oc tail);
          t.wal_size <- hdr + max 0 (t.wal_size - boundary);
          boundary - hdr
        end)

(* ------------------------------------------------------------------ *)
(* Refresh (reader following an external writer) *)

let refresh t : [ `Unchanged | `Changed of int * int ] =
  with_lock t (fun () ->
      let m = read_manifest (man_path t) in
      if String.equal m.m_ck t.man_ck then begin
        (* manifest unchanged: only the WAL can have grown *)
        let s = read_wal (wal_path t) in
        if String.length s <= t.wal_size then `Unchanged
        else begin
          let entries, good, _warnings, _torn =
            (* no tear-truncation here: the writer may be mid-append *)
            parse_wal_records s t.wal_size
          in
          t.wal_size <- good;
          List.iter
            (fun (e : Database.entry) ->
              let sh = find_shard t (route t.tree e.embedding) in
              sh.pending <- sh.pending @ [ e ];
              rebuild_view sh)
            entries;
          if entries = [] then `Unchanged
          else `Changed (0, List.length entries)
        end
      end
      else begin
        (* a compaction/scrub/recreate landed: rebuild the shard list,
           reusing any in-memory shard whose (file, fingerprint) is
           unchanged — those keep their loaded segment and sidecar *)
        let old = t.shards in
        t.gen <- m.m_gen;
        t.next_id <- m.m_next_id;
        t.tree <- m.m_tree;
        t.compacted <- m.m_compacted;
        t.scrubbed <- m.m_scrubbed;
        t.man_ck <- m.m_ck;
        let swapped = ref 0 in
        t.shards <-
          List.map
            (fun (sid, declared, fp, file, ann_file) ->
              match
                List.find_opt
                  (fun sh ->
                    String.equal sh.file file
                    && String.equal sh.fp fp
                    && not sh.quarantined)
                  old
              with
              | Some sh ->
                  sh.pending <- [];
                  sh.view <- sh.db;
                  { sh with sid; declared; ann_file }
              | None ->
                  incr swapped;
                  let empty = Database.create () in
                  let sh =
                    {
                      sid;
                      file;
                      fp;
                      ann_file;
                      declared;
                      db = empty;
                      pending = [];
                      view = empty;
                      quarantined = false;
                    }
                  in
                  load_segment t sh;
                  sh)
            (List.sort
               (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b)
               m.m_shards);
        List.iter (fun id -> ignore (find_shard t id)) (tree_leaves t.tree);
        t.consumed <- m.m_consumed;
        t.wal_size <- 0;
        let appended = replay_wal t in
        `Changed (!swapped, appended)
      end)

(* ------------------------------------------------------------------ *)
(* Queries *)

let snapshot_views t : Database.t list =
  with_lock t (fun () -> List.map (fun sh -> sh.view) t.shards)

let size t : int =
  List.fold_left (fun a v -> a + Database.size v) 0 (snapshot_views t)

let entries t : Database.entry list =
  List.concat_map Database.entries (snapshot_views t)

(* Exact cross-shard top-k: each shard's view answers its own top-k
   (ANN-accelerated when the shard has no pending entries, scan
   otherwise), and the union re-ranks under [Embedding.nearest_by] —
   the same ranking key as the monolithic scan. Routing sends bit-equal
   embeddings to one shard, so cross-shard ties beyond [compare_key]
   cannot occur, and within a shard the view preserves arrival order:
   the merged top-k is bit-identical to the monolithic scan. *)
let query_embedding t ~k (q : Embedding.t) : (float * Database.entry) list =
  if k <= 0 then []
  else
    let views = snapshot_views t in
    let union =
      List.concat_map
        (fun v -> List.map snd (Database.query_embedding v ~k q))
        views
    in
    Embedding.nearest_by
      ~embed:(fun (e : Database.entry) -> e.embedding)
      k union q

let exact_matches_hash t (h : int) : Database.entry list =
  List.concat_map
    (fun v -> Database.exact_matches_hash v h)
    (snapshot_views t)

(* Logical content fingerprint: the checksum of every entry body,
   sorted — invariant under partitioning, compaction and splits, so hot
   reload only swaps when the {e contents} changed. *)
let fingerprint t : string =
  let bodies =
    List.concat_map
      (fun v ->
        List.map
          (fun e -> String.concat "\n" (Database.entry_to_lines e))
          (Database.entries v))
      (snapshot_views t)
  in
  Util.fnv1a64 (String.concat "\n\n" (List.sort String.compare bodies))

let as_database t : Database.t =
  Database.of_backend
    {
      Database.b_size = (fun () -> size t);
      b_entries = (fun () -> entries t);
      b_query = (fun ~k q -> query_embedding t ~k q);
      b_exact = (fun h -> exact_matches_hash t h);
      b_fingerprint = (fun () -> fingerprint t);
    }

(* ------------------------------------------------------------------ *)
(* Stats *)

type stats = {
  st_shards : int;
  st_entries : int;
  st_wal_depth : int;
  st_quarantined : int;
  st_gen : int;
  st_compacted : float;  (** unix seconds; [nan] = never *)
  st_scrubbed : float;
}

let stats t : stats =
  with_lock t (fun () ->
      {
        st_shards = List.length t.shards;
        st_entries =
          List.fold_left (fun a sh -> a + Database.size sh.view) 0 t.shards;
        st_wal_depth =
          List.fold_left (fun a sh -> a + List.length sh.pending) 0 t.shards;
        st_quarantined =
          List.length (List.filter (fun sh -> sh.quarantined) t.shards);
        st_gen = t.gen;
        st_compacted = t.compacted;
        st_scrubbed = t.scrubbed;
      })

let wal_depth t : int = (stats t).st_wal_depth
