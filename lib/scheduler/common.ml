(** Shared context and evaluation helpers for all schedulers. *)

module Ir = Daisy_loopir.Ir
module Config = Daisy_machine.Config
module Cost = Daisy_machine.Cost
module Legality = Daisy_dependence.Legality
module Affine = Daisy_poly.Affine

type ctx = {
  config : Config.t;
  sizes : (string * int) list;  (** concrete problem sizes for simulation *)
  threads : int;
  sample_outer : int;  (** outer-loop sampling bound, 0 = exact *)
  engine : Cost.engine;  (** trace engine used for every evaluation *)
  eval_steps : int option;
      (** per-evaluation step budget; [None] = unlimited *)
  eval_deadline : float option;
      (** per-candidate wall-clock deadline in seconds for supervised
          search evaluation; [None] = unlimited *)
  sim_memo : Cost.sim_memo option;
      (** cross-candidate simulation memo shared by every evaluation
          under this context (and safe across domains); [None] disables
          memoization *)
}

(* The memo is exact (content-addressed trace sections), so it defaults
   on; DAISY_SIM_MEMO=0 turns it off for differential/debug runs. *)
let sim_memo_default () =
  match Sys.getenv_opt "DAISY_SIM_MEMO" with Some "0" -> false | _ -> true

let make_ctx ?(config = Config.default) ?(threads = config.Config.cores)
    ?(sample_outer = 12) ?(engine = Cost.Bytecode) ?eval_steps ?eval_deadline
    ?sim_memo ~sizes () =
  let sim_memo =
    match sim_memo with
    | Some m -> Some m
    | None -> if sim_memo_default () then Some (Cost.sim_memo_create config)
              else None
  in
  { config; sizes; threads; sample_outer; engine; eval_steps; eval_deadline;
    sim_memo }

(** Derive a per-request evaluation context from a long-lived base
    context — the serving layer's entry point. The derived context
    shares the machine config, thread count, sampling bound and the
    cross-candidate simulation memo (content-addressed, so sharing it
    across requests is always safe), while the evaluation knobs — trace
    engine, step fuel, wall deadline, problem sizes — are overridden per
    request. *)
let request_ctx (base : ctx) ?engine ?eval_steps ?eval_deadline ?sizes () :
    ctx =
  {
    base with
    engine = Option.value ~default:base.engine engine;
    eval_steps =
      (match eval_steps with Some _ -> eval_steps | None -> base.eval_steps);
    eval_deadline =
      (match eval_deadline with
      | Some _ -> eval_deadline
      | None -> base.eval_deadline);
    sizes = Option.value ~default:base.sizes sizes;
  }

(** Simulated runtime in milliseconds. Every evaluation goes through
    {!Cost.evaluate_guarded}: a fresh step budget per candidate
    ([Budget.Exhausted] escapes for the caller to penalize) and a
    transparent step down the bytecode -> compiled -> tree engine chain
    on engine failure. *)
let runtime_ms (ctx : ctx) (p : Ir.program) : float =
  Cost.milliseconds
    (Cost.evaluate_guarded ctx.config p ~sizes:ctx.sizes ~threads:ctx.threads
       ~sample_outer:ctx.sample_outer ~engine:ctx.engine ?steps:ctx.eval_steps
       ?memo:ctx.sim_memo ())

(** Full report (for L1 statistics, FLOP/s). *)
let report (ctx : ctx) (p : Ir.program) : Cost.report =
  Cost.evaluate_guarded ctx.config p ~sizes:ctx.sizes ~threads:ctx.threads
    ~sample_outer:ctx.sample_outer ~engine:ctx.engine ?steps:ctx.eval_steps
    ?memo:ctx.sim_memo ()

(** Simulation-memo statistics of a context: [(hits, misses)], or [None]
    when memoization is off. *)
let sim_memo_stats (ctx : ctx) : (int * int) option =
  Option.map Cost.sim_memo_stats ctx.sim_memo

(** A program containing a single top-level node, sharing the array
    declarations of [p] — used to evaluate candidate schedules per nest. *)
let single_nest_program (p : Ir.program) (n : Ir.node) : Ir.program =
  { p with Ir.body = [ n ] }

(** Runtime of one nest in isolation. *)
let nest_runtime_ms (ctx : ctx) (p : Ir.program) (n : Ir.node) : float =
  runtime_ms ctx (single_nest_program p n)

(* ------------------------------------------------------------------ *)
(* Static helpers shared by the baseline models                         *)

(** Innermost loops of a subtree (loops containing no loops). *)
let rec innermost_loops (nodes : Ir.node list) : Ir.loop list =
  List.concat_map
    (fun n ->
      match n with
      | Ir.Nloop l ->
          let inner = innermost_loops l.Ir.body in
          if inner = [] then [ l ] else inner
      | _ -> [])
    nodes

(** A cheap static profitability test for vectorization: the majority of
    array accesses must be unit-stride or invariant w.r.t. [iter], and the
    body must be small enough for the compiler's vectorizer not to give up
    (register pressure and control complexity defeat auto-vectorization of
    very large inlined bodies — the CLOUDSC situation, paper §5.1). *)
let vector_profitable (l : Ir.loop) : bool =
  let comps = Ir.comps_in l.Ir.body in
  List.length comps <= 10 &&
  let accesses =
    List.concat_map
      (fun c -> Ir.comp_array_reads c @ Ir.comp_array_writes c)
      comps
  in
  if accesses = [] then false
  else
    let friendly =
      List.length
        (List.filter
           (fun (a : Ir.access) ->
             match a.Ir.indices with
             | [] -> true
             | idx -> (
                 let affs = List.map Affine.of_expr idx in
                 if List.exists (fun o -> o = None) affs then false
                 else
                   let coeffs =
                     List.map
                       (function
                         | Some aff -> Affine.coeff l.Ir.iter aff
                         | None -> 0)
                       affs
                   in
                   let rec last = function
                     | [] -> 0
                     | [ x ] -> x
                     | _ :: r -> last r
                   in
                   let rec init_ = function
                     | [] | [ _ ] -> []
                     | x :: r -> x :: init_ r
                   in
                   abs (last coeffs) <= 1
                   && List.for_all (fun c -> c = 0) (init_ coeffs)))
           accesses)
    in
    2 * friendly >= List.length accesses

(** All subscripts and bounds of a nest are affine and no computation is
    guarded — the SCoP condition a Polly-style lifter needs. *)
let scop_compatible (n : Ir.node) : bool =
  let ok_expr e = Affine.of_expr e <> None in
  let rec ok = function
    | Ir.Ncomp c ->
        c.Ir.guard = None
        && List.for_all
             (fun (a : Ir.access) -> List.for_all ok_expr a.Ir.indices)
             (Ir.comp_array_reads c @ Ir.comp_array_writes c)
        && no_select c.Ir.rhs
    | Ir.Ncall _ -> true
    | Ir.Nloop l ->
        ok_expr l.Ir.lo && ok_expr l.Ir.hi && List.for_all ok l.Ir.body
  and no_select = function
    | Ir.Vselect _ -> false
    | Ir.Vbin (_, a, b) -> no_select a && no_select b
    | Ir.Vneg a -> no_select a
    | Ir.Vcall (_, args) -> List.for_all no_select args
    | Ir.Vfloat _ | Ir.Vint _ | Ir.Vread _ | Ir.Vscalar _ -> true
  in
  ok n

(** Liftability of a nest to the symbolic representation (paper §3).

    Beyond the SCoP conditions, the dataflow lifting rejects loop nests that
    store to the same array through {e transposed} subscript vectors (e.g.
    [corr[i][j] = ...; corr[j][i] = corr[i][j]]): the produced-data subset
    computation cannot express the self-transposed alias. This reproduces
    the paper's §4.1 observation that the normalization passes fail to lift
    specific loop nests of correlation and covariance. *)
let transposed_self_alias (n : Ir.node) : bool =
  let writes = Ir.node_array_writes n in
  let affine_vector (a : Ir.access) =
    List.fold_left
      (fun acc e ->
        match (acc, Affine.of_expr e) with
        | Some vs, Some aff -> Some (vs @ [ aff ])
        | _ -> None)
      (Some []) a.Ir.indices
  in
  List.exists
    (fun ((w1 : Ir.access), (w2 : Ir.access)) ->
      String.equal w1.Ir.array w2.Ir.array
      &&
      match (affine_vector w1, affine_vector w2) with
      | Some v1, Some v2 ->
          (* a non-identity permutation of the same subscript multiset *)
          (not (List.equal Affine.equal v1 v2))
          && List.equal Affine.equal
               (List.sort Affine.compare v1)
               (List.sort Affine.compare v2)
      | _ -> false)
    (Daisy_support.Util.pairs writes)

(** Can this nest be lifted for normalization and scheduling? *)
let liftable (n : Ir.node) : bool =
  scop_compatible n && not (transposed_self_alias n)

(** [wrap_outer outer n] — rebuild the chain of enclosing loops around a
    single node (used to evaluate a schedulable unit in its loop context). *)
let wrap_outer (outer : Ir.loop list) (n : Ir.node) : Ir.node =
  List.fold_right
    (fun (l : Ir.loop) inner ->
      Ir.Nloop { l with Ir.lid = Ir.fresh_id (); body = [ inner ] })
    outer n

(** Schedulable units: the loop nests an auto-scheduler actually optimizes,
    each paired with the sequential loops enclosing it. A nest whose
    perfect band bottoms out in loops only (e.g. a time loop over stencil
    sweeps) is not itself a unit — its sub-loops are. *)
let rec schedulable_units ~(outer : Ir.loop list) (l : Ir.loop) :
    (Ir.loop list * Ir.loop) list =
  let band, body = Legality.perfect_band l in
  let has_comp =
    List.exists (function Ir.Ncomp _ | Ir.Ncall _ -> true | _ -> false) body
  in
  let subloops = List.filter_map (function Ir.Nloop x -> Some x | _ -> None) body in
  if subloops = [] || has_comp then [ (outer, l) ]
  else
    List.concat_map (schedulable_units ~outer:(outer @ band)) subloops

(** All schedulable units of a program. *)
let program_units (p : Ir.program) : (Ir.loop list * Ir.loop) list =
  List.concat_map
    (function Ir.Nloop l -> schedulable_units ~outer:[] l | _ -> [])
    p.Ir.body

(** Transform each top-level nest of a program. *)
let map_top_nests (f : Ir.loop -> Ir.node) (p : Ir.program) : Ir.program =
  {
    p with
    Ir.body =
      List.map
        (fun n -> match n with Ir.Nloop l -> f l | other -> other)
        p.Ir.body;
  }
