(** Database seeding (paper §4): evolve recipes for every schedulable unit
    of the normalized A variants — epoch 1 seeded from Tiramisu-style
    proposals, later epochs re-seeded from the best recipes of the most
    similar nests. *)

val snapshot_to_lines : Evolve.snapshot -> string list
val snapshot_of_lines : string list -> Evolve.snapshot option
(** Journal serialization of one search's generation snapshot — an exact
    round-trip ([%h] floats, printed recipes), exposed for the kill/resume
    differential tests. *)

val seed_database :
  ?epochs:int ->
  ?population:int ->
  ?iterations:int ->
  ?pool:Daisy_support.Pool.t ->
  ?journal:Daisy_support.Checkpoint.journal ->
  ?quarantine:Quarantine.t ->
  ?on_epoch:(int -> Database.t -> unit) ->
  Common.ctx ->
  db:Database.t ->
  (string * Daisy_loopir.Ir.program) list ->
  unit
(** Every epoch evaluates all nests against a snapshot of the bests taken
    at the start of the epoch, so [?pool] parallelizes the per-nest
    searches with results bit-identical to the sequential path.

    [journal] makes seeding crash-safe and resumable: per-nest search
    snapshots are checkpointed every generation, completed nests and
    committed epochs collapse into compact records, and a run resumed
    from any kill point finishes with a bit-identical database (at any
    job count). [quarantine] supervises candidate evaluation (see
    {!Evolve.search}). [on_epoch] receives, after each committed epoch,
    a partial database of the bests so far — built exactly like the
    final one, so callers can flush it to disk as a usable intermediate
    result. Interrupts ([Daisy_support.Checkpoint.check_interrupt]) are
    polled at epoch and nest boundaries and between generations. *)
