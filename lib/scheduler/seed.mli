(** Database seeding (paper §4): evolve recipes for every schedulable unit
    of the normalized A variants — epoch 1 seeded from Tiramisu-style
    proposals, later epochs re-seeded from the best recipes of the most
    similar nests. *)

val seed_database :
  ?epochs:int ->
  ?population:int ->
  ?iterations:int ->
  ?pool:Daisy_support.Pool.t ->
  Common.ctx ->
  db:Database.t ->
  (string * Daisy_loopir.Ir.program) list ->
  unit
(** Every epoch evaluates all nests against a snapshot of the bests taken
    at the start of the epoch, so [?pool] parallelizes the per-nest
    searches with results bit-identical to the sequential path. *)
