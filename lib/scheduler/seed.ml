(** Database seeding (paper §4): collect all loop nests from the normalized
    A variants; BLAS-3 nests get idiom-detection recipes (handled directly
    by {!Daisy_blas.Patterns} at scheduling time); the rest are optimized by
    the evolutionary search — epoch 1 seeded from Tiramisu-style proposals,
    epochs 2 and 3 re-seeded from the current best recipes of the ten most
    similar loop nests (Euclidean distance of performance embeddings).

    Each epoch reads the best recipes as they stood at the {e start} of the
    epoch and commits all updates at the end (Jacobi-style, not
    Gauss-Seidel): every nest's search within an epoch is then independent
    of the others, which is what lets [?pool] evolve them on parallel
    domains with results bit-identical to the sequential path.

    With [?journal], seeding is crash-safe and resumable: each nest's
    search checkpoints a generation snapshot under ["search/<epoch>/<label>"],
    completed nests move to ["done/<epoch>/<label>"], and each committed
    epoch collapses into a single ["epoch"] record. Every record
    round-trips exactly ([%h] floats, [Recipe.to_string]/[of_string]), so
    a resumed run finishes with the same database, bit for bit, as an
    uninterrupted one. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Recipe = Daisy_transforms.Recipe
module Pipeline = Daisy_normalize.Pipeline
module Patterns = Daisy_blas.Patterns
module Embedding = Daisy_embedding.Embedding
module Ann = Daisy_embedding.Ann

type nest_state = {
  label : string;
  program : Ir.program;  (** single-unit program for evaluation *)
  outer : Ir.loop list;  (** sequential loops enclosing the unit *)
  nest : Ir.loop;
  embedding : Embedding.t;
  mutable best : Recipe.t;
  mutable best_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Journal record (de)serialization. Every value round-trips exactly:
   floats via %h, recipes via to_string/of_string, labels via %S. A
   record that fails to parse is treated as absent — re-doing that slice
   of work is always safe. *)

let strip_prefix p s =
  let lp = String.length p in
  if String.length s >= lp && String.equal (String.sub s 0 lp) p then
    Some (String.sub s lp (String.length s - lp))
  else None

let snapshot_to_lines (s : Evolve.snapshot) : string list =
  (Printf.sprintf "gen %d" s.Evolve.gen)
  :: Printf.sprintf "rng %016Lx" s.Evolve.rng_state
  :: (List.map (fun r -> "pop " ^ Recipe.to_string r) s.Evolve.pop
     @ List.map (fun (rs, t) -> Printf.sprintf "fit %h %s" t rs) s.Evolve.fits)

let snapshot_of_lines (lines : string list) : Evolve.snapshot option =
  let gen = ref (-1)
  and rng = ref None
  and pop = ref []
  and fits = ref [] in
  try
    List.iter
      (fun line ->
        match String.index_opt line ' ' with
        | None -> raise Exit
        | Some i -> (
            let tag = String.sub line 0 i in
            let rest = String.sub line (i + 1) (String.length line - i - 1) in
            match tag with
            | "gen" -> gen := int_of_string rest
            | "rng" -> rng := Some (Int64.of_string ("0x" ^ rest))
            | "pop" -> (
                match Recipe.of_string rest with
                | Ok r -> pop := r :: !pop
                | Error _ -> raise Exit)
            | "fit" -> (
                match String.index_opt rest ' ' with
                | None -> raise Exit
                | Some j ->
                    let t = float_of_string (String.sub rest 0 j) in
                    let rs =
                      String.sub rest (j + 1) (String.length rest - j - 1)
                    in
                    fits := (rs, t) :: !fits)
            | _ -> raise Exit))
      lines;
    match !rng with
    | Some rng_state when !gen >= 0 ->
        Some
          {
            Evolve.gen = !gen;
            pop = List.rev !pop;
            rng_state;
            fits = List.rev !fits;
          }
    | _ -> None
  with _ -> None

let done_to_lines (best : Recipe.t) (ms : float) : string list =
  [ Printf.sprintf "ms %h" ms; "best " ^ Recipe.to_string best ]

let done_of_lines (lines : string list) : (Recipe.t * float) option =
  match lines with
  | [ ms_l; best_l ] -> (
      match (strip_prefix "ms " ms_l, strip_prefix "best " best_l) with
      | Some ms_s, Some best_s -> (
          match (float_of_string_opt ms_s, Recipe.of_string best_s) with
          | Some ms, Ok best -> Some (best, ms)
          | _ -> None)
      | _ -> None)
  | _ -> None

let epoch_to_lines (epoch : int) (states : nest_state list) : string list =
  Printf.sprintf "epoch %d" epoch
  :: List.concat_map
       (fun st ->
         [
           Printf.sprintf "label %S" st.label;
           Printf.sprintf "ms %h" st.best_ms;
           "best " ^ Recipe.to_string st.best;
         ])
       states

(** Restore the per-nest bests committed by the last completed epoch;
    returns that epoch number, or 0 (restore nothing) when the record is
    malformed or does not cover every state — a conservative full
    re-run is always correct. *)
let restore_epoch (lines : string list) (states : nest_state list) : int =
  let ( let* ) = Option.bind in
  let parsed =
    match lines with
    | [] -> None
    | first :: rest ->
        let* epoch =
          Option.bind (strip_prefix "epoch " first) int_of_string_opt
        in
        let rec go acc = function
          | [] -> Some (List.rev acc)
          | lbl_l :: ms_l :: best_l :: tl ->
              let* label =
                try Some (Scanf.sscanf lbl_l "label %S" Fun.id)
                with _ -> None
              in
              let* ms =
                Option.bind (strip_prefix "ms " ms_l) float_of_string_opt
              in
              let* best =
                Option.bind (strip_prefix "best " best_l) (fun s ->
                    Result.to_option (Recipe.of_string s))
              in
              go ((label, ms, best) :: acc) tl
          | _ -> None
        in
        let* entries = go [] rest in
        Some (epoch, entries)
  in
  match parsed with
  | None -> 0
  | Some (epoch, entries) ->
      let lookup st =
        List.find_opt (fun (l, _, _) -> String.equal l st.label) entries
      in
      if List.for_all (fun st -> lookup st <> None) states then begin
        List.iter
          (fun st ->
            match lookup st with
            | Some (_, ms, best) ->
                st.best <- best;
                st.best_ms <- ms
            | None -> ())
          states;
        epoch
      end
      else 0

(* ------------------------------------------------------------------ *)

(** [seed_database ctx ~db programs] — normalize each (label, program),
    drop BLAS-matched nests, evolve recipes for the rest, store them. *)
let seed_database ?(epochs = 3) ?(population = 8) ?(iterations = 3) ?pool
    ?journal ?quarantine ?on_epoch (ctx : Common.ctx) ~(db : Database.t)
    (programs : (string * Ir.program) list) : unit =
  let cache = Evolve.create_cache ~size:256 () in
  let states =
    List.concat_map
      (fun (label, p) ->
        let normalized = Pipeline.normalize ~sizes:ctx.sizes p in
        (* BLAS nests are served by idiom detection, not the database *)
        let remaining, _ = Patterns.replace_all normalized in
        Common.program_units remaining
        |> List.mapi (fun i (outer, nest) ->
               {
                 label = Printf.sprintf "%s#%d" label i;
                 program =
                   Common.single_nest_program remaining
                     (Common.wrap_outer outer (Ir.Nloop nest));
                 outer;
                 nest;
                 embedding = Embedding.of_node (Ir.Nloop nest);
                 best = [];
                 best_ms = infinity;
               }))
      programs
  in
  (* resume: epochs committed before the crash restore their bests and
     are skipped outright *)
  let completed_epochs =
    match journal with
    | None -> 0
    | Some j -> (
        match Checkpoint.find j "epoch" with
        | None -> 0
        | Some lines -> restore_epoch lines states)
  in
  (* one epoch: evolve every nest from its epoch-start seeds in parallel,
     then commit the improvements *)
  let run_epoch epoch (seeds_for : nest_state -> Rng.t * Recipe.t list) :
      unit =
    Checkpoint.check_interrupt ();
    let search_key st = Printf.sprintf "search/%d/%s" epoch st.label in
    let done_key st = Printf.sprintf "done/%d/%s" epoch st.label in
    let results =
      Pool.map ?pool
        (fun st ->
          Checkpoint.check_interrupt ();
          let finished =
            match journal with
            | None -> None
            | Some j ->
                Option.bind (Checkpoint.find j (done_key st)) done_of_lines
          in
          match finished with
          | Some r -> r (* nest completed before the crash: exact replay *)
          | None ->
              let rng, seeds = seeds_for st in
              let resume =
                match journal with
                | None -> None
                | Some j ->
                    Option.bind
                      (Checkpoint.find j (search_key st))
                      snapshot_of_lines
              in
              let on_generation =
                Option.map
                  (fun j snap ->
                    Checkpoint.set j (search_key st) (snapshot_to_lines snap))
                  journal
              in
              let ((best, ms) as r) =
                Evolve.search ~population ~iterations ~cache ?pool
                  ~outer:st.outer ?quarantine ?on_generation ?resume ctx
                  st.program st.nest ~seeds ~rng
              in
              (match journal with
              | None -> ()
              | Some j ->
                  Checkpoint.set_many j ~remove:[ search_key st ]
                    [ (done_key st, done_to_lines best ms) ]);
              r)
        states
    in
    List.iter2
      (fun st (best, ms) ->
        if ms < st.best_ms then begin
          st.best <- best;
          st.best_ms <- ms
        end)
      states results;
    (* the committed epoch collapses into one record; its per-nest
       working records are consumed in the same atomic persist *)
    (match journal with
    | None -> ()
    | Some j ->
        let removes =
          List.concat_map (fun st -> [ search_key st; done_key st ]) states
        in
        Checkpoint.set_many j ~remove:removes
          [ ("epoch", epoch_to_lines epoch states) ]);
    match on_epoch with
    | None -> ()
    | Some f ->
        (* partial database of the bests so far, built exactly like the
           final one — callers flush it to disk after every epoch *)
        let partial = Database.create () in
        List.iter
          (fun st ->
            Database.add ~cost_ms:st.best_ms partial ~source:st.label
              ~nest:st.nest ~recipe:st.best)
          states;
        f epoch partial
  in
  (* epoch 1: Tiramisu-style seeds *)
  if completed_epochs < 1 then
    run_epoch 1 (fun st ->
        (Rng.of_string ("seed-epoch1-" ^ st.label), Tiramisu.proposals st.nest));
  (* epochs 2..n: re-seed from the ten most similar nests (snapshot of the
     bests at epoch start) *)
  for epoch = 2 to epochs do
    if epoch > completed_epochs then begin
      let snapshot = List.map (fun o -> (o, o.embedding, o.best)) states in
      (* Past a few dozen nests the per-nest neighbour lookup goes
         through an ANN index built once over the epoch-start snapshot.
         The index is exact (same top-k, same tie order as the scan), so
         either path yields the same neighbours: the top-10 of the
         snapshot minus self is contained in the top-11 of the full
         snapshot. *)
      let neighbours_of =
        if List.length snapshot < 32 then fun st ->
          Embedding.nearest_by
            ~embed:(fun (_, emb, _) -> emb)
            10
            (List.filter (fun (o, _, _) -> o != st) snapshot)
            st.embedding
          |> List.map (fun (_, (_, _, best)) -> best)
        else begin
          let arr = Array.of_list snapshot in
          let ann =
            Ann.build ~fingerprint:"" ~dim:Embedding.dim
              (Array.map (fun (_, emb, _) -> emb) arr)
          in
          fun st ->
            Ann.query ann ~k:11 st.embedding
            |> List.filter_map (fun (_, i) ->
                   let o, _, best = arr.(i) in
                   if o == st then None else Some best)
            |> Util.take 10
        end
      in
      run_epoch epoch (fun st ->
          let rng =
            Rng.of_string (Printf.sprintf "seed-epoch%d-%s" epoch st.label)
          in
          (rng, st.best :: neighbours_of st))
    end
  done;
  List.iter
    (fun st ->
      Database.add ~cost_ms:st.best_ms db ~source:st.label ~nest:st.nest
        ~recipe:st.best)
    states
