(** Database seeding (paper §4): collect all loop nests from the normalized
    A variants; BLAS-3 nests get idiom-detection recipes (handled directly
    by {!Daisy_blas.Patterns} at scheduling time); the rest are optimized by
    the evolutionary search — epoch 1 seeded from Tiramisu-style proposals,
    epochs 2 and 3 re-seeded from the current best recipes of the ten most
    similar loop nests (Euclidean distance of performance embeddings).

    Each epoch reads the best recipes as they stood at the {e start} of the
    epoch and commits all updates at the end (Jacobi-style, not
    Gauss-Seidel): every nest's search within an epoch is then independent
    of the others, which is what lets [?pool] evolve them on parallel
    domains with results bit-identical to the sequential path. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Recipe = Daisy_transforms.Recipe
module Pipeline = Daisy_normalize.Pipeline
module Patterns = Daisy_blas.Patterns
module Embedding = Daisy_embedding.Embedding

type nest_state = {
  label : string;
  program : Ir.program;  (** single-unit program for evaluation *)
  outer : Ir.loop list;  (** sequential loops enclosing the unit *)
  nest : Ir.loop;
  embedding : Embedding.t;
  mutable best : Recipe.t;
  mutable best_ms : float;
}

(** [seed_database ctx ~db programs] — normalize each (label, program),
    drop BLAS-matched nests, evolve recipes for the rest, store them. *)
let seed_database ?(epochs = 3) ?(population = 8) ?(iterations = 3) ?pool
    (ctx : Common.ctx) ~(db : Database.t)
    (programs : (string * Ir.program) list) : unit =
  let cache = Evolve.create_cache ~size:256 () in
  let states =
    List.concat_map
      (fun (label, p) ->
        let normalized = Pipeline.normalize ~sizes:ctx.sizes p in
        (* BLAS nests are served by idiom detection, not the database *)
        let remaining, _ = Patterns.replace_all normalized in
        Common.program_units remaining
        |> List.mapi (fun i (outer, nest) ->
               {
                 label = Printf.sprintf "%s#%d" label i;
                 program =
                   Common.single_nest_program remaining
                     (Common.wrap_outer outer (Ir.Nloop nest));
                 outer;
                 nest;
                 embedding = Embedding.of_node (Ir.Nloop nest);
                 best = [];
                 best_ms = infinity;
               }))
      programs
  in
  (* one epoch: evolve every nest from its epoch-start seeds in parallel,
     then commit the improvements *)
  let run_epoch (seeds_for : nest_state -> Rng.t * Recipe.t list) : unit =
    let results =
      Pool.map ?pool
        (fun st ->
          let rng, seeds = seeds_for st in
          Evolve.search ~population ~iterations ~cache ?pool ~outer:st.outer
            ctx st.program st.nest ~seeds ~rng)
        states
    in
    List.iter2
      (fun st (best, ms) ->
        if ms < st.best_ms then begin
          st.best <- best;
          st.best_ms <- ms
        end)
      states results
  in
  (* epoch 1: Tiramisu-style seeds *)
  run_epoch (fun st ->
      (Rng.of_string ("seed-epoch1-" ^ st.label), Tiramisu.proposals st.nest));
  (* epochs 2..n: re-seed from the ten most similar nests (snapshot of the
     bests at epoch start) *)
  for epoch = 2 to epochs do
    let snapshot = List.map (fun o -> (o, o.embedding, o.best)) states in
    run_epoch (fun st ->
        let rng =
          Rng.of_string (Printf.sprintf "seed-epoch%d-%s" epoch st.label)
        in
        let neighbours =
          Embedding.nearest_by
            ~embed:(fun (_, emb, _) -> emb)
            10
            (List.filter (fun (o, _, _) -> o != st) snapshot)
            st.embedding
          |> List.map (fun (_, (_, _, best)) -> best)
        in
        (rng, st.best :: neighbours))
  done;
  List.iter
    (fun st -> Database.add db ~source:st.label ~nest:st.nest ~recipe:st.best)
    states
