(** Evolutionary recipe search (paper §4): populations of recipes refined
    by mutation + crossover with the simulated runtime as fitness.
    Fitness evaluations are independent and can be scored in parallel via
    [?pool]; results are bit-identical to the sequential path. *)

type fitness_cache
(** Thread-safe fitness memoization, shareable across searches (and across
    pool workers). *)

val create_cache : ?size:int -> unit -> fitness_cache

val cache_hits : fitness_cache -> int
val cache_misses : fitness_cache -> int
(** Lookup counters: a hit means a candidate's simulated runtime was reused
    from the memo table instead of re-walking the trace. Keys canonicalize
    the nest ({!Daisy_loopir.Ir.canon_nodes}), so structurally identical
    candidates hit even when built with fresh loop ids. *)

val eval_cached :
  fitness_cache ->
  Common.ctx ->
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.loop ->
  Daisy_transforms.Recipe.t ->
  float
(** Apply the recipe to the nest and return its simulated runtime (ms),
    memoized in [fitness_cache]. Illegal recipes evaluate to [infinity]. *)

val search :
  ?population:int ->
  ?iterations:int ->
  ?cache:fitness_cache ->
  ?pool:Daisy_support.Pool.t ->
  ?outer:Daisy_loopir.Ir.loop list ->
  Common.ctx ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.loop ->
  seeds:Daisy_transforms.Recipe.t list ->
  rng:Daisy_support.Rng.t ->
  Daisy_transforms.Recipe.t * float
(** Returns the best recipe and its fitness (simulated ms). *)
