(** Evolutionary recipe search (paper §4): populations of recipes refined
    by mutation + crossover with the simulated runtime as fitness.
    Fitness evaluations are independent and can be scored in parallel via
    [?pool]; results are bit-identical to the sequential path. *)

type fitness_cache
(** Thread-safe fitness memoization, shareable across searches (and across
    pool workers). *)

val create_cache : ?size:int -> unit -> fitness_cache

val search :
  ?population:int ->
  ?iterations:int ->
  ?cache:fitness_cache ->
  ?pool:Daisy_support.Pool.t ->
  ?outer:Daisy_loopir.Ir.loop list ->
  Common.ctx ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.loop ->
  seeds:Daisy_transforms.Recipe.t list ->
  rng:Daisy_support.Rng.t ->
  Daisy_transforms.Recipe.t * float
(** Returns the best recipe and its fitness (simulated ms). *)
