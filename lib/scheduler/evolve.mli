(** Evolutionary recipe search (paper §4): populations of recipes refined
    by mutation + crossover with the simulated runtime as fitness.
    Fitness evaluations are independent and can be scored in parallel via
    [?pool]; results are bit-identical to the sequential path. *)

type fitness_cache
(** Thread-safe fitness memoization, shareable across searches (and across
    pool workers). *)

val create_cache : ?size:int -> unit -> fitness_cache

val cache_hits : fitness_cache -> int
val cache_misses : fitness_cache -> int
(** Lookup counters: a hit means a candidate's simulated runtime was reused
    from the memo table instead of re-walking the trace. Keys canonicalize
    the nest ({!Daisy_loopir.Ir.canon_nodes}), so structurally identical
    candidates hit even when built with fresh loop ids. *)

val cache_stats : fitness_cache -> int * int
(** [(hits, misses)] read as one consistent pair. This is the top
    memoization level; cache misses that re-walk the trace still reach
    the cross-candidate {e simulation memo} through the context (see
    {!Common.sim_memo_stats}). *)

val eval_cached :
  fitness_cache ->
  Common.ctx ->
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.loop ->
  Daisy_transforms.Recipe.t ->
  float
(** Apply the recipe to the nest and return its simulated runtime (ms),
    memoized in [fitness_cache]. Illegal recipes evaluate to [infinity].
    The cache-miss path passes through the ["eval_candidate"]
    [Daisy_support.Fault] injection point. *)

type snapshot = {
  gen : int;  (** the generation about to run *)
  pop : Daisy_transforms.Recipe.t list;  (** its population, in order *)
  rng_state : int64;  (** [Daisy_support.Rng.state] at that point *)
  fits : (string * float) list;
      (** every fitness this search has computed, keyed by the printed
          recipe, sorted (floats round-trip via [%h] serialization) *)
}
(** The complete resumable state of one {!search}, emitted via
    [on_generation] before each generation (and once more at
    [gen = iterations], so a resumed search only redoes final
    selection). *)

val search :
  ?population:int ->
  ?iterations:int ->
  ?cache:fitness_cache ->
  ?pool:Daisy_support.Pool.t ->
  ?outer:Daisy_loopir.Ir.loop list ->
  ?quarantine:Quarantine.t ->
  ?on_generation:(snapshot -> unit) ->
  ?resume:snapshot ->
  Common.ctx ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.loop ->
  seeds:Daisy_transforms.Recipe.t list ->
  rng:Daisy_support.Rng.t ->
  Daisy_transforms.Recipe.t * float
(** Returns the best recipe and its fitness (simulated ms).

    [resume] restarts from a {!snapshot}: restoring it into a fresh
    cache and re-running is bit-identical to the uninterrupted search at
    any job count. With [quarantine] or [ctx.eval_deadline] set, scoring
    is supervised ([Daisy_support.Pool.map_supervised]): a candidate
    that crashes or exceeds its per-evaluation wall-clock deadline is
    retried once, then deterministically excluded (fitness [infinity])
    and reported to the quarantine sink with a shrunk reproducer — the
    search itself always completes. [on_generation] also polls
    [Daisy_support.Checkpoint.check_interrupt] after each emitted
    snapshot, so interrupted runs stop with their latest state saved. *)
