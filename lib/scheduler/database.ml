(** The transfer-tuning database: pairs of performance embeddings and
    optimization recipes (paper §4, after "Performance Embeddings",
    ICS'23).

    The database is seeded from normalized A variants and queried with
    normalized B variants (or Python-translated variants); the Euclidean
    distance of embeddings picks candidate recipes. *)

module Ir = Daisy_loopir.Ir
module Recipe = Daisy_transforms.Recipe
module Embedding = Daisy_embedding.Embedding

type entry = {
  source : string;  (** benchmark/nest label, for reporting *)
  embedding : Embedding.t;
  recipe : Recipe.t;
  canon_hash : int;  (** canonical structure hash of the normalized nest *)
}

type t = { mutable entries : entry list }

let create () = { entries = [] }

let size db = List.length db.entries

let add db ~source ~(nest : Ir.loop) ~(recipe : Recipe.t) =
  db.entries <-
    {
      source;
      embedding = Embedding.of_node (Ir.Nloop nest);
      recipe;
      canon_hash = Ir.hash_structure [ Ir.Nloop nest ];
    }
    :: db.entries

let entries db = db.entries

(** [merge ~into src] — append the entries of [src] to [into], exactly as
    if [src]'s adds had been replayed on [into] in their original order.
    Lets independent shards be seeded in parallel and combined in a fixed
    order, reproducing the sequential database bit-for-bit. *)
let merge ~into src = into.entries <- src.entries @ into.entries

(** [query db ~k nest] — the [k] entries nearest to [nest] in embedding
    space (closest first). Scans the entries directly — no per-query
    intermediate pair list. *)
let query db ~k (nest : Ir.loop) : (float * entry) list =
  let q = Embedding.of_node (Ir.Nloop nest) in
  Embedding.nearest_by ~embed:(fun e -> e.embedding) k db.entries q

(** Entries whose normalized structure is identical to [nest] — exact
    transfer hits. *)
let exact_matches db (nest : Ir.loop) : entry list =
  let h = Ir.hash_structure [ Ir.Nloop nest ] in
  List.filter (fun e -> e.canon_hash = h) db.entries

let pp ppf db =
  Fmt.pf ppf "@[<v>database: %d entries@,%a@]" (size db)
    (Fmt.list ~sep:Fmt.cut (fun ppf e ->
         Fmt.pf ppf "  %s: %a" e.source Recipe.pp e.recipe))
    db.entries
