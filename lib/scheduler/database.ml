(** The transfer-tuning database: pairs of performance embeddings and
    optimization recipes (paper §4, after "Performance Embeddings",
    ICS'23).

    The database is seeded from normalized A variants and queried with
    normalized B variants (or Python-translated variants); the Euclidean
    distance of embeddings picks candidate recipes. *)

module Ir = Daisy_loopir.Ir
module Recipe = Daisy_transforms.Recipe
module Embedding = Daisy_embedding.Embedding
module Diag = Daisy_support.Diag
module Fault = Daisy_support.Fault

type entry = {
  source : string;  (** benchmark/nest label, for reporting *)
  embedding : Embedding.t;
  recipe : Recipe.t;
  canon_hash : int;  (** canonical structure hash of the normalized nest *)
}

type t = { mutable entries : entry list }

let create () = { entries = [] }
let of_entries entries = { entries }

let size db = List.length db.entries

let add db ~source ~(nest : Ir.loop) ~(recipe : Recipe.t) =
  db.entries <-
    {
      source;
      embedding = Embedding.of_node (Ir.Nloop nest);
      recipe;
      canon_hash = Ir.hash_structure [ Ir.Nloop nest ];
    }
    :: db.entries

let entries db = db.entries

(** [merge ~into src] — append the entries of [src] to [into], exactly as
    if [src]'s adds had been replayed on [into] in their original order.
    Lets independent shards be seeded in parallel and combined in a fixed
    order, reproducing the sequential database bit-for-bit. *)
let merge ~into src = into.entries <- src.entries @ into.entries

(** [query db ~k nest] — the [k] entries nearest to [nest] in embedding
    space (closest first). Scans the entries directly — no per-query
    intermediate pair list. *)
let query db ~k (nest : Ir.loop) : (float * entry) list =
  if k <= 0 then []
  else
    let q = Embedding.of_node (Ir.Nloop nest) in
    Embedding.nearest_by ~embed:(fun e -> e.embedding) k db.entries q

(** Entries whose normalized structure is identical to [nest] — exact
    transfer hits. *)
let exact_matches db (nest : Ir.loop) : entry list =
  let h = Ir.hash_structure [ Ir.Nloop nest ] in
  List.filter (fun e -> e.canon_hash = h) db.entries

let pp ppf db =
  Fmt.pf ppf "@[<v>database: %d entries@,%a@]" (size db)
    (Fmt.list ~sep:Fmt.cut (fun ppf e ->
         Fmt.pf ppf "  %s: %a" e.source Recipe.pp e.recipe))
    db.entries

(* ------------------------------------------------------------------ *)
(* Persistence: versioned, checksummed, corruption-tolerant.

   Line-based text format (see docs/robustness.md):

   {v
   DAISYDB 1
   entry <16-hex FNV-1a-64 checksum of the 4 body lines joined by \n>
   source "gemm:nest0"
   hash 129386423
   embedding 0x1.8p+1 0x0p+0 ... (dim %h-printed floats, exact round-trip)
   recipe [interchange(1 0); vectorize]
   end
   ...
   v}

   Entries are written head-first and loaded in file order, so a
   round-trip reproduces the in-memory entry list — and therefore every
   [query]/[exact_matches] result — bit for bit. *)

let magic = "DAISYDB"
let version = 1

(* FNV-1a 64-bit, rendered as 16 hex digits *)
let checksum = Daisy_support.Util.fnv1a64

let entry_body (e : entry) : string list =
  [
    Printf.sprintf "source %S" e.source;
    Printf.sprintf "hash %d" e.canon_hash;
    "embedding "
    ^ String.concat " "
        (List.map (Printf.sprintf "%h") (Array.to_list e.embedding));
    "recipe " ^ Recipe.to_string e.recipe;
  ]

(* Crash-safe: the file is replaced atomically (write-temp, fsync,
   rename), so a crash mid-save — including an injected one at the
   per-entry ["db_save"] fault point — leaves the previous database
   intact instead of a torn file. *)
let save (db : t) (path : string) : unit =
  Daisy_support.Checkpoint.atomic_write path (fun oc ->
      Printf.fprintf oc "%s %d\n" magic version;
      List.iter
        (fun e ->
          Fault.inject "db_save";
          let body = entry_body e in
          Printf.fprintf oc "entry %s\n" (checksum (String.concat "\n" body));
          List.iter (fun l -> Printf.fprintf oc "%s\n" l) body;
          Printf.fprintf oc "end\n")
        db.entries)

let strip_prefix p s =
  let lp = String.length p in
  if String.length s >= lp && String.equal (String.sub s 0 lp) p then
    Some (String.sub s lp (String.length s - lp))
  else None

let parse_body (body : string list) : (entry, string) result =
  let ( let* ) = Result.bind in
  match body with
    | [ src_l; hash_l; emb_l; rec_l ] ->
        let* source =
          try Ok (Scanf.sscanf src_l "source %S" Fun.id)
          with Scanf.Scan_failure _ | Failure _ | End_of_file ->
            Error "malformed source line"
        in
        let* canon_hash =
          match strip_prefix "hash " hash_l with
          | Some s -> (
              match int_of_string_opt (String.trim s) with
              | Some h -> Ok h
              | None -> Error "malformed hash line")
          | None -> Error "malformed hash line"
        in
        let* embedding =
          match strip_prefix "embedding " emb_l with
          | None -> Error "malformed embedding line"
          | Some s ->
              let toks =
                String.split_on_char ' ' s |> List.filter (fun t -> t <> "")
              in
              let floats = List.filter_map float_of_string_opt toks in
              if List.length floats <> List.length toks then
                Error "malformed embedding value"
              else if List.length floats <> Embedding.dim then
                Error
                  (Printf.sprintf "embedding has %d values, expected %d"
                     (List.length floats) Embedding.dim)
              else Ok (Array.of_list floats)
        in
        let* recipe =
          match strip_prefix "recipe " rec_l with
          | None -> Error "malformed recipe line"
          | Some s -> Recipe.of_string s
        in
        Ok { source; embedding; recipe; canon_hash }
  | _ ->
      Error
        (Printf.sprintf "expected 4 body lines, got %d" (List.length body))

let parse_entry (ck : string) (body : string list) : (entry, string) result =
  let expected = checksum (String.concat "\n" body) in
  if not (String.equal ck expected) then
    Error
      (Printf.sprintf "checksum mismatch (stored %s, computed %s)" ck expected)
  else parse_body body

(* The 4-line body framing, exposed so other persistent stores (the bench
   harness's shard checkpoints) can embed entries in their own records. *)
let entry_to_lines = entry_body
let entry_of_lines = parse_body

let load (path : string) : t * string list =
  let ic =
    try open_in path
    with Sys_error m -> Diag.errorf "cannot open database: %s" m
  in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let acc = ref [] in
        (try
           while true do
             acc := input_line ic :: !acc
           done
         with End_of_file -> ());
        Array.of_list (List.rev !acc))
  in
  let n = Array.length lines in
  if n = 0 then Diag.errorf "%s: empty file is not a daisy database" path;
  (match String.split_on_char ' ' lines.(0) with
  | [ m; v ] when String.equal m magic -> (
      match int_of_string_opt v with
      | Some ver when ver = version -> ()
      | _ ->
          Diag.errorf "%s: unsupported database version %S (this build reads %d)"
            path v version)
  | _ -> Diag.errorf "%s: not a daisy database (bad magic line %S)" path lines.(0));
  let warnings = ref [] in
  let warn fmt =
    Printf.ksprintf (fun m -> warnings := Printf.sprintf "%s: %s" path m :: !warnings) fmt
  in
  let entries = ref [] in
  let entry_idx = ref 0 in
  let i = ref 1 in
  while !i < n do
    let line = lines.(!i) in
    if String.trim line = "" then incr i
    else
      match strip_prefix "entry " line with
      | None ->
          warn "line %d: expected 'entry <checksum>', got %S — skipping"
            (!i + 1) line;
          incr i
      | Some ck ->
          incr entry_idx;
          let start = !i + 1 in
          let j = ref start in
          while
            !j < n
            && (not (String.equal lines.(!j) "end"))
            && strip_prefix "entry " lines.(!j) = None
          do
            incr j
          done;
          let body = Array.to_list (Array.sub lines start (!j - start)) in
          if !j >= n || not (String.equal lines.(!j) "end") then begin
            warn "entry %d (line %d): truncated (no 'end') — skipping"
              !entry_idx (!i + 1);
            i := !j
          end
          else begin
            (if Fault.fires "db_load" then
               warn "entry %d (line %d): fault injected — skipping" !entry_idx
                 (!i + 1)
             else
               match parse_entry ck body with
               | Ok e -> entries := e :: !entries
               | Error m ->
                   warn "entry %d (line %d): %s — skipping" !entry_idx
                     (!i + 1) m);
            i := !j + 1
          end
  done;
  ({ entries = List.rev !entries }, List.rev !warnings)
