(** The transfer-tuning database: pairs of performance embeddings and
    optimization recipes (paper §4, after "Performance Embeddings",
    ICS'23).

    The database is seeded from normalized A variants and queried with
    normalized B variants (or Python-translated variants); the Euclidean
    distance of embeddings picks candidate recipes. *)

module Ir = Daisy_loopir.Ir
module Recipe = Daisy_transforms.Recipe
module Embedding = Daisy_embedding.Embedding
module Ann = Daisy_embedding.Ann
module Diag = Daisy_support.Diag
module Fault = Daisy_support.Fault

type entry = {
  source : string;  (** benchmark/nest label, for reporting *)
  embedding : Embedding.t;
  recipe : Recipe.t;
  canon_hash : int;  (** canonical structure hash of the normalized nest *)
  cost_ms : float;  (** predicted runtime of the recipe; [nan] = unknown *)
}

(** A pluggable read path: lets a database handle serve from another
    store (the sharded warm store) without materialising a monolithic
    entry list. A backed handle is read-only. *)
type backend = {
  b_size : unit -> int;
  b_entries : unit -> entry list;
  b_query : k:int -> Embedding.t -> (float * entry) list;
  b_exact : int -> entry list;
  b_fingerprint : unit -> string;
}

type t = {
  mutable entries : entry list;
  mutable index : (Ann.t * entry array) option;
      (* ANN index over [entries] plus the entry snapshot its indices
         refer to; any mutation of [entries] detaches it *)
  backend : backend option;
}

let create () = { entries = []; index = None; backend = None }
let of_entries entries = { entries; index = None; backend = None }
let of_backend b = { entries = []; index = None; backend = Some b }
let is_backed db = db.backend <> None

let size db =
  match db.backend with
  | Some b -> b.b_size ()
  | None -> List.length db.entries

let read_only db op =
  if db.backend <> None then
    invalid_arg (Printf.sprintf "Database.%s: backed database is read-only" op)

(* ------------------------------------------------------------------ *)
(* Content-keyed dedup: one entry per (normalized structure, recipe).

   The key is the pair (canonical structure hash, recipe string); a
   duplicate keeps whichever entry has the {e better} (lower) cost — an
   unknown cost ([nan]) always loses to a known one, and ties keep the
   incumbent. Replacement happens {e in place}, so the entry order (and
   therefore every query tie-break and the content fingerprint) is
   independent of how many times a duplicate arrives — [add] replays and
   shard [merge]s are idempotent, which is what makes WAL replay after a
   mid-compaction crash safe (docs/robustness.md, "Sharded warm
   store"). *)

let dedup_key (e : entry) : string =
  Printf.sprintf "%d/%s" e.canon_hash (Recipe.to_string e.recipe)

(** [better_cost a b] — is cost [a] strictly better than [b]? *)
let better_cost (a : float) (b : float) : bool =
  match (Float.is_nan a, Float.is_nan b) with
  | true, _ -> false
  | false, true -> true
  | false, false -> a < b

(* Replace the first entry matching [key] when [e] improves on it;
   [None] when no entry matches (the caller appends). *)
let rec replace_dup key e = function
  | [] -> None
  | hd :: tl ->
      if String.equal (dedup_key hd) key then
        Some (if better_cost e.cost_ms hd.cost_ms then e :: tl else hd :: tl)
      else Option.map (fun tl' -> hd :: tl') (replace_dup key e tl)

let add_entry db (e : entry) =
  read_only db "add";
  (match replace_dup (dedup_key e) e db.entries with
  | Some entries -> db.entries <- entries
  | None -> db.entries <- e :: db.entries);
  db.index <- None

let add ?(cost_ms = nan) db ~source ~(nest : Ir.loop) ~(recipe : Recipe.t) =
  add_entry db
    {
      source;
      embedding = Embedding.of_node (Ir.Nloop nest);
      recipe;
      canon_hash = Ir.hash_structure [ Ir.Nloop nest ];
      cost_ms;
    }

let entries db =
  match db.backend with Some b -> b.b_entries () | None -> db.entries

(** [merge ~into src] — append the entries of [src] to [into], exactly as
    if [src]'s adds had been replayed on [into] in their original order:
    duplicates (same structure hash + recipe string) keep the
    better-cost entry in the incumbent's position, so repeated merges
    and WAL replays are idempotent. Lets independent shards be seeded in
    parallel and combined in a fixed order, reproducing the sequential
    database bit-for-bit. *)
let merge ~into src =
  read_only into "merge";
  List.iter (add_entry into) (List.rev (entries src));
  into.index <- None

(** Entries whose normalized structure is identical to [nest] — exact
    transfer hits. *)
let exact_matches_hash db (h : int) : entry list =
  match db.backend with
  | Some b -> b.b_exact h
  | None -> List.filter (fun e -> e.canon_hash = h) db.entries

let exact_matches db (nest : Ir.loop) : entry list =
  exact_matches_hash db (Ir.hash_structure [ Ir.Nloop nest ])

let pp ppf db =
  Fmt.pf ppf "@[<v>database: %d entries@,%a@]" (size db)
    (Fmt.list ~sep:Fmt.cut (fun ppf e ->
         Fmt.pf ppf "  %s: %a" e.source Recipe.pp e.recipe))
    (entries db)

(* ------------------------------------------------------------------ *)
(* Persistence: versioned, checksummed, corruption-tolerant.

   Line-based text format (see docs/robustness.md):

   {v
   DAISYDB 1
   entry <16-hex FNV-1a-64 checksum of the 5 body lines joined by \n>
   source "gemm:nest0"
   hash 129386423
   cost 0x1.8p+1 (predicted ms, %h; nan = unknown)
   embedding 0x1.8p+1 0x0p+0 ... (dim %h-printed floats, exact round-trip)
   recipe [interchange(1 0); vectorize]
   end
   ...
   v}

   Files written before the cost column (4-line bodies) still load:
   their entries parse with an unknown cost.

   Entries are written head-first and loaded in file order, so a
   round-trip reproduces the in-memory entry list — and therefore every
   [query]/[exact_matches] result — bit for bit. *)

let magic = "DAISYDB"
let version = 1

(* FNV-1a 64-bit, rendered as 16 hex digits *)
let checksum = Daisy_support.Util.fnv1a64

let entry_body (e : entry) : string list =
  [
    Printf.sprintf "source %S" e.source;
    Printf.sprintf "hash %d" e.canon_hash;
    Printf.sprintf "cost %h" e.cost_ms;
    "embedding "
    ^ String.concat " "
        (List.map (Printf.sprintf "%h") (Array.to_list e.embedding));
    "recipe " ^ Recipe.to_string e.recipe;
  ]

(* Crash-safe: the file is replaced atomically (write-temp, fsync,
   rename), so a crash mid-save — including an injected one at the
   per-entry ["db_save"] fault point — leaves the previous database
   intact instead of a torn file. *)
let save (db : t) (path : string) : unit =
  Daisy_support.Checkpoint.atomic_write path (fun oc ->
      Printf.fprintf oc "%s %d\n" magic version;
      List.iter
        (fun e ->
          Fault.inject "db_save";
          let body = entry_body e in
          Printf.fprintf oc "entry %s\n" (checksum (String.concat "\n" body));
          List.iter (fun l -> Printf.fprintf oc "%s\n" l) body;
          Printf.fprintf oc "end\n")
        (entries db))

let strip_prefix p s =
  let lp = String.length p in
  if String.length s >= lp && String.equal (String.sub s 0 lp) p then
    Some (String.sub s lp (String.length s - lp))
  else None

let parse_body (body : string list) : (entry, string) result =
  let ( let* ) = Result.bind in
  (* 5-line body (with the cost column); 4-line bodies from files written
     before it load with an unknown cost *)
  let parts =
    match body with
    | [ src_l; hash_l; cost_l; emb_l; rec_l ] ->
        Ok (src_l, hash_l, Some cost_l, emb_l, rec_l)
    | [ src_l; hash_l; emb_l; rec_l ] -> Ok (src_l, hash_l, None, emb_l, rec_l)
    | _ ->
        Error
          (Printf.sprintf "expected 5 body lines, got %d" (List.length body))
  in
  let* src_l, hash_l, cost_l, emb_l, rec_l = parts in
  let* source =
    try Ok (Scanf.sscanf src_l "source %S" Fun.id)
    with Scanf.Scan_failure _ | Failure _ | End_of_file ->
      Error "malformed source line"
  in
  let* canon_hash =
    match strip_prefix "hash " hash_l with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some h -> Ok h
        | None -> Error "malformed hash line")
    | None -> Error "malformed hash line"
  in
  let* cost_ms =
    match cost_l with
    | None -> Ok nan
    | Some l -> (
        match strip_prefix "cost " l with
        | None -> Error "malformed cost line"
        | Some s -> (
            match float_of_string_opt (String.trim s) with
            | Some c -> Ok c
            | None -> Error "malformed cost value"))
  in
  let* embedding =
    match strip_prefix "embedding " emb_l with
    | None -> Error "malformed embedding line"
    | Some s ->
        let toks =
          String.split_on_char ' ' s |> List.filter (fun t -> t <> "")
        in
        let floats = List.filter_map float_of_string_opt toks in
        if List.length floats <> List.length toks then
          Error "malformed embedding value"
        else if List.length floats <> Embedding.dim then
          Error
            (Printf.sprintf "embedding has %d values, expected %d"
               (List.length floats) Embedding.dim)
        else Ok (Array.of_list floats)
  in
  let* recipe =
    match strip_prefix "recipe " rec_l with
    | None -> Error "malformed recipe line"
    | Some s -> Recipe.of_string s
  in
  Ok { source; embedding; recipe; canon_hash; cost_ms }

let parse_entry (ck : string) (body : string list) : (entry, string) result =
  let expected = checksum (String.concat "\n" body) in
  if not (String.equal ck expected) then
    Error
      (Printf.sprintf "checksum mismatch (stored %s, computed %s)" ck expected)
  else parse_body body

(* The 5-line body framing, exposed so other persistent stores (the bench
   harness's shard checkpoints, the sharded warm store's WAL) can embed
   entries in their own records. *)
let entry_to_lines = entry_body
let entry_of_lines = parse_body
let entry_lines = 5

let load (path : string) : t * string list =
  let ic =
    try open_in path
    with Sys_error m -> Diag.errorf "cannot open database: %s" m
  in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let acc = ref [] in
        (try
           while true do
             acc := input_line ic :: !acc
           done
         with End_of_file -> ());
        Array.of_list (List.rev !acc))
  in
  let n = Array.length lines in
  if n = 0 then Diag.errorf "%s: empty file is not a daisy database" path;
  (match String.split_on_char ' ' lines.(0) with
  | [ m; v ] when String.equal m magic -> (
      match int_of_string_opt v with
      | Some ver when ver = version -> ()
      | _ ->
          Diag.errorf "%s: unsupported database version %S (this build reads %d)"
            path v version)
  | _ -> Diag.errorf "%s: not a daisy database (bad magic line %S)" path lines.(0));
  let warnings = ref [] in
  let warn fmt =
    Printf.ksprintf (fun m -> warnings := Printf.sprintf "%s: %s" path m :: !warnings) fmt
  in
  let entries = ref [] in
  let entry_idx = ref 0 in
  let i = ref 1 in
  while !i < n do
    let line = lines.(!i) in
    if String.trim line = "" then incr i
    else
      match strip_prefix "entry " line with
      | None ->
          warn "line %d: expected 'entry <checksum>', got %S — skipping"
            (!i + 1) line;
          incr i
      | Some ck ->
          incr entry_idx;
          let start = !i + 1 in
          let j = ref start in
          while
            !j < n
            && (not (String.equal lines.(!j) "end"))
            && strip_prefix "entry " lines.(!j) = None
          do
            incr j
          done;
          let body = Array.to_list (Array.sub lines start (!j - start)) in
          if !j >= n || not (String.equal lines.(!j) "end") then begin
            warn "entry %d (line %d): truncated (no 'end') — skipping"
              !entry_idx (!i + 1);
            i := !j
          end
          else begin
            (if Fault.fires "db_load" then
               warn "entry %d (line %d): fault injected — skipping" !entry_idx
                 (!i + 1)
             else
               match parse_entry ck body with
               | Ok e -> entries := e :: !entries
               | Error m ->
                   warn "entry %d (line %d): %s — skipping" !entry_idx
                     (!i + 1) m);
            i := !j + 1
          end
  done;
  ({ entries = List.rev !entries; index = None; backend = None },
   List.rev !warnings)

(* ------------------------------------------------------------------ *)
(* Sub-linear queries: an optional ANN index over the entries.

   The index is a pure accelerator — [query]'s results are bit-identical
   with and without it (Ann's contract is exact top-k agreement with
   [Embedding.nearest_by], tie order included). Staleness is detected by
   a fingerprint of the database contents; any mutation ([add]/[merge])
   detaches an attached index. A corrupt index never fails a query: the
   first page that misses its checksum detaches the index, emits one
   warning, bumps {!index_fallbacks}, and the query re-runs as a scan. *)

(** Fingerprint of the database contents: the checksum of every entry's
    serialized body, in order. [save]/[load] round-trip entries exactly
    ([%h] floats), so the fingerprint survives persistence — an index
    built before a save still attaches after the reload. *)
let fingerprint (db : t) : string =
  match db.backend with
  | Some b -> b.b_fingerprint ()
  | None ->
      checksum (String.concat "\n" (List.concat_map entry_body db.entries))

let index_fallback_count = Atomic.make 0

let index_fallbacks () = Atomic.get index_fallback_count
let reset_index_fallbacks () = Atomic.set index_fallback_count 0

let has_index db = db.index <> None
let detach_index db = db.index <- None

let index_description db =
  Option.map (fun (ann, _) -> Ann.describe ann) db.index

let build_index ?algo (db : t) : unit =
  read_only db "build_index";
  let arr = Array.of_list db.entries in
  let ann =
    Ann.build ?algo ~fingerprint:(fingerprint db) ~dim:Embedding.dim
      (Array.map (fun e -> e.embedding) arr)
  in
  db.index <- Some (ann, arr)

let save_index (db : t) (path : string) : unit =
  match db.index with
  | None -> invalid_arg "Database.save_index: no index attached"
  | Some (ann, _) -> Ann.save ann path

(** [load_index db path] — attach a persisted index to [db].
    [Ok description] on success; [Error reason] when the file is
    missing, corrupt, a different version, or stale (its stored
    fingerprint differs from [fingerprint db]) — the caller decides
    whether to rebuild or just scan. *)
let load_index (db : t) (path : string) : (string, string) result =
  read_only db "load_index";
  match Ann.load ~path ~fingerprint:(fingerprint db) with
  | Error m -> Error m
  | Ok ann ->
      if Ann.n ann <> size db then
        Error
          (Printf.sprintf "%s: index covers %d entries, database has %d" path
             (Ann.n ann) (size db))
      else begin
        db.index <- Some (ann, Array.of_list db.entries);
        Ok (Ann.describe ann)
      end

(** [rebuild_index db path] — build a fresh index over the current
    contents, persist it atomically at [path], attach it, and return its
    description. *)
let rebuild_index ?algo (db : t) (path : string) : string =
  build_index ?algo db;
  match db.index with
  | Some (ann, _) ->
      Ann.save ann path;
      Ann.describe ann
  | None -> assert false

let scan db ~k (q : Embedding.t) : (float * entry) list =
  Embedding.nearest_by ~embed:(fun e -> e.embedding) k db.entries q

(** [query_embedding db ~k q] — the [k] entries nearest to [q] in
    embedding space (closest first): through the ANN index when one is
    attached, as a linear scan otherwise, with bit-identical results
    either way. *)
let query_embedding (db : t) ~k (q : Embedding.t) : (float * entry) list =
  if k <= 0 then []
  else
    match db.backend with
    | Some b -> b.b_query ~k q
    | None -> (
    match db.index with
    | None -> scan db ~k q
    | Some (ann, arr) -> (
        try List.map (fun (d, i) -> (d, arr.(i))) (Ann.query ann ~k q)
        with Ann.Corrupt m ->
          Atomic.incr index_fallback_count;
          db.index <- None;
          Fmt.epr "%a@." Diag.pp
            (Diag.make ~severity:Diag.Warn
               "ann index unusable (%s) — falling back to linear scan" m);
          scan db ~k q))

(** [query db ~k nest] — the [k] entries nearest to [nest] in embedding
    space (closest first). *)
let query db ~k (nest : Ir.loop) : (float * entry) list =
  query_embedding db ~k (Embedding.of_node (Ir.Nloop nest))
