(** The transfer-tuning database: performance embeddings paired with
    optimization recipes, seeded from normalized A variants and queried by
    Euclidean distance (paper §4). *)

type entry = {
  source : string;  (** benchmark/nest label *)
  embedding : Daisy_embedding.Embedding.t;
  recipe : Daisy_transforms.Recipe.t;
  canon_hash : int;  (** canonical structure hash of the normalized nest *)
}

type t

val create : unit -> t

val of_entries : entry list -> t
(** A database holding exactly [entries] (same order as {!entries}
    returns them). *)

val size : t -> int

val add :
  t ->
  source:string ->
  nest:Daisy_loopir.Ir.loop ->
  recipe:Daisy_transforms.Recipe.t ->
  unit

val entries : t -> entry list
(** All entries, most recently added first. *)

val merge : into:t -> t -> unit
(** [merge ~into src] appends [src]'s entries to [into] as if [src]'s adds
    had been replayed on [into] in order (for parallel shard seeding). *)

val query : t -> k:int -> Daisy_loopir.Ir.loop -> (float * entry) list
(** The [k] nearest entries in embedding space, closest first. *)

val exact_matches : t -> Daisy_loopir.Ir.loop -> entry list
(** Entries whose normalized structure is identical — exact transfer
    hits. *)

val entry_to_lines : entry -> string list
(** The 4-line body framing used by {!save}, exposed so other
    persistent stores (e.g. the bench harness's shard checkpoints) can
    embed entries in their own records. Inverse of {!entry_of_lines}. *)

val entry_of_lines : string list -> (entry, string) result
(** Parse the 4 body lines produced by {!entry_to_lines} (no checksum
    framing). *)

val save : t -> string -> unit
(** [save db path] — write the versioned on-disk format: a
    ["DAISYDB 1"] header, then one checksummed block per entry
    (embeddings printed with [%h], so floats round-trip exactly). A
    {!load} of the result reproduces the entry list — and therefore
    every {!query}/{!exact_matches} result — bit for bit. The file is
    replaced atomically (write-temp, fsync, rename), so a crash
    mid-save — including one injected at the per-entry ["db_save"]
    [Daisy_support.Fault] point — leaves any previous database intact.
    The format is documented in docs/robustness.md. *)

val load : string -> t * string list
(** [load path] — read a database written by {!save}. Corrupt entries
    (bad checksum, malformed field, truncated block) are skipped
    individually, each contributing a warning string; the surviving
    entries load in file order. Raises [Daisy_support.Diag.Error] only
    for whole-file problems: unreadable file, bad magic, or unsupported
    version. Every entry passes through the ["db_load"]
    [Daisy_support.Fault] injection point. *)

val pp : t Fmt.t
