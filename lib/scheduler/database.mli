(** The transfer-tuning database: performance embeddings paired with
    optimization recipes, seeded from normalized A variants and queried by
    Euclidean distance (paper §4). *)

type entry = {
  source : string;  (** benchmark/nest label *)
  embedding : Daisy_embedding.Embedding.t;
  recipe : Daisy_transforms.Recipe.t;
  canon_hash : int;  (** canonical structure hash of the normalized nest *)
  cost_ms : float;  (** predicted runtime of the recipe; [nan] = unknown *)
}

type backend = {
  b_size : unit -> int;
  b_entries : unit -> entry list;
  b_query :
    k:int -> Daisy_embedding.Embedding.t -> (float * entry) list;
  b_exact : int -> entry list;
  b_fingerprint : unit -> string;
}
(** A pluggable read path: {!of_backend} builds a read-only database
    handle whose {!size}/{!entries}/{!query}/{!exact_matches}/
    {!fingerprint} delegate to these functions — how the sharded warm
    store ({!Shardstore}) serves through the ordinary [~db] interface
    without materialising a monolithic entry list. *)

type t

val create : unit -> t

val of_entries : entry list -> t
(** A database holding exactly [entries] (same order as {!entries}
    returns them). *)

val of_backend : backend -> t
(** A read-only handle delegating to [backend]. Mutations ([add],
    [merge]) and index management raise [Invalid_argument]. *)

val is_backed : t -> bool

val size : t -> int

val add :
  ?cost_ms:float ->
  t ->
  source:string ->
  nest:Daisy_loopir.Ir.loop ->
  recipe:Daisy_transforms.Recipe.t ->
  unit
(** Add an entry. Content-keyed dedup: if an entry with the same
    canonical structure hash {e and} recipe string already exists, the
    one with the better (lower) [cost_ms] is kept — in the incumbent's
    position, so entry order is independent of duplicate arrivals and
    replays are idempotent. An omitted [cost_ms] ([nan]) always loses to
    a known cost; ties keep the incumbent. *)

val entries : t -> entry list
(** All entries, most recently added first. *)

val merge : into:t -> t -> unit
(** [merge ~into src] appends [src]'s entries to [into] as if [src]'s adds
    had been replayed on [into] in order (for parallel shard seeding).
    Deduplicates like {!add}: merging the same shard twice — or
    replaying a WAL whose records were already compacted in — leaves
    [into] bit-identical to merging it once. *)

val dedup_key : entry -> string
(** The content key {!add}/{!merge} deduplicate on: canonical structure
    hash + recipe string. *)

val better_cost : float -> float -> bool
(** [better_cost a b] — the dedup tie-break: is cost [a] strictly better
    than cost [b]? ([nan] never beats anything; anything beats [nan].) *)

val query : t -> k:int -> Daisy_loopir.Ir.loop -> (float * entry) list
(** The [k] nearest entries in embedding space, closest first. Runs
    through the ANN index when one is attached (see {!build_index} /
    {!load_index}), as a linear scan otherwise — with bit-identical
    results either way (exact top-k agreement, tie order included). *)

val query_embedding : t -> k:int -> Daisy_embedding.Embedding.t -> (float * entry) list
(** {!query} for a pre-computed query embedding. *)

val fingerprint : t -> string
(** FNV-1a-64 fingerprint of the database contents (every entry's
    serialized body, in order) — the staleness rule for persisted ANN
    indexes. Survives a {!save}/{!load} round-trip. *)

val build_index : ?algo:Daisy_embedding.Ann.algo -> t -> unit
(** Build and attach an in-memory ANN index over the current entries.
    The index is a pure accelerator: {!query} results do not change.
    Any later {!add}/{!merge} detaches it. *)

val save_index : t -> string -> unit
(** Persist the attached index atomically ([DAISYANN 1] format).
    Raises [Invalid_argument] if no index is attached. *)

val load_index : t -> string -> (string, string) result
(** [load_index db path] — attach a persisted index (paged: entry
    vectors load lazily per query). [Ok description] on success;
    [Error reason] when the file is missing, corrupt, a different
    version, or stale ({!fingerprint} mismatch). A page corruption
    discovered later, mid-query, is also safe: the query falls back to
    the linear scan with one warning (see {!index_fallbacks}). *)

val rebuild_index : ?algo:Daisy_embedding.Ann.algo -> t -> string -> string
(** Build a fresh index, persist it at the given path, attach it, and
    return its description. *)

val has_index : t -> bool
val detach_index : t -> unit

val index_description : t -> string option
(** Description of the attached index, if any. *)

val index_fallbacks : unit -> int
(** Process-wide count of queries that hit a corrupt index and fell
    back to the linear scan. *)

val reset_index_fallbacks : unit -> unit

val exact_matches : t -> Daisy_loopir.Ir.loop -> entry list
(** Entries whose normalized structure is identical — exact transfer
    hits. *)

val exact_matches_hash : t -> int -> entry list
(** {!exact_matches} for a pre-computed canonical structure hash. *)

val entry_to_lines : entry -> string list
(** The {!entry_lines}-line body framing used by {!save}, exposed so
    other persistent stores (e.g. the bench harness's shard checkpoints,
    the sharded warm store's WAL) can embed entries in their own
    records. Inverse of {!entry_of_lines}. *)

val entry_of_lines : string list -> (entry, string) result
(** Parse the body lines produced by {!entry_to_lines} (no checksum
    framing). Also accepts the legacy 4-line body (no cost column);
    such entries parse with an unknown ([nan]) cost. *)

val entry_lines : int
(** Body lines per entry as {!entry_to_lines} writes them (currently
    5: source, hash, cost, embedding, recipe). *)

val save : t -> string -> unit
(** [save db path] — write the versioned on-disk format: a
    ["DAISYDB 1"] header, then one checksummed block per entry
    (embeddings printed with [%h], so floats round-trip exactly). A
    {!load} of the result reproduces the entry list — and therefore
    every {!query}/{!exact_matches} result — bit for bit. The file is
    replaced atomically (write-temp, fsync, rename), so a crash
    mid-save — including one injected at the per-entry ["db_save"]
    [Daisy_support.Fault] point — leaves any previous database intact.
    The format is documented in docs/robustness.md. *)

val load : string -> t * string list
(** [load path] — read a database written by {!save}. Corrupt entries
    (bad checksum, malformed field, truncated block) are skipped
    individually, each contributing a warning string; the surviving
    entries load in file order. Raises [Daisy_support.Diag.Error] only
    for whole-file problems: unreadable file, bad magic, or unsupported
    version. Every entry passes through the ["db_load"]
    [Daisy_support.Fault] injection point. *)

val pp : t Fmt.t
