(** The transfer-tuning database: performance embeddings paired with
    optimization recipes, seeded from normalized A variants and queried by
    Euclidean distance (paper §4). *)

type entry = {
  source : string;  (** benchmark/nest label *)
  embedding : Daisy_embedding.Embedding.t;
  recipe : Daisy_transforms.Recipe.t;
  canon_hash : int;  (** canonical structure hash of the normalized nest *)
}

type t

val create : unit -> t

val of_entries : entry list -> t
(** A database holding exactly [entries] (same order as {!entries}
    returns them). *)

val size : t -> int

val add :
  t ->
  source:string ->
  nest:Daisy_loopir.Ir.loop ->
  recipe:Daisy_transforms.Recipe.t ->
  unit

val entries : t -> entry list
(** All entries, most recently added first. *)

val merge : into:t -> t -> unit
(** [merge ~into src] appends [src]'s entries to [into] as if [src]'s adds
    had been replayed on [into] in order (for parallel shard seeding). *)

val query : t -> k:int -> Daisy_loopir.Ir.loop -> (float * entry) list
(** The [k] nearest entries in embedding space, closest first. Runs
    through the ANN index when one is attached (see {!build_index} /
    {!load_index}), as a linear scan otherwise — with bit-identical
    results either way (exact top-k agreement, tie order included). *)

val query_embedding : t -> k:int -> Daisy_embedding.Embedding.t -> (float * entry) list
(** {!query} for a pre-computed query embedding. *)

val fingerprint : t -> string
(** FNV-1a-64 fingerprint of the database contents (every entry's
    serialized body, in order) — the staleness rule for persisted ANN
    indexes. Survives a {!save}/{!load} round-trip. *)

val build_index : ?algo:Daisy_embedding.Ann.algo -> t -> unit
(** Build and attach an in-memory ANN index over the current entries.
    The index is a pure accelerator: {!query} results do not change.
    Any later {!add}/{!merge} detaches it. *)

val save_index : t -> string -> unit
(** Persist the attached index atomically ([DAISYANN 1] format).
    Raises [Invalid_argument] if no index is attached. *)

val load_index : t -> string -> (string, string) result
(** [load_index db path] — attach a persisted index (paged: entry
    vectors load lazily per query). [Ok description] on success;
    [Error reason] when the file is missing, corrupt, a different
    version, or stale ({!fingerprint} mismatch). A page corruption
    discovered later, mid-query, is also safe: the query falls back to
    the linear scan with one warning (see {!index_fallbacks}). *)

val rebuild_index : ?algo:Daisy_embedding.Ann.algo -> t -> string -> string
(** Build a fresh index, persist it at the given path, attach it, and
    return its description. *)

val has_index : t -> bool
val detach_index : t -> unit

val index_description : t -> string option
(** Description of the attached index, if any. *)

val index_fallbacks : unit -> int
(** Process-wide count of queries that hit a corrupt index and fell
    back to the linear scan. *)

val reset_index_fallbacks : unit -> unit

val exact_matches : t -> Daisy_loopir.Ir.loop -> entry list
(** Entries whose normalized structure is identical — exact transfer
    hits. *)

val entry_to_lines : entry -> string list
(** The 4-line body framing used by {!save}, exposed so other
    persistent stores (e.g. the bench harness's shard checkpoints) can
    embed entries in their own records. Inverse of {!entry_of_lines}. *)

val entry_of_lines : string list -> (entry, string) result
(** Parse the 4 body lines produced by {!entry_to_lines} (no checksum
    framing). *)

val save : t -> string -> unit
(** [save db path] — write the versioned on-disk format: a
    ["DAISYDB 1"] header, then one checksummed block per entry
    (embeddings printed with [%h], so floats round-trip exactly). A
    {!load} of the result reproduces the entry list — and therefore
    every {!query}/{!exact_matches} result — bit for bit. The file is
    replaced atomically (write-temp, fsync, rename), so a crash
    mid-save — including one injected at the per-entry ["db_save"]
    [Daisy_support.Fault] point — leaves any previous database intact.
    The format is documented in docs/robustness.md. *)

val load : string -> t * string list
(** [load path] — read a database written by {!save}. Corrupt entries
    (bad checksum, malformed field, truncated block) are skipped
    individually, each contributing a warning string; the surviving
    entries load in file order. Raises [Daisy_support.Diag.Error] only
    for whole-file problems: unreadable file, bad magic, or unsupported
    version. Every entry passes through the ["db_load"]
    [Daisy_support.Fault] injection point. *)

val pp : t Fmt.t
