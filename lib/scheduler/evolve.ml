(** Evolutionary recipe search (paper §4, "Seeding a Scheduling Database").

    Epoch 1 seeds the population from Tiramisu-style proposals; it is
    refined through mutation + selection with the simulated runtime as
    fitness. Later epochs re-seed from the best recipes of the most similar
    loop nests (transfer between nests) — implemented in
    {!Seed.seed_database}.

    Fitness evaluations within a generation are independent, so they are
    the unit of parallelism: pass [?pool] to score the population across
    domains. All stochastic decisions (mutation, crossover) stay on the
    submitting thread and draw from the caller's [rng] in a fixed order,
    and {!Daisy_support.Pool.map} preserves list order, so parallel and
    sequential searches return bit-identical results. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Recipe = Daisy_transforms.Recipe
module Legality = Daisy_dependence.Legality

(** Everything the simulated runtime of a candidate depends on (besides
    the shared ctx): the canonical nest structure plus the declarations
    the cost model's memory layout reads. The key must be {e exact} — a
    lossy hash (like [Ir.hash_structure], which truncates deep trees)
    would let two different nests collide, and then the cached value
    would depend on which nest was evaluated first: deterministic-but-
    wrong sequentially, racy under a pool. [Hashtbl]'s structural key
    equality resolves hash-bucket collisions exactly. *)
type fitness_key = {
  canon : Ir.node list;
  arrays : Ir.array_decl list;
  local_scalars : string list;
  scalar_params : string list;
  recipe : string;
}

(** Fitness memoization guarded by a mutex so concurrent workers can share
    it; values are pure functions of the key, so racing recomputations
    store the same float and cache contents stay deterministic at any job
    count. *)
type fitness_cache = {
  tbl : (fitness_key, float) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create_cache ?(size = 64) () =
  { tbl = Hashtbl.create size; lock = Mutex.create (); hits = 0; misses = 0 }

let cache_find cache key =
  Mutex.lock cache.lock;
  let v = Hashtbl.find_opt cache.tbl key in
  (match v with
  | Some _ -> cache.hits <- cache.hits + 1
  | None -> cache.misses <- cache.misses + 1);
  Mutex.unlock cache.lock;
  v

let cache_hits cache =
  Mutex.lock cache.lock;
  let h = cache.hits in
  Mutex.unlock cache.lock;
  h

let cache_misses cache =
  Mutex.lock cache.lock;
  let m = cache.misses in
  Mutex.unlock cache.lock;
  m

let cache_store cache key v =
  Mutex.lock cache.lock;
  Hashtbl.replace cache.tbl key v;
  Mutex.unlock cache.lock

(** [(hits, misses)] read atomically — a consistent pair even while
    workers are scoring. The fitness cache is the first memoization
    level; below it, every cache-miss evaluation reaches the
    cross-candidate simulation memo through [Common.nest_runtime_ms]
    (see {!Common.sim_memo_stats} for its counters). *)
let cache_stats cache =
  Mutex.lock cache.lock;
  let r = (cache.hits, cache.misses) in
  Mutex.unlock cache.lock;
  r

(** All key fields except the recipe are fixed for a given (outer, p,
    nest) — a whole search varies only in [recipe]. *)
let base_key ~outer (p : Ir.program) (nest : Ir.loop) : fitness_key =
  {
    canon = Ir.canon_nodes [ Common.wrap_outer outer (Ir.Nloop nest) ];
    arrays = p.Ir.arrays;
    local_scalars = p.Ir.local_scalars;
    scalar_params = p.Ir.scalar_params;
    recipe = "";
  }

(** Uncached candidate evaluation — the cache-miss path, also reused by
    the quarantine shrinker's failure predicate. Passes through the
    ["eval_candidate"] fault point. *)
let eval_raw (ctx : Common.ctx) ~outer (p : Ir.program) (nest : Ir.loop)
    (r : Recipe.t) : float =
  Fault.inject "eval_candidate";
  match Recipe.apply ~outer nest r with
  | Error _ -> infinity
  | Ok nest' -> (
      (* a candidate that blows its step budget is not an error — it is
         an infinitely bad schedule *)
      try
        Common.nest_runtime_ms ctx p (Common.wrap_outer outer (Ir.Nloop nest'))
      with Budget.Exhausted -> infinity)

let eval_cached (cache : fitness_cache) (ctx : Common.ctx) ~outer
    (p : Ir.program) (nest : Ir.loop) (r : Recipe.t) : float =
  let key = { (base_key ~outer p nest) with recipe = Recipe.to_string r } in
  match cache_find cache key with
  | Some t -> t
  | None ->
      let t = eval_raw ctx ~outer p nest r in
      cache_store cache key t;
      t

(* ------------------------------------------------------------------ *)
(* Checkpointing: a [snapshot] is the complete resumable state of one
   search — the generation about to run, its population, the RNG state,
   and every fitness this search has computed (keyed by the printed
   recipe; all other key fields are fixed per search). Restoring a
   snapshot into a fresh cache and re-running produces bit-identical
   results: fitnesses are pure, floats round-trip via %h, and all
   stochastic decisions happen on the submitting thread. *)

type snapshot = {
  gen : int;
  pop : Recipe.t list;
  rng_state : int64;
  fits : (string * float) list;  (** printed recipe -> simulated ms *)
}

(** [search ctx p nest ~seeds ~rng] — refine a population of recipes for
    [nest]. Returns the best recipe and its fitness (ms).

    With [on_generation], a {!snapshot} is emitted before every
    generation (including a terminal one at [gen = iterations], so a
    resume only redoes final selection); [resume] restarts from such a
    snapshot. With [quarantine] or [ctx.eval_deadline], scoring runs
    supervised ({!Pool.map_supervised}): a candidate whose evaluation
    crashes or exceeds the deadline — after one retry — is excluded from
    selection deterministically (cached fitness [infinity]) and shipped
    to the quarantine sink instead of killing the search. *)
let search ?(population = 8) ?(iterations = 3) ?cache ?pool
    ?(outer = []) ?quarantine ?on_generation ?resume (ctx : Common.ctx)
    (p : Ir.program) (nest : Ir.loop) ~(seeds : Recipe.t list)
    ~(rng : Rng.t) : Recipe.t * float =
  let cache = match cache with Some c -> c | None -> create_cache () in
  let base = base_key ~outer p nest in
  (* every fitness this search has seen — the payload of a snapshot *)
  let fits : (string, float) Hashtbl.t = Hashtbl.create 32 in
  let band, _ = Legality.perfect_band nest in
  let band_size = List.length band in
  (* Quarantine reproducers are self-contained single-nest programs; the
     shrinker's predicate re-extracts the nest and re-evaluates under
     the same deadline. It never raises: an exception means "still
     failing". *)
  let repro_program = Common.single_nest_program p (Ir.Nloop nest) in
  let still_fails (p' : Ir.program) (r' : Recipe.t) =
    match p'.Ir.body with
    | [ Ir.Nloop nest' ] -> (
        match
          Util.with_deadline ctx.Common.eval_deadline (fun () ->
              eval_raw ctx ~outer:[] p' nest' r')
        with
        | (_ : float) -> false
        | exception _ -> true)
    | _ -> false
  in
  let fatal = function
    | Checkpoint.Interrupted _ | Diag.Error _ -> true
    | _ -> false
  in
  let supervised = ctx.Common.eval_deadline <> None || quarantine <> None in
  let score pop =
    let scored =
      if not supervised then
        Pool.map ?pool (fun r -> (eval_cached cache ctx ~outer p nest r, r)) pop
      else
        Pool.map_supervised ?pool ?deadline_s:ctx.Common.eval_deadline ~fatal
          (fun r -> eval_cached cache ctx ~outer p nest r)
          pop
        |> List.map2
             (fun r -> function
               | Ok t -> (t, r)
               | Error e ->
                   (* deterministic exclusion: the failed candidate
                      scores [infinity] (cached, so it is never re-run)
                      and its shrunk reproducer goes to quarantine *)
                   cache_store cache
                     { base with recipe = Recipe.to_string r }
                     infinity;
                   (match quarantine with
                   | None -> ()
                   | Some q ->
                       ignore
                         (Quarantine.report q
                            ~reason:
                              (Printf.sprintf
                                 "candidate evaluation failed: %s"
                                 (Printexc.to_string e))
                            ~sizes:ctx.Common.sizes ~program:repro_program
                            ~recipe:r ~still_fails));
                   (infinity, r))
             pop
    in
    List.iter (fun (t, r) -> Hashtbl.replace fits (Recipe.to_string r) t) scored;
    scored
  in
  let emit gen pop =
    (match on_generation with
    | None -> ()
    | Some f ->
        let fits_list =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) fits []
          |> List.sort compare
        in
        f { gen; pop; rng_state = Rng.state rng; fits = fits_list });
    (* after the snapshot is safely out: honor a pending SIGINT/SIGTERM *)
    Checkpoint.check_interrupt ()
  in
  let initial =
    Util.dedup ~eq:Recipe.equal (([] : Recipe.t) :: seeds) |> Util.take population
  in
  let start_gen, start_pop =
    match resume with
    | None -> (0, initial)
    | Some s ->
        Rng.set_state rng s.rng_state;
        List.iter
          (fun (rs, t) ->
            Hashtbl.replace fits rs t;
            cache_store cache { base with recipe = rs } t)
          s.fits;
        (s.gen, s.pop)
  in
  let rec refine gen pop =
    emit gen pop;
    if gen >= iterations then pop
    else begin
      let scored =
        score pop |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let survivors = Util.take (max 2 (population / 2)) scored in
      let parents = List.map snd survivors in
      let children =
        List.concat_map
          (fun r ->
            [ Recipe.mutate rng band_size r;
              Recipe.crossover rng r (Rng.choose rng parents) ])
          parents
      in
      let next =
        Util.dedup ~eq:Recipe.equal (parents @ children) |> Util.take population
      in
      refine (gen + 1) next
    end
  in
  let final = refine start_gen start_pop in
  (* Final selection: score every survivor (plus the empty recipe, so the
     search never returns worse-than-unoptimized) exactly once, then take
     the minimum by (fitness, printed recipe). The string tie-break makes
     the winner independent of population order, so sequential and
     parallel runs cannot diverge on fitness ties. *)
  let candidates = Util.dedup ~eq:Recipe.equal (([] : Recipe.t) :: final) in
  let best =
    match score candidates with
    | [] -> assert false (* candidates always contains [] *)
    | first :: rest ->
        List.fold_left
          (fun ((bt, br) as acc) (t, r) ->
            if
              t < bt
              || (t = bt && Recipe.to_string r < Recipe.to_string br)
            then (t, r)
            else acc)
          first rest
  in
  (snd best, fst best)
