(** Evolutionary recipe search (paper §4, "Seeding a Scheduling Database").

    Epoch 1 seeds the population from Tiramisu-style proposals; it is
    refined through mutation + selection with the simulated runtime as
    fitness. Later epochs re-seed from the best recipes of the most similar
    loop nests (transfer between nests) — implemented in
    {!Seed.seed_database}.

    Fitness evaluations within a generation are independent, so they are
    the unit of parallelism: pass [?pool] to score the population across
    domains. All stochastic decisions (mutation, crossover) stay on the
    submitting thread and draw from the caller's [rng] in a fixed order,
    and {!Daisy_support.Pool.map} preserves list order, so parallel and
    sequential searches return bit-identical results. *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Recipe = Daisy_transforms.Recipe
module Legality = Daisy_dependence.Legality

(** Everything the simulated runtime of a candidate depends on (besides
    the shared ctx): the canonical nest structure plus the declarations
    the cost model's memory layout reads. The key must be {e exact} — a
    lossy hash (like [Ir.hash_structure], which truncates deep trees)
    would let two different nests collide, and then the cached value
    would depend on which nest was evaluated first: deterministic-but-
    wrong sequentially, racy under a pool. [Hashtbl]'s structural key
    equality resolves hash-bucket collisions exactly. *)
type fitness_key = {
  canon : Ir.node list;
  arrays : Ir.array_decl list;
  local_scalars : string list;
  scalar_params : string list;
  recipe : string;
}

(** Fitness memoization guarded by a mutex so concurrent workers can share
    it; values are pure functions of the key, so racing recomputations
    store the same float and cache contents stay deterministic at any job
    count. *)
type fitness_cache = {
  tbl : (fitness_key, float) Hashtbl.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
}

let create_cache ?(size = 64) () =
  { tbl = Hashtbl.create size; lock = Mutex.create (); hits = 0; misses = 0 }

let cache_find cache key =
  Mutex.lock cache.lock;
  let v = Hashtbl.find_opt cache.tbl key in
  (match v with
  | Some _ -> cache.hits <- cache.hits + 1
  | None -> cache.misses <- cache.misses + 1);
  Mutex.unlock cache.lock;
  v

let cache_hits cache =
  Mutex.lock cache.lock;
  let h = cache.hits in
  Mutex.unlock cache.lock;
  h

let cache_misses cache =
  Mutex.lock cache.lock;
  let m = cache.misses in
  Mutex.unlock cache.lock;
  m

let cache_store cache key v =
  Mutex.lock cache.lock;
  Hashtbl.replace cache.tbl key v;
  Mutex.unlock cache.lock

let eval_cached (cache : fitness_cache) (ctx : Common.ctx) ~outer
    (p : Ir.program) (nest : Ir.loop) (r : Recipe.t) : float =
  let key =
    {
      canon = Ir.canon_nodes [ Common.wrap_outer outer (Ir.Nloop nest) ];
      arrays = p.Ir.arrays;
      local_scalars = p.Ir.local_scalars;
      scalar_params = p.Ir.scalar_params;
      recipe = Recipe.to_string r;
    }
  in
  match cache_find cache key with
  | Some t -> t
  | None ->
      let t =
        match Recipe.apply ~outer nest r with
        | Error _ -> infinity
        | Ok nest' -> (
            (* a candidate that blows its step budget is not an error —
               it is an infinitely bad schedule *)
            try
              Common.nest_runtime_ms ctx p
                (Common.wrap_outer outer (Ir.Nloop nest'))
            with Budget.Exhausted -> infinity)
      in
      cache_store cache key t;
      t

(** [search ctx p nest ~seeds ~rng] — refine a population of recipes for
    [nest]. Returns the best recipe and its fitness (ms). *)
let search ?(population = 8) ?(iterations = 3) ?cache ?pool
    ?(outer = []) (ctx : Common.ctx) (p : Ir.program) (nest : Ir.loop)
    ~(seeds : Recipe.t list) ~(rng : Rng.t) : Recipe.t * float =
  let cache = match cache with Some c -> c | None -> create_cache () in
  let band, _ = Legality.perfect_band nest in
  let band_size = List.length band in
  let score pop =
    Pool.map ?pool (fun r -> (eval_cached cache ctx ~outer p nest r, r)) pop
  in
  let initial =
    Util.dedup ~eq:Recipe.equal (([] : Recipe.t) :: seeds) |> Util.take population
  in
  let rec refine gen pop =
    if gen >= iterations then pop
    else begin
      let scored =
        score pop |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let survivors = Util.take (max 2 (population / 2)) scored in
      let parents = List.map snd survivors in
      let children =
        List.concat_map
          (fun r ->
            [ Recipe.mutate rng band_size r;
              Recipe.crossover rng r (Rng.choose rng parents) ])
          parents
      in
      let next =
        Util.dedup ~eq:Recipe.equal (parents @ children) |> Util.take population
      in
      refine (gen + 1) next
    end
  in
  let final = refine 0 initial in
  (* Final selection: score every survivor (plus the empty recipe, so the
     search never returns worse-than-unoptimized) exactly once, then take
     the minimum by (fitness, printed recipe). The string tie-break makes
     the winner independent of population order, so sequential and
     parallel runs cannot diverge on fitness ties. *)
  let candidates = Util.dedup ~eq:Recipe.equal (([] : Recipe.t) :: final) in
  let best =
    match score candidates with
    | [] -> assert false (* candidates always contains [] *)
    | first :: rest ->
        List.fold_left
          (fun ((bt, br) as acc) (t, r) ->
            if
              t < bt
              || (t = bt && Recipe.to_string r < Recipe.to_string br)
            then (t, r)
            else acc)
          first rest
  in
  (snd best, fst best)
