(** The daisy auto-scheduler (paper §4): a priori normalization, BLAS idiom
    detection, then similarity-based transfer tuning from a recipe
    database.

    The two pipeline stages can be disabled independently for the ablation
    study (Fig. 7): [normalize = false] reproduces "transfer tuning without
    normalization", [transfer = false] reproduces "normalization without
    transfer tuning"; both disabled is plain clang.

    Loop nests that cannot be lifted to the symbolic representation
    ({!Common.liftable}) are left untouched by normalization and
    optimization; daisy's runtime still executes them in parallel, using
    atomic updates for read-modify-write computations it cannot analyze —
    reproducing the expensive atomic reductions the paper reports on
    correlation and covariance (§4.1). *)

open Daisy_support
module Ir = Daisy_loopir.Ir
module Recipe = Daisy_transforms.Recipe
module Lt = Daisy_transforms.Loop_transforms
module Legality = Daisy_dependence.Legality
module Pipeline = Daisy_normalize.Pipeline
module Iter_norm = Daisy_normalize.Iter_norm
module Patterns = Daisy_blas.Patterns
module Interp = Daisy_interp.Interp

type options = { normalize : bool; transfer : bool }

let default_options = { normalize = true; transfer = true }

type action =
  [ `Blas of string | `Recipe of Recipe.t | `Unoptimized | `Unliftable ]

type nest_decision = { label : string; action : action }

type schedule_report = {
  program : Ir.program;
  decisions : nest_decision list;
  blas_calls : int;
}

(** The unliftable fallback: the runtime executes the nest in parallel
    without analysis — atomic updates whenever the body contains
    read-modify-write computations. *)
let unliftable_fallback (nest : Ir.loop) : Ir.node =
  let has_reduction =
    List.exists Legality.is_reduction_comp (Ir.comps_in nest.Ir.body)
    || List.exists Legality.is_reduction_comp
         (match nest.Ir.body with [ Ir.Ncomp c ] -> [ c ] | _ -> [])
  in
  let attrs =
    { nest.Ir.attrs with Ir.parallel = true; atomic = has_reduction }
  in
  Ir.Nloop { nest with Ir.attrs = attrs }

(** With a quarantine sink attached, every applied database recipe is
    verified against the untransformed nest on the reference interpreter
    before it may enter the tournament ([Interp.equivalent], plus the
    ["equiv_miscompile"] fault point forcing a mismatch for tests). A
    non-equivalent candidate is excluded deterministically and reported
    with a shrunk reproducer — a miscompiling recipe can never win. *)
let verify_candidate (ctx : Common.ctx) ~quarantine ~(outer : Ir.loop list)
    (p : Ir.program) (nest : Ir.loop) (r : Recipe.t) (nest' : Ir.loop) : bool
    =
  match quarantine with
  | None -> true
  | Some q ->
      let unit_program n =
        Common.single_nest_program p (Common.wrap_outer outer (Ir.Nloop n))
      in
      let ok =
        (not (Fault.fires "equiv_miscompile"))
        && (try
              Interp.equivalent (unit_program nest) (unit_program nest')
                ~sizes:ctx.sizes ()
            with _ -> false)
      in
      if not ok then begin
        let repro = Common.single_nest_program p (Ir.Nloop nest) in
        (* "still fails" = the recipe still applies and the result is
           still not equivalent; predicate exceptions count as failing *)
        let still_fails (p' : Ir.program) (r' : Recipe.t) =
          match p'.Ir.body with
          | [ Ir.Nloop n0 ] -> (
              match Recipe.apply ~outer:[] n0 r' with
              | Error _ -> false
              | Ok n1 -> (
                  try
                    Fault.fires "equiv_miscompile"
                    || not
                         (Interp.equivalent
                            { p' with Ir.body = [ Ir.Nloop n0 ] }
                            { p' with Ir.body = [ Ir.Nloop n1 ] }
                            ~sizes:ctx.sizes ())
                  with _ -> true))
          | _ -> false
        in
        ignore
          (Quarantine.report q
             ~reason:"scheduled candidate is not equivalent to its nest"
             ~sizes:ctx.sizes ~program:repro ~recipe:r ~still_fails)
      end;
      ok

(** Candidate schedules for one liftable unit: as-is, auto-vectorized, and
    every database recipe that applies strictly; the simulated runtime
    (of the unit wrapped in its enclosing loops) picks. *)
let transfer_nest (ctx : Common.ctx) ~(db : Database.t) ~quarantine
    ~(outer : Ir.loop list) (p : Ir.program) (nest : Ir.loop) :
    Ir.loop * action =
  let candidates =
    let exact =
      List.map (fun e -> e.Database.recipe) (Database.exact_matches db nest)
    in
    let near =
      List.map (fun (_, e) -> e.Database.recipe) (Database.query db ~k:10 nest)
    in
    Util.dedup ~eq:Recipe.equal (exact @ near)
  in
  let baseline =
    (nest, `Unoptimized)
    ::
    (match Lt.vectorize ~outer nest with
    | Ok n -> [ (n, `Unoptimized) ]
    | Error _ -> [])
  in
  let applied =
    List.filter_map
      (fun r ->
        match Recipe.apply ~outer nest r with
        | Ok nest' when verify_candidate ctx ~quarantine ~outer p nest r nest'
          ->
            Some (nest', `Recipe r)
        | Ok _ | Error _ -> None)
      candidates
  in
  let _, n, a =
    List.fold_left
      (fun ((bt, _, _) as best) (n, a) ->
        let t =
          Common.nest_runtime_ms ctx p (Common.wrap_outer outer (Ir.Nloop n))
        in
        if t < bt then (t, n, a) else best)
      (infinity, nest, (`Unoptimized : action))
      (baseline @ applied)
  in
  (n, a)

(** Recursively optimize the schedulable units of a nest (see
    {!Common.schedulable_units}): leaf units get transfer tuning; purely
    structural outer loops recurse. *)
let rec optimize_nest (ctx : Common.ctx) ~db ~options ~quarantine ~decide
    ~counter ~(outer : Ir.loop list) (sub : Ir.program) (nest : Ir.loop) :
    Ir.loop =
  let band, body = Daisy_dependence.Legality.perfect_band nest in
  let has_comp =
    List.exists (function Ir.Ncomp _ | Ir.Ncall _ -> true | _ -> false) body
  in
  let subloops = List.exists (function Ir.Nloop _ -> true | _ -> false) body in
  if subloops && not has_comp then begin
    (* structural outer loops: recurse into the children *)
    let body' =
      List.map
        (function
          | Ir.Nloop sub_nest ->
              Ir.Nloop
                (optimize_nest ctx ~db ~options ~quarantine ~decide ~counter
                   ~outer:(outer @ band) sub sub_nest)
          | other -> other)
        body
    in
    Daisy_normalize.Stride.rebuild_band band body'
  end
  else begin
    incr counter;
    let label = Printf.sprintf "nest#%d" !counter in
    if options.transfer then begin
      let nest', action = transfer_nest ctx ~db ~quarantine ~outer sub nest in
      decide label action;
      nest'
    end
    else begin
      decide label `Unoptimized;
      match Lt.vectorize ~outer nest with
      | Ok nest' -> nest'
      | Error _ -> nest
    end
  end

(** Leaf-unit scheduling including idiom detection: the BLAS replacement is
    one more candidate, adopted only when the simulated runtime prefers it
    (a tuned library is not automatically the best choice — e.g. a
    memory-bound rank-2 update may lose to a fused parallel nest). *)
let schedule_unit (ctx : Common.ctx) ~db ~options ~quarantine ~decide
    ~counter ~outer sub (nest : Ir.loop) : Ir.node =
  let transfer_result () =
    Ir.Nloop
      (optimize_nest ctx ~db ~options ~quarantine ~decide ~counter ~outer sub
         nest)
  in
  if not options.transfer then transfer_result ()
  else
    match Patterns.detect_nest nest with
    | None -> transfer_result ()
    | Some call ->
        let call_node = Ir.Ncall call in
        let t_call =
          Common.nest_runtime_ms ctx sub (Common.wrap_outer outer call_node)
        in
        (* evaluate the transfer path without emitting decisions yet *)
        let silent = ref [] in
        let silent_decide label action = silent := (label, action) :: !silent in
        let counter' = ref !counter in
        let transfer_node =
          Ir.Nloop
            (optimize_nest ctx ~db ~options ~quarantine
               ~decide:silent_decide ~counter:counter' ~outer sub nest)
        in
        let t_transfer =
          Common.nest_runtime_ms ctx sub (Common.wrap_outer outer transfer_node)
        in
        if t_call <= t_transfer then begin
          incr counter;
          decide (Printf.sprintf "nest#%d" !counter) (`Blas call.Ir.kernel);
          call_node
        end
        else begin
          counter := !counter';
          List.iter (fun (l, a) -> decide l a) (List.rev !silent);
          transfer_node
        end

(** [schedule ctx ~db p] — run the daisy pipeline on a program. *)
let schedule ?(options = default_options) ?quarantine (ctx : Common.ctx)
    ~(db : Database.t) (p : Ir.program) : schedule_report =
  let decisions = ref [] in
  let blas_calls = ref 0 in
  let decide label action = decisions := { label; action } :: !decisions in
  let counter = ref 0 in
  (* collect the extra local arrays normalization introduces *)
  let extra_arrays = ref [] in
  let schedule_liftable_node (n : Ir.node) : Ir.node list =
    (* normalize (or just canonicalize iterators) this node in isolation *)
    let sub = Common.single_nest_program p n in
    let sub =
      if options.normalize then Pipeline.normalize ~sizes:ctx.sizes sub
      else Iter_norm.run sub
    in
    List.iter
      (fun (a : Ir.array_decl) ->
        if
          not
            (List.exists
               (fun (b : Ir.array_decl) -> String.equal a.Ir.name b.Ir.name)
               p.Ir.arrays)
        then extra_arrays := a :: !extra_arrays)
      sub.Ir.arrays;
    (* idiom detection is one of the database's optimization recipes
       (paper §4): each detected call competes with the transfer path on
       simulated runtime *)
    List.map
      (fun n ->
        match n with
        | Ir.Ncall k ->
            incr counter;
            decide (Printf.sprintf "nest#%d" !counter) (`Blas k.Ir.kernel);
            n
        | Ir.Ncomp _ -> n
        | Ir.Nloop nest ->
            let result =
              schedule_unit ctx ~db ~options ~quarantine ~decide ~counter
                ~outer:[] sub nest
            in
            (match result with
            | Ir.Ncall _ -> incr blas_calls
            | _ -> ());
            result)
      sub.Ir.body
  in
  let body =
    List.concat_map
      (fun n ->
        match n with
        | Ir.Nloop nest when not (Common.liftable n) ->
            incr counter;
            decide (Printf.sprintf "nest#%d" !counter) `Unliftable;
            [ unliftable_fallback nest ]
        | Ir.Nloop _ -> schedule_liftable_node n
        | other -> [ other ])
      p.Ir.body
  in
  {
    program = { p with Ir.body; arrays = p.Ir.arrays @ List.rev !extra_arrays };
    decisions = List.rev !decisions;
    blas_calls = !blas_calls;
  }

(* ------------------------------------------------------------------ *)
(* Request-scoped scheduling: the serving layer's entry point            *)

type request_outcome = {
  report : schedule_report;
  predicted_ms : float;
  engine_used : Daisy_machine.Cost.engine;
}

(** [schedule_request ~base ~db p] — run one scheduling request under a
    context derived from [base] ({!Common.request_ctx}): per-request
    trace [engine] (a loaded server degrades to [Cost.Approx]),
    per-evaluation step fuel [eval_steps] ([Budget.Exhausted] escapes),
    and a wall-clock [eval_deadline] covering the {e whole} request —
    normalization, every candidate evaluation, and the final cost — via
    [Util.with_deadline] on the calling domain
    ([Util.Deadline_exceeded] escapes). The returned [predicted_ms] is
    the simulated runtime of the scheduled program under the same
    request context. *)
let schedule_request ?options ?quarantine ~(base : Common.ctx) ?engine
    ?eval_steps ?eval_deadline ?sizes ~(db : Database.t) (p : Ir.program) :
    request_outcome =
  let ctx =
    Common.request_ctx base ?engine ?eval_steps ?eval_deadline ?sizes ()
  in
  Util.with_deadline ctx.Common.eval_deadline (fun () ->
      let report = schedule ?options ?quarantine ctx ~db p in
      let predicted_ms = Common.runtime_ms ctx report.program in
      { report; predicted_ms; engine_used = ctx.Common.engine })

let pp_decision ppf (d : nest_decision) =
  match d.action with
  | `Blas k -> Fmt.pf ppf "%s: BLAS call %s" d.label k
  | `Recipe r -> Fmt.pf ppf "%s: recipe %a" d.label Recipe.pp r
  | `Unoptimized -> Fmt.pf ppf "%s: unoptimized (-O3 only)" d.label
  | `Unliftable -> Fmt.pf ppf "%s: UNLIFTABLE (parallel fallback)" d.label
