(** Shared context and evaluation helpers for all schedulers. *)

type ctx = {
  config : Daisy_machine.Config.t;
  sizes : (string * int) list;
  threads : int;
  sample_outer : int;  (** outer-loop sampling bound; 0 = exact *)
  engine : Daisy_machine.Cost.engine;
      (** trace engine used for every evaluation (default [Compiled]) *)
  eval_steps : int option;
      (** per-evaluation step budget; [None] = unlimited *)
  eval_deadline : float option;
      (** per-candidate wall-clock deadline in seconds, enforced
          cooperatively by supervised search evaluation
          ([Daisy_support.Pool.map_supervised]); [None] = unlimited *)
  sim_memo : Daisy_machine.Cost.sim_memo option;
      (** cross-candidate simulation memo shared by every evaluation
          under this context (safe across domains); [None] disables
          memoization *)
}

val make_ctx :
  ?config:Daisy_machine.Config.t ->
  ?threads:int ->
  ?sample_outer:int ->
  ?engine:Daisy_machine.Cost.engine ->
  ?eval_steps:int ->
  ?eval_deadline:float ->
  ?sim_memo:Daisy_machine.Cost.sim_memo ->
  sizes:(string * int) list ->
  unit ->
  ctx
(** [sim_memo] defaults to a fresh memo over [config]
    (exact memoization is always safe); set [DAISY_SIM_MEMO=0] to
    default it off instead. *)

val request_ctx :
  ctx ->
  ?engine:Daisy_machine.Cost.engine ->
  ?eval_steps:int ->
  ?eval_deadline:float ->
  ?sizes:(string * int) list ->
  unit ->
  ctx
(** Derive a request-scoped context from a long-lived base context (the
    serving layer's entry point): shares config, threads, sampling bound
    and the simulation memo; overrides engine/fuel/deadline/sizes per
    request. *)

val sim_memo_stats : ctx -> (int * int) option
(** [(hits, misses)] of the context's simulation memo, [None] if off. *)

val runtime_ms : ctx -> Daisy_loopir.Ir.program -> float
(** Simulated runtime in milliseconds, via
    [Daisy_machine.Cost.evaluate_guarded]: each evaluation gets a fresh
    budget of [eval_steps] walked iterations
    ([Daisy_support.Budget.Exhausted] escapes) and compiled-engine
    failures transparently fall back to the tree walker. *)

val report : ctx -> Daisy_loopir.Ir.program -> Daisy_machine.Cost.report

val single_nest_program :
  Daisy_loopir.Ir.program -> Daisy_loopir.Ir.node -> Daisy_loopir.Ir.program

val nest_runtime_ms : ctx -> Daisy_loopir.Ir.program -> Daisy_loopir.Ir.node -> float

val innermost_loops : Daisy_loopir.Ir.node list -> Daisy_loopir.Ir.loop list

val vector_profitable : Daisy_loopir.Ir.loop -> bool
(** Static vectorization profitability: mostly unit-stride accesses and a
    body small enough that a compiler's vectorizer does not give up. *)

val scop_compatible : Daisy_loopir.Ir.node -> bool
(** Affine subscripts/bounds and no guards — the SCoP condition. *)

val transposed_self_alias : Daisy_loopir.Ir.node -> bool
(** Stores to one array through permuted subscript vectors (e.g.
    [corr[i][j]] and [corr[j][i]]) — defeats the dataflow lifting. *)

val liftable : Daisy_loopir.Ir.node -> bool
(** Can this nest be lifted for normalization and scheduling? *)

val wrap_outer :
  Daisy_loopir.Ir.loop list -> Daisy_loopir.Ir.node -> Daisy_loopir.Ir.node
(** Rebuild the chain of enclosing loops around a single node. *)

val schedulable_units :
  outer:Daisy_loopir.Ir.loop list ->
  Daisy_loopir.Ir.loop ->
  (Daisy_loopir.Ir.loop list * Daisy_loopir.Ir.loop) list
(** The nests an auto-scheduler optimizes, each with its enclosing
    sequential loops; purely structural outer loops recurse into their
    children. *)

val program_units :
  Daisy_loopir.Ir.program -> (Daisy_loopir.Ir.loop list * Daisy_loopir.Ir.loop) list

val map_top_nests :
  (Daisy_loopir.Ir.loop -> Daisy_loopir.Ir.node) ->
  Daisy_loopir.Ir.program ->
  Daisy_loopir.Ir.program
