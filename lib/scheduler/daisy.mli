(** The daisy auto-scheduler (paper §4): a priori normalization, BLAS idiom
    detection, then similarity-based transfer tuning from a recipe
    database.

    Unliftable nests (see {!Common.liftable}) are left untouched by
    normalization; the runtime fallback executes them in parallel with
    atomic updates for reductions — reproducing the §4.1
    correlation/covariance behaviour. *)

type options = {
  normalize : bool;  (** a priori normalization (off: "transfer w/o norm") *)
  transfer : bool;  (** database + idiom detection (off: "norm w/o transfer") *)
}

val default_options : options

type action =
  [ `Blas of string
  | `Recipe of Daisy_transforms.Recipe.t
  | `Unoptimized
  | `Unliftable ]

type nest_decision = { label : string; action : action }

type schedule_report = {
  program : Daisy_loopir.Ir.program;
  decisions : nest_decision list;
  blas_calls : int;
}

val schedule :
  ?options:options ->
  ?quarantine:Quarantine.t ->
  Common.ctx ->
  db:Database.t ->
  Daisy_loopir.Ir.program ->
  schedule_report
(** With [quarantine], every database recipe that applies to a nest is
    additionally verified on the reference interpreter
    ([Daisy_interp.Interp.equivalent], plus the ["equiv_miscompile"]
    fault point) before entering the runtime tournament: a candidate
    that is not semantically equivalent to its nest is excluded
    deterministically and reported to the sink with a shrunk
    reproducer, so a miscompiling recipe can never be scheduled. *)

type request_outcome = {
  report : schedule_report;
  predicted_ms : float;  (** simulated ms of the scheduled program *)
  engine_used : Daisy_machine.Cost.engine;
}

val schedule_request :
  ?options:options ->
  ?quarantine:Quarantine.t ->
  base:Common.ctx ->
  ?engine:Daisy_machine.Cost.engine ->
  ?eval_steps:int ->
  ?eval_deadline:float ->
  ?sizes:(string * int) list ->
  db:Database.t ->
  Daisy_loopir.Ir.program ->
  request_outcome
(** Request-scoped {!schedule} — the serving layer's entry point. Derives
    a per-request context from [base] ({!Common.request_ctx}) and runs
    the whole request (normalization, candidate tournament, final cost)
    under the request's wall deadline on the calling domain
    ([Daisy_support.Util.Deadline_exceeded] escapes); [eval_steps] fuels
    each candidate evaluation ([Daisy_support.Budget.Exhausted]
    escapes). *)

val pp_decision : nest_decision Fmt.t
