(** The symbolic loop-nest IR ("loopir").

    This is the representation the paper lifts from LLVM IR (§3): a tree of
    {e loop} and {e computation} nodes where iterators, domains and data
    accesses are symbolic expressions ({!Daisy_poly.Expr}). A computation is
    a unit of work with exactly one write to a data container (paper §2);
    loops carry scheduling attributes (parallel / vectorized / unroll) that
    the machine model interprets.

    The IR is immutable; transformations rebuild nodes. Fresh node ids come
    from {!fresh_id} so rebuilt nodes remain distinguishable in dependence
    graphs. *)

open Daisy_support
module Expr = Daisy_poly.Expr

(* ------------------------------------------------------------------ *)
(* Value expressions (floating-point computation language)             *)

type access = { array : string; indices : Expr.t list }

type vbinop = Vadd | Vsub | Vmul | Vdiv

type cmpop = Clt | Cle | Cgt | Cge | Ceq | Cne

type vexpr =
  | Vfloat of float
  | Vint of Expr.t  (** integer expression used as a floating value *)
  | Vread of access
  | Vscalar of string  (** scalar parameter or local scalar *)
  | Vbin of vbinop * vexpr * vexpr
  | Vneg of vexpr
  | Vcall of string * vexpr list  (** intrinsic: sqrt, exp, pow, min, max, ... *)
  | Vselect of pred * vexpr * vexpr

and pred =
  | Pcmp of cmpop * vexpr * vexpr
  | Pand of pred * pred
  | Por of pred * pred
  | Pnot of pred

(* ------------------------------------------------------------------ *)
(* Computations, loops, programs                                        *)

type dest = Darray of access | Dscalar of string

type comp = {
  cid : int;
  dest : dest;
  rhs : vexpr;
  guard : pred option;  (** computation executes only when the guard holds *)
}

type attrs = {
  parallel : bool;  (** execute iterations across threads *)
  atomic : bool;  (** parallel reduction via atomic updates *)
  vectorized : bool;  (** execute iterations in SIMD lanes *)
  unroll : int;  (** unroll factor; 1 = none *)
}

let no_attrs = { parallel = false; atomic = false; vectorized = false; unroll = 1 }

type node =
  | Ncomp of comp
  | Nloop of loop
  | Ncall of libcall
      (** an idiom-detected library call replacing a loop nest *)

and loop = {
  lid : int;
  iter : string;
  lo : Expr.t;  (** first value (inclusive) *)
  hi : Expr.t;  (** last value (inclusive) *)
  step : int;  (** non-zero; negative for downward loops *)
  body : node list;
  attrs : attrs;
}

and libcall = {
  kid : int;
  kernel : string;  (** e.g. "gemm", "syrk" *)
  args : string list;  (** array operands in kernel-specific order *)
  scalar_args : vexpr list;
  dims : Expr.t list;  (** problem dimensions in kernel-specific order *)
  writes_to : string list;  (** output arrays *)
}

type storage = Sparam | Slocal

type elem_ty = Fdouble

type array_decl = {
  name : string;
  elem : elem_ty;
  dims : Expr.t list;
  storage : storage;
}

type program = {
  pname : string;
  size_params : string list;  (** symbolic integer parameters *)
  scalar_params : string list;  (** floating scalar parameters *)
  arrays : array_decl list;  (** parameter and local arrays *)
  local_scalars : string list;  (** scalar temporaries *)
  body : node list;
}

(* ------------------------------------------------------------------ *)
(* Fresh ids                                                            *)

(* atomic so transformations may rebuild nodes concurrently on several
   domains (Support.Pool) without ever handing out a duplicate id *)
let id_counter = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add id_counter 1 + 1

let mk_comp ?guard dest rhs = { cid = fresh_id (); dest; rhs; guard }

let mk_loop ?(attrs = no_attrs) ~iter ~lo ~hi ?(step = 1) body =
  { lid = fresh_id (); iter; lo; hi; step; body; attrs }

(* ------------------------------------------------------------------ *)
(* Traversals                                                           *)

let rec fold_nodes f acc nodes =
  List.fold_left
    (fun acc n ->
      let acc = f acc n in
      match n with Nloop l -> fold_nodes f acc l.body | _ -> acc)
    acc nodes

(** [comps_in nodes] lists all computations in syntactic order. *)
let comps_in nodes =
  fold_nodes (fun acc n -> match n with Ncomp c -> c :: acc | _ -> acc) [] nodes
  |> List.rev

(** [loops_in nodes] lists all loops in pre-order. *)
let loops_in nodes =
  fold_nodes (fun acc n -> match n with Nloop l -> l :: acc | _ -> acc) [] nodes
  |> List.rev

(** [comps_with_context nodes] pairs each computation with its enclosing
    loops, outermost first. *)
let comps_with_context nodes =
  let rec go ctx acc nodes =
    List.fold_left
      (fun acc n ->
        match n with
        | Ncomp c -> (List.rev ctx, c) :: acc
        | Nloop l -> go (l :: ctx) acc l.body
        | Ncall _ -> acc)
      acc nodes
  in
  List.rev (go [] [] nodes)

(** [map_loops f nodes] rebuilds the tree, applying [f] bottom-up to every
    loop. *)
let rec map_loops f nodes =
  List.map
    (fun n ->
      match n with
      | Nloop l -> Nloop (f { l with body = map_loops f l.body })
      | other -> other)
    nodes

(** Depth of the deepest loop nest. *)
let rec depth nodes =
  List.fold_left
    (fun acc n ->
      match n with Nloop l -> max acc (1 + depth l.body) | _ -> acc)
    0 nodes

(* ------------------------------------------------------------------ *)
(* Reads / writes                                                       *)

let rec vexpr_reads (e : vexpr) : access list =
  match e with
  | Vfloat _ | Vint _ | Vscalar _ -> []
  | Vread a -> [ a ]
  | Vbin (_, a, b) -> vexpr_reads a @ vexpr_reads b
  | Vneg a -> vexpr_reads a
  | Vcall (_, args) -> List.concat_map vexpr_reads args
  | Vselect (p, a, b) -> pred_reads p @ vexpr_reads a @ vexpr_reads b

and pred_reads (p : pred) : access list =
  match p with
  | Pcmp (_, a, b) -> vexpr_reads a @ vexpr_reads b
  | Pand (a, b) | Por (a, b) -> pred_reads a @ pred_reads b
  | Pnot a -> pred_reads a

let rec vexpr_scalars (e : vexpr) : string list =
  match e with
  | Vfloat _ | Vint _ | Vread _ -> []
  | Vscalar s -> [ s ]
  | Vbin (_, a, b) -> vexpr_scalars a @ vexpr_scalars b
  | Vneg a -> vexpr_scalars a
  | Vcall (_, args) -> List.concat_map vexpr_scalars args
  | Vselect (p, a, b) -> pred_scalars p @ vexpr_scalars a @ vexpr_scalars b

and pred_scalars (p : pred) : string list =
  match p with
  | Pcmp (_, a, b) -> vexpr_scalars a @ vexpr_scalars b
  | Pand (a, b) | Por (a, b) -> pred_scalars a @ pred_scalars b
  | Pnot a -> pred_scalars a

(** Array reads of a computation (rhs + guard + subscripts don't read
    arrays; target subscript reads none either). *)
let comp_array_reads (c : comp) : access list =
  vexpr_reads c.rhs
  @ (match c.guard with Some g -> pred_reads g | None -> [])

let comp_array_writes (c : comp) : access list =
  match c.dest with Darray a -> [ a ] | Dscalar _ -> []

let comp_scalar_reads (c : comp) : string list =
  vexpr_scalars c.rhs
  @ (match c.guard with Some g -> pred_scalars g | None -> [])

let comp_scalar_writes (c : comp) : string list =
  match c.dest with Dscalar s -> [ s ] | Darray _ -> []

(** All array reads/writes of a node (recursively), including library
    calls, which conservatively read all argument arrays with unknown
    subscripts (represented with empty index lists). *)
let rec node_array_reads = function
  | Ncomp c -> comp_array_reads c
  | Nloop l -> List.concat_map node_array_reads l.body
  | Ncall k -> List.map (fun a -> { array = a; indices = [] }) k.args

let rec node_array_writes = function
  | Ncomp c -> comp_array_writes c
  | Nloop l -> List.concat_map node_array_writes l.body
  | Ncall k -> List.map (fun a -> { array = a; indices = [] }) k.writes_to

let rec node_scalar_reads = function
  | Ncomp c -> comp_scalar_reads c
  | Nloop l -> List.concat_map node_scalar_reads l.body
  | Ncall k -> List.concat_map vexpr_scalars k.scalar_args

let rec node_scalar_writes = function
  | Ncomp c -> comp_scalar_writes c
  | Nloop l -> List.concat_map node_scalar_writes l.body
  | Ncall _ -> []

(** Every scalar name a program can touch — declared parameters and
    locals first, then any name read or written in the body — deduplicated
    preserving first occurrence. This is the slot-assignment universe of
    the compiled interpreter. *)
let program_scalar_names (p : program) : string list =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let add s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      out := s :: !out
    end
  in
  List.iter add p.scalar_params;
  List.iter add p.local_scalars;
  List.iter (fun n -> List.iter add (node_scalar_reads n)) p.body;
  List.iter (fun n -> List.iter add (node_scalar_writes n)) p.body;
  List.rev !out

(** Iterators of the loops enclosing nothing — i.e. the iterators a node
    itself binds, in-order. *)
let rec bound_iters = function
  | Ncomp _ | Ncall _ -> []
  | Nloop l -> l.iter :: List.concat_map bound_iters l.body

(* ------------------------------------------------------------------ *)
(* Substitution in value expressions                                    *)

let rec vexpr_subst_idx env (e : vexpr) : vexpr =
  match e with
  | Vfloat _ | Vscalar _ -> e
  | Vint ie -> Vint (Expr.subst env ie)
  | Vread a -> Vread { a with indices = List.map (Expr.subst env) a.indices }
  | Vbin (op, a, b) -> Vbin (op, vexpr_subst_idx env a, vexpr_subst_idx env b)
  | Vneg a -> Vneg (vexpr_subst_idx env a)
  | Vcall (f, args) -> Vcall (f, List.map (vexpr_subst_idx env) args)
  | Vselect (p, a, b) ->
      Vselect (pred_subst_idx env p, vexpr_subst_idx env a, vexpr_subst_idx env b)

and pred_subst_idx env (p : pred) : pred =
  match p with
  | Pcmp (op, a, b) -> Pcmp (op, vexpr_subst_idx env a, vexpr_subst_idx env b)
  | Pand (a, b) -> Pand (pred_subst_idx env a, pred_subst_idx env b)
  | Por (a, b) -> Por (pred_subst_idx env a, pred_subst_idx env b)
  | Pnot a -> Pnot (pred_subst_idx env a)

(** [comp_subst_idx env c] substitutes integer expressions for iterators in
    every subscript, guard and [Vint] of [c] (fresh id). *)
let comp_subst_idx env (c : comp) : comp =
  {
    cid = fresh_id ();
    dest =
      (match c.dest with
      | Darray a -> Darray { a with indices = List.map (Expr.subst env) a.indices }
      | Dscalar s -> Dscalar s);
    rhs = vexpr_subst_idx env c.rhs;
    guard = Option.map (pred_subst_idx env) c.guard;
  }

(** [subst_idx_nodes env nodes] substitutes integer expressions for
    iterators throughout a subtree: subscripts, guards, [Vint]s, loop
    bounds and libcall dims. Fresh ids on rebuilt computations. *)
let rec subst_idx_nodes env nodes =
  List.map
    (fun n ->
      match n with
      | Ncomp c -> Ncomp (comp_subst_idx env c)
      | Ncall k ->
          Ncall
            {
              k with
              dims = List.map (Expr.subst env) k.dims;
              scalar_args = List.map (vexpr_subst_idx env) k.scalar_args;
            }
      | Nloop l ->
          Nloop
            {
              l with
              lo = Expr.subst env l.lo;
              hi = Expr.subst env l.hi;
              body = subst_idx_nodes env l.body;
            })
    nodes

(** [rename_scalar_to_array mapping c] turns reads/writes of scalars in
    [mapping] into array accesses with the given subscripts — the core of
    scalar expansion. *)
let rec vexpr_scalar_to_array mapping (e : vexpr) : vexpr =
  match e with
  | Vscalar s -> (
      match Util.SMap.find_opt s mapping with
      | Some access -> Vread access
      | None -> e)
  | Vfloat _ | Vint _ | Vread _ -> e
  | Vbin (op, a, b) ->
      Vbin (op, vexpr_scalar_to_array mapping a, vexpr_scalar_to_array mapping b)
  | Vneg a -> Vneg (vexpr_scalar_to_array mapping a)
  | Vcall (f, args) -> Vcall (f, List.map (vexpr_scalar_to_array mapping) args)
  | Vselect (p, a, b) ->
      Vselect
        ( pred_scalar_to_array mapping p,
          vexpr_scalar_to_array mapping a,
          vexpr_scalar_to_array mapping b )

and pred_scalar_to_array mapping (p : pred) : pred =
  match p with
  | Pcmp (op, a, b) ->
      Pcmp (op, vexpr_scalar_to_array mapping a, vexpr_scalar_to_array mapping b)
  | Pand (a, b) ->
      Pand (pred_scalar_to_array mapping a, pred_scalar_to_array mapping b)
  | Por (a, b) ->
      Por (pred_scalar_to_array mapping a, pred_scalar_to_array mapping b)
  | Pnot a -> Pnot (pred_scalar_to_array mapping a)

(* ------------------------------------------------------------------ *)
(* Counting                                                             *)

(** Floating-point operation count of a value expression (adds, muls,
    divisions and intrinsic calls; selects count their predicate). *)
let rec flops_of_vexpr = function
  | Vfloat _ | Vint _ | Vscalar _ | Vread _ -> 0
  | Vbin (_, a, b) -> 1 + flops_of_vexpr a + flops_of_vexpr b
  | Vneg a -> 1 + flops_of_vexpr a
  | Vcall (_, args) ->
      (* intrinsics modeled as several flops; refined by the cost model *)
      1 + Util.sum_by flops_of_vexpr args
  | Vselect (p, a, b) -> flops_of_pred p + flops_of_vexpr a + flops_of_vexpr b

and flops_of_pred = function
  | Pcmp (_, a, b) -> 1 + flops_of_vexpr a + flops_of_vexpr b
  | Pand (a, b) | Por (a, b) -> 1 + flops_of_pred a + flops_of_pred b
  | Pnot a -> 1 + flops_of_pred a

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                      *)

let string_of_vbinop = function
  | Vadd -> "+" | Vsub -> "-" | Vmul -> "*" | Vdiv -> "/"

let string_of_cmpop = function
  | Clt -> "<" | Cle -> "<=" | Cgt -> ">" | Cge -> ">=" | Ceq -> "==" | Cne -> "!="

let pp_access ppf { array; indices } =
  Fmt.pf ppf "%s%a" array
    (Fmt.list ~sep:Fmt.nop (fun ppf i -> Fmt.pf ppf "[%a]" Expr.pp i))
    indices

let rec pp_vexpr_prec prec ppf e =
  match e with
  | Vfloat f ->
      if Float.is_integer f && Float.abs f < 1e15 then Fmt.pf ppf "%.1f" f
      else Fmt.pf ppf "%.17g" f
  | Vint ie -> Fmt.pf ppf "(double)%a" (Expr.pp_prec 2) ie
  | Vread a -> pp_access ppf a
  | Vscalar s -> Fmt.string ppf s
  | Vbin (op, a, b) ->
      let p = match op with Vadd | Vsub -> 1 | Vmul | Vdiv -> 2 in
      let body ppf =
        Fmt.pf ppf "%a %s %a" (pp_vexpr_prec p) a (string_of_vbinop op)
          (pp_vexpr_prec (p + 1)) b
      in
      if prec > p then Fmt.pf ppf "(%t)" body else body ppf
  | Vneg a -> Fmt.pf ppf "-%a" (pp_vexpr_prec 3) a
  | Vcall (f, args) ->
      Fmt.pf ppf "%s(%a)" f (Fmt.list ~sep:(Fmt.any ", ") (pp_vexpr_prec 0)) args
  | Vselect (p, a, b) ->
      Fmt.pf ppf "(%a ? %a : %a)" pp_pred p (pp_vexpr_prec 1) a (pp_vexpr_prec 1) b

and pp_pred ppf = function
  | Pcmp (op, a, b) ->
      Fmt.pf ppf "%a %s %a" (pp_vexpr_prec 1) a (string_of_cmpop op)
        (pp_vexpr_prec 1) b
  | Pand (a, b) -> Fmt.pf ppf "(%a && %a)" pp_pred a pp_pred b
  | Por (a, b) -> Fmt.pf ppf "(%a || %a)" pp_pred a pp_pred b
  | Pnot a -> Fmt.pf ppf "!(%a)" pp_pred a

let pp_vexpr = pp_vexpr_prec 0

let pp_dest ppf = function
  | Darray a -> pp_access ppf a
  | Dscalar s -> Fmt.string ppf s

let pp_comp ppf c =
  match c.guard with
  | None -> Fmt.pf ppf "%a = %a;" pp_dest c.dest pp_vexpr c.rhs
  | Some g -> Fmt.pf ppf "if (%a) %a = %a;" pp_pred g pp_dest c.dest pp_vexpr c.rhs

let pp_attrs ppf a =
  let tags =
    (if a.parallel then [ (if a.atomic then "parallel-atomic" else "parallel") ]
     else [])
    @ (if a.vectorized then [ "vector" ] else [])
    @ if a.unroll > 1 then [ Fmt.str "unroll(%d)" a.unroll ] else []
  in
  if tags <> [] then Fmt.pf ppf " @@%a" (Fmt.list ~sep:(Fmt.any " @@") Fmt.string) tags

let rec pp_node ind ppf n =
  let pad = String.make (2 * ind) ' ' in
  match n with
  | Ncomp c -> Fmt.pf ppf "%s%a" pad pp_comp c
  | Ncall k ->
      Fmt.pf ppf "%scall %s(%a | dims %a);" pad k.kernel
        (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
        k.args
        (Fmt.list ~sep:(Fmt.any ", ") Expr.pp)
        k.dims
  | Nloop l ->
      let range ppf () =
        if l.step = 1 then Fmt.pf ppf "%a .. %a" Expr.pp l.lo Expr.pp l.hi
        else Fmt.pf ppf "%a .. %a step %d" Expr.pp l.lo Expr.pp l.hi l.step
      in
      Fmt.pf ppf "%sfor %s in %a%a {@\n%a@\n%s}" pad l.iter range () pp_attrs
        l.attrs (pp_nodes (ind + 1)) l.body pad

and pp_nodes ind ppf nodes = Fmt.list ~sep:Fmt.cut (pp_node ind) ppf nodes

let pp_program ppf p =
  Fmt.pf ppf "@[<v>program %s(%a | %a)@,%a@,%a@]" p.pname
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    p.size_params
    (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
    p.scalar_params
    (Fmt.list ~sep:Fmt.cut (fun ppf (a : array_decl) ->
         Fmt.pf ppf "%s %s%a;"
           (match a.storage with Sparam -> "array" | Slocal -> "local")
           a.name
           (Fmt.list ~sep:Fmt.nop (fun ppf d -> Fmt.pf ppf "[%a]" Expr.pp d))
           a.dims))
    p.arrays (pp_nodes 1) p.body

let program_to_string p = Fmt.str "%a" pp_program p
let node_to_string n = Fmt.str "%a" (pp_node 0) n

(* ------------------------------------------------------------------ *)
(* Canonical structural form (for database matching)                    *)

(** [canon_nodes nodes] renames iterators to [_c0, _c1, ...] by pre-order
    binding position and zeroes node ids, so two structurally identical
    nests compare equal with [=]. *)
let canon_nodes nodes =
  let counter = ref 0 in
  let rec go env nodes =
    List.map
      (fun n ->
        match n with
        | Ncomp c ->
            Ncomp { (comp_subst_idx env c) with cid = 0 }
        | Ncall k -> Ncall { k with kid = 0 }
        | Nloop l ->
            let fresh = Printf.sprintf "_c%d" !counter in
            incr counter;
            let env' = Util.SMap.add l.iter (Expr.var fresh) env in
            Nloop
              {
                l with
                lid = 0;
                iter = fresh;
                lo = Expr.subst env l.lo;
                hi = Expr.subst env l.hi;
                body = go env' l.body;
              })
      nodes
  in
  go Util.SMap.empty nodes

let equal_structure a b = canon_nodes a = canon_nodes b

(** Structural hash of a node list (canonical form). *)
let hash_structure nodes = Hashtbl.hash (canon_nodes nodes)

(* ------------------------------------------------------------------ *)
(* Structural validation                                                *)

(** When true, {!Daisy_normalize.Pipeline} and
    {!Daisy_transforms.Recipe.apply} re-validate their output and raise
    [Diag.Error] on a violation — a debug net for transformation bugs.
    Initialized from the [DAISY_VALIDATE] environment variable (unset,
    empty or ["0"] = off). *)
let validation_enabled =
  ref
    (match Sys.getenv_opt "DAISY_VALIDATE" with
    | None | Some "" | Some "0" -> false
    | Some _ -> true)

let rec vexpr_int_exprs (e : vexpr) : Expr.t list =
  match e with
  | Vfloat _ | Vscalar _ -> []
  | Vint ie -> [ ie ]
  | Vread a -> a.indices
  | Vbin (_, a, b) -> vexpr_int_exprs a @ vexpr_int_exprs b
  | Vneg a -> vexpr_int_exprs a
  | Vcall (_, args) -> List.concat_map vexpr_int_exprs args
  | Vselect (p, a, b) ->
      pred_int_exprs p @ vexpr_int_exprs a @ vexpr_int_exprs b

and pred_int_exprs (p : pred) : Expr.t list =
  match p with
  | Pcmp (_, a, b) -> vexpr_int_exprs a @ vexpr_int_exprs b
  | Pand (a, b) | Por (a, b) -> pred_int_exprs a @ pred_int_exprs b
  | Pnot a -> pred_int_exprs a

(** Free integer variables of a subtree: every variable of a bound,
    subscript, guard, [Vint] or libcall dim not bound by an enclosing
    loop of the subtree itself — i.e. the names an environment must
    provide (size parameters and outer iterators). *)
let free_index_vars (nodes : node list) : Util.SSet.t =
  let acc = ref Util.SSet.empty in
  let add scope e =
    acc := Util.SSet.union !acc (Util.SSet.diff (Expr.free_vars e) scope)
  in
  let add_vexpr scope e = List.iter (add scope) (vexpr_int_exprs e) in
  let rec go scope nodes =
    List.iter
      (fun n ->
        match n with
        | Ncomp c ->
            (match c.dest with
            | Darray a -> List.iter (add scope) a.indices
            | Dscalar _ -> ());
            add_vexpr scope c.rhs;
            Option.iter
              (fun g -> List.iter (add scope) (pred_int_exprs g))
              c.guard
        | Ncall k ->
            List.iter (add scope) k.dims;
            List.iter (add_vexpr scope) k.scalar_args
        | Nloop l ->
            add scope l.lo;
            add scope l.hi;
            go (Util.SSet.add l.iter scope) l.body)
      nodes
  in
  go Util.SSet.empty nodes;
  !acc

(** [validate_nodes ?arrays ?params nodes] — check the structural
    invariants of a subtree and return human-readable violations (empty =
    valid): unique positive node ids, non-zero loop steps, every integer
    expression closed over enclosing iterators and [params], and — when
    [arrays] is given — every access naming a declared array with
    subscript arity matching its declared rank. *)
let validate_nodes ?arrays ?(params = Util.SSet.empty) (nodes : node list) :
    string list =
  let violations = ref [] in
  let violate fmt = Fmt.kstr (fun m -> violations := m :: !violations) fmt in
  let seen_ids : (int, string) Hashtbl.t = Hashtbl.create 64 in
  let check_id kind id =
    (* ids <= 0 are canonical/zeroed forms, exempt from uniqueness *)
    if id > 0 then
      match Hashtbl.find_opt seen_ids id with
      | Some kind' -> violate "duplicate id %d (%s and %s)" id kind' kind
      | None -> Hashtbl.add seen_ids id kind
  in
  let rank_tbl =
    Option.map
      (fun decls ->
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (a : array_decl) ->
            Hashtbl.replace tbl a.name (List.length a.dims))
          decls;
        tbl)
      arrays
  in
  let check_array ~where name nidx =
    match rank_tbl with
    | None -> ()
    | Some tbl -> (
        match Hashtbl.find_opt tbl name with
        | None -> violate "%s: undeclared array %s" where name
        | Some rank -> (
            match nidx with
            | Some n when n <> rank ->
                violate "%s: array %s has rank %d but %d subscripts" where
                  name rank n
            | _ -> ()))
  in
  let check_expr ~where scope e =
    Util.SSet.iter
      (fun v -> violate "%s: unbound variable %s" where v)
      (Util.SSet.diff (Expr.free_vars e) (Util.SSet.union scope params))
  in
  let rec check_vexpr ~where scope (e : vexpr) =
    match e with
    | Vfloat _ | Vscalar _ -> ()
    | Vint ie -> check_expr ~where scope ie
    | Vread a ->
        check_array ~where a.array (Some (List.length a.indices));
        List.iter (check_expr ~where scope) a.indices
    | Vbin (_, a, b) ->
        check_vexpr ~where scope a;
        check_vexpr ~where scope b
    | Vneg a -> check_vexpr ~where scope a
    | Vcall (_, args) -> List.iter (check_vexpr ~where scope) args
    | Vselect (p, a, b) ->
        check_pred ~where scope p;
        check_vexpr ~where scope a;
        check_vexpr ~where scope b
  and check_pred ~where scope (p : pred) =
    match p with
    | Pcmp (_, a, b) ->
        check_vexpr ~where scope a;
        check_vexpr ~where scope b
    | Pand (a, b) | Por (a, b) ->
        check_pred ~where scope a;
        check_pred ~where scope b
    | Pnot a -> check_pred ~where scope a
  in
  let rec go scope nodes =
    List.iter
      (fun n ->
        match n with
        | Ncomp c ->
            check_id "computation" c.cid;
            let where = Fmt.str "computation %d" c.cid in
            (match c.dest with
            | Darray a ->
                check_array ~where a.array (Some (List.length a.indices));
                List.iter (check_expr ~where scope) a.indices
            | Dscalar _ -> ());
            check_vexpr ~where scope c.rhs;
            Option.iter (check_pred ~where scope) c.guard
        | Ncall k ->
            check_id "libcall" k.kid;
            let where = Fmt.str "libcall %s" k.kernel in
            List.iter
              (fun a -> check_array ~where a None)
              (Util.dedup ~eq:String.equal (k.args @ k.writes_to));
            List.iter (check_expr ~where scope) k.dims;
            List.iter (check_vexpr ~where scope) k.scalar_args
        | Nloop l ->
            check_id "loop" l.lid;
            let where = Fmt.str "loop %s (lid %d)" l.iter l.lid in
            if l.step = 0 then violate "%s: zero step" where;
            (* a loop's iterator is NOT in scope for its own bounds *)
            check_expr ~where scope l.lo;
            check_expr ~where scope l.hi;
            go (Util.SSet.add l.iter scope) l.body)
      nodes
  in
  go Util.SSet.empty nodes;
  List.rev !violations

(** [validate p] — {!validate_nodes} over a whole program, with its array
    declarations and size parameters in scope. *)
let validate (p : program) : string list =
  validate_nodes ~arrays:p.arrays
    ~params:(Util.SSet.of_list p.size_params)
    p.body
