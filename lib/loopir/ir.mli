(** The symbolic loop-nest IR ("loopir") — the representation the paper
    lifts from LLVM IR (§3): a tree of loop and computation nodes where
    iterators, domains and data accesses are symbolic expressions. The IR
    is immutable; transformations rebuild nodes with fresh ids. *)

module Expr = Daisy_poly.Expr

(** {1 Value expressions} *)

type access = { array : string; indices : Expr.t list }

type vbinop = Vadd | Vsub | Vmul | Vdiv

type cmpop = Clt | Cle | Cgt | Cge | Ceq | Cne

type vexpr =
  | Vfloat of float
  | Vint of Expr.t  (** integer expression used as a floating value *)
  | Vread of access
  | Vscalar of string  (** scalar parameter or local scalar *)
  | Vbin of vbinop * vexpr * vexpr
  | Vneg of vexpr
  | Vcall of string * vexpr list  (** intrinsic: sqrt, exp, min, max, ... *)
  | Vselect of pred * vexpr * vexpr

and pred =
  | Pcmp of cmpop * vexpr * vexpr
  | Pand of pred * pred
  | Por of pred * pred
  | Pnot of pred

(** {1 Computations, loops, programs} *)

type dest = Darray of access | Dscalar of string

(** A computation: a unit of work with exactly one write to a data
    container (paper §2). *)
type comp = {
  cid : int;
  dest : dest;
  rhs : vexpr;
  guard : pred option;
}

(** Scheduling attributes, interpreted by the machine model. *)
type attrs = {
  parallel : bool;
  atomic : bool;  (** parallel reduction via atomic updates *)
  vectorized : bool;
  unroll : int;  (** 1 = none *)
}

val no_attrs : attrs

type node =
  | Ncomp of comp
  | Nloop of loop
  | Ncall of libcall  (** an idiom-detected library call *)

and loop = {
  lid : int;
  iter : string;
  lo : Expr.t;  (** first value (inclusive) *)
  hi : Expr.t;  (** last value (inclusive) *)
  step : int;  (** non-zero; negative for downward loops *)
  body : node list;
  attrs : attrs;
}

and libcall = {
  kid : int;
  kernel : string;  (** e.g. "gemm" — see {!Daisy_blas.Kernels} *)
  args : string list;
  scalar_args : vexpr list;
  dims : Expr.t list;
  writes_to : string list;
}

type storage = Sparam | Slocal

type elem_ty = Fdouble

type array_decl = {
  name : string;
  elem : elem_ty;
  dims : Expr.t list;
  storage : storage;
}

type program = {
  pname : string;
  size_params : string list;
  scalar_params : string list;
  arrays : array_decl list;
  local_scalars : string list;
  body : node list;
}

(** {1 Construction} *)

val fresh_id : unit -> int

val mk_comp : ?guard:pred -> dest -> vexpr -> comp

val mk_loop :
  ?attrs:attrs -> iter:string -> lo:Expr.t -> hi:Expr.t -> ?step:int ->
  node list -> loop

(** {1 Traversals} *)

val fold_nodes : ('a -> node -> 'a) -> 'a -> node list -> 'a
val comps_in : node list -> comp list
val loops_in : node list -> loop list

val comps_with_context : node list -> (loop list * comp) list
(** Each computation with its enclosing loops, outermost first. *)

val map_loops : (loop -> loop) -> node list -> node list
(** Rebuild the tree, applying the function bottom-up to every loop. *)

val depth : node list -> int
val bound_iters : node -> string list

(** {1 Dataflow summaries} *)

val vexpr_reads : vexpr -> access list
val pred_reads : pred -> access list
val vexpr_scalars : vexpr -> string list
val pred_scalars : pred -> string list
val comp_array_reads : comp -> access list
val comp_array_writes : comp -> access list
val comp_scalar_reads : comp -> string list
val comp_scalar_writes : comp -> string list
val node_array_reads : node -> access list
val node_array_writes : node -> access list
val node_scalar_reads : node -> string list
val node_scalar_writes : node -> string list

val program_scalar_names : program -> string list
(** Every scalar name a program can touch (params, locals, body reads and
    writes), deduplicated preserving first occurrence — the slot universe
    of the compiled interpreter. *)

(** {1 Substitution} *)

val vexpr_subst_idx : Expr.t Daisy_support.Util.SMap.t -> vexpr -> vexpr
val pred_subst_idx : Expr.t Daisy_support.Util.SMap.t -> pred -> pred

val comp_subst_idx : Expr.t Daisy_support.Util.SMap.t -> comp -> comp
(** Substitute iterators in subscripts, guards and [Vint]s (fresh id). *)

val subst_idx_nodes : Expr.t Daisy_support.Util.SMap.t -> node list -> node list
(** Substitute throughout a subtree, including loop bounds and call dims. *)

val vexpr_scalar_to_array : access Daisy_support.Util.SMap.t -> vexpr -> vexpr
val pred_scalar_to_array : access Daisy_support.Util.SMap.t -> pred -> pred

(** {1 Counting} *)

val flops_of_vexpr : vexpr -> int
val flops_of_pred : pred -> int

(** {1 Printing} *)

val string_of_vbinop : vbinop -> string
val string_of_cmpop : cmpop -> string
val pp_access : access Fmt.t
val pp_vexpr_prec : int -> vexpr Fmt.t
val pp_vexpr : vexpr Fmt.t
val pp_pred : pred Fmt.t
val pp_dest : dest Fmt.t
val pp_comp : comp Fmt.t
val pp_attrs : attrs Fmt.t
val pp_node : int -> node Fmt.t
val pp_nodes : int -> node list Fmt.t
val pp_program : program Fmt.t
val program_to_string : program -> string
val node_to_string : node -> string

(** {1 Canonical structural form}

    Iterators renamed by pre-order binding position and node ids zeroed —
    two structurally identical nests compare equal. This is the database
    key of the paper's transfer tuning. *)

val canon_nodes : node list -> node list
val equal_structure : node list -> node list -> bool
val hash_structure : node list -> int

(** {1 Structural validation}

    A debug net for transformation bugs: checks that every integer
    expression is closed over enclosing iterators (plus the given
    parameters), positive node ids are unique, loop steps are non-zero,
    and accessed arrays are declared with matching subscript arity. *)

val validation_enabled : bool ref
(** When true, the normalization pipeline and [Recipe.apply] re-validate
    their output and raise [Daisy_support.Diag.Error] on a violation.
    Initialized from the [DAISY_VALIDATE] environment variable (unset,
    empty or ["0"] = off). *)

val free_index_vars : node list -> Daisy_support.Util.SSet.t
(** Free integer variables of a subtree: names its bounds, subscripts,
    guards and call dims require from the environment (size parameters
    and outer iterators). *)

val validate_nodes :
  ?arrays:array_decl list ->
  ?params:Daisy_support.Util.SSet.t ->
  node list ->
  string list
(** Human-readable invariant violations (empty = valid). Array
    declaration / rank checks only run when [?arrays] is given; node ids
    [<= 0] (canonical forms) are exempt from the uniqueness check. *)

val validate : program -> string list
(** {!validate_nodes} over a whole program, with its array declarations
    and size parameters in scope. *)
