(** Scheduling a time-iterated stencil: jacobi-2d.

    {v dune exec examples/stencil.exe v}

    Stencil sweeps live under a sequential time loop — the scheduler must
    find the parallel/vector loops {e inside} it (the "schedulable units").
    This example also demonstrates the random-variant generator used for
    the paper's B variants. *)

module Ir = Daisy.Loopir.Ir
module Pb = Daisy.Benchmarks.Polybench
module S = Daisy.Scheduler

let () =
  let b = Pb.find "jacobi-2d" in
  let p = Pb.program b in
  Fmt.pr "=== jacobi-2d (A variant) ===@.%a@.@." Ir.pp_program p;
  (* the schedulable units under the time loop *)
  let normalized = Daisy.Normalize.Pipeline.normalize ~sizes:b.Pb.sim_sizes p in
  let units = S.Common.program_units normalized in
  Fmt.pr "schedulable units: %d (each under %s)@." (List.length units)
    (String.concat ", "
       (List.map
          (fun (outer, _) ->
            String.concat "." (List.map (fun (l : Ir.loop) -> l.Ir.iter) outer))
          units));
  (* a random legal B variant *)
  let bv = Daisy.Benchmarks.Variants.generate ~seed:"demo" p in
  Fmt.pr "@.B variant equivalent: %b@."
    (Daisy.Interp.Interp.equivalent p bv ~sizes:b.Pb.test_sizes ());
  (* schedule both *)
  let ctx = S.Common.make_ctx ~sizes:b.Pb.sim_sizes () in
  let db = S.Database.create () in
  S.Seed.seed_database ~epochs:1 ~population:6 ~iterations:2 ctx ~db
    [ ("jacobi-2d", p) ];
  let t q = S.Common.runtime_ms ctx (S.Daisy.schedule ctx ~db q).S.Daisy.program in
  Fmt.pr "daisy runtime: A %.3f ms, B %.3f ms@." (t p) (t bv)
