examples/quickstart.mli:
