examples/stencil.mli:
