examples/python_frameworks.ml: Daisy Fmt List
