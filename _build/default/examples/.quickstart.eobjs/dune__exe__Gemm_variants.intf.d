examples/gemm_variants.mli:
