examples/gemm_variants.ml: Daisy Fmt
