examples/cloudsc_demo.ml: Daisy Fmt
