examples/quickstart.ml: Daisy Fmt List
