examples/cloudsc_demo.mli:
