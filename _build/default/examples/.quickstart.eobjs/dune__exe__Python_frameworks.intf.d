examples/python_frameworks.mli:
