examples/stencil.ml: Daisy Fmt List String
