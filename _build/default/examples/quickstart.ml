(** Quickstart: compile one kernel through the whole pipeline.

    {v dune exec examples/quickstart.exe v}

    Parses a GEMM kernel written the "wrong" way (j outside k), lifts it
    through the low-level IR, normalizes it (fission + stride
    minimization), schedules it with daisy and reports simulated runtimes
    on the modeled machine. *)

let source =
  {|void gemm(int ni, int nj, int nk, double alpha, double beta,
          double C[ni][nj], double A[ni][nk], double B[nk][nj])
{
  for (int i = 0; i < ni; i++) {
    for (int j = 0; j < nj; j++)
      C[i][j] *= beta;
    for (int j = 0; j < nj; j++)
      for (int k = 0; k < nk; k++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}|}

let () =
  let sizes = [ ("ni", 125); ("nj", 137); ("nk", 150) ] in
  let result = Daisy.compile ~sizes source in
  Fmt.pr "=== original (lifted from the low-level IR) ===@.%a@.@."
    Daisy.Loopir.Ir.pp_program result.Daisy.original;
  Fmt.pr "=== after a priori normalization ===@.%a@.@."
    Daisy.Loopir.Ir.pp_program result.Daisy.normalized;
  Fmt.pr "=== after daisy scheduling ===@.%a@.@."
    Daisy.Loopir.Ir.pp_program result.Daisy.scheduled;
  List.iter
    (fun d -> Fmt.pr "  %a@." Daisy.Scheduler.Daisy.pp_decision d)
    result.Daisy.report.Daisy.Scheduler.Daisy.decisions;
  Fmt.pr "@.simulated runtime: %.3f ms -> %.3f ms (%.1fx)@."
    result.Daisy.original_ms result.Daisy.scheduled_ms
    (result.Daisy.original_ms /. result.Daisy.scheduled_ms)
