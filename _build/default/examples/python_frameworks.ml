(** Cross-language scheduling (paper §4.3): the same benchmark written in
    NumPy style is lowered by different framework policies and scheduled by
    daisy using a database seeded from the C variants.

    {v dune exec examples/python_frameworks.exe v} *)

module Np = Daisy.Benchmarks.Npbench
module Fw = Daisy.Benchmarks.Frameworks
module Pb = Daisy.Benchmarks.Polybench
module S = Daisy.Scheduler
module Ir = Daisy.Loopir.Ir

let () =
  let b = Np.find "syrk" in
  Fmt.pr "NPBench syrk (NumPy-style source):@.%a@.@."
    Daisy.Arraylang.Alang.pp_program b.Np.program;
  Fmt.pr "lowered by the daisy frontend:@.%a@.@."
    Ir.pp_program
    (Daisy.Arraylang.Lower.lower Daisy.Arraylang.Lower.frontend_policy
       b.Np.program);
  (* seed from the C implementation, schedule the Python one *)
  let ctx = S.Common.make_ctx ~sizes:b.Np.sim_sizes () in
  let db = S.Database.create () in
  S.Seed.seed_database ~epochs:1 ~population:6 ~iterations:2 ctx ~db
    [ ("syrk-C", Pb.program (Pb.find "syrk")) ];
  List.iter
    (fun fw ->
      let ir = Fw.lower fw b.Np.program in
      let ms =
        match fw with
        | Fw.Numpy -> S.Common.runtime_ms { ctx with S.Common.threads = 1 } ir
        | Fw.Numba | Fw.DaceF -> S.Common.runtime_ms ctx ir
        | Fw.DaisyPy | Fw.DaisyPyNoNorm ->
            let options =
              { S.Daisy.normalize = fw = Fw.DaisyPy; transfer = true }
            in
            S.Common.runtime_ms ctx
              (S.Daisy.schedule ~options ctx ~db ir).S.Daisy.program
      in
      Fmt.pr "%-14s %8.3f ms@." (Fw.name fw) ms)
    Fw.all
