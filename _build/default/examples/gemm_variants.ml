(** The paper's Figure 1 in miniature: two structurally different GEMM
    kernels converge to the same canonical form under normalization, so
    one optimization recipe serves both.

    {v dune exec examples/gemm_variants.exe v} *)

module Ir = Daisy.Loopir.Ir
module Pb = Daisy.Benchmarks.Polybench
module S = Daisy.Scheduler

let () =
  let sizes = Pb.gemm.Pb.sim_sizes in
  let a = Pb.program Pb.gemm in
  let b =
    Daisy.Lang.Lower.program_of_string ~source:"gemm2.c"
      Daisy.Benchmarks.Variants.gemm_variant_2_source
  in
  (* 1. semantically equivalent (checked by the interpreter) *)
  Fmt.pr "variants equivalent by execution: %b@."
    (Daisy.Interp.Interp.equivalent a b ~sizes:Pb.gemm.Pb.test_sizes ());
  (* 2. same canonical form after normalization *)
  let na = Daisy.Normalize.Pipeline.normalize ~sizes a in
  let nb = Daisy.Normalize.Pipeline.normalize ~sizes b in
  Fmt.pr "same canonical form after normalization: %b@.@."
    (Ir.equal_structure na.Ir.body nb.Ir.body);
  Fmt.pr "canonical form:@.%a@.@." Ir.pp_program na;
  (* 3. and therefore the same performance after scheduling *)
  let ctx = S.Common.make_ctx ~sizes () in
  let db = S.Database.create () in
  S.Seed.seed_database ~epochs:1 ~population:6 ~iterations:2 ctx ~db
    [ ("gemm", a) ];
  let t p = S.Common.runtime_ms ctx (S.Daisy.schedule ctx ~db p).S.Daisy.program in
  let clang p = S.Common.runtime_ms ctx (S.Baselines.clang_like p) in
  Fmt.pr "clang: A %.3f ms, B %.3f ms  (structure-sensitive)@." (clang a) (clang b);
  Fmt.pr "daisy: A %.3f ms, B %.3f ms  (robust)@." (t a) (t b)
